/**
 * @file
 * Unit tests for register-name parsing.
 */

#include <gtest/gtest.h>

#include "isa/registers.hh"

namespace gest {
namespace isa {
namespace {

struct RegCase
{
    const char* name;
    bool ok;
    RegClass cls;
    int index;
};

class ParseRegisterTest : public ::testing::TestWithParam<RegCase>
{};

TEST_P(ParseRegisterTest, ParsesAsExpected)
{
    const RegCase& c = GetParam();
    RegRef ref;
    const bool ok = parseRegister(c.name, ref);
    EXPECT_EQ(ok, c.ok) << c.name;
    if (c.ok && ok) {
        EXPECT_EQ(ref.cls, c.cls) << c.name;
        EXPECT_EQ(ref.index, c.index) << c.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Arm64, ParseRegisterTest,
    ::testing::Values(RegCase{"x0", true, RegClass::Int, 0},
                      RegCase{"x30", true, RegClass::Int, 30},
                      RegCase{"X7", true, RegClass::Int, 7},
                      RegCase{"w12", true, RegClass::Int, 12},
                      RegCase{"sp", true, RegClass::Int, 31},
                      RegCase{"v0", true, RegClass::Vec, 0},
                      RegCase{"v31", true, RegClass::Vec, 31},
                      RegCase{"q5", true, RegClass::Vec, 5},
                      RegCase{"d9", true, RegClass::Vec, 9},
                      RegCase{"s2", true, RegClass::Vec, 2}));

INSTANTIATE_TEST_SUITE_P(
    Arm32, ParseRegisterTest,
    ::testing::Values(RegCase{"r0", true, RegClass::Int, 0},
                      RegCase{"r15", true, RegClass::Int, 15},
                      RegCase{"R4", true, RegClass::Int, 4}));

INSTANTIATE_TEST_SUITE_P(
    X86, ParseRegisterTest,
    ::testing::Values(RegCase{"rax", true, RegClass::Int, 0},
                      RegCase{"rcx", true, RegClass::Int, 1},
                      RegCase{"rdx", true, RegClass::Int, 2},
                      RegCase{"rbx", true, RegClass::Int, 3},
                      RegCase{"rsi", true, RegClass::Int, 6},
                      RegCase{"rdi", true, RegClass::Int, 7},
                      RegCase{"r8", true, RegClass::Int, 8},
                      RegCase{"r15", true, RegClass::Int, 15},
                      RegCase{"xmm0", true, RegClass::Vec, 0},
                      RegCase{"xmm15", true, RegClass::Vec, 15},
                      RegCase{"ymm3", true, RegClass::Vec, 3},
                      RegCase{"zmm7", true, RegClass::Vec, 7},
                      RegCase{"eax", true, RegClass::Int, 0}));

INSTANTIATE_TEST_SUITE_P(
    Rejects, ParseRegisterTest,
    ::testing::Values(RegCase{"", false, RegClass::Int, 0},
                      RegCase{"x", false, RegClass::Int, 0},
                      RegCase{"x32", false, RegClass::Int, 0},
                      RegCase{"v32", false, RegClass::Int, 0},
                      RegCase{"hello", false, RegClass::Int, 0},
                      RegCase{"x123", false, RegClass::Int, 0},
                      RegCase{"42", false, RegClass::Int, 0},
                      RegCase{"#16", false, RegClass::Int, 0}));

TEST(Registers, WhitespaceAndCaseInsensitive)
{
    RegRef ref;
    EXPECT_TRUE(parseRegister("  V3  ", ref));
    EXPECT_EQ(ref.cls, RegClass::Vec);
    EXPECT_EQ(ref.index, 3);
}

} // namespace
} // namespace isa
} // namespace gest
