/**
 * @file
 * End-to-end integration tests: short GA searches against the simulated
 * platforms must reproduce the paper's qualitative results. Generation
 * counts are kept small; the bench harnesses run the full-length
 * experiments.
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "core/engine.hh"
#include "measure/sim_measurements.hh"
#include "platform/platform.hh"
#include "workloads/workloads.hh"

namespace gest {
namespace {

core::GaParams
quickParams(int individual_size, int generations, std::uint64_t seed)
{
    core::GaParams params;
    params.populationSize = 24;
    params.individualSize = individual_size;
    params.mutationRate =
        core::GaParams::mutationRateForSize(individual_size);
    params.generations = generations;
    params.seed = seed;
    return params;
}

core::Individual
runGa(const std::shared_ptr<const platform::Platform>& plat,
      measure::Measurement& meas, const core::GaParams& params)
{
    fitness::DefaultFitness fit;
    core::Engine engine(params, plat->library(), meas, fit);
    engine.run();
    return engine.bestEver();
}

TEST(Integration, PowerSearchBeatsEveryBaselineOnA15)
{
    const auto plat = platform::cortexA15Platform();
    measure::SimPowerMeasurement meas(plat->library(), plat);
    const core::Individual virus =
        runGa(plat, meas, quickParams(50, 18, 11));

    double best_baseline = 0.0;
    for (const auto& w :
         workloads::armBareMetalBaselines(plat->library())) {
        best_baseline = std::max(
            best_baseline,
            plat->evaluate(w.code, plat->library()).chipPowerWatts);
    }
    EXPECT_GT(virus.fitness, best_baseline);
}

TEST(Integration, PowerSearchBeatsEveryBaselineOnA7)
{
    const auto plat = platform::cortexA7Platform();
    measure::SimPowerMeasurement meas(plat->library(), plat);
    const core::Individual virus =
        runGa(plat, meas, quickParams(50, 18, 12));

    double best_baseline = 0.0;
    for (const auto& w :
         workloads::armBareMetalBaselines(plat->library())) {
        best_baseline = std::max(
            best_baseline,
            plat->evaluate(w.code, plat->library()).chipPowerWatts);
    }
    EXPECT_GT(virus.fitness, best_baseline);
}

TEST(Integration, CrossVirusTransferIsWeak)
{
    // §V: "Cortex-A7 GA virus is not a good stress-test for Cortex-A15
    // and Cortex-A15 virus is not a good stress-test for Cortex-A7."
    const auto a15 = platform::cortexA15Platform();
    const auto a7 = platform::cortexA7Platform();

    measure::SimPowerMeasurement meas15(a15->library(), a15);
    const core::Individual virus15 =
        runGa(a15, meas15, quickParams(50, 18, 13));
    measure::SimPowerMeasurement meas7(a7->library(), a7);
    const core::Individual virus7 =
        runGa(a7, meas7, quickParams(50, 18, 14));

    // The foreign virus draws less power than the native one.
    const double native15 = virus15.fitness;
    const double foreign15 =
        a15->evaluate(virus7.code, a15->library()).chipPowerWatts;
    EXPECT_GT(native15, foreign15);

    const double native7 = virus7.fitness;
    const double foreign7 =
        a7->evaluate(virus15.code, a7->library()).chipPowerWatts;
    EXPECT_GT(native7, foreign7);
}

TEST(Integration, TemperatureVirusTopsServerBaselines)
{
    const auto plat = platform::xgene2Platform();
    measure::SimTemperatureMeasurement meas(plat->library(), plat);
    core::GaParams params = quickParams(50, 35, 15);
    params.populationSize = 30;
    const core::Individual virus = runGa(plat, meas, params);

    double best_baseline = 0.0;
    for (const auto& w : workloads::serverBaselines(plat->library())) {
        best_baseline = std::max(
            best_baseline,
            plat->evaluate(w.code, plat->library()).dieTempC);
    }
    EXPECT_GT(virus.fitness, best_baseline);
}

TEST(Integration, IpcVirusTradesPowerForIpc)
{
    // Table IV: the IPC virus has higher IPC but lower power and
    // temperature than the power/temperature virus.
    const auto plat = platform::xgene2Platform();

    measure::SimTemperatureMeasurement temp_meas(plat->library(), plat);
    const core::Individual power_virus =
        runGa(plat, temp_meas, quickParams(50, 20, 16));
    measure::SimIpcMeasurement ipc_meas(plat->library(), plat);
    const core::Individual ipc_virus =
        runGa(plat, ipc_meas, quickParams(50, 20, 16));

    const auto eval_power =
        plat->evaluate(power_virus.code, plat->library());
    const auto eval_ipc =
        plat->evaluate(ipc_virus.code, plat->library());

    EXPECT_GT(eval_ipc.ipc, eval_power.ipc * 0.99);
    EXPECT_GT(eval_power.dieTempC, eval_ipc.dieTempC);
    EXPECT_GT(eval_power.chipPowerWatts, eval_ipc.chipPowerWatts);
}

TEST(Integration, DidtVirusBeatsStabilityTests)
{
    // §VI / Figure 8: the GA dI/dt virus out-noises Prime95 and the
    // AMD stability test.
    const auto plat = platform::athlonX4Platform();
    const int loop_len = core::GaParams::didtLoopLength(
        1.5, plat->cpu().freqGHz,
        plat->pdnModel()->config().resonanceHz());
    EXPECT_GE(loop_len, 15);
    EXPECT_LE(loop_len, 50);

    measure::SimVoltageNoiseMeasurement meas(plat->library(), plat);
    const core::Individual virus =
        runGa(plat, meas, quickParams(loop_len, 15, 17));

    double best_baseline = 0.0;
    for (const auto& w : workloads::x86Baselines(plat->library())) {
        best_baseline = std::max(
            best_baseline, plat->evaluate(w.code, plat->library(), true)
                               .peakToPeakV);
    }
    EXPECT_GT(virus.fitness, best_baseline);
}

TEST(Integration, ComplexFitnessYieldsSimplerVirus)
{
    // §V.A: Equation 1 produces a virus with fewer unique instructions
    // at a comparable temperature.
    const auto plat = platform::xgene2Platform();
    const auto& lib = plat->library();
    const double idle = plat->idleTempC();
    const double tj_max = plat->chip().tjMaxC;

    measure::SimTemperatureMeasurement meas(lib, plat);
    fitness::DefaultFitness plain;
    fitness::TemperatureSimplicityFitness complex_fit(idle, tj_max);

    core::GaParams params = quickParams(50, 20, 18);
    core::Engine plain_engine(params, lib, meas, plain);
    plain_engine.run();
    measure::SimTemperatureMeasurement meas2(lib, plat);
    core::Engine complex_engine(params, lib, meas2, complex_fit);
    complex_engine.run();

    const core::Individual& plain_best = plain_engine.bestEver();
    const core::Individual& simple_best = complex_engine.bestEver();

    EXPECT_LT(core::uniqueInstructionCount(simple_best),
              core::uniqueInstructionCount(plain_best));
    // Temperature within a few degrees of the plain power virus.
    const double plain_temp =
        plat->evaluate(plain_best.code, lib).dieTempC;
    const double simple_temp =
        plat->evaluate(simple_best.code, lib).dieTempC;
    EXPECT_GT(simple_temp, idle + (plain_temp - idle) * 0.85);
}

TEST(Integration, GaImprovesOverItsOwnSeedGeneration)
{
    for (const char* name : {"cortex-a15", "cortex-a7"}) {
        const auto plat = platform::Platform::byName(name);
        measure::SimPowerMeasurement meas(plat->library(), plat);
        fitness::DefaultFitness fit;
        core::Engine engine(quickParams(30, 12, 19), plat->library(),
                            meas, fit);
        engine.run();
        EXPECT_GT(engine.history().back().bestFitness,
                  engine.history().front().bestFitness)
            << name;
    }
}

} // namespace
} // namespace gest
