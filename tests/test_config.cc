/**
 * @file
 * Unit and integration tests for the configuration loader and the
 * configured-run orchestrator.
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "output/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace config {
namespace {

const char* kMinimalConfig = R"(
<gest_configuration>
  <ga population_size="10" individual_size="8" mutation_rate="0.1"
      generations="4" seed="3"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a7" min_cycles="1024"/>
  </measurement>
  <fitness class="DefaultFitness"/>
</gest_configuration>
)";

TEST(Config, ParsesGaParametersFromTableOne)
{
    const RunConfig cfg = parseConfig(R"(
<gest_configuration>
  <ga population_size="50" individual_size="50" mutation_rate="0.02"
      operand_mutation_prob="0.4" crossover_operator="one_point"
      parent_selection_method="tournament" tournament_size="5"
      elitism="true" generations="100" seed="42"/>
  <library name="arm"/>
</gest_configuration>
)");
    EXPECT_EQ(cfg.ga.populationSize, 50);
    EXPECT_EQ(cfg.ga.individualSize, 50);
    EXPECT_DOUBLE_EQ(cfg.ga.mutationRate, 0.02);
    EXPECT_DOUBLE_EQ(cfg.ga.operandMutationProb, 0.4);
    EXPECT_EQ(cfg.ga.crossover, core::CrossoverOperator::OnePoint);
    EXPECT_EQ(cfg.ga.selection, core::SelectionMethod::Tournament);
    EXPECT_EQ(cfg.ga.tournamentSize, 5);
    EXPECT_TRUE(cfg.ga.elitism);
    EXPECT_EQ(cfg.ga.generations, 100);
    EXPECT_EQ(cfg.ga.seed, 42u);
}

TEST(Config, LoadsBundledLibraries)
{
    const RunConfig arm = parseConfig(
        "<gest_configuration><library name=\"arm\"/>"
        "</gest_configuration>");
    EXPECT_GE(arm.library.findInstruction("FMLA"), 0);

    const RunConfig x86 = parseConfig(
        "<gest_configuration><library name=\"x86\"/>"
        "</gest_configuration>");
    EXPECT_GE(x86.library.findInstruction("MULPD"), 0);

    EXPECT_THROW(
        parseConfig("<gest_configuration><library name=\"mips\"/>"
                    "</gest_configuration>"),
        FatalError);
}

TEST(Config, ParsesFigure4StyleDefinitions)
{
    const RunConfig cfg = parseConfig(R"(
<gest_configuration>
  <operands>
    <operand id="mem_result" values="x2 x3 x4" type="register"/>
    <operand id="mem_address_register" values="x10" type="register"/>
    <operand id="immediate_value" min="0" max="256" stride="8"
             type="immediate"/>
  </operands>
  <instructions>
    <instruction name="LDR" num_of_operands="3" operand1="mem_result"
        operand2="mem_address_register" operand3="immediate_value"
        format="LDR op1,[op2,#op3]" type="mem"/>
  </instructions>
</gest_configuration>
)");
    ASSERT_EQ(cfg.library.numInstructions(), 1u);
    EXPECT_EQ(cfg.library.variantCount(0), 99u); // the paper's number
    EXPECT_EQ(cfg.library.instruction(0).cls, isa::InstrClass::Mem);
    EXPECT_EQ(cfg.library.instruction(0).opcode, isa::Opcode::Load);
}

TEST(Config, UndefinedOperandIdTerminates)
{
    EXPECT_THROW(parseConfig(R"(
<gest_configuration>
  <instructions>
    <instruction name="LDR" operand1="nonexistent"
        format="LDR op1" type="mem"/>
  </instructions>
</gest_configuration>
)"),
                 FatalError);
}

TEST(Config, OperandCountMismatchIsFatal)
{
    EXPECT_THROW(parseConfig(R"(
<gest_configuration>
  <operands>
    <operand id="r" values="x1" type="register"/>
  </operands>
  <instructions>
    <instruction name="ADD" num_of_operands="3" operand1="r"
        operand2="r" format="ADD op1, op2" type="int"/>
  </instructions>
</gest_configuration>
)"),
                 FatalError);
}

TEST(Config, SemanticAttributeOverridesName)
{
    const RunConfig cfg = parseConfig(R"(
<gest_configuration>
  <operands>
    <operand id="v" values="v0 v1" type="register"/>
  </operands>
  <instructions>
    <instruction name="MYSTERY" semantic="fmul" operand1="v"
        operand2="v" operand3="v" format="FMUL op1, op2, op3"
        type="float"/>
  </instructions>
</gest_configuration>
)");
    EXPECT_EQ(cfg.library.instruction(0).opcode, isa::Opcode::FMul);
}

TEST(Config, UnresolvableSemanticIsFatal)
{
    EXPECT_THROW(parseConfig(R"(
<gest_configuration>
  <operands><operand id="v" values="v0" type="register"/></operands>
  <instructions>
    <instruction name="WIBBLE" operand1="v" format="WOBBLE op1"
        type="int"/>
  </instructions>
</gest_configuration>
)"),
                 FatalError);
}

TEST(Config, RejectsForeignRootAndEmptyLibrary)
{
    EXPECT_THROW(parseConfig("<not_gest/>"), FatalError);
    EXPECT_THROW(parseConfig("<gest_configuration/>"), FatalError);
}

TEST(Config, MeasurementAndFitnessSelection)
{
    const RunConfig cfg = parseConfig(kMinimalConfig);
    EXPECT_EQ(cfg.measurementClass, "SimPowerMeasurement");
    EXPECT_EQ(cfg.fitnessClass, "DefaultFitness");
    ASSERT_NE(cfg.measurementConfig, nullptr);
    EXPECT_EQ(cfg.measurementConfig->attr("platform"), "cortex-a7");
}

TEST(Config, ExternalMeasurementConfigFile)
{
    const std::string dir = makeTempDir("gest-cfg");
    writeFile(dir + "/meas.xml",
              "<config platform=\"cortex-a15\" min_cycles=\"2048\"/>");
    writeFile(dir + "/main.xml", R"(
<gest_configuration>
  <ga population_size="4" individual_size="4" generations="2"
      tournament_size="2"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement" config="meas.xml"/>
</gest_configuration>
)");
    const RunConfig cfg = loadConfig(dir + "/main.xml");
    ASSERT_NE(cfg.measurementConfig, nullptr);
    EXPECT_EQ(cfg.measurementConfig->attr("platform"), "cortex-a15");
    removeAll(dir);
}

TEST(Config, TemplateInlineAndFromFile)
{
    const std::string dir = makeTempDir("gest-cfg");
    writeFile(dir + "/t.s", "head\n#loop_code\ntail\n");
    writeFile(dir + "/main.xml", R"(
<gest_configuration>
  <library name="arm"/>
  <template file="t.s"/>
</gest_configuration>
)");
    const RunConfig cfg = loadConfig(dir + "/main.xml");
    ASSERT_TRUE(cfg.asmTemplate.has_value());
    EXPECT_EQ(cfg.asmTemplate->render({"X"}), "head\nX\ntail\n");
    removeAll(dir);
}

TEST(RunFromConfig, EndToEndWithOutputDirectory)
{
    const std::string dir = makeTempDir("gest-run");
    RunConfig cfg = parseConfig(kMinimalConfig);
    cfg.outputDirectory = dir + "/out";

    const RunResult result = runFromConfig(cfg);
    EXPECT_EQ(result.finalPopulation.generation, 3);
    EXPECT_EQ(result.history.size(), 4u);
    EXPECT_GT(result.best.fitness, 0.0);
    EXPECT_EQ(result.evaluations, 10u + 3u * 9u);

    // Artifacts: populations 0..3, the configuration, individuals.
    for (int gen = 0; gen < 4; ++gen)
        EXPECT_TRUE(fileExists(dir + "/out/population_" +
                               std::to_string(gen) + ".pop"));
    EXPECT_TRUE(fileExists(dir + "/out/run_configuration.xml"));

    // Post-processing over the run directory agrees with the result.
    const auto summaries = output::summarizeRun(cfg.library, dir + "/out");
    ASSERT_EQ(summaries.size(), 4u);
    EXPECT_DOUBLE_EQ(summaries.back().bestFitness,
                     result.history.back().bestFitness);
    const core::Individual fittest =
        output::fittestInRun(cfg.library, dir + "/out");
    EXPECT_DOUBLE_EQ(fittest.fitness, result.best.fitness);
    removeAll(dir);
}

TEST(RunFromConfig, SeedPopulationFromPreviousRun)
{
    const std::string dir = makeTempDir("gest-run");
    RunConfig cfg = parseConfig(kMinimalConfig);
    cfg.outputDirectory = dir + "/first";
    const RunResult first = runFromConfig(cfg);

    RunConfig resumed = parseConfig(kMinimalConfig);
    resumed.seedPopulationPath = dir + "/first/population_3.pop";
    const RunResult second = runFromConfig(resumed);
    EXPECT_GE(second.best.fitness, first.best.fitness * 0.999);
    removeAll(dir);
}

TEST(RunFromConfig, UnknownClassesAreFatal)
{
    RunConfig cfg = parseConfig(kMinimalConfig);
    cfg.measurementClass = "NoSuchMeasurement";
    EXPECT_THROW(runFromConfig(cfg), FatalError);

    RunConfig cfg2 = parseConfig(kMinimalConfig);
    cfg2.fitnessClass = "NoSuchFitness";
    EXPECT_THROW(runFromConfig(cfg2), FatalError);
}

TEST(RunFromConfig, DeterministicAcrossInvocations)
{
    const RunConfig cfg = parseConfig(kMinimalConfig);
    const RunResult a = runFromConfig(cfg);
    const RunResult b = runFromConfig(cfg);
    EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
    EXPECT_EQ(a.best.code, b.best.code);
}

} // namespace
} // namespace config
} // namespace gest
