/**
 * @file
 * Unit tests for the RC thermal network.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "thermal/thermal_model.hh"
#include "util/logging.hh"

namespace gest {
namespace thermal {
namespace {

ThermalConfig
twoNode()
{
    ThermalConfig cfg;
    cfg.name = "test";
    cfg.capacitance = {2.0, 20.0};
    cfg.conductance = {4.0, 1.0};
    cfg.ambientC = 25.0;
    return cfg;
}

TEST(ThermalConfig, TotalResistanceIsSumOfStageResistances)
{
    EXPECT_DOUBLE_EQ(twoNode().totalResistance(), 0.25 + 1.0);
}

TEST(ThermalModel, SteadyStateFollowsOhmsLaw)
{
    const ThermalModel model(twoNode());
    EXPECT_DOUBLE_EQ(model.steadyStateDieTemp(0.0), 25.0);
    EXPECT_DOUBLE_EQ(model.steadyStateDieTemp(4.0), 25.0 + 4.0 * 1.25);
}

TEST(ThermalModel, SteadyStateNodeGradient)
{
    const ThermalModel model(twoNode());
    const std::vector<double> temps = model.steadyStateTemps(2.0);
    ASSERT_EQ(temps.size(), 2u);
    // Die is hotter than the spreader, which is hotter than ambient.
    EXPECT_GT(temps[0], temps[1]);
    EXPECT_GT(temps[1], 25.0);
    EXPECT_NEAR(temps[0], 25.0 + 2.0 * 1.25, 1e-9);
    EXPECT_NEAR(temps[1], 25.0 + 2.0 * 1.0, 1e-9);
}

TEST(ThermalModel, SteadyStateMonotoneInPower)
{
    const ThermalModel model(twoNode());
    double last = -1e9;
    for (double watts : {0.0, 1.0, 2.0, 5.0, 10.0}) {
        const double temp = model.steadyStateDieTemp(watts);
        EXPECT_GT(temp, last);
        last = temp;
    }
}

TEST(ThermalModel, TransientConvergesToSteadyState)
{
    ThermalModel model(twoNode());
    const double target = model.steadyStateDieTemp(3.0);
    // Integrate long enough: the slowest time constant is ~20 s.
    for (int step = 0; step < 400; ++step)
        model.step(3.0, 1.0);
    EXPECT_NEAR(model.dieTemp(), target, 0.05);
}

TEST(ThermalModel, TransientStartsAtAmbientAndHeats)
{
    ThermalModel model(twoNode());
    EXPECT_DOUBLE_EQ(model.dieTemp(), 25.0);
    model.step(5.0, 0.5);
    const double warm = model.dieTemp();
    EXPECT_GT(warm, 25.0);
    model.step(5.0, 0.5);
    EXPECT_GT(model.dieTemp(), warm);
}

TEST(ThermalModel, CoolsBackDownWhenPowerRemoved)
{
    ThermalModel model(twoNode());
    for (int step = 0; step < 100; ++step)
        model.step(5.0, 1.0);
    const double hot = model.dieTemp();
    for (int step = 0; step < 500; ++step)
        model.step(0.0, 1.0);
    EXPECT_LT(model.dieTemp(), hot);
    EXPECT_NEAR(model.dieTemp(), 25.0, 0.1);
}

TEST(ThermalModel, ResetRestoresAmbient)
{
    ThermalModel model(twoNode());
    model.step(10.0, 5.0);
    model.reset();
    EXPECT_DOUBLE_EQ(model.dieTemp(), 25.0);
}

TEST(ThermalModel, LeakageFeedbackRaisesEquilibrium)
{
    const ThermalModel model(twoNode());
    power::EnergyModel em;
    em.vddNominal = 1.0;
    em.leakageRefWatts = 0.5;
    em.leakageRefTempC = 25.0;
    em.leakageTempCoeff = 0.01;

    double total = 0.0;
    const double with_leak = model.solveWithLeakage(2.0, em, 1.0, &total);
    const double without = model.steadyStateDieTemp(2.0);
    EXPECT_GT(with_leak, without);
    EXPECT_GT(total, 2.0);
    // Fixed point: steady(total) == temperature.
    EXPECT_NEAR(model.steadyStateDieTemp(total), with_leak, 1e-6);
}

TEST(ThermalModel, RejectsMalformedLadders)
{
    ThermalConfig bad = twoNode();
    bad.conductance.pop_back();
    EXPECT_THROW(ThermalModel{bad}, FatalError);

    bad = twoNode();
    bad.capacitance.clear();
    bad.conductance.clear();
    EXPECT_THROW(ThermalModel{bad}, FatalError);

    bad = twoNode();
    bad.conductance[0] = -1.0;
    EXPECT_THROW(ThermalModel{bad}, FatalError);
}

TEST(ThermalPresets, AllLaddersWellFormed)
{
    for (const ThermalConfig& cfg :
         {xgene2Thermal(), versatileExpressThermal(),
          athlonX4Thermal()}) {
        EXPECT_NO_THROW(ThermalModel model(cfg));
        EXPECT_GT(cfg.totalResistance(), 0.0);
    }
}

TEST(ThermalPresets, ServerSinkBeatsBareTestChip)
{
    // The Versatile Express test chip has no heatsink: much higher
    // die-to-ambient resistance than the server package.
    EXPECT_GT(versatileExpressThermal().totalResistance(),
              xgene2Thermal().totalResistance() * 3);
}

} // namespace
} // namespace thermal
} // namespace gest
