/**
 * @file
 * Tests of the attribution subsystem: operand value-bins, the
 * class-neutral filler and its decode-invariance property, gene-by-gene
 * fitness attribution (determinism, bookkeeping invariants, artifact
 * formats) and the search-space coverage ledger (cell universe,
 * idempotent observation, the generation observer's CSV, and artifact
 * byte-identity of a run with the whole subsystem off vs on).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "arch/microop.hh"
#include "attribution/attribution.hh"
#include "attribution/attribution_io.hh"
#include "attribution/coverage.hh"
#include "config/config.hh"
#include "core/population.hh"
#include "fitness/fitness.hh"
#include "isa/standard_libs.hh"
#include "measure/measurement.hh"
#include "util/fileutil.hh"
#include "util/jsonlite.hh"
#include "util/random.hh"
#include "util/strutil.hh"
#include "xml/xml.hh"

namespace gest {
namespace {

/** The bundled libraries the filler property must hold over. */
std::vector<std::pair<const char*, isa::InstructionLibrary>>
bundledLibraries()
{
    std::vector<std::pair<const char*, isa::InstructionLibrary>> libs;
    libs.emplace_back("arm", isa::armLikeLibrary());
    libs.emplace_back("armv7", isa::armV7LikeLibrary());
    libs.emplace_back("x86", isa::x86LikeLibrary());
    libs.emplace_back("cache-stress", isa::armCacheStressLibrary());
    return libs;
}

/** Field-wise MicroOp equality (the struct has padding; no memcmp). */
bool
sameMicroOp(const arch::MicroOp& a, const arch::MicroOp& b)
{
    if (a.op != b.op || a.cls != b.cls || a.numSrc != b.numSrc ||
        a.numDst != b.numDst || a.imm != b.imm ||
        a.hasImm != b.hasImm || a.isLoad != b.isLoad ||
        a.isStore != b.isStore || a.isBranch != b.isBranch ||
        a.accessBytes != b.accessBytes)
        return false;
    for (int i = 0; i < 4; ++i) {
        if (a.src[i] != b.src[i])
            return false;
    }
    return a.dst[0] == b.dst[0] && a.dst[1] == b.dst[1];
}

/** A deterministic simulated measurement + fitness pair for tests. */
struct TestInstrument
{
    std::unique_ptr<measure::Measurement> measurement;
    std::unique_ptr<fitness::Fitness> fitness;
};

TestInstrument
makeInstrument(const isa::InstructionLibrary& lib)
{
    config::registerBuiltins();
    TestInstrument out;
    out.measurement = measure::MeasurementRegistry::instance().create(
        "SimIpcMeasurement", lib);
    const xml::Document doc =
        xml::parse("<config platform=\"xgene2\"/>", "test instrument");
    out.measurement->init(&doc.root());
    out.fitness =
        fitness::FitnessRegistry::instance().create("DefaultFitness");
    return out;
}

core::Individual
evaluatedIndividual(const isa::InstructionLibrary& lib,
                    TestInstrument& instrument, int genes,
                    std::uint64_t seed)
{
    core::Individual ind;
    ind.id = seed;
    Rng rng(seed);
    for (int g = 0; g < genes; ++g)
        ind.code.push_back(lib.randomInstance(rng));
    ind.measurements = instrument.measurement->measure(ind.code).values;
    ind.fitness = instrument.fitness->getFitness(ind, lib);
    ind.evaluated = true;
    return ind;
}

// ---------------------------------------------------------------------
// Operand value-bins.

TEST(OperandBins, RegistersGetOneBinEach)
{
    const isa::OperandDef def = isa::OperandDef::makeRegisters(
        "r", {"x0", "x1", "x2", "x3"});
    EXPECT_EQ(isa::operandBinCount(def), 4u);
    for (std::uint32_t c = 0; c < 4; ++c) {
        EXPECT_EQ(isa::operandBin(def, c), c);
        EXPECT_EQ(isa::operandBinLabel(def, c), def.registerName(c));
    }
}

TEST(OperandBins, WideImmediatesFoldIntoAtMostEightBins)
{
    // 33 values (0..256 stride 8) — the paper's Figure 4 example.
    const isa::OperandDef def =
        isa::OperandDef::makeImmediate("imm", 0, 256, 8);
    const std::size_t bins = isa::operandBinCount(def);
    EXPECT_EQ(bins, 8u);

    // Every choice maps to a valid bin, monotonically.
    std::size_t prev = 0;
    std::set<std::size_t> used;
    for (std::uint32_t c = 0; c < def.valueCount(); ++c) {
        const std::size_t b = isa::operandBin(def, c);
        ASSERT_LT(b, bins);
        EXPECT_GE(b, prev);
        prev = b;
        used.insert(b);
    }
    EXPECT_EQ(used.size(), bins);  // no empty bin

    // Labels describe disjoint, ordered, exhaustive value ranges.
    for (std::size_t b = 0; b < bins; ++b) {
        const std::string label = isa::operandBinLabel(def, b);
        EXPECT_FALSE(label.empty());
    }
}

TEST(OperandBins, NarrowImmediatesKeepOneBinPerValue)
{
    const isa::OperandDef def =
        isa::OperandDef::makeImmediate("imm", 0, 3, 1);
    EXPECT_EQ(isa::operandBinCount(def), 4u);
    for (std::uint32_t c = 0; c < 4; ++c) {
        EXPECT_EQ(isa::operandBin(def, c), c);
        EXPECT_EQ(isa::operandBinLabel(def, c),
                  std::to_string(def.immediateValue(c)));
    }
}

TEST(OperandBins, OutOfRangeChoiceClampsIntoLastBin)
{
    const isa::OperandDef def =
        isa::OperandDef::makeImmediate("imm", 0, 256, 8);
    EXPECT_EQ(isa::operandBin(def, 1000),
              isa::operandBinCount(def) - 1);
}

// ---------------------------------------------------------------------
// The class-neutral filler.

TEST(Filler, BundledLibrariesUseTheirNop)
{
    for (const auto& [name, lib] : bundledLibraries()) {
        for (int c = 0; c < isa::numInstrClasses; ++c) {
            const int def = attribution::fillerDefIndex(
                lib, static_cast<isa::InstrClass>(c));
            ASSERT_GE(def, 0) << name;
            EXPECT_EQ(lib.instruction(static_cast<std::size_t>(def)).cls,
                      isa::InstrClass::Nop)
                << name << " class " << c;
        }
    }
}

TEST(Filler, NopLessLibraryFallsBackToFewestOperandsSameClass)
{
    isa::InstructionLibrary lib;
    lib.addOperand(isa::OperandDef::makeRegisters(
        "ri", {"x0", "x1", "x2", "x3"}));
    lib.addInstruction("ADD3", {"ri", "ri", "ri"}, "ADD op1, op2, op3",
                       isa::InstrClass::ShortInt, isa::Opcode::Add);
    lib.addInstruction("MOV1", {"ri", "ri"}, "MOV op1, op2",
                       isa::InstrClass::ShortInt, isa::Opcode::Mov);
    const int def =
        attribution::fillerDefIndex(lib, isa::InstrClass::ShortInt);
    ASSERT_GE(def, 0);
    EXPECT_EQ(lib.instruction(static_cast<std::size_t>(def)).name,
              "MOV1");

    isa::InstructionInstance gene;
    gene.defIndex = 0;  // ADD3
    gene.operandChoice = {3, 2, 1};
    const isa::InstructionInstance filler =
        attribution::fillerFor(lib, gene);
    EXPECT_EQ(filler.defIndex, static_cast<std::uint32_t>(def));
    EXPECT_EQ(filler.operandChoice,
              (std::vector<std::uint32_t>{0, 0}));
    EXPECT_TRUE(lib.valid(filler));
}

TEST(Filler, EmptyLibraryHasNoFiller)
{
    const isa::InstructionLibrary lib;
    EXPECT_EQ(attribution::fillerDefIndex(lib, isa::InstrClass::Mem),
              -1);
}

// The property the whole ablation design rests on: substituting the
// filler for one gene never changes what any *other* gene decodes to
// (and keeps the body length, so loop tiling and alignment hold).
TEST(Filler, AblationLeavesOtherGenesDecodeInvariant)
{
    for (const auto& [name, lib] : bundledLibraries()) {
        Rng rng(0xab1a7e5u);
        for (int trial = 0; trial < 8; ++trial) {
            std::vector<isa::InstructionInstance> body;
            for (int g = 0; g < 12; ++g)
                body.push_back(lib.randomInstance(rng));
            const std::vector<arch::MicroOp> decoded =
                arch::decodeBody(lib, body);

            for (std::size_t i = 0; i < body.size(); ++i) {
                std::vector<isa::InstructionInstance> ablated = body;
                ablated[i] = attribution::fillerFor(lib, body[i]);
                ASSERT_TRUE(lib.valid(ablated[i])) << name;
                ASSERT_EQ(ablated.size(), body.size());

                const std::vector<arch::MicroOp> redecoded =
                    arch::decodeBody(lib, ablated);
                for (std::size_t j = 0; j < body.size(); ++j) {
                    if (j == i)
                        continue;
                    EXPECT_TRUE(
                        sameMicroOp(decoded[j], redecoded[j]))
                        << name << " trial " << trial << " ablate "
                        << i << " changed gene " << j;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// computeAttribution.

TEST(Attribution, DeterministicWithExactBookkeeping)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    TestInstrument instrument = makeInstrument(lib);
    const core::Individual ind =
        evaluatedIndividual(lib, instrument, 16, 42);

    const attribution::AttributionResult a =
        attribution::computeAttribution(lib, *instrument.measurement,
                                        *instrument.fitness, ind);
    const attribution::AttributionResult b =
        attribution::computeAttribution(lib, *instrument.measurement,
                                        *instrument.fitness, ind);

    EXPECT_EQ(a.individualId, ind.id);
    EXPECT_DOUBLE_EQ(a.baselineFitness, ind.fitness);
    ASSERT_EQ(a.genes.size(), ind.code.size());

    // Re-running on the same (deterministic simulated) measurement
    // reproduces every number exactly.
    EXPECT_EQ(a.evaluationsUsed, b.evaluationsUsed);
    EXPECT_DOUBLE_EQ(a.sumDelta, b.sumDelta);
    EXPECT_DOUBLE_EQ(a.wholeAblationDelta, b.wholeAblationDelta);
    for (std::size_t i = 0; i < a.genes.size(); ++i)
        EXPECT_DOUBLE_EQ(a.genes[i].deltaFitness,
                         b.genes[i].deltaFitness);

    // Bookkeeping: baseline + whole ablation + one eval per non-filler
    // gene (genes already equal to their filler ablate for free).
    std::uint64_t free_genes = 0;
    for (const isa::InstructionInstance& gene : ind.code) {
        if (attribution::fillerFor(lib, gene) == gene)
            ++free_genes;
    }
    EXPECT_EQ(a.evaluationsUsed, ind.code.size() + 2 - free_genes);

    double sum = 0.0;
    for (const attribution::GeneAttribution& g : a.genes) {
        EXPECT_DOUBLE_EQ(g.deltaFitness,
                         a.baselineFitness - g.fitnessWithout);
        sum += g.deltaFitness;
    }
    EXPECT_NEAR(a.sumDelta, sum, 1e-12);

    // Class aggregates cover every gene exactly once.
    int class_genes = 0;
    for (const attribution::ClassAttribution& c : a.classes) {
        EXPECT_GT(c.genes, 0);
        class_genes += c.genes;
    }
    EXPECT_EQ(class_genes, static_cast<int>(ind.code.size()));
    int bin_genes = 0;
    for (const attribution::OperandBinAttribution& ob : a.operandBins) {
        EXPECT_GT(ob.genes, 0);
        EXPECT_FALSE(ob.key.empty());
        bin_genes += ob.genes;
    }
    EXPECT_GE(bin_genes, 0);

    // topGenes: |Δ| descending, bounded by topK.
    EXPECT_LE(a.topGenes.size(), 5u);
    for (std::size_t i = 1; i < a.topGenes.size(); ++i) {
        EXPECT_GE(std::fabs(a.genes[a.topGenes[i - 1]].deltaFitness),
                  std::fabs(a.genes[a.topGenes[i]].deltaFitness));
    }
}

TEST(Attribution, AllNopChampionCostsOneEvaluation)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    TestInstrument instrument = makeInstrument(lib);

    const int nop = lib.findInstruction("NOP");
    ASSERT_GE(nop, 0);
    core::Individual ind;
    ind.id = 7;
    for (int g = 0; g < 6; ++g) {
        isa::InstructionInstance inst;
        inst.defIndex = static_cast<std::uint32_t>(nop);
        ind.code.push_back(inst);
    }
    ind.measurements = instrument.measurement->measure(ind.code).values;
    ind.fitness = instrument.fitness->getFitness(ind, lib);
    ind.evaluated = true;

    const attribution::AttributionResult result =
        attribution::computeAttribution(lib, *instrument.measurement,
                                        *instrument.fitness, ind);
    // Every gene is its own filler and the whole ablation equals the
    // baseline: only the baseline evaluation runs.
    EXPECT_EQ(result.evaluationsUsed, 1u);
    EXPECT_DOUBLE_EQ(result.sumDelta, 0.0);
    EXPECT_DOUBLE_EQ(result.wholeAblationDelta, 0.0);
}

TEST(Attribution, ArtifactsRoundTrip)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    TestInstrument instrument = makeInstrument(lib);
    const core::Individual ind =
        evaluatedIndividual(lib, instrument, 10, 99);

    attribution::AttributionResult result =
        attribution::computeAttribution(lib, *instrument.measurement,
                                        *instrument.fitness, ind);
    result.generation = 3;

    const std::string dir = makeTempDir("gest-attribution");
    const attribution::AttributionArtifacts artifacts =
        attribution::writeAttributionArtifacts(dir, "individual_99",
                                               result);

    const std::string csv = readFile(artifacts.csvPath);
    EXPECT_TRUE(startsWith(csv, "# gest-attribution v1\n"));
    EXPECT_NE(csv.find("# annotation individual_id 99\n"),
              std::string::npos);
    EXPECT_NE(csv.find("# annotation generation 3\n"),
              std::string::npos);
    EXPECT_NE(csv.find("gene,instruction,class,operands,delta_fitness,"
                       "fitness_without\n"),
              std::string::npos);
    // One data row per gene.
    std::size_t rows = 0;
    for (const std::string& line : split(csv, '\n')) {
        if (!line.empty() && line[0] != '#' &&
            line[0] >= '0' && line[0] <= '9')
            ++rows;
    }
    EXPECT_EQ(rows, ind.code.size());

    json::Value twin;
    std::string error;
    ASSERT_TRUE(
        json::parse(readFile(artifacts.jsonPath), twin, &error))
        << error;
    EXPECT_EQ(twin.numberOr("version", 0),
              attribution::attributionCsvVersion);
    EXPECT_EQ(twin.numberOr("individual_id", 0), 99.0);
    EXPECT_EQ(twin.numberOr("generation", -1), 3.0);
    EXPECT_DOUBLE_EQ(twin.numberOr("baseline_fitness", 0.0),
                     result.baselineFitness);
    const json::Value* genes = twin.find("genes");
    ASSERT_NE(genes, nullptr);
    EXPECT_EQ(genes->array.size(), ind.code.size());
    EXPECT_NE(twin.find("classes"), nullptr);
    EXPECT_NE(twin.find("operand_bins"), nullptr);
    EXPECT_NE(twin.find("top_genes"), nullptr);
    removeAll(dir);
}

// ---------------------------------------------------------------------
// The coverage ledger.

TEST(Coverage, CellUniverseMatchesTheLibrary)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const attribution::CoverageLedger ledger(lib);

    std::uint64_t expected = 0;
    for (std::size_t d = 0; d < lib.numInstructions(); ++d) {
        const isa::InstructionDef& def = lib.instruction(d);
        if (def.operandIndex.empty()) {
            ++expected;
            continue;
        }
        for (std::uint32_t op : def.operandIndex)
            expected += isa::operandBinCount(lib.operand(op));
    }
    EXPECT_EQ(ledger.cellsTotal(), expected);
    EXPECT_EQ(ledger.cellsSeen(), 0u);

    const attribution::CoverageLedger::Snapshot snapshot =
        ledger.snapshot();
    std::uint64_t class_total = 0;
    for (const auto& cls : snapshot.classes)
        class_total += cls.total;
    EXPECT_EQ(class_total, expected);
}

TEST(Coverage, ObserveIsIdempotent)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    attribution::CoverageLedger ledger(lib);

    Rng rng(3);
    std::vector<isa::InstructionInstance> code;
    for (int g = 0; g < 20; ++g)
        code.push_back(lib.randomInstance(rng));

    std::uint64_t touches = 0;
    const std::uint64_t fresh = ledger.observe(code, &touches);
    EXPECT_GT(fresh, 0u);
    EXPECT_GE(touches, fresh);
    EXPECT_EQ(ledger.cellsSeen(), fresh);

    // Re-observing the same code finds nothing new.
    std::uint64_t touches2 = 0;
    EXPECT_EQ(ledger.observe(code, &touches2), 0u);
    EXPECT_EQ(touches2, touches);
    EXPECT_EQ(ledger.cellsSeen(), fresh);
}

TEST(Coverage, ObserverWritesCsvAndNotifiesListener)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    attribution::CoverageLedger ledger(lib);
    const std::string dir = makeTempDir("gest-coverage");
    ledger.setCsvPath(dir + "/coverage.csv");

    std::vector<attribution::CoverageLedger::Snapshot> seen;
    ledger.setGenerationListener(
        [&](const attribution::CoverageLedger::Snapshot& s) {
            seen.push_back(s);
        });

    Rng rng(11);
    core::Population pop;
    for (int i = 0; i < 4; ++i) {
        core::Individual ind;
        ind.id = static_cast<std::uint64_t>(i);
        for (int g = 0; g < 8; ++g)
            ind.code.push_back(lib.randomInstance(rng));
        ind.evaluated = true;
        pop.individuals.push_back(ind);
    }

    core::GenerationRecord record;
    record.generation = 0;
    ledger.onGenerationEvaluated(pop, record);
    record.generation = 1;
    ledger.onGenerationEvaluated(pop, record);

    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].generation, 0);
    EXPECT_GT(seen[0].newCells, 0u);
    EXPECT_EQ(seen[1].generation, 1);
    EXPECT_EQ(seen[1].newCells, 0u);  // same population again
    EXPECT_EQ(seen[1].cellsSeen, seen[0].cellsSeen);
    EXPECT_GT(seen[0].saturationPct, 0.0);
    EXPECT_LE(seen[0].saturationPct, 100.0);

    const std::string csv = readFile(dir + "/coverage.csv");
    EXPECT_TRUE(startsWith(csv, "# gest-coverage v1\n"));
    EXPECT_NE(csv.find("# cells_total "), std::string::npos);
    EXPECT_NE(
        csv.find("generation,cells_new,cells_seen,cells_total,"
                 "saturation_pct,novelty_rate,"),
        std::string::npos);
    EXPECT_NE(csv.find("\n0,"), std::string::npos);
    EXPECT_NE(csv.find("\n1,"), std::string::npos);

    const std::string js = ledger.coverageJson();
    json::Value parsed;
    ASSERT_TRUE(json::parse(js, parsed, nullptr)) << js;
    EXPECT_EQ(parsed.numberOr("cells_total", 0),
              static_cast<double>(ledger.cellsTotal()));
    EXPECT_EQ(parsed.numberOr("generation", -1), 1.0);
    ASSERT_NE(parsed.find("classes"), nullptr);
    EXPECT_EQ(parsed.find("classes")->array.size(),
              static_cast<std::size_t>(isa::numInstrClasses));
    removeAll(dir);
}

// ---------------------------------------------------------------------
// End-to-end: the subsystem off leaves every shared artifact
// byte-identical; on, it only adds files.

const char* kRunConfig = R"(
<gest_configuration>
  <ga population_size="8" individual_size="10" mutation_rate="0.1"
      generations="3" seed="23" fitness_cache_size="32"/>
  <library name="arm"/>
  <measurement class="SimIpcMeasurement">
    <config platform="xgene2"/>
  </measurement>
  <fitness class="DefaultFitness"/>
</gest_configuration>
)";

TEST(Coverage, RunArtifactsByteIdenticalWithSubsystemOff)
{
    const std::string dir = makeTempDir("gest-attr-onoff");

    config::RunConfig off = config::parseConfig(kRunConfig);
    off.outputDirectory = dir + "/off";
    const config::RunResult off_result = config::runFromConfig(off);

    config::RunConfig on = config::parseConfig(kRunConfig);
    on.outputDirectory = dir + "/on";
    on.recordCoverage = true;
    on.recordAttribution = true;
    const config::RunResult on_result = config::runFromConfig(on);

    EXPECT_DOUBLE_EQ(off_result.best.fitness, on_result.best.fitness);
    EXPECT_EQ(off_result.best.id, on_result.best.id);

    // Observation only: every artifact the plain run writes is
    // byte-identical (history.csv and the stats dumps carry wall-clock
    // noise; everything content-bearing must match).
    for (const char* name :
         {"digests.csv", "population_0.pop", "population_1.pop",
          "population_2.pop", "lineage.csv", "analytics.csv"}) {
        EXPECT_EQ(readFile(dir + "/off/" + name),
                  readFile(dir + "/on/" + name))
            << name;
    }

    // The enabled run adds its artifacts and seals them in the
    // manifest; the plain run has neither.
    EXPECT_FALSE(fileExists(dir + "/off/coverage.csv"));
    EXPECT_FALSE(dirExists(dir + "/off/attribution"));
    EXPECT_TRUE(fileExists(dir + "/on/coverage.csv"));
    EXPECT_FALSE(on_result.coverageFile.empty());
    ASSERT_FALSE(on_result.attributionFiles.empty());
    for (const std::string& path : on_result.attributionFiles)
        EXPECT_TRUE(fileExists(path)) << path;

    const std::string off_manifest = readFile(dir + "/off/manifest.json");
    const std::string on_manifest = readFile(dir + "/on/manifest.json");
    EXPECT_EQ(off_manifest.find("record_coverage"), std::string::npos);
    EXPECT_NE(on_manifest.find("\"record_coverage\": true"),
              std::string::npos);
    EXPECT_NE(on_manifest.find("\"record_attribution\": true"),
              std::string::npos);
    EXPECT_NE(on_manifest.find("\"kind\": \"coverage\""),
              std::string::npos);
    EXPECT_NE(on_manifest.find("\"kind\": \"attribution\""),
              std::string::npos);
    removeAll(dir);
}

} // namespace
} // namespace gest
