/**
 * @file
 * Property tests for the steady-state fast path: the periodic-trace
 * detector plus exact tiling must be *bit-identical* to full
 * simulation — same Evaluation, same materialized trace, same GA run
 * artifacts — on every shipped platform, for random and degenerate
 * bodies, with and without a signal probe attached.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "config/config.hh"
#include "platform/platform.hh"
#include "signal/signal_probe.hh"
#include "util/fileutil.hh"
#include "util/random.hh"
#include "util/strutil.hh"

namespace gest {
namespace {

std::vector<isa::InstructionInstance>
randomBody(const isa::InstructionLibrary& lib, int size,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < size; ++i)
        code.push_back(lib.randomInstance(rng));
    return code;
}

/** Bitwise double equality (stricter than ==: distinguishes ±0). */
::testing::AssertionResult
bitsEqual(const char* a_expr, const char* b_expr, double a, double b)
{
    if (std::memcmp(&a, &b, sizeof a) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a_expr << " (" << a << ") and " << b_expr << " (" << b
           << ") differ bitwise";
}

#define EXPECT_BITEQ(a, b) EXPECT_PRED_FORMAT2(bitsEqual, a, b)

/** Expand a possibly-tiled trace into full virtual per-cycle rows. */
std::vector<arch::CycleStats>
expanded(const arch::SimResult& sim)
{
    arch::SimResult copy = sim;
    arch::materializeTrace(copy);
    return copy.trace;
}

/**
 * The whole contract in one place: every scalar, every counter and
 * every materialized trace row of @p fast (steady on) must equal
 * @p full (steady off) exactly.
 */
void
expectBitIdentical(const platform::Evaluation& fast,
                   const platform::Evaluation& full,
                   const std::string& what)
{
    SCOPED_TRACE(what);

    EXPECT_EQ(fast.sim.cycles, full.sim.cycles);
    EXPECT_EQ(fast.sim.instructions, full.sim.instructions);
    EXPECT_EQ(fast.sim.iterations, full.sim.iterations);
    EXPECT_BITEQ(fast.sim.ipc, full.sim.ipc);
    EXPECT_EQ(fast.sim.classCounts, full.sim.classCounts);
    EXPECT_EQ(fast.sim.cacheAccesses, full.sim.cacheAccesses);
    EXPECT_EQ(fast.sim.cacheMisses, full.sim.cacheMisses);
    EXPECT_EQ(fast.sim.l2Accesses, full.sim.l2Accesses);
    EXPECT_EQ(fast.sim.l2Misses, full.sim.l2Misses);
    EXPECT_EQ(fast.sim.mispredicts, full.sim.mispredicts);
    EXPECT_EQ(fast.sim.totalToggleBits, full.sim.totalToggleBits);
    EXPECT_BITEQ(fast.sim.avgWindowOccupancy,
                 full.sim.avgWindowOccupancy);

    const std::vector<arch::CycleStats> fast_rows = expanded(fast.sim);
    const std::vector<arch::CycleStats> full_rows = expanded(full.sim);
    ASSERT_EQ(fast_rows.size(), full_rows.size());
    for (std::size_t i = 0; i < fast_rows.size(); ++i) {
        if (std::memcmp(&fast_rows[i], &full_rows[i],
                        sizeof(arch::CycleStats)) != 0) {
            ADD_FAILURE() << "trace row " << i << " of "
                          << fast_rows.size() << " differs (tiling "
                          << "prefix " << fast.sim.tiling.prefix
                          << " period " << fast.sim.tiling.period
                          << " repeats " << fast.sim.tiling.repeats
                          << " tail " << fast.sim.tiling.tail << ")";
            return;
        }
    }

    EXPECT_BITEQ(fast.ipc, full.ipc);
    EXPECT_BITEQ(fast.corePowerWatts, full.corePowerWatts);
    EXPECT_BITEQ(fast.chipPowerWatts, full.chipPowerWatts);
    EXPECT_BITEQ(fast.dieTempC, full.dieTempC);
    EXPECT_EQ(fast.hasVoltage, full.hasVoltage);
    EXPECT_BITEQ(fast.vMin, full.vMin);
    EXPECT_BITEQ(fast.vMax, full.vMax);
    EXPECT_BITEQ(fast.peakToPeakV, full.peakToPeakV);
}

/** Evaluate @p code both ways and assert exact agreement. */
void
checkParity(const platform::Platform& plat,
            const std::vector<isa::InstructionInstance>& code,
            const std::string& what, std::uint64_t min_cycles = 4096)
{
    const bool want_voltage = plat.pdnModel() != nullptr;

    platform::EvalScratch scratch;
    platform::Evaluation fast, full;

    scratch.steadyState = true;
    plat.evaluateInto(code, plat.library(), want_voltage, min_cycles,
                      nullptr, scratch, fast);
    scratch.steadyState = false;
    plat.evaluateInto(code, plat.library(), want_voltage, min_cycles,
                      nullptr, scratch, full);

    EXPECT_EQ(full.sim.simulatedCycles, full.sim.cycles);
    EXPECT_FALSE(full.sim.steadyHit());
    expectBitIdentical(fast, full, what);
}

// ------------------------------------------------ randomized parity

class SteadyParityTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{};

TEST_P(SteadyParityTest, RandomBodiesBitIdentical)
{
    const auto& [platform_name, seed] = GetParam();
    const auto plat = platform::Platform::byName(platform_name);
    // Vary body size with the seed so both short (highly periodic)
    // and long (window-straddling) loops are covered.
    const int size = 4 + (seed * 7) % 37;
    const auto code = randomBody(plat->library(), size,
                                 static_cast<std::uint64_t>(seed));
    checkParity(*plat, code,
                platform_name + " seed " + std::to_string(seed) +
                    " size " + std::to_string(size));
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, SteadyParityTest,
    ::testing::Combine(::testing::Values("cortex-a15", "cortex-a7",
                                         "xgene2", "athlon-x4",
                                         "xgene2-llc"),
                       ::testing::Range(1, 13)));

// ------------------------------------------------ degenerate bodies

TEST(SteadyDegenerate, SingleInstructionBody)
{
    for (const std::string& name : platform::Platform::presetNames()) {
        const auto plat = platform::Platform::byName(name);
        const auto code = randomBody(plat->library(), 1, 99);
        checkParity(*plat, code, name + " single-instruction body");
    }
}

TEST(SteadyDegenerate, NonRecurringBodyFallsBack)
{
    // x4 += x5 every iteration: the architectural state never recurs
    // at a loop boundary inside the horizon, so the detector must
    // sample, give up and leave a full simulation behind.
    const auto plat = platform::Platform::byName("cortex-a15");
    const std::vector<isa::InstructionInstance> code = {
        plat->library().makeInstance("ADD", {"x4", "x4", "x5"}),
        plat->library().makeInstance("MUL", {"x6", "x4", "x7"}),
    };
    platform::EvalScratch scratch;
    platform::Evaluation fast;
    plat->evaluateInto(code, plat->library(), false, 4096, nullptr,
                       scratch, fast);
    EXPECT_FALSE(fast.sim.steadyHit());
    EXPECT_EQ(fast.sim.simulatedCycles, fast.sim.cycles);
    checkParity(*plat, code, "non-recurring body");
}

TEST(SteadyDegenerate, CacheThrashFallbackStaysExact)
{
    // The LLC-stress platform: a body whose pointer register strides
    // through the 1 MiB buffer keeps mutating cache state, exercising
    // either a late hit or the clean fallback; exactness must hold
    // regardless.
    const auto plat = platform::Platform::byName("xgene2-llc");
    for (int seed = 1; seed <= 4; ++seed) {
        const auto code = randomBody(plat->library(), 24,
                                     static_cast<std::uint64_t>(seed));
        checkParity(*plat, code,
                    "llc thrash seed " + std::to_string(seed), 16384);
    }
}

// ------------------------------------------------ detector engages

TEST(SteadyDetector, HitsOnSimpleLoop)
{
    // A tight ALU loop reaches a steady state within a few iterations;
    // the detector must engage and skip most of the horizon.
    const auto plat = platform::Platform::byName("cortex-a15");
    const std::vector<isa::InstructionInstance> code = {
        plat->library().makeInstance("ADD", {"x4", "x5", "x6"}),
        plat->library().makeInstance("MUL", {"x7", "x8", "x9"}),
        plat->library().makeInstance("EOR", {"x6", "x5", "x8"}),
    };
    platform::EvalScratch scratch;
    platform::Evaluation eval;
    plat->evaluateInto(code, plat->library(), false, 4096, nullptr,
                       scratch, eval);
    EXPECT_TRUE(eval.sim.steadyHit());
    EXPECT_LT(eval.sim.simulatedCycles, eval.sim.cycles / 2);
    EXPECT_TRUE(eval.sim.tiling.tiled());
}

// ------------------------------------------------ probe transparency

TEST(SteadyProbe, ProbeOnOffBitIdentical)
{
    for (const char* name : {"cortex-a15", "athlon-x4"}) {
        const auto plat = platform::Platform::byName(name);
        const auto code = randomBody(plat->library(), 12, 7);
        const bool want_voltage = plat->pdnModel() != nullptr;

        platform::EvalScratch scratch;  // steady on
        platform::Evaluation probed, unprobed;
        signal::SignalProbe probe;
        plat->evaluateInto(code, plat->library(), want_voltage, 4096,
                           &probe, scratch, probed);
        plat->evaluateInto(code, plat->library(), want_voltage, 4096,
                           nullptr, scratch, unprobed);

        // With a probe the trace is materialized up front; without it
        // the tiled layout is kept. Both must expand to the same rows
        // and carry the same scalars.
        EXPECT_FALSE(probed.sim.tiling.tiled());
        expectBitIdentical(unprobed, probed,
                           std::string(name) + " probe parity");
    }
}

// ------------------------------------------------ whole-run parity

TEST(SteadyRun, RunArtifactsIdenticalEitherWay)
{
    const std::string dir_on = "steady_run_on";
    const std::string dir_off = "steady_run_off";
    auto config_text = [](const std::string& out_dir) {
        return std::string(
                   "<gest_configuration>\n"
                   "  <ga population_size=\"6\" individual_size=\"10\" "
                   "mutation_rate=\"0.05\" "
                   "crossover_operator=\"one_point\" "
                   "parent_selection_method=\"tournament\" "
                   "tournament_size=\"3\" elitism=\"true\" "
                   "generations=\"3\" seed=\"11\"/>\n"
                   "  <library name=\"arm\"/>\n"
                   "  <measurement class=\"SimPowerMeasurement\">\n"
                   "    <config platform=\"cortex-a15\"/>\n"
                   "  </measurement>\n"
                   "  <fitness class=\"DefaultFitness\"/>\n"
                   "  <output directory=\"") +
               out_dir + "\"/>\n</gest_configuration>\n";
    };

    config::RunConfig on = config::parseConfig(config_text(dir_on));
    on.steadyStateOverride = true;
    config::RunConfig off = config::parseConfig(config_text(dir_off));
    off.steadyStateOverride = false;

    const config::RunResult r_on = config::runFromConfig(on);
    const config::RunResult r_off = config::runFromConfig(off);

    EXPECT_EQ(r_on.best.fitness, r_off.best.fitness);
    EXPECT_EQ(r_on.best.id, r_off.best.id);
    ASSERT_EQ(r_on.history.size(), r_off.history.size());
    for (std::size_t i = 0; i < r_on.history.size(); ++i) {
        EXPECT_BITEQ(r_on.history[i].bestFitness,
                     r_off.history[i].bestFitness);
        EXPECT_BITEQ(r_on.history[i].averageFitness,
                     r_off.history[i].averageFitness);
    }

    // lineage.csv is wall-clock free and must match byte for byte.
    // history.csv carries timing columns; its deterministic prefix
    // (generation..cache_misses) must match row by row.
    std::string lineage_on, lineage_off;
    ASSERT_TRUE(tryReadFile(dir_on + "/lineage.csv", lineage_on));
    ASSERT_TRUE(tryReadFile(dir_off + "/lineage.csv", lineage_off));
    EXPECT_EQ(lineage_on, lineage_off);

    std::string hist_on, hist_off;
    ASSERT_TRUE(tryReadFile(dir_on + "/history.csv", hist_on));
    ASSERT_TRUE(tryReadFile(dir_off + "/history.csv", hist_off));
    const std::vector<std::string> rows_on = split(hist_on, '\n');
    const std::vector<std::string> rows_off = split(hist_off, '\n');
    ASSERT_EQ(rows_on.size(), rows_off.size());
    for (std::size_t i = 0; i < rows_on.size(); ++i) {
        const auto f_on = split(rows_on[i], ',');
        const auto f_off = split(rows_off[i], ',');
        const std::size_t deterministic =
            std::min<std::size_t>(8, std::min(f_on.size(),
                                              f_off.size()));
        for (std::size_t c = 0; c < deterministic; ++c)
            EXPECT_EQ(f_on[c], f_off[c])
                << "history.csv row " << i << " column " << c;
    }
}

} // namespace
} // namespace gest
