/**
 * @file
 * Unit tests for the evolution-analytics subsystem: population
 * analytics math against hand computations, the lineage ledger and its
 * parser, champion-ancestry reconstruction (including resumed runs),
 * the recorder attached to a real engine run, and the bit-identical
 * guarantee with analytics on versus off.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/analytics.hh"
#include "analysis/lineage.hh"
#include "analysis/recorder.hh"
#include "core/engine.hh"
#include "isa/standard_libs.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace analysis {
namespace {

/** Deterministic synthetic measurement: count of a target class. */
class ClassCountMeasurement : public measure::Measurement
{
  public:
    ClassCountMeasurement(const isa::InstructionLibrary& lib,
                          isa::InstrClass target)
        : _lib(lib), _target(target)
    {}

    measure::MeasurementResult
    measure(const std::vector<isa::InstructionInstance>& code) override
    {
        double count = 0.0;
        for (const isa::InstructionInstance& inst : code) {
            if (_lib.instruction(inst.defIndex).cls == _target)
                count += 1.0;
        }
        return {{count, static_cast<double>(code.size())}};
    }

    std::vector<std::string>
    valueNames() const override
    {
        return {"target_count", "size"};
    }

    std::string name() const override { return "ClassCountMeasurement"; }

  private:
    const isa::InstructionLibrary& _lib;
    isa::InstrClass _target;
};

/** First definition index of the given class; panics if absent. */
std::size_t
defOfClass(const isa::InstructionLibrary& lib, isa::InstrClass cls)
{
    for (std::size_t i = 0; i < lib.numInstructions(); ++i) {
        if (lib.instruction(i).cls == cls)
            return i;
    }
    panic("library lacks class");
}

core::GaParams
smallParams()
{
    core::GaParams params;
    params.populationSize = 12;
    params.individualSize = 10;
    params.mutationRate = 0.08;
    params.generations = 8;
    params.seed = 21;
    return params;
}

// --------------------------------------------------- analytics math

TEST(Analytics, ClassMixMatchesHandComputation)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Rng rng(3);
    const isa::InstructionInstance short_int =
        lib.randomInstanceOf(defOfClass(lib, isa::InstrClass::ShortInt),
                             rng);
    const isa::InstructionInstance mem =
        lib.randomInstanceOf(defOfClass(lib, isa::InstrClass::Mem), rng);
    const isa::InstructionInstance nop =
        lib.randomInstanceOf(defOfClass(lib, isa::InstrClass::Nop), rng);

    core::Population pop;
    core::Individual a, b;
    a.code = {short_int, short_int, mem};
    b.code = {mem, nop, short_int};
    pop.individuals = {a, b};

    // Hand count: 3 short-int, 2 mem, 1 nop over the six genes.
    const auto mix = populationClassMix(lib, pop);
    EXPECT_EQ(mix[static_cast<int>(isa::InstrClass::ShortInt)], 3u);
    EXPECT_EQ(mix[static_cast<int>(isa::InstrClass::Mem)], 2u);
    EXPECT_EQ(mix[static_cast<int>(isa::InstrClass::Nop)], 1u);
    EXPECT_EQ(mix[static_cast<int>(isa::InstrClass::LongInt)], 0u);
    EXPECT_EQ(mix[static_cast<int>(isa::InstrClass::FloatSimd)], 0u);
    EXPECT_EQ(mix[static_cast<int>(isa::InstrClass::Branch)], 0u);
}

TEST(Analytics, EntropyZeroForClonesOneBitForEvenSplit)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Rng rng(4);
    const isa::InstructionInstance a = lib.randomInstance(rng);
    isa::InstructionInstance b = lib.randomInstance(rng);
    while (b.defIndex == a.defIndex)
        b = lib.randomInstance(rng);

    core::Population clones;
    for (int i = 0; i < 4; ++i) {
        core::Individual ind;
        ind.code = {a, a, a};
        clones.individuals.push_back(ind);
    }
    EXPECT_DOUBLE_EQ(geneEntropyBits(clones), 0.0);

    // Two individuals on defIndex A, two on B, at every position: the
    // per-position distribution is 50/50, i.e. exactly one bit.
    core::Population split = clones;
    split.individuals[2].code = {b, b, b};
    split.individuals[3].code = {b, b, b};
    EXPECT_NEAR(geneEntropyBits(split), 1.0, 1e-12);

    EXPECT_DOUBLE_EQ(geneEntropyBits(core::Population{}), 0.0);
}

TEST(Analytics, PairwiseDiversityBounds)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Rng rng(5);
    const isa::InstructionInstance a = lib.randomInstance(rng);
    isa::InstructionInstance b = lib.randomInstance(rng);
    while (b.defIndex == a.defIndex)
        b = lib.randomInstance(rng);

    core::Population clones;
    for (int i = 0; i < 3; ++i) {
        core::Individual ind;
        ind.code = {a, a};
        clones.individuals.push_back(ind);
    }
    EXPECT_DOUBLE_EQ(pairwiseDiversity(clones), 0.0);

    // Two individuals differing at every gene: distance exactly 1.
    core::Population opposed;
    core::Individual i1, i2;
    i1.code = {a, a};
    i2.code = {b, b};
    opposed.individuals = {i1, i2};
    EXPECT_DOUBLE_EQ(pairwiseDiversity(opposed), 1.0);

    EXPECT_DOUBLE_EQ(pairwiseDiversity(core::Population{}), 0.0);
}

TEST(Analytics, FitnessQuartilesHandComputed)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Rng rng(6);
    core::Population pop;
    for (int i = 0; i < 5; ++i) {
        core::Individual ind;
        ind.code = {lib.randomInstance(rng)};
        ind.fitness = static_cast<double>(5 - i); // 5,4,3,2,1
        ind.evaluated = true;
        pop.individuals.push_back(ind);
    }
    const AnalyticsRow row = computeAnalytics(lib, pop);
    EXPECT_DOUBLE_EQ(row.fitnessMin, 1.0);
    EXPECT_DOUBLE_EQ(row.fitnessQ1, 2.0);
    EXPECT_DOUBLE_EQ(row.fitnessMedian, 3.0);
    EXPECT_DOUBLE_EQ(row.fitnessQ3, 4.0);
    EXPECT_DOUBLE_EQ(row.fitnessMax, 5.0);
}

TEST(Analytics, WriterParserRoundTrip)
{
    const std::string dir = makeTempDir("gest-analysis");
    AnalyticsRow row;
    row.generation = 2;
    row.classMix[0] = 7;
    row.classMix[3] = 11;
    row.geneEntropyBits = 1.25;
    row.pairwiseDiversity = 0.5;
    row.fitnessMin = 0.5;
    row.fitnessQ1 = 0.75;
    row.fitnessMedian = 1.0;
    row.fitnessQ3 = 1.5;
    row.fitnessMax = 2.0;
    row.crossoverChildren = 4;
    row.crossoverImproved = 1;
    row.mutationChildren = 9;
    row.mutationImproved = 2;
    row.eliteCopies = 1;
    {
        AnalyticsWriter writer(dir + "/analytics.csv");
        writer.append(row);
    }
    std::vector<AnalyticsRow> rows;
    ASSERT_TRUE(tryLoadAnalytics(dir, rows));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].generation, 2);
    EXPECT_EQ(rows[0].classMix, row.classMix);
    EXPECT_DOUBLE_EQ(rows[0].geneEntropyBits, 1.25);
    EXPECT_DOUBLE_EQ(rows[0].pairwiseDiversity, 0.5);
    EXPECT_DOUBLE_EQ(rows[0].fitnessQ3, 1.5);
    EXPECT_EQ(rows[0].mutationChildren, 9u);
    EXPECT_EQ(rows[0].eliteCopies, 1u);

    // Absent file: optional, not an error.
    std::vector<AnalyticsRow> none;
    EXPECT_FALSE(tryLoadAnalytics(dir + "/nowhere", none));
    removeAll(dir);
}

// ------------------------------------------------------------ ledger

TEST(LineageLedger, SealParseRoundTrip)
{
    const std::string dir = makeTempDir("gest-analysis");
    LineageLedger ledger(dir + "/lineage.csv");

    core::Population gen0;
    for (std::uint64_t id = 1; id <= 2; ++id) {
        core::Individual ind;
        ind.id = id;
        ind.fitness = static_cast<double>(id) * 0.5;
        ind.evaluated = true;
        gen0.individuals.push_back(ind);

        LineageEvent birth;
        birth.generation = 0;
        birth.id = id;
        birth.op = BirthOp::Seed;
        ledger.recordBirth(birth);
    }
    EXPECT_EQ(ledger.sealGeneration(gen0).size(), 2u);

    LineageEvent child;
    child.generation = 1;
    child.id = 3;
    child.op = BirthOp::Mutation;
    child.parent1 = 1;
    child.parent2 = 2;
    child.mutatedGenes = {4, 7};
    ledger.recordBirth(child);
    core::Population gen1;
    core::Individual ind;
    ind.id = 3;
    ind.fitness = 1.75;
    ind.evaluated = true;
    gen1.individuals.push_back(ind);
    ledger.sealGeneration(gen1);
    EXPECT_EQ(ledger.sealedEvents(), 3u);

    double fitness = 0.0;
    ASSERT_TRUE(ledger.fitnessOf(3, fitness));
    EXPECT_DOUBLE_EQ(fitness, 1.75);
    EXPECT_FALSE(ledger.fitnessOf(99, fitness));

    const std::vector<LineageEvent> events = loadLineage(dir);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].op, BirthOp::Seed);
    EXPECT_DOUBLE_EQ(events[0].fitness, 0.5);
    EXPECT_EQ(events[2].id, 3u);
    EXPECT_EQ(events[2].parent1, 1u);
    EXPECT_EQ(events[2].parent2, 2u);
    EXPECT_EQ(events[2].mutatedGenes,
              (std::vector<std::uint32_t>{4, 7}));
    EXPECT_DOUBLE_EQ(events[2].fitness, 1.75);
    removeAll(dir);
}

TEST(LineageLedger, ParserRejectsMalformedInput)
{
    EXPECT_THROW(parseLineage(""), FatalError);
    EXPECT_THROW(parseLineage("# gest-lineage v1\n"), FatalError);
    const std::string header =
        "generation,id,op,parent1,parent2,mutated_genes,"
        "mutated_indices,fitness\n";
    // Truncated row.
    EXPECT_THROW(parseLineage(header + "0,1,seed\n"), FatalError);
    // Unknown operator spelling.
    EXPECT_THROW(parseLineage(header + "0,1,teleport,0,0,0,,1.0\n"),
                 FatalError);
    // Wrong file type entirely.
    EXPECT_THROW(parseLineage("time,value\n0,1\n"), FatalError);
    // A well-formed file parses.
    EXPECT_EQ(parseLineage(header + "0,1,seed,0,0,0,,1.0\n").size(), 1u);
}

TEST(LineageLedger, LoadFatalsWithActionableMessageWhenAbsent)
{
    const std::string dir = makeTempDir("gest-analysis");
    try {
        loadLineage(dir);
        FAIL() << "expected FatalError";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find("analytics"),
                  std::string::npos);
    }
    removeAll(dir);
}

// -------------------------------------------------------- ancestry

LineageEvent
makeEvent(int generation, std::uint64_t id, BirthOp op,
          std::uint64_t parent1, std::uint64_t parent2, double fitness)
{
    LineageEvent event;
    event.generation = generation;
    event.id = id;
    event.op = op;
    event.parent1 = parent1;
    event.parent2 = parent2;
    event.fitness = fitness;
    return event;
}

TEST(Ancestry, FollowsFitterParentToGenerationZero)
{
    const std::vector<LineageEvent> events = {
        makeEvent(0, 1, BirthOp::Seed, 0, 0, 1.0),
        makeEvent(0, 2, BirthOp::Seed, 0, 0, 2.0),
        makeEvent(1, 3, BirthOp::Crossover, 1, 2, 1.5),
        makeEvent(2, 4, BirthOp::Mutation, 3, 2, 3.0),
    };
    const Ancestry anc = championAncestry(events);
    EXPECT_TRUE(anc.reachesGeneration0);
    EXPECT_EQ(anc.ancestorCount, 4u);
    EXPECT_TRUE(anc.unknownParents.empty());
    // Champion is id 4; the fitter of its parents (2 at 2.0 vs 3 at
    // 1.5) is the seed, so the primary line is 4 -> 2.
    ASSERT_EQ(anc.chain.size(), 2u);
    EXPECT_EQ(events[anc.chain[0]].id, 4u);
    EXPECT_EQ(events[anc.chain[1]].id, 2u);
    EXPECT_EQ(anc.opCounts[static_cast<int>(BirthOp::Seed)], 2u);
    EXPECT_EQ(anc.opCounts[static_cast<int>(BirthOp::Crossover)], 1u);
    EXPECT_EQ(anc.opCounts[static_cast<int>(BirthOp::Mutation)], 1u);
}

TEST(Ancestry, EliteCopyRowsDoNotObscureTheTrueBirth)
{
    const std::vector<LineageEvent> events = {
        makeEvent(0, 1, BirthOp::Seed, 0, 0, 2.0),
        makeEvent(1, 1, BirthOp::EliteCopy, 1, 1, 2.0),
        makeEvent(1, 2, BirthOp::Mutation, 1, 1, 2.5),
    };
    const Ancestry anc = championAncestry(events);
    EXPECT_TRUE(anc.reachesGeneration0);
    EXPECT_EQ(anc.ancestorCount, 2u);
    ASSERT_EQ(anc.chain.size(), 2u);
    // The chain lands on id 1's seed row, not the elite-copy re-record.
    EXPECT_EQ(events[anc.chain[1]].id, 1u);
    EXPECT_EQ(events[anc.chain[1]].op, BirthOp::Seed);
}

TEST(Ancestry, ResumedRunStopsGracefullyAtCheckpointParents)
{
    const std::vector<LineageEvent> events = {
        makeEvent(0, 5, BirthOp::Resumed, 100, 101, 1.0),
        makeEvent(0, 6, BirthOp::Seed, 0, 0, 0.5),
        makeEvent(1, 7, BirthOp::Mutation, 5, 6, 2.0),
    };
    const Ancestry anc = championAncestry(events);
    // The resumed row sits at generation 0, so the chain still closes,
    // but the checkpoint parents are surfaced instead of chased.
    EXPECT_TRUE(anc.reachesGeneration0);
    EXPECT_EQ(anc.unknownParents,
              (std::vector<std::uint64_t>{100, 101}));
    ASSERT_EQ(anc.chain.size(), 2u);
    EXPECT_EQ(events[anc.chain[1]].op, BirthOp::Resumed);
}

TEST(Ancestry, EmptyLedgerFatals)
{
    EXPECT_THROW(championAncestry({}), FatalError);
}

// ------------------------------------------- recorder on a real run

TEST(Recorder, ReplayedRunReconstructsChampionToGenerationZero)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::FloatSimd);
    fitness::DefaultFitness fit;
    const core::GaParams params = smallParams();
    const std::string dir = makeTempDir("gest-analysis");

    core::Engine engine(params, lib, meas, fit);
    Recorder recorder(dir, lib, params.generations);
    engine.setAnalytics(&recorder);
    engine.run();
    recorder.finish();

    // The ledger replays to the champion the engine actually found.
    const std::vector<LineageEvent> events = loadLineage(dir);
    const Ancestry anc = championAncestry(events);
    EXPECT_TRUE(anc.reachesGeneration0);
    EXPECT_TRUE(anc.unknownParents.empty());
    EXPECT_DOUBLE_EQ(events[anc.chain.front()].fitness,
                     engine.bestEver().fitness);
    EXPECT_EQ(events[anc.chain.back()].generation, 0);
    EXPECT_EQ(events[anc.chain.back()].op, BirthOp::Seed);

    // Every chased parent of a bred ancestor is itself in the ledger.
    std::set<std::uint64_t> known;
    for (const LineageEvent& event : events)
        known.insert(event.id);
    for (const LineageEvent& event : events) {
        if (event.op == BirthOp::Crossover ||
            event.op == BirthOp::Mutation) {
            EXPECT_TRUE(known.count(event.parent1));
            EXPECT_TRUE(known.count(event.parent2));
        }
    }

    // One analytics row per generation, and the last row's mix matches
    // an independent recount of the final population.
    ASSERT_EQ(recorder.rows().size(),
              static_cast<std::size_t>(params.generations));
    EXPECT_EQ(recorder.rows().back().classMix,
              populationClassMix(lib, engine.population()));

    // status.json exists and reports completion.
    const std::string status = readFile(recorder.statusPath());
    EXPECT_NE(status.find("\"state\": \"completed\""),
              std::string::npos);
    removeAll(dir);
}

TEST(Recorder, ResultsAreBitIdenticalWithAnalyticsOnOrOff)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;
    const core::GaParams params = smallParams();
    const std::string dir = makeTempDir("gest-analysis");

    ClassCountMeasurement m1(lib, isa::InstrClass::Mem);
    core::Engine with(params, lib, m1, fit);
    Recorder recorder(dir, lib, params.generations);
    with.setAnalytics(&recorder);
    with.run();
    recorder.finish();

    ClassCountMeasurement m2(lib, isa::InstrClass::Mem);
    core::Engine without(params, lib, m2, fit);
    without.run();

    // Observability must never perturb the search: same history, same
    // champion genome, gene for gene.
    ASSERT_EQ(with.history().size(), without.history().size());
    for (std::size_t g = 0; g < with.history().size(); ++g) {
        EXPECT_DOUBLE_EQ(with.history()[g].bestFitness,
                         without.history()[g].bestFitness);
        EXPECT_DOUBLE_EQ(with.history()[g].averageFitness,
                         without.history()[g].averageFitness);
        EXPECT_DOUBLE_EQ(with.history()[g].diversity,
                         without.history()[g].diversity);
    }
    EXPECT_EQ(with.bestEver().code, without.bestEver().code);
    EXPECT_EQ(with.bestEver().id, without.bestEver().id);
    removeAll(dir);
}

TEST(Recorder, ResumedRunToleratesPreLedgerAncestors)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;
    const core::GaParams params = smallParams();
    const std::string dir = makeTempDir("gest-analysis");

    // First run: no recorder at all, so its lineage is never written.
    ClassCountMeasurement m1(lib, isa::InstrClass::FloatSimd);
    core::Engine first(params, lib, m1, fit);
    first.run();
    const std::string checkpoint = dir + "/checkpoint.txt";
    core::savePopulation(lib, first.population(), checkpoint);

    // The checkpoint round-trips parent ids (resume support relies on
    // it: the ledger labels carried individuals by their real parents).
    const core::Population reloaded =
        core::loadPopulation(lib, checkpoint);
    ASSERT_EQ(reloaded.individuals.size(),
              first.population().individuals.size());
    bool any_parent = false;
    for (std::size_t i = 0; i < reloaded.individuals.size(); ++i) {
        EXPECT_EQ(reloaded.individuals[i].parent1,
                  first.population().individuals[i].parent1);
        EXPECT_EQ(reloaded.individuals[i].parent2,
                  first.population().individuals[i].parent2);
        any_parent |= reloaded.individuals[i].parent1 != 0;
    }
    EXPECT_TRUE(any_parent);

    // Second run seeds from the checkpoint with a recorder attached:
    // its ledger starts fresh, so every carried parent id is unknown.
    ClassCountMeasurement m2(lib, isa::InstrClass::FloatSimd);
    core::Engine second(params, lib, m2, fit);
    second.setSeedPopulation(reloaded);
    Recorder recorder(dir, lib, params.generations);
    second.setAnalytics(&recorder);
    second.run();
    recorder.finish();

    const std::vector<LineageEvent> events = loadLineage(dir);
    std::size_t resumed = 0;
    for (const LineageEvent& event : events)
        resumed += event.op == BirthOp::Resumed;
    EXPECT_EQ(resumed, reloaded.individuals.size());

    // Ancestry reconstruction terminates despite pre-ledger parents.
    const Ancestry anc = championAncestry(events);
    EXPECT_FALSE(anc.chain.empty());
    EXPECT_TRUE(anc.reachesGeneration0);
    EXPECT_FALSE(anc.unknownParents.empty());
    removeAll(dir);
}

} // namespace
} // namespace analysis
} // namespace gest
