/**
 * @file
 * The shipped example configurations under configs/ must all parse,
 * validate, and run end-to-end (at a reduced GA budget). This keeps the
 * user-facing entry points from rotting.
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "util/fileutil.hh"

#ifndef GEST_CONFIGS_DIR
#define GEST_CONFIGS_DIR "configs"
#endif

namespace gest {
namespace {

class ShippedConfigTest : public ::testing::TestWithParam<const char*>
{};

TEST_P(ShippedConfigTest, ParsesAndRunsEndToEnd)
{
    const std::string path =
        std::string(GEST_CONFIGS_DIR) + "/" + GetParam();
    ASSERT_TRUE(fileExists(path)) << path;

    config::RunConfig cfg = config::loadConfig(path);
    EXPECT_GT(cfg.library.numInstructions(), 0u);
    EXPECT_FALSE(cfg.measurementClass.empty());
    EXPECT_FALSE(cfg.outputDirectory.empty());

    // Shrink the budget and redirect artifacts to scratch space.
    cfg.ga.populationSize = 6;
    cfg.ga.tournamentSize = 3;
    cfg.ga.generations = 2;
    const std::string scratch = makeTempDir("gest-shipped");
    cfg.outputDirectory = scratch + "/out";

    const config::RunResult result = config::runFromConfig(cfg);
    EXPECT_TRUE(result.best.evaluated);
    EXPECT_EQ(result.history.size(), 2u);
    EXPECT_TRUE(fileExists(cfg.outputDirectory + "/population_1.pop"));
    removeAll(scratch);
}

INSTANTIATE_TEST_SUITE_P(
    AllShipped, ShippedConfigTest,
    ::testing::Values("a15_power.xml", "a15_power_armv7.xml",
                      "a7_power.xml", "xgene2_temperature.xml",
                      "xgene2_ipc.xml", "xgene2_simple_power.xml",
                      "athlon_didt.xml", "xgene2_llc_stress.xml"));

TEST(ShippedTemplate, BareMetalTemplateHasMarker)
{
    const std::string path = std::string(GEST_CONFIGS_DIR) +
                             "/templates/bare_metal_loop.s";
    ASSERT_TRUE(fileExists(path));
    const isa::AsmTemplate tmpl = isa::AsmTemplate::fromFile(path);
    const std::string rendered = tmpl.render({"FMUL v0.2D, v1.2D, "
                                              "v2.2D"});
    EXPECT_NE(rendered.find("FMUL v0.2D"), std::string::npos);
    EXPECT_NE(rendered.find("0xAAAAAAAAAAAAAAAA"), std::string::npos);
    EXPECT_NE(rendered.find("b loop_start"), std::string::npos);
}

TEST(ShippedConfig, A15PowerUsesTemplateRendering)
{
    const config::RunConfig cfg = config::loadConfig(
        std::string(GEST_CONFIGS_DIR) + "/a15_power.xml");
    ASSERT_TRUE(cfg.asmTemplate.has_value());
    EXPECT_NE(cfg.asmTemplate->text().find("#loop_code"),
              std::string::npos);
}

TEST(ShippedConfig, LlcConfigDeclaresFigure4StyleInstructions)
{
    const config::RunConfig cfg = config::loadConfig(
        std::string(GEST_CONFIGS_DIR) + "/xgene2_llc_stress.xml");
    EXPECT_GE(cfg.library.findInstruction("ADVANCE"), 0);
    const int advance = cfg.library.findInstruction("ADVANCE");
    EXPECT_EQ(cfg.library
                  .instruction(static_cast<std::size_t>(advance))
                  .opcode,
              isa::Opcode::AddWrap);
    EXPECT_EQ(cfg.measurementClass, "SimCacheMissMeasurement");
}

} // namespace
} // namespace gest
