/**
 * @file
 * Tests for native code emission and the host runner. Execution tests
 * skip gracefully on hosts without a toolchain or perf access.
 */

#include <gtest/gtest.h>

#include "isa/standard_libs.hh"
#include "native/asm_emit.hh"
#include "native/native_measurement.hh"
#include "native/perf_events.hh"
#include "native/runner.hh"
#include "util/random.hh"

namespace gest {
namespace native {
namespace {

std::vector<isa::InstructionInstance>
x86Loop(const isa::InstructionLibrary& lib)
{
    return {
        lib.makeInstance("ADD", {"rax", "rcx"}),
        lib.makeInstance("XOR", {"rdx", "rbx"}),
        lib.makeInstance("MULPD", {"xmm0", "xmm1"}),
        lib.makeInstance("LOAD", {"r9", "r10", "16"}),
        lib.makeInstance("STORE", {"rsi", "r10", "64"}),
        lib.makeInstance("NOP", {}),
    };
}

TEST(AsmEmit, X86ProgramHasRequiredStructure)
{
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    EmitOptions options;
    options.iterations = 1234;
    const std::string program =
        emitX86Program(lib, x86Loop(lib), options);

    EXPECT_NE(program.find(".intel_syntax noprefix"), std::string::npos);
    EXPECT_NE(program.find("_start:"), std::string::npos);
    EXPECT_NE(program.find("gest_loop:"), std::string::npos);
    EXPECT_NE(program.find("mov r12, 1234"), std::string::npos);
    EXPECT_NE(program.find("add rax, rcx"), std::string::npos);
    EXPECT_NE(program.find("mulpd xmm0, xmm1"), std::string::npos);
    EXPECT_NE(program.find("mov r9, [r10 + 16]"), std::string::npos);
    EXPECT_NE(program.find("gest_buffer"), std::string::npos);
    // Checkerboard init (§III.B.2).
    EXPECT_NE(program.find("0xaaaaaaaaaaaaaaaa"), std::string::npos);
    // Clean exit without libc.
    EXPECT_NE(program.find("syscall"), std::string::npos);
}

TEST(AsmEmit, A64ProgramHasRequiredStructure)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::vector<isa::InstructionInstance> code = {
        lib.makeInstance("FMLA", {"v0", "v1", "v2"}),
        lib.makeInstance("LDR", {"x2", "x10", "8"}),
    };
    const std::string program = emitA64Program(lib, code);
    EXPECT_NE(program.find("_start:"), std::string::npos);
    EXPECT_NE(program.find("gest_loop:"), std::string::npos);
    EXPECT_NE(program.find("FMLA v0.2D, v1.2D, v2.2D"),
              std::string::npos);
    EXPECT_NE(program.find("adrp x10, gest_buffer"), std::string::npos);
    EXPECT_NE(program.find("svc #0"), std::string::npos);
}

TEST(AsmEmit, BufferSizeAndPatternConfigurable)
{
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    EmitOptions options;
    options.bufferBytes = 8192;
    options.pattern = 0x5555555555555555ULL;
    const std::string program =
        emitX86Program(lib, x86Loop(lib), options);
    EXPECT_NE(program.find(".zero 8192"), std::string::npos);
    EXPECT_NE(program.find("0x5555555555555555"), std::string::npos);
}

TEST(Runner, AssembleAndRunGeneratedProgram)
{
    if (!NativeRunner::toolchainAvailable())
        GTEST_SKIP() << "no host toolchain";
#if !defined(__x86_64__)
    GTEST_SKIP() << "not an x86-64 host";
#else
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    EmitOptions options;
    options.iterations = 100'000;
    NativeRunner runner;
    const RunOutcome outcome = runner.assembleAndRun(
        emitX86Program(lib, x86Loop(lib), options));
    EXPECT_EQ(outcome.exitStatus, 0);
    EXPECT_GT(outcome.wallSeconds, 0.0);
    if (outcome.instructions) {
        // 6-instruction body + dec/jnz, 100k iterations.
        EXPECT_GT(*outcome.instructions, 6.0 * 100'000);
        EXPECT_GT(outcome.ipc().value_or(0.0), 0.1);
    }
#endif
}

TEST(Runner, RandomIndividualsAllAssemble)
{
    if (!NativeRunner::toolchainAvailable())
        GTEST_SKIP() << "no host toolchain";
#if !defined(__x86_64__)
    GTEST_SKIP() << "not an x86-64 host";
#else
    // Property: every instance the GA can generate from the bundled x86
    // library is valid assembler input.
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    Rng rng(99);
    NativeRunner runner;
    for (int trial = 0; trial < 3; ++trial) {
        std::vector<isa::InstructionInstance> code;
        for (int i = 0; i < 30; ++i)
            code.push_back(lib.randomInstance(rng));
        EmitOptions options;
        options.iterations = 1000;
        const RunOutcome outcome =
            runner.assembleAndRun(emitX86Program(lib, code, options));
        EXPECT_EQ(outcome.exitStatus, 0);
    }
#endif
}

TEST(Perf, AvailabilityProbeDoesNotCrash)
{
    // Whatever the sandbox allows, the probes must return cleanly.
    const bool perf = PerfCounters::available();
    const bool rapl = RaplReader::available();
    (void)perf;
    (void)rapl;
    SUCCEED();
}

TEST(NativeMeasurement, RegistersInRegistry)
{
    registerNativeMeasurements();
    registerNativeMeasurements();
    EXPECT_TRUE(measure::MeasurementRegistry::instance().contains(
        "NativePerfMeasurement"));
}

TEST(NativeMeasurement, MeasuresIpcWhenHostAllows)
{
    if (!NativePerfMeasurement::available())
        GTEST_SKIP() << "perf counters or toolchain unavailable";
#if !defined(__x86_64__)
    GTEST_SKIP() << "not an x86-64 host";
#else
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    NativePerfMeasurement meas(lib);
    const xml::Document doc =
        xml::parse("<config iterations=\"200000\"/>");
    meas.init(&doc.root());
    const measure::MeasurementResult result =
        meas.measure(x86Loop(lib));
    EXPECT_GT(result.values[0], 0.1); // real IPC
    EXPECT_LT(result.values[0], 8.0);
#endif
}

} // namespace
} // namespace native
} // namespace gest
