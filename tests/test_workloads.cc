/**
 * @file
 * Unit tests for the baseline workload library.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "util/logging.hh"
#include "workloads/workloads.hh"

namespace gest {
namespace workloads {
namespace {

TEST(Workloads, ArmBaselinesPresent)
{
    const auto lib = isa::armLikeLibrary();
    const auto set = armBareMetalBaselines(lib);
    ASSERT_EQ(set.size(), 5u);
    EXPECT_NO_THROW(byName(set, "coremark"));
    EXPECT_NO_THROW(byName(set, "imdct"));
    EXPECT_NO_THROW(byName(set, "fdct"));
    EXPECT_NO_THROW(byName(set, "A15manual_stress_test"));
    EXPECT_NO_THROW(byName(set, "A7manual_stress_test"));
    EXPECT_THROW(byName(set, "quake"), FatalError);
}

TEST(Workloads, ServerBaselinesCoverParsecAndNas)
{
    const auto lib = isa::armLikeLibrary();
    const auto set = serverBaselines(lib);
    EXPECT_GE(set.size(), 8u);
    EXPECT_NO_THROW(byName(set, "bodytrack")); // Figure 7's baseline
    EXPECT_NO_THROW(byName(set, "cg"));
    EXPECT_NO_THROW(byName(set, "ft"));
}

TEST(Workloads, X86BaselinesIncludeStabilityTests)
{
    const auto lib = isa::x86LikeLibrary();
    const auto set = x86Baselines(lib);
    EXPECT_GE(set.size(), 5u);
    EXPECT_NO_THROW(byName(set, "prime95"));
    EXPECT_NO_THROW(byName(set, "amd_stability_test"));
}

class ArmWorkloadTest : public ::testing::TestWithParam<const char*>
{};

TEST_P(ArmWorkloadTest, RunsOnBothVersatileExpressCores)
{
    for (const auto& plat :
         {platform::cortexA15Platform(), platform::cortexA7Platform()}) {
        const auto set = armBareMetalBaselines(plat->library());
        const Workload& w = byName(set, GetParam());
        ASSERT_FALSE(w.code.empty());
        const platform::Evaluation eval =
            plat->evaluate(w.code, plat->library());
        EXPECT_GT(eval.ipc, 0.05) << plat->name();
        EXPECT_GT(eval.corePowerWatts, 0.0) << plat->name();
        // §VII: power viruses and these kernels are L1-resident.
        EXPECT_GT(eval.sim.l1HitRate(), 0.95) << plat->name();
    }
}

INSTANTIATE_TEST_SUITE_P(AllArm, ArmWorkloadTest,
                         ::testing::Values("coremark", "imdct", "fdct",
                                           "A15manual_stress_test",
                                           "A7manual_stress_test"));

TEST(Workloads, ServerBaselinesEvaluateOnXgene2)
{
    const auto plat = platform::xgene2Platform();
    for (const Workload& w : serverBaselines(plat->library())) {
        const platform::Evaluation eval =
            plat->evaluate(w.code, plat->library());
        EXPECT_GT(eval.ipc, 0.1) << w.name;
        EXPECT_GT(eval.dieTempC, plat->idleTempC()) << w.name;
    }
}

TEST(Workloads, X86BaselinesEvaluateOnAthlon)
{
    const auto plat = platform::athlonX4Platform();
    for (const Workload& w : x86Baselines(plat->library())) {
        const platform::Evaluation eval =
            plat->evaluate(w.code, plat->library(), true);
        EXPECT_GT(eval.ipc, 0.1) << w.name;
        EXPECT_TRUE(eval.hasVoltage) << w.name;
        EXPECT_GT(eval.peakToPeakV, 0.0) << w.name;
    }
}

TEST(Workloads, ManualStressTestsBeatConventionalOnOwnPlatform)
{
    // On each Versatile Express core, the hand-written stress-test for
    // that core draws more power than coremark (it was written to).
    const auto a15 = platform::cortexA15Platform();
    auto set = armBareMetalBaselines(a15->library());
    const double manual15 =
        a15->evaluate(byName(set, "A15manual_stress_test").code,
                      a15->library())
            .chipPowerWatts;
    const double core15 =
        a15->evaluate(byName(set, "coremark").code, a15->library())
            .chipPowerWatts;
    EXPECT_GT(manual15, core15);

    const auto a7 = platform::cortexA7Platform();
    set = armBareMetalBaselines(a7->library());
    const double manual7 =
        a7->evaluate(byName(set, "A7manual_stress_test").code,
                     a7->library())
            .chipPowerWatts;
    const double core7 =
        a7->evaluate(byName(set, "coremark").code, a7->library())
            .chipPowerWatts;
    EXPECT_GT(manual7, core7);
}

TEST(Workloads, CrossStressTestsAreWeakerOffPlatform)
{
    // §V: "Different CPU designs require different stress-tests" — each
    // manual stress-test is weaker on the other core than the one
    // written for it.
    const auto a15 = platform::cortexA15Platform();
    const auto set15 = armBareMetalBaselines(a15->library());
    const double own =
        a15->evaluate(byName(set15, "A15manual_stress_test").code,
                      a15->library())
            .chipPowerWatts;
    const double other =
        a15->evaluate(byName(set15, "A7manual_stress_test").code,
                      a15->library())
            .chipPowerWatts;
    EXPECT_GT(own, other);
}

TEST(Workloads, Prime95LikeIsHighPowerLowNoise)
{
    // §VI: Prime95 raises power very high but is a poor dI/dt stressor.
    const auto amd = platform::athlonX4Platform();
    const auto set = x86Baselines(amd->library());
    const platform::Evaluation prime =
        amd->evaluate(byName(set, "prime95").code, amd->library(), true);
    const platform::Evaluation idle =
        amd->evaluate(byName(set, "idle_spin").code, amd->library(),
                      true);
    EXPECT_GT(prime.chipPowerWatts, idle.chipPowerWatts * 1.4);
    // Sustained current: noise within a small fraction of nominal.
    EXPECT_LT(prime.peakToPeakV, 0.08);
}

} // namespace
} // namespace workloads
} // namespace gest
