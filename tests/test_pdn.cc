/**
 * @file
 * Unit tests for the RLC power-delivery-network model and V_MIN sweep.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pdn/pdn_model.hh"
#include "pdn/spectrum.hh"
#include "util/logging.hh"

namespace gest {
namespace pdn {
namespace {

constexpr double pi = 3.14159265358979323846;

PdnConfig
testPdn()
{
    return PdnConfig::forResonance("test", 1.2, 100e6, 3.0, 1e-3);
}

/** Square-wave current between lo and hi with the given cycle period. */
std::vector<double>
squareWave(std::size_t cycles, int period, double lo, double hi)
{
    std::vector<double> amps(cycles);
    for (std::size_t c = 0; c < cycles; ++c)
        amps[c] = (static_cast<int>(c) % period) * 2 < period ? hi : lo;
    return amps;
}

TEST(PdnConfig, ForResonanceRoundTrips)
{
    const PdnConfig cfg = testPdn();
    EXPECT_NEAR(cfg.resonanceHz(), 100e6, 100e6 * 1e-9);
    EXPECT_NEAR(cfg.qFactor(), 3.0, 1e-9);
    EXPECT_GT(cfg.inductanceH, 0.0);
    EXPECT_GT(cfg.capacitanceF, 0.0);
}

TEST(PdnConfig, PeakImpedanceIsQSquaredR)
{
    const PdnConfig cfg = testPdn();
    EXPECT_NEAR(cfg.peakImpedanceOhm(), 9.0 * 1e-3, 1e-9);
}

TEST(PdnConfig, ValidationRejectsNonsense)
{
    PdnConfig bad = testPdn();
    bad.capacitanceF = -1;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = testPdn();
    bad.substepsPerCycle = 0;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(PdnModel, DcCurrentGivesIrDrop)
{
    const PdnModel model(testPdn());
    const std::vector<double> amps(4096, 20.0);
    const VoltageTrace trace = model.simulate(amps, 3.0);
    // Settled DC: v = Vs - I*R = 1.2 - 20*0.001.
    EXPECT_NEAR(trace.vAvg, 1.2 - 0.02, 1e-3);
    EXPECT_LT(trace.peakToPeak(), 2e-3);
}

TEST(PdnModel, ResonantExcitationBeatsOffResonance)
{
    const PdnModel model(testPdn());
    const double freq_ghz = 3.0;
    // Resonance period in CPU cycles: f_clk / f_res = 30 cycles.
    const int resonant_period = 30;
    const VoltageTrace on = model.simulate(
        squareWave(8192, resonant_period, 5.0, 35.0), freq_ghz);
    const VoltageTrace off_fast = model.simulate(
        squareWave(8192, 6, 5.0, 35.0), freq_ghz);
    const VoltageTrace off_slow = model.simulate(
        squareWave(8192, 300, 5.0, 35.0), freq_ghz);
    EXPECT_GT(on.peakToPeak(), off_fast.peakToPeak() * 2.0);
    EXPECT_GT(on.peakToPeak(), off_slow.peakToPeak() * 1.3);
}

TEST(PdnModel, ResonanceSweepPeaksAtF0)
{
    const PdnModel model(testPdn());
    const double freq_ghz = 3.0;
    double best_p2p = 0.0;
    int best_period = 0;
    for (int period = 10; period <= 90; period += 4) {
        const VoltageTrace trace = model.simulate(
            squareWave(8192, period, 5.0, 35.0), freq_ghz);
        if (trace.peakToPeak() > best_p2p) {
            best_p2p = trace.peakToPeak();
            best_period = period;
        }
    }
    // f_clk / f_res = 30 cycles; allow one sweep step of slack.
    EXPECT_NEAR(best_period, 30, 4);
}

TEST(PdnModel, LargerSwingMakesMoreNoise)
{
    const PdnModel model(testPdn());
    const VoltageTrace small =
        model.simulate(squareWave(8192, 30, 15.0, 25.0), 3.0);
    const VoltageTrace large =
        model.simulate(squareWave(8192, 30, 5.0, 35.0), 3.0);
    EXPECT_GT(large.peakToPeak(), small.peakToPeak() * 2.0);
}

TEST(PdnModel, MinMaxBracketTrace)
{
    const PdnModel model(testPdn());
    const VoltageTrace trace =
        model.simulate(squareWave(4096, 30, 5.0, 35.0), 3.0);
    EXPECT_LE(trace.vMin, trace.vAvg);
    EXPECT_LE(trace.vAvg, trace.vMax);
    EXPECT_EQ(trace.volts.size(), 4096u);
}

TEST(PdnModel, EmptyTraceIsNominal)
{
    const PdnModel model(testPdn());
    const VoltageTrace trace = model.simulate({}, 3.0);
    EXPECT_DOUBLE_EQ(trace.vMin, 1.2);
    EXPECT_DOUBLE_EQ(trace.peakToPeak(), 0.0);
}

TEST(PdnModel, SingleSampleTraceIsWellDefined)
{
    // One cycle of current: the warmup clamp degrades to "measure the
    // whole (second half of the) trace", so the stats stay finite and
    // bracket the supply sensibly instead of reading uninitialized
    // accumulators.
    const PdnModel model(testPdn());
    const VoltageTrace trace = model.simulate({20.0}, 3.0);
    EXPECT_EQ(trace.volts.size(), 1u);
    EXPECT_TRUE(std::isfinite(trace.vMin));
    EXPECT_TRUE(std::isfinite(trace.vMax));
    EXPECT_LE(trace.vMin, trace.vMax);
    EXPECT_LE(trace.vMax, 1.2);
    EXPECT_GE(trace.peakToPeak(), 0.0);
}

TEST(PdnModel, WarmupLongerThanTraceIsClamped)
{
    // 100 cycles against the default 256-cycle warmup: the clamp
    // measures the second half rather than nothing.
    const PdnModel model(testPdn());
    const VoltageTrace trace =
        model.simulate(squareWave(100, 10, 5.0, 35.0), 3.0);
    EXPECT_EQ(trace.volts.size(), 100u);
    EXPECT_TRUE(std::isfinite(trace.vMin));
    EXPECT_LT(trace.vMin, 1.2);
    EXPECT_GT(trace.peakToPeak(), 0.0);
}

TEST(PdnModel, SimulateAtShiftsSupply)
{
    const PdnModel model(testPdn());
    const auto amps = squareWave(4096, 30, 5.0, 35.0);
    const VoltageTrace at_nominal = model.simulateAt(amps, 3.0, 1.2);
    const VoltageTrace lowered = model.simulateAt(amps, 3.0, 1.1);
    EXPECT_NEAR(at_nominal.vMin - lowered.vMin, 0.1, 1e-3);
    EXPECT_NEAR(at_nominal.peakToPeak(), lowered.peakToPeak(), 1e-3);
}

TEST(Vmin, HigherNoiseMeansHigherVmin)
{
    const PdnModel model(testPdn());
    VminConfig cfg;
    cfg.vCritical = 1.0;
    cfg.vNominal = 1.2;

    const VminModel vmin(model, cfg);
    const double noisy =
        vmin.characterize(squareWave(8192, 30, 5.0, 35.0), 3.0);
    const double quiet =
        vmin.characterize(std::vector<double>(8192, 20.0), 3.0);
    EXPECT_GT(noisy, quiet);
    // Both results land on the 12.5 mV grid below nominal.
    const double steps_n = (cfg.vNominal - noisy) / cfg.stepVolts;
    EXPECT_NEAR(steps_n, std::round(steps_n), 1e-6);
    const double steps_q = (cfg.vNominal - quiet) / cfg.stepVolts;
    EXPECT_NEAR(steps_q, std::round(steps_q), 1e-6);
}

TEST(Vmin, VminEqualsCriticalPlusDroopOnGrid)
{
    const PdnModel model(testPdn());
    VminConfig cfg;
    cfg.vCritical = 1.0;
    cfg.vNominal = 1.2;
    const VminModel vmin(model, cfg);

    const auto amps = squareWave(8192, 30, 5.0, 35.0);
    const double droop =
        model.simulate(amps, 3.0).worstDroop(1.2);
    const double measured = vmin.characterize(amps, 3.0);
    // The analytic relation: lowest grid voltage >= vCrit + droop.
    EXPECT_GE(measured, cfg.vCritical + droop - cfg.stepVolts);
    EXPECT_LE(measured, cfg.vCritical + droop + cfg.stepVolts + 1e-9);
}

TEST(Vmin, RejectsMalformedSweep)
{
    const PdnModel model(testPdn());
    VminConfig bad;
    bad.vCritical = 1.3;
    bad.vNominal = 1.2;
    EXPECT_THROW(VminModel(model, bad), FatalError);
    bad = VminConfig{};
    bad.stepVolts = 0.0;
    EXPECT_THROW(VminModel(model, bad), FatalError);
}

TEST(PdnPresets, AthlonPdnMatchesPaperSetup)
{
    const PdnConfig cfg = athlonPdn();
    EXPECT_NEAR(cfg.resonanceHz(), 100e6, 1e3);
    EXPECT_NEAR(cfg.vdd, 1.35, 1e-9);
    EXPECT_GT(cfg.qFactor(), 1.0);
}

TEST(PdnModel, StepResponseOvershootReflectsQ)
{
    // An underdamped PDN must overshoot above nominal after a load
    // release (the overshoot side of dI/dt noise).
    const PdnModel model(testPdn());
    std::vector<double> amps(8192, 30.0);
    for (std::size_t c = 4096; c < amps.size(); ++c)
        amps[c] = 2.0;
    const VoltageTrace trace = model.simulate(amps, 3.0, 512);
    EXPECT_GT(trace.vMax, 1.2 - 0.002 * 2.0 + 0.005);
}

// ------------------------------------------------------------ Spectrum

TEST(Spectrum, RecoversPureToneAmplitude)
{
    const double fs = 3.1e9;
    const double tone = 100e6;
    std::vector<double> samples(8192);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = 20.0 + 5.0 * std::sin(2.0 * pi * tone *
                                           static_cast<double>(i) / fs);
    // DC offset removed, amplitude recovered.
    EXPECT_NEAR(toneAmplitude(samples, fs, tone), 5.0, 0.05);
    // Energy elsewhere is tiny.
    EXPECT_LT(toneAmplitude(samples, fs, 55e6), 0.3);
    EXPECT_LT(toneAmplitude(samples, fs, 200e6), 0.3);
}

TEST(Spectrum, SquareWaveFundamentalDominates)
{
    const double fs = 3.0e9;
    const int period = 30; // 100 MHz
    std::vector<double> samples(8192);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = (static_cast<int>(i) % period) * 2 < period ? 35.0
                                                                 : 5.0;
    const double fundamental = fs / period;
    const double amp = toneAmplitude(samples, fs, fundamental);
    // Square wave fundamental: (4/pi) * half-swing = 19.1.
    EXPECT_NEAR(amp, 4.0 / pi * 15.0, 1.5);
    EXPECT_NEAR(dominantTone(samples, fs, 20e6, 400e6, 96),
                fundamental, 8e6);
}

TEST(Spectrum, DcOnlySignalHasNoTones)
{
    const std::vector<double> flat(4096, 42.0);
    EXPECT_NEAR(toneAmplitude(flat, 3e9, 100e6), 0.0, 1e-9);
}

TEST(Spectrum, AmplitudeSpectrumMatchesPointQueries)
{
    const double fs = 3.0e9;
    std::vector<double> samples(4096);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = std::sin(2.0 * pi * 80e6 *
                              static_cast<double>(i) / fs);
    const std::vector<double> tones{40e6, 80e6, 160e6};
    const std::vector<double> spectrum =
        amplitudeSpectrum(samples, fs, tones);
    ASSERT_EQ(spectrum.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(spectrum[i], toneAmplitude(samples, fs, tones[i]),
                    1e-12);
    EXPECT_GT(spectrum[1], spectrum[0] * 5.0);
    EXPECT_GT(spectrum[1], spectrum[2] * 5.0);
}

TEST(Spectrum, RejectsBadArguments)
{
    const std::vector<double> samples(128, 1.0);
    EXPECT_THROW(toneAmplitude(samples, -1.0, 1e6), FatalError);
    EXPECT_THROW(toneAmplitude(samples, 1e9, 0.9e9), FatalError);
    EXPECT_THROW(dominantTone(samples, 1e9, 2e6, 1e6), FatalError);
    EXPECT_DOUBLE_EQ(toneAmplitude({}, 1e9, 1e6), 0.0);
}

TEST(Spectrum, WorksOnNonPowerOfTwoLengths)
{
    // Goertzel has no FFT length restriction: a prime-length trace
    // still resolves its tone.
    const double fs = 3.0e9;
    std::vector<double> samples(3001);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = 2.5 * std::sin(2.0 * pi * 80e6 *
                                    static_cast<double>(i) / fs);
    EXPECT_NEAR(toneAmplitude(samples, fs, 80e6), 2.5, 0.05);
    EXPECT_LT(toneAmplitude(samples, fs, 160e6), 0.1);
}

TEST(Spectrum, DegenerateLengthsHaveNoAcContent)
{
    EXPECT_DOUBLE_EQ(toneAmplitude({}, 1e9, 1e6), 0.0);
    EXPECT_DOUBLE_EQ(toneAmplitude({7.0}, 1e9, 1e6), 0.0);
}

TEST(Spectrum, DominantToneClampsToNyquist)
{
    // A scan band reaching past Nyquist is clamped, not fatal...
    const double fs = 1.0e9;
    std::vector<double> samples(2048);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = std::sin(2.0 * pi * 100e6 *
                              static_cast<double>(i) / fs);
    const double tone = dominantTone(samples, fs, 50e6, 10e9, 128);
    EXPECT_NEAR(tone, 100e6, 10e6);

    // ...unless nothing of the band survives the clamp.
    EXPECT_THROW(dominantTone(samples, fs, 0.7e9, 10e9), FatalError);
    EXPECT_THROW(dominantTone(samples, 0.0, 1e6, 2e6), FatalError);
}

} // namespace
} // namespace pdn
} // namespace gest
