/**
 * @file
 * Tests for the measurement-noise decorator (§IV single-core
 * measurement rationale).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hh"
#include "isa/standard_libs.hh"
#include "measure/noisy_measurement.hh"
#include "util/logging.hh"

namespace gest {
namespace measure {
namespace {

/** Constant-valued inner measurement for precise noise checks. */
class ConstantMeasurement : public Measurement
{
  public:
    explicit ConstantMeasurement(double value) : _value(value) {}

    MeasurementResult
    measure(const std::vector<isa::InstructionInstance>&) override
    {
        ++calls;
        return {{_value, _value * 2.0}};
    }

    std::vector<std::string>
    valueNames() const override
    {
        return {"a", "b"};
    }

    std::string name() const override { return "Constant"; }

    int calls = 0;

  private:
    double _value;
};

TEST(Noise, ZeroSigmaIsTransparent)
{
    NoisyMeasurement noisy(std::make_unique<ConstantMeasurement>(5.0),
                           0.0);
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto result = noisy.measure({});
    EXPECT_DOUBLE_EQ(result.values[0], 5.0);
    EXPECT_DOUBLE_EQ(result.values[1], 10.0);
    EXPECT_EQ(noisy.valueNames(),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(noisy.name(), "Noisy(Constant)");
}

TEST(Noise, SampleStatisticsMatchSigma)
{
    NoisyMeasurement noisy(std::make_unique<ConstantMeasurement>(1.0),
                           0.1, 99);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const double v = noisy.measure({}).values[0];
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.01);
    EXPECT_NEAR(std::sqrt(var), 0.1, 0.015);
}

TEST(Noise, DeterministicPerSeed)
{
    NoisyMeasurement a(std::make_unique<ConstantMeasurement>(3.0), 0.05,
                       7);
    NoisyMeasurement b(std::make_unique<ConstantMeasurement>(3.0), 0.05,
                       7);
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(a.measure({}).values[0],
                         b.measure({}).values[0]);
}

TEST(Noise, InitParsesConfiguration)
{
    NoisyMeasurement noisy(std::make_unique<ConstantMeasurement>(2.0),
                           0.0);
    const xml::Document doc =
        xml::parse("<config relative_sigma=\"0.5\" seed=\"3\"/>");
    noisy.init(&doc.root());
    EXPECT_DOUBLE_EQ(noisy.relativeSigma(), 0.5);
    // With sigma 0.5 the values scatter visibly.
    double min_v = 1e30;
    double max_v = -1e30;
    for (int i = 0; i < 50; ++i) {
        const double v = noisy.measure({}).values[0];
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
    }
    EXPECT_GT(max_v - min_v, 0.5);
}

TEST(Noise, RejectsBadConfiguration)
{
    EXPECT_THROW(NoisyMeasurement(nullptr, 0.1), FatalError);
    EXPECT_THROW(
        NoisyMeasurement(std::make_unique<ConstantMeasurement>(1.0),
                         -0.1),
        FatalError);
    NoisyMeasurement noisy(std::make_unique<ConstantMeasurement>(1.0),
                           0.1);
    const xml::Document doc =
        xml::parse("<config relative_sigma=\"-2\"/>");
    EXPECT_THROW(noisy.init(&doc.root()), FatalError);
}

TEST(Noise, HeavyNoiseDegradesGaOutcome)
{
    // The §IV claim, as a property: for the same budget, the winner
    // found under heavy measurement noise is (re-measured cleanly) no
    // better than the winner found noiselessly.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();

    // Synthetic "power": count of Float/SIMD genes, deterministic.
    class FpCount : public Measurement
    {
      public:
        explicit FpCount(const isa::InstructionLibrary& lib) : _lib(lib)
        {}
        MeasurementResult
        measure(const std::vector<isa::InstructionInstance>& code)
            override
        {
            double count = 0;
            for (const auto& inst : code)
                if (_lib.instruction(inst.defIndex).cls ==
                    isa::InstrClass::FloatSimd)
                    count += 1.0;
            return {{count}};
        }
        std::vector<std::string>
        valueNames() const override
        {
            return {"fp"};
        }
        std::string name() const override { return "FpCount"; }

      private:
        const isa::InstructionLibrary& _lib;
    };

    core::GaParams params;
    params.populationSize = 20;
    params.individualSize = 20;
    params.mutationRate = 0.05;
    params.generations = 15;
    params.seed = 5;

    fitness::DefaultFitness fit;
    FpCount truth(lib);

    FpCount clean_inner(lib);
    core::Engine clean(params, lib, clean_inner, fit);
    clean.run();
    const double clean_score =
        truth.measure(clean.bestEver().code).values[0];

    NoisyMeasurement noisy_inner(std::make_unique<FpCount>(lib), 0.6,
                                 11);
    core::Engine noisy(params, lib, noisy_inner, fit);
    noisy.run();
    const double noisy_score =
        truth.measure(noisy.bestEver().code).values[0];

    EXPECT_GE(clean_score, noisy_score);
}

} // namespace
} // namespace measure
} // namespace gest
