/**
 * @file
 * End-to-end tests of the `gest` command-line tool: run a search from a
 * configuration file, then post-process the run directory with `stats`
 * and `fittest`, exactly as a user would.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/fileutil.hh"
#include "util/strutil.hh"

#ifndef GEST_CLI_PATH
#define GEST_CLI_PATH "./tools/gest"
#endif

#ifndef GEST_README_PATH
#define GEST_README_PATH "README.md"
#endif

namespace gest {
namespace {

/** Run the CLI, capture stdout+stderr, return the exit status. */
int
runCli(const std::string& args, std::string& output,
       const std::string& scratch)
{
    const std::string out_file = scratch + "/cli_output.txt";
    const std::string command = std::string(GEST_CLI_PATH) + " " + args +
                                " > '" + out_file + "' 2>&1";
    const int status = std::system(command.c_str());
    tryReadFile(out_file, output);
    return status;
}

class CliTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _dir = makeTempDir("gest-cli");
        writeFile(_dir + "/config.xml", R"(
<gest_configuration>
  <ga population_size="8" individual_size="6" mutation_rate="0.2"
      tournament_size="3" generations="3" seed="11"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a7" min_cycles="1024"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="run_out"/>
</gest_configuration>
)");
    }

    void TearDown() override { removeAll(_dir); }

    std::string _dir;
};

TEST_F(CliTest, NoArgumentsPrintsUsage)
{
    std::string output;
    EXPECT_NE(runCli("", output, _dir), 0);
    EXPECT_NE(output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, PlatformsListsPresets)
{
    std::string output;
    EXPECT_EQ(runCli("platforms", output, _dir), 0);
    EXPECT_NE(output.find("cortex-a15"), std::string::npos);
    EXPECT_NE(output.find("athlon-x4"), std::string::npos);
    EXPECT_NE(output.find("PDN instrumented"), std::string::npos);
}

TEST_F(CliTest, ClassesListsRegistries)
{
    std::string output;
    EXPECT_EQ(runCli("classes", output, _dir), 0);
    EXPECT_NE(output.find("SimPowerMeasurement"), std::string::npos);
    EXPECT_NE(output.find("SimCacheMissMeasurement"), std::string::npos);
    EXPECT_NE(output.find("TemperatureSimplicityFitness"),
              std::string::npos);
    EXPECT_NE(output.find("NativePerfMeasurement"), std::string::npos);
}

TEST_F(CliTest, RunThenStatsThenFittest)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("best individual"), std::string::npos);
    EXPECT_NE(output.find("breakdown:"), std::string::npos);

    const std::string run_dir = _dir + "/run_out";
    EXPECT_TRUE(fileExists(run_dir + "/population_0.pop"));
    EXPECT_TRUE(fileExists(run_dir + "/run_configuration.xml"));

    // stats rebuilds the library from the recorded configuration.
    ASSERT_EQ(runCli("stats '" + run_dir + "'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("best_fitness"), std::string::npos);
    EXPECT_EQ(split(trim(output), '\n').size(), 4u); // header + 3 gens

    ASSERT_EQ(runCli("fittest '" + run_dir + "'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("# id "), std::string::npos);
    // Six instructions follow the header line.
    EXPECT_EQ(split(trim(output), '\n').size(), 7u);
}

TEST_F(CliTest, StatsWithExplicitLibraryOverride)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml'", output, _dir), 0);
    EXPECT_EQ(runCli("stats '" + _dir + "/run_out' --library arm",
                     output, _dir),
              0)
        << output;
    EXPECT_NE(output.find("best_fitness"), std::string::npos);
}

TEST_F(CliTest, StatsWorksWhenConfigReferencedExternalFiles)
{
    // Regression: the recorded configuration references the template
    // relative to the *original* directory; stats/fittest must still
    // rebuild the library from inside the run directory.
    writeFile(_dir + "/tmpl.s", "loop:\n#loop_code\nb loop\n");
    writeFile(_dir + "/config_tmpl.xml", R"(
<gest_configuration>
  <ga population_size="6" individual_size="5" tournament_size="3"
      generations="2" seed="9"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a7" min_cycles="1024"/>
  </measurement>
  <template file="tmpl.s"/>
  <output directory="run_tmpl"/>
</gest_configuration>
)");
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config_tmpl.xml'", output, _dir),
              0)
        << output;
    ASSERT_EQ(runCli("stats '" + _dir + "/run_tmpl'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("best_fitness"), std::string::npos);
    ASSERT_EQ(runCli("fittest '" + _dir + "/run_tmpl'", output, _dir),
              0)
        << output;
    EXPECT_NE(output.find("# id "), std::string::npos);
}

TEST_F(CliTest, RunWithTraceWritesObservabilityArtifacts)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml' --trace", output,
                     _dir),
              0)
        << output;
    EXPECT_NE(output.find("trace written to"), std::string::npos);

    const std::string run_dir = _dir + "/run_out";
    ASSERT_TRUE(fileExists(run_dir + "/trace.json"));
    EXPECT_TRUE(fileExists(run_dir + "/stats.txt"));
    EXPECT_TRUE(fileExists(run_dir + "/metrics.json"));

    const std::string trace = readFile(run_dir + "/trace.json");
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("coordinator"), std::string::npos);

    const std::string metrics = readFile(run_dir + "/metrics.json");
    EXPECT_NE(metrics.find("\"engine.generations\": 3"),
              std::string::npos);
    const std::string stats = readFile(run_dir + "/stats.txt");
    EXPECT_NE(stats.find("engine.evaluations"), std::string::npos);

    // The v2 history carries the per-phase timing columns.
    const std::string history = readFile(run_dir + "/history.csv");
    EXPECT_NE(history.find("# gest-history v2"), std::string::npos);
    EXPECT_NE(history.find("evaluation_ms"), std::string::npos);
}

TEST_F(CliTest, ReportSummarizesARun)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml' --quiet", output,
                     _dir),
              0)
        << output;
    // --quiet suppresses the inform() banner and progress lines.
    EXPECT_EQ(output.find("running GA:"), std::string::npos);
    EXPECT_EQ(output.find("gen "), std::string::npos);
    EXPECT_NE(output.find("best individual"), std::string::npos);

    ASSERT_EQ(runCli("report '" + _dir + "/run_out'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("history v2, 3 generations"),
              std::string::npos);
    EXPECT_NE(output.find("phase breakdown"), std::string::npos);
    EXPECT_NE(output.find("hit rate"), std::string::npos);
    EXPECT_NE(output.find("evaluation"), std::string::npos);
}

TEST_F(CliTest, ReportOnBadRunDirectoryFails)
{
    std::string output;
    EXPECT_NE(runCli("report '" + _dir + "'", output, _dir), 0);
    EXPECT_NE(output.find("fatal:"), std::string::npos);
    EXPECT_NE(output.find("history.csv"), std::string::npos);

    EXPECT_NE(runCli("report /nonexistent/run", output, _dir), 0);
    EXPECT_NE(output.find("does not exist"), std::string::npos);
}

TEST_F(CliTest, UnknownOptionFails)
{
    std::string output;
    EXPECT_NE(runCli("run '" + _dir + "/config.xml' --bogus", output,
                     _dir),
              0);
    EXPECT_NE(output.find("unknown option"), std::string::npos);
}

TEST_F(CliTest, RunWithMissingConfigFails)
{
    std::string output;
    EXPECT_NE(runCli("run /nonexistent/config.xml", output, _dir), 0);
    EXPECT_NE(output.find("fatal:"), std::string::npos);
}

TEST_F(CliTest, StatsOnEmptyDirectoryFails)
{
    std::string output;
    EXPECT_NE(runCli("stats '" + _dir + "'", output, _dir), 0);
    EXPECT_NE(output.find("fatal:"), std::string::npos);
}

TEST_F(CliTest, RunRecordsAnalyticsAndExplainReadsThem)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml' --quiet", output,
                     _dir),
              0)
        << output;

    const std::string run_dir = _dir + "/run_out";
    EXPECT_TRUE(fileExists(run_dir + "/lineage.csv"));
    EXPECT_TRUE(fileExists(run_dir + "/analytics.csv"));
    EXPECT_TRUE(fileExists(run_dir + "/status.json"));

    ASSERT_EQ(runCli("explain '" + run_dir + "'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("champion: id "), std::string::npos);
    EXPECT_NE(output.find("primary descent line"), std::string::npos);
    EXPECT_NE(output.find("instruction-mix trajectory"),
              std::string::npos);
    EXPECT_NE(output.find("convergence pathologies"),
              std::string::npos);

    // The summary picks the analytics up too.
    ASSERT_EQ(runCli("report '" + run_dir + "'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("evolution analytics"), std::string::npos);
}

TEST_F(CliTest, ReportJsonIsMachineReadable)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml' --quiet", output,
                     _dir),
              0)
        << output;
    ASSERT_EQ(runCli("report --json '" + _dir + "/run_out'", output,
                     _dir),
              0)
        << output;
    EXPECT_EQ(trim(output).front(), '{');
    EXPECT_EQ(trim(output).back(), '}');
    EXPECT_NE(output.find("\"generations\": 3"), std::string::npos);
    EXPECT_NE(output.find("\"phase_ms\""), std::string::npos);
    EXPECT_NE(output.find("\"analytics\""), std::string::npos);
    EXPECT_NE(output.find("\"mutation_children\""), std::string::npos);
}

TEST_F(CliTest, AnalyticsOffIsBitIdenticalAndSuppressesArtifacts)
{
    // Same seed, stats off (the v2 timing columns are wall-clock and
    // would differ between runs); the only variable is analytics.
    const char* config_template = R"(
<gest_configuration>
  <ga population_size="8" individual_size="6" mutation_rate="0.2"
      tournament_size="3" generations="3" seed="11"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a7" min_cycles="1024"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="%s" stats="false" analytics="%s"/>
</gest_configuration>
)";
    char on_cfg[1024], off_cfg[1024];
    std::snprintf(on_cfg, sizeof(on_cfg), config_template, "run_on",
                  "true");
    std::snprintf(off_cfg, sizeof(off_cfg), config_template, "run_off",
                  "false");
    writeFile(_dir + "/on.xml", on_cfg);
    writeFile(_dir + "/off.xml", off_cfg);

    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/on.xml' --quiet", output, _dir),
              0)
        << output;
    ASSERT_EQ(runCli("run '" + _dir + "/off.xml' --quiet", output,
                     _dir),
              0)
        << output;

    // Bit-identical search with analytics on or off.
    EXPECT_EQ(readFile(_dir + "/run_on/history.csv"),
              readFile(_dir + "/run_off/history.csv"));
    EXPECT_EQ(readFile(_dir + "/run_on/population_2.pop"),
              readFile(_dir + "/run_off/population_2.pop"));

    // analytics="false" suppresses the artifacts entirely.
    EXPECT_TRUE(fileExists(_dir + "/run_on/lineage.csv"));
    EXPECT_FALSE(fileExists(_dir + "/run_off/lineage.csv"));
    EXPECT_FALSE(fileExists(_dir + "/run_off/analytics.csv"));
    EXPECT_FALSE(fileExists(_dir + "/run_off/status.json"));

    // explain on the analytics-less run fails with an actionable hint.
    EXPECT_NE(runCli("explain '" + _dir + "/run_off'", output, _dir),
              0);
    EXPECT_NE(output.find("analytics"), std::string::npos);
}

TEST_F(CliTest, WaveformsSealedAndProbeReMeasures)
{
    // A PDN-instrumented search with the flight recorder on: the run
    // seals waveform artifacts, and `gest probe` re-measures the
    // champion with full capture.
    writeFile(_dir + "/didt.xml", R"(
<gest_configuration>
  <ga population_size="8" individual_size="6" mutation_rate="0.2"
      tournament_size="3" generations="3" seed="6"/>
  <library name="x86"/>
  <measurement class="SimVoltageNoiseMeasurement">
    <config platform="athlon-x4" min_cycles="1024"/>
  </measurement>
  <fitness class="DefaultFitness"/>
  <output directory="didt_out" waveforms="2" stats="false"/>
</gest_configuration>
)");
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/didt.xml' --quiet", output,
                     _dir),
              0)
        << output;
    EXPECT_NE(output.find("waveform"), std::string::npos);

    const std::string run_dir = _dir + "/didt_out";
    ASSERT_TRUE(fileExists(run_dir + "/waveforms/index.csv"));
    const std::string index = readFile(run_dir + "/waveforms/index.csv");
    EXPECT_NE(index.find("# gest-waveform-index v1"),
              std::string::npos);

    ASSERT_EQ(runCli("probe '" + _dir + "/didt.xml' '" + run_dir + "'",
                     output, _dir),
              0)
        << output;
    EXPECT_NE(output.find("signals:"), std::string::npos);
    EXPECT_NE(output.find("droop depth"), std::string::npos);
    EXPECT_NE(output.find("resonance"), std::string::npos);
    EXPECT_TRUE(dirExists(run_dir + "/probe"));
    const auto probe_files = listFiles(run_dir + "/probe");
    EXPECT_GE(probe_files.size(), 3u); // csv + json + spectrum

    // probe also accepts a population file directly, with --out.
    ASSERT_EQ(runCli("probe '" + _dir + "/didt.xml' '" + run_dir +
                         "/population_2.pop' --out '" + _dir +
                         "/probe_out'",
                     output, _dir),
              0)
        << output;
    EXPECT_TRUE(dirExists(_dir + "/probe_out"));
}

TEST_F(CliTest, ProbeOnBadTargetFails)
{
    std::string output;
    EXPECT_NE(runCli("probe '" + _dir + "/config.xml' /nonexistent",
                     output, _dir),
              0);
    EXPECT_NE(output.find("fatal:"), std::string::npos);
}

TEST_F(CliTest, ExplainOnBadRunDirectoryFails)
{
    std::string output;
    EXPECT_NE(runCli("explain '" + _dir + "'", output, _dir), 0);
    EXPECT_NE(output.find("fatal:"), std::string::npos);
    EXPECT_NE(output.find("lineage.csv"), std::string::npos);

    EXPECT_NE(runCli("explain /nonexistent/run", output, _dir), 0);
    EXPECT_NE(output.find("does not exist"), std::string::npos);
}

TEST_F(CliTest, VerifyPassesOnSealedRunAndCatchesTampering)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml'", output, _dir), 0)
        << output;
    const std::string run_dir = _dir + "/run_out";
    ASSERT_TRUE(fileExists(run_dir + "/manifest.json"));
    ASSERT_TRUE(fileExists(run_dir + "/digests.csv"));

    ASSERT_EQ(runCli("verify '" + run_dir + "'", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("OK: run verified"), std::string::npos);
    EXPECT_NE(output.find("reproduced bit-identically"),
              std::string::npos);

    ASSERT_EQ(runCli("verify '" + run_dir + "' --quick", output, _dir),
              0)
        << output;
    EXPECT_NE(output.find("replay skipped"), std::string::npos);

    // One flipped byte in any sealed artifact must fail verification
    // naming that artifact.
    std::string history = readFile(run_dir + "/history.csv");
    history[history.size() / 2] ^= 0x01;
    writeFile(run_dir + "/history.csv", history);
    EXPECT_NE(runCli("verify '" + run_dir + "'", output, _dir), 0);
    EXPECT_NE(output.find("history.csv"), std::string::npos);
    EXPECT_NE(output.find("checksum mismatch"), std::string::npos);
}

TEST_F(CliTest, VerifyOnUnsealedDirectoryFails)
{
    std::string output;
    EXPECT_NE(runCli("verify '" + _dir + "'", output, _dir), 0);
    EXPECT_NE(output.find("manifest.json"), std::string::npos);
}

TEST_F(CliTest, CompareSameSeedRunsReportsZeroDeltas)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml'", output, _dir), 0)
        << output;
    writeFile(_dir + "/config_b.xml",
              replaceAll(readFile(_dir + "/config.xml"), "run_out",
                         "run_out_b"));
    ASSERT_EQ(runCli("run '" + _dir + "/config_b.xml'", output, _dir),
              0)
        << output;

    ASSERT_EQ(runCli("compare '" + _dir + "/run_out' '" + _dir +
                         "/run_out_b'",
                     output, _dir),
              0)
        << output;
    EXPECT_NE(output.find("significant deltas: 0"), std::string::npos);
    EXPECT_NE(output.find("deterministic results identical"),
              std::string::npos);

    ASSERT_EQ(runCli("compare '" + _dir + "/run_out' '" + _dir +
                         "/run_out_b' --json",
                     output, _dir),
              0)
        << output;
    EXPECT_NE(output.find("\"significant_deltas\": 0"),
              std::string::npos);
    EXPECT_NE(output.find("\"gest_compare_version\": 1"),
              std::string::npos);
}

TEST_F(CliTest, ProvenanceOffSuppressesManifestAndDigests)
{
    writeFile(_dir + "/noprov.xml",
              replaceAll(readFile(_dir + "/config.xml"),
                         "<output directory=\"run_out\"/>",
                         "<output directory=\"run_noprov\" "
                         "provenance=\"false\"/>"));
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/noprov.xml'", output, _dir), 0)
        << output;
    EXPECT_FALSE(fileExists(_dir + "/run_noprov/manifest.json"));
    EXPECT_FALSE(fileExists(_dir + "/run_noprov/digests.csv"));
    EXPECT_TRUE(fileExists(_dir + "/run_noprov/history.csv"));
}

TEST_F(CliTest, TopOnRunDirWithoutHistoryShowsWaitingState)
{
    // A run directory that exists but has not evaluated its first
    // generation yet (no history.csv) is a normal condition for
    // `gest top`, not an error.
    const std::string run_dir = _dir + "/empty_run";
    ensureDir(run_dir);
    std::string output;
    EXPECT_EQ(runCli("top '" + run_dir + "' --once", output, _dir), 0)
        << output;
    EXPECT_NE(output.find("waiting for first generation"),
              std::string::npos);

    // A directory that does not exist at all is still an error.
    EXPECT_NE(runCli("top '" + _dir + "/nonexistent' --once", output,
                     _dir),
              0);
}

/** The `gest <name>` subcommands a usage or README text mentions. */
std::set<std::string>
subcommandsIn(const std::string& text, const std::string& prefix)
{
    std::set<std::string> names;
    for (const std::string& line : split(text, '\n')) {
        const std::size_t at = line.find(prefix);
        if (at == std::string::npos)
            continue;
        std::size_t end = at + prefix.size();
        while (end < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[end])) ||
                line[end] == '-'))
            ++end;
        const std::string name =
            line.substr(at + prefix.size(), end - at - prefix.size());
        if (!name.empty())
            names.insert(name);
    }
    return names;
}

TEST_F(CliTest, UsageAndReadmeAgreeOnTheCommandSet)
{
    // Every subcommand must appear in usage() with a description...
    std::string usage;
    EXPECT_NE(runCli("", usage, _dir), 0);
    const std::set<std::string> from_usage =
        subcommandsIn(usage, "  gest ");
    ASSERT_FALSE(from_usage.empty());
    for (const char* required :
         {"run", "probe", "attribute", "report", "explain", "stats",
          "fittest", "top", "runs", "verify", "compare", "platforms",
          "classes"})
        EXPECT_EQ(from_usage.count(required), 1u) << required;

    // ...and the README's command table must list exactly the same set
    // (rows of the form "| `gest <name> ...` | description |").
    const std::string readme = readFile(GEST_README_PATH);
    const std::set<std::string> from_readme =
        subcommandsIn(readme, "| `gest ");
    EXPECT_EQ(from_usage, from_readme);
}

TEST_F(CliTest, AttributeExplainsTheChampion)
{
    std::string output;
    ASSERT_EQ(runCli("run '" + _dir + "/config.xml' --quiet", output,
                     _dir),
              0)
        << output;
    const std::string run_dir = _dir + "/run_out";

    ASSERT_EQ(runCli("attribute '" + _dir + "/config.xml' '" + run_dir +
                         "' --top 3",
                     output, _dir),
              0)
        << output;
    EXPECT_NE(output.find("top load-bearing genes:"), std::string::npos);
    EXPECT_NE(output.find("class attribution:"), std::string::npos);
    EXPECT_NE(output.find("whole-champion ablation"), std::string::npos);

    // The default lands beside, never inside, the sealed attribution/
    // directory, so attributing a sealed run keeps it verifiable.
    const std::string csv_dir = run_dir + "/attribute";
    ASSERT_TRUE(dirExists(csv_dir)) << output;
    bool found_csv = false;
    for (const std::string& line : split(output, '\n')) {
        const std::size_t at = line.find(csv_dir + "/individual_");
        if (at != std::string::npos && endsWith(line, ".csv")) {
            const std::string path = line.substr(at);
            EXPECT_TRUE(startsWith(readFile(path),
                                   "# gest-attribution v1\n"));
            found_csv = true;
        }
    }
    EXPECT_TRUE(found_csv) << output;
    EXPECT_EQ(runCli("verify '" + run_dir + "' --quick", output, _dir),
              0)
        << output;

    // --out redirects the artifacts away from the run directory.
    ASSERT_EQ(runCli("attribute '" + _dir + "/config.xml' '" + run_dir +
                         "' --out '" + _dir + "/attr_out'",
                     output, _dir),
              0)
        << output;
    EXPECT_TRUE(dirExists(_dir + "/attr_out"));
}

} // namespace
} // namespace gest
