/**
 * @file
 * Tests for the LLC/DRAM stress extension (§VII): the two-level cache
 * hierarchy, MSHR-bounded memory-level parallelism, the pointer-advance
 * semantics and the cache-miss measurement.
 */

#include <gtest/gtest.h>

#include "arch/simulator.hh"
#include "core/engine.hh"
#include "measure/sim_measurements.hh"
#include "platform/platform.hh"
#include "util/logging.hh"

namespace gest {
namespace {

using arch::CpuConfig;
using arch::InitState;
using arch::LoopSimulator;
using arch::SimResult;

std::vector<arch::MicroOp>
stridedStream(const isa::InstructionLibrary& lib, int stride)
{
    std::vector<isa::InstructionInstance> code;
    code.push_back(
        lib.makeInstance("ADVANCE", {"x10", std::to_string(stride)}));
    code.push_back(lib.makeInstance("LDR", {"x2", "x10", "0"}));
    code.push_back(lib.makeInstance("LDR", {"x3", "x10", "64"}));
    return arch::decodeBody(lib, code);
}

InitState
bigBuffer()
{
    InitState init;
    init.bufferBytes = 1u << 20;
    return init;
}

TEST(Llc, L1ResidentLoopNeverReachesL2)
{
    const auto lib = isa::armCacheStressLibrary();
    std::vector<isa::InstructionInstance> code = {
        lib.makeInstance("LDR", {"x2", "x10", "0"}),
        lib.makeInstance("LDR", {"x3", "x10", "128"}),
    };
    LoopSimulator sim(arch::xgene2Config(), bigBuffer());
    const SimResult result =
        sim.run(arch::decodeBody(lib, code), 500, 4);
    EXPECT_GT(result.l1HitRate(), 0.99);
    // Only the two cold misses reach L2.
    EXPECT_LE(result.l2Accesses, 2u);
}

TEST(Llc, StridedStreamMissesBothLevels)
{
    const auto lib = isa::armCacheStressLibrary();
    LoopSimulator sim(arch::xgene2Config(), bigBuffer());
    const SimResult result =
        sim.run(stridedStream(lib, 4032), 2000, 8);
    // Every access lands on a fresh line of a 1 MiB footprint: the
    // 32 KiB L1 and 256 KiB L2 both thrash.
    EXPECT_LT(result.l1HitRate(), 0.7);
    EXPECT_LT(result.l2HitRate(), 0.4);
    EXPECT_GT(result.dramPerKiloInstr(), 100.0);
}

TEST(Llc, SmallStrideStaysWithinLines)
{
    // A 64-byte stride with two loads per iteration touches each line
    // twice: about half the accesses hit.
    const auto lib = isa::armCacheStressLibrary();
    LoopSimulator sim(arch::xgene2Config(), bigBuffer());
    const SimResult fine = sim.run(stridedStream(lib, 64), 2000, 8);
    const SimResult coarse =
        sim.run(stridedStream(lib, 4032), 2000, 8);
    EXPECT_GT(fine.l1HitRate(), coarse.l1HitRate());
    EXPECT_LT(fine.dramPerKiloInstr(), coarse.dramPerKiloInstr());
}

TEST(Llc, AddWrapKeepsPointerInsideBuffer)
{
    // After thousands of advances the address still maps into the
    // buffer: the simulation would otherwise panic or alias wrongly.
    const auto lib = isa::armCacheStressLibrary();
    LoopSimulator sim(arch::xgene2Config(), bigBuffer());
    const SimResult result =
        sim.run(stridedStream(lib, 4032), 5000, 8);
    EXPECT_GT(result.instructions, 0u);
    // The stream wraps the 1 MiB buffer many times: reuse across wraps
    // is possible only because the pointer wrapped correctly.
    EXPECT_GT(result.cacheAccesses, 9000u);
}

TEST(Llc, MshrsBoundMemoryLevelParallelism)
{
    const auto lib = isa::armCacheStressLibrary();
    CpuConfig wide = arch::xgene2Config();
    wide.mshrs = 16;
    CpuConfig narrow = arch::xgene2Config();
    narrow.mshrs = 1;

    const SimResult many =
        LoopSimulator(wide, bigBuffer()).run(stridedStream(lib, 4032),
                                             1500, 8);
    const SimResult few =
        LoopSimulator(narrow, bigBuffer()).run(stridedStream(lib, 4032),
                                               1500, 8);
    // One outstanding miss serializes on DRAM latency.
    EXPECT_GT(many.ipc, few.ipc * 1.5);
}

TEST(Llc, MispredictFreeForwardProgressWithBlockedMshrs)
{
    // Even with a single MSHR and an in-order core the simulation makes
    // forward progress (the MSHR frees after the DRAM latency).
    const auto lib = isa::armCacheStressLibrary();
    CpuConfig cfg = arch::xgene2Config();
    cfg.mshrs = 1;
    cfg.outOfOrder = false;
    cfg.windowSize = 4;
    LoopSimulator sim(cfg, bigBuffer());
    const SimResult result =
        sim.run(stridedStream(lib, 1024), 300, 4);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.ipc, 0.0);
}

TEST(Llc, CacheStressLibraryShape)
{
    const auto lib = isa::armCacheStressLibrary();
    EXPECT_GE(lib.findInstruction("ADVANCE"), 0);
    EXPECT_GE(lib.findInstruction("LDR"), 0);
    const int adv = lib.findInstruction("ADVANCE");
    EXPECT_EQ(lib.instruction(static_cast<std::size_t>(adv)).opcode,
              isa::Opcode::AddWrap);
    // Strides stay within the AArch64 ADD immediate limit.
    const int op_index = lib.findOperand("stride_value");
    ASSERT_GE(op_index, 0);
    const isa::OperandDef& stride =
        lib.operand(static_cast<std::size_t>(op_index));
    EXPECT_LE(stride.immMax(), 4095);
    EXPECT_GE(stride.immMin(), 64);
}

TEST(Llc, AdvanceDecodesAsReadModifyWrite)
{
    const auto lib = isa::armCacheStressLibrary();
    const arch::MicroOp mo = arch::decode(
        lib, lib.makeInstance("ADVANCE", {"x10", "512"}));
    EXPECT_EQ(mo.op, isa::Opcode::AddWrap);
    EXPECT_EQ(mo.numDst, 1);
    EXPECT_EQ(mo.dst[0], 10);
    ASSERT_EQ(mo.numSrc, 1);
    EXPECT_EQ(mo.src[0], 10); // reads itself
    EXPECT_EQ(mo.imm, 512);
}

TEST(Llc, PlatformPresetHasL2AndBigBuffer)
{
    const auto plat = platform::xgene2LlcPlatform();
    EXPECT_TRUE(plat->cpu().hasL2);
    EXPECT_EQ(plat->initState().bufferBytes, 1u << 20);
    EXPECT_GE(plat->library().findInstruction("ADVANCE"), 0);
    // Reachable through the registry too.
    EXPECT_EQ(platform::Platform::byName("xgene2-llc")->name(),
              "xgene2-llc");
}

TEST(Llc, CacheMissMeasurementValues)
{
    const auto plat = platform::xgene2LlcPlatform();
    const auto& lib = plat->library();
    measure::SimCacheMissMeasurement meas(lib, plat);

    const std::vector<isa::InstructionInstance> code = {
        lib.makeInstance("ADVANCE", {"x10", "4032"}),
        lib.makeInstance("LDR", {"x2", "x10", "0"}),
    };
    const measure::MeasurementResult result = meas.measure(code);
    ASSERT_EQ(result.values.size(), meas.valueNames().size());
    EXPECT_GT(result.values[0], 50.0);  // DRAM/kinstr
    EXPECT_GT(result.values[1], 0.3);   // L1 miss rate
    EXPECT_GT(result.values[4], 0.0);   // power
}

TEST(Llc, CacheMissMeasurementNeedsL2)
{
    // The A15 model has no L2: the measurement must refuse.
    const auto a15 = platform::cortexA15Platform();
    measure::SimCacheMissMeasurement meas(a15->library(), a15);
    const std::vector<isa::InstructionInstance> code = {
        a15->library().makeInstance("LDR", {"x2", "x10", "0"})};
    EXPECT_THROW(meas.measure(code), FatalError);
}

TEST(Llc, GaDiscoversDramTraffic)
{
    const auto plat = platform::xgene2LlcPlatform();
    const auto& lib = plat->library();
    measure::SimCacheMissMeasurement meas(lib, plat);
    fitness::DefaultFitness fit;

    core::GaParams params;
    params.populationSize = 16;
    params.individualSize = 16;
    params.mutationRate = core::GaParams::mutationRateForSize(16);
    params.generations = 12;
    params.seed = 55;

    core::Engine engine(params, lib, meas, fit);
    engine.run();
    // The GA must discover strided pointer advances: well above any
    // L1-resident loop's DRAM traffic.
    EXPECT_GT(engine.bestEver().fitness, 50.0);
    EXPECT_GT(engine.history().back().bestFitness,
              engine.history().front().bestFitness * 0.99);
}

} // namespace
} // namespace gest
