/**
 * @file
 * Unit tests for the GA engine: parameters, operators, populations.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/engine.hh"
#include "isa/standard_libs.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace core {
namespace {

/**
 * Deterministic synthetic measurement: the value is the number of
 * instructions of a target class, so the known global optimum is an
 * individual made entirely of that class.
 */
class ClassCountMeasurement : public measure::Measurement
{
  public:
    ClassCountMeasurement(const isa::InstructionLibrary& lib,
                          isa::InstrClass target)
        : _lib(lib), _target(target)
    {}

    measure::MeasurementResult
    measure(const std::vector<isa::InstructionInstance>& code) override
    {
        ++calls;
        double count = 0.0;
        for (const isa::InstructionInstance& inst : code) {
            if (_lib.instruction(inst.defIndex).cls == _target)
                count += 1.0;
        }
        return {{count, static_cast<double>(code.size())}};
    }

    std::vector<std::string>
    valueNames() const override
    {
        return {"target_count", "size"};
    }

    std::string name() const override { return "ClassCountMeasurement"; }

    int calls = 0;

  private:
    const isa::InstructionLibrary& _lib;
    isa::InstrClass _target;
};

GaParams
smallParams()
{
    GaParams params;
    params.populationSize = 20;
    params.individualSize = 12;
    params.mutationRate = 0.08;
    params.generations = 15;
    params.seed = 7;
    return params;
}

// ------------------------------------------------------------ GaParams

TEST(GaParams, DefaultsMatchPaperTableOne)
{
    const GaParams params;
    EXPECT_EQ(params.populationSize, 50);
    EXPECT_GE(params.individualSize, 15);
    EXPECT_LE(params.individualSize, 50);
    EXPECT_GE(params.mutationRate, 0.02);
    EXPECT_LE(params.mutationRate, 0.08);
    EXPECT_EQ(params.crossover, CrossoverOperator::OnePoint);
    EXPECT_EQ(params.selection, SelectionMethod::Tournament);
    EXPECT_EQ(params.tournamentSize, 5);
    EXPECT_TRUE(params.elitism);
    EXPECT_NO_THROW(params.validate());
}

TEST(GaParams, MutationRateRuleOfThumb)
{
    // 2% for 50-instruction loops, 8% for 15 (paper §III.A, rounded).
    EXPECT_NEAR(GaParams::mutationRateForSize(50), 0.02, 1e-9);
    EXPECT_NEAR(GaParams::mutationRateForSize(15), 0.0667, 1e-3);
    EXPECT_THROW(GaParams::mutationRateForSize(0), FatalError);
}

TEST(GaParams, DidtLoopLengthRule)
{
    // IPC * f_clk / f_res: 1.5 * 3.1e9 / 1e8 = 46.5 -> 46..47.
    const int len = GaParams::didtLoopLength(1.5, 3.1, 100e6);
    EXPECT_GE(len, 46);
    EXPECT_LE(len, 47);
    EXPECT_THROW(GaParams::didtLoopLength(0, 3.1, 1e8), FatalError);
}

TEST(GaParams, ValidationBounds)
{
    GaParams params = smallParams();
    params.populationSize = 1;
    EXPECT_THROW(params.validate(), FatalError);
    params = smallParams();
    params.mutationRate = 1.5;
    EXPECT_THROW(params.validate(), FatalError);
    params = smallParams();
    params.tournamentSize = 100;
    EXPECT_THROW(params.validate(), FatalError);
    params = smallParams();
    params.generations = 0;
    EXPECT_THROW(params.validate(), FatalError);
}

TEST(GaParams, EnumStringRoundTrips)
{
    EXPECT_EQ(crossoverFromString("one_point"),
              CrossoverOperator::OnePoint);
    EXPECT_EQ(crossoverFromString("UNIFORM"), CrossoverOperator::Uniform);
    EXPECT_THROW(crossoverFromString("two_point"), FatalError);
    EXPECT_EQ(selectionFromString("tournament"),
              SelectionMethod::Tournament);
    EXPECT_EQ(selectionFromString("roulette"), SelectionMethod::Roulette);
    EXPECT_THROW(selectionFromString("rank"), FatalError);
    EXPECT_STREQ(toString(CrossoverOperator::OnePoint), "one_point");
    EXPECT_STREQ(toString(SelectionMethod::Roulette), "roulette");
}

// ----------------------------------------------------------- Operators

Population
gradedPopulation(int size)
{
    Population pop;
    for (int i = 0; i < size; ++i) {
        Individual ind;
        ind.id = static_cast<std::uint64_t>(i + 1);
        ind.fitness = static_cast<double>(i);
        ind.evaluated = true;
        pop.individuals.push_back(ind);
    }
    return pop;
}

TEST(Operators, TournamentPrefersFitterIndividuals)
{
    const Population pop = gradedPopulation(50);
    Rng rng(3);
    double sum = 0.0;
    const int draws = 2000;
    for (int i = 0; i < draws; ++i)
        sum += pop.individuals[tournamentSelect(pop, 5, rng)].fitness;
    // Expected max of 5 uniform draws from 0..49 is ~41; far above the
    // population mean of 24.5.
    EXPECT_GT(sum / draws, 35.0);
}

TEST(Operators, TournamentSizeOneIsUniform)
{
    const Population pop = gradedPopulation(50);
    Rng rng(4);
    double sum = 0.0;
    const int draws = 4000;
    for (int i = 0; i < draws; ++i)
        sum += pop.individuals[tournamentSelect(pop, 1, rng)].fitness;
    EXPECT_NEAR(sum / draws, 24.5, 1.5);
}

TEST(Operators, RoulettePrefersFitterIndividuals)
{
    const Population pop = gradedPopulation(50);
    Rng rng(5);
    double sum = 0.0;
    const int draws = 4000;
    for (int i = 0; i < draws; ++i)
        sum += pop.individuals[rouletteSelect(pop, rng)].fitness;
    // Fitness-proportional expectation: sum(f^2)/sum(f) ~ 32.8.
    EXPECT_GT(sum / draws, 29.0);
}

TEST(Operators, RouletteHandlesNegativeFitness)
{
    Population pop = gradedPopulation(10);
    for (Individual& ind : pop.individuals)
        ind.fitness -= 100.0;
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(rouletteSelect(pop, rng), pop.individuals.size());
}

Individual
individualOf(const isa::InstructionLibrary& lib, const char* name, int n,
             std::uint64_t id)
{
    Individual ind;
    ind.id = id;
    Rng rng(id);
    const int def = lib.findInstruction(name);
    for (int i = 0; i < n; ++i)
        ind.code.push_back(
            lib.randomInstanceOf(static_cast<std::size_t>(def), rng));
    return ind;
}

TEST(Operators, OnePointCrossoverSwapsTails)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const Individual p1 = individualOf(lib, "ADD", 10, 1);
    const Individual p2 = individualOf(lib, "FMUL", 10, 2);
    Rng rng(7);
    const auto [c1, c2] = onePointCrossover(p1, p2, rng);

    ASSERT_EQ(c1.code.size(), 10u);
    ASSERT_EQ(c2.code.size(), 10u);
    EXPECT_EQ(c1.parent1, p1.id);
    EXPECT_EQ(c1.parent2, p2.id);

    // Find the cut: a prefix from p1, a suffix from p2 (Figure 3).
    const std::uint32_t add =
        static_cast<std::uint32_t>(lib.findInstruction("ADD"));
    std::size_t cut = 0;
    while (cut < 10 && c1.code[cut].defIndex == add)
        ++cut;
    EXPECT_GT(cut, 0u);
    EXPECT_LT(cut, 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(c1.code[i], i < cut ? p1.code[i] : p2.code[i]);
        EXPECT_EQ(c2.code[i], i < cut ? p2.code[i] : p1.code[i]);
    }
}

TEST(Operators, UniformCrossoverMixesGenesPerPosition)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const Individual p1 = individualOf(lib, "ADD", 40, 1);
    const Individual p2 = individualOf(lib, "FMUL", 40, 2);
    Rng rng(8);
    const auto [c1, c2] = uniformCrossover(p1, p2, rng);

    const std::uint32_t add =
        static_cast<std::uint32_t>(lib.findInstruction("ADD"));
    int from_p1 = 0;
    int switches = 0;
    for (std::size_t i = 0; i < 40; ++i) {
        const bool is_p1 = c1.code[i].defIndex == add;
        from_p1 += is_p1;
        if (i > 0 &&
            is_p1 != (c1.code[i - 1].defIndex == add))
            ++switches;
        // Children are complementary.
        EXPECT_NE(c1.code[i].defIndex == add,
                  c2.code[i].defIndex == add);
    }
    EXPECT_GT(from_p1, 8);
    EXPECT_LT(from_p1, 32);
    // Uniform crossover destroys order: many alternations, unlike the
    // single switch of one-point crossover.
    EXPECT_GT(switches, 5);
}

TEST(Operators, CrossoverSizeMismatchPanics)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const Individual p1 = individualOf(lib, "ADD", 10, 1);
    const Individual p2 = individualOf(lib, "ADD", 12, 2);
    Rng rng(9);
    EXPECT_DEATH((void)onePointCrossover(p1, p2, rng), "crossover");
}

TEST(Operators, MutationRateZeroChangesNothing)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Individual ind = individualOf(lib, "ADD", 30, 1);
    const Individual before = ind;
    GaParams params = smallParams();
    params.mutationRate = 0.0;
    Rng rng(10);
    EXPECT_EQ(mutate(ind, lib, params, rng), 0);
    EXPECT_EQ(ind.code, before.code);
}

TEST(Operators, MutationRateOneTouchesEveryGene)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Individual ind = individualOf(lib, "ADD", 30, 1);
    GaParams params = smallParams();
    params.mutationRate = 1.0;
    Rng rng(11);
    EXPECT_EQ(mutate(ind, lib, params, rng), 30);
}

TEST(Operators, MutationCountMatchesRateOnAverage)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    GaParams params = smallParams();
    params.mutationRate = 0.02;
    Rng rng(12);
    int total = 0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
        Individual ind = individualOf(lib, "ADD", 50, 1);
        total += mutate(ind, lib, params, rng);
    }
    // The paper's rule: ~1 mutated instruction per 50-long individual.
    EXPECT_NEAR(static_cast<double>(total) / trials, 1.0, 0.2);
}

TEST(Operators, MutationReportsIndicesWithoutPerturbingTheRng)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    GaParams params = smallParams();
    params.mutationRate = 0.3;

    // Same seed with and without the out-parameter: identical result
    // genome (recording is a pure observation), and the reported
    // indices are exactly the genes that changed.
    Individual recorded = individualOf(lib, "ADD", 20, 1);
    const Individual before = recorded;
    Rng rng1(17);
    std::vector<std::uint32_t> indices;
    const int count = mutate(recorded, lib, params, rng1, &indices);
    EXPECT_EQ(static_cast<int>(indices.size()), count);
    ASSERT_GT(count, 0);

    Individual plain = individualOf(lib, "ADD", 20, 1);
    Rng rng2(17);
    EXPECT_EQ(mutate(plain, lib, params, rng2), count);
    EXPECT_EQ(plain.code, recorded.code);

    // Every changed gene is reported (a reported gene may still
    // compare equal: an operand redraw can land on the same value).
    const std::set<std::uint32_t> mutated(indices.begin(),
                                          indices.end());
    for (std::uint32_t i = 0; i < before.code.size(); ++i) {
        if (!mutated.count(i))
            EXPECT_EQ(recorded.code[i], before.code[i]) << i;
    }
    EXPECT_TRUE(recorded.code != before.code);
}

TEST(Operators, MutatedGenesRemainValid)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    GaParams params = smallParams();
    params.mutationRate = 0.5;
    Rng rng(13);
    for (int t = 0; t < 50; ++t) {
        Individual ind = individualOf(lib, "LDR", 20, 1);
        mutate(ind, lib, params, rng);
        for (const isa::InstructionInstance& inst : ind.code)
            EXPECT_TRUE(lib.valid(inst));
    }
}

// ---------------------------------------------------------- Population

TEST(Population, BestAndAverage)
{
    Population pop = gradedPopulation(5);
    EXPECT_EQ(pop.bestIndex(), 4);
    EXPECT_DOUBLE_EQ(pop.best().fitness, 4.0);
    EXPECT_DOUBLE_EQ(pop.averageFitness(), 2.0);

    pop.individuals[2].evaluated = false;
    pop.individuals[4].evaluated = false;
    EXPECT_EQ(pop.bestIndex(), 3);
}

TEST(Population, GenotypeDiversityBounds)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();

    // Clones: exactly 1/N distinct definitions per position.
    Population clones;
    Rng rng(40);
    Individual proto;
    proto.id = 1;
    for (int g = 0; g < 10; ++g)
        proto.code.push_back(lib.randomInstance(rng));
    for (int i = 0; i < 10; ++i)
        clones.individuals.push_back(proto);
    EXPECT_NEAR(clones.genotypeDiversity(), 0.1, 1e-9);

    // Random population: far more diverse.
    Population random_pop;
    for (int i = 0; i < 10; ++i) {
        Individual ind;
        ind.id = static_cast<std::uint64_t>(i);
        for (int g = 0; g < 10; ++g)
            ind.code.push_back(lib.randomInstance(rng));
        random_pop.individuals.push_back(std::move(ind));
    }
    EXPECT_GT(random_pop.genotypeDiversity(),
              clones.genotypeDiversity() * 3.0);
    EXPECT_LE(random_pop.genotypeDiversity(), 1.0);

    EXPECT_DOUBLE_EQ(Population{}.genotypeDiversity(), 0.0);
}

TEST(Engine, DiversityCollapsesAsSearchConverges)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::FloatSimd);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.generations = 25;

    core::Engine engine(params, lib, meas, fit);
    engine.run();
    const auto& history = engine.history();
    // Selection pressure shrinks genotype diversity over the run.
    EXPECT_LT(history.back().diversity,
              history.front().diversity * 0.8);
    EXPECT_GT(history.front().diversity, 0.3);
}

TEST(Population, EmptyPopulationHasNoBest)
{
    const Population pop;
    EXPECT_EQ(pop.bestIndex(), -1);
    EXPECT_DOUBLE_EQ(pop.averageFitness(), 0.0);
}

TEST(Population, SerializeRoundTrips)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Population pop;
    pop.generation = 7;
    Rng rng(20);
    for (int i = 0; i < 5; ++i) {
        Individual ind;
        ind.id = static_cast<std::uint64_t>(100 + i);
        ind.parent1 = 3;
        ind.parent2 = 4;
        ind.fitness = 1.25 * i;
        ind.evaluated = i % 2 == 0;
        ind.measurements = {1.5 * i, -2.0};
        for (int g = 0; g < 8; ++g)
            ind.code.push_back(lib.randomInstance(rng));
        pop.individuals.push_back(std::move(ind));
    }

    const Population again =
        deserializePopulation(lib, serializePopulation(lib, pop));
    ASSERT_EQ(again.individuals.size(), 5u);
    EXPECT_EQ(again.generation, 7);
    for (std::size_t i = 0; i < 5; ++i) {
        const Individual& a = pop.individuals[i];
        const Individual& b = again.individuals[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.parent1, b.parent1);
        EXPECT_EQ(a.evaluated, b.evaluated);
        EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
        EXPECT_EQ(a.measurements, b.measurements);
        EXPECT_EQ(a.code, b.code);
    }
}

TEST(Population, DeserializeRejectsGarbage)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    EXPECT_THROW(deserializePopulation(lib, "not a population"),
                 FatalError);
    EXPECT_THROW(deserializePopulation(lib, "gest-population 1\n"),
                 FatalError);
    EXPECT_THROW(
        deserializePopulation(
            lib, "gest-population 1\ngeneration 0\n"
                 "individual 1 0 0 0.5 1\nmeasurements 0\ncode 1\n"
                 "UNKNOWN_INSTR 0 0\nend\n"),
        FatalError);
}

TEST(Population, SaveLoadFile)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-pop");
    Population pop;
    pop.generation = 3;
    Rng rng(22);
    Individual ind;
    ind.id = 1;
    ind.code.push_back(lib.randomInstance(rng));
    pop.individuals.push_back(ind);
    savePopulation(lib, pop, dir + "/p.pop");
    const Population loaded = loadPopulation(lib, dir + "/p.pop");
    EXPECT_EQ(loaded.generation, 3);
    EXPECT_EQ(loaded.individuals.size(), 1u);
    removeAll(dir);
}

// -------------------------------------------------------------- Engine

TEST(Engine, ConvergesTowardKnownOptimum)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::FloatSimd);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.generations = 30;

    core::Engine engine(params, lib, meas, fit);
    engine.run();

    // Random individuals average ~12/50 FloatSimd genes for this
    // library; the GA must get close to all-FloatSimd.
    EXPECT_GE(engine.bestEver().fitness, 10.0);
    EXPECT_GT(engine.history().back().bestFitness,
              engine.history().front().bestFitness);
}

TEST(Engine, DeterministicForEqualSeeds)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;
    const GaParams params = smallParams();

    ClassCountMeasurement m1(lib, isa::InstrClass::Mem);
    core::Engine e1(params, lib, m1, fit);
    e1.run();

    ClassCountMeasurement m2(lib, isa::InstrClass::Mem);
    core::Engine e2(params, lib, m2, fit);
    e2.run();

    ASSERT_EQ(e1.history().size(), e2.history().size());
    for (std::size_t g = 0; g < e1.history().size(); ++g) {
        EXPECT_DOUBLE_EQ(e1.history()[g].bestFitness,
                         e2.history()[g].bestFitness);
        EXPECT_DOUBLE_EQ(e1.history()[g].averageFitness,
                         e2.history()[g].averageFitness);
    }
    EXPECT_EQ(e1.bestEver().code, e2.bestEver().code);
}

TEST(Engine, DifferentSeedsExploreDifferently)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;
    GaParams params = smallParams();

    ClassCountMeasurement m1(lib, isa::InstrClass::Mem);
    core::Engine e1(params, lib, m1, fit);
    e1.initialize();

    params.seed = 8888;
    ClassCountMeasurement m2(lib, isa::InstrClass::Mem);
    core::Engine e2(params, lib, m2, fit);
    e2.initialize();

    EXPECT_NE(e1.population().individuals[0].code,
              e2.population().individuals[0].code);
}

class ElitismTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ElitismTest, BestFitnessIsMonotoneUnderElitism)
{
    // Property: with elitism and a deterministic measurement, the best
    // fitness never decreases across generations — for any seed.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::Branch);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.seed = GetParam();
    params.generations = 12;

    core::Engine engine(params, lib, meas, fit);
    engine.run();
    double last = -1.0;
    for (const GenerationRecord& record : engine.history()) {
        EXPECT_GE(record.bestFitness, last);
        last = record.bestFitness;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElitismTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Engine, PopulationSizeIsStable)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::Mem);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.populationSize = 21; // odd: breeding must trim the pair

    core::Engine engine(params, lib, meas, fit);
    engine.initialize();
    EXPECT_EQ(engine.population().individuals.size(), 21u);
    while (engine.step()) {
    }
    EXPECT_EQ(engine.population().individuals.size(), 21u);
}

TEST(Engine, ElitePreservedWithoutReevaluation)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::Mem);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.generations = 2;

    core::Engine engine(params, lib, meas, fit);
    engine.initialize();
    const std::uint64_t best_id = engine.population().best().id;
    const int calls_after_init = meas.calls;
    engine.step();
    // The elite appears in the new generation with the same id and was
    // not measured again.
    EXPECT_EQ(engine.population().individuals.front().id, best_id);
    EXPECT_EQ(meas.calls,
              calls_after_init + params.populationSize - 1);
}

TEST(Engine, SeedPopulationResumesSearch)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.generations = 5;

    ClassCountMeasurement m1(lib, isa::InstrClass::FloatSimd);
    core::Engine first(params, lib, m1, fit);
    first.run();
    const double first_best = first.bestEver().fitness;

    ClassCountMeasurement m2(lib, isa::InstrClass::FloatSimd);
    core::Engine second(params, lib, m2, fit);
    second.setSeedPopulation(first.population());
    second.run();
    EXPECT_GE(second.bestEver().fitness, first_best);
}

TEST(Engine, SeedPopulationValidatesShape)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::Mem);
    fitness::DefaultFitness fit;
    core::Engine engine(smallParams(), lib, meas, fit);

    Population bad;
    Individual ind;
    ind.id = 1;
    Rng rng(1);
    ind.code.push_back(lib.randomInstance(rng)); // wrong size (1 vs 12)
    bad.individuals.push_back(ind);
    EXPECT_THROW(engine.setSeedPopulation(bad), FatalError);
    EXPECT_THROW(engine.setSeedPopulation(Population{}), FatalError);
}

TEST(Engine, CallbackSeesEveryGeneration)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::Mem);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.generations = 6;

    core::Engine engine(params, lib, meas, fit);
    int called = 0;
    engine.setGenerationCallback(
        [&called](const Population& pop, const GenerationRecord& rec) {
            EXPECT_EQ(pop.generation, rec.generation);
            EXPECT_EQ(rec.generation, called);
            ++called;
        });
    engine.run();
    EXPECT_EQ(called, 6);
}

TEST(Engine, StagnationEarlyStopEndsSaturatedSearch)
{
    // A constant fitness saturates immediately: with a stagnation
    // limit the run ends after limit+1 generations, not the full
    // budget.
    class ConstantMeasurement : public measure::Measurement
    {
      public:
        measure::MeasurementResult
        measure(const std::vector<isa::InstructionInstance>&) override
        {
            return {{1.0}};
        }
        std::vector<std::string>
        valueNames() const override
        {
            return {"c"};
        }
        std::string name() const override { return "Constant"; }
    };

    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ConstantMeasurement meas;
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.generations = 50;
    params.stagnationLimit = 4;

    core::Engine engine(params, lib, meas, fit);
    engine.run();
    EXPECT_LE(engine.history().size(), 6u);
    EXPECT_GE(engine.history().size(), 5u);

    // Without the limit the full budget is spent.
    ConstantMeasurement meas2;
    core::Engine full(smallParams(), lib, meas2, fit);
    full.run();
    EXPECT_EQ(full.history().size(),
              static_cast<std::size_t>(smallParams().generations));
}

TEST(Engine, StagnationLimitValidated)
{
    GaParams params = smallParams();
    params.stagnationLimit = -1;
    EXPECT_THROW(params.validate(), FatalError);
}

TEST(Engine, RouletteSelectionAlsoConverges)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::Mem);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.selection = SelectionMethod::Roulette;
    params.generations = 20;

    core::Engine engine(params, lib, meas, fit);
    engine.run();
    EXPECT_GT(engine.history().back().bestFitness,
              engine.history().front().bestFitness);
}

TEST(Engine, UniformCrossoverAlsoConverges)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    ClassCountMeasurement meas(lib, isa::InstrClass::FloatSimd);
    fitness::DefaultFitness fit;
    GaParams params = smallParams();
    params.crossover = CrossoverOperator::Uniform;
    params.generations = 20;

    core::Engine engine(params, lib, meas, fit);
    engine.run();
    EXPECT_GT(engine.history().back().bestFitness,
              engine.history().front().bestFitness);
}

TEST(Individual, BreakdownAndUniqueCount)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    Individual ind;
    ind.code.push_back(lib.makeInstance("ADD", {"x4", "x5", "x6"}));
    ind.code.push_back(lib.makeInstance("ADD", {"x7", "x8", "x9"}));
    ind.code.push_back(lib.makeInstance("FMUL", {"v0", "v1", "v2"}));
    ind.code.push_back(lib.makeInstance("LDR", {"x2", "x10", "8"}));
    ind.code.push_back(lib.makeInstance("BNEXT", {}));

    EXPECT_EQ(uniqueInstructionCount(ind), 4u);
    const auto breakdown = classBreakdown(lib, ind);
    EXPECT_EQ(breakdown[static_cast<std::size_t>(
                  isa::InstrClass::ShortInt)],
              2);
    EXPECT_EQ(breakdown[static_cast<std::size_t>(
                  isa::InstrClass::FloatSimd)],
              1);
    EXPECT_EQ(breakdown[static_cast<std::size_t>(isa::InstrClass::Mem)],
              1);
    EXPECT_EQ(breakdown[static_cast<std::size_t>(
                  isa::InstrClass::Branch)],
              1);
    const std::string text = breakdownToString(breakdown);
    EXPECT_NE(text.find("ShortInt=2"), std::string::npos);
    EXPECT_NE(text.find("Branch=1"), std::string::npos);

    const auto lines = renderLines(lib, ind);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0], "ADD x4, x5, x6");
}

} // namespace
} // namespace core
} // namespace gest
