/**
 * @file
 * Unit tests for the XML parser substrate.
 */

#include <gtest/gtest.h>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "xml/xml.hh"

namespace gest {
namespace xml {
namespace {

TEST(Xml, ParsesSimpleElement)
{
    const Document doc = parse("<root/>");
    EXPECT_EQ(doc.root().name(), "root");
    EXPECT_TRUE(doc.root().children().empty());
    EXPECT_TRUE(doc.root().text().empty());
}

TEST(Xml, ParsesAttributesInOrder)
{
    const Document doc =
        parse("<op id=\"mem\" values=\"x2 x3\" type='register'/>");
    const Element& root = doc.root();
    ASSERT_EQ(root.attributes().size(), 3u);
    EXPECT_EQ(root.attributes()[0].name, "id");
    EXPECT_EQ(root.attr("values"), "x2 x3");
    EXPECT_EQ(root.attr("type"), "register");
    EXPECT_TRUE(root.hasAttr("id"));
    EXPECT_FALSE(root.hasAttr("nope"));
    EXPECT_EQ(root.attrOr("nope", "dflt"), "dflt");
}

TEST(Xml, MissingAttributeIsFatal)
{
    const Document doc = parse("<a x=\"1\"/>");
    EXPECT_THROW(doc.root().attr("y"), FatalError);
}

TEST(Xml, ParsesNestedChildren)
{
    const Document doc = parse(
        "<cfg><ga size=\"50\"/><operands><operand id=\"a\"/>"
        "<operand id=\"b\"/></operands></cfg>");
    const Element& root = doc.root();
    ASSERT_EQ(root.children().size(), 2u);
    const Element* operands = root.child("operands");
    ASSERT_NE(operands, nullptr);
    EXPECT_EQ(operands->childrenNamed("operand").size(), 2u);
    EXPECT_EQ(operands->childrenNamed("operand")[1]->attr("id"), "b");
    EXPECT_EQ(root.child("missing"), nullptr);
    EXPECT_THROW(root.requiredChild("missing"), FatalError);
    EXPECT_EQ(root.requiredChild("ga").attr("size"), "50");
}

TEST(Xml, ParsesTextContent)
{
    const Document doc = parse("<t>  hello world  </t>");
    EXPECT_EQ(doc.root().text(), "hello world");
}

TEST(Xml, SkipsCommentsAndProlog)
{
    const Document doc = parse(
        "<?xml version=\"1.0\"?>\n<!-- header -->\n"
        "<root><!-- inner --><child/><!-- tail --></root>\n"
        "<!-- trailer -->");
    EXPECT_EQ(doc.root().children().size(), 1u);
}

TEST(Xml, ParsesEntities)
{
    const Document doc =
        parse("<t a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;</t>");
    EXPECT_EQ(doc.root().attr("a"), "<&>");
    EXPECT_EQ(doc.root().text(), "\"x' A");
}

TEST(Xml, ParsesCdata)
{
    const Document doc = parse("<t><![CDATA[a < b && c]]></t>");
    EXPECT_EQ(doc.root().text(), "a < b && c");
}

TEST(Xml, SelfClosingAndExplicitCloseEquivalent)
{
    EXPECT_EQ(parse("<a></a>").root().name(), "a");
    EXPECT_EQ(parse("<a/>").root().name(), "a");
}

TEST(Xml, RejectsMismatchedTags)
{
    EXPECT_THROW(parse("<a><b></a></b>"), FatalError);
    EXPECT_THROW(parse("<a>"), FatalError);
    EXPECT_THROW(parse("<a attr=novalue/>"), FatalError);
    EXPECT_THROW(parse("<a x=\"1\" x=\"2\"/>"), FatalError);
    EXPECT_THROW(parse(""), FatalError);
    EXPECT_THROW(parse("<a/><b/>"), FatalError);
    EXPECT_THROW(parse("<a>&unknown;</a>"), FatalError);
    EXPECT_THROW(parse("<a><!-- unterminated"), FatalError);
}

TEST(Xml, ErrorMessagesCarryPosition)
{
    try {
        parse("<a>\n  <b>\n</a>", "test.xml");
        FAIL() << "expected parse failure";
    } catch (const FatalError& err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("test.xml"), std::string::npos);
        EXPECT_NE(msg.find("line 3"), std::string::npos);
    }
}

TEST(Xml, LineNumbersOnElements)
{
    const Document doc = parse("<a>\n  <b/>\n  <c/>\n</a>");
    EXPECT_EQ(doc.root().line(), 1);
    EXPECT_EQ(doc.root().child("b")->line(), 2);
    EXPECT_EQ(doc.root().child("c")->line(), 3);
}

TEST(Xml, EscapeCoversPredefinedEntities)
{
    EXPECT_EQ(escape("<a & 'b'>\""), "&lt;a &amp; &apos;b&apos;&gt;&quot;");
    EXPECT_EQ(escape("plain"), "plain");
}

TEST(Xml, ToStringRoundTrips)
{
    const std::string text =
        "<cfg version=\"1\"><ga size=\"50\"/><note>hi &amp; bye</note>"
        "</cfg>";
    const Document doc = parse(text);
    const Document again = parse(doc.root().toString());
    EXPECT_EQ(again.root().attr("version"), "1");
    EXPECT_EQ(again.root().child("ga")->attr("size"), "50");
    EXPECT_EQ(again.root().child("note")->text(), "hi & bye");
}

TEST(Xml, ParseFileWorks)
{
    const std::string dir = makeTempDir("gest-xml");
    writeFile(dir + "/c.xml", "<root><x v=\"3\"/></root>");
    const Document doc = parseFile(dir + "/c.xml");
    EXPECT_EQ(doc.root().child("x")->attr("v"), "3");
    removeAll(dir);
}

TEST(Xml, PaperFigure4Example)
{
    // The operand/instruction definition style of Figure 4.
    const Document doc = parse(
        "<defs>"
        "  <operand id=\"mem_result\" values=\"x2 x3 x4\""
        "           type=\"register\"/>"
        "  <operand id=\"immediate_value\" min=\"0\" max=\"256\""
        "           stride=\"8\" type=\"immediate\"/>"
        "  <instruction name=\"LDR\" num_of_operands=\"3\""
        "      operand1=\"mem_result\""
        "      operand2=\"mem_address_register\""
        "      operand3=\"immediate_value\""
        "      format=\"LDR op1,[op2,#op3]\" type=\"mem\"/>"
        "</defs>");
    const Element* inst = doc.root().child("instruction");
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->attr("name"), "LDR");
    EXPECT_EQ(inst->attr("format"), "LDR op1,[op2,#op3]");
    EXPECT_EQ(doc.root().childrenNamed("operand").size(), 2u);
}

} // namespace
} // namespace xml
} // namespace gest
