/**
 * @file
 * Tests for the observability layer: the stats registry, the scoped
 * timer, JSON escaping, the Chrome trace writer, the run-report
 * analyzer and the thread-pool worker ids that trace events rely on.
 */

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "output/report.hh"
#include "output/trace_writer.hh"
#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"
#include "util/thread_pool.hh"

namespace {

using namespace gest;

/** Stats recording is a process-wide flag: save and restore it. */
class StatsTest : public ::testing::Test
{
  protected:
    void SetUp() override { _was = stats::enabled(); }
    void TearDown() override { stats::setEnabled(_was); }

  private:
    bool _was = false;
};

TEST_F(StatsTest, CounterGatedByEnabledFlag)
{
    stats::Counter& ctr = stats::StatsRegistry::instance().counter(
        "test.counter", "a test counter");
    stats::StatsRegistry::instance().resetValues();

    stats::setEnabled(false);
    ctr.inc();
    ctr.inc(10);
    EXPECT_EQ(ctr.value(), 0u);

    stats::setEnabled(true);
    ctr.inc();
    ctr.inc(10);
    EXPECT_EQ(ctr.value(), 11u);
}

TEST_F(StatsTest, RegistryReturnsSameObjectForSameName)
{
    stats::Counter& a =
        stats::StatsRegistry::instance().counter("test.same");
    stats::Counter& b =
        stats::StatsRegistry::instance().counter("test.same");
    EXPECT_EQ(&a, &b);

    stats::Histogram& h1 = stats::StatsRegistry::instance().histogram(
        "test.same_hist", "", 0.0, 10.0, 5);
    stats::Histogram& h2 = stats::StatsRegistry::instance().histogram(
        "test.same_hist", "", 0.0, 99.0, 7);
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.numBuckets(), 5u); // first layout wins
}

TEST_F(StatsTest, GaugeSetAndAdd)
{
    stats::Gauge& g =
        stats::StatsRegistry::instance().gauge("test.gauge");
    stats::StatsRegistry::instance().resetValues();
    stats::setEnabled(true);
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    stats::setEnabled(false);
    g.set(99.0);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST_F(StatsTest, HistogramBucketsAndExtrema)
{
    stats::Histogram& h = stats::StatsRegistry::instance().histogram(
        "test.hist", "test histogram", 0.0, 10.0, 10);
    stats::StatsRegistry::instance().resetValues();
    stats::setEnabled(true);

    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.minSeen(), 0.0); // empty: defined as zero
    EXPECT_DOUBLE_EQ(h.maxSeen(), 0.0);

    h.sample(0.5);  // bucket 0
    h.sample(9.5);  // bucket 9
    h.sample(-3.0); // underflow
    h.sample(10.0); // hi is exclusive: overflow
    h.sample(42.0); // overflow

    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 59.0);
    EXPECT_DOUBLE_EQ(h.mean(), 11.8);
    EXPECT_DOUBLE_EQ(h.minSeen(), -3.0);
    EXPECT_DOUBLE_EQ(h.maxSeen(), 42.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(3), 3.0);

    stats::StatsRegistry::instance().resetValues();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(9), 0u);
    EXPECT_DOUBLE_EQ(h.minSeen(), 0.0);
}

TEST_F(StatsTest, ScopedTimerOnlyRunsWhenEnabled)
{
    stats::Histogram& h = stats::StatsRegistry::instance().histogram(
        "test.timer", "", 0.0, 1e9, 4);
    stats::StatsRegistry::instance().resetValues();

    stats::setEnabled(false);
    {
        stats::ScopedTimer timer(&h);
        EXPECT_DOUBLE_EQ(timer.stop(), 0.0);
    }
    EXPECT_EQ(h.count(), 0u);

    stats::setEnabled(true);
    {
        stats::ScopedTimer timer(&h);
        EXPECT_GE(timer.stop(), 0.0);
        EXPECT_DOUBLE_EQ(timer.stop(), 0.0); // second stop is a no-op
    }
    {
        stats::ScopedTimer timer(&h); // records at scope exit
    }
    EXPECT_EQ(h.count(), 2u);

    stats::ScopedTimer null_timer(nullptr); // never samples
    EXPECT_DOUBLE_EQ(null_timer.stop(), 0.0);
}

TEST_F(StatsTest, ConcurrentRecordingIsConsistent)
{
    stats::Counter& ctr =
        stats::StatsRegistry::instance().counter("test.mt_counter");
    stats::Histogram& h = stats::StatsRegistry::instance().histogram(
        "test.mt_hist", "", 0.0, 8.0, 8);
    stats::StatsRegistry::instance().resetValues();
    stats::setEnabled(true);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                ctr.inc();
                h.sample(static_cast<double>(t % 8) + 0.5);
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    EXPECT_EQ(ctr.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t in_buckets = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        in_buckets += h.bucketCount(i);
    EXPECT_EQ(in_buckets, h.count());
}

TEST_F(StatsTest, DumpsCarryNamesValuesAndEscaping)
{
    stats::StatsRegistry& reg = stats::StatsRegistry::instance();
    stats::Counter& ctr =
        reg.counter("test.dump_counter", "desc with \"quotes\"");
    reg.resetValues();
    stats::setEnabled(true);
    ctr.inc(7);

    const std::string text = reg.textDump();
    EXPECT_NE(text.find("test.dump_counter"), std::string::npos);
    EXPECT_NE(text.find("desc with \"quotes\""), std::string::npos);

    const std::string json = reg.jsonDump();
    EXPECT_NE(json.find("\"test.dump_counter\": 7"), std::string::npos);
    // The registry names() list is sorted and contains everything.
    const std::vector<std::string> names = reg.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_NE(std::find(names.begin(), names.end(),
                        std::string("test.dump_counter")),
              names.end());
}

// ---------------------------------------------------------------- JSON

/** Minimal unescaper for round-trip checks of jsonEscape output. */
std::string
jsonUnescape(const std::string& s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'f': out += '\f'; break;
          case 'b': out += '\b'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'u': {
              const int code =
                  std::stoi(s.substr(i + 1, 4), nullptr, 16);
              out += static_cast<char>(code);
              i += 4;
              break;
          }
          default: out += s[i];
        }
    }
    return out;
}

TEST(JsonEscape, RoundTripsQuotesNewlinesAndControlChars)
{
    const std::string nasty =
        "he said \"hi\"\nback\\slash\ttab\rret\fform\bbell\x01" "end";
    const std::string escaped = jsonEscape(nasty);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find('\r'), std::string::npos);
    EXPECT_NE(escaped.find("\\\""), std::string::npos);
    EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
    EXPECT_EQ(jsonUnescape(escaped), nasty);
}

TEST(JsonEscape, PassesUtf8Through)
{
    const std::string utf8 = "grüße 測試 → done";
    EXPECT_EQ(jsonEscape(utf8), utf8);
    EXPECT_EQ(jsonUnescape(jsonEscape(utf8)), utf8);
}

// --------------------------------------------------------- TraceWriter

TEST(TraceWriter, EmitsValidEventsAndEscapesNames)
{
    const std::string dir = makeTempDir("gest-trace");
    output::TraceWriter trace(dir + "/trace.json");
    trace.setThreadName(0, "coordinator");
    trace.setThreadName(1, "worker \"zero\"\n");
    const double now = stats::nowUs();
    trace.completeEvent("phase \"one\"", "test", 0, now, 12.5,
                        {{"generation", 3.0}});
    trace.instantEvent("marker", "test", 1);
    // process_name metadata + 2 thread names + 1 complete + 1 instant.
    EXPECT_EQ(trace.eventCount(), 5u);

    const std::string json = trace.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("phase \\\"one\\\""), std::string::npos);
    EXPECT_NE(json.find("worker \\\"zero\\\"\\n"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"generation\":3"), std::string::npos);
    // No raw control characters may survive into the file.
    for (const char c : json)
        EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20);

    trace.finish();
    const std::string on_disk = readFile(dir + "/trace.json");
    EXPECT_EQ(on_disk, json);
    trace.finish(); // idempotent
}

TEST(TraceWriter, ClampsEventsBeforeItsEpochToZero)
{
    const std::string dir = makeTempDir("gest-trace");
    output::TraceWriter trace(dir + "/trace.json");
    trace.completeEvent("early", "test", 0, -1e12, 5.0);
    EXPECT_NE(trace.toJson().find("\"ts\":0.000"), std::string::npos);
}

// -------------------------------------------------------------- report

TEST(Report, AnalyzesAV2HistoryFile)
{
    const std::string dir = makeTempDir("gest-report");
    writeFile(dir + "/history.csv",
              "# gest-history v2\n"
              "generation,best_fitness,average_fitness,best_id,"
              "unique_instructions,diversity,cache_hits,cache_misses,"
              "selection_ms,crossover_ms,mutation_ms,evaluation_ms,"
              "io_ms\n"
              "0,1.5,1.0,3,10,0.9,0,20,0.1,0.2,0.3,40.0,2.0\n"
              "1,2.5,2.0,7,12,0.8,15,5,0.1,0.2,0.3,10.0,2.0\n");
    const output::RunReport report = output::analyzeRun(dir);
    EXPECT_EQ(report.historyVersion, 2);
    EXPECT_TRUE(report.hasTimings);
    ASSERT_EQ(report.rows.size(), 2u);
    EXPECT_DOUBLE_EQ(report.firstBest, 1.5);
    EXPECT_DOUBLE_EQ(report.bestFitness, 2.5);
    EXPECT_EQ(report.bestGeneration, 1);
    EXPECT_EQ(report.totalMeasured, 25u);
    EXPECT_EQ(report.totalCacheHits, 15u);
    EXPECT_DOUBLE_EQ(report.evaluationMs, 50.0);
    EXPECT_NEAR(report.cacheHitRate(), 15.0 / 40.0, 1e-12);
    EXPECT_NEAR(report.evaluationsPerSecond(), 25.0 / 0.05, 1e-9);

    const std::string text = output::formatReport(report);
    EXPECT_NE(text.find("phase breakdown"), std::string::npos);
    EXPECT_NE(text.find("evaluation"), std::string::npos);
    EXPECT_NE(text.find("hit rate"), std::string::npos);
    EXPECT_NE(text.find("evaluations/sec"), std::string::npos);
}

TEST(Report, ReadsV1FilesWithoutTimingColumns)
{
    const std::string dir = makeTempDir("gest-report");
    writeFile(dir + "/history.csv",
              "generation,best_fitness,average_fitness,best_id,"
              "unique_instructions,diversity,cache_hits,cache_misses\n"
              "0,1.5,1.0,3,10,0.9,2,18\n");
    const output::RunReport report = output::analyzeRun(dir);
    EXPECT_EQ(report.historyVersion, 1);
    EXPECT_FALSE(report.hasTimings);
    EXPECT_EQ(report.totalMeasured, 18u);
    EXPECT_DOUBLE_EQ(report.evaluationsPerSecond(), 0.0);
    const std::string text = output::formatReport(report);
    EXPECT_NE(text.find("predates"), std::string::npos);
}

TEST(Report, FatalsWithActionableMessages)
{
    try {
        output::analyzeRun("/nonexistent/run/dir");
        FAIL() << "expected fatal()";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find("does not exist"),
                  std::string::npos);
    }

    const std::string empty = makeTempDir("gest-report");
    try {
        output::analyzeRun(empty);
        FAIL() << "expected fatal()";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find("history.csv"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("run directory"),
                  std::string::npos);
    }

    const std::string truncated = makeTempDir("gest-report");
    writeFile(truncated + "/history.csv",
              "# gest-history v2\n"
              "generation,best_fitness,average_fitness,best_id,"
              "unique_instructions,diversity,cache_hits,cache_misses,"
              "selection_ms,crossover_ms,mutation_ms,evaluation_ms,"
              "io_ms\n"
              "0,1.5,1.0,3,10,0.9,0,20,0.1,0.2,0.3,40.0,2.0\n"
              "1,2.5,2.0\n");
    try {
        output::analyzeRun(truncated);
        FAIL() << "expected fatal()";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find("truncated"),
                  std::string::npos);
    }

    const std::string headless = makeTempDir("gest-report");
    writeFile(headless + "/history.csv", "");
    EXPECT_THROW(output::analyzeRun(headless), FatalError);
}

TEST(Report, HandlesDegenerateHistoriesWithoutDivisionByZero)
{
    // Single row, zero duration everywhere, zero first-gen best, no
    // cache traffic: every ratio in the report must degrade to 0 or
    // "n/a", never inf/nan.
    const std::string dir = makeTempDir("gest-report");
    writeFile(dir + "/history.csv",
              "# gest-history v2\n"
              "generation,best_fitness,average_fitness,best_id,"
              "unique_instructions,diversity,cache_hits,cache_misses,"
              "selection_ms,crossover_ms,mutation_ms,evaluation_ms,"
              "io_ms\n"
              "0,0.0,0.0,1,0,0.0,0,0,0,0,0,0,0\n");
    const output::RunReport report = output::analyzeRun(dir);
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(report.cacheHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(report.evaluationsPerSecond(), 0.0);

    const std::string text = output::formatReport(report);
    EXPECT_NE(text.find("throughput: n/a"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    // Zero first-gen best: the improvement percentage is omitted
    // rather than divided by zero.
    EXPECT_EQ(text.find("(+"), std::string::npos);

    const std::string json = output::formatReportJson(report);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_NE(json.find("\"evaluations_per_second\": 0"),
              std::string::npos);
    EXPECT_NE(json.find("\"analytics\": null"), std::string::npos);
}

TEST(Report, JsonCarriesSummaryAndAnalytics)
{
    const std::string dir = makeTempDir("gest-report");
    writeFile(dir + "/history.csv",
              "# gest-history v2\n"
              "generation,best_fitness,average_fitness,best_id,"
              "unique_instructions,diversity,cache_hits,cache_misses,"
              "selection_ms,crossover_ms,mutation_ms,evaluation_ms,"
              "io_ms\n"
              "0,1.5,1.0,3,10,0.9,0,20,0.1,0.2,0.3,40.0,2.0\n"
              "1,2.5,2.0,7,12,0.8,15,5,0.1,0.2,0.3,10.0,2.0\n");
    writeFile(dir + "/analytics.csv",
              "# gest-analytics v1\n"
              "generation,mix_short_int,mix_long_int,mix_float_simd,"
              "mix_mem,mix_branch,mix_nop,gene_entropy_bits,"
              "pairwise_diversity,fitness_min,fitness_q1,"
              "fitness_median,fitness_q3,fitness_max,"
              "crossover_children,crossover_improved,mutation_children,"
              "mutation_improved,elite_copies\n"
              "0,4,3,2,1,0,0,2.0,0.9,0.5,0.6,0.7,0.8,1.5,0,0,0,0,0\n"
              "1,5,2,2,1,0,0,1.5,0.75,0.6,0.7,0.8,0.9,2.5,3,1,4,2,1\n");
    const output::RunReport report = output::analyzeRun(dir);
    EXPECT_TRUE(report.hasAnalytics);
    EXPECT_DOUBLE_EQ(report.finalGeneEntropyBits, 1.5);
    EXPECT_DOUBLE_EQ(report.finalPairwiseDiversity, 0.75);
    EXPECT_EQ(report.crossoverChildren, 3u);
    EXPECT_EQ(report.mutationImproved, 2u);
    EXPECT_EQ(report.eliteCopies, 1u);

    const std::string text = output::formatReport(report);
    EXPECT_NE(text.find("evolution analytics"), std::string::npos);
    EXPECT_NE(text.find("crossover"), std::string::npos);

    const std::string json = output::formatReportJson(report);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"generations\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"best_fitness\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"phase_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"crossover_children\": 3"),
              std::string::npos);
    EXPECT_NE(json.find("\"mutation_improved\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"run_dir\": \"" + dir + "\""),
              std::string::npos);
}

// ------------------------------------------------------------ explain

TEST(Explain, ReconstructsAncestryAndFlagsPathologies)
{
    const std::string dir = makeTempDir("gest-explain");
    writeFile(dir + "/lineage.csv",
              "# gest-lineage v1\n"
              "generation,id,op,parent1,parent2,mutated_genes,"
              "mutated_indices,fitness\n"
              "0,1,seed,0,0,0,,1.0\n"
              "0,2,seed,0,0,0,,2.0\n"
              "1,3,crossover,1,2,0,,1.5\n"
              "2,4,mutation,3,2,2,0;5,3.0\n");
    // Twelve generations of flat best fitness, collapsed diversity and
    // fruitless mutation: all three pathology detectors should fire.
    std::string analytics =
        "# gest-analytics v1\n"
        "generation,mix_short_int,mix_long_int,mix_float_simd,"
        "mix_mem,mix_branch,mix_nop,gene_entropy_bits,"
        "pairwise_diversity,fitness_min,fitness_q1,fitness_median,"
        "fitness_q3,fitness_max,crossover_children,crossover_improved,"
        "mutation_children,mutation_improved,elite_copies\n";
    for (int g = 0; g < 12; ++g)
        analytics += std::to_string(g) +
                     ",6,0,0,0,0,0,0.0,0.01,3.0,3.0,3.0,3.0,3.0,"
                     "2,0,5,0,1\n";
    writeFile(dir + "/analytics.csv", analytics);

    const output::ExplainReport report = output::analyzeExplain(dir);
    ASSERT_EQ(report.events.size(), 4u);
    EXPECT_TRUE(report.ancestry.reachesGeneration0);
    EXPECT_EQ(report.ancestry.ancestorCount, 4u);
    EXPECT_GE(report.pathologies.size(), 3u);

    const std::string text = output::formatExplain(report);
    EXPECT_NE(text.find("champion: id 4"), std::string::npos);
    EXPECT_NE(text.find("born generation 2 by mutation"),
              std::string::npos);
    EXPECT_NE(text.find("primary descent line"), std::string::npos);
    EXPECT_NE(text.find("instruction-mix trajectory"),
              std::string::npos);
    EXPECT_NE(text.find("diversity collapse"), std::string::npos);
    EXPECT_NE(text.find("mutation starvation"), std::string::npos);
    EXPECT_NE(text.find("elite stagnation"), std::string::npos);
    // Actionable knobs are named, not just symptoms.
    EXPECT_NE(text.find("mutation_rate"), std::string::npos);
    EXPECT_NE(text.find("stagnation_limit"), std::string::npos);
}

TEST(Explain, HealthyRunReportsNoPathologies)
{
    const std::string dir = makeTempDir("gest-explain");
    writeFile(dir + "/lineage.csv",
              "# gest-lineage v1\n"
              "generation,id,op,parent1,parent2,mutated_genes,"
              "mutated_indices,fitness\n"
              "0,1,seed,0,0,0,,1.0\n"
              "1,2,mutation,1,1,1,3,2.0\n");
    writeFile(dir + "/analytics.csv",
              "# gest-analytics v1\n"
              "generation,mix_short_int,mix_long_int,mix_float_simd,"
              "mix_mem,mix_branch,mix_nop,gene_entropy_bits,"
              "pairwise_diversity,fitness_min,fitness_q1,"
              "fitness_median,fitness_q3,fitness_max,"
              "crossover_children,crossover_improved,mutation_children,"
              "mutation_improved,elite_copies\n"
              "0,3,3,0,0,0,0,2.0,0.8,0.5,0.6,0.7,0.8,1.0,0,0,0,0,0\n"
              "1,3,2,1,0,0,0,1.8,0.7,0.6,0.8,1.0,1.5,2.0,2,1,3,1,1\n");
    const output::ExplainReport report = output::analyzeExplain(dir);
    EXPECT_TRUE(report.pathologies.empty());
    const std::string text = output::formatExplain(report);
    EXPECT_NE(text.find("none detected"), std::string::npos);
}

TEST(Explain, MissingLedgerFatalsActionably)
{
    const std::string dir = makeTempDir("gest-explain");
    try {
        output::analyzeExplain(dir);
        FAIL() << "expected fatal()";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find("lineage.csv"),
                  std::string::npos);
    }
    EXPECT_THROW(output::analyzeExplain("/nonexistent/run"),
                 FatalError);
}

TEST(Explain, WorksWithoutAnalyticsTrajectory)
{
    // A ledger alone (analytics.csv missing) still explains ancestry.
    const std::string dir = makeTempDir("gest-explain");
    writeFile(dir + "/lineage.csv",
              "# gest-lineage v1\n"
              "generation,id,op,parent1,parent2,mutated_genes,"
              "mutated_indices,fitness\n"
              "0,1,seed,0,0,0,,1.0\n");
    const output::ExplainReport report = output::analyzeExplain(dir);
    EXPECT_TRUE(report.analytics.empty());
    EXPECT_TRUE(report.pathologies.empty());
    const std::string text = output::formatExplain(report);
    EXPECT_NE(text.find("champion: id 1"), std::string::npos);
    EXPECT_NE(text.find("instruction-mix trajectory: n/a"),
              std::string::npos);
}

// ---------------------------------------------------- ThreadPool ids

TEST(ThreadPoolIds, DenseStableIdsAndNames)
{
    EXPECT_EQ(util::ThreadPool::currentWorkerId(), -1);
    EXPECT_EQ(util::ThreadPool::workerName(-1), "coordinator");
    EXPECT_EQ(util::ThreadPool::workerName(2), "worker-2");

    constexpr int kWorkers = 4;
    util::ThreadPool pool(kWorkers);

    // Exactly one task per worker: every task blocks until all kWorkers
    // tasks have started, so no worker can take a second index. The ids
    // observed must then be each worker's own id — dense in [0, N).
    auto one_round = [&pool] {
        std::vector<int> seen(kWorkers, -2);
        std::atomic<int> started{0};
        pool.parallelFor(kWorkers, [&](std::size_t index, int worker) {
            seen[index] = util::ThreadPool::currentWorkerId();
            EXPECT_EQ(seen[index], worker);
            started.fetch_add(1);
            while (started.load() < kWorkers)
                std::this_thread::yield();
        });
        return std::set<int>(seen.begin(), seen.end());
    };

    const std::set<int> first = one_round();
    EXPECT_EQ(first, (std::set<int>{0, 1, 2, 3}));
    // Stability: the same thread keeps its id across parallelFor calls.
    const std::set<int> second = one_round();
    EXPECT_EQ(second, first);
}

} // namespace
