/**
 * @file
 * Unit tests for the CPU simulator substrate: cache, decode, timing.
 */

#include <gtest/gtest.h>

#include "arch/cache.hh"
#include "arch/microop.hh"
#include "arch/simulator.hh"
#include "isa/standard_libs.hh"
#include "util/logging.hh"

namespace gest {
namespace arch {
namespace {

using isa::InstrClass;
using isa::Opcode;

// ---------------------------------------------------------------- Cache

TEST(Cache, HitsAfterFill)
{
    Cache cache({.sets = 4, .ways = 2, .lineBytes = 64, .hitLatency = 3,
                 .missLatency = 50});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x103f)); // same line
    EXPECT_FALSE(cache.access(0x1040)); // next line
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(Cache, LruEvictsOldest)
{
    // 1 set x 2 ways: three distinct conflicting lines.
    Cache cache({.sets = 1, .ways = 2, .lineBytes = 64, .hitLatency = 1,
                 .missLatency = 10});
    EXPECT_FALSE(cache.access(0x0000)); // A
    EXPECT_FALSE(cache.access(0x1000)); // B
    EXPECT_TRUE(cache.access(0x0000));  // A hits, B is now LRU
    EXPECT_FALSE(cache.access(0x2000)); // C evicts B
    EXPECT_TRUE(cache.access(0x0000));  // A still resident
    EXPECT_FALSE(cache.access(0x1000)); // B was evicted
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache({.sets = 8, .ways = 2, .lineBytes = 64, .hitLatency = 1,
                 .missLatency = 10});
    cache.access(0x40);
    EXPECT_TRUE(cache.access(0x40));
    cache.flush();
    EXPECT_FALSE(cache.access(0x40));
}

TEST(Cache, RejectsNonPowerOfTwoGeometry)
{
    EXPECT_THROW(Cache({.sets = 3, .ways = 2, .lineBytes = 64,
                        .hitLatency = 1, .missLatency = 10}),
                 FatalError);
    EXPECT_THROW(Cache({.sets = 4, .ways = 2, .lineBytes = 48,
                        .hitLatency = 1, .missLatency = 10}),
                 FatalError);
}

TEST(Cache, CapacityWorkingSetAlwaysHitsAfterWarmup)
{
    Cache cache({.sets = 64, .ways = 4, .lineBytes = 64, .hitLatency = 3,
                 .missLatency = 50});
    // 4 KiB working set in a 16 KiB cache.
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t addr = 0; addr < 4096; addr += 64)
            cache.access(addr);
    }
    EXPECT_EQ(cache.misses(), 64u); // only cold misses
}

// --------------------------------------------------------------- Decode

TEST(Decode, ThreeOperandArithmetic)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const MicroOp mo =
        decode(lib, lib.makeInstance("ADD", {"x4", "x5", "x6"}));
    EXPECT_EQ(mo.op, Opcode::Add);
    EXPECT_EQ(mo.numDst, 1);
    EXPECT_EQ(mo.dst[0], 4);
    EXPECT_EQ(mo.numSrc, 2);
    EXPECT_EQ(mo.src[0], 5);
    EXPECT_EQ(mo.src[1], 6);
    EXPECT_FALSE(mo.isLoad);
    EXPECT_FALSE(mo.isBranch);
}

TEST(Decode, FmaReadsItsDestination)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const MicroOp mo =
        decode(lib, lib.makeInstance("FMLA", {"v1", "v2", "v3"}));
    EXPECT_EQ(mo.numDst, 1);
    EXPECT_EQ(mo.dst[0], 32 + 1);
    EXPECT_EQ(mo.numSrc, 3);
    EXPECT_EQ(mo.src[2], 32 + 1); // accumulator source
}

TEST(Decode, LoadShape)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const MicroOp mo =
        decode(lib, lib.makeInstance("LDR", {"x2", "x10", "16"}));
    EXPECT_TRUE(mo.isLoad);
    EXPECT_EQ(mo.numDst, 1);
    EXPECT_EQ(mo.dst[0], 2);
    EXPECT_EQ(mo.numSrc, 1);
    EXPECT_EQ(mo.src[0], 10);
    EXPECT_EQ(mo.imm, 16);
    EXPECT_EQ(mo.accessBytes, 8);
}

TEST(Decode, VectorLoadIs16Bytes)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const MicroOp mo =
        decode(lib, lib.makeInstance("LDRQ", {"q3", "x10", "0"}));
    EXPECT_TRUE(mo.isLoad);
    EXPECT_EQ(mo.dst[0], 32 + 3);
    EXPECT_EQ(mo.accessBytes, 16);
}

TEST(Decode, StoreShape)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const MicroOp mo =
        decode(lib, lib.makeInstance("STR", {"x7", "x10", "32"}));
    EXPECT_TRUE(mo.isStore);
    EXPECT_EQ(mo.numDst, 0);
    EXPECT_EQ(mo.numSrc, 2);
    EXPECT_EQ(mo.src[0], 7);  // data
    EXPECT_EQ(mo.src[1], 10); // base
}

TEST(Decode, X86DestructiveForm)
{
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    const MicroOp mo =
        decode(lib, lib.makeInstance("ADD", {"rax", "rcx"}));
    EXPECT_EQ(mo.numDst, 1);
    EXPECT_EQ(mo.dst[0], 0);
    EXPECT_EQ(mo.numSrc, 2);
    EXPECT_EQ(mo.src[0], 1); // rcx
    EXPECT_EQ(mo.src[1], 0); // rax reads itself
}

TEST(Decode, BranchAndNopHaveNoRegisters)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const MicroOp br = decode(lib, lib.makeInstance("BNEXT", {}));
    EXPECT_TRUE(br.isBranch);
    EXPECT_EQ(br.numSrc, 0);
    EXPECT_EQ(br.numDst, 0);
    const MicroOp nop = decode(lib, lib.makeInstance("NOP", {}));
    EXPECT_EQ(nop.cls, InstrClass::Nop);
}

// ------------------------------------------------------------ Simulator

std::vector<MicroOp>
decodeNamed(const isa::InstructionLibrary& lib,
            const std::vector<std::pair<const char*,
                                        std::vector<std::string>>>& prog)
{
    std::vector<isa::InstructionInstance> code;
    for (const auto& [name, vals] : prog)
        code.push_back(lib.makeInstance(name, vals));
    return decodeBody(lib, code);
}

CpuConfig
simpleOoo()
{
    CpuConfig cfg = cortexA15Config();
    cfg.takenBranchBubble = 0;
    return cfg;
}

TEST(Simulator, IndependentAddsReachAluThroughput)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    // Six independent adds; 2 ALUs -> at most 2 int ops per cycle.
    const auto body = decodeNamed(lib, {
        {"ADD", {"x4", "x5", "x6"}},
        {"ADD", {"x5", "x6", "x7"}},
        {"ADD", {"x6", "x7", "x8"}},
        {"ADD", {"x7", "x8", "x9"}},
        {"ADD", {"x8", "x9", "x4"}},
        {"ADD", {"x9", "x4", "x5"}},
    });
    LoopSimulator sim(simpleOoo(), InitState{});
    const SimResult result = sim.run(body, 100, 4);
    // 7 ops/iteration (incl. loop branch); ALU caps at 2/cycle -> about
    // 3 cycles per iteration plus fetch limits.
    EXPECT_GT(result.ipc, 1.8);
    EXPECT_LE(result.ipc, 3.0);
}

TEST(Simulator, DependentChainSerializesOnLatency)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    // A strict MUL dependency chain: each MUL (latency 4) feeds the next.
    const auto body = decodeNamed(lib, {
        {"MUL", {"x4", "x4", "x5"}},
        {"MUL", {"x4", "x4", "x5"}},
        {"MUL", {"x4", "x4", "x5"}},
        {"MUL", {"x4", "x4", "x5"}},
    });
    LoopSimulator sim(simpleOoo(), InitState{});
    const SimResult result = sim.run(body, 100, 4);
    // 5 ops per iteration taking >= 16 cycles -> IPC well below 1.
    EXPECT_LT(result.ipc, 0.5);
}

TEST(Simulator, InOrderStallsBlockYoungerOps)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    // A dependent MUL pair followed by independent adds; the chain is
    // not loop-carried, so an OoO core overlaps iterations while an
    // in-order core serializes on the MUL latency every iteration.
    const std::vector<std::pair<const char*, std::vector<std::string>>>
        prog = {
            {"MUL", {"x4", "x5", "x6"}},
            {"MUL", {"x4", "x4", "x5"}},
            {"ADD", {"x6", "x5", "x9"}},
            {"ADD", {"x7", "x5", "x9"}},
            {"ADD", {"x8", "x5", "x9"}},
        };
    const auto body = decodeNamed(lib, prog);

    CpuConfig ooo = cortexA15Config();
    CpuConfig in_order = cortexA15Config();
    in_order.outOfOrder = false;
    in_order.windowSize = 4;

    const SimResult r_ooo =
        LoopSimulator(ooo, InitState{}).run(body, 200, 4);
    const SimResult r_io =
        LoopSimulator(in_order, InitState{}).run(body, 200, 4);
    EXPECT_GT(r_ooo.ipc, r_io.ipc * 1.2);
}

TEST(Simulator, UnpipelinedDividerLimitsThroughput)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto divs = decodeNamed(lib, {
        {"UDIV", {"x4", "x5", "x6"}},
        {"UDIV", {"x5", "x6", "x7"}},
    });
    const auto adds = decodeNamed(lib, {
        {"ADD", {"x4", "x5", "x6"}},
        {"ADD", {"x5", "x6", "x7"}},
    });
    LoopSimulator sim(simpleOoo(), InitState{});
    const SimResult r_div = sim.run(divs, 100, 4);
    const SimResult r_add = sim.run(adds, 100, 4);
    // Independent divides still serialize on the single unpipelined
    // divider (14 cycles each).
    EXPECT_LT(r_div.ipc, 0.3);
    EXPECT_GT(r_add.ipc, 1.0);
}

TEST(Simulator, LoopBranchCountsAsBranchClass)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = decodeNamed(lib, {{"ADD", {"x4", "x5", "x6"}}});
    LoopSimulator sim(simpleOoo(), InitState{});
    const SimResult result = sim.run(body, 50, 2);
    // 48 post-warmup iterations, one ADD plus one loop branch each; the
    // measurement boundary lands on a cycle edge, so allow one op of
    // slack on either side.
    EXPECT_NEAR(static_cast<double>(result.classCounts[
                    static_cast<std::size_t>(InstrClass::Branch)]),
                48.0, 1.0);
    EXPECT_NEAR(static_cast<double>(result.classCounts[
                    static_cast<std::size_t>(InstrClass::ShortInt)]),
                48.0, 1.0);
}

TEST(Simulator, TakenBranchBubbleCostsCycles)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    std::vector<std::pair<const char*, std::vector<std::string>>> prog;
    for (int i = 0; i < 8; ++i)
        prog.push_back({"BNEXT", {}});
    const auto body = decodeNamed(lib, prog);

    CpuConfig no_bubble = cortexA15Config();
    no_bubble.takenBranchBubble = 0;
    CpuConfig with_bubble = cortexA15Config();
    with_bubble.takenBranchBubble = 2;

    const SimResult fast =
        LoopSimulator(no_bubble, InitState{}).run(body, 100, 4);
    const SimResult slow =
        LoopSimulator(with_bubble, InitState{}).run(body, 100, 4);
    EXPECT_GT(fast.ipc, slow.ipc * 1.5);
}

TEST(Simulator, LoadsHitInCacheResidentBuffer)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = decodeNamed(lib, {
        {"LDR", {"x2", "x10", "0"}},
        {"LDR", {"x3", "x10", "64"}},
        {"LDR", {"x2", "x10", "128"}},
        {"LDR", {"x3", "x10", "192"}},
    });
    LoopSimulator sim(cortexA15Config(), InitState{});
    const SimResult result = sim.run(body, 200, 4);
    // The paper observes extremely high L1 hit rates for these loops.
    EXPECT_GT(result.l1HitRate(), 0.99);
}

TEST(Simulator, CheckerboardInitTogglesMoreThanZeros)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = decodeNamed(lib, {
        {"EOR", {"x4", "x5", "x6"}},
        {"ADD", {"x5", "x6", "x7"}},
        {"MUL", {"x6", "x7", "x8"}},
        {"FMUL", {"v0", "v1", "v2"}},
    });
    InitState checker;
    InitState zeros;
    zeros.intPattern = 0;
    zeros.vecPattern = 0;
    zeros.memPattern = 0;

    LoopSimulator sim_c(cortexA15Config(), checker);
    LoopSimulator sim_z(cortexA15Config(), zeros);
    const SimResult r_c = sim_c.run(body, 100, 4);
    const SimResult r_z = sim_z.run(body, 100, 4);
    // §III.B.2: register values have considerable effect; checkerboard
    // maximizes switching.
    EXPECT_GT(r_c.totalToggleBits, r_z.totalToggleBits * 5);
}

TEST(Simulator, MispredictPenaltySlowsConditionalBranches)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    std::vector<std::pair<const char*, std::vector<std::string>>> prog;
    for (int i = 0; i < 4; ++i) {
        prog.push_back({"BNE", {}});
        prog.push_back({"ADD", {"x4", "x5", "x6"}});
    }
    const auto body = decodeNamed(lib, prog);

    CpuConfig never = cortexA15Config();
    never.mispredictEveryN = 0;
    CpuConfig often = cortexA15Config();
    often.mispredictEveryN = 4;

    const SimResult r_never =
        LoopSimulator(never, InitState{}).run(body, 200, 4);
    const SimResult r_often =
        LoopSimulator(often, InitState{}).run(body, 200, 4);
    EXPECT_GT(r_never.ipc, r_often.ipc * 1.1);
    EXPECT_GT(r_often.mispredicts, 0u);
    EXPECT_EQ(r_never.mispredicts, 0u);
}

TEST(Simulator, TraceMatchesAggregateCounts)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = decodeNamed(lib, {
        {"ADD", {"x4", "x5", "x6"}},
        {"LDR", {"x2", "x10", "8"}},
        {"FMUL", {"v0", "v1", "v2"}},
    });
    LoopSimulator sim(cortexA15Config(), InitState{});
    const SimResult result = sim.run(body, 64, 4);

    std::uint64_t issued = 0;
    std::uint64_t toggles = 0;
    for (const CycleStats& stats : result.trace) {
        issued += static_cast<std::uint64_t>(stats.totalIssued());
        toggles += stats.toggleBits;
    }
    EXPECT_EQ(issued, result.instructions);
    EXPECT_EQ(toggles, result.totalToggleBits);
    EXPECT_EQ(result.trace.size(), result.cycles);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = decodeNamed(lib, {
        {"MUL", {"x4", "x5", "x6"}},
        {"LDR", {"x2", "x10", "16"}},
        {"FMLA", {"v0", "v1", "v2"}},
    });
    LoopSimulator sim(cortexA15Config(), InitState{});
    const SimResult a = sim.run(body, 100, 4);
    const SimResult b = sim.run(body, 100, 4);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalToggleBits, b.totalToggleBits);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(Simulator, RunForCyclesReachesTarget)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = decodeNamed(lib, {
        {"ADD", {"x4", "x5", "x6"}},
        {"ADD", {"x5", "x6", "x7"}},
    });
    LoopSimulator sim(cortexA15Config(), InitState{});
    const SimResult result = sim.runForCycles(body, 2048);
    EXPECT_GE(result.cycles, 2048u);
}

TEST(Simulator, EmptyBodyIsFatal)
{
    LoopSimulator sim(cortexA15Config(), InitState{});
    EXPECT_THROW(sim.run({}, 10), FatalError);
    EXPECT_THROW(sim.runForCycles({}, 100), FatalError);
}

TEST(Simulator, RejectsBadInitState)
{
    InitState bad;
    bad.bufferBytes = 1000; // not a power of two
    EXPECT_THROW(LoopSimulator(cortexA15Config(), bad), FatalError);
    InitState bad_reg;
    bad_reg.baseRegister = 40;
    EXPECT_THROW(LoopSimulator(cortexA15Config(), bad_reg), FatalError);
}

TEST(CpuConfig, PresetsValidate)
{
    for (const CpuConfig& cfg :
         {cortexA15Config(), cortexA7Config(), xgene2Config(),
          athlonX4Config()})
        EXPECT_NO_THROW(cfg.validate());
}

TEST(CpuConfig, ValidationCatchesNonsense)
{
    CpuConfig cfg = cortexA15Config();
    cfg.issueWidth = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = cortexA15Config();
    cfg.freqGHz = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = cortexA15Config();
    cfg.fuCount.fill(0);
    EXPECT_THROW(cfg.validate(), FatalError);
}

} // namespace
} // namespace arch
} // namespace gest
