/**
 * @file
 * Unit tests for the utility layer: strings, files, RNG, logging.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/strutil.hh"

namespace gest {
namespace {

TEST(Strutil, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim("hello"), "hello");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Strutil, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strutil, SplitWhitespaceDropsEmptyFields)
{
    const auto parts = splitWhitespace("  x2   x3\tx4\n");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "x2");
    EXPECT_EQ(parts[2], "x4");
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strutil, JoinInterleavesSeparator)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strutil, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("population_3.pop", "population_"));
    EXPECT_FALSE(startsWith("pop", "population_"));
    EXPECT_TRUE(endsWith("population_3.pop", ".pop"));
    EXPECT_FALSE(endsWith("x", ".pop"));
}

TEST(Strutil, ReplaceAllReplacesEveryOccurrence)
{
    EXPECT_EQ(replaceAll("op1 op1 op12", "op1", "x5"), "x5 x5 x52");
    EXPECT_EQ(replaceAll("abc", "z", "y"), "abc");
    EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
}

TEST(Strutil, ParseIntAcceptsDecimalAndHex)
{
    EXPECT_EQ(parseInt("42", "t"), 42);
    EXPECT_EQ(parseInt("-7", "t"), -7);
    EXPECT_EQ(parseInt("0x10", "t"), 16);
    EXPECT_EQ(parseInt("  5  ", "t"), 5);
}

TEST(Strutil, ParseIntRejectsGarbage)
{
    EXPECT_THROW(parseInt("", "t"), FatalError);
    EXPECT_THROW(parseInt("12abc", "t"), FatalError);
    EXPECT_THROW(parseInt("abc", "t"), FatalError);
}

TEST(Strutil, ParseDoubleAndBool)
{
    EXPECT_DOUBLE_EQ(parseDouble("0.02", "t"), 0.02);
    EXPECT_THROW(parseDouble("x", "t"), FatalError);
    EXPECT_TRUE(parseBool("TRUE", "t"));
    EXPECT_TRUE(parseBool("1", "t"));
    EXPECT_FALSE(parseBool("false", "t"));
    EXPECT_FALSE(parseBool("no", "t"));
    EXPECT_THROW(parseBool("maybe", "t"), FatalError);
}

TEST(Strutil, FormatFixedControlsPrecision)
{
    EXPECT_EQ(formatFixed(1.3, 2), "1.30");
    EXPECT_EQ(formatFixed(1.333, 2), "1.33");
    EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
}

TEST(Fileutil, WriteReadRoundTrip)
{
    const std::string dir = makeTempDir("gest-test");
    const std::string path = dir + "/sub/dir/file.txt";
    writeFile(path, "contents\nline2");
    EXPECT_TRUE(fileExists(path));
    EXPECT_EQ(readFile(path), "contents\nline2");
    removeAll(dir);
    EXPECT_FALSE(fileExists(path));
}

TEST(Fileutil, TryReadMissingFileReturnsFalse)
{
    std::string out;
    EXPECT_FALSE(tryReadFile("/nonexistent/gest/file", out));
    EXPECT_THROW(readFile("/nonexistent/gest/file"), FatalError);
}

TEST(Fileutil, ListFilesSorted)
{
    const std::string dir = makeTempDir("gest-test");
    writeFile(dir + "/b.txt", "b");
    writeFile(dir + "/a.txt", "a");
    writeFile(dir + "/c.txt", "c");
    const auto files = listFiles(dir);
    ASSERT_EQ(files.size(), 3u);
    EXPECT_EQ(files[0], "a.txt");
    EXPECT_EQ(files[2], "c.txt");
    removeAll(dir);
}

TEST(Logging, FatalThrowsCatchableError)
{
    try {
        fatal("bad ", 42, " thing");
        FAIL() << "fatal() returned";
    } catch (const FatalError& err) {
        EXPECT_STREQ(err.what(), "bad 42 thing");
    }
}

TEST(Logging, QuietFlagRoundTrip)
{
    const bool before = quiet();
    setQuiet(true);
    EXPECT_TRUE(quiet());
    setQuiet(false);
    EXPECT_FALSE(quiet());
    setQuiet(before);
}

TEST(Random, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Random, NextBelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Random, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Random, NextRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, NextDoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, NextBoolEdgeProbabilities)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Random, NextBoolApproximatesProbability)
{
    Rng rng(13);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool(0.02);
    EXPECT_NEAR(heads / 10000.0, 0.02, 0.01);
}

TEST(Random, PickReturnsElementOfVector)
{
    Rng rng(17);
    const std::vector<int> values{10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        const int v = rng.pick(values);
        EXPECT_TRUE(v == 10 || v == 20 || v == 30);
    }
}

TEST(Random, StateRoundTrip)
{
    Rng rng(21);
    rng.next();
    const auto state = rng.state();
    const std::uint64_t expected = rng.next();
    rng.setState(state);
    EXPECT_EQ(rng.next(), expected);
}

TEST(Random, SplitProducesIndependentStream)
{
    Rng rng(33);
    Rng child = rng.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += rng.next() == child.next();
    EXPECT_LT(same, 4);
}

} // namespace
} // namespace gest
