/**
 * @file
 * Unit tests for the output layer: run directories, file naming,
 * statistics post-processing.
 */

#include <gtest/gtest.h>

#include "isa/standard_libs.hh"
#include "output/run_writer.hh"
#include "output/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/strutil.hh"

namespace gest {
namespace output {
namespace {

core::Individual
makeIndividual(const isa::InstructionLibrary& lib, std::uint64_t id,
               std::vector<double> measurements, std::uint64_t seed)
{
    core::Individual ind;
    ind.id = id;
    ind.measurements = std::move(measurements);
    ind.fitness = ind.measurements.empty() ? 0.0 : ind.measurements[0];
    ind.evaluated = true;
    Rng rng(seed);
    for (int i = 0; i < 6; ++i)
        ind.code.push_back(lib.randomInstance(rng));
    return ind;
}

TEST(RunWriter, FileNameMatchesPaperConvention)
{
    // §III.D: individual 10 of population 1 with measurements 1.30 and
    // 1.33 is saved as 1_10_1.30_1.33.txt.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-out");
    RunWriter writer(dir, lib);
    const core::Individual ind =
        makeIndividual(lib, 10, {1.30, 1.33}, 1);
    EXPECT_EQ(writer.individualFileName(1, ind), "1_10_1.30_1.33.txt");
    removeAll(dir);
}

TEST(RunWriter, WritesIndividualSource)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-out");
    RunWriter writer(dir, lib);
    const core::Individual ind = makeIndividual(lib, 3, {2.5}, 2);
    writer.writeIndividual(0, ind);

    const std::string contents = readFile(dir + "/0_3_2.50.txt");
    // One line per instruction, rendered through the library.
    const auto lines = core::renderLines(lib, ind);
    for (const std::string& line : lines)
        EXPECT_NE(contents.find(line), std::string::npos);
    removeAll(dir);
}

TEST(RunWriter, RendersThroughTemplateWhenGiven)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const isa::AsmTemplate tmpl("prologue\n#loop_code\nepilogue\n");
    const std::string dir = makeTempDir("gest-out");
    RunWriter writer(dir, lib, &tmpl);
    const core::Individual ind = makeIndividual(lib, 1, {1.0}, 3);
    writer.writeIndividual(2, ind);
    const std::string contents = readFile(dir + "/2_1_1.00.txt");
    EXPECT_TRUE(startsWith(contents, "prologue\n"));
    EXPECT_NE(contents.find("epilogue"), std::string::npos);
    removeAll(dir);
}

TEST(RunWriter, WritesPopulationCheckpointAndMetadata)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-out");
    RunWriter writer(dir, lib);

    core::Population pop;
    pop.generation = 4;
    pop.individuals.push_back(makeIndividual(lib, 1, {1.5}, 4));
    pop.individuals.push_back(makeIndividual(lib, 2, {2.5}, 5));
    writer.writePopulation(pop);
    writer.writeRunMetadata("<gest_configuration/>", "tmpl #loop_code");

    EXPECT_TRUE(fileExists(dir + "/population_4.pop"));
    EXPECT_TRUE(fileExists(dir + "/4_1_1.50.txt"));
    EXPECT_TRUE(fileExists(dir + "/4_2_2.50.txt"));
    EXPECT_TRUE(fileExists(dir + "/run_configuration.xml"));
    EXPECT_TRUE(fileExists(dir + "/run_template.txt"));

    const core::Population loaded =
        core::loadPopulation(lib, dir + "/population_4.pop");
    EXPECT_EQ(loaded.generation, 4);
    EXPECT_EQ(loaded.individuals.size(), 2u);
    removeAll(dir);
}

TEST(Stats, SummarizeRunAcrossGenerations)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-out");
    RunWriter writer(dir, lib);

    for (int gen = 0; gen < 3; ++gen) {
        core::Population pop;
        pop.generation = gen;
        pop.individuals.push_back(makeIndividual(
            lib, static_cast<std::uint64_t>(gen * 10 + 1),
            {1.0 + gen}, static_cast<std::uint64_t>(gen + 1)));
        pop.individuals.push_back(makeIndividual(
            lib, static_cast<std::uint64_t>(gen * 10 + 2),
            {0.5 + gen}, static_cast<std::uint64_t>(gen + 50)));
        writer.writePopulation(pop);
    }

    const auto summaries = summarizeRun(lib, dir);
    ASSERT_EQ(summaries.size(), 3u);
    for (int gen = 0; gen < 3; ++gen) {
        EXPECT_EQ(summaries[static_cast<std::size_t>(gen)].generation,
                  gen);
        EXPECT_DOUBLE_EQ(
            summaries[static_cast<std::size_t>(gen)].bestFitness,
            1.0 + gen);
        EXPECT_EQ(summaries[static_cast<std::size_t>(gen)].bestId,
                  static_cast<std::uint64_t>(gen * 10 + 1));
    }

    // Fittest across the run comes from the last generation.
    int best_gen = -1;
    const core::Individual best = fittestInRun(lib, dir, &best_gen);
    EXPECT_EQ(best_gen, 2);
    EXPECT_DOUBLE_EQ(best.fitness, 3.0);

    const std::string table = formatSummaryTable(summaries);
    EXPECT_NE(table.find("best_fitness"), std::string::npos);
    EXPECT_NE(table.find("ShortInt"), std::string::npos);
    removeAll(dir);
}

TEST(Stats, EmptyRunDirectoryIsFatal)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-out");
    EXPECT_THROW(summarizeRun(lib, dir), FatalError);
    EXPECT_THROW(fittestInRun(lib, dir), FatalError);
    removeAll(dir);
}

TEST(RunWriter, OptionsSuppressArtifacts)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-out");
    RunWriterOptions options;
    options.writeIndividuals = false;
    RunWriter writer(dir, lib, nullptr, options);

    core::Population pop;
    pop.generation = 0;
    pop.individuals.push_back(makeIndividual(lib, 1, {1.0}, 6));
    writer.writePopulation(pop);
    EXPECT_TRUE(fileExists(dir + "/population_0.pop"));
    EXPECT_FALSE(fileExists(dir + "/0_1_1.00.txt"));
    removeAll(dir);
}

TEST(RunWriter, PrecisionControlsNameDigits)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-out");
    RunWriterOptions options;
    options.measurementPrecision = 4;
    RunWriter writer(dir, lib, nullptr, options);
    const core::Individual ind =
        makeIndividual(lib, 5, {1.23456}, 7);
    EXPECT_EQ(writer.individualFileName(2, ind), "2_5_1.2346.txt");
    removeAll(dir);
}

} // namespace
} // namespace output
} // namespace gest
