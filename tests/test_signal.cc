/**
 * @file
 * Tests for the signal-capture layer: SignalProbe bounds and capture
 * fidelity, waveform artifacts, probe analysis, the champion flight
 * recorder and the determinism contract (capture only observes).
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "core/engine.hh"
#include "fitness/fitness.hh"
#include "measure/sim_measurements.hh"
#include "output/flight_recorder.hh"
#include "signal/analysis.hh"
#include "signal/signal_probe.hh"
#include "signal/waveform_io.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace signal {
namespace {

std::vector<isa::InstructionInstance>
athlonLoop(const isa::InstructionLibrary& lib)
{
    // A dI/dt-ish body: bursts of FP multiplies separated by NOPs.
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < 4; ++i)
        code.push_back(lib.makeInstance("MULPD", {"xmm0", "xmm1"}));
    for (int i = 0; i < 4; ++i)
        code.push_back(lib.makeInstance("NOP", {}));
    return code;
}

std::vector<isa::InstructionInstance>
armLoop(const isa::InstructionLibrary& lib)
{
    return {
        lib.makeInstance("ADD", {"x4", "x5", "x6"}),
        lib.makeInstance("FMUL", {"v0", "v1", "v2"}),
        lib.makeInstance("LDR", {"x2", "x10", "8"}),
        lib.makeInstance("MUL", {"x5", "x6", "x7"}),
    };
}

TEST(Probe, RecordReplaceAndAnnotate)
{
    SignalProbe probe;
    probe.recordWaveform("x", "V", 1000.0, {1.0, 2.0, 3.0});
    probe.recordWaveform("y", "W", 10.0, {5.0});
    ASSERT_EQ(probe.waveforms().size(), 2u);

    // Re-recording a name replaces the prior capture in place.
    probe.recordWaveform("x", "A", 500.0, {9.0});
    ASSERT_EQ(probe.waveforms().size(), 2u);
    const Waveform* x = probe.find("x");
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->unit, "A");
    ASSERT_EQ(x->samples.size(), 1u);
    EXPECT_DOUBLE_EQ(x->samples[0], 9.0);
    EXPECT_EQ(probe.find("nope"), nullptr);

    probe.annotate("k", 1.0);
    probe.annotate("k", 2.0); // last write wins
    EXPECT_TRUE(probe.hasAnnotation("k"));
    EXPECT_DOUBLE_EQ(probe.annotationOr("k", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(probe.annotationOr("absent", -1.0), -1.0);
    EXPECT_FALSE(probe.hasAnnotation("absent"));

    probe.clear();
    EXPECT_TRUE(probe.waveforms().empty());
    EXPECT_TRUE(probe.annotations().empty());
}

TEST(Probe, SampleAndMarkBoundsAreCounted)
{
    SignalProbe::Config cfg;
    cfg.maxSamplesPerSignal = 8;
    cfg.maxMarks = 3;
    SignalProbe probe(cfg);

    const std::vector<double> long_trace(20, 1.5);
    const Waveform& w =
        probe.recordWaveform("v", "V", 1e9, long_trace);
    EXPECT_EQ(w.samples.size(), 8u);
    EXPECT_EQ(w.dropped, 12u);

    for (std::size_t i = 0; i < 5; ++i)
        probe.mark("l1_miss", i, static_cast<double>(i) * 1e-9);
    EXPECT_EQ(probe.marks().size(), 3u);
    EXPECT_EQ(probe.droppedMarks(), 2u);
}

TEST(Probe, WaveformStatsRespectWarmup)
{
    SignalProbe probe;
    // Warmup sample (100) must not leak into the summary stats.
    const Waveform& w = probe.recordWaveform(
        "v", "V", 10.0, {100.0, 1.0, 3.0, 2.0}, 1);
    EXPECT_DOUBLE_EQ(w.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(w.maxValue(), 3.0);
    EXPECT_DOUBLE_EQ(w.meanValue(), 2.0);
    EXPECT_DOUBLE_EQ(w.timeAt(2), 0.2);
}

TEST(Probe, CaptureAgreesWithScalarEvaluation)
{
    const auto plat = platform::athlonX4Platform();
    SignalProbe probe;
    const platform::Evaluation eval =
        plat->evaluate(athlonLoop(plat->library()), true, 2048, &probe);

    // The captured PDN voltage trace must reproduce the scalar
    // Evaluation exactly: same model pass, same warmup policy.
    const Waveform* v = probe.find("pdn_voltage_v");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->dropped, 0u);
    EXPECT_EQ(v->warmupSamples, 256u);
    EXPECT_DOUBLE_EQ(v->minValue(), eval.vMin);
    EXPECT_DOUBLE_EQ(v->maxValue(), eval.vMax);

    // Every waveform layer reported in.
    EXPECT_NE(probe.find("interval_ipc"), nullptr);
    EXPECT_NE(probe.find("core_power_w"), nullptr);
    EXPECT_NE(probe.find("core_current_a"), nullptr);
    EXPECT_NE(probe.find("chip_current_a"), nullptr);
    EXPECT_NE(probe.find("die_temp_c"), nullptr);

    // The annotations carry the scalar summary verbatim.
    EXPECT_DOUBLE_EQ(probe.annotationOr("v_min", -1.0), eval.vMin);
    EXPECT_DOUBLE_EQ(probe.annotationOr("v_max", -1.0), eval.vMax);
    EXPECT_DOUBLE_EQ(probe.annotationOr("peak_to_peak_v", -1.0),
                     eval.peakToPeakV);
    EXPECT_DOUBLE_EQ(probe.annotationOr("ipc", -1.0), eval.ipc);
    EXPECT_DOUBLE_EQ(probe.annotationOr("core_power_w", -1.0),
                     eval.corePowerWatts);
    EXPECT_DOUBLE_EQ(probe.annotationOr("chip_power_w", -1.0),
                     eval.chipPowerWatts);
    EXPECT_DOUBLE_EQ(probe.annotationOr("die_temp_c", -1.0),
                     eval.dieTempC);
    EXPECT_GT(probe.annotationOr("pdn_resonance_hz", 0.0), 0.0);
}

TEST(Probe, EvaluationIsBitIdenticalWithAndWithoutProbe)
{
    const auto plat = platform::athlonX4Platform();
    const auto code = athlonLoop(plat->library());

    const platform::Evaluation plain = plat->evaluate(code, true, 2048);
    SignalProbe probe;
    const platform::Evaluation captured =
        plat->evaluate(code, true, 2048, &probe);

    EXPECT_EQ(plain.sim.cycles, captured.sim.cycles);
    EXPECT_EQ(plain.sim.instructions, captured.sim.instructions);
    EXPECT_EQ(plain.ipc, captured.ipc);
    EXPECT_EQ(plain.corePowerWatts, captured.corePowerWatts);
    EXPECT_EQ(plain.chipPowerWatts, captured.chipPowerWatts);
    EXPECT_EQ(plain.dieTempC, captured.dieTempC);
    EXPECT_EQ(plain.vMin, captured.vMin);
    EXPECT_EQ(plain.vMax, captured.vMax);
    EXPECT_EQ(plain.peakToPeakV, captured.peakToPeakV);
    EXPECT_EQ(plain.hasVoltage, captured.hasVoltage);
}

TEST(Probe, PowerOnlyEvaluationStillCapturesVoltageOnPdnPlatform)
{
    // want_voltage=false: the Evaluation must not grow voltage fields,
    // but the probe still sees the PDN transient.
    const auto plat = platform::athlonX4Platform();
    SignalProbe probe;
    const platform::Evaluation eval =
        plat->evaluate(athlonLoop(plat->library()), false, 2048, &probe);
    EXPECT_FALSE(eval.hasVoltage);
    EXPECT_DOUBLE_EQ(eval.vMin, 0.0);
    EXPECT_NE(probe.find("pdn_voltage_v"), nullptr);
    EXPECT_TRUE(probe.hasAnnotation("peak_to_peak_v"));
}

TEST(Probe, ThermalTransientHeatsMonotonically)
{
    // The captured heat-up starts at the idle-settled die temperature
    // and rises monotonically toward the loaded equilibrium (§V).
    const auto plat = platform::cortexA15Platform();
    SignalProbe probe;
    const platform::Evaluation eval =
        plat->evaluate(armLoop(plat->library()), false, 2048, &probe);
    const Waveform* t = probe.find("die_temp_c");
    ASSERT_NE(t, nullptr);
    ASSERT_GE(t->samples.size(), 2u);
    for (std::size_t i = 1; i < t->samples.size(); ++i)
        EXPECT_GE(t->samples[i], t->samples[i - 1] - 1e-9);
    EXPECT_GE(t->samples.front(), plat->idleTempC() - 1.0);
    EXPECT_LE(t->samples.back(), eval.dieTempC + 1.0);
}

TEST(WaveformIo, CsvCarriesVersionHeadersAndRows)
{
    SignalProbe probe;
    probe.annotate("answer", 42.0);
    probe.recordWaveform("v", "V", 1000.0, {1.25, 2.5}, 1);
    probe.mark("l1_miss", 7, 0.007);

    const std::string csv = formatWaveformsCsv(probe);
    EXPECT_EQ(csv.rfind("# gest-waveforms v1\n", 0), 0u);
    EXPECT_NE(csv.find("# annotation answer 42\n"), std::string::npos);
    EXPECT_NE(csv.find("# signal v unit=V rate_hz=1000 warmup=1 "
                       "samples=2 dropped=0\n"),
              std::string::npos);
    EXPECT_NE(csv.find("signal,kind,index,time_s,value\n"),
              std::string::npos);
    EXPECT_NE(csv.find("v,sample,0,0,1.25\n"), std::string::npos);
    EXPECT_NE(csv.find("v,sample,1,0.001,2.5\n"), std::string::npos);
    EXPECT_NE(csv.find("l1_miss,mark,7,0.007"), std::string::npos);

    const std::string json = formatWaveformsJson(probe);
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"answer\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"v\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"l1_miss\""), std::string::npos);
}

TEST(WaveformIo, SpectrumNeedsCurrentAndPdnAnnotation)
{
    SignalProbe bare;
    EXPECT_TRUE(formatSpectrumCsv(bare).empty());

    // Current alone is not enough — without the resonance annotation
    // there is no band to scan.
    SignalProbe no_pdn;
    no_pdn.recordWaveform("chip_current_a", "A", 1e9,
                          std::vector<double>(64, 1.0));
    EXPECT_TRUE(formatSpectrumCsv(no_pdn).empty());

    SignalProbe full;
    full.recordWaveform("chip_current_a", "A", 1e9,
                        std::vector<double>(64, 1.0));
    full.annotate("pdn_resonance_hz", 1e8);
    const std::string spectrum = formatSpectrumCsv(full);
    EXPECT_EQ(spectrum.rfind("# gest-spectrum v1\n", 0), 0u);
    EXPECT_NE(spectrum.find("frequency_hz,amplitude_a\n"),
              std::string::npos);
}

TEST(WaveformIo, WriteArtifactsSealsCsvJsonAndSpectrum)
{
    const auto plat = platform::athlonX4Platform();
    SignalProbe probe;
    plat->evaluate(athlonLoop(plat->library()), true, 2048, &probe);

    const std::string dir = makeTempDir("gest-waveio");
    const WaveformArtifacts art =
        writeWaveformArtifacts(dir + "/wf", "champ", probe);
    EXPECT_TRUE(fileExists(art.csvPath));
    EXPECT_TRUE(fileExists(art.jsonPath));
    ASSERT_FALSE(art.spectrumPath.empty());
    EXPECT_TRUE(fileExists(art.spectrumPath));
    EXPECT_EQ(readFile(art.csvPath).rfind("# gest-waveforms v1\n", 0),
              0u);
    removeAll(dir);
}

TEST(Analysis, SummaryDerivesHeadlineMetrics)
{
    const auto plat = platform::athlonX4Platform();
    SignalProbe probe;
    const platform::Evaluation eval =
        plat->evaluate(athlonLoop(plat->library()), true, 2048, &probe);

    const ProbeSummary s = summarizeProbe(probe);
    EXPECT_TRUE(s.hasVoltage);
    EXPECT_DOUBLE_EQ(s.vMin, eval.vMin);
    EXPECT_DOUBLE_EQ(s.peakToPeakV, eval.peakToPeakV);
    EXPECT_GT(s.droopDepthV, 0.0);
    EXPECT_NEAR(s.droopDepthV, plat->chip().vdd - eval.vMin, 1e-12);
    EXPECT_GT(s.pdnResonanceHz, 0.0);
    EXPECT_GT(s.dominantToneHz, 0.0);
    EXPECT_GT(s.thermalTauSeconds, 0.0);
    EXPECT_GE(s.powerDutyCycle, 0.0);
    EXPECT_LE(s.powerDutyCycle, 1.0);

    const std::string text = formatProbeSummary(s, probe);
    EXPECT_NE(text.find("droop"), std::string::npos);
    EXPECT_NE(text.find("resonance"), std::string::npos);
}

class FlightRecorderTest : public ::testing::Test
{
  protected:
    FlightRecorderTest()
        : _plat(platform::cortexA7Platform()), _lib(_plat->library())
    {
    }

    std::unique_ptr<measure::Measurement> makeMeasurement() const
    {
        return std::make_unique<measure::SimPowerMeasurement>(_lib,
                                                              _plat);
    }

    core::Population makeGeneration(int generation,
                                    std::vector<double> fitnesses,
                                    std::uint64_t first_id) const
    {
        core::Population pop;
        pop.generation = generation;
        for (double f : fitnesses) {
            core::Individual ind;
            ind.code = armLoop(_lib);
            ind.id = first_id++;
            ind.fitness = f;
            ind.evaluated = true;
            pop.individuals.push_back(std::move(ind));
        }
        return pop;
    }

    static core::GenerationRecord recordFor(const core::Population& pop)
    {
        core::GenerationRecord record;
        record.generation = pop.generation;
        return record;
    }

    std::shared_ptr<const platform::Platform> _plat;
    const isa::InstructionLibrary& _lib;
};

TEST_F(FlightRecorderTest, KeepsTopKStrongestFirst)
{
    output::FlightRecorder fr("unused", 2, makeMeasurement());
    const core::Population gen0 =
        makeGeneration(0, {0.5, 2.0, 1.0}, 1);
    fr.onGenerationEvaluated(gen0, recordFor(gen0));
    ASSERT_EQ(fr.entries().size(), 2u);
    EXPECT_DOUBLE_EQ(fr.entries()[0].fitness, 2.0);
    EXPECT_DOUBLE_EQ(fr.entries()[1].fitness, 1.0);
    // 0.5 was captured while the ring was filling, then evicted; 1.0
    // displaced it.
    EXPECT_EQ(fr.captures(), 3u);

    // A stronger champion evicts the weakest; a weaker one is ignored
    // without a capture.
    const core::Population gen1 =
        makeGeneration(1, {3.0, 0.25}, 10);
    fr.onGenerationEvaluated(gen1, recordFor(gen1));
    ASSERT_EQ(fr.entries().size(), 2u);
    EXPECT_DOUBLE_EQ(fr.entries()[0].fitness, 3.0);
    EXPECT_EQ(fr.entries()[0].id, 10u);
    EXPECT_EQ(fr.entries()[0].generation, 1);
    EXPECT_DOUBLE_EQ(fr.entries()[1].fitness, 2.0);
    EXPECT_EQ(fr.captures(), 4u);
}

TEST_F(FlightRecorderTest, CapturesEachIdOnceAndSkipsUnevaluated)
{
    output::FlightRecorder fr("unused", 4, makeMeasurement());
    core::Population pop = makeGeneration(0, {1.0, 2.0}, 1);
    pop.individuals[1].evaluated = false;
    fr.onGenerationEvaluated(pop, recordFor(pop));
    EXPECT_EQ(fr.entries().size(), 1u);

    // Elitism carries id 1 into the next generation: no second capture.
    const core::Population again = makeGeneration(1, {1.0}, 1);
    fr.onGenerationEvaluated(again, recordFor(again));
    EXPECT_EQ(fr.entries().size(), 1u);
    EXPECT_EQ(fr.captures(), 1u);
}

TEST_F(FlightRecorderTest, RejectsBadConstruction)
{
    EXPECT_THROW(
        output::FlightRecorder("d", 0, makeMeasurement()),
        FatalError);
    EXPECT_THROW(output::FlightRecorder("d", 1, nullptr), FatalError);
}

TEST_F(FlightRecorderTest, SealWritesIndexAndArtifacts)
{
    const std::string dir = makeTempDir("gest-fr");
    output::FlightRecorder fr(dir, 2, makeMeasurement());
    const core::Population pop =
        makeGeneration(0, {1.0, 4.0, 2.0}, 21);
    fr.onGenerationEvaluated(pop, recordFor(pop));

    const std::vector<std::string> files = fr.seal();
    ASSERT_GE(files.size(), 5u); // index + 2x (csv + json)
    EXPECT_EQ(files[0], dir + "/waveforms/index.csv");
    for (const std::string& f : files)
        EXPECT_TRUE(fileExists(f)) << f;

    const std::string index = readFile(files[0]);
    EXPECT_EQ(index.rfind("# gest-waveform-index v1\n", 0), 0u);
    EXPECT_NE(
        index.find("rank,id,generation,fitness,csv,json,spectrum\n"),
        std::string::npos);
    // Strongest first: the fitness-4.0 individual (id 22) is rank 1.
    EXPECT_NE(index.find("1,22,0,4,22.csv,22.json,"),
              std::string::npos);
    EXPECT_NE(index.find("2,23,0,2,23.csv,23.json,"),
              std::string::npos);
    removeAll(dir);
}

TEST(Determinism, EngineHistoryIdenticalWithRecorderAttached)
{
    const auto plat = platform::cortexA7Platform();
    const isa::InstructionLibrary& lib = plat->library();
    core::GaParams params;
    params.populationSize = 8;
    params.individualSize = 6;
    params.generations = 3;
    params.seed = 17;
    params.tournamentSize = 3;

    struct Outcome
    {
        std::vector<core::GenerationRecord> history;
        std::vector<isa::InstructionInstance> bestCode;
    };
    auto run = [&](output::FlightRecorder* fr) {
        measure::SimPowerMeasurement meas(lib, plat);
        fitness::DefaultFitness fit;
        core::Engine engine(params, lib, meas, fit);
        if (fr) {
            engine.setGenerationCallback(
                [fr](const core::Population& pop,
                     const core::GenerationRecord& record) {
                    fr->onGenerationEvaluated(pop, record);
                });
        }
        engine.run();
        return Outcome{engine.history(), engine.bestEver().code};
    };

    const Outcome plain = run(nullptr);
    output::FlightRecorder fr(
        "unused", 2,
        std::make_unique<measure::SimPowerMeasurement>(lib, plat));
    const Outcome recorded = run(&fr);

    EXPECT_GT(fr.captures(), 0u);
    ASSERT_EQ(plain.history.size(), recorded.history.size());
    for (std::size_t i = 0; i < plain.history.size(); ++i) {
        EXPECT_EQ(plain.history[i].bestFitness,
                  recorded.history[i].bestFitness);
        EXPECT_EQ(plain.history[i].bestId, recorded.history[i].bestId);
        EXPECT_EQ(plain.history[i].averageFitness,
                  recorded.history[i].averageFitness);
    }
    EXPECT_EQ(plain.bestCode, recorded.bestCode);
}

const char* kWaveformRunConfig = R"(
<gest_configuration>
  <ga population_size="8" individual_size="6" generations="3"
      seed="5" tournament_size="3"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a7" min_cycles="1024"/>
  </measurement>
  <fitness class="DefaultFitness"/>
</gest_configuration>
)";

TEST(Determinism, RunHistoryByteIdenticalWithWaveformsOnOrOff)
{
    const std::string dir = makeTempDir("gest-wfrun");

    // stats off: the history timing columns read wall clocks, which
    // would differ between the runs for reasons unrelated to capture.
    config::RunConfig off = config::parseConfig(kWaveformRunConfig);
    off.outputDirectory = dir + "/off";
    off.recordStats = false;
    const config::RunResult off_result = config::runFromConfig(off);
    EXPECT_TRUE(off_result.waveformFiles.empty());

    config::RunConfig on = config::parseConfig(kWaveformRunConfig);
    on.outputDirectory = dir + "/on";
    on.recordStats = false;
    on.waveformTopK = 2;
    const config::RunResult on_result = config::runFromConfig(on);

    // The recorder only observes: identical search, identical files.
    EXPECT_EQ(readFile(dir + "/off/history.csv"),
              readFile(dir + "/on/history.csv"));
    EXPECT_EQ(off_result.best.fitness, on_result.best.fitness);
    EXPECT_EQ(off_result.best.code, on_result.best.code);

    // And the waveform artifacts exist where the index says they are.
    ASSERT_FALSE(on_result.waveformFiles.empty());
    EXPECT_EQ(on_result.waveformFiles[0],
              dir + "/on/waveforms/index.csv");
    for (const std::string& f : on_result.waveformFiles)
        EXPECT_TRUE(fileExists(f)) << f;
    removeAll(dir);
}

TEST(Determinism, WaveformsWithoutOutputDirIsSkippedNotFatal)
{
    config::RunConfig cfg = config::parseConfig(kWaveformRunConfig);
    cfg.waveformTopK = 2; // no outputDirectory: warn and continue
    const config::RunResult result = config::runFromConfig(cfg);
    EXPECT_TRUE(result.waveformFiles.empty());
    EXPECT_GT(result.best.fitness, 0.0);
}

TEST(Config, NegativeWaveformCountIsFatal)
{
    EXPECT_THROW(config::parseConfig(R"(
<gest_configuration>
  <library name="arm"/>
  <output directory="out" waveforms="-1"/>
</gest_configuration>
)"),
                 FatalError);
}

TEST(Config, WaveformCountParsedFromOutputElement)
{
    const config::RunConfig cfg = config::parseConfig(R"(
<gest_configuration>
  <library name="arm"/>
  <output directory="out" waveforms="3"/>
</gest_configuration>
)");
    EXPECT_EQ(cfg.waveformTopK, 3);
    // The directory is resolved relative to the configuration's dir.
    EXPECT_EQ(cfg.outputDirectory, "./out");
}

} // namespace
} // namespace signal
} // namespace gest
