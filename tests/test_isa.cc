/**
 * @file
 * Unit tests for operands, instruction definitions and the library.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/simulator.hh"
#include "isa/standard_libs.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace gest {
namespace isa {
namespace {

OperandDef
memResult()
{
    return OperandDef::makeRegisters("mem_result", {"x2", "x3", "x4"});
}

TEST(Operand, RegisterPoolValues)
{
    const OperandDef op = memResult();
    EXPECT_EQ(op.kind(), OperandKind::Register);
    EXPECT_EQ(op.valueCount(), 3u);
    EXPECT_EQ(op.renderValue(0), "x2");
    EXPECT_EQ(op.renderValue(2), "x4");
    RegRef ref;
    ASSERT_TRUE(op.parsedRegister(1, ref));
    EXPECT_EQ(ref.index, 3);
}

TEST(Operand, ImmediateRangeMatchesPaperExample)
{
    // Figure 4: 0..256 stride 8 gives 33 values.
    const OperandDef op =
        OperandDef::makeImmediate("immediate_value", 0, 256, 8);
    EXPECT_EQ(op.kind(), OperandKind::Immediate);
    EXPECT_EQ(op.valueCount(), 33u);
    EXPECT_EQ(op.immediateValue(0), 0);
    EXPECT_EQ(op.immediateValue(1), 8);
    EXPECT_EQ(op.immediateValue(32), 256);
    EXPECT_EQ(op.renderValue(3), "24");
}

TEST(Operand, ImmediateSingleValue)
{
    const OperandDef op = OperandDef::makeImmediate("one", 5, 5, 1);
    EXPECT_EQ(op.valueCount(), 1u);
    EXPECT_EQ(op.immediateValue(0), 5);
}

TEST(Operand, RejectsMalformedDefinitions)
{
    EXPECT_THROW(OperandDef::makeRegisters("empty", {}), FatalError);
    EXPECT_THROW(OperandDef::makeImmediate("bad", 0, 10, 0), FatalError);
    EXPECT_THROW(OperandDef::makeImmediate("bad", 0, 10, -1), FatalError);
    EXPECT_THROW(OperandDef::makeImmediate("bad", 10, 0, 1), FatalError);
}

InstructionLibrary
tinyLib()
{
    InstructionLibrary lib;
    lib.addOperand(memResult());
    lib.addOperand(OperandDef::makeRegisters("mem_address_register",
                                             {"x10"}));
    lib.addOperand(OperandDef::makeImmediate("immediate_value", 0, 256,
                                             8));
    lib.addInstruction(
        "LDR", {"mem_result", "mem_address_register", "immediate_value"},
        "LDR op1,[op2,#op3]", InstrClass::Mem, Opcode::Load);
    lib.addInstruction("NOP", {}, "NOP", InstrClass::Nop, Opcode::Nop);
    return lib;
}

TEST(Library, VariantCountMatchesPaperExample)
{
    // "there are 99 possible ways the GA can use the LDR instruction
    //  (3 registers x 1 address register x 33 immediate values)"
    const InstructionLibrary lib = tinyLib();
    EXPECT_EQ(lib.variantCount(0), 99u);
    EXPECT_EQ(lib.variantCount(1), 1u);
}

TEST(Library, UndefinedOperandIdTerminates)
{
    // §III.B.1: "If the instruction definition contains an undefined
    // operand id, the framework will terminate the execution."
    InstructionLibrary lib;
    EXPECT_THROW(lib.addInstruction("LDR", {"missing_operand"},
                                    "LDR op1", InstrClass::Mem,
                                    Opcode::Load),
                 FatalError);
}

TEST(Library, DuplicateNamesRejected)
{
    InstructionLibrary lib = tinyLib();
    EXPECT_THROW(lib.addOperand(memResult()), FatalError);
    EXPECT_THROW(lib.addInstruction("NOP", {}, "NOP", InstrClass::Nop,
                                    Opcode::Nop),
                 FatalError);
}

TEST(Library, FormatMustMentionEverySlot)
{
    InstructionLibrary lib;
    lib.addOperand(memResult());
    EXPECT_THROW(lib.addInstruction("BAD", {"mem_result", "mem_result"},
                                    "BAD op1", InstrClass::ShortInt,
                                    Opcode::Add),
                 FatalError);
}

TEST(Library, RenderSubstitutesOperands)
{
    const InstructionLibrary lib = tinyLib();
    InstructionInstance inst;
    inst.defIndex = 0;
    inst.operandChoice = {1, 0, 3};
    EXPECT_EQ(lib.render(inst), "LDR x3,[x10,#24]");
}

TEST(Library, MakeInstanceResolvesValues)
{
    const InstructionLibrary lib = tinyLib();
    const InstructionInstance inst =
        lib.makeInstance("LDR", {"x4", "x10", "16"});
    EXPECT_EQ(lib.render(inst), "LDR x4,[x10,#16]");
    EXPECT_THROW(lib.makeInstance("LDR", {"x9", "x10", "16"}),
                 FatalError);
    EXPECT_THROW(lib.makeInstance("LDR", {"x4", "x10", "7"}), FatalError);
    EXPECT_THROW(lib.makeInstance("LDR", {"x4"}), FatalError);
    EXPECT_THROW(lib.makeInstance("NOPE", {}), FatalError);
}

TEST(Library, RandomInstancesAreAlwaysValid)
{
    const InstructionLibrary lib = armLikeLibrary();
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const InstructionInstance inst = lib.randomInstance(rng);
        EXPECT_TRUE(lib.valid(inst));
        EXPECT_FALSE(lib.render(inst).empty());
    }
}

TEST(Library, RandomInstancesCoverAllInstructions)
{
    const InstructionLibrary lib = armLikeLibrary();
    Rng rng(6);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 3000; ++i)
        seen.insert(lib.randomInstance(rng).defIndex);
    EXPECT_EQ(seen.size(), lib.numInstructions());
}

TEST(Library, MutateOperandKeepsInstanceValid)
{
    const InstructionLibrary lib = armLikeLibrary();
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        InstructionInstance inst = lib.randomInstance(rng);
        const std::uint32_t def = inst.defIndex;
        lib.mutateOperand(inst, rng);
        EXPECT_EQ(inst.defIndex, def);
        EXPECT_TRUE(lib.valid(inst));
    }
}

TEST(Library, MutateOperandOnOperandlessInstruction)
{
    const InstructionLibrary lib = tinyLib();
    Rng rng(8);
    InstructionInstance nop = lib.randomInstanceOf(1, rng);
    const InstructionInstance before = nop;
    lib.mutateOperand(nop, rng);
    EXPECT_EQ(nop, before);
}

TEST(Library, FindByName)
{
    const InstructionLibrary lib = tinyLib();
    EXPECT_EQ(lib.findInstruction("LDR"), 0);
    EXPECT_EQ(lib.findInstruction("NOP"), 1);
    EXPECT_EQ(lib.findInstruction("XYZ"), -1);
    EXPECT_GE(lib.findOperand("mem_result"), 0);
    EXPECT_EQ(lib.findOperand("zzz"), -1);
}

TEST(StandardLibs, ArmLibraryIsWellFormed)
{
    const InstructionLibrary lib = armLikeLibrary();
    EXPECT_GT(lib.numInstructions(), 15u);
    // All classes represented.
    std::set<InstrClass> classes;
    for (std::size_t i = 0; i < lib.numInstructions(); ++i)
        classes.insert(lib.instruction(i).cls);
    EXPECT_EQ(classes.size(), static_cast<std::size_t>(numInstrClasses));
}

TEST(StandardLibs, ArmV7LibraryIsWellFormed)
{
    const InstructionLibrary lib = armV7LikeLibrary();
    EXPECT_GT(lib.numInstructions(), 15u);
    // A32 spellings render correctly.
    EXPECT_EQ(lib.render(lib.makeInstance("ADD", {"r4", "r5", "r6"})),
              "ADD r4, r5, r6");
    EXPECT_EQ(lib.render(lib.makeInstance("VMLAQ", {"q1", "q2", "q3"})),
              "VMLA.F32 q1, q2, q3");
    EXPECT_EQ(lib.render(lib.makeInstance("LDR", {"r2", "r10", "32"})),
              "LDR r2, [r10, #32]");
    // Every register name parses into the simulator's register model.
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        const InstructionInstance inst = lib.randomInstance(rng);
        EXPECT_TRUE(lib.valid(inst));
    }
}

TEST(StandardLibs, ArmV7InstancesSimulate)
{
    // The A32 alphabet must decode and run on the Versatile Express
    // core models just like the A64 one.
    const InstructionLibrary lib = armV7LikeLibrary();
    // r4 accumulates across iterations so register values keep
    // evolving (a constant loop reaches a toggle-free fixed point).
    std::vector<InstructionInstance> code = {
        lib.makeInstance("VMULQ", {"q0", "q1", "q2"}),
        lib.makeInstance("MLA", {"r4", "r5", "r6", "r4"}),
        lib.makeInstance("STR", {"r4", "r10", "16"}),
        lib.makeInstance("LDR", {"r2", "r10", "16"}),
        lib.makeInstance("BNE", {}),
    };
    arch::LoopSimulator sim(arch::cortexA7Config(), arch::InitState{});
    const arch::SimResult result =
        sim.run(arch::decodeBody(lib, code), 100, 4);
    EXPECT_GT(result.ipc, 0.1);
    EXPECT_GT(result.totalToggleBits, 0u);
}

TEST(StandardLibs, X86LibraryIsWellFormed)
{
    const InstructionLibrary lib = x86LikeLibrary();
    EXPECT_GT(lib.numInstructions(), 10u);
    EXPECT_GE(lib.findInstruction("MULPD"), 0);
    EXPECT_GE(lib.findInstruction("NOP"), 0);
}

TEST(InstrClass, StringRoundTrips)
{
    EXPECT_EQ(instrClassFromString("mem"), InstrClass::Mem);
    EXPECT_EQ(instrClassFromString("Float/SIMD"), InstrClass::FloatSimd);
    EXPECT_EQ(instrClassFromString("LONGINT"), InstrClass::LongInt);
    EXPECT_EQ(instrClassFromString("branch"), InstrClass::Branch);
    EXPECT_THROW(instrClassFromString("bogus"), FatalError);
    EXPECT_STREQ(toString(InstrClass::FloatSimd), "Float/SIMD");
}

TEST(InstrClass, MnemonicLookup)
{
    Opcode op;
    EXPECT_TRUE(opcodeFromMnemonic("ldr", op));
    EXPECT_EQ(op, Opcode::Load);
    EXPECT_TRUE(opcodeFromMnemonic("VFMADD231PD", op));
    EXPECT_EQ(op, Opcode::VFma);
    EXPECT_TRUE(opcodeFromMnemonic("xor", op));
    EXPECT_EQ(op, Opcode::Eor);
    EXPECT_FALSE(opcodeFromMnemonic("frobnicate", op));
}

TEST(InstrClass, DefaultClassConsistent)
{
    EXPECT_EQ(defaultClass(Opcode::Add), InstrClass::ShortInt);
    EXPECT_EQ(defaultClass(Opcode::UDiv), InstrClass::LongInt);
    EXPECT_EQ(defaultClass(Opcode::VFma), InstrClass::FloatSimd);
    EXPECT_EQ(defaultClass(Opcode::StorePair), InstrClass::Mem);
    EXPECT_EQ(defaultClass(Opcode::Branch), InstrClass::Branch);
    EXPECT_TRUE(isLoad(Opcode::LoadPair));
    EXPECT_TRUE(isStore(Opcode::Store));
    EXPECT_FALSE(isStore(Opcode::Load));
    EXPECT_TRUE(isBranch(Opcode::BranchCond));
}

} // namespace
} // namespace isa
} // namespace gest
