/**
 * @file
 * Unit tests for the energy/power model.
 */

#include <gtest/gtest.h>

#include "arch/simulator.hh"
#include "isa/standard_libs.hh"
#include "power/power_model.hh"
#include "util/logging.hh"

namespace gest {
namespace power {
namespace {

using isa::InstrClass;

EnergyModel
flatModel()
{
    EnergyModel em;
    em.name = "flat";
    for (int cls = 0; cls < isa::numInstrClasses; ++cls)
        em.epiClassNj[static_cast<std::size_t>(cls)] = 0.1;
    em.clockPerCycleNj = 0.2;
    em.vddNominal = 1.0;
    em.leakageRefWatts = 0.5;
    em.leakageRefTempC = 50.0;
    em.leakageTempCoeff = 0.01;
    return em;
}

arch::SimResult
simulateSmallLoop()
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    std::vector<isa::InstructionInstance> code;
    code.push_back(lib.makeInstance("ADD", {"x4", "x5", "x6"}));
    code.push_back(lib.makeInstance("FMUL", {"v0", "v1", "v2"}));
    code.push_back(lib.makeInstance("LDR", {"x2", "x10", "16"}));
    arch::LoopSimulator sim(arch::cortexA15Config(), arch::InitState{});
    return sim.run(arch::decodeBody(lib, code), 100, 4);
}

TEST(EnergyModel, LeakageGrowsWithTemperature)
{
    const EnergyModel em = flatModel();
    const double cold = em.leakageWatts(30.0, 1.0);
    const double ref = em.leakageWatts(50.0, 1.0);
    const double hot = em.leakageWatts(90.0, 1.0);
    EXPECT_LT(cold, ref);
    EXPECT_LT(ref, hot);
    EXPECT_DOUBLE_EQ(ref, 0.5);
}

TEST(EnergyModel, LeakageScalesQuadraticallyWithVoltage)
{
    const EnergyModel em = flatModel();
    const double v1 = em.leakageWatts(50.0, 1.0);
    const double v2 = em.leakageWatts(50.0, 2.0);
    EXPECT_NEAR(v2 / v1, 4.0, 1e-9);
}

TEST(EnergyModel, LeakageNeverGoesNegative)
{
    EnergyModel em = flatModel();
    em.leakageTempCoeff = 0.1;
    EXPECT_GT(em.leakageWatts(-100.0, 1.0), 0.0);
}

TEST(EnergyModel, DynamicScaleQuadratic)
{
    const EnergyModel em = flatModel();
    EXPECT_DOUBLE_EQ(em.dynamicScale(1.0), 1.0);
    EXPECT_NEAR(em.dynamicScale(1.1), 1.21, 1e-9);
}

TEST(EnergyModel, EpiAccessors)
{
    EnergyModel em = flatModel();
    em.setEpi(InstrClass::Mem, 0.7);
    EXPECT_DOUBLE_EQ(em.epi(InstrClass::Mem), 0.7);
    EXPECT_DOUBLE_EQ(em.epi(InstrClass::ShortInt), 0.1);
}

TEST(PowerModel, RejectsNonPositiveFrequency)
{
    EXPECT_THROW(PowerModel(flatModel(), 0.0), FatalError);
    EXPECT_THROW(PowerModel(flatModel(), -1.0), FatalError);
}

TEST(PowerModel, TraceAndAverageAgree)
{
    const arch::SimResult sim = simulateSmallLoop();
    const PowerModel model(flatModel(), 1.5);
    const PowerTrace trace = model.trace(sim, 1.0, 50.0);
    const double avg_fast = model.averageWatts(sim, 1.0, 50.0);

    ASSERT_EQ(trace.watts.size(), sim.trace.size());
    double sum = 0.0;
    for (double w : trace.watts)
        sum += w;
    const double avg_trace = sum / static_cast<double>(trace.watts.size());
    EXPECT_NEAR(avg_trace, trace.avgWatts, 1e-9);
    // The fast path charges fetch per instruction rather than per
    // recorded fetch event; they must agree within a couple percent.
    EXPECT_NEAR(avg_fast, avg_trace, avg_trace * 0.02);
}

TEST(PowerModel, PeakAndMinBracketAverage)
{
    const arch::SimResult sim = simulateSmallLoop();
    const PowerModel model(flatModel(), 1.0);
    const PowerTrace trace = model.trace(sim, 1.0, 50.0);
    EXPECT_LE(trace.minWatts, trace.avgWatts);
    EXPECT_LE(trace.avgWatts, trace.peakWatts);
    EXPECT_GT(trace.minWatts, 0.0);
}

TEST(PowerModel, MoreActivityMeansMorePower)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    std::vector<isa::InstructionInstance> busy;
    std::vector<isa::InstructionInstance> idle;
    for (int i = 0; i < 8; ++i) {
        busy.push_back(lib.makeInstance(
            "FMUL", {"v" + std::to_string(i % 8),
                     "v" + std::to_string((i + 2) % 8),
                     "v" + std::to_string((i + 5) % 8)}));
        idle.push_back(lib.makeInstance("NOP", {}));
    }
    arch::LoopSimulator sim(arch::cortexA15Config(), arch::InitState{});
    const PowerModel model(cortexA15Energy(), 1.2);
    const double p_busy = model.averageWatts(
        sim.run(arch::decodeBody(lib, busy), 100, 4), 1.05, 55.0);
    const double p_idle = model.averageWatts(
        sim.run(arch::decodeBody(lib, idle), 100, 4), 1.05, 55.0);
    EXPECT_GT(p_busy, p_idle * 1.5);
}

TEST(PowerModel, VoltageScalingRaisesDynamicPower)
{
    const arch::SimResult sim = simulateSmallLoop();
    const PowerModel model(flatModel(), 1.0);
    const double low = model.averageWatts(sim, 0.9, 50.0);
    const double high = model.averageWatts(sim, 1.1, 50.0);
    EXPECT_GT(high, low);
}

TEST(PowerTrace, CurrentIsPowerOverVoltage)
{
    const arch::SimResult sim = simulateSmallLoop();
    const PowerModel model(flatModel(), 1.0);
    const PowerTrace trace = model.trace(sim, 1.25, 50.0);
    const std::vector<double> amps = trace.currentAmps();
    ASSERT_EQ(amps.size(), trace.watts.size());
    for (std::size_t i = 0; i < amps.size(); ++i)
        EXPECT_NEAR(amps[i], trace.watts[i] / 1.25, 1e-12);
}

TEST(PowerModel, EmptyTraceFallsBackToLeakage)
{
    const PowerModel model(flatModel(), 1.0);
    arch::SimResult empty;
    const PowerTrace trace = model.trace(empty, 1.0, 50.0);
    EXPECT_TRUE(trace.watts.empty());
    EXPECT_DOUBLE_EQ(trace.avgWatts, 0.5);
}

TEST(EnergyPresets, AllPlatformsHavePlausibleModels)
{
    for (const EnergyModel& em :
         {cortexA15Energy(), cortexA7Energy(), xgene2Energy(),
          athlonX4Energy()}) {
        EXPECT_FALSE(em.name.empty());
        EXPECT_GT(em.epi(InstrClass::FloatSimd), em.epi(InstrClass::Nop));
        EXPECT_GT(em.leakageRefWatts, 0.0);
        EXPECT_GT(em.vddNominal, 0.5);
        EXPECT_LT(em.vddNominal, 1.6);
    }
}

TEST(EnergyPresets, LittleCoreCheaperThanBigCore)
{
    // Branch is the deliberate exception: on the little core the
    // fetch/predict path is a large share of total power, which is what
    // makes the paper's branch-rich A7 virus profitable.
    const EnergyModel big = cortexA15Energy();
    const EnergyModel little = cortexA7Energy();
    for (isa::InstrClass cls :
         {isa::InstrClass::ShortInt, isa::InstrClass::LongInt,
          isa::InstrClass::FloatSimd, isa::InstrClass::Mem,
          isa::InstrClass::Nop})
        EXPECT_LT(little.epi(cls), big.epi(cls));
    EXPECT_GT(little.epi(isa::InstrClass::Branch),
              big.epi(isa::InstrClass::Branch));
}

} // namespace
} // namespace power
} // namespace gest
