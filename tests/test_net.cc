/**
 * @file
 * Tests for the live telemetry plane: the embedded HTTP server, the
 * minimal GET client, the JSON reader, the lock-free generation event
 * buffer, the Prometheus renderer, the engine observer hook, and the
 * end-to-end guarantees the plane makes — concurrent scrapes during a
 * real GA run and byte-identical artifacts with the server on or off.
 * Build with -DGEST_SANITIZE=thread to run the hammer test under TSan.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "config/config.hh"
#include "core/engine.hh"
#include "fitness/fitness.hh"
#include "measure/sim_measurements.hh"
#include "net/http_client.hh"
#include "net/http_server.hh"
#include "net/telemetry.hh"
#include "output/top.hh"
#include "platform/platform.hh"
#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/jsonlite.hh"

namespace gest {
namespace {

using core::Engine;
using core::GaParams;

GaParams
smallParams(std::uint64_t seed, int generations = 6)
{
    GaParams params;
    params.populationSize = 8;
    params.individualSize = 8;
    params.generations = generations;
    params.tournamentSize = 2;
    params.seed = seed;
    params.threads = 1;
    return params;
}

// ------------------------------------------------------------ jsonlite

TEST(Jsonlite, ParsesScalarsArraysAndObjects)
{
    json::Value v;
    ASSERT_TRUE(json::parse(
        R"({"a": 1.5, "b": "x\ny", "c": [1, 2, 3], "d": null,
            "e": {"nested": true}})",
        v, nullptr));
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.5);
    EXPECT_EQ(v.stringOr("b", ""), "x\ny");
    ASSERT_NE(v.find("c"), nullptr);
    ASSERT_TRUE(v.find("c")->isArray());
    EXPECT_EQ(v.find("c")->array.size(), 3u);
    EXPECT_TRUE(v.find("d")->isNull());
    EXPECT_TRUE(v.find("e")->find("nested")->boolean);
}

TEST(Jsonlite, RejectsMalformedInput)
{
    json::Value v;
    std::string error;
    EXPECT_FALSE(json::parse("{\"a\": }", v, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(json::parse("[1, 2", v, nullptr));
    EXPECT_FALSE(json::parse("{} trailing", v, nullptr));
    EXPECT_FALSE(json::parse("", v, nullptr));
}

TEST(Jsonlite, DecodesUnicodeEscapes)
{
    json::Value v;
    ASSERT_TRUE(json::parse(R"(["A\u00e9\n"])", v, nullptr));
    EXPECT_EQ(v.array[0].str, "A\xc3\xa9\n");
}

// --------------------------------------------------- histogram quantiles

TEST(HistogramQuantile, InterpolatesAndClamps)
{
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "test.net.quantile", "quantile test", 0.0, 100.0, 10);
    const bool was = stats::enabled();
    stats::setEnabled(true);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);  // empty

    for (int i = 0; i < 100; ++i)
        hist.sample(i + 0.5);  // uniform over [0, 100)
    const double p50 = hist.quantile(0.50);
    const double p95 = hist.quantile(0.95);
    EXPECT_NEAR(p50, 50.0, 10.0 + 1e-9);  // one bucket of slack
    EXPECT_NEAR(p95, 95.0, 10.0 + 1e-9);
    EXPECT_LT(p50, p95);
    EXPECT_GE(hist.quantile(0.0), hist.minSeen());
    EXPECT_LE(hist.quantile(1.0), hist.maxSeen());
    stats::setEnabled(was);
}

TEST(HistogramQuantile, AppearsInDumps)
{
    stats::Histogram& hist = stats::StatsRegistry::instance().histogram(
        "test.net.dump", "dump test", 0.0, 10.0, 5);
    const bool was = stats::enabled();
    stats::setEnabled(true);
    hist.sample(5.0);
    const std::string text =
        stats::StatsRegistry::instance().textDump();
    EXPECT_NE(text.find("test.net.dump::p50"), std::string::npos);
    EXPECT_NE(text.find("test.net.dump::p95"), std::string::npos);
    EXPECT_NE(text.find("test.net.dump::p99"), std::string::npos);

    json::Value metrics;
    ASSERT_TRUE(json::parse(stats::StatsRegistry::instance().jsonDump(),
                            metrics, nullptr));
    const json::Value* entry =
        metrics.find("histograms")->find("test.net.dump");
    ASSERT_NE(entry, nullptr);
    for (const char* key : {"p50", "p95", "p99"})
        EXPECT_NE(entry->find(key), nullptr) << key;
    stats::setEnabled(was);
}

// ------------------------------------------------------- event buffer

TEST(GenerationEventBuffer, PublishesReadsAndDrops)
{
    net::GenerationEventBuffer buffer(3);
    EXPECT_EQ(buffer.size(), 0u);
    buffer.publish("one");
    buffer.publish("two");
    buffer.publish("three");
    buffer.publish("four");  // over capacity: dropped, not blocked
    EXPECT_EQ(buffer.size(), 3u);
    EXPECT_EQ(buffer.dropped(), 1u);
    EXPECT_EQ(*buffer.at(0), "one");
    EXPECT_EQ(*buffer.at(2), "three");
}

TEST(GenerationEventBuffer, ConcurrentReadersSeeCompletePayloads)
{
    net::GenerationEventBuffer buffer(256);
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const std::size_t n = buffer.size();
            for (std::size_t i = 0; i < n; ++i) {
                const std::string& payload = *buffer.at(i);
                ASSERT_EQ(payload,
                          "payload-" + std::to_string(i) + "-end");
            }
        }
    });
    for (std::size_t i = 0; i < 256; ++i)
        buffer.publish("payload-" + std::to_string(i) + "-end");
    stop.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(buffer.size(), 256u);
    EXPECT_EQ(buffer.dropped(), 0u);
}

// --------------------------------------------------------- http server

TEST(HttpServer, RoutesRespondsAndRejectsUnknown)
{
    net::HttpServer server("127.0.0.1:0");
    server.route("/hello", [](const net::HttpRequest& req) {
        net::HttpResponse res;
        res.body = "hi " + req.query;
        return res;
    });
    server.start();
    ASSERT_GT(server.port(), 0);
    const std::string base = server.address();

    net::HttpResult res = net::httpGet(base + "/hello?q=1");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "hi q=1");

    res = net::httpGet(base + "/nope");
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.status, 404);

    EXPECT_GE(server.requestsServed(), 2u);
    server.stop();
    server.stop();  // idempotent
}

TEST(HttpServer, RefusesNonGetAndOversizedRequests)
{
    net::HttpServer::Options options;
    options.maxRequestBytes = 256;
    net::HttpServer server("127.0.0.1:0", options);
    server.route("/x", [](const net::HttpRequest&) {
        return net::HttpResponse();
    });
    server.start();
    const std::string base = server.address();

    // The GET client cannot send a POST or an oversized header block,
    // so drive the server with handcrafted requests over a raw socket.
    auto raw = [&](const std::string& request) {
        const int port = server.port();
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return std::string();
        }
        const ssize_t sent =
            ::send(fd, request.data(), request.size(), 0);
        EXPECT_EQ(sent, static_cast<ssize_t>(request.size()));
        std::string reply;
        char buf[1024];
        ssize_t n;
        while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
            reply.append(buf, static_cast<std::size_t>(n));
        ::close(fd);
        return reply;
    };

    const std::string post =
        raw("POST /x HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_NE(post.find("405"), std::string::npos) << post;

    std::string big = "GET /x HTTP/1.1\r\n";
    big += "X-Pad: " + std::string(512, 'a') + "\r\n\r\n";
    const std::string oversized = raw(big);
    EXPECT_NE(oversized.find("431"), std::string::npos) << oversized;

    const std::string head = raw("HEAD /x HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_NE(head.find("200"), std::string::npos) << head;
    server.stop();
}

// ----------------------------------------------------- engine observers

TEST(EngineObservers, StackAndRunAfterTheCallback)
{
    const auto a15 = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = a15->library();
    measure::SimPowerMeasurement meas(lib, a15);
    fitness::DefaultFitness fit;
    Engine engine(smallParams(3), lib, meas, fit);

    std::vector<int> order;
    engine.setGenerationCallback(
        [&](const core::Population&, const core::GenerationRecord&) {
            order.push_back(0);
        });
    engine.addGenerationObserver(
        [&](const core::Population&, const core::GenerationRecord&) {
            order.push_back(1);
        });
    engine.addGenerationObserver(
        [&](const core::Population&, const core::GenerationRecord&) {
            order.push_back(2);
        });
    engine.initialize();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    engine.run();
    EXPECT_EQ(order.size(), 3u * 6);  // one triple per generation
}

// --------------------------------------------------- telemetry service

TEST(Telemetry, EndpointsServeTheRunAndStreamEvents)
{
    const auto a15 = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = a15->library();
    measure::SimPowerMeasurement meas(lib, a15);
    fitness::DefaultFitness fit;
    Engine engine(smallParams(5, 5), lib, meas, fit);

    net::TelemetryServer telemetry("127.0.0.1:0", lib, 5);
    telemetry.start();
    engine.addGenerationObserver(telemetry.observer());
    engine.run();
    telemetry.service().noteRunCompleted();

    const std::string base = telemetry.address();

    net::HttpResult res = net::httpGet(base + "/status");
    ASSERT_TRUE(res.ok && res.status == 200) << res.error;
    json::Value status;
    ASSERT_TRUE(json::parse(res.body, status, nullptr)) << res.body;
    EXPECT_EQ(static_cast<int>(status.numberOr("generation", -1)), 4);
    EXPECT_EQ(static_cast<int>(status.numberOr("total_generations", 0)),
              5);

    res = net::httpGet(base + "/history");
    ASSERT_TRUE(res.ok && res.status == 200);
    json::Value history;
    ASSERT_TRUE(json::parse(res.body, history, nullptr)) << res.body;
    ASSERT_TRUE(history.isArray());
    ASSERT_EQ(history.array.size(), 5u);
    for (std::size_t i = 0; i < history.array.size(); ++i)
        EXPECT_EQ(history.array[i].numberOr("generation", -1),
                  static_cast<double>(i));

    res = net::httpGet(base + "/champion");
    ASSERT_TRUE(res.ok && res.status == 200);
    json::Value champion;
    ASSERT_TRUE(json::parse(res.body, champion, nullptr)) << res.body;
    EXPECT_DOUBLE_EQ(champion.numberOr("fitness", -1.0),
                     engine.bestEver().fitness);
    ASSERT_NE(champion.find("code"), nullptr);
    EXPECT_EQ(champion.find("code")->array.size(),
              engine.bestEver().code.size());

    res = net::httpGet(base + "/metrics");
    ASSERT_TRUE(res.ok && res.status == 200);
    EXPECT_NE(res.body.find("# TYPE gest_"), std::string::npos);

    // The SSE stream replays every generation from index 0 and closes
    // with the end event once the run is complete.
    res = net::httpGet(base + "/events", /*timeout_ms=*/5000);
    ASSERT_TRUE(res.ok && res.status == 200) << res.error;
    for (int g = 0; g < 5; ++g)
        EXPECT_NE(res.body.find("id: " + std::to_string(g) + "\n"),
                  std::string::npos)
            << res.body;
    EXPECT_NE(res.body.find("event: end"), std::string::npos);
    telemetry.stop();
}

TEST(Telemetry, ConcurrentScrapersDuringARealRun)
{
    const auto a15 = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = a15->library();
    measure::SimPowerMeasurement meas(lib, a15);
    fitness::DefaultFitness fit;
    GaParams params = smallParams(7, 20);
    params.threads = 2;  // exercise worker-pool + scraper overlap
    Engine engine(params, lib, meas, fit);

    const bool was = stats::enabled();
    stats::setEnabled(true);  // histograms live while scrapers render

    net::TelemetryServer telemetry("127.0.0.1:0", lib, 20);
    telemetry.start();
    engine.addGenerationObserver(telemetry.observer());
    const std::string base = telemetry.address();

    std::atomic<bool> stop{false};
    std::atomic<int> scrapes{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 2; ++t) {
        scrapers.emplace_back([&, t] {
            const char* endpoints[] = {"/metrics", "/status", "/history",
                                       "/champion", "/healthz"};
            int i = t;
            while (!stop.load(std::memory_order_acquire)) {
                const net::HttpResult r =
                    net::httpGet(base + endpoints[i % 5]);
                if (r.ok && r.status == 200)
                    scrapes.fetch_add(1, std::memory_order_relaxed);
                else
                    failures.fetch_add(1, std::memory_order_relaxed);
                ++i;
            }
        });
    }
    std::thread sse([&] {
        // Long-poll the event stream for the whole run; the handler
        // exercises the lock-free buffer from a worker thread.
        (void)net::httpGet(base + "/events", /*timeout_ms=*/30000);
    });

    engine.run();
    telemetry.service().noteRunCompleted();
    stop.store(true, std::memory_order_release);
    for (std::thread& scraper : scrapers)
        scraper.join();
    sse.join();
    telemetry.stop();
    stats::setEnabled(was);

    EXPECT_GT(scrapes.load(), 0);
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(telemetry.service().generationsSeen(), 20u);
}

// ------------------------------------------------ artifact byte-identity

const char kIdentityConfig[] = R"(
<gest_configuration>
  <ga population_size="8" individual_size="8" generations="5" seed="21"
      tournament_size="2" threads="1"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a15"/>
  </measurement>
  <fitness class="DefaultFitness"/>
</gest_configuration>
)";

/**
 * history.csv's last five columns are wall-clock phase timings
 * (selection_ms .. io_ms) that differ between *any* two runs; drop
 * them so the comparison covers exactly the deterministic GA columns.
 */
std::string
stripTimingColumns(const std::string& csv)
{
    std::string out;
    std::size_t start = 0;
    while (start < csv.size()) {
        std::size_t end = csv.find('\n', start);
        if (end == std::string::npos)
            end = csv.size();
        std::string line = csv.substr(start, end - start);
        for (int i = 0; i < 5; ++i) {
            const std::size_t comma = line.rfind(',');
            if (comma == std::string::npos)
                break;
            line.erase(comma);
        }
        out += line + "\n";
        start = end + 1;
    }
    return out;
}

TEST(Telemetry, RunArtifactsAreByteIdenticalWithServerOnAndOff)
{
    const std::string dir = makeTempDir("gest-net-ident");

    config::RunConfig off = config::parseConfig(kIdentityConfig);
    off.outputDirectory = dir + "/off";
    const config::RunResult off_result = config::runFromConfig(off);
    EXPECT_TRUE(off_result.listenAddress.empty());

    config::RunConfig on = config::parseConfig(kIdentityConfig);
    on.outputDirectory = dir + "/on";
    on.listenAddress = "127.0.0.1:0";
    const config::RunResult on_result = config::runFromConfig(on);
    EXPECT_FALSE(on_result.listenAddress.empty());

    EXPECT_EQ(off_result.best.code, on_result.best.code);
    // lineage.csv holds only deterministic GA state: byte-identical.
    EXPECT_EQ(readFile(dir + "/off/lineage.csv"),
              readFile(dir + "/on/lineage.csv"));
    // history.csv embeds wall-clock timings; everything else matches.
    EXPECT_EQ(stripTimingColumns(readFile(dir + "/off/history.csv")),
              stripTimingColumns(readFile(dir + "/on/history.csv")));
    removeAll(dir);
}

// -------------------------------------------------------- gest top bits

TEST(Top, SparklineMapsRangeOntoGlyphs)
{
    EXPECT_EQ(output::sparkline({}, 10), "");
    const std::string flat = output::sparkline({1.0, 1.0, 1.0}, 10);
    EXPECT_EQ(flat, "▄▄▄");  // constant renders mid-height
    const std::string ramp =
        output::sparkline({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, 8);
    EXPECT_EQ(ramp, "▁▂▃▄▅▆▇█");
    // Downsampling keeps the right edge at the latest value.
    const std::vector<double> many(100, 1.0);
    EXPECT_EQ(output::sparkline(many, 10).size(),
              10 * std::string("▁").size());
}

TEST(Top, FetchesASnapshotFromALiveServer)
{
    const auto a15 = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = a15->library();
    measure::SimPowerMeasurement meas(lib, a15);
    fitness::DefaultFitness fit;
    Engine engine(smallParams(9, 4), lib, meas, fit);

    net::TelemetryServer telemetry("127.0.0.1:0", lib, 4);
    telemetry.start();
    engine.addGenerationObserver(telemetry.observer());
    engine.run();

    output::TopSnapshot snapshot;
    ASSERT_TRUE(output::fetchTopSnapshot(telemetry.address(), snapshot))
        << snapshot.error;
    EXPECT_TRUE(snapshot.live);
    EXPECT_EQ(snapshot.generation, 3);
    EXPECT_EQ(snapshot.totalGenerations, 4);
    EXPECT_EQ(snapshot.bestTrajectory.size(), 4u);
    const std::string frame = output::renderTop(snapshot);
    EXPECT_NE(frame.find("gen 3/4"), std::string::npos) << frame;
    EXPECT_NE(frame.find("fitness "), std::string::npos) << frame;
    telemetry.stop();

    output::TopSnapshot bad;
    EXPECT_FALSE(output::fetchTopSnapshot("127.0.0.1:1", bad));
    EXPECT_FALSE(bad.error.empty());
}

} // namespace
} // namespace gest
