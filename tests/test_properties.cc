/**
 * @file
 * Property-based sweeps (parameterized GTest) over the simulator, the
 * models and the GA engine: invariants that must hold for any random
 * input, any platform and any seed.
 */

#include <gtest/gtest.h>

#include "config/config.hh"
#include "core/engine.hh"
#include "measure/sim_measurements.hh"
#include "pdn/pdn_model.hh"
#include "platform/platform.hh"
#include "power/power_model.hh"
#include "util/random.hh"
#include "xml/xml.hh"

namespace gest {
namespace {

std::vector<isa::InstructionInstance>
randomBody(const isa::InstructionLibrary& lib, int size,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < size; ++i)
        code.push_back(lib.randomInstance(rng));
    return code;
}

// --------------------------------------------------- simulator sweeps

class SimInvariantTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{};

TEST_P(SimInvariantTest, RandomBodiesObeyCoreInvariants)
{
    const auto& [platform_name, seed] = GetParam();
    const auto plat = platform::Platform::byName(platform_name);
    const isa::InstructionLibrary& lib = plat->library();
    const auto code =
        randomBody(lib, 30, static_cast<std::uint64_t>(seed));

    arch::LoopSimulator sim(plat->cpu(), plat->initState());
    const arch::SimResult result =
        sim.run(arch::decodeBody(lib, code), 60, 4);

    // IPC bounded by machine width.
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_LE(result.ipc, plat->cpu().issueWidth + 1e-9);
    EXPECT_LE(result.ipc, plat->cpu().fetchWidth + 1e-9);

    // Counter consistency.
    std::uint64_t issued = 0;
    for (const arch::CycleStats& stats : result.trace)
        issued += static_cast<std::uint64_t>(stats.totalIssued());
    EXPECT_EQ(issued, result.instructions);
    EXPECT_LE(result.cacheMisses, result.cacheAccesses);
    EXPECT_LE(result.l2Misses, result.l2Accesses);
    EXPECT_LE(result.l2Accesses, result.cacheMisses);

    // Per-cycle issue never exceeds the configured width.
    for (const arch::CycleStats& stats : result.trace)
        EXPECT_LE(stats.totalIssued(), plat->cpu().issueWidth);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, SimInvariantTest,
    ::testing::Combine(::testing::Values("cortex-a15", "cortex-a7",
                                         "xgene2", "athlon-x4",
                                         "xgene2-llc"),
                       ::testing::Values(1, 2, 3, 4)));

class IssueWidthTest : public ::testing::TestWithParam<int>
{};

TEST_P(IssueWidthTest, WiderIssueHelpsOverall)
{
    // Greedy oldest-first issue is a list scheduler, and list
    // schedulers have Graham-style anomalies: one extra issue slot can
    // occasionally slow a specific trace slightly. The property that
    // must hold is the coarse one: within a couple percent per step,
    // and strictly better from width 1 to width 4.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = arch::decodeBody(
        lib, randomBody(lib, 24, static_cast<std::uint64_t>(GetParam())));

    auto ipc_at = [&](int width) {
        arch::CpuConfig cfg = arch::cortexA15Config();
        cfg.issueWidth = width;
        return arch::LoopSimulator(cfg, arch::InitState{})
            .run(body, 100, 4)
            .ipc;
    };

    double last = ipc_at(1);
    for (int width = 2; width <= 4; ++width) {
        const double ipc = ipc_at(width);
        EXPECT_GE(ipc, last * 0.97) << "width " << width;
        last = ipc;
    }

    // For an ILP-rich body (independent adds), widening must strictly
    // help: here the scheduler has no anomaly to hide behind.
    std::vector<isa::InstructionInstance> parallel_code;
    for (int i = 0; i < 12; ++i)
        parallel_code.push_back(lib.makeInstance(
            "ADD", {"x" + std::to_string(4 + i % 3), "x7", "x8"}));
    const auto parallel = arch::decodeBody(lib, parallel_code);
    auto parallel_ipc_at = [&](int width) {
        arch::CpuConfig cfg = arch::cortexA15Config();
        cfg.issueWidth = width;
        cfg.fetchWidth = 4;
        return arch::LoopSimulator(cfg, arch::InitState{})
            .run(parallel, 100, 4)
            .ipc;
    };
    EXPECT_GT(parallel_ipc_at(2), parallel_ipc_at(1) * 1.3);
}

INSTANTIATE_TEST_SUITE_P(Bodies, IssueWidthTest,
                         ::testing::Values(7, 8, 9, 10));

// ------------------------------------------------------- model sweeps

class PowerMonotoneTest : public ::testing::TestWithParam<int>
{};

TEST_P(PowerMonotoneTest, PowerTraceIsPositiveAndBracketed)
{
    const auto plat = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = plat->library();
    const auto code =
        randomBody(lib, 25, static_cast<std::uint64_t>(GetParam()));

    arch::LoopSimulator sim(plat->cpu(), plat->initState());
    const arch::SimResult result =
        sim.run(arch::decodeBody(lib, code), 80, 4);
    const power::PowerModel model(plat->energy(), plat->cpu().freqGHz);
    const power::PowerTrace trace = model.trace(result, 1.05, 50.0);

    EXPECT_GT(trace.minWatts, 0.0);
    for (double w : trace.watts) {
        EXPECT_GE(w, trace.minWatts - 1e-12);
        EXPECT_LE(w, trace.peakWatts + 1e-12);
    }
    // Higher temperature -> more leakage -> more total power.
    EXPECT_GT(model.averageWatts(result, 1.05, 90.0),
              model.averageWatts(result, 1.05, 30.0));
    // Higher voltage -> more power.
    EXPECT_GT(model.averageWatts(result, 1.15, 50.0),
              model.averageWatts(result, 0.95, 50.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerMonotoneTest,
                         ::testing::Values(10, 11, 12, 13, 14));

class PdnLinearityTest : public ::testing::TestWithParam<int>
{};

TEST_P(PdnLinearityTest, SupplyShiftTranslatesTrace)
{
    // For any current trace, shifting the supply shifts the whole
    // voltage trace without changing the noise (linearity).
    const pdn::PdnModel model(pdn::athlonPdn());
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<double> amps(4096);
    for (double& a : amps)
        a = 10.0 + 30.0 * rng.nextDouble();

    const pdn::VoltageTrace hi = model.simulateAt(amps, 3.1, 1.35);
    const pdn::VoltageTrace lo = model.simulateAt(amps, 3.1, 1.25);
    EXPECT_NEAR(hi.peakToPeak(), lo.peakToPeak(), 1e-6);
    EXPECT_NEAR(hi.vMin - lo.vMin, 0.1, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdnLinearityTest,
                         ::testing::Values(20, 21, 22));

// ---------------------------------------------------------- GA sweeps

class EngineValidityTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(EngineValidityTest, EveryGenerationHoldsOnlyValidGenomes)
{
    const auto plat = platform::cortexA7Platform();
    const isa::InstructionLibrary& lib = plat->library();
    measure::SimPowerMeasurement meas(lib, plat);
    fitness::DefaultFitness fit;

    core::GaParams params;
    params.populationSize = 12;
    params.individualSize = 10;
    params.mutationRate = 0.15;
    params.generations = 6;
    params.seed = GetParam();

    core::Engine engine(params, lib, meas, fit);
    int generations_seen = 0;
    engine.setGenerationCallback(
        [&](const core::Population& pop, const core::GenerationRecord&) {
            ++generations_seen;
            EXPECT_EQ(pop.individuals.size(), 12u);
            for (const core::Individual& ind : pop.individuals) {
                EXPECT_EQ(ind.code.size(), 10u);
                EXPECT_TRUE(ind.evaluated);
                for (const isa::InstructionInstance& inst : ind.code)
                    EXPECT_TRUE(lib.valid(inst));
            }
        });
    engine.run();
    EXPECT_EQ(generations_seen, 6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineValidityTest,
                         ::testing::Values(101, 102, 103, 104, 105));

class SerializationFuzzTest : public ::testing::TestWithParam<int>
{};

TEST_P(SerializationFuzzTest, RandomPopulationsRoundTrip)
{
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    core::Population pop;
    pop.generation = GetParam();
    const int n = 1 + static_cast<int>(rng.nextBelow(6));
    for (int i = 0; i < n; ++i) {
        core::Individual ind;
        ind.id = rng.next() % 100000;
        ind.fitness = rng.nextDouble() * 100.0 - 50.0;
        ind.evaluated = rng.nextBool(0.5);
        const int meas_count = static_cast<int>(rng.nextBelow(4));
        for (int m = 0; m < meas_count; ++m)
            ind.measurements.push_back(rng.nextDouble() * 10.0);
        const int genes = 1 + static_cast<int>(rng.nextBelow(20));
        for (int g = 0; g < genes; ++g)
            ind.code.push_back(lib.randomInstance(rng));
        pop.individuals.push_back(std::move(ind));
    }

    const core::Population again = core::deserializePopulation(
        lib, core::serializePopulation(lib, pop));
    ASSERT_EQ(again.individuals.size(), pop.individuals.size());
    for (std::size_t i = 0; i < pop.individuals.size(); ++i) {
        EXPECT_EQ(again.individuals[i].code, pop.individuals[i].code);
        EXPECT_EQ(again.individuals[i].measurements,
                  pop.individuals[i].measurements);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest,
                         ::testing::Range(1, 9));

// -------------------------------------------------------- parser fuzz

class XmlFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheParser)
{
    // Crash-safety: byte-level mutations of a valid configuration must
    // either parse or throw FatalError — never corrupt memory or hang.
    const std::string valid = R"(
<gest_configuration>
  <ga population_size="50" individual_size="50" mutation_rate="0.02"/>
  <operands>
    <operand id="mem_result" values="x2 x3 x4" type="register"/>
    <operand id="imm" min="0" max="256" stride="8" type="immediate"/>
  </operands>
  <instructions>
    <instruction name="LDR" operand1="mem_result" operand2="imm"
        format="LDR op1, #op2" type="mem"/>
  </instructions>
</gest_configuration>
)";
    Rng rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        std::string mutated = valid;
        const int edits = 1 + static_cast<int>(rng.nextBelow(8));
        for (int e = 0; e < edits; ++e) {
            const std::size_t pos = rng.pickIndex(mutated.size());
            switch (rng.nextBelow(3)) {
              case 0: // flip to a random printable byte
                mutated[pos] = static_cast<char>(
                    32 + rng.nextBelow(95));
                break;
              case 1: // delete a byte
                mutated.erase(pos, 1);
                break;
              default: // duplicate a byte
                mutated.insert(pos, 1, mutated[pos]);
                break;
            }
            if (mutated.empty())
                mutated = "<x/>";
        }
        try {
            (void)xml::parse(mutated, "fuzz");
        } catch (const FatalError&) {
            // Rejecting is the expected outcome for most mutations.
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest,
                         ::testing::Values(1001, 1002, 1003, 1004));

class ConfigFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ConfigFuzzTest, MutatedConfigsNeverCrashTheLoader)
{
    // One level up: the full configuration loader on structurally valid
    // XML with randomized attribute values.
    Rng rng(GetParam());
    for (int trial = 0; trial < 60; ++trial) {
        auto num = [&] { return std::to_string(rng.nextRange(-5, 400)); };
        const std::string text =
            "<gest_configuration>"
            "<ga population_size=\"" + num() +
            "\" individual_size=\"" + num() +
            "\" mutation_rate=\"" +
            std::to_string(rng.nextDouble() * 3.0 - 1.0) +
            "\" tournament_size=\"" + num() +
            "\" generations=\"" + num() + "\"/>"
            "<operands><operand id=\"a\" type=\"register\" values=\"" +
            std::string(rng.nextBool(0.5) ? "x1 x2" : "bogus") +
            "\"/>"
            "<operand id=\"b\" type=\"immediate\" min=\"" + num() +
            "\" max=\"" + num() + "\" stride=\"" + num() + "\"/>"
            "</operands>"
            "<instructions><instruction name=\"I\" operand1=\"" +
            std::string(rng.nextBool(0.8) ? "a" : "missing") +
            "\" format=\"ADD op1\" type=\"int\"/></instructions>"
            "</gest_configuration>";
        try {
            (void)config::parseConfig(text);
        } catch (const FatalError&) {
            // Invalid combinations must be rejected, not crash.
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzzTest,
                         ::testing::Values(2001, 2002, 2003));

} // namespace
} // namespace gest
