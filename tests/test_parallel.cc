/**
 * @file
 * Tests for the parallel-evaluation subsystem: the thread pool, the
 * genome-keyed fitness cache, Measurement::clone() across every bundled
 * measurement class, and the engine-level determinism guarantee that a
 * serial run and a multi-threaded run with the same seed produce
 * identical histories and best genomes. Build with
 * -DGEST_SANITIZE=thread to run these under TSan.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>

#include "config/config.hh"
#include "core/engine.hh"
#include "core/fitness_cache.hh"
#include "isa/standard_libs.hh"
#include "measure/noisy_measurement.hh"
#include "measure/sim_measurements.hh"
#include "native/native_measurement.hh"
#include "platform/platform.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace gest {
namespace {

using core::Engine;
using core::FitnessCache;
using core::GaParams;
using core::Individual;
using core::Population;
using util::ThreadPool;

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4);

    std::vector<std::atomic<int>> seen(257);
    pool.parallelFor(seen.size(), [&](std::size_t i, int worker) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, 4);
        seen[i].fetch_add(1);
    });
    for (const std::atomic<int>& count : seen)
        EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCallsAndOddSizes)
{
    ThreadPool pool(3);
    for (std::size_t count : {std::size_t{0}, std::size_t{1},
                              std::size_t{2}, std::size_t{100}}) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(count, [&](std::size_t i, int) {
            sum.fetch_add(i + 1);
        });
        EXPECT_EQ(sum.load(), count * (count + 1) / 2);
    }
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(8,
                                  [&](std::size_t i, int) {
                                      if (i == 5)
                                          fatal("boom");
                                  }),
                 FatalError);
    // The pool survives a failed job.
    std::atomic<int> ran{0};
    pool.parallelFor(4, [&](std::size_t, int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, RejectsNonPositiveWorkerCounts)
{
    EXPECT_THROW(ThreadPool(0), FatalError);
    EXPECT_THROW(ThreadPool(-2), FatalError);
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

// --------------------------------------------------------------- cache

std::vector<isa::InstructionInstance>
randomGenome(const isa::InstructionLibrary& lib, int size,
             std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < size; ++i)
        code.push_back(lib.randomInstance(rng));
    return code;
}

TEST(FitnessCache, GenomeHashIsContentKeyed)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto a = randomGenome(lib, 20, 1);
    const auto b = randomGenome(lib, 20, 2);
    auto a_copy = a;
    EXPECT_EQ(core::genomeHash(a), core::genomeHash(a_copy));
    EXPECT_NE(core::genomeHash(a), core::genomeHash(b));

    // A one-operand tweak must change the hash.
    auto mutated = a;
    mutated[3].operandChoice[0] ^= 1u;
    EXPECT_NE(core::genomeHash(a), core::genomeHash(mutated));
}

TEST(FitnessCache, ReturnsWhatWasInserted)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    FitnessCache cache(8);
    const auto code = randomGenome(lib, 10, 3);
    EXPECT_EQ(cache.lookup(code), nullptr);
    cache.insert(code, {{1.5, 2.5}, 1.5});

    const FitnessCache::Entry* entry = cache.lookup(code);
    ASSERT_NE(entry, nullptr);
    EXPECT_DOUBLE_EQ(entry->fitness, 1.5);
    EXPECT_EQ(entry->measurements, (std::vector<double>{1.5, 2.5}));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(FitnessCache, EvictsLeastRecentlyUsed)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    FitnessCache cache(2);
    const auto a = randomGenome(lib, 10, 10);
    const auto b = randomGenome(lib, 10, 11);
    const auto c = randomGenome(lib, 10, 12);
    cache.insert(a, {{}, 1.0});
    cache.insert(b, {{}, 2.0});
    ASSERT_NE(cache.lookup(a), nullptr); // a is now MRU
    cache.insert(c, {{}, 3.0});          // evicts b
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.lookup(a), nullptr);
    EXPECT_EQ(cache.lookup(b), nullptr);
    EXPECT_NE(cache.lookup(c), nullptr);
}

TEST(FitnessCache, RejectsZeroCapacity)
{
    EXPECT_THROW(FitnessCache(0), FatalError);
}

// ---------------------------------------------- cloneable measurements

/**
 * Deterministic, cloneable measurement whose call counter is shared
 * across clones, so tests can count how many measurements actually ran
 * regardless of which worker ran them.
 */
class CountingMeasurement : public measure::Measurement
{
  public:
    explicit CountingMeasurement(
        std::shared_ptr<std::atomic<int>> calls =
            std::make_shared<std::atomic<int>>(0))
        : _calls(std::move(calls))
    {}

    measure::MeasurementResult
    measure(const std::vector<isa::InstructionInstance>& code) override
    {
        _calls->fetch_add(1);
        double value = 0.0;
        for (const isa::InstructionInstance& inst : code)
            value += static_cast<double>(inst.defIndex) + 1.0;
        return {{value}};
    }

    std::vector<std::string> valueNames() const override
    {
        return {"value"};
    }

    std::string name() const override { return "CountingMeasurement"; }

    std::unique_ptr<Measurement> clone() const override
    {
        return std::make_unique<CountingMeasurement>(_calls);
    }

    int calls() const { return _calls->load(); }

  private:
    std::shared_ptr<std::atomic<int>> _calls;
};

/** A measurement that keeps the default (nullptr) clone(). */
class UncloneableMeasurement : public measure::Measurement
{
  public:
    measure::MeasurementResult
    measure(const std::vector<isa::InstructionInstance>&) override
    {
        return {{1.0}};
    }
    std::vector<std::string> valueNames() const override
    {
        return {"one"};
    }
    std::string name() const override
    {
        return "UncloneableMeasurement";
    }
};

TEST(MeasurementClone, SimClassesRoundTripConfiguration)
{
    const xml::Document doc =
        xml::parse("<config min_cycles=\"512\"/>");

    struct Case
    {
        std::unique_ptr<measure::Measurement> original;
        std::shared_ptr<const platform::Platform> plat;
    };
    std::vector<Case> cases;
    {
        const auto a15 = platform::cortexA15Platform();
        cases.push_back({std::make_unique<measure::SimPowerMeasurement>(
                             a15->library(), a15),
                         a15});
        cases.push_back({std::make_unique<measure::SimIpcMeasurement>(
                             a15->library(), a15),
                         a15});
        const auto athlon = platform::athlonX4Platform();
        cases.push_back(
            {std::make_unique<measure::SimVoltageNoiseMeasurement>(
                 athlon->library(), athlon),
             athlon});
        const auto llc = platform::xgene2LlcPlatform();
        cases.push_back(
            {std::make_unique<measure::SimCacheMissMeasurement>(
                 llc->library(), llc),
             llc});
    }

    for (Case& c : cases) {
        c.original->init(&doc.root());
        const std::unique_ptr<measure::Measurement> copy =
            c.original->clone();
        ASSERT_NE(copy, nullptr) << c.original->name();
        EXPECT_EQ(copy->name(), c.original->name());
        EXPECT_EQ(copy->valueNames(), c.original->valueNames());

        const auto code = randomGenome(c.plat->library(), 20, 99);
        EXPECT_EQ(copy->measure(code).values,
                  c.original->measure(code).values)
            << c.original->name();
    }
}

TEST(MeasurementClone, TemperatureKeepsTransientWindow)
{
    const auto a15 = platform::cortexA15Platform();
    measure::SimTemperatureMeasurement meas(a15->library(), a15);
    const xml::Document doc = xml::parse(
        "<config min_cycles=\"512\" transient_seconds=\"0.5\"/>");
    meas.init(&doc.root());

    const std::unique_ptr<measure::Measurement> copy = meas.clone();
    ASSERT_NE(copy, nullptr);
    const auto code = randomGenome(a15->library(), 20, 7);
    EXPECT_EQ(copy->measure(code).values, meas.measure(code).values);
}

TEST(MeasurementClone, NoisyKeepsSigmaAndDrawsIndependentStreams)
{
    const auto a15 = platform::cortexA15Platform();
    measure::NoisyMeasurement noisy(
        std::make_unique<measure::SimPowerMeasurement>(a15->library(),
                                                       a15),
        0.05, 42);

    const std::unique_ptr<measure::Measurement> c1 = noisy.clone();
    const std::unique_ptr<measure::Measurement> c2 = noisy.clone();
    ASSERT_NE(c1, nullptr);
    ASSERT_NE(c2, nullptr);
    EXPECT_EQ(c1->name(), noisy.name());
    EXPECT_DOUBLE_EQ(
        static_cast<measure::NoisyMeasurement*>(c1.get())
            ->relativeSigma(),
        0.05);

    // Distinct clones draw distinct noise streams.
    const auto code = randomGenome(a15->library(), 20, 13);
    EXPECT_NE(c1->measure(code).values, c2->measure(code).values);
}

TEST(MeasurementClone, NoisyWithUncloneableInnerReturnsNull)
{
    measure::NoisyMeasurement noisy(
        std::make_unique<UncloneableMeasurement>(), 0.1);
    EXPECT_EQ(noisy.clone(), nullptr);
}

TEST(MeasurementClone, NativePerfClonesRunnerAndOptions)
{
    const isa::InstructionLibrary lib = isa::x86LikeLibrary();
    native::NativePerfMeasurement meas(lib);
    const std::unique_ptr<measure::Measurement> copy = meas.clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->name(), meas.name());
    EXPECT_EQ(copy->valueNames(), meas.valueNames());
}

// -------------------------------------------------------------- engine

GaParams
smallParams(std::uint64_t seed, int population = 10, int generations = 4)
{
    GaParams params;
    params.populationSize = population;
    params.individualSize = 12;
    params.mutationRate = 0.08;
    params.generations = generations;
    params.tournamentSize = 3;
    params.seed = seed;
    return params;
}

void
expectSameHistory(const std::vector<core::GenerationRecord>& a,
                  const std::vector<core::GenerationRecord>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].generation, b[i].generation);
        EXPECT_EQ(a[i].bestFitness, b[i].bestFitness) << "gen " << i;
        EXPECT_EQ(a[i].averageFitness, b[i].averageFitness)
            << "gen " << i;
        EXPECT_EQ(a[i].bestId, b[i].bestId) << "gen " << i;
        EXPECT_EQ(a[i].bestUniqueInstructions,
                  b[i].bestUniqueInstructions);
        EXPECT_EQ(a[i].diversity, b[i].diversity) << "gen " << i;
    }
}

TEST(ParallelEngine, MatchesSerialHistoryAndBestGenomeAcrossSeeds)
{
    const auto a15 = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = a15->library();
    const xml::Document doc =
        xml::parse("<config min_cycles=\"256\"/>");
    fitness::DefaultFitness fit;

    for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
        measure::SimPowerMeasurement serial_meas(lib, a15);
        serial_meas.init(&doc.root());
        Engine serial(smallParams(seed), lib, serial_meas, fit);
        serial.run();

        GaParams par_params = smallParams(seed);
        par_params.threads = 4;
        measure::SimPowerMeasurement par_meas(lib, a15);
        par_meas.init(&doc.root());
        Engine parallel(par_params, lib, par_meas, fit);
        parallel.run();

        expectSameHistory(serial.history(), parallel.history());
        EXPECT_EQ(serial.bestEver().code, parallel.bestEver().code);
        EXPECT_EQ(serial.bestEver().id, parallel.bestEver().id);
        EXPECT_EQ(serial.evaluations(), parallel.evaluations());
    }
}

TEST(ParallelEngine, CacheDoesNotChangeResultsOfPureMeasurements)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;

    CountingMeasurement plain_meas;
    Engine plain(smallParams(5, 12, 6), lib, plain_meas, fit);
    plain.run();

    GaParams cached_params = smallParams(5, 12, 6);
    cached_params.fitnessCacheSize = 256;
    CountingMeasurement cached_meas;
    Engine cached(cached_params, lib, cached_meas, fit);
    cached.run();

    expectSameHistory(plain.history(), cached.history());
    EXPECT_EQ(plain.bestEver().code, cached.bestEver().code);
    // The cache can only reduce the number of measurements.
    EXPECT_LE(cached_meas.calls(), plain_meas.calls());
    EXPECT_EQ(cached.cacheMisses(),
              static_cast<std::uint64_t>(cached_meas.calls()));
}

TEST(ParallelEngine, CacheReturnsIdenticalFitnessForDuplicatedGenomes)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;

    GaParams params = smallParams(3, 6, 1);
    params.individualSize = 8;
    params.fitnessCacheSize = 64;

    // Seed population: three copies of A, two of B, one C.
    const auto a = randomGenome(lib, 8, 101);
    const auto b = randomGenome(lib, 8, 102);
    const auto c = randomGenome(lib, 8, 103);
    Population seed;
    int id = 1;
    for (const auto* genome : {&a, &a, &a, &b, &b, &c}) {
        Individual ind;
        ind.code = *genome;
        ind.id = static_cast<std::uint64_t>(id++);
        seed.individuals.push_back(std::move(ind));
    }

    CountingMeasurement meas;
    Engine engine(params, lib, meas, fit);
    engine.setSeedPopulation(std::move(seed));
    engine.initialize();

    EXPECT_EQ(meas.calls(), 3); // one per unique genome
    const auto& inds = engine.population().individuals;
    EXPECT_EQ(inds[0].fitness, inds[1].fitness);
    EXPECT_EQ(inds[0].fitness, inds[2].fitness);
    EXPECT_EQ(inds[0].measurements, inds[2].measurements);
    EXPECT_EQ(inds[3].fitness, inds[4].fitness);
    EXPECT_EQ(engine.history()[0].cacheHits, 3u);
    EXPECT_EQ(engine.history()[0].cacheMisses, 3u);
    EXPECT_EQ(engine.evaluations(), 3u);
}

TEST(ParallelEngine, ParallelWithCacheStillMatchesSerial)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;

    CountingMeasurement serial_meas;
    Engine serial(smallParams(11, 10, 5), lib, serial_meas, fit);
    serial.run();

    GaParams params = smallParams(11, 10, 5);
    params.threads = 3;
    params.fitnessCacheSize = 128;
    CountingMeasurement par_meas;
    Engine parallel(params, lib, par_meas, fit);
    parallel.run();

    expectSameHistory(serial.history(), parallel.history());
    EXPECT_EQ(serial.bestEver().code, parallel.bestEver().code);
}

TEST(ParallelEngine, RequiresCloneableMeasurement)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;
    UncloneableMeasurement meas;
    GaParams params = smallParams(1, 6, 2);
    params.threads = 2;
    Engine engine(params, lib, meas, fit);
    EXPECT_THROW(engine.initialize(), FatalError);
}

TEST(ParallelEngine, BestEverIsNotRecopiedOnFitnessTies)
{
    // Constant fitness: every individual ties, so _bestEver must keep
    // the generation-0 champion instead of re-copying every generation.
    class ConstantMeasurement : public measure::Measurement
    {
      public:
        measure::MeasurementResult
        measure(const std::vector<isa::InstructionInstance>&) override
        {
            return {{1.0}};
        }
        std::vector<std::string> valueNames() const override
        {
            return {"c"};
        }
        std::string name() const override { return "Constant"; }
    };

    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    fitness::DefaultFitness fit;
    ConstantMeasurement meas;
    GaParams params = smallParams(2, 8, 5);
    params.elitism = false; // new ids every generation
    Engine engine(params, lib, meas, fit);
    engine.run();
    EXPECT_EQ(engine.bestEver().id, engine.history()[0].bestId);
}

// -------------------------------------------------------------- config

TEST(ParallelConfig, ParsesThreadsAndCacheSize)
{
    const config::RunConfig cfg = config::parseConfig(R"(
<gest_configuration>
  <ga population_size="10" individual_size="10" threads="3"
      fitness_cache_size="128"/>
  <library name="arm"/>
</gest_configuration>
)");
    EXPECT_EQ(cfg.ga.threads, 3);
    EXPECT_EQ(cfg.ga.fitnessCacheSize, 128);
}

TEST(ParallelConfig, DefaultsAreSerialAndUncached)
{
    const config::RunConfig cfg = config::parseConfig(
        "<gest_configuration><library name=\"arm\"/>"
        "</gest_configuration>");
    EXPECT_EQ(cfg.ga.threads, 1);
    EXPECT_EQ(cfg.ga.fitnessCacheSize, 0);
}

TEST(ParallelConfig, RejectsBadThreadValues)
{
    const auto config_with = [](const std::string& ga_attrs) {
        return "<gest_configuration><ga " + ga_attrs +
               "/><library name=\"arm\"/></gest_configuration>";
    };
    EXPECT_THROW(config::parseConfig(config_with("threads=\"0\"")),
                 FatalError);
    EXPECT_THROW(config::parseConfig(config_with("threads=\"-4\"")),
                 FatalError);
    EXPECT_THROW(config::parseConfig(config_with("threads=\"many\"")),
                 FatalError);
    EXPECT_THROW(
        config::parseConfig(config_with("fitness_cache_size=\"-1\"")),
        FatalError);
    EXPECT_THROW(
        config::parseConfig(config_with("fitness_cache_size=\"big\"")),
        FatalError);
}

} // namespace
} // namespace gest
