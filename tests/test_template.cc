/**
 * @file
 * Unit tests for the template source-file handling (§III.B.2).
 */

#include <gtest/gtest.h>

#include "isa/asm_template.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace isa {
namespace {

TEST(AsmTemplate, SubstitutesLoopCode)
{
    const AsmTemplate tmpl("prologue\nloop:\n#loop_code\nb loop\n");
    const std::string out = tmpl.render({"ADD x1, x2, x3", "NOP"});
    EXPECT_EQ(out, "prologue\nloop:\nADD x1, x2, x3\nNOP\nb loop\n");
}

TEST(AsmTemplate, PreservesMarkerIndentation)
{
    const AsmTemplate tmpl("loop:\n    #loop_code\n    b loop\n");
    const std::string out = tmpl.render({"NOP"});
    EXPECT_EQ(out, "loop:\n    NOP\n    b loop\n");
}

TEST(AsmTemplate, EmptyBodyRendersTemplateOnly)
{
    const AsmTemplate tmpl("a\n#loop_code\nb");
    EXPECT_EQ(tmpl.render({}), "a\nb");
}

TEST(AsmTemplate, FixedCodeAroundMarkerSurvives)
{
    // §III.B.2: the user can keep fixed loop code (e.g. NOP padding)
    // around the marker.
    const AsmTemplate tmpl("loop:\nNOP\n#loop_code\nNOP\nb loop\n");
    const std::string out = tmpl.render({"MUL x4, x5, x6"});
    EXPECT_EQ(out, "loop:\nNOP\nMUL x4, x5, x6\nNOP\nb loop\n");
}

TEST(AsmTemplate, MissingMarkerIsFatal)
{
    EXPECT_THROW(AsmTemplate("no marker here\n"), FatalError);
}

TEST(AsmTemplate, DuplicateMarkerIsFatal)
{
    EXPECT_THROW(AsmTemplate("#loop_code\n#loop_code\n"), FatalError);
}

TEST(AsmTemplate, FromFile)
{
    const std::string dir = makeTempDir("gest-tmpl");
    writeFile(dir + "/t.s", "init\n#loop_code\nend\n");
    const AsmTemplate tmpl = AsmTemplate::fromFile(dir + "/t.s");
    EXPECT_EQ(tmpl.render({"X"}), "init\nX\nend\n");
    EXPECT_EQ(tmpl.text(), "init\n#loop_code\nend\n");
    removeAll(dir);
}

TEST(AsmTemplate, MarkerOnFirstAndLastLine)
{
    EXPECT_EQ(AsmTemplate("#loop_code\ntail").render({"A"}), "A\ntail");
    EXPECT_EQ(AsmTemplate("head\n#loop_code").render({"A"}), "head\nA\n");
}

} // namespace
} // namespace isa
} // namespace gest
