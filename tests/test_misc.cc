/**
 * @file
 * Edge-case coverage across modules: mutation-operator extremes,
 * numeric boundaries, empty inputs, registry consistency.
 */

#include <gtest/gtest.h>

#include "arch/simulator.hh"
#include "config/config.hh"
#include "core/operators.hh"
#include "measure/sim_measurements.hh"
#include "output/run_writer.hh"
#include "output/stats.hh"
#include "pdn/spectrum.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace {

TEST(Operators, OperandOnlyMutationNeverChangesOpcodes)
{
    // operandMutationProb = 1: mutations rewrite operands of genes that
    // have operands, never the instruction identity. (Operand-less
    // genes like NOP fall back to whole-instruction replacement, so
    // use an operand-carrying gene here.)
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    core::GaParams params;
    params.mutationRate = 1.0;
    params.operandMutationProb = 1.0;
    Rng rng(3);

    const std::size_t ldr_index =
        static_cast<std::size_t>(lib.findInstruction("LDR"));
    core::Individual ind;
    for (int i = 0; i < 30; ++i)
        ind.code.push_back(lib.randomInstanceOf(ldr_index, rng));

    core::mutate(ind, lib, params, rng);
    for (const auto& inst : ind.code)
        EXPECT_EQ(inst.defIndex, static_cast<std::uint32_t>(ldr_index));
}

TEST(Operators, WholeInstructionMutationChangesMostOpcodes)
{
    // operandMutationProb = 0: every mutation replaces the whole
    // instruction; over a rich alphabet most defIndexes change.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    core::GaParams params;
    params.mutationRate = 1.0;
    params.operandMutationProb = 0.0;
    Rng rng(4);

    core::Individual ind;
    const std::size_t add_index = static_cast<std::size_t>(
        lib.findInstruction("ADD"));
    for (int i = 0; i < 40; ++i)
        ind.code.push_back(lib.randomInstanceOf(add_index, rng));

    core::mutate(ind, lib, params, rng);
    int changed = 0;
    for (const auto& inst : ind.code)
        changed += inst.defIndex != add_index;
    EXPECT_GT(changed, 25);
}

TEST(GaParams, DidtLoopLengthClampsToMinimum)
{
    // Absurdly high resonance frequency: the rule clamps at 2.
    EXPECT_EQ(core::GaParams::didtLoopLength(0.5, 0.001, 1e9), 2);
}

TEST(Xml, NumericCharacterReferenceBoundaries)
{
    EXPECT_EQ(xml::parse("<t>&#65;&#x41;</t>").root().text(), "AA");
    EXPECT_EQ(xml::parse("<t>&#127;</t>").root().text(),
              std::string(1, static_cast<char>(127)));
    EXPECT_THROW(xml::parse("<t>&#0;</t>"), FatalError);
    EXPECT_THROW(xml::parse("<t>&#200;</t>"), FatalError);
}

TEST(Xml, DeeplyNestedDocumentParses)
{
    std::string text;
    const int depth = 200;
    for (int i = 0; i < depth; ++i)
        text += "<n>";
    for (int i = 0; i < depth; ++i)
        text += "</n>";
    const xml::Document doc = xml::parse(text);
    const xml::Element* node = &doc.root();
    int counted = 1;
    while (!node->children().empty()) {
        node = node->children().front().get();
        ++counted;
    }
    EXPECT_EQ(counted, depth);
}

TEST(Stats, EmptySummaryTableHasHeaderOnly)
{
    const std::string table = output::formatSummaryTable({});
    EXPECT_NE(table.find("best_fitness"), std::string::npos);
    EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 1);
}

TEST(Fitness, WeightedSumInitWithoutConfigKeepsDefault)
{
    fitness::WeightedSumFitness fit;
    fit.init(nullptr);
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    core::Individual ind;
    ind.measurements = {7.5};
    ind.code.push_back(lib.makeInstance("NOP", {}));
    EXPECT_DOUBLE_EQ(fit.getFitness(ind, lib), 7.5);
}

TEST(Measure, EveryRegisteredMeasurementHasConsistentNames)
{
    config::registerBuiltins();
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    for (const std::string& name :
         measure::MeasurementRegistry::instance().names()) {
        const auto meas =
            measure::MeasurementRegistry::instance().create(name, lib);
        EXPECT_FALSE(meas->valueNames().empty()) << name;
        EXPECT_FALSE(meas->name().empty()) << name;
    }
}

TEST(Simulator, AddWrapWorksWithoutL2)
{
    // The wraparound advance is usable on L1-only platforms too: the
    // pointer still stays inside the buffer.
    const isa::InstructionLibrary lib = isa::armCacheStressLibrary();
    const std::vector<isa::InstructionInstance> code = {
        lib.makeInstance("ADVANCE", {"x10", "4032"}),
        lib.makeInstance("LDR", {"x2", "x10", "0"}),
    };
    arch::InitState init;
    init.bufferBytes = 1u << 16; // 64 KiB, bigger than the A15 L1
    arch::LoopSimulator sim(arch::cortexA15Config(), init);
    const arch::SimResult result =
        sim.run(arch::decodeBody(lib, code), 2000, 8);
    // Without an L2, every L1 miss pays the flat miss latency and the
    // counters stay consistent.
    EXPECT_EQ(result.l2Accesses, 0u);
    EXPECT_LT(result.l1HitRate(), 0.5);
    EXPECT_GT(result.ipc, 0.0);
}

TEST(Simulator, WarmupLongerThanRunIsClamped)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = arch::decodeBody(
        lib, {lib.makeInstance("ADD", {"x4", "x5", "x6"})});
    arch::LoopSimulator sim(arch::cortexA15Config(), arch::InitState{});
    // warmup >= iterations must still measure something.
    const arch::SimResult result = sim.run(body, 3, 10);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.cycles, 0u);
}

TEST(Spectrum, ShortTraceStillSane)
{
    const std::vector<double> tiny{1.0, 2.0, 1.0, 2.0};
    const double amp = pdn::toneAmplitude(tiny, 4.0, 1.0);
    EXPECT_GE(amp, 0.0);
    EXPECT_LT(amp, 2.0);
}

TEST(Config, GaStagnationLimitFromXml)
{
    const config::RunConfig cfg = config::parseConfig(R"(
<gest_configuration>
  <ga stagnation_limit="7"/>
  <library name="arm"/>
</gest_configuration>
)");
    EXPECT_EQ(cfg.ga.stagnationLimit, 7);
    EXPECT_THROW(config::parseConfig(R"(
<gest_configuration>
  <ga stagnation_limit="-2"/>
  <library name="arm"/>
</gest_configuration>
)"),
                 FatalError);
}

TEST(Config, Armv7AndCacheStressBundledLibraries)
{
    const config::RunConfig v7 = config::parseConfig(
        "<gest_configuration><library name=\"armv7\"/>"
        "</gest_configuration>");
    EXPECT_GE(v7.library.findInstruction("VMLAQ"), 0);

    const config::RunConfig cs = config::parseConfig(
        "<gest_configuration><library name=\"cache-stress\"/>"
        "</gest_configuration>");
    EXPECT_GE(cs.library.findInstruction("ADVANCE"), 0);
}

TEST(Output, NegativeMeasurementsInFileNames)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const std::string dir = makeTempDir("gest-misc");
    output::RunWriter writer(dir, lib);
    core::Individual ind;
    ind.id = 2;
    ind.measurements = {-1.5, 0.0};
    Rng rng(5);
    ind.code.push_back(lib.randomInstance(rng));
    EXPECT_EQ(writer.individualFileName(3, ind), "3_2_-1.50_0.00.txt");
    removeAll(dir);
}

} // namespace
} // namespace gest
