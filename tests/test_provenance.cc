/**
 * @file
 * Tests of the provenance + audit layer: SHA-256 primitives, canonical
 * configuration hashing, population digests, the manifest round-trip,
 * replay verification (clean, tampered, seed drift) and cross-run
 * comparison, plus the permutation test behind `gest compare`'s perf
 * significance check.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "config/config.hh"
#include "core/population.hh"
#include "isa/standard_libs.hh"
#include "provenance/compare.hh"
#include "provenance/digest.hh"
#include "provenance/manifest.hh"
#include "provenance/provenance.hh"
#include "provenance/verify.hh"
#include "stats/resample.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/sha256.hh"
#include "util/strutil.hh"

namespace gest {
namespace {

const char* kRunConfig = R"(
<gest_configuration>
  <ga population_size="8" individual_size="6" mutation_rate="0.1"
      generations="4" seed="17" fitness_cache_size="32"/>
  <library name="arm"/>
  <measurement class="SimPowerMeasurement">
    <config platform="cortex-a7" min_cycles="1024"/>
  </measurement>
  <fitness class="DefaultFitness"/>
</gest_configuration>
)";

config::RunConfig
runConfigInto(const std::string& out_dir)
{
    config::RunConfig cfg = config::parseConfig(kRunConfig);
    cfg.outputDirectory = out_dir;
    return cfg;
}

/** A deterministic evaluated population for digest tests. */
core::Population
testPopulation(const isa::InstructionLibrary& lib, int count, int genes,
               std::uint64_t first_id)
{
    core::Population pop;
    for (int i = 0; i < count; ++i) {
        core::Individual ind;
        ind.id = first_id + static_cast<std::uint64_t>(i);
        Rng rng(ind.id * 977 + 13);
        for (int g = 0; g < genes; ++g)
            ind.code.push_back(lib.randomInstance(rng));
        ind.measurements = {1.0 + i, 0.5 * i};
        ind.fitness = 1.0 + 0.25 * i;
        ind.evaluated = true;
        pop.individuals.push_back(ind);
    }
    return pop;
}

// ---------------------------------------------------------------------
// SHA-256 (FIPS 180-4 vectors).

TEST(Sha256, KnownVectors)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlm"
                        "nomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, IncrementalUpdatesMatchOneShot)
{
    std::string text;
    for (int i = 0; i < 1000; ++i)
        text += "block " + std::to_string(i) + "\n";

    Sha256 hasher;
    // Uneven chunk sizes exercise the 64-byte block buffering.
    std::size_t pos = 0;
    std::size_t chunk = 1;
    while (pos < text.size()) {
        const std::size_t n = std::min(chunk, text.size() - pos);
        hasher.update(std::string_view(text).substr(pos, n));
        pos += n;
        chunk = chunk * 3 + 1;
    }
    EXPECT_EQ(hasher.finishHex(), sha256Hex(text));
}

TEST(Sha256, FileHashingMatchesInMemory)
{
    const std::string dir = makeTempDir("gest-sha");
    std::string payload;
    for (int i = 0; i < 70000; ++i)  // spans the 64KB read chunk
        payload += static_cast<char>('a' + i % 26);
    writeFile(dir + "/payload.bin", payload);

    std::string hex;
    ASSERT_TRUE(sha256File(dir + "/payload.bin", hex));
    EXPECT_EQ(hex, sha256Hex(payload));

    EXPECT_FALSE(sha256File(dir + "/absent.bin", hex));
    removeAll(dir);
}

// ---------------------------------------------------------------------
// Canonical configuration hashing.

TEST(CanonicalConfigHash, InvariantToFormattingAndAttributeOrder)
{
    const std::string a =
        "<gest_configuration>\n"
        "  <ga population_size=\"8\" generations=\"4\" seed=\"1\"/>\n"
        "  <library name=\"arm\"/>\n"
        "</gest_configuration>\n";
    // Same semantics: attribute order shuffled, whitespace reflowed,
    // a comment added.
    const std::string b =
        "<gest_configuration><!-- reformatted -->"
        "<ga seed=\"1\" generations=\"4\" population_size=\"8\"/>"
        "<library name=\"arm\"/></gest_configuration>";
    EXPECT_EQ(provenance::canonicalConfigHash(a),
              provenance::canonicalConfigHash(b));

    // Any semantic change changes the hash.
    const std::string c = replaceAll(a, "seed=\"1\"", "seed=\"2\"");
    EXPECT_NE(provenance::canonicalConfigHash(a),
              provenance::canonicalConfigHash(c));

    // Child-element order is semantic (<instructions> sequences).
    const std::string d =
        "<gest_configuration>"
        "<library name=\"arm\"/>"
        "<ga population_size=\"8\" generations=\"4\" seed=\"1\"/>"
        "</gest_configuration>";
    EXPECT_NE(provenance::canonicalConfigHash(a),
              provenance::canonicalConfigHash(d));

    EXPECT_THROW(provenance::canonicalConfigHash("<broken"), FatalError);
}

// ---------------------------------------------------------------------
// Population digests.

TEST(PopulationDigest, IgnoresGenerationNumberButNotContent)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    core::Population pop = testPopulation(lib, 6, 5, /*first_id=*/1);
    pop.generation = 3;

    core::Population renumbered = pop;
    renumbered.generation = 0;
    EXPECT_EQ(provenance::populationDigest(lib, pop),
              provenance::populationDigest(lib, renumbered));

    core::Population changed = pop;
    changed.individuals[0].fitness += 1.0;
    EXPECT_NE(provenance::populationDigest(lib, pop),
              provenance::populationDigest(lib, changed));

    core::Population reordered = pop;
    std::swap(reordered.individuals[0], reordered.individuals[1]);
    EXPECT_NE(provenance::populationDigest(lib, pop),
              provenance::populationDigest(lib, reordered));
}

TEST(PopulationDigest, LedgerRoundTripsThroughLoadDigests)
{
    const std::string dir = makeTempDir("gest-digest");
    const isa::InstructionLibrary lib = isa::armLikeLibrary();

    provenance::DigestLedger ledger(dir, lib);
    std::vector<std::string> written;
    for (int gen = 0; gen < 3; ++gen) {
        core::Population pop =
            testPopulation(lib, 6, 5, gen * 10 + 1);
        pop.generation = gen;
        core::GenerationRecord record;
        record.generation = gen;
        record.bestFitness = 1.5 + gen;
        ledger.append(pop, record);
        written.push_back(provenance::populationDigest(lib, pop));
    }
    EXPECT_EQ(ledger.rowsSealed(), 3u);

    std::vector<provenance::DigestRow> rows;
    std::string error;
    ASSERT_TRUE(provenance::loadDigests(dir, rows, &error)) << error;
    ASSERT_EQ(rows.size(), 3u);
    for (int gen = 0; gen < 3; ++gen) {
        EXPECT_EQ(rows[gen].generation, gen);
        EXPECT_DOUBLE_EQ(rows[gen].bestFitness, 1.5 + gen);
        EXPECT_EQ(rows[gen].digest, written[gen]);
    }

    EXPECT_FALSE(
        provenance::loadDigests(dir + "/absent", rows, &error));
    EXPECT_NE(error.find("digests.csv"), std::string::npos);
    removeAll(dir);
}

// ---------------------------------------------------------------------
// Manifest round-trip.

TEST(Manifest, FormatsAndReloadsLosslessly)
{
    const std::string dir = makeTempDir("gest-manifest");
    provenance::Manifest m;
    m.configHash = sha256Hex("config");
    m.configBaseDir = "/work/configs";
    m.measurementClass = "SimPowerMeasurement";
    m.fitnessClass = "DefaultFitness";
    m.hasSeed = true;
    // Larger than 2^53: survives only because the seed is serialized
    // as a JSON string, not a double.
    m.seed = 0xdeadbeefcafef00dULL;
    m.rngGenerator = provenance::rngGeneratorId;
    m.populationSize = 50;
    m.individualSize = 40;
    m.generations = 100;
    m.threads = 4;
    m.fitnessCacheSize = 1024;
    m.elitism = true;
    provenance::fillBuildInfo(m);
    m.steadyStateOverride = false;
    m.waveformTopK = 2;
    m.recordStats = false;
    m.generationsCompleted = 100;
    m.evaluations = 12345;
    m.bestFitness = 3.25;
    m.bestId = 4242;
    m.digestsSealed = 100;
    m.digestMsTotal = 12.5;
    m.artifacts.push_back(
        {"history.csv", sha256Hex("rows"), 1234, "history"});
    m.artifacts.push_back(
        {"population_0.pop", sha256Hex("pop"), 99, "population"});

    writeFile(dir + "/manifest.json", provenance::formatManifest(m));

    provenance::Manifest loaded;
    std::string error;
    ASSERT_TRUE(provenance::loadManifest(dir, loaded, &error)) << error;
    EXPECT_EQ(loaded.version, provenance::manifestVersion);
    EXPECT_EQ(loaded.configHash, m.configHash);
    EXPECT_EQ(loaded.configBaseDir, m.configBaseDir);
    EXPECT_EQ(loaded.measurementClass, m.measurementClass);
    EXPECT_EQ(loaded.fitnessClass, m.fitnessClass);
    ASSERT_TRUE(loaded.hasSeed);
    EXPECT_EQ(loaded.seed, m.seed);
    EXPECT_EQ(loaded.rngGenerator, m.rngGenerator);
    EXPECT_EQ(loaded.populationSize, 50);
    EXPECT_EQ(loaded.individualSize, 40);
    EXPECT_EQ(loaded.generations, 100);
    EXPECT_EQ(loaded.threads, 4);
    EXPECT_EQ(loaded.fitnessCacheSize, 1024);
    EXPECT_TRUE(loaded.elitism);
    EXPECT_EQ(loaded.compiler, m.compiler);
    EXPECT_EQ(loaded.gitSha, m.gitSha);
    ASSERT_TRUE(loaded.steadyStateOverride.has_value());
    EXPECT_FALSE(*loaded.steadyStateOverride);
    EXPECT_EQ(loaded.waveformTopK, 2);
    EXPECT_FALSE(loaded.recordStats);
    EXPECT_EQ(loaded.generationsCompleted, 100);
    EXPECT_EQ(loaded.evaluations, 12345u);
    EXPECT_DOUBLE_EQ(loaded.bestFitness, 3.25);
    EXPECT_EQ(loaded.bestId, 4242u);
    EXPECT_EQ(loaded.digestsSealed, 100u);
    ASSERT_EQ(loaded.artifacts.size(), 2u);
    EXPECT_EQ(loaded.artifacts[0].path, "history.csv");
    EXPECT_EQ(loaded.artifacts[0].sha256, m.artifacts[0].sha256);
    EXPECT_EQ(loaded.artifacts[0].bytes, 1234u);
    EXPECT_EQ(loaded.artifacts[0].kind, "history");

    // Missing and unsupported-version manifests produce actionable
    // errors.
    EXPECT_FALSE(
        provenance::loadManifest(dir + "/absent", loaded, &error));
    EXPECT_NE(error.find("manifest"), std::string::npos);
    writeFile(dir + "/manifest.json",
              "{\"gest_manifest_version\": 99}\n");
    EXPECT_FALSE(provenance::loadManifest(dir, loaded, &error));
    EXPECT_NE(error.find("99"), std::string::npos);
    removeAll(dir);
}

// ---------------------------------------------------------------------
// Sealed runs: verify clean, tampered, seed drift.

TEST(Verify, CleanRunPassesAndReplayMatchesEveryGeneration)
{
    const std::string dir = makeTempDir("gest-verify");
    const config::RunResult result =
        config::runFromConfig(runConfigInto(dir + "/run"));
    EXPECT_EQ(result.manifestFile, dir + "/run/manifest.json");
    ASSERT_TRUE(fileExists(result.manifestFile));

    const provenance::VerifyResult v =
        provenance::verifyRun(dir + "/run");
    EXPECT_TRUE(v.ok) << provenance::formatVerify(dir + "/run", v);
    EXPECT_EQ(v.firstDivergentGeneration, -1);
    EXPECT_EQ(v.generationsVerified, 4u);
    EXPECT_GT(v.artifactsVerified, 10u);
    EXPECT_TRUE(v.problems.empty());
    removeAll(dir);
}

TEST(Verify, QuickModeSkipsReplay)
{
    const std::string dir = makeTempDir("gest-verify");
    config::runFromConfig(runConfigInto(dir + "/run"));
    provenance::VerifyOptions options;
    options.quick = true;
    const provenance::VerifyResult v =
        provenance::verifyRun(dir + "/run", options);
    EXPECT_TRUE(v.ok);
    EXPECT_EQ(v.generationsVerified, 0u);
    removeAll(dir);
}

TEST(Verify, TamperedArtifactIsNamedExactly)
{
    const std::string dir = makeTempDir("gest-verify");
    config::runFromConfig(runConfigInto(dir + "/run"));

    std::string lineage = readFile(dir + "/run/lineage.csv");
    lineage[lineage.size() / 2] ^= 0x01;
    writeFile(dir + "/run/lineage.csv", lineage);

    const provenance::VerifyResult v =
        provenance::verifyRun(dir + "/run");
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.firstBadArtifact, "lineage.csv");
    ASSERT_FALSE(v.problems.empty());
    EXPECT_NE(v.problems[0].find("lineage.csv"), std::string::npos);
    EXPECT_NE(v.problems[0].find("checksum mismatch"),
              std::string::npos);
    removeAll(dir);
}

TEST(Verify, MissingArtifactIsNamedExactly)
{
    const std::string dir = makeTempDir("gest-verify");
    config::runFromConfig(runConfigInto(dir + "/run"));
    removeAll(dir + "/run/analytics.csv");
    const provenance::VerifyResult v =
        provenance::verifyRun(dir + "/run");
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.firstBadArtifact, "analytics.csv");
    removeAll(dir);
}

TEST(Verify, SeedDriftDivergesAtGenerationZero)
{
    const std::string dir = makeTempDir("gest-verify");
    config::runFromConfig(runConfigInto(dir + "/run"));

    // The manifest's seed is authoritative for the replay; rewriting
    // it models a run whose recorded seed no longer matches its
    // artifacts. manifest.json is excluded from its own checksum
    // table, so only the replay can catch this.
    const std::string manifest_path = dir + "/run/manifest.json";
    const std::string original = readFile(manifest_path);
    ASSERT_NE(original.find("\"seed\": \"17\""), std::string::npos);
    writeFile(manifest_path,
              replaceAll(original, "\"seed\": \"17\"",
                         "\"seed\": \"18\""));

    const provenance::VerifyResult v =
        provenance::verifyRun(dir + "/run");
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.firstDivergentGeneration, 0);
    EXPECT_NE(v.firstDivergentIndividual, 0u);
    ASSERT_FALSE(v.problems.empty());
    EXPECT_NE(v.problems[0].find("generation 0"), std::string::npos);
    removeAll(dir);
}

TEST(Verify, UnsealedRunReportsActionableProblem)
{
    const std::string dir = makeTempDir("gest-verify");
    const provenance::VerifyResult v = provenance::verifyRun(dir);
    EXPECT_FALSE(v.ok);
    ASSERT_FALSE(v.problems.empty());
    EXPECT_NE(v.problems[0].find("manifest"), std::string::npos);
    removeAll(dir);
}

// ---------------------------------------------------------------------
// Seed-population round trip: a reloaded checkpoint must reproduce the
// checkpoint's digest as its generation 0.

TEST(Provenance, SeedPopulationRoundTripReproducesDigest)
{
    const std::string dir = makeTempDir("gest-seedtrip");
    config::runFromConfig(runConfigInto(dir + "/first"));

    std::vector<provenance::DigestRow> first_rows;
    std::string error;
    ASSERT_TRUE(provenance::loadDigests(dir + "/first", first_rows,
                                        &error))
        << error;
    ASSERT_EQ(first_rows.size(), 4u);

    // Resume from the last checkpoint. Generation 0 of the resumed run
    // is the reloaded population re-evaluated — same individuals, new
    // generation index — so its digest must equal the checkpoint's
    // (canonical text excludes the generation number by design).
    config::RunConfig resumed = runConfigInto(dir + "/second");
    resumed.seedPopulationPath = dir + "/first/population_3.pop";
    config::runFromConfig(resumed);

    std::vector<provenance::DigestRow> second_rows;
    ASSERT_TRUE(provenance::loadDigests(dir + "/second", second_rows,
                                        &error))
        << error;
    ASSERT_FALSE(second_rows.empty());
    EXPECT_EQ(second_rows[0].digest, first_rows.back().digest);
    removeAll(dir);
}

// ---------------------------------------------------------------------
// Cross-run comparison.

TEST(Compare, SameSeedRunsHaveZeroSignificantDeltas)
{
    const std::string dir = makeTempDir("gest-compare");
    config::runFromConfig(runConfigInto(dir + "/a"));
    config::runFromConfig(runConfigInto(dir + "/b"));

    const provenance::RunComparison cmp =
        provenance::compareRuns(dir + "/a", dir + "/b");
    EXPECT_EQ(cmp.significantDeltas, 0)
        << provenance::formatComparison(cmp);
    EXPECT_TRUE(cmp.deterministic.empty());
    EXPECT_TRUE(cmp.digestsCompared);
    EXPECT_EQ(cmp.firstDigestDivergence, -1);
    EXPECT_EQ(cmp.firstFitnessDivergence, -1);
    EXPECT_DOUBLE_EQ(cmp.maxAbsFitnessDelta, 0.0);
    EXPECT_FALSE(cmp.perf.empty());

    const std::string json = provenance::formatComparisonsJson({cmp});
    EXPECT_NE(json.find("\"significant_deltas\": 0"),
              std::string::npos);
    removeAll(dir);
}

TEST(Compare, DifferentSeedsReportDeterministicDeltas)
{
    const std::string dir = makeTempDir("gest-compare");
    config::runFromConfig(runConfigInto(dir + "/a"));

    config::RunConfig other = config::parseConfig(
        replaceAll(kRunConfig, "seed=\"17\"", "seed=\"18\""));
    other.outputDirectory = dir + "/b";
    config::runFromConfig(other);

    const provenance::RunComparison cmp =
        provenance::compareRuns(dir + "/a", dir + "/b");
    EXPECT_GT(cmp.significantDeltas, 0);
    EXPECT_EQ(cmp.firstDigestDivergence, 0);
    // The seed note explains why the deltas are expected.
    bool noted = false;
    for (const std::string& note : cmp.notes)
        noted = noted || note.find("seeds differ") != std::string::npos;
    EXPECT_TRUE(noted);
    removeAll(dir);
}

TEST(Compare, MissingRunIsFatal)
{
    const std::string dir = makeTempDir("gest-compare");
    EXPECT_THROW(provenance::compareRuns(dir + "/a", dir + "/b"),
                 FatalError);
    removeAll(dir);
}

// ---------------------------------------------------------------------
// Permutation test.

TEST(Resample, IdenticalSamplesNeverFlag)
{
    const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::permutationPValue(a, a), 1.0);
    EXPECT_DOUBLE_EQ(stats::permutationPValue({}, a), 1.0);
}

TEST(Resample, ClearlySeparatedSamplesAreSignificant)
{
    std::vector<double> slow, fast;
    for (int i = 0; i < 12; ++i) {
        slow.push_back(100.0 + i);
        fast.push_back(10.0 + i);
    }
    EXPECT_LT(stats::permutationPValue(slow, fast), 0.01);

    // Deterministic: the resampling RNG seed is fixed.
    EXPECT_DOUBLE_EQ(stats::permutationPValue(slow, fast),
                     stats::permutationPValue(slow, fast));
}

// ---------------------------------------------------------------------
// Artifact kinds.

TEST(Provenance, InferredArtifactKinds)
{
    EXPECT_EQ(provenance::inferArtifactKind("history.csv"), "history");
    EXPECT_EQ(provenance::inferArtifactKind("digests.csv"), "digests");
    EXPECT_EQ(provenance::inferArtifactKind("lineage.csv"), "lineage");
    EXPECT_EQ(provenance::inferArtifactKind("population_7.pop"),
              "population");
    EXPECT_EQ(provenance::inferArtifactKind("waveforms/42.csv"),
              "waveform");
    EXPECT_EQ(provenance::inferArtifactKind("0_1_2.97.txt"),
              "individual");
    EXPECT_EQ(provenance::inferArtifactKind("run_configuration.xml"),
              "config");
    EXPECT_EQ(provenance::inferArtifactKind("stats.txt"), "stats");
}

} // namespace
} // namespace gest
