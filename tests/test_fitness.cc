/**
 * @file
 * Unit tests for the fitness functions, including the paper's Equation 1.
 */

#include <gtest/gtest.h>

#include "fitness/fitness.hh"
#include "isa/standard_libs.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace gest {
namespace fitness {
namespace {

core::Individual
individualWith(const isa::InstructionLibrary& lib,
               std::vector<double> measurements, int unique_instrs,
               int total)
{
    core::Individual ind;
    ind.measurements = std::move(measurements);
    ind.evaluated = true;
    Rng rng(1);
    for (int i = 0; i < total; ++i)
        ind.code.push_back(lib.randomInstanceOf(
            static_cast<std::size_t>(i % unique_instrs), rng));
    return ind;
}

TEST(DefaultFitness, UsesFirstMeasurement)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const core::Individual ind =
        individualWith(lib, {3.5, 99.0}, 2, 10);
    DefaultFitness fit;
    EXPECT_DOUBLE_EQ(fit.getFitness(ind, lib), 3.5);
}

TEST(DefaultFitness, EmptyMeasurementsIsFatal)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const core::Individual ind = individualWith(lib, {}, 2, 10);
    DefaultFitness fit;
    EXPECT_THROW(fit.getFitness(ind, lib), FatalError);
}

TEST(WeightedSum, CombinesMeasurements)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const core::Individual ind =
        individualWith(lib, {2.0, 10.0, 100.0}, 2, 10);
    WeightedSumFitness fit;
    fit.setWeights({1.0, 0.5, -0.01});
    EXPECT_DOUBLE_EQ(fit.getFitness(ind, lib), 2.0 + 5.0 - 1.0);
}

TEST(WeightedSum, TooFewMeasurementsIsFatal)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const core::Individual ind = individualWith(lib, {2.0}, 2, 10);
    WeightedSumFitness fit;
    fit.setWeights({1.0, 1.0});
    EXPECT_THROW(fit.getFitness(ind, lib), FatalError);
    EXPECT_THROW(fit.setWeights({}), FatalError);
}

TEST(WeightedSum, InitParsesWeightsAttribute)
{
    const xml::Document doc =
        xml::parse("<config weights=\"2.0 -1.0\"/>");
    WeightedSumFitness fit;
    fit.init(&doc.root());
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const core::Individual ind =
        individualWith(lib, {3.0, 4.0}, 2, 10);
    EXPECT_DOUBLE_EQ(fit.getFitness(ind, lib), 2.0);
}

TEST(Equation1, MatchesPaperArithmetic)
{
    // F = (M_T - I_T)/(MAX_T - I_T) * 0.5 + (T_I - U_I)/T_I * 0.5
    // The paper's worked example: half the instructions unique ->
    // simplicity 0.5; 30% unique -> simplicity 0.7 (before the 0.5
    // weight). Scaled to the bundled library's instruction count.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    TemperatureSimplicityFitness fit(40.0, 100.0);

    const core::Individual half =
        individualWith(lib, {70.0}, 20, 40);
    // Temperature score (70-40)/(100-40) = 0.5; simplicity 0.5.
    EXPECT_NEAR(fit.getFitness(half, lib), 0.25 + 0.25, 1e-9);

    const core::Individual simpler =
        individualWith(lib, {70.0}, 12, 40);
    EXPECT_NEAR(fit.getFitness(simpler, lib), 0.25 + 0.35, 1e-9);
}

TEST(Equation1, BoundedToUnitInterval)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    TemperatureSimplicityFitness fit(40.0, 100.0);

    // Hotter than MAX_T clamps the temperature score at 1.
    const core::Individual hot = individualWith(lib, {500.0}, 1, 50);
    EXPECT_LE(fit.getFitness(hot, lib), 1.0);

    // Colder than idle clamps at 0.
    const core::Individual cold = individualWith(lib, {10.0}, 20, 40);
    EXPECT_NEAR(fit.getFitness(cold, lib), 0.25, 1e-9);
}

TEST(Equation1, RewardsSimplicityAtEqualTemperature)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    TemperatureSimplicityFitness fit(40.0, 100.0);
    const core::Individual complex_ind =
        individualWith(lib, {80.0}, 20, 40);
    const core::Individual simple_ind =
        individualWith(lib, {80.0}, 5, 40);
    EXPECT_GT(fit.getFitness(simple_ind, lib),
              fit.getFitness(complex_ind, lib));
}

TEST(Equation1, InitParsesTemperatures)
{
    const xml::Document doc = xml::parse(
        "<config idle_temperature=\"30\" max_temperature=\"90\"/>");
    TemperatureSimplicityFitness fit;
    fit.init(&doc.root());
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const core::Individual ind = individualWith(lib, {60.0}, 20, 40);
    EXPECT_NEAR(fit.getFitness(ind, lib), 0.25 + 0.25, 1e-9);
}

TEST(Equation1, RejectsInvertedRange)
{
    EXPECT_THROW(TemperatureSimplicityFitness(90.0, 50.0), FatalError);
    const xml::Document doc = xml::parse(
        "<config idle_temperature=\"90\" max_temperature=\"50\"/>");
    TemperatureSimplicityFitness fit;
    EXPECT_THROW(fit.init(&doc.root()), FatalError);
}

TEST(Registry, BuiltinsRegisteredOnce)
{
    registerBuiltinFitness();
    registerBuiltinFitness(); // idempotent
    FitnessRegistry& registry = FitnessRegistry::instance();
    EXPECT_TRUE(registry.contains("DefaultFitness"));
    EXPECT_TRUE(registry.contains("WeightedSumFitness"));
    EXPECT_TRUE(registry.contains("TemperatureSimplicityFitness"));
    EXPECT_FALSE(registry.contains("NoSuchFitness"));
    EXPECT_THROW(registry.create("NoSuchFitness"), FatalError);

    const auto fit = registry.create("DefaultFitness");
    EXPECT_EQ(fit->name(), "DefaultFitness");
    EXPECT_GE(registry.names().size(), 3u);
}

} // namespace
} // namespace fitness
} // namespace gest
