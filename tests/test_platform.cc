/**
 * @file
 * Unit tests for the platform presets and end-to-end evaluation.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "util/logging.hh"

namespace gest {
namespace platform {
namespace {

std::vector<isa::InstructionInstance>
armLoop(const isa::InstructionLibrary& lib)
{
    return {
        lib.makeInstance("FMUL", {"v0", "v1", "v2"}),
        lib.makeInstance("FMLA", {"v3", "v4", "v5"}),
        lib.makeInstance("LDR", {"x2", "x10", "16"}),
        lib.makeInstance("ADD", {"x4", "x5", "x6"}),
        lib.makeInstance("MUL", {"x5", "x6", "x7"}),
        lib.makeInstance("STR", {"x8", "x10", "96"}),
    };
}

TEST(Platform, PresetLookupByName)
{
    for (const std::string& name : Platform::presetNames()) {
        const auto plat = Platform::byName(name);
        ASSERT_NE(plat, nullptr);
        EXPECT_EQ(plat->name(), name);
    }
    EXPECT_THROW(Platform::byName("cray-1"), FatalError);
}

TEST(Platform, TableTwoShapes)
{
    // Table II: core counts and instrumentation per machine.
    EXPECT_EQ(cortexA15Platform()->chip().numCores, 2);
    EXPECT_EQ(cortexA7Platform()->chip().numCores, 3);
    EXPECT_EQ(xgene2Platform()->chip().numCores, 8);
    EXPECT_EQ(athlonX4Platform()->chip().numCores, 4);

    // Only the Athlon system has voltage-sense instrumentation.
    EXPECT_EQ(cortexA15Platform()->pdnModel(), nullptr);
    EXPECT_EQ(cortexA7Platform()->pdnModel(), nullptr);
    EXPECT_EQ(xgene2Platform()->pdnModel(), nullptr);
    EXPECT_NE(athlonX4Platform()->pdnModel(), nullptr);
}

TEST(Platform, EvaluationProducesConsistentMetrics)
{
    const auto plat = cortexA15Platform();
    const Evaluation eval = plat->evaluate(armLoop(plat->library()));
    EXPECT_GT(eval.ipc, 0.2);
    EXPECT_GT(eval.corePowerWatts, 0.0);
    EXPECT_GT(eval.chipPowerWatts,
              eval.corePowerWatts * plat->chip().numCores);
    EXPECT_GT(eval.dieTempC, plat->idleTempC());
    EXPECT_FALSE(eval.hasVoltage);
    EXPECT_GT(eval.sim.cycles, 0u);
}

TEST(Platform, IdleTempAboveAmbient)
{
    for (const std::string& name : Platform::presetNames()) {
        const auto plat = Platform::byName(name);
        EXPECT_GT(plat->idleTempC(),
                  plat->thermalModel().config().ambientC)
            << name;
        EXPECT_LT(plat->idleTempC(), 70.0) << name;
    }
}

TEST(Platform, ChipTempMonotoneInPower)
{
    const auto plat = xgene2Platform();
    double last = 0.0;
    for (double watts : {0.5, 1.0, 2.0, 4.0}) {
        const double temp = plat->chipTempC(watts);
        EXPECT_GT(temp, last);
        last = temp;
    }
}

TEST(Platform, ChipCurrentScalesWithCores)
{
    const auto plat = athlonX4Platform();
    power::PowerTrace trace;
    trace.vdd = 1.35;
    trace.watts = {13.5, 27.0};
    const std::vector<double> amps = plat->chipCurrent(trace);
    ASSERT_EQ(amps.size(), 2u);
    const double uncore =
        plat->chip().uncoreActiveWatts / 1.35;
    EXPECT_NEAR(amps[0], 10.0 * 4 + uncore, 1e-9);
    EXPECT_NEAR(amps[1], 20.0 * 4 + uncore, 1e-9);
}

TEST(Platform, VoltageMetricsOnlyWhenRequested)
{
    const auto amd = athlonX4Platform();
    const auto& lib = amd->library();
    const std::vector<isa::InstructionInstance> loop = {
        lib.makeInstance("MULPD", {"xmm0", "xmm1"}),
        lib.makeInstance("ADD", {"rax", "rcx"}),
    };
    const Evaluation without = amd->evaluate(loop, lib, false);
    EXPECT_FALSE(without.hasVoltage);
    const Evaluation with = amd->evaluate(loop, lib, true);
    EXPECT_TRUE(with.hasVoltage);
    EXPECT_GT(with.peakToPeakV, 0.0);
    EXPECT_LT(with.vMin, amd->chip().vdd);
    EXPECT_GT(with.vMax, with.vMin);
}

TEST(Platform, VoltageRequestWithoutPdnIsFatal)
{
    const auto a15 = cortexA15Platform();
    EXPECT_THROW(a15->evaluate(armLoop(a15->library()),
                               a15->library(), true),
                 FatalError);
}

TEST(Platform, EmptyCodeIsFatal)
{
    const auto plat = cortexA15Platform();
    EXPECT_THROW(plat->evaluate({}, plat->library()), FatalError);
}

TEST(Platform, BigCoreBurnsMoreThanLittleCore)
{
    const auto a15 = cortexA15Platform();
    const auto a7 = cortexA7Platform();
    const Evaluation big = a15->evaluate(armLoop(a15->library()));
    const Evaluation little = a7->evaluate(armLoop(a7->library()));
    EXPECT_GT(big.corePowerWatts, little.corePowerWatts * 2.0);
}

TEST(Platform, InitStateOverrideAffectsToggles)
{
    // Checkerboard vs zeroed registers: the §III.B.2 observation.
    const auto base = cortexA15Platform();
    Platform zeroed("a15-zero", base->cpu(), base->energy(),
                    base->thermalModel().config(), base->chip(),
                    isa::armLikeLibrary());
    arch::InitState init;
    init.intPattern = 0;
    init.vecPattern = 0;
    init.memPattern = 0;
    zeroed.setInitState(init);

    const Evaluation checker = base->evaluate(armLoop(base->library()));
    const Evaluation flat = zeroed.evaluate(armLoop(zeroed.library()));
    EXPECT_GT(checker.sim.totalToggleBits, flat.sim.totalToggleBits);
    EXPECT_GT(checker.corePowerWatts, flat.corePowerWatts);
}

TEST(Platform, PhaseAlignedCurrentReducesToChipCurrent)
{
    const auto plat = athlonX4Platform();
    power::PowerTrace trace;
    trace.vdd = 1.35;
    trace.watts = {10.0, 20.0, 30.0, 20.0};
    const std::vector<std::size_t> aligned(4, 0);
    const std::vector<double> a = plat->chipCurrent(trace);
    const std::vector<double> b =
        plat->chipCurrentWithPhases(trace, aligned);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Platform, StaggeredPhasesFlattenTheCurrent)
{
    const auto plat = athlonX4Platform();
    power::PowerTrace trace;
    trace.vdd = 1.35;
    // A square wave of period 4.
    trace.watts.resize(64);
    for (std::size_t i = 0; i < trace.watts.size(); ++i)
        trace.watts[i] = i % 4 < 2 ? 30.0 : 10.0;

    auto swing = [](const std::vector<double>& amps) {
        double lo = amps[0];
        double hi = amps[0];
        for (double a : amps) {
            lo = std::min(lo, a);
            hi = std::max(hi, a);
        }
        return hi - lo;
    };
    const double aligned = swing(
        plat->chipCurrentWithPhases(trace, {0, 0, 0, 0}));
    // Offsets of half a period in two of the cores cancel the swing.
    const double staggered = swing(
        plat->chipCurrentWithPhases(trace, {0, 2, 0, 2}));
    EXPECT_GT(aligned, staggered * 2.0);
    EXPECT_NEAR(staggered, 0.0, 1e-9);
}

TEST(Platform, PhaseOffsetCountMustMatchCores)
{
    const auto plat = athlonX4Platform();
    power::PowerTrace trace;
    trace.vdd = 1.35;
    trace.watts = {10.0};
    EXPECT_THROW(plat->chipCurrentWithPhases(trace, {0, 0}),
                 FatalError);
}

TEST(Platform, RejectsZeroCores)
{
    const auto base = cortexA15Platform();
    ChipConfig chip = base->chip();
    chip.numCores = 0;
    EXPECT_THROW(Platform("bad", base->cpu(), base->energy(),
                          base->thermalModel().config(), chip,
                          isa::armLikeLibrary()),
                 FatalError);
}

} // namespace
} // namespace platform
} // namespace gest
