/**
 * @file
 * Unit tests for the measurement layer: registry and simulated
 * instruments.
 */

#include <gtest/gtest.h>

#include "measure/sim_measurements.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workloads/workloads.hh"

namespace gest {
namespace measure {
namespace {

std::vector<isa::InstructionInstance>
smallLoop(const isa::InstructionLibrary& lib)
{
    return {
        lib.makeInstance("ADD", {"x4", "x5", "x6"}),
        lib.makeInstance("FMUL", {"v0", "v1", "v2"}),
        lib.makeInstance("LDR", {"x2", "x10", "8"}),
        lib.makeInstance("MUL", {"x5", "x6", "x7"}),
    };
}

TEST(Registry, SimMeasurementsRegistered)
{
    registerSimMeasurements();
    registerSimMeasurements(); // idempotent
    MeasurementRegistry& registry = MeasurementRegistry::instance();
    EXPECT_TRUE(registry.contains("SimPowerMeasurement"));
    EXPECT_TRUE(registry.contains("SimTemperatureMeasurement"));
    EXPECT_TRUE(registry.contains("SimIpcMeasurement"));
    EXPECT_TRUE(registry.contains("SimVoltageNoiseMeasurement"));
    EXPECT_THROW(registry.create("Bogus", isa::armLikeLibrary()),
                 FatalError);
    EXPECT_GE(registry.names().size(), 4u);
}

TEST(SimPower, MeasuresPositivePower)
{
    const auto plat = platform::cortexA15Platform();
    const isa::InstructionLibrary& lib = plat->library();
    SimPowerMeasurement meas(lib, plat);
    const MeasurementResult result = meas.measure(smallLoop(lib));
    ASSERT_EQ(result.values.size(), meas.valueNames().size());
    EXPECT_GT(result.values[0], 0.0); // chip watts
    EXPECT_GT(result.values[1], 0.0); // core watts
    EXPECT_GT(result.values[0], result.values[1]);
    EXPECT_GT(result.values[2], 0.0); // ipc
}

TEST(SimPower, DeterministicAcrossCalls)
{
    const auto plat = platform::cortexA7Platform();
    const isa::InstructionLibrary& lib = plat->library();
    SimPowerMeasurement meas(lib, plat);
    const auto a = meas.measure(smallLoop(lib));
    const auto b = meas.measure(smallLoop(lib));
    EXPECT_EQ(a.values, b.values);
}

TEST(SimTemperature, AboveIdleBelowMeltdown)
{
    const auto plat = platform::xgene2Platform();
    const isa::InstructionLibrary& lib = plat->library();
    SimTemperatureMeasurement meas(lib, plat);
    const MeasurementResult result = meas.measure(smallLoop(lib));
    EXPECT_GT(result.values[0], plat->idleTempC());
    EXPECT_LT(result.values[0], 120.0);
}

TEST(SimIpc, FirstValueIsIpc)
{
    const auto plat = platform::xgene2Platform();
    const isa::InstructionLibrary& lib = plat->library();
    SimIpcMeasurement meas(lib, plat);
    const MeasurementResult result = meas.measure(smallLoop(lib));
    EXPECT_GT(result.values[0], 0.1);
    EXPECT_LT(result.values[0], 4.5);
    EXPECT_EQ(meas.valueNames()[0], "ipc");
}

TEST(SimVoltageNoise, RequiresPdnPlatform)
{
    const auto amd = platform::athlonX4Platform();
    const isa::InstructionLibrary& lib = amd->library();
    SimVoltageNoiseMeasurement meas(lib, amd);
    const auto loop = std::vector<isa::InstructionInstance>{
        lib.makeInstance("MULPD", {"xmm0", "xmm1"}),
        lib.makeInstance("NOP", {}),
    };
    const MeasurementResult result = meas.measure(loop);
    EXPECT_GT(result.values[0], 0.0);      // p2p
    EXPECT_LT(result.values[1], 1.35);     // vMin below nominal
    EXPECT_GT(result.values[1], 1.0);

    // A platform without a PDN must refuse.
    const auto a15 = platform::cortexA15Platform();
    SimVoltageNoiseMeasurement bad(a15->library(), a15);
    const auto arm_loop = std::vector<isa::InstructionInstance>{
        a15->library().makeInstance("NOP", {})};
    EXPECT_THROW(bad.measure(arm_loop), FatalError);
}

TEST(SimBase, PlatformFromXmlConfig)
{
    registerSimMeasurements();
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    auto meas = MeasurementRegistry::instance().create(
        "SimPowerMeasurement", lib);
    const xml::Document doc = xml::parse(
        "<config platform=\"cortex-a7\" min_cycles=\"1024\"/>");
    meas->init(&doc.root());
    const MeasurementResult result = meas->measure(smallLoop(lib));
    EXPECT_GT(result.values[0], 0.0);
}

TEST(SimBase, MissingPlatformIsFatal)
{
    registerSimMeasurements();
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    auto meas = MeasurementRegistry::instance().create(
        "SimPowerMeasurement", lib);
    EXPECT_THROW(meas->measure(smallLoop(lib)), FatalError);
}

TEST(SimBase, BadMinCyclesIsFatal)
{
    registerSimMeasurements();
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    auto meas = MeasurementRegistry::instance().create(
        "SimPowerMeasurement", lib);
    const xml::Document doc = xml::parse(
        "<config platform=\"cortex-a7\" min_cycles=\"10\"/>");
    EXPECT_THROW(meas->init(&doc.root()), FatalError);
}

TEST(SimBase, MinCyclesBoundaryAt256)
{
    registerSimMeasurements();
    const isa::InstructionLibrary lib = isa::armLikeLibrary();

    // Exactly the floor is accepted...
    auto meas = MeasurementRegistry::instance().create(
        "SimPowerMeasurement", lib);
    const xml::Document ok = xml::parse(
        "<config platform=\"cortex-a7\" min_cycles=\"256\"/>");
    meas->init(&ok.root());
    EXPECT_GT(meas->measure(smallLoop(lib)).values[0], 0.0);

    // ...one below it is rejected with the boundary in the message.
    auto below = MeasurementRegistry::instance().create(
        "SimPowerMeasurement", lib);
    const xml::Document bad = xml::parse(
        "<config platform=\"cortex-a7\" min_cycles=\"255\"/>");
    try {
        below->init(&bad.root());
        FAIL() << "min_cycles=255 must be fatal";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find("256"),
                  std::string::npos);
    }
}

TEST(SimVoltageNoise, NoPdnErrorNamesAPdnPlatform)
{
    // The refusal must tell the user what to do: name a platform that
    // does carry a PDN model.
    const auto a15 = platform::cortexA15Platform();
    SimVoltageNoiseMeasurement meas(a15->library(), a15);
    const auto loop = std::vector<isa::InstructionInstance>{
        a15->library().makeInstance("NOP", {})};
    try {
        meas.measure(loop);
        FAIL() << "voltage noise without a PDN must be fatal";
    } catch (const FatalError& err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("athlon-x4"), std::string::npos) << what;
        EXPECT_NE(what.find("cortex-a15"), std::string::npos) << what;
    }
}

TEST(SimBase, UnknownPlatformIsFatal)
{
    registerSimMeasurements();
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    auto meas = MeasurementRegistry::instance().create(
        "SimPowerMeasurement", lib);
    const xml::Document doc =
        xml::parse("<config platform=\"pentium-4\"/>");
    EXPECT_THROW(meas->init(&doc.root()), FatalError);
}

TEST(SimTemperature, TransientWindowReadsBelowEquilibrium)
{
    // A short sensor poll sees the ladder still heating: lower than
    // equilibrium, above idle, and monotone in the window length.
    const auto plat = platform::xgene2Platform();
    const isa::InstructionLibrary& lib = plat->library();
    const auto loop = smallLoop(lib);

    SimTemperatureMeasurement equilibrium(lib, plat);
    const double settled = equilibrium.measure(loop).values[0];

    SimTemperatureMeasurement early(lib, plat);
    early.setTransientSeconds(5.0);
    const double after_5s = early.measure(loop).values[0];

    SimTemperatureMeasurement later(lib, plat);
    later.setTransientSeconds(60.0);
    const double after_60s = later.measure(loop).values[0];

    EXPECT_GT(after_5s, plat->idleTempC() - 1.0);
    EXPECT_LT(after_5s, settled);
    EXPECT_GT(after_60s, after_5s);
    EXPECT_LE(after_60s, settled + 0.5);
}

TEST(SimTemperature, TransientConfigFromXml)
{
    registerSimMeasurements();
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    auto meas = MeasurementRegistry::instance().create(
        "SimTemperatureMeasurement", lib);
    const xml::Document doc = xml::parse(
        "<config platform=\"xgene2\" transient_seconds=\"10\"/>");
    meas->init(&doc.root());
    EXPECT_GT(meas->measure(smallLoop(lib)).values[0], 20.0);

    const xml::Document bad = xml::parse(
        "<config platform=\"xgene2\" transient_seconds=\"-1\"/>");
    auto meas2 = MeasurementRegistry::instance().create(
        "SimTemperatureMeasurement", lib);
    EXPECT_THROW(meas2->init(&bad.root()), FatalError);
}

TEST(Registry, DuplicateRegistrationIsFatal)
{
    MeasurementRegistry& registry = MeasurementRegistry::instance();
    registerSimMeasurements();
    EXPECT_THROW(
        registry.registerFactory(
            "SimPowerMeasurement",
            [](const isa::InstructionLibrary& lib)
                -> std::unique_ptr<Measurement> {
                return std::make_unique<SimPowerMeasurement>(lib);
            }),
        FatalError);
}

} // namespace
} // namespace measure
} // namespace gest
