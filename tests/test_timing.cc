/**
 * @file
 * Focused timing validations of the superscalar model: functional-unit
 * port limits, latency visibility, window and fetch-width effects —
 * the mechanisms the GA exploits when shaping viruses.
 */

#include <gtest/gtest.h>

#include "arch/simulator.hh"
#include "isa/standard_libs.hh"

namespace gest {
namespace arch {
namespace {

std::vector<MicroOp>
repeatInstr(const isa::InstructionLibrary& lib, const char* name,
            std::vector<std::vector<std::string>> variants, int count)
{
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < count; ++i)
        code.push_back(lib.makeInstance(
            name, variants[static_cast<std::size_t>(i) %
                           variants.size()]));
    return decodeBody(lib, code);
}

double
ipcOf(const CpuConfig& cfg, const std::vector<MicroOp>& body)
{
    LoopSimulator sim(cfg, InitState{});
    return sim.run(body, 200, 8).ipc;
}

TEST(Timing, FpPortCountCapsFpThroughput)
{
    // Independent FMULs across 8 registers: throughput is limited by
    // the two FP pipes, not the 4-wide issue.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = repeatInstr(
        lib, "FMUL",
        {{"v0", "v2", "v5"}, {"v1", "v3", "v6"}, {"v2", "v4", "v7"},
         {"v3", "v5", "v0"}, {"v4", "v6", "v1"}, {"v5", "v7", "v2"},
         {"v6", "v0", "v3"}, {"v7", "v1", "v4"}},
        16);
    const double ipc = ipcOf(cortexA15Config(), body);
    // 2 FP/cycle + ~1/17 loop branch; never 3+.
    EXPECT_LE(ipc, 2.2);
    EXPECT_GT(ipc, 1.5);
}

TEST(Timing, SingleLsuSerializesMemoryOps)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = repeatInstr(
        lib, "LDR",
        {{"x2", "x10", "0"}, {"x3", "x10", "64"}, {"x2", "x10", "128"},
         {"x3", "x10", "192"}},
        12);
    // The A15 model has one LSU: at most ~1 memory op per cycle.
    const double ipc = ipcOf(cortexA15Config(), body);
    EXPECT_LE(ipc, 1.2);

    // The X-Gene2 model has two LSUs: about twice the throughput.
    const double ipc_two = ipcOf(xgene2Config(), body);
    EXPECT_GT(ipc_two, ipc * 1.5);
}

TEST(Timing, FmaLatencyChainVisible)
{
    // A single serial FMLA chain: IPC ~ (1 op) / (8-cycle latency).
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto chained =
        repeatInstr(lib, "FMLA", {{"v0", "v1", "v2"}}, 8);
    const double ipc_chained = ipcOf(cortexA15Config(), chained);
    EXPECT_LT(ipc_chained, 0.25);

    // Eight independent accumulator chains hide the latency.
    const auto rotated = repeatInstr(
        lib, "FMLA",
        {{"v0", "v1", "v2"}, {"v1", "v2", "v3"}, {"v2", "v3", "v4"},
         {"v3", "v4", "v5"}, {"v4", "v5", "v6"}, {"v5", "v6", "v7"},
         {"v6", "v7", "v0"}, {"v7", "v0", "v1"}},
        8);
    const double ipc_rotated = ipcOf(cortexA15Config(), rotated);
    EXPECT_GT(ipc_rotated, ipc_chained * 2.5);
}

TEST(Timing, WindowOccupancyReflectsStalls)
{
    // The issue-queue occupancy statistic — the dependency-tracking
    // energy term the X-Gene2 power virus exploits (Table IV's
    // long-latency instructions) — must be high for stall-heavy code
    // and low for free-flowing code.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();

    // Stall-heavy: serial FMLA chains keep many ops waiting.
    const auto chained =
        repeatInstr(lib, "FMLA", {{"v0", "v1", "v2"}}, 12);
    // Free-flowing: independent single-cycle ALU ops drain instantly.
    const auto flowing = repeatInstr(
        lib, "ADD",
        {{"x4", "x8", "x9"}, {"x5", "x8", "x9"}, {"x6", "x8", "x9"}},
        12);

    LoopSimulator sim(cortexA15Config(), InitState{});
    const SimResult stalled = sim.run(chained, 200, 8);
    const SimResult smooth = sim.run(flowing, 200, 8);
    EXPECT_GT(stalled.avgWindowOccupancy,
              smooth.avgWindowOccupancy * 2.0);
    // And the stalls show up as lower IPC, as expected.
    EXPECT_LT(stalled.ipc, smooth.ipc * 0.5);
}

TEST(Timing, FetchWidthBoundsIpc)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = repeatInstr(
        lib, "ADD",
        {{"x4", "x8", "x9"}, {"x5", "x8", "x9"}, {"x6", "x8", "x9"}},
        12);
    CpuConfig narrow_fetch = cortexA15Config();
    narrow_fetch.fetchWidth = 1;
    narrow_fetch.issueWidth = 4;
    const double ipc = ipcOf(narrow_fetch, body);
    EXPECT_LE(ipc, 1.0 + 1e-9);
    EXPECT_GT(ipc, 0.8);
}

TEST(Timing, LoadPairMovesSixteenBytes)
{
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const MicroOp mo =
        decode(lib, lib.makeInstance("LDP", {"x2", "x3", "x10"}));
    EXPECT_EQ(mo.accessBytes, 16);
    EXPECT_EQ(mo.numDst, 2);
    // It is still one issue slot and one cache access.
    LoopSimulator sim(cortexA15Config(), InitState{});
    const SimResult result =
        sim.run(decodeBody(lib, {lib.makeInstance(
                                    "LDP", {"x2", "x3", "x10"})}),
                100, 4);
    EXPECT_LE(result.cacheAccesses, 100u);
}

TEST(Timing, UnpipelinedDivBlocksItsUnitNotTheCore)
{
    // While the divider grinds, ALU work continues on an OoO core.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    std::vector<isa::InstructionInstance> code;
    code.push_back(lib.makeInstance("UDIV", {"x4", "x5", "x6"}));
    for (int i = 0; i < 6; ++i)
        code.push_back(lib.makeInstance(
            "EOR", {"x" + std::to_string(6 + i % 3), "x8", "x9"}));
    const double ipc = ipcOf(cortexA15Config(), decodeBody(lib, code));
    // 8 ops per iteration (incl. loop branch), iteration time is
    // dominated by the 14-cycle divider: ~8/14.
    EXPECT_GT(ipc, 0.45);
    EXPECT_LT(ipc, 1.2);
}

TEST(Timing, NopsConsumeSlotsButNoUnits)
{
    // A NOP-only loop issues at ALU-port width (NOPs are modelled as
    // zero-energy ALU slots), so padding still costs time — which is
    // why dI/dt viruses can shape low phases with them.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    const auto body = repeatInstr(lib, "NOP", {{}}, 12);
    const double ipc = ipcOf(cortexA15Config(), body);
    EXPECT_GT(ipc, 1.5);
    EXPECT_LE(ipc, 2.2);
}

TEST(Timing, A7DualIssuesBranchWithAlu)
{
    // The little core's folded branches pair with ALU ops: a
    // branch+ADD loop sustains ~2 IPC even in-order.
    const isa::InstructionLibrary lib = isa::armLikeLibrary();
    std::vector<isa::InstructionInstance> code;
    for (int i = 0; i < 6; ++i) {
        code.push_back(lib.makeInstance("BNEXT", {}));
        code.push_back(lib.makeInstance(
            "ADD", {"x" + std::to_string(4 + i % 3), "x8", "x9"}));
    }
    const double ipc = ipcOf(cortexA7Config(), decodeBody(lib, code));
    EXPECT_GT(ipc, 1.6);
}

} // namespace
} // namespace arch
} // namespace gest
