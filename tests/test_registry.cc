/**
 * @file
 * Unit tests for the cross-run observability layer: the GA health
 * watchdog's declarative rules against synthetic generation streams
 * (plateau, throughput collapse, non-finite fitness, clean run), the
 * alerts-ledger round trip, and the experiment registry — indexing a
 * workspace of mixed sealed/unsealed/corrupt runs, the CSV/JSON index
 * schema, `--filter` semantics and baseline regression screening.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/health.hh"
#include "provenance/manifest.hh"
#include "registry/registry.hh"
#include "util/fileutil.hh"
#include "util/jsonlite.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace {

core::GenerationRecord
record(int generation, double best, double avg = 0.0)
{
    core::GenerationRecord rec;
    rec.generation = generation;
    rec.bestFitness = best;
    rec.averageFitness = avg == 0.0 ? best * 0.5 : avg;
    return rec;
}

/** A v2 history.csv with one row per (best, evaluation_ms) pair. */
void
writeHistory(const std::string& run_dir,
             const std::vector<std::pair<double, double>>& rows)
{
    ensureDir(run_dir);
    std::string text =
        "# gest-history v2\n"
        "generation,best_fitness,average_fitness,best_id,"
        "unique_instructions,diversity,cache_hits,cache_misses,"
        "selection_ms,crossover_ms,mutation_ms,evaluation_ms,io_ms\n";
    for (std::size_t gen = 0; gen < rows.size(); ++gen) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%zu,%.6f,%.6f,%zu,5,0.5,2,8,0.1,0.1,0.1,%.3f,"
                      "0.05\n",
                      gen, rows[gen].first, 0.5 * rows[gen].first,
                      gen + 1, rows[gen].second);
        text += line;
    }
    writeFile(run_dir + "/history.csv", text);
}

/** Seal a minimal-but-valid manifest.json into @p run_dir. */
void
writeManifest(const std::string& run_dir, const std::string& config_hash,
              std::uint64_t seed, double best_fitness,
              int generations = 4)
{
    ensureDir(run_dir);
    provenance::Manifest m;
    m.created = "2026-01-01T00:00:00Z";
    m.configHash = config_hash;
    m.measurementClass = "SimPowerMeasurement";
    m.fitnessClass = "DefaultFitness";
    m.hasSeed = true;
    m.seed = seed;
    m.gitSha = "deadbeefcafe";
    m.generations = generations;
    m.generationsCompleted = generations;
    m.evaluations = 32;
    m.bestFitness = best_fitness;
    m.bestId = 7;
    writeFile(run_dir + "/manifest.json",
              provenance::formatManifest(m));
}

// ------------------------------------------------ watchdog rules

TEST(HealthWatchdog, CleanImprovingRunRaisesNothing)
{
    const std::string dir = makeTempDir("gest-health");
    analysis::HealthWatchdog dog;
    dog.setCsvPath(dir + "/alerts.csv");

    core::Population pop;
    for (int gen = 0; gen < 40; ++gen)
        dog.onGenerationEvaluated(pop, record(gen, 1.0 + 0.1 * gen));

    EXPECT_TRUE(dog.alerts().empty());
    EXPECT_EQ(dog.summary().alerts, 0u);
    EXPECT_EQ(dog.summary().lastGeneration, -1);

    // The eager header leaves a schema-valid zero-row ledger: "no
    // alerts", not "not watched".
    std::vector<analysis::Alert> loaded;
    ASSERT_TRUE(analysis::loadAlerts(dir, loaded));
    EXPECT_TRUE(loaded.empty());
    removeAll(dir);
}

TEST(HealthWatchdog, PlateauFiresOnceAndLatches)
{
    analysis::HealthRules rules;
    rules.plateauGenerations = 5;
    analysis::HealthWatchdog dog(rules);

    core::Population pop;
    dog.onGenerationEvaluated(pop, record(0, 2.0));
    for (int gen = 1; gen <= 12; ++gen)
        dog.onGenerationEvaluated(pop, record(gen, 2.0));  // flat

    // Latched: one alert for the whole stuck run, at the generation
    // where the streak first reached the threshold.
    ASSERT_EQ(dog.alerts().size(), 1u);
    const analysis::Alert& alert = dog.alerts().front();
    EXPECT_EQ(alert.rule, "fitness_plateau");
    EXPECT_EQ(alert.severity, "warning");
    EXPECT_EQ(alert.generation, 5);
    EXPECT_DOUBLE_EQ(alert.threshold, 5.0);
    EXPECT_EQ(dog.summary().lastRule, "fitness_plateau");
}

TEST(HealthWatchdog, EqualFitnessIsNotAnImprovement)
{
    analysis::HealthRules rules;
    rules.plateauGenerations = 3;
    analysis::HealthWatchdog dog(rules);

    core::Population pop;
    // A strict improvement resets the streak; ties do not.
    dog.onGenerationEvaluated(pop, record(0, 1.0));
    dog.onGenerationEvaluated(pop, record(1, 1.0));
    dog.onGenerationEvaluated(pop, record(2, 1.5));
    dog.onGenerationEvaluated(pop, record(3, 1.5));
    dog.onGenerationEvaluated(pop, record(4, 1.5));
    EXPECT_TRUE(dog.alerts().empty());
    dog.onGenerationEvaluated(pop, record(5, 1.5));
    ASSERT_EQ(dog.alerts().size(), 1u);
    EXPECT_EQ(dog.alerts().front().rule, "fitness_plateau");
}

TEST(HealthWatchdog, NonFiniteFitnessIsCritical)
{
    analysis::HealthWatchdog dog;
    core::Population pop;
    dog.onGenerationEvaluated(pop, record(0, 1.0));
    dog.onGenerationEvaluated(
        pop, record(1, std::numeric_limits<double>::quiet_NaN(), 0.5));

    ASSERT_EQ(dog.alerts().size(), 1u);
    EXPECT_EQ(dog.alerts().front().rule, "non_finite_fitness");
    EXPECT_EQ(dog.alerts().front().severity, "critical");
    EXPECT_EQ(dog.alerts().front().generation, 1);
}

TEST(HealthWatchdog, ThroughputCollapseAgainstRunMedian)
{
    analysis::HealthRules rules;
    rules.plateauGenerations = 0;  // isolate the throughput rule
    rules.throughputCollapseFactor = 4.0;
    rules.throughputMinGenerations = 4;
    analysis::HealthWatchdog dog(rules);

    core::Population pop;
    for (int gen = 0; gen < 6; ++gen) {
        core::GenerationRecord rec = record(gen, 1.0 + gen);
        rec.cacheMisses = 100;
        rec.evaluationMs = 100.0;  // 1000 evals/sec
        dog.onGenerationEvaluated(pop, rec);
    }
    EXPECT_TRUE(dog.alerts().empty());

    core::GenerationRecord slow = record(6, 10.0);
    slow.cacheMisses = 100;
    slow.evaluationMs = 10000.0;  // 10 evals/sec < 1000/4
    dog.onGenerationEvaluated(pop, slow);

    ASSERT_EQ(dog.alerts().size(), 1u);
    const analysis::Alert& alert = dog.alerts().front();
    EXPECT_EQ(alert.rule, "throughput_collapse");
    EXPECT_NEAR(alert.value, 10.0, 1e-9);
    EXPECT_NEAR(alert.threshold, 250.0, 1e-9);
}

TEST(HealthWatchdog, CoverageStallNeedsTicks)
{
    analysis::HealthRules rules;
    rules.plateauGenerations = 0;
    rules.coverageStallGenerations = 3;
    analysis::HealthWatchdog dog(rules);

    core::Population pop;
    // Without ticks the rule stays disarmed no matter how many
    // generations pass.
    for (int gen = 0; gen < 10; ++gen)
        dog.onGenerationEvaluated(pop, record(gen, 1.0 + gen));
    EXPECT_TRUE(dog.alerts().empty());

    // Fed ticks: three consecutive zero-new-cell generations trip it.
    for (int gen = 10; gen < 13; ++gen) {
        dog.noteCoverage(gen, 0);
        dog.onGenerationEvaluated(pop, record(gen, 100.0 + gen));
    }
    ASSERT_EQ(dog.alerts().size(), 1u);
    EXPECT_EQ(dog.alerts().front().rule, "coverage_stall");
    EXPECT_EQ(dog.alerts().front().generation, 12);
}

TEST(HealthWatchdog, AlertsLedgerRoundTrips)
{
    const std::string dir = makeTempDir("gest-health");
    analysis::HealthRules rules;
    rules.plateauGenerations = 2;
    analysis::HealthWatchdog dog(rules);
    dog.setCsvPath(dir + "/alerts.csv");

    int listener_calls = 0;
    dog.setAlertListener(
        [&listener_calls](const analysis::Alert&) { ++listener_calls; });

    core::Population pop;
    dog.onGenerationEvaluated(pop, record(0, 3.0));
    for (int gen = 1; gen <= 4; ++gen)
        dog.onGenerationEvaluated(pop, record(gen, 3.0));
    ASSERT_EQ(dog.alerts().size(), 1u);
    EXPECT_EQ(listener_calls, 1);

    std::vector<analysis::Alert> loaded;
    ASSERT_TRUE(analysis::loadAlerts(dir, loaded));
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].rule, dog.alerts()[0].rule);
    EXPECT_EQ(loaded[0].generation, dog.alerts()[0].generation);
    EXPECT_EQ(loaded[0].severity, dog.alerts()[0].severity);
    EXPECT_EQ(loaded[0].message, dog.alerts()[0].message);
    // Messages are comma-free by construction: the 6-field split is
    // exact.
    EXPECT_EQ(loaded[0].message.find(','), std::string::npos);

    // The JSON projection of an alert must parse.
    json::Value parsed;
    ASSERT_TRUE(
        json::parse(analysis::formatAlertJson(loaded[0]), parsed, nullptr));
    EXPECT_EQ(parsed.stringOr("rule", ""), "fitness_plateau");
    removeAll(dir);
}

TEST(HealthWatchdog, LoadAlertsRejectsLaterSchema)
{
    const std::string dir = makeTempDir("gest-health");
    writeFile(dir + "/alerts.csv",
              "# gest-alerts v2\n"
              "generation,rule,severity,value,threshold,message\n");
    std::vector<analysis::Alert> loaded;
    EXPECT_THROW(analysis::loadAlerts(dir, loaded), FatalError);
    std::vector<analysis::Alert> none;
    EXPECT_FALSE(analysis::loadAlerts(dir + "/absent", none));
    removeAll(dir);
}

// ------------------------------------------------ experiment registry

TEST(Registry, IndexesMixedWorkspace)
{
    const std::string ws = makeTempDir("gest-registry");

    writeManifest(ws + "/sealed", "hash-a", 21, 4.5);
    writeHistory(ws + "/sealed", {{1.0, 2.0}, {4.5, 2.0}});

    writeHistory(ws + "/unsealed", {{1.0, 2.0}, {2.0, 2.0}, {3.0, 2.0}});
    writeFile(ws + "/unsealed/run_configuration.xml",
              "<gest_configuration><ga population_size=\"4\"/>"
              "</gest_configuration>");
    writeFile(ws + "/unsealed/status.json",
              "{\"state\": \"running\", \"total_generations\": 12, "
              "\"listen\": \"127.0.0.1:9\"}");

    ensureDir(ws + "/corrupt");
    writeFile(ws + "/corrupt/manifest.json", "{ not json ");

    ensureDir(ws + "/not_a_run");
    writeFile(ws + "/not_a_run/notes.txt", "nothing to see");

    const std::vector<registry::RunEntry> entries =
        registry::scanWorkspace(ws);
    ASSERT_EQ(entries.size(), 3u);  // not_a_run skipped; sorted by name

    EXPECT_EQ(entries[0].name, "corrupt");
    EXPECT_EQ(entries[0].status, "corrupt");
    EXPECT_FALSE(entries[0].note.empty());

    EXPECT_EQ(entries[1].name, "sealed");
    EXPECT_EQ(entries[1].status, "sealed");
    EXPECT_EQ(entries[1].state, "completed");
    EXPECT_EQ(entries[1].configHash, "hash-a");
    EXPECT_TRUE(entries[1].hasSeed);
    EXPECT_EQ(entries[1].seed, 21u);
    EXPECT_EQ(entries[1].gitSha, "deadbeefcafe");
    EXPECT_DOUBLE_EQ(entries[1].bestFitness, 4.5);
    EXPECT_EQ(entries[1].generations, 4);

    EXPECT_EQ(entries[2].name, "unsealed");
    EXPECT_EQ(entries[2].status, "unsealed");
    EXPECT_EQ(entries[2].state, "running");
    EXPECT_EQ(entries[2].generationsCompleted, 3);
    EXPECT_EQ(entries[2].generations, 12);  // from status.json
    EXPECT_EQ(entries[2].listen, "127.0.0.1:9");
    EXPECT_FALSE(entries[2].configHash.empty());
    EXPECT_DOUBLE_EQ(entries[2].bestFitness, 3.0);

    removeAll(ws);
}

TEST(Registry, CsvAndJsonTwinsShareTheSchema)
{
    const std::string ws = makeTempDir("gest-registry");
    writeManifest(ws + "/a", "hash-a", 1, 2.0);
    writeHistory(ws + "/a", {{2.0, 1.0}});
    const std::vector<registry::RunEntry> entries =
        registry::scanWorkspace(ws);

    const std::string csv = registry::formatRegistryCsv(entries);
    const std::vector<std::string> lines = split(csv, '\n');
    ASSERT_GE(lines.size(), 3u);
    EXPECT_EQ(lines[0], "# gest-registry v1");
    EXPECT_TRUE(startsWith(lines[1], "run,status,state,config_hash,"));
    // One data row per entry, every row column-complete.
    const std::size_t columns = split(lines[1], ',').size();
    EXPECT_EQ(split(lines[2], ',').size(), columns);

    json::Value parsed;
    ASSERT_TRUE(json::parse(registry::formatRegistryJson(ws, entries),
                            parsed, nullptr));
    EXPECT_EQ(parsed.numberOr("gest_registry_version", 0), 1.0);
    const json::Value* runs = parsed.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_TRUE(runs->isArray());
    ASSERT_EQ(runs->array.size(), 1u);
    EXPECT_EQ(runs->array[0].stringOr("run", ""), "a");
    EXPECT_EQ(runs->array[0].stringOr("seed", ""), "1");

    const std::string csv_path = registry::writeRegistry(ws, entries);
    EXPECT_TRUE(fileExists(csv_path));
    EXPECT_TRUE(fileExists(ws + "/registry.json"));
    removeAll(ws);
}

TEST(Registry, FilterMatchesExactAndPrefix)
{
    registry::RunEntry entry;
    entry.name = "night_run_01";
    entry.state = "completed";
    entry.configHash = "abcdef123456";
    entry.hasSeed = true;
    entry.seed = 42;

    EXPECT_TRUE(registry::matchesFilter(entry, "state", "completed"));
    EXPECT_FALSE(registry::matchesFilter(entry, "state", "running"));
    // Hash prefixes work like git's.
    EXPECT_TRUE(registry::matchesFilter(entry, "config_hash", "abcdef"));
    EXPECT_FALSE(registry::matchesFilter(entry, "config_hash", "bcd"));
    EXPECT_TRUE(registry::matchesFilter(entry, "seed", "42"));
    EXPECT_EQ(registry::entryField(entry, "no_such_column"), "");
}

TEST(Registry, SameTrajectoryCohortNeverFlagsARegression)
{
    const std::string ws = makeTempDir("gest-registry");
    const std::vector<std::pair<double, double>> history = {
        {1.0, 2.0}, {2.0, 2.1}, {3.0, 1.9}, {3.5, 2.0}};

    writeManifest(ws + "/base", "hash-x", 7, 3.5);
    writeHistory(ws + "/base", history);
    writeManifest(ws + "/twin", "hash-x", 7, 3.5);
    writeHistory(ws + "/twin", history);
    // A different configuration never joins the cohort.
    writeManifest(ws + "/other", "hash-y", 7, 9.0);
    writeHistory(ws + "/other", {{9.0, 2.0}});

    const std::vector<registry::RunEntry> entries =
        registry::scanWorkspace(ws);
    const std::vector<registry::BaselineComparison> rows =
        registry::screenBaseline(ws, "base", entries);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].candidate, "twin");
    EXPECT_TRUE(rows[0].sameSeed);
    // Identical trajectories: the permutation test is exactly 1.
    EXPECT_DOUBLE_EQ(rows[0].fitnessP, 1.0);
    EXPECT_FALSE(rows[0].fitnessRegression);
    EXPECT_FALSE(rows[0].throughputDrift);

    // The baseline may also be named by path (trailing slash included).
    const std::vector<registry::BaselineComparison> by_path =
        registry::screenBaseline(ws, ws + "/base/", entries);
    EXPECT_EQ(by_path.size(), 1u);

    EXPECT_THROW(registry::screenBaseline(ws, "absent", entries),
                 FatalError);
    removeAll(ws);
}

TEST(Registry, ScanRejectsAMissingWorkspace)
{
    EXPECT_THROW(registry::scanWorkspace("/no/such/workspace"),
                 FatalError);
}

} // namespace
} // namespace gest
