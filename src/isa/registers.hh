/**
 * @file
 * Register-name parsing.
 *
 * Operand definitions name registers as free-form strings ("x2 x3 x4" in
 * the paper's Figure 4). The simulator needs architectural indices, so this
 * module maps the common ARM (A64/A32) and x86-64 spellings onto a simple
 * two-class register model: 32 integer registers and 32 vector registers.
 */

#ifndef GEST_ISA_REGISTERS_HH
#define GEST_ISA_REGISTERS_HH

#include <string>
#include <string_view>

namespace gest {
namespace isa {

/** Architectural register class in the simulator's register model. */
enum class RegClass
{
    Int, ///< general-purpose integer register (64-bit)
    Vec, ///< FP/SIMD register (128-bit)
};

/** A parsed register reference. */
struct RegRef
{
    RegClass cls = RegClass::Int;
    int index = 0;

    bool operator==(const RegRef&) const = default;
};

/**
 * Parse a register name. Understands ARM A64 (x0-x30, w0-w30, sp, v/q/d/s
 * 0-31), ARM A32 (r0-r15), and x86-64 (rax...r15, xmm/ymm/zmm 0-31).
 *
 * @return true and fill @p out on success; false for non-register text.
 */
bool parseRegister(std::string_view name, RegRef& out);

/** Number of integer registers in the simulator's register model. */
constexpr int numIntRegs = 32;

/** Number of vector registers in the simulator's register model. */
constexpr int numVecRegs = 32;

} // namespace isa
} // namespace gest

#endif // GEST_ISA_REGISTERS_HH
