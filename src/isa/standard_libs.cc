#include "isa/standard_libs.hh"

namespace gest {
namespace isa {

InstructionLibrary
armLikeLibrary()
{
    InstructionLibrary lib;

    // Register pools. x10 is the memory base (initialized by the
    // template/platform to point at a small, cache-resident buffer);
    // x2/x3 receive load results and are intentionally disjoint from the
    // compute pool x4-x9 (§III.B.1's dependency-avoidance advice).
    lib.addOperand(OperandDef::makeRegisters(
        "int_reg", {"x4", "x5", "x6", "x7", "x8", "x9"}));
    lib.addOperand(OperandDef::makeRegisters(
        "mem_result", {"x2", "x3"}));
    lib.addOperand(OperandDef::makeRegisters(
        "mem_address_register", {"x10"}));
    lib.addOperand(OperandDef::makeRegisters(
        "vec_reg", {"v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"}));
    // d/q names alias the v registers (AArch64 scalar views of the SIMD
    // register file); the simulator resolves them to the same Vec file.
    lib.addOperand(OperandDef::makeRegisters(
        "fp_scalar_reg", {"d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"}));
    lib.addOperand(OperandDef::makeRegisters(
        "vec_q_reg", {"q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7"}));
    lib.addOperand(OperandDef::makeImmediate("immediate_value", 0, 256, 8));
    lib.addOperand(OperandDef::makeImmediate("shift_amount", 0, 31, 1));

    // Short-latency integer.
    lib.addInstruction("ADD", {"int_reg", "int_reg", "int_reg"},
                       "ADD op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Add);
    lib.addInstruction("SUB", {"int_reg", "int_reg", "int_reg"},
                       "SUB op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Sub);
    lib.addInstruction("EOR", {"int_reg", "int_reg", "int_reg"},
                       "EOR op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Eor);
    lib.addInstruction("ORR", {"int_reg", "int_reg", "int_reg"},
                       "ORR op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Orr);
    lib.addInstruction("LSL", {"int_reg", "int_reg", "shift_amount"},
                       "LSL op1, op2, #op3", InstrClass::ShortInt,
                       Opcode::Lsl);

    // Long-latency integer.
    lib.addInstruction("MUL", {"int_reg", "int_reg", "int_reg"},
                       "MUL op1, op2, op3", InstrClass::LongInt,
                       Opcode::Mul);
    lib.addInstruction("MADD",
                       {"int_reg", "int_reg", "int_reg", "int_reg"},
                       "MADD op1, op2, op3, op4", InstrClass::LongInt,
                       Opcode::MAdd);
    lib.addInstruction("UDIV", {"int_reg", "int_reg", "int_reg"},
                       "UDIV op1, op2, op3", InstrClass::LongInt,
                       Opcode::UDiv);

    // Scalar FP and SIMD (128-bit vector forms).
    lib.addInstruction("FADD", {"vec_reg", "vec_reg", "vec_reg"},
                       "FADD op1.2D, op2.2D, op3.2D",
                       InstrClass::FloatSimd, Opcode::VAdd);
    lib.addInstruction("FMUL", {"vec_reg", "vec_reg", "vec_reg"},
                       "FMUL op1.2D, op2.2D, op3.2D",
                       InstrClass::FloatSimd, Opcode::VMul);
    lib.addInstruction("FMLA", {"vec_reg", "vec_reg", "vec_reg"},
                       "FMLA op1.2D, op2.2D, op3.2D",
                       InstrClass::FloatSimd, Opcode::VFma);
    lib.addInstruction("FADDS",
                       {"fp_scalar_reg", "fp_scalar_reg", "fp_scalar_reg"},
                       "FADD op1, op2, op3",
                       InstrClass::FloatSimd, Opcode::FAdd);
    lib.addInstruction("FMULS",
                       {"fp_scalar_reg", "fp_scalar_reg", "fp_scalar_reg"},
                       "FMUL op1, op2, op3",
                       InstrClass::FloatSimd, Opcode::FMul);
    lib.addInstruction("VAND", {"vec_reg", "vec_reg", "vec_reg"},
                       "AND op1.16B, op2.16B, op3.16B",
                       InstrClass::FloatSimd, Opcode::VAnd);

    // Memory. Offsets stay within a 4 KiB cache-resident buffer.
    lib.addInstruction("LDR",
                       {"mem_result", "mem_address_register",
                        "immediate_value"},
                       "LDR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Load);
    lib.addInstruction("STR",
                       {"int_reg", "mem_address_register",
                        "immediate_value"},
                       "STR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Store);
    lib.addInstruction("LDRQ",
                       {"vec_q_reg", "mem_address_register",
                        "immediate_value"},
                       "LDR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Load);
    lib.addInstruction("STRQ",
                       {"vec_q_reg", "mem_address_register",
                        "immediate_value"},
                       "STR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Store);
    lib.addInstruction("LDP",
                       {"mem_result", "mem_result",
                        "mem_address_register"},
                       "LDP op1, op2, [op3]", InstrClass::Mem,
                       Opcode::LoadPair);

    // Control flow: an always-taken branch to the next instruction keeps
    // the branch unit and fetch redirection busy without altering the
    // loop's semantics.
    lib.addInstruction("BNEXT", {}, "B .+4", InstrClass::Branch,
                       Opcode::Branch);
    lib.addInstruction("BNE", {}, "B.NE .+4", InstrClass::Branch,
                       Opcode::BranchCond);

    lib.addInstruction("NOP", {}, "NOP", InstrClass::Nop, Opcode::Nop);

    return lib;
}

InstructionLibrary
armV7LikeLibrary()
{
    InstructionLibrary lib;

    // A32 register pools: r0 is reserved for the loop counter by the
    // usual templates, r10 is the memory base, r2/r3 take load results
    // and r4-r9 are the compute pool.
    lib.addOperand(OperandDef::makeRegisters(
        "int_reg", {"r4", "r5", "r6", "r7", "r8", "r9"}));
    lib.addOperand(OperandDef::makeRegisters("mem_result", {"r2", "r3"}));
    lib.addOperand(OperandDef::makeRegisters(
        "mem_address_register", {"r10"}));
    // NEON quad registers (128-bit) and double registers (64-bit).
    lib.addOperand(OperandDef::makeRegisters(
        "q_reg", {"q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7"}));
    lib.addOperand(OperandDef::makeRegisters(
        "d_reg", {"d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"}));
    // A32 LDR/STR immediate offsets: +/-4095; keep the cache-resident
    // 0..256 window used throughout.
    lib.addOperand(OperandDef::makeImmediate("immediate_value", 0, 256,
                                             8));
    lib.addOperand(OperandDef::makeImmediate("shift_amount", 0, 31, 1));

    // Short-latency integer.
    lib.addInstruction("ADD", {"int_reg", "int_reg", "int_reg"},
                       "ADD op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Add);
    lib.addInstruction("SUB", {"int_reg", "int_reg", "int_reg"},
                       "SUB op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Sub);
    lib.addInstruction("EOR", {"int_reg", "int_reg", "int_reg"},
                       "EOR op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Eor);
    lib.addInstruction("ORR", {"int_reg", "int_reg", "int_reg"},
                       "ORR op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Orr);
    lib.addInstruction("LSL", {"int_reg", "int_reg", "shift_amount"},
                       "LSL op1, op2, #op3", InstrClass::ShortInt,
                       Opcode::Lsl);

    // Long-latency integer.
    lib.addInstruction("MUL", {"int_reg", "int_reg", "int_reg"},
                       "MUL op1, op2, op3", InstrClass::LongInt,
                       Opcode::Mul);
    lib.addInstruction("MLA",
                       {"int_reg", "int_reg", "int_reg", "int_reg"},
                       "MLA op1, op2, op3, op4", InstrClass::LongInt,
                       Opcode::MAdd);
    lib.addInstruction("SMULL_LO",
                       {"int_reg", "int_reg", "int_reg"},
                       "SMULL op1, r12, op2, op3", InstrClass::LongInt,
                       Opcode::SMull);

    // NEON: 128-bit quad forms and 64-bit scalar VFP forms.
    lib.addInstruction("VADDQ", {"q_reg", "q_reg", "q_reg"},
                       "VADD.F32 op1, op2, op3", InstrClass::FloatSimd,
                       Opcode::VAdd);
    lib.addInstruction("VMULQ", {"q_reg", "q_reg", "q_reg"},
                       "VMUL.F32 op1, op2, op3", InstrClass::FloatSimd,
                       Opcode::VMul);
    lib.addInstruction("VMLAQ", {"q_reg", "q_reg", "q_reg"},
                       "VMLA.F32 op1, op2, op3", InstrClass::FloatSimd,
                       Opcode::VFma);
    lib.addInstruction("VANDQ", {"q_reg", "q_reg", "q_reg"},
                       "VAND op1, op2, op3", InstrClass::FloatSimd,
                       Opcode::VAnd);
    lib.addInstruction("VADDD", {"d_reg", "d_reg", "d_reg"},
                       "VADD.F64 op1, op2, op3", InstrClass::FloatSimd,
                       Opcode::FAdd);
    lib.addInstruction("VMULD", {"d_reg", "d_reg", "d_reg"},
                       "VMUL.F64 op1, op2, op3", InstrClass::FloatSimd,
                       Opcode::FMul);

    // Memory.
    lib.addInstruction("LDR",
                       {"mem_result", "mem_address_register",
                        "immediate_value"},
                       "LDR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Load);
    lib.addInstruction("STR",
                       {"int_reg", "mem_address_register",
                        "immediate_value"},
                       "STR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Store);
    lib.addInstruction("VLDR",
                       {"d_reg", "mem_address_register",
                        "immediate_value"},
                       "VLDR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Load);
    lib.addInstruction("VSTR",
                       {"d_reg", "mem_address_register",
                        "immediate_value"},
                       "VSTR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Store);

    // Control flow: A32 branch to the next instruction.
    lib.addInstruction("BNEXT", {}, "B .+8", InstrClass::Branch,
                       Opcode::Branch);
    lib.addInstruction("BNE", {}, "BNE .+8", InstrClass::Branch,
                       Opcode::BranchCond);

    lib.addInstruction("NOP", {}, "NOP", InstrClass::Nop, Opcode::Nop);

    return lib;
}

InstructionLibrary
armCacheStressLibrary()
{
    InstructionLibrary lib;

    lib.addOperand(OperandDef::makeRegisters(
        "int_reg", {"x4", "x5", "x6", "x7", "x8", "x9"}));
    lib.addOperand(OperandDef::makeRegisters("mem_result", {"x2", "x3"}));
    lib.addOperand(OperandDef::makeRegisters(
        "mem_address_register", {"x10"}));
    lib.addOperand(OperandDef::makeImmediate("immediate_value", 0, 256,
                                             8));
    // Pointer-advance strides: up to the AArch64 ADD imm12 limit so the
    // rendered code stays assemblable. 64-byte granularity (one line).
    lib.addOperand(OperandDef::makeImmediate("stride_value", 64, 4032,
                                             64));

    // Strided pointer advance: the knob that lets the GA walk the
    // access stream through a footprint larger than L1/L2.
    lib.addInstruction("ADVANCE",
                       {"mem_address_register", "stride_value"},
                       "ADD op1, op1, #op2", InstrClass::ShortInt,
                       Opcode::AddWrap);

    lib.addInstruction("LDR",
                       {"mem_result", "mem_address_register",
                        "immediate_value"},
                       "LDR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Load);
    lib.addInstruction("STR",
                       {"int_reg", "mem_address_register",
                        "immediate_value"},
                       "STR op1, [op2, #op3]", InstrClass::Mem,
                       Opcode::Store);
    lib.addInstruction("LDP",
                       {"mem_result", "mem_result",
                        "mem_address_register"},
                       "LDP op1, op2, [op3]", InstrClass::Mem,
                       Opcode::LoadPair);

    // Compute filler the GA must learn to displace.
    lib.addInstruction("ADD", {"int_reg", "int_reg", "int_reg"},
                       "ADD op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Add);
    lib.addInstruction("EOR", {"int_reg", "int_reg", "int_reg"},
                       "EOR op1, op2, op3", InstrClass::ShortInt,
                       Opcode::Eor);
    lib.addInstruction("MUL", {"int_reg", "int_reg", "int_reg"},
                       "MUL op1, op2, op3", InstrClass::LongInt,
                       Opcode::Mul);
    lib.addInstruction("NOP", {}, "NOP", InstrClass::Nop, Opcode::Nop);

    return lib;
}

InstructionLibrary
x86LikeLibrary()
{
    InstructionLibrary lib;

    lib.addOperand(OperandDef::makeRegisters(
        "int_reg", {"rax", "rcx", "rdx", "rbx", "rsi", "rdi"}));
    lib.addOperand(OperandDef::makeRegisters("mem_result", {"r9", "r11"}));
    lib.addOperand(OperandDef::makeRegisters(
        "mem_address_register", {"r10"}));
    lib.addOperand(OperandDef::makeRegisters(
        "vec_reg",
        {"xmm0", "xmm1", "xmm2", "xmm3", "xmm4", "xmm5", "xmm6", "xmm7"}));
    lib.addOperand(OperandDef::makeImmediate("immediate_value", 0, 256, 8));

    // Short-latency integer (two-operand destructive forms).
    lib.addInstruction("ADD", {"int_reg", "int_reg"},
                       "add op1, op2", InstrClass::ShortInt, Opcode::Add);
    lib.addInstruction("SUB", {"int_reg", "int_reg"},
                       "sub op1, op2", InstrClass::ShortInt, Opcode::Sub);
    lib.addInstruction("XOR", {"int_reg", "int_reg"},
                       "xor op1, op2", InstrClass::ShortInt, Opcode::Eor);
    lib.addInstruction("OR", {"int_reg", "int_reg"},
                       "or op1, op2", InstrClass::ShortInt, Opcode::Orr);

    // Long-latency integer.
    lib.addInstruction("IMUL", {"int_reg", "int_reg"},
                       "imul op1, op2", InstrClass::LongInt, Opcode::Mul);

    // SSE2 packed FP (the Athlon II has 128-bit FP datapaths).
    lib.addInstruction("ADDPD", {"vec_reg", "vec_reg"},
                       "addpd op1, op2", InstrClass::FloatSimd,
                       Opcode::VAdd);
    lib.addInstruction("MULPD", {"vec_reg", "vec_reg"},
                       "mulpd op1, op2", InstrClass::FloatSimd,
                       Opcode::VMul);
    lib.addInstruction("ADDSD", {"vec_reg", "vec_reg"},
                       "addsd op1, op2", InstrClass::FloatSimd,
                       Opcode::FAdd);
    lib.addInstruction("MULSD", {"vec_reg", "vec_reg"},
                       "mulsd op1, op2", InstrClass::FloatSimd,
                       Opcode::FMul);
    lib.addInstruction("PAND", {"vec_reg", "vec_reg"},
                       "pand op1, op2", InstrClass::FloatSimd,
                       Opcode::VAnd);

    // Memory.
    lib.addInstruction("LOAD",
                       {"mem_result", "mem_address_register",
                        "immediate_value"},
                       "mov op1, [op2 + op3]", InstrClass::Mem,
                       Opcode::Load);
    lib.addInstruction("STORE",
                       {"int_reg", "mem_address_register",
                        "immediate_value"},
                       "mov [op2 + op3], op1", InstrClass::Mem,
                       Opcode::Store);
    // movupd: the offset pool strides by 8, so accesses may be
    // 16-byte-unaligned and the aligned form would fault.
    lib.addInstruction("LOADPD",
                       {"vec_reg", "mem_address_register",
                        "immediate_value"},
                       "movupd op1, [op2 + op3]", InstrClass::Mem,
                       Opcode::Load);

    lib.addInstruction("JNEXT", {}, "jmp .+2", InstrClass::Branch,
                       Opcode::Branch);
    lib.addInstruction("NOP", {}, "nop", InstrClass::Nop, Opcode::Nop);

    return lib;
}

} // namespace isa
} // namespace gest
