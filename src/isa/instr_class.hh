/**
 * @file
 * Instruction classification and semantic opcodes.
 *
 * The paper classifies instructions as short-latency integer, long-latency
 * integer, float/SIMD, memory and branch (Table III / Table IV breakdowns).
 * InstrClass carries that classification. Opcode is the *semantic* tag the
 * simulator executes; a user-defined XML instruction is bound to an Opcode
 * either through an explicit `semantic` attribute or by looking up its
 * mnemonic in the built-in decoder table.
 */

#ifndef GEST_ISA_INSTR_CLASS_HH
#define GEST_ISA_INSTR_CLASS_HH

#include <string>
#include <string_view>

namespace gest {
namespace isa {

/** Coarse instruction class used for breakdowns and the power model. */
enum class InstrClass
{
    ShortInt,  ///< 1-cycle integer ALU (ADD, SUB, EOR, ...)
    LongInt,   ///< multi-cycle integer (MUL, MADD, DIV, ...)
    FloatSimd, ///< scalar FP and vector/SIMD
    Mem,       ///< loads and stores
    Branch,    ///< control flow
    Nop,       ///< padding
};

/** Number of InstrClass values (for breakdown arrays). */
constexpr int numInstrClasses = 6;

/** Semantic opcode executed by the simulator. */
enum class Opcode
{
    // Short-latency integer.
    Add, Sub, And, Orr, Eor, Lsl, Lsr, Mov, Cmp,
    /**
     * Pointer advance with wraparound: the destination register is
     * advanced by the immediate and wrapped into the simulator's data
     * buffer. Used by the LLC/DRAM stress extension (§VII) to stride
     * load/store streams through a footprint larger than the caches.
     */
    AddWrap,
    // Long-latency integer.
    Mul, MAdd, SMull, UDiv,
    // Scalar floating point.
    FAdd, FMul, FDiv, FMAdd, FSqrt,
    // SIMD (128-bit vector).
    VAdd, VMul, VFma, VAnd,
    // Memory.
    Load, Store, LoadPair, StorePair,
    // Control flow.
    Branch, BranchCond,
    // Padding.
    Nop,
};

/** @return a stable display name, e.g. "Float/SIMD". */
const char* toString(InstrClass cls);

/** @return the mnemonic-ish name of an opcode, e.g. "FMUL". */
const char* toString(Opcode op);

/** Parse a class name ("int", "longint", "float", "simd", "mem", ...). */
InstrClass instrClassFromString(std::string_view s);

/** The default class an opcode belongs to. */
InstrClass defaultClass(Opcode op);

/**
 * Look up the semantic opcode for a mnemonic (case-insensitive). Knows the
 * common ARM (A32/A64) and x86 spellings. @return true on success.
 */
bool opcodeFromMnemonic(std::string_view mnemonic, Opcode& out);

/** @return true for opcodes that read memory. */
bool isLoad(Opcode op);

/** @return true for opcodes that write memory. */
bool isStore(Opcode op);

/** @return true for control-flow opcodes. */
bool isBranch(Opcode op);

} // namespace isa
} // namespace gest

#endif // GEST_ISA_INSTR_CLASS_HH
