/**
 * @file
 * Bundled instruction libraries.
 *
 * The paper ships measurement scripts and instruction definitions for ARM
 * and x86 (§IV). These builders create the equivalent default libraries:
 * an ARM-A64-flavoured set used for the Cortex-A15/A7 and X-Gene2
 * experiments and an x86-64-flavoured set used for the AMD Athlon dI/dt
 * experiment. Both follow the paper's register-allocation advice: memory
 * destination registers are disjoint from the integer compute registers so
 * the GA is never forced to make ALU operations depend on loads.
 */

#ifndef GEST_ISA_STANDARD_LIBS_HH
#define GEST_ISA_STANDARD_LIBS_HH

#include "isa/library.hh"

namespace gest {
namespace isa {

/** ARM-A64-flavoured default library (integer, FP/SIMD, memory, branch). */
InstructionLibrary armLikeLibrary();

/**
 * ARM-A32 (ARMv7) flavoured library: r-register integer ops, NEON
 * d/q-register FP, and A32 addressing — the ISA the paper's Cortex-A15
 * and Cortex-A7 boards actually run. Functionally equivalent to the
 * A64 library for the simulator (same semantic opcodes); provided for
 * faithful source generation on 32-bit targets.
 */
InstructionLibrary armV7LikeLibrary();

/** x86-64-flavoured default library. */
InstructionLibrary x86LikeLibrary();

/**
 * ARM-flavoured library for the LLC/DRAM stress extension (§VII): the
 * memory pointer can be advanced with strided ADDWRAP instructions, so
 * the GA controls the access stream's stride and footprint and can
 * optimize for cache misses. Meant for platforms with an L2 model and a
 * buffer larger than the caches.
 */
InstructionLibrary armCacheStressLibrary();

/** The integer register holding the memory buffer base in both libraries. */
constexpr int memBaseIntReg = 10;

} // namespace isa
} // namespace gest

#endif // GEST_ISA_STANDARD_LIBS_HH
