/**
 * @file
 * The template source file (§III.B.2).
 *
 * The GA prints each individual into a user-provided template at the line
 * marked `#loop_code`. The template carries everything else: register and
 * memory initialization (checkerboard patterns are recommended by the
 * paper), the loop head/tail, fixed padding code, and the exit sequence.
 */

#ifndef GEST_ISA_ASM_TEMPLATE_HH
#define GEST_ISA_ASM_TEMPLATE_HH

#include <string>
#include <vector>

namespace gest {
namespace isa {

/**
 * A source template with a single `#loop_code` insertion point.
 */
class AsmTemplate
{
  public:
    /**
     * Parse template text. fatal() unless exactly one line contains the
     * `#loop_code` marker.
     */
    explicit AsmTemplate(std::string text);

    /** Load the template from a file. */
    static AsmTemplate fromFile(const std::string& path);

    /**
     * Render the template with @p loop_lines in place of the marker.
     * Each line inherits the marker line's indentation.
     */
    std::string render(const std::vector<std::string>& loop_lines) const;

    /** The original template text. */
    const std::string& text() const { return _text; }

    /** The marker string looked for in templates. */
    static constexpr const char* marker = "#loop_code";

  private:
    std::string _text;
    std::vector<std::string> _head;   ///< lines before the marker
    std::vector<std::string> _tail;   ///< lines after the marker
    std::string _indent;              ///< marker line indentation
};

} // namespace isa
} // namespace gest

#endif // GEST_ISA_ASM_TEMPLATE_HH
