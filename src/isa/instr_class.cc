#include "isa/instr_class.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace isa {

const char*
toString(InstrClass cls)
{
    switch (cls) {
      case InstrClass::ShortInt: return "ShortInt";
      case InstrClass::LongInt: return "LongInt";
      case InstrClass::FloatSimd: return "Float/SIMD";
      case InstrClass::Mem: return "Mem";
      case InstrClass::Branch: return "Branch";
      case InstrClass::Nop: return "Nop";
    }
    return "?";
}

const char*
toString(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "ADD";
      case Opcode::Sub: return "SUB";
      case Opcode::And: return "AND";
      case Opcode::Orr: return "ORR";
      case Opcode::Eor: return "EOR";
      case Opcode::Lsl: return "LSL";
      case Opcode::Lsr: return "LSR";
      case Opcode::Mov: return "MOV";
      case Opcode::Cmp: return "CMP";
      case Opcode::AddWrap: return "ADDWRAP";
      case Opcode::Mul: return "MUL";
      case Opcode::MAdd: return "MADD";
      case Opcode::SMull: return "SMULL";
      case Opcode::UDiv: return "UDIV";
      case Opcode::FAdd: return "FADD";
      case Opcode::FMul: return "FMUL";
      case Opcode::FDiv: return "FDIV";
      case Opcode::FMAdd: return "FMADD";
      case Opcode::FSqrt: return "FSQRT";
      case Opcode::VAdd: return "VADD";
      case Opcode::VMul: return "VMUL";
      case Opcode::VFma: return "VFMA";
      case Opcode::VAnd: return "VAND";
      case Opcode::Load: return "LDR";
      case Opcode::Store: return "STR";
      case Opcode::LoadPair: return "LDP";
      case Opcode::StorePair: return "STP";
      case Opcode::Branch: return "B";
      case Opcode::BranchCond: return "BCC";
      case Opcode::Nop: return "NOP";
    }
    return "?";
}

InstrClass
instrClassFromString(std::string_view s)
{
    const std::string t = toLower(trim(s));
    if (t == "int" || t == "shortint" || t == "integer")
        return InstrClass::ShortInt;
    if (t == "longint" || t == "long_int" || t == "long")
        return InstrClass::LongInt;
    if (t == "float" || t == "simd" || t == "float/simd" || t == "fp" ||
        t == "vector")
        return InstrClass::FloatSimd;
    if (t == "mem" || t == "memory" || t == "load" || t == "store")
        return InstrClass::Mem;
    if (t == "branch" || t == "control")
        return InstrClass::Branch;
    if (t == "nop" || t == "pad")
        return InstrClass::Nop;
    fatal("unknown instruction type '", std::string(s), "'");
}

InstrClass
defaultClass(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Orr:
      case Opcode::Eor:
      case Opcode::Lsl:
      case Opcode::Lsr:
      case Opcode::Mov:
      case Opcode::Cmp:
      case Opcode::AddWrap:
        return InstrClass::ShortInt;
      case Opcode::Mul:
      case Opcode::MAdd:
      case Opcode::SMull:
      case Opcode::UDiv:
        return InstrClass::LongInt;
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FMAdd:
      case Opcode::FSqrt:
      case Opcode::VAdd:
      case Opcode::VMul:
      case Opcode::VFma:
      case Opcode::VAnd:
        return InstrClass::FloatSimd;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::LoadPair:
      case Opcode::StorePair:
        return InstrClass::Mem;
      case Opcode::Branch:
      case Opcode::BranchCond:
        return InstrClass::Branch;
      case Opcode::Nop:
        return InstrClass::Nop;
    }
    return InstrClass::Nop;
}

bool
opcodeFromMnemonic(std::string_view mnemonic, Opcode& out)
{
    const std::string m = toLower(trim(mnemonic));
    struct Entry { const char* name; Opcode op; };
    static const Entry table[] = {
        // ARM and generic spellings.
        {"add", Opcode::Add}, {"sub", Opcode::Sub}, {"and", Opcode::And},
        {"orr", Opcode::Orr}, {"eor", Opcode::Eor}, {"lsl", Opcode::Lsl},
        {"lsr", Opcode::Lsr}, {"mov", Opcode::Mov}, {"cmp", Opcode::Cmp},
        {"addwrap", Opcode::AddWrap},
        {"mul", Opcode::Mul}, {"madd", Opcode::MAdd},
        {"mla", Opcode::MAdd}, {"smull", Opcode::SMull},
        {"udiv", Opcode::UDiv}, {"sdiv", Opcode::UDiv},
        {"fadd", Opcode::FAdd}, {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv}, {"fmadd", Opcode::FMAdd},
        {"fmla", Opcode::FMAdd}, {"fsqrt", Opcode::FSqrt},
        {"vadd", Opcode::VAdd}, {"vmul", Opcode::VMul},
        {"vfma", Opcode::VFma}, {"vand", Opcode::VAnd},
        {"ldr", Opcode::Load}, {"str", Opcode::Store},
        {"ldp", Opcode::LoadPair}, {"stp", Opcode::StorePair},
        {"b", Opcode::Branch}, {"bne", Opcode::BranchCond},
        {"beq", Opcode::BranchCond}, {"bcc", Opcode::BranchCond},
        {"nop", Opcode::Nop},
        // x86 spellings.
        {"xor", Opcode::Eor}, {"or", Opcode::Orr}, {"shl", Opcode::Lsl},
        {"shr", Opcode::Lsr}, {"imul", Opcode::Mul},
        {"div", Opcode::UDiv}, {"idiv", Opcode::UDiv},
        {"addsd", Opcode::FAdd}, {"mulsd", Opcode::FMul},
        {"divsd", Opcode::FDiv}, {"sqrtsd", Opcode::FSqrt},
        {"addps", Opcode::VAdd}, {"addpd", Opcode::VAdd},
        {"mulps", Opcode::VMul}, {"mulpd", Opcode::VMul},
        {"vfmadd231pd", Opcode::VFma}, {"vfmadd231ps", Opcode::VFma},
        {"andps", Opcode::VAnd}, {"pand", Opcode::VAnd},
        {"movq", Opcode::Load}, {"jmp", Opcode::Branch},
        {"jne", Opcode::BranchCond}, {"jnz", Opcode::BranchCond},
    };
    for (const Entry& e : table) {
        if (m == e.name) {
            out = e.op;
            return true;
        }
    }
    return false;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Load || op == Opcode::LoadPair;
}

bool
isStore(Opcode op)
{
    return op == Opcode::Store || op == Opcode::StorePair;
}

bool
isBranch(Opcode op)
{
    return op == Opcode::Branch || op == Opcode::BranchCond;
}

} // namespace isa
} // namespace gest
