/**
 * @file
 * Operand definitions.
 *
 * An operand definition names the finite set of values an instruction slot
 * may take: either a list of register names or an immediate range described
 * by min/max/stride (the paper's Figure 4: 0..256 in strides of 8 gives 33
 * values). Operand definitions are shared between instructions through
 * their ids.
 */

#ifndef GEST_ISA_OPERAND_HH
#define GEST_ISA_OPERAND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/registers.hh"

namespace gest {
namespace isa {

/** Whether an operand draws from registers or an immediate range. */
enum class OperandKind
{
    Register,
    Immediate,
};

/**
 * A finite pool of values for one instruction operand slot.
 */
class OperandDef
{
  public:
    /** Build a register operand from a list of register names. */
    static OperandDef makeRegisters(std::string id,
                                    std::vector<std::string> names);

    /** Build an immediate operand covering min..max in steps of stride. */
    static OperandDef makeImmediate(std::string id, std::int64_t min,
                                    std::int64_t max, std::int64_t stride);

    /** Unique id referenced by instruction definitions. */
    const std::string& id() const { return _id; }

    /** Register or immediate. */
    OperandKind kind() const { return _kind; }

    /** Number of distinct values this operand can take. */
    std::size_t valueCount() const;

    /** Render value @p index as source text ("x3" or "24"). */
    std::string renderValue(std::size_t index) const;

    /** The numeric value of immediate choice @p index. */
    std::int64_t immediateValue(std::size_t index) const;

    /** The register name of register choice @p index. */
    const std::string& registerName(std::size_t index) const;

    /**
     * The parsed register of choice @p index.
     * @return false if the name is not a recognizable register.
     */
    bool parsedRegister(std::size_t index, RegRef& out) const;

    /** Immediate range lower bound (Immediate kind only). */
    std::int64_t immMin() const { return _min; }

    /** Immediate range upper bound (Immediate kind only). */
    std::int64_t immMax() const { return _max; }

    /** Immediate range stride (Immediate kind only). */
    std::int64_t immStride() const { return _stride; }

  private:
    OperandDef() = default;

    std::string _id;
    OperandKind _kind = OperandKind::Register;
    std::vector<std::string> _registers;
    std::vector<RegRef> _parsed;
    std::vector<bool> _parseOk;
    std::int64_t _min = 0;
    std::int64_t _max = 0;
    std::int64_t _stride = 1;
};

/**
 * Value-bin universe of one operand slot, for the coverage ledger and
 * attribution aggregates: every register is its own bin (port and bank
 * behavior depend on the exact register), immediate ranges fold into at
 * most 8 equal-width bins (what matters for stress behavior is the
 * magnitude band — a stride or offset class — not the exact constant).
 */
std::size_t operandBinCount(const OperandDef& def);

/** Bin of value choice @p choice; always < operandBinCount(def). */
std::size_t operandBin(const OperandDef& def, std::uint32_t choice);

/** Human-readable label of @p bin, e.g. "x3" or "[8..64]". */
std::string operandBinLabel(const OperandDef& def, std::size_t bin);

} // namespace isa
} // namespace gest

#endif // GEST_ISA_OPERAND_HH
