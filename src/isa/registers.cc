#include "isa/registers.hh"

#include <cctype>

#include "util/strutil.hh"

namespace gest {
namespace isa {

namespace {

/** Parse a trailing decimal index; @return -1 on failure. */
int
parseIndex(std::string_view digits)
{
    if (digits.empty() || digits.size() > 2)
        return -1;
    int value = 0;
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return -1;
        value = value * 10 + (c - '0');
    }
    return value;
}

} // namespace

bool
parseRegister(std::string_view name, RegRef& out)
{
    const std::string n = toLower(trim(name));
    if (n.empty())
        return false;

    // x86-64 named GPRs map onto integer indices 0-15.
    struct Named { const char* name; int index; };
    static const Named x86Names[] = {
        {"rax", 0}, {"rcx", 1}, {"rdx", 2}, {"rbx", 3},
        {"rsp", 4}, {"rbp", 5}, {"rsi", 6}, {"rdi", 7},
        {"eax", 0}, {"ecx", 1}, {"edx", 2}, {"ebx", 3},
    };
    for (const Named& reg : x86Names) {
        if (n == reg.name) {
            out = {RegClass::Int, reg.index};
            return true;
        }
    }
    if (n == "sp") {
        out = {RegClass::Int, 31};
        return true;
    }

    // Prefixed forms: letter(s) + index.
    std::size_t prefix_len = 0;
    while (prefix_len < n.size() &&
           std::isalpha(static_cast<unsigned char>(n[prefix_len])))
        ++prefix_len;
    const std::string prefix = n.substr(0, prefix_len);
    const int index = parseIndex(n.substr(prefix_len));
    if (index < 0)
        return false;

    if (prefix == "x" || prefix == "w" || prefix == "r") {
        if (index >= numIntRegs)
            return false;
        out = {RegClass::Int, index};
        return true;
    }
    if (prefix == "v" || prefix == "q" || prefix == "d" || prefix == "s" ||
        prefix == "xmm" || prefix == "ymm" || prefix == "zmm") {
        if (index >= numVecRegs)
            return false;
        out = {RegClass::Vec, index};
        return true;
    }
    return false;
}

} // namespace isa
} // namespace gest
