#include "isa/library.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace isa {

void
InstructionLibrary::addOperand(OperandDef def)
{
    if (findOperand(def.id()) >= 0)
        fatal("duplicate operand id '", def.id(), "'");
    _operands.push_back(std::move(def));
}

void
InstructionLibrary::addInstruction(std::string name,
                                   const std::vector<std::string>&
                                       operand_ids,
                                   std::string format, InstrClass cls,
                                   Opcode opcode)
{
    if (findInstruction(name) >= 0)
        fatal("duplicate instruction name '", name, "'");

    InstructionDef def;
    def.name = std::move(name);
    def.format = std::move(format);
    def.cls = cls;
    def.opcode = opcode;
    for (const std::string& id : operand_ids) {
        const int index = findOperand(id);
        if (index < 0)
            fatal("instruction '", def.name,
                  "' references undefined operand id '", id, "'");
        def.operandIndex.push_back(static_cast<std::uint32_t>(index));
    }

    // The format must reference every slot so rendered code is complete.
    for (std::size_t slot = 0; slot < def.operandIndex.size(); ++slot) {
        const std::string token = "op" + std::to_string(slot + 1);
        if (def.format.find(token) == std::string::npos)
            fatal("instruction '", def.name, "' format '", def.format,
                  "' does not mention ", token);
    }

    _instructions.push_back(std::move(def));
}

const InstructionDef&
InstructionLibrary::instruction(std::size_t index) const
{
    if (index >= _instructions.size())
        panic("instruction index ", index, " out of range");
    return _instructions[index];
}

const OperandDef&
InstructionLibrary::operand(std::size_t index) const
{
    if (index >= _operands.size())
        panic("operand index ", index, " out of range");
    return _operands[index];
}

int
InstructionLibrary::findInstruction(std::string_view name) const
{
    for (std::size_t i = 0; i < _instructions.size(); ++i) {
        if (_instructions[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
InstructionLibrary::findOperand(std::string_view id) const
{
    for (std::size_t i = 0; i < _operands.size(); ++i) {
        if (_operands[i].id() == id)
            return static_cast<int>(i);
    }
    return -1;
}

std::uint64_t
InstructionLibrary::variantCount(std::size_t def_index) const
{
    const InstructionDef& def = instruction(def_index);
    std::uint64_t count = 1;
    for (std::uint32_t op_index : def.operandIndex)
        count *= _operands[op_index].valueCount();
    return count;
}

InstructionInstance
InstructionLibrary::makeInstance(
    std::string_view name,
    const std::vector<std::string>& operand_values) const
{
    const int def_index = findInstruction(name);
    if (def_index < 0)
        fatal("makeInstance: unknown instruction '", std::string(name),
              "'");
    const InstructionDef& def =
        _instructions[static_cast<std::size_t>(def_index)];
    if (operand_values.size() != def.operandIndex.size())
        fatal("makeInstance: instruction '", def.name, "' takes ",
              def.operandIndex.size(), " operands, got ",
              operand_values.size());

    InstructionInstance inst;
    inst.defIndex = static_cast<std::uint32_t>(def_index);
    for (std::size_t slot = 0; slot < operand_values.size(); ++slot) {
        const OperandDef& op = _operands[def.operandIndex[slot]];
        bool found = false;
        for (std::size_t v = 0; v < op.valueCount(); ++v) {
            if (op.renderValue(v) == operand_values[slot]) {
                inst.operandChoice.push_back(
                    static_cast<std::uint32_t>(v));
                found = true;
                break;
            }
        }
        if (!found)
            fatal("makeInstance: '", operand_values[slot],
                  "' is not an allowed value of operand '", op.id(),
                  "' for instruction '", def.name, "'");
    }
    return inst;
}

InstructionInstance
InstructionLibrary::randomInstance(Rng& rng) const
{
    if (_instructions.empty())
        fatal("cannot generate individuals from an empty instruction "
              "library");
    return randomInstanceOf(rng.pickIndex(_instructions.size()), rng);
}

InstructionInstance
InstructionLibrary::randomInstanceOf(std::size_t def_index, Rng& rng) const
{
    const InstructionDef& def = instruction(def_index);
    InstructionInstance inst;
    inst.defIndex = static_cast<std::uint32_t>(def_index);
    inst.operandChoice.reserve(def.operandIndex.size());
    for (std::uint32_t op_index : def.operandIndex) {
        const std::size_t count = _operands[op_index].valueCount();
        inst.operandChoice.push_back(
            static_cast<std::uint32_t>(rng.pickIndex(count)));
    }
    return inst;
}

void
InstructionLibrary::mutateOperand(InstructionInstance& inst, Rng& rng) const
{
    const InstructionDef& def = instruction(inst.defIndex);
    if (def.operandIndex.empty())
        return;
    const std::size_t slot = rng.pickIndex(def.operandIndex.size());
    const std::size_t count =
        _operands[def.operandIndex[slot]].valueCount();
    inst.operandChoice[slot] =
        static_cast<std::uint32_t>(rng.pickIndex(count));
}

std::string
InstructionLibrary::render(const InstructionInstance& inst) const
{
    const InstructionDef& def = instruction(inst.defIndex);
    if (inst.operandChoice.size() != def.operandIndex.size())
        panic("instance of '", def.name, "' has ",
              inst.operandChoice.size(), " operand choices, expected ",
              def.operandIndex.size());

    std::string out = def.format;
    // Replace higher-numbered slots first so "op12" is not clobbered by
    // the "op1" replacement.
    for (std::size_t slot = def.operandIndex.size(); slot-- > 0;) {
        const OperandDef& op = _operands[def.operandIndex[slot]];
        const std::string token = "op" + std::to_string(slot + 1);
        out = replaceAll(std::move(out), token,
                         op.renderValue(inst.operandChoice[slot]));
    }
    return out;
}

bool
InstructionLibrary::valid(const InstructionInstance& inst) const
{
    if (inst.defIndex >= _instructions.size())
        return false;
    const InstructionDef& def = _instructions[inst.defIndex];
    if (inst.operandChoice.size() != def.operandIndex.size())
        return false;
    for (std::size_t slot = 0; slot < def.operandIndex.size(); ++slot) {
        const OperandDef& op = _operands[def.operandIndex[slot]];
        if (inst.operandChoice[slot] >= op.valueCount())
            return false;
    }
    return true;
}

} // namespace isa
} // namespace gest
