/**
 * @file
 * Instruction definitions and instances.
 *
 * An InstructionDef mirrors the paper's Figure 4: a unique name, a list of
 * operand-definition ids, a `format` string in which op1..opN are replaced
 * by the chosen operand values, a classification type and a semantic
 * opcode. An InstructionInstance is one concrete choice of operand values —
 * the unit the GA's genome is made of.
 */

#ifndef GEST_ISA_INSTRUCTION_HH
#define GEST_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr_class.hh"
#include "isa/operand.hh"

namespace gest {
namespace isa {

/**
 * A user- or library-defined instruction template.
 *
 * Operand slots are stored as indices into the owning
 * InstructionLibrary's operand table (resolved from ids when the
 * instruction is added).
 */
struct InstructionDef
{
    /** Unique instruction name. */
    std::string name;

    /** Indices into the library's operand table, one per operand slot. */
    std::vector<std::uint32_t> operandIndex;

    /** Output format, e.g. "LDR op1,[op2,#op3]". */
    std::string format;

    /** Breakdown class (ShortInt/LongInt/Float-SIMD/Mem/Branch/Nop). */
    InstrClass cls = InstrClass::Nop;

    /** Semantic opcode the simulator executes. */
    Opcode opcode = Opcode::Nop;
};

/**
 * One gene: an instruction definition plus a concrete value choice for
 * every operand slot. Choices are indices into the respective operand
 * definitions' value lists.
 */
struct InstructionInstance
{
    /** Index of the InstructionDef in the owning library. */
    std::uint32_t defIndex = 0;

    /** Per-slot value index into the operand definition's value list. */
    std::vector<std::uint32_t> operandChoice;

    bool operator==(const InstructionInstance&) const = default;
};

} // namespace isa
} // namespace gest

#endif // GEST_ISA_INSTRUCTION_HH
