/**
 * @file
 * The instruction library: the alphabet of the GA search.
 *
 * Owns all operand definitions and instruction definitions declared in a
 * configuration (or built programmatically for the bundled platforms) and
 * provides the primitive operations the GA engine needs: random instance
 * generation, operand mutation and rendering to source text.
 */

#ifndef GEST_ISA_LIBRARY_HH
#define GEST_ISA_LIBRARY_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hh"
#include "isa/operand.hh"
#include "util/random.hh"

namespace gest {
namespace isa {

/**
 * Registry of operand and instruction definitions with stable indices.
 */
class InstructionLibrary
{
  public:
    /** Register an operand definition; fatal() on duplicate id. */
    void addOperand(OperandDef def);

    /**
     * Register an instruction definition.
     *
     * @param name unique instruction name
     * @param operand_ids ids of previously added operands, slot order
     * @param format output format with op1..opN placeholders
     * @param cls breakdown class
     * @param opcode semantic opcode for the simulator
     *
     * fatal() on duplicate names or undefined operand ids (the paper:
     * "If the instruction definition contains an undefined operand id,
     * the framework will terminate the execution").
     */
    void addInstruction(std::string name,
                        const std::vector<std::string>& operand_ids,
                        std::string format, InstrClass cls, Opcode opcode);

    /** Number of instruction definitions. */
    std::size_t numInstructions() const { return _instructions.size(); }

    /** Number of operand definitions. */
    std::size_t numOperands() const { return _operands.size(); }

    /** Instruction definition by index. */
    const InstructionDef& instruction(std::size_t index) const;

    /** Operand definition by index. */
    const OperandDef& operand(std::size_t index) const;

    /** Find an instruction definition index by name; -1 if absent. */
    int findInstruction(std::string_view name) const;

    /** Find an operand definition index by id; -1 if absent. */
    int findOperand(std::string_view id) const;

    /**
     * Number of distinct concrete forms of instruction @p def_index
     * (the paper's example: LDR with 3 x 1 x 33 = 99 variants).
     */
    std::uint64_t variantCount(std::size_t def_index) const;

    /**
     * Build a concrete instance from explicit operand value texts, e.g.
     * makeInstance("LDR", {"x2", "x10", "16"}). Each value must be one
     * of the operand definition's allowed values; fatal() otherwise.
     * Used by the hand-written baseline workloads and by tests.
     */
    InstructionInstance makeInstance(
        std::string_view name,
        const std::vector<std::string>& operand_values) const;

    /** Draw a uniformly random instruction instance. */
    InstructionInstance randomInstance(Rng& rng) const;

    /** Draw a random instance of a specific instruction definition. */
    InstructionInstance randomInstanceOf(std::size_t def_index,
                                         Rng& rng) const;

    /**
     * Mutate one randomly chosen operand of @p inst to a new random value
     * (the paper's operand-level mutation). Instructions without operands
     * are left unchanged.
     */
    void mutateOperand(InstructionInstance& inst, Rng& rng) const;

    /** Render an instance to one line of assembly source. */
    std::string render(const InstructionInstance& inst) const;

    /** Validate that an instance's indices are in range. */
    bool valid(const InstructionInstance& inst) const;

  private:
    std::vector<OperandDef> _operands;
    std::vector<InstructionDef> _instructions;
};

} // namespace isa
} // namespace gest

#endif // GEST_ISA_LIBRARY_HH
