#include "isa/asm_template.hh"

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace isa {

AsmTemplate::AsmTemplate(std::string text) : _text(std::move(text))
{
    const std::vector<std::string> lines = split(_text, '\n');
    bool seen_marker = false;
    for (const std::string& line : lines) {
        const std::size_t pos = line.find(marker);
        if (pos != std::string::npos) {
            if (seen_marker)
                fatal("template contains more than one '", marker,
                      "' marker");
            seen_marker = true;
            _indent = line.substr(0, line.find_first_not_of(" \t"));
            if (_indent.size() == line.size())
                _indent.clear();
        } else if (!seen_marker) {
            _head.push_back(line);
        } else {
            _tail.push_back(line);
        }
    }
    if (!seen_marker)
        fatal("template does not contain the '", marker, "' marker");
}

AsmTemplate
AsmTemplate::fromFile(const std::string& path)
{
    return AsmTemplate(readFile(path));
}

std::string
AsmTemplate::render(const std::vector<std::string>& loop_lines) const
{
    std::string out;
    for (const std::string& line : _head) {
        out += line;
        out += '\n';
    }
    for (const std::string& line : loop_lines) {
        out += _indent;
        out += line;
        out += '\n';
    }
    for (std::size_t i = 0; i < _tail.size(); ++i) {
        out += _tail[i];
        if (i + 1 < _tail.size())
            out += '\n';
    }
    return out;
}

} // namespace isa
} // namespace gest
