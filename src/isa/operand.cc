#include "isa/operand.hh"

#include "util/logging.hh"

namespace gest {
namespace isa {

OperandDef
OperandDef::makeRegisters(std::string id, std::vector<std::string> names)
{
    if (names.empty())
        fatal("operand '", id, "' has an empty register list");
    OperandDef def;
    def._id = std::move(id);
    def._kind = OperandKind::Register;
    def._registers = std::move(names);
    def._parsed.resize(def._registers.size());
    def._parseOk.resize(def._registers.size());
    for (std::size_t i = 0; i < def._registers.size(); ++i)
        def._parseOk[i] = parseRegister(def._registers[i], def._parsed[i]);
    return def;
}

OperandDef
OperandDef::makeImmediate(std::string id, std::int64_t min, std::int64_t max,
                          std::int64_t stride)
{
    if (stride <= 0)
        fatal("operand '", id, "' has non-positive stride ", stride);
    if (max < min)
        fatal("operand '", id, "' has max ", max, " below min ", min);
    OperandDef def;
    def._id = std::move(id);
    def._kind = OperandKind::Immediate;
    def._min = min;
    def._max = max;
    def._stride = stride;
    return def;
}

std::size_t
OperandDef::valueCount() const
{
    if (_kind == OperandKind::Register)
        return _registers.size();
    return static_cast<std::size_t>((_max - _min) / _stride) + 1;
}

std::string
OperandDef::renderValue(std::size_t index) const
{
    if (_kind == OperandKind::Register)
        return registerName(index);
    return std::to_string(immediateValue(index));
}

std::int64_t
OperandDef::immediateValue(std::size_t index) const
{
    if (_kind != OperandKind::Immediate)
        panic("immediateValue on register operand '", _id, "'");
    if (index >= valueCount())
        panic("immediate index ", index, " out of range for '", _id, "'");
    return _min + static_cast<std::int64_t>(index) * _stride;
}

const std::string&
OperandDef::registerName(std::size_t index) const
{
    if (_kind != OperandKind::Register)
        panic("registerName on immediate operand '", _id, "'");
    if (index >= _registers.size())
        panic("register index ", index, " out of range for '", _id, "'");
    return _registers[index];
}

bool
OperandDef::parsedRegister(std::size_t index, RegRef& out) const
{
    if (_kind != OperandKind::Register || index >= _registers.size())
        return false;
    if (!_parseOk[index])
        return false;
    out = _parsed[index];
    return true;
}

namespace {

/** Immediate pools fold into at most this many coverage bins. */
constexpr std::size_t maxImmediateBins = 8;

} // namespace

std::size_t
operandBinCount(const OperandDef& def)
{
    const std::size_t n = def.valueCount();
    if (def.kind() == OperandKind::Register)
        return n;
    return n < maxImmediateBins ? n : maxImmediateBins;
}

std::size_t
operandBin(const OperandDef& def, std::uint32_t choice)
{
    const std::size_t n = def.valueCount();
    if (n == 0)
        return 0;
    std::size_t c = choice;
    if (c >= n)
        c = n - 1;
    if (def.kind() == OperandKind::Register)
        return c;
    // Equal-width partition of the value indices: bin = c * bins / n is
    // monotone, onto, and inverse-consistent with operandBinLabel.
    return c * operandBinCount(def) / n;
}

std::string
operandBinLabel(const OperandDef& def, std::size_t bin)
{
    if (def.kind() == OperandKind::Register)
        return def.registerName(bin);
    const std::size_t n = def.valueCount();
    const std::size_t bins = operandBinCount(def);
    if (bins == 0 || bin >= bins)
        panic("operand bin ", bin, " out of range for '", def.id(), "'");
    // First and last value index mapped to this bin by operandBin().
    const std::size_t lo = (bin * n + bins - 1) / bins;
    const std::size_t hi = ((bin + 1) * n + bins - 1) / bins - 1;
    if (lo == hi)
        return std::to_string(def.immediateValue(lo));
    return "[" + std::to_string(def.immediateValue(lo)) + ".." +
           std::to_string(def.immediateValue(hi)) + "]";
}

} // namespace isa
} // namespace gest
