/**
 * @file
 * The main configuration file (§III.B.1) and run orchestration.
 *
 * A GeST configuration is an XML file that carries (a) the GA engine
 * parameters of Table I, (b) the operand and instruction definitions the
 * search draws from (or the name of a bundled library), and (c) the
 * measurement and fitness classes plus their own configuration, the
 * output directory, the optional template file and the optional seed
 * population. Example:
 *
 * @code{.xml}
 * <gest_configuration>
 *   <ga population_size="50" individual_size="50" mutation_rate="0.02"
 *       crossover_operator="one_point"
 *       parent_selection_method="tournament" tournament_size="5"
 *       elitism="true" generations="100" seed="1"/>
 *   <library name="arm"/>
 *   <operands>
 *     <operand id="my_regs" type="register" values="x4 x5 x6"/>
 *     <operand id="imm" type="immediate" min="0" max="256" stride="8"/>
 *   </operands>
 *   <instructions>
 *     <instruction name="MYLDR" num_of_operands="3"
 *         operand1="mem_result" operand2="mem_address_register"
 *         operand3="imm" format="LDR op1, [op2, #op3]" type="mem"/>
 *   </instructions>
 *   <measurement class="SimPowerMeasurement">
 *     <config platform="cortex-a15"/>
 *   </measurement>
 *   <fitness class="DefaultFitness"/>
 *   <output directory="runs/a15_power"/>
 * </gest_configuration>
 * @endcode
 *
 * Measurement/fitness parameters may live inline (a <config> child, as
 * above) or in their own XML file (config="file.xml"), matching the
 * paper's separation of measurement configuration from the main file.
 */

#ifndef GEST_CONFIG_CONFIG_HH
#define GEST_CONFIG_CONFIG_HH

#include <memory>
#include <optional>
#include <string>

#include "analysis/health.hh"
#include "core/engine.hh"
#include "core/ga_params.hh"
#include "isa/asm_template.hh"
#include "isa/library.hh"
#include "xml/xml.hh"

namespace gest {
namespace config {

/** A fully parsed run configuration. */
struct RunConfig
{
    core::GaParams ga;
    isa::InstructionLibrary library;

    std::string measurementClass = "SimPowerMeasurement";
    std::string fitnessClass = "DefaultFitness";

    std::string outputDirectory;      ///< empty: no artifacts written
    std::string seedPopulationPath;   ///< empty: random seed population
    std::optional<isa::AsmTemplate> asmTemplate;

    /**
     * Chrome-trace output path (<output trace="..."> or the CLI's
     * --trace). Empty: no trace. A relative path resolves against the
     * output directory when one is set, else against the config's
     * directory.
     */
    std::string traceFile;

    /**
     * Record run statistics (<output stats="...">, default true): the
     * stats registry is enabled for the run and stats.txt +
     * metrics.json are written into the output directory.
     */
    bool recordStats = true;

    /**
     * Record evolution analytics (<output analytics="...">, default
     * true): an analysis::Recorder is attached to the engine and
     * lineage.csv, analytics.csv and the status.json heartbeat are
     * maintained in the output directory. Has no effect without an
     * output directory. Recording never perturbs the GA RNG, so
     * results are bit-identical with analytics on or off.
     */
    bool recordAnalytics = true;

    /**
     * Keep signal captures of the run's top-K individuals
     * (<output waveforms="K">, default 0 = off): a FlightRecorder
     * re-measures each champion once with a SignalProbe and seals
     * waveforms/<id>.csv artifacts in the output directory. Requires
     * an output directory and a cloneable measurement. Capture never
     * perturbs the GA RNG, so results are bit-identical with
     * waveforms on or off.
     */
    int waveformTopK = 0;

    /**
     * When set, forces the measurement's steady-state fast path on or
     * off after its own configuration is applied (the CLI's
     * --steady-state flag). Results are bit-identical either way; the
     * knob exists for verification and as an escape hatch.
     */
    std::optional<bool> steadyStateOverride;

    /**
     * Track search-space coverage (<output coverage="true"/>, default
     * false): an attribution::CoverageLedger observes every evaluated
     * generation and seals a per-generation coverage.csv in the output
     * directory (plus the /coverage endpoint when --listen is on).
     * Observation is read-only — never the GA RNG — so all other
     * artifacts are byte-identical with the ledger on or off.
     */
    bool recordCoverage = false;

    /**
     * Attribute champion fitness at seal time (<output
     * attribution="true"/>, default false): after the run, the flight
     * recorder's retained champions (or the best-ever individual when
     * no flight recorder ran) are ablated gene by gene on a private
     * measurement clone and `attribution/individual_<id>.{csv,json}`
     * artifacts are sealed into the output directory. Post-run only:
     * the GA itself is untouched.
     */
    bool recordAttribution = false;

    /**
     * Watch GA health during the run (<output health="true"/>, default
     * false): an analysis::HealthWatchdog observes every evaluated
     * generation, evaluates the declarative rules in
     * analysis::HealthRules and seals a `# gest-alerts v1` alerts.csv
     * in the output directory (plus the /alerts endpoint and `alert`
     * SSE events when --listen is on, and an `alerts` block in
     * status.json). Observation is read-only — never the GA RNG — so
     * all other artifacts are byte-identical with the watchdog on or
     * off. Thresholds tune via health_plateau, health_collapse_factor,
     * health_cache_floor, health_coverage_stall and
     * health_starvation_share attributes (zero disables a rule).
     */
    bool recordHealth = false;
    analysis::HealthRules healthRules;

    /**
     * Record run provenance (<output provenance="...">, default true):
     * a digests.csv population-digest ledger is appended during the
     * run and a manifest.json — canonical config hash, seed, build
     * fingerprint, artifact checksums — is sealed into the output
     * directory when the run finishes. `gest verify` replays against
     * them. Has no effect without an output directory. Recording is
     * strictly observational (never touches the GA RNG) and every
     * pre-existing artifact is byte-identical with provenance on or
     * off.
     */
    bool recordProvenance = true;

    /**
     * The base directory relative file references resolved against
     * (parseConfig's base_dir), recorded into the manifest so a replay
     * can re-resolve them.
     */
    std::string configBaseDir = ".";

    /**
     * host:port for the live telemetry server (<output
     * listen="127.0.0.1:0"/> or the CLI's --listen; default off). When
     * set, the run hosts the embedded HTTP endpoints (/metrics,
     * /status, /history, /champion, /events) for its duration; port 0
     * asks the kernel for an ephemeral port, echoed to the log and
     * into status.json. Serving is strictly read-only and never
     * touches the GA RNG: run artifacts are bit-identical with the
     * server on or off. See docs/observability.md, "Live endpoints".
     */
    std::string listenAddress;

    /** Raw main-configuration text (record keeping). */
    std::string rawText;

    /** Owning documents backing the config elements below. */
    std::shared_ptr<xml::Document> mainDoc;
    std::shared_ptr<xml::Document> measurementDoc;
    std::shared_ptr<xml::Document> fitnessDoc;

    /** Measurement parameters element (may be null). */
    const xml::Element* measurementConfig = nullptr;

    /** Fitness parameters element (may be null). */
    const xml::Element* fitnessConfig = nullptr;
};

/** Parsing options. */
struct ParseOptions
{
    /**
     * Resolve and load referenced files (template, external
     * measurement/fitness configs). Disable when only the embedded
     * information is needed — e.g. rebuilding the instruction library
     * from a configuration recorded inside a run directory, where the
     * original relative paths no longer resolve.
     */
    bool loadReferencedFiles = true;
};

/**
 * Parse a configuration from text. Relative file references (template,
 * external measurement config, seed population) resolve against
 * @p base_dir.
 */
RunConfig parseConfig(const std::string& text,
                      const std::string& base_dir = ".",
                      const ParseOptions& options = {});

/** Parse the configuration file at @p path. */
RunConfig loadConfig(const std::string& path);

/** Outcome of a full configured run. */
struct RunResult
{
    core::Population finalPopulation;
    core::Individual best;
    std::vector<core::GenerationRecord> history;
    std::uint64_t evaluations = 0;

    /** Fitness-cache totals (zero when the cache is disabled). */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** Path of the written Chrome trace (empty when tracing was off). */
    std::string traceFile;

    /**
     * Waveform artifacts sealed by the flight recorder (index.csv
     * first; empty when waveform capture was off).
     */
    std::vector<std::string> waveformFiles;

    /**
     * host:port the telemetry server actually bound (ephemeral port
     * resolved; empty when --listen was off).
     */
    std::string listenAddress;

    /**
     * Path of the sealed manifest.json (empty when provenance was off
     * or no output directory was set).
     */
    std::string manifestFile;

    /**
     * Path of the sealed coverage.csv (empty when coverage tracking
     * was off or no output directory was set).
     */
    std::string coverageFile;

    /**
     * Attribution artifacts sealed after the run (CSV and JSON twins
     * interleaved; empty when attribution was off).
     */
    std::vector<std::string> attributionFiles;
};

/**
 * Execute one GA run described by a configuration: instantiate the
 * measurement and fitness by name, wire the output writer, seed, run.
 */
RunResult runFromConfig(const RunConfig& cfg);

/** Register all bundled measurement and fitness classes (idempotent). */
void registerBuiltins();

} // namespace config
} // namespace gest

#endif // GEST_CONFIG_CONFIG_HH
