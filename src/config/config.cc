#include "config/config.hh"

#include "analysis/recorder.hh"
#include "attribution/attribution.hh"
#include "attribution/attribution_io.hh"
#include "attribution/coverage.hh"
#include "fitness/fitness.hh"
#include "isa/standard_libs.hh"
#include "measure/sim_measurements.hh"
#include "net/telemetry.hh"
#include "output/flight_recorder.hh"
#include "output/run_writer.hh"
#include "output/trace_writer.hh"
#include "provenance/provenance.hh"
#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace config {

namespace {

std::string
resolvePath(const std::string& base_dir, const std::string& path)
{
    if (path.empty() || path.front() == '/')
        return path;
    return base_dir + "/" + path;
}

void
parseGaElement(const xml::Element& ga, core::GaParams& params)
{
    if (ga.hasAttr("population_size"))
        params.populationSize = static_cast<int>(
            parseInt(ga.attr("population_size"), "population_size"));
    if (ga.hasAttr("individual_size"))
        params.individualSize = static_cast<int>(
            parseInt(ga.attr("individual_size"), "individual_size"));
    if (ga.hasAttr("mutation_rate"))
        params.mutationRate =
            parseDouble(ga.attr("mutation_rate"), "mutation_rate");
    if (ga.hasAttr("operand_mutation_prob"))
        params.operandMutationProb =
            parseDouble(ga.attr("operand_mutation_prob"),
                        "operand_mutation_prob");
    if (ga.hasAttr("crossover_operator"))
        params.crossover =
            core::crossoverFromString(ga.attr("crossover_operator"));
    if (ga.hasAttr("parent_selection_method"))
        params.selection = core::selectionFromString(
            ga.attr("parent_selection_method"));
    if (ga.hasAttr("tournament_size"))
        params.tournamentSize = static_cast<int>(
            parseInt(ga.attr("tournament_size"), "tournament_size"));
    if (ga.hasAttr("elitism"))
        params.elitism = parseBool(ga.attr("elitism"), "elitism");
    if (ga.hasAttr("generations"))
        params.generations = static_cast<int>(
            parseInt(ga.attr("generations"), "generations"));
    if (ga.hasAttr("stagnation_limit"))
        params.stagnationLimit = static_cast<int>(parseInt(
            ga.attr("stagnation_limit"), "stagnation_limit"));
    if (ga.hasAttr("seed"))
        params.seed =
            static_cast<std::uint64_t>(parseInt(ga.attr("seed"), "seed"));
    if (ga.hasAttr("threads"))
        params.threads =
            static_cast<int>(parseInt(ga.attr("threads"), "threads"));
    if (ga.hasAttr("fitness_cache_size"))
        params.fitnessCacheSize = static_cast<int>(parseInt(
            ga.attr("fitness_cache_size"), "fitness_cache_size"));
}

void
parseOperands(const xml::Element& operands, isa::InstructionLibrary& lib)
{
    for (const xml::Element* op : operands.childrenNamed("operand")) {
        const std::string id = op->attr("id");
        const std::string type = toLower(op->attrOr("type", "register"));
        if (type == "register") {
            lib.addOperand(isa::OperandDef::makeRegisters(
                id, splitWhitespace(op->attr("values"))));
        } else if (type == "immediate") {
            lib.addOperand(isa::OperandDef::makeImmediate(
                id, parseInt(op->attr("min"), "operand min"),
                parseInt(op->attr("max"), "operand max"),
                parseInt(op->attrOr("stride", "1"), "operand stride")));
        } else {
            fatal("operand '", id, "' (line ", op->line(),
                  ") has unknown type '", type, "'");
        }
    }
}

isa::Opcode
resolveSemantic(const xml::Element& inst, const std::string& name,
                const std::string& format)
{
    isa::Opcode opcode;
    if (inst.hasAttr("semantic")) {
        if (!isa::opcodeFromMnemonic(inst.attr("semantic"), opcode))
            fatal("instruction '", name, "': unknown semantic '",
                  inst.attr("semantic"), "'");
        return opcode;
    }
    if (isa::opcodeFromMnemonic(name, opcode))
        return opcode;
    const std::vector<std::string> words = splitWhitespace(format);
    if (!words.empty() && isa::opcodeFromMnemonic(words[0], opcode))
        return opcode;
    fatal("instruction '", name, "' (line ", inst.line(),
          "): cannot infer its semantic from the name or format; add a "
          "semantic=\"...\" attribute (e.g. semantic=\"fmul\")");
}

void
parseInstructions(const xml::Element& instructions,
                  isa::InstructionLibrary& lib)
{
    for (const xml::Element* inst :
         instructions.childrenNamed("instruction")) {
        const std::string name = inst->attr("name");
        const std::string format = inst->attr("format");

        std::vector<std::string> operand_ids;
        for (int slot = 1;; ++slot) {
            const std::string attr = "operand" + std::to_string(slot);
            if (!inst->hasAttr(attr))
                break;
            operand_ids.push_back(inst->attr(attr));
        }
        if (inst->hasAttr("num_of_operands")) {
            const std::int64_t declared = parseInt(
                inst->attr("num_of_operands"), "num_of_operands");
            if (declared != static_cast<std::int64_t>(operand_ids.size()))
                fatal("instruction '", name, "' (line ", inst->line(),
                      ") declares ", declared, " operands but defines ",
                      operand_ids.size());
        }

        const isa::InstrClass cls =
            isa::instrClassFromString(inst->attrOr("type", "int"));
        lib.addInstruction(name, operand_ids, format, cls,
                           resolveSemantic(*inst, name, format));
    }
}

} // namespace

RunConfig
parseConfig(const std::string& text, const std::string& base_dir,
            const ParseOptions& options)
{
    RunConfig cfg;
    cfg.rawText = text;
    cfg.configBaseDir = base_dir;
    cfg.mainDoc = std::make_shared<xml::Document>(
        xml::parse(text, "main configuration"));
    const xml::Element& root = cfg.mainDoc->root();
    if (root.name() != "gest_configuration")
        fatal("configuration root element must be <gest_configuration>, "
              "got <", root.name(), ">");

    if (const xml::Element* ga = root.child("ga"))
        parseGaElement(*ga, cfg.ga);

    // Bundled library first so user definitions can reference or extend
    // its operand pools.
    if (const xml::Element* lib_elem = root.child("library")) {
        const std::string name = toLower(lib_elem->attr("name"));
        if (name == "arm")
            cfg.library = isa::armLikeLibrary();
        else if (name == "armv7")
            cfg.library = isa::armV7LikeLibrary();
        else if (name == "x86")
            cfg.library = isa::x86LikeLibrary();
        else if (name == "cache-stress")
            cfg.library = isa::armCacheStressLibrary();
        else
            fatal("unknown bundled library '", name,
                  "'; available: arm, armv7, x86, cache-stress");
    }
    if (const xml::Element* operands = root.child("operands"))
        parseOperands(*operands, cfg.library);
    if (const xml::Element* instructions = root.child("instructions"))
        parseInstructions(*instructions, cfg.library);
    if (cfg.library.numInstructions() == 0)
        fatal("configuration defines no instructions: add a <library> "
              "element or an <instructions> section");

    auto load_component = [&](const char* tag, std::string& cls,
                              std::shared_ptr<xml::Document>& doc,
                              const xml::Element*& config_elem) {
        const xml::Element* elem = root.child(tag);
        if (!elem)
            return;
        if (elem->hasAttr("class"))
            cls = elem->attr("class");
        if (elem->hasAttr("config")) {
            if (options.loadReferencedFiles) {
                doc = std::make_shared<xml::Document>(xml::parseFile(
                    resolvePath(base_dir, elem->attr("config"))));
                config_elem = &doc->root();
            }
        } else if (const xml::Element* inline_cfg =
                       elem->child("config")) {
            config_elem = inline_cfg;
        }
    };
    load_component("measurement", cfg.measurementClass,
                   cfg.measurementDoc, cfg.measurementConfig);
    load_component("fitness", cfg.fitnessClass, cfg.fitnessDoc,
                   cfg.fitnessConfig);

    if (const xml::Element* out = root.child("output")) {
        cfg.outputDirectory =
            resolvePath(base_dir, out->attr("directory"));
        if (out->hasAttr("trace")) {
            const std::string& trace_base = cfg.outputDirectory.empty()
                                                ? base_dir
                                                : cfg.outputDirectory;
            cfg.traceFile = resolvePath(trace_base, out->attr("trace"));
        }
        if (out->hasAttr("stats"))
            cfg.recordStats =
                parseBool(out->attr("stats"), "output stats");
        if (out->hasAttr("analytics"))
            cfg.recordAnalytics =
                parseBool(out->attr("analytics"), "output analytics");
        if (out->hasAttr("provenance"))
            cfg.recordProvenance =
                parseBool(out->attr("provenance"), "output provenance");
        if (out->hasAttr("coverage"))
            cfg.recordCoverage =
                parseBool(out->attr("coverage"), "output coverage");
        if (out->hasAttr("attribution"))
            cfg.recordAttribution = parseBool(
                out->attr("attribution"), "output attribution");
        if (out->hasAttr("health"))
            cfg.recordHealth =
                parseBool(out->attr("health"), "output health");
        if (out->hasAttr("health_plateau"))
            cfg.healthRules.plateauGenerations =
                static_cast<int>(parseInt(out->attr("health_plateau"),
                                          "output health_plateau"));
        if (out->hasAttr("health_collapse_factor"))
            cfg.healthRules.throughputCollapseFactor =
                parseDouble(out->attr("health_collapse_factor"),
                            "output health_collapse_factor");
        if (out->hasAttr("health_cache_floor"))
            cfg.healthRules.cacheHitRateFloor =
                parseDouble(out->attr("health_cache_floor"),
                            "output health_cache_floor");
        if (out->hasAttr("health_coverage_stall"))
            cfg.healthRules.coverageStallGenerations =
                static_cast<int>(
                    parseInt(out->attr("health_coverage_stall"),
                             "output health_coverage_stall"));
        if (out->hasAttr("health_starvation_share"))
            cfg.healthRules.workerStarvationShare =
                parseDouble(out->attr("health_starvation_share"),
                            "output health_starvation_share");
        if (out->hasAttr("listen"))
            cfg.listenAddress = out->attr("listen");
        if (out->hasAttr("waveforms")) {
            const std::int64_t top_k =
                parseInt(out->attr("waveforms"), "output waveforms");
            if (top_k < 0)
                fatal("output waveforms must be non-negative, got ",
                      top_k);
            cfg.waveformTopK = static_cast<int>(top_k);
        }
    }
    if (const xml::Element* seed = root.child("seed_population"))
        cfg.seedPopulationPath =
            resolvePath(base_dir, seed->attr("file"));
    if (const xml::Element* tmpl = root.child("template")) {
        if (tmpl->hasAttr("file")) {
            if (options.loadReferencedFiles)
                cfg.asmTemplate = isa::AsmTemplate::fromFile(
                    resolvePath(base_dir, tmpl->attr("file")));
        } else if (!tmpl->text().empty()) {
            cfg.asmTemplate = isa::AsmTemplate(tmpl->text());
        }
    }

    cfg.ga.validate();
    return cfg;
}

RunConfig
loadConfig(const std::string& path)
{
    std::string base_dir = ".";
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos)
        base_dir = path.substr(0, slash);
    return parseConfig(readFile(path), base_dir);
}

void
registerBuiltins()
{
    measure::registerSimMeasurements();
    fitness::registerBuiltinFitness();
}

RunResult
runFromConfig(const RunConfig& cfg)
{
    registerBuiltins();

    std::unique_ptr<measure::Measurement> measurement =
        measure::MeasurementRegistry::instance().create(
            cfg.measurementClass, cfg.library);
    measurement->init(cfg.measurementConfig);
    if (cfg.steadyStateOverride)
        measurement->setSteadyState(*cfg.steadyStateOverride);

    std::unique_ptr<fitness::Fitness> fit =
        fitness::FitnessRegistry::instance().create(cfg.fitnessClass);
    fit->init(cfg.fitnessConfig);

    core::Engine engine(cfg.ga, cfg.library, *measurement, *fit);

    if (!cfg.seedPopulationPath.empty())
        engine.setSeedPopulation(
            core::loadPopulation(cfg.library, cfg.seedPopulationPath));

    // Observability: stats on by default (the per-sample cost is atomic
    // bumps and clock reads, invisible next to simulation); each run
    // starts from zeroed values so artifacts describe this run only.
    const bool stats_were_enabled = stats::enabled();
    if (cfg.recordStats) {
        stats::StatsRegistry::instance().resetValues();
        stats::setEnabled(true);
    }

    std::unique_ptr<output::TraceWriter> trace;
    if (!cfg.traceFile.empty()) {
        trace = std::make_unique<output::TraceWriter>(cfg.traceFile);
        engine.setTraceWriter(trace.get());
    }

    std::unique_ptr<analysis::Recorder> recorder;
    if (cfg.recordAnalytics && !cfg.outputDirectory.empty()) {
        recorder = std::make_unique<analysis::Recorder>(
            cfg.outputDirectory, cfg.library, cfg.ga.generations);
        engine.setAnalytics(recorder.get());
    }

    std::unique_ptr<output::FlightRecorder> flight;
    if (cfg.waveformTopK > 0) {
        if (cfg.outputDirectory.empty()) {
            warn("waveform capture requested but no output directory "
                 "is set; skipping");
        } else if (std::unique_ptr<measure::Measurement> probe_meas =
                       measurement->clone()) {
            flight = std::make_unique<output::FlightRecorder>(
                cfg.outputDirectory, cfg.waveformTopK,
                std::move(probe_meas));
        } else {
            warn("measurement '", cfg.measurementClass,
                 "' is not cloneable; waveform capture disabled");
        }
    }

    std::unique_ptr<output::RunWriter> writer;
    if (!cfg.outputDirectory.empty()) {
        writer = std::make_unique<output::RunWriter>(
            cfg.outputDirectory, cfg.library,
            cfg.asmTemplate ? &*cfg.asmTemplate : nullptr);
        writer->writeRunMetadata(
            cfg.rawText,
            cfg.asmTemplate ? cfg.asmTemplate->text() : "");
        writer->setTraceWriter(trace.get());
        engine.setGenerationCallback(writer->callback());
    }
    if (flight) {
        engine.addGenerationObserver(
            [fr = flight.get()](const core::Population& pop,
                                const core::GenerationRecord& record) {
                fr->onGenerationEvaluated(pop, record);
            });
    }

    // Coverage ledger: installed before the provenance and telemetry
    // observers so its per-generation tick is already sealed when the
    // telemetry service composes that generation's row. Useful even
    // without an output directory (live /coverage only).
    std::unique_ptr<attribution::CoverageLedger> coverage;
    if (cfg.recordCoverage) {
        coverage =
            std::make_unique<attribution::CoverageLedger>(cfg.library);
        if (!cfg.outputDirectory.empty())
            coverage->setCsvPath(cfg.outputDirectory + "/coverage.csv");
        engine.addGenerationObserver(coverage->observer());
    }

    // Health watchdog: installed after the coverage ledger (whose tick
    // for generation N is already in when the watchdog evaluates N)
    // and before the telemetry observer (so alert SSE frames precede
    // their generation's frame). Useful even without an output
    // directory (live /alerts only).
    std::unique_ptr<analysis::HealthWatchdog> watchdog;
    if (cfg.recordHealth) {
        watchdog =
            std::make_unique<analysis::HealthWatchdog>(cfg.healthRules);
        if (!cfg.outputDirectory.empty()) {
            ensureDir(cfg.outputDirectory);
            watchdog->setCsvPath(cfg.outputDirectory + "/alerts.csv");
        }
        engine.addGenerationObserver(watchdog->observer());
        if (recorder)
            recorder->setHealthProvider(
                [w = watchdog.get()] { return w->summary(); });
    }

    // Provenance: digest ledger during the run, manifest seal after.
    // Attached after the recorder, so mid-run status.json heartbeats
    // report the previous generation's digest count (finish() is exact).
    std::unique_ptr<provenance::ProvenanceRecorder> prov;
    if (cfg.recordProvenance && !cfg.outputDirectory.empty()) {
        prov = std::make_unique<provenance::ProvenanceRecorder>(
            cfg.outputDirectory, cfg.library);
        engine.addGenerationObserver(prov->observer());
        if (recorder)
            recorder->setDigestProvider(
                [p = prov.get()] { return p->digestsSealed(); });
    }

    // Live telemetry: bind before the run so the first generation is
    // already scrapable; the service only observes (const views, no
    // RNG), keeping artifacts bit-identical with the server on or off.
    std::unique_ptr<net::TelemetryServer> telemetry;
    if (!cfg.listenAddress.empty()) {
        telemetry = std::make_unique<net::TelemetryServer>(
            cfg.listenAddress, cfg.library, cfg.ga.generations);
        telemetry->start();
        inform("telemetry listening on http://", telemetry->address());
        engine.addGenerationObserver(telemetry->observer());
        if (recorder) {
            recorder->setListenAddress(telemetry->address());
            net::TelemetryService* service = &telemetry->service();
            recorder->setStatusListener(
                [service](const std::string& payload) {
                    service->setStatusJson(payload);
                });
        }
        if (watchdog) {
            net::TelemetryService* service = &telemetry->service();
            watchdog->setAlertListener(
                [service](const analysis::Alert& alert) {
                    service->noteAlert(alert);
                });
        }
    }

    // One coverage listener feeds both consumers: the watchdog's
    // coverage_stall rule and the live /coverage snapshot. Fires inside
    // the coverage observer, which runs before both of theirs.
    if (coverage && (watchdog || telemetry)) {
        net::TelemetryService* service =
            telemetry ? &telemetry->service() : nullptr;
        analysis::HealthWatchdog* wd = watchdog.get();
        coverage->setGenerationListener(
            [service,
             wd](const attribution::CoverageLedger::Snapshot& snap) {
                if (wd)
                    wd->noteCoverage(snap.generation, snap.newCells);
                if (service == nullptr)
                    return;
                net::TelemetryService::CoverageTick tick;
                tick.generation = snap.generation;
                tick.cellsSeen = snap.cellsSeen;
                tick.cellsTotal = snap.cellsTotal;
                tick.newCells = snap.newCells;
                tick.saturationPct = snap.saturationPct;
                tick.noveltyRate = snap.noveltyRate;
                service->noteCoverage(
                    tick, attribution::formatCoverageJson(snap));
            });
    }

    engine.run();

    RunResult result;
    result.finalPopulation = engine.population();
    result.best = engine.bestEver();
    result.history = engine.history();
    result.evaluations = engine.evaluations();
    result.cacheHits = engine.cacheHits();
    result.cacheMisses = engine.cacheMisses();

    if (flight)
        result.waveformFiles = flight->seal();

    // Attribution: ablate the flight recorder's retained champions (or
    // the best-ever individual without one) on a private measurement
    // clone and seal attribution/ artifacts. Before the stats dump so
    // the attribution.* counters land in stats.txt, before the
    // provenance seal so the manifest covers the artifacts.
    if (cfg.recordAttribution && !cfg.outputDirectory.empty()) {
        std::unique_ptr<measure::Measurement> private_meas =
            measurement->clone();
        measure::Measurement* attr_meas =
            private_meas ? private_meas.get() : measurement.get();

        struct AttributionTarget
        {
            std::uint64_t id;
            int generation;
            const std::vector<isa::InstructionInstance>* code;
        };
        std::vector<AttributionTarget> targets;
        if (flight) {
            for (const output::FlightRecorder::Entry& entry :
                 flight->entries())
                targets.push_back(
                    {entry.id, entry.generation, &entry.code});
        } else if (!result.best.code.empty()) {
            targets.push_back({result.best.id, -1, &result.best.code});
        }
        for (const AttributionTarget& target : targets) {
            core::Individual ind;
            ind.id = target.id;
            ind.code = *target.code;
            attribution::AttributionResult attributed =
                attribution::computeAttribution(cfg.library, *attr_meas,
                                                *fit, ind);
            attributed.generation = target.generation;
            const std::string basename =
                "individual_" + std::to_string(target.id);
            const attribution::AttributionArtifacts artifacts =
                attribution::writeAttributionArtifacts(
                    cfg.outputDirectory + "/attribution", basename,
                    attributed);
            result.attributionFiles.push_back(artifacts.csvPath);
            result.attributionFiles.push_back(artifacts.jsonPath);
            if (writer) {
                writer->noteArtifact("attribution/" + basename + ".csv",
                                     "attribution");
                writer->noteArtifact(
                    "attribution/" + basename + ".json", "attribution");
            }
        }
        if (!targets.empty())
            debug("attribution sealed for ", targets.size(),
                  " individual(s) in ", cfg.outputDirectory,
                  "/attribution");
    } else if (cfg.recordAttribution) {
        warn("attribution requested but no output directory is set; "
             "skipping");
    }

    if (coverage && fileExists(coverage->csvPath())) {
        result.coverageFile = coverage->csvPath();
        if (writer)
            writer->noteArtifact("coverage.csv", "coverage");
    }

    if (watchdog && fileExists(watchdog->csvPath())) {
        const analysis::HealthSummary health = watchdog->summary();
        if (health.alerts > 0)
            warn("health watchdog raised ", health.alerts,
                 " alert(s); see ", watchdog->csvPath());
        if (writer)
            writer->noteArtifact("alerts.csv", "alerts");
    }

    if (recorder)
        recorder->finish();
    if (trace) {
        trace->finish();
        result.traceFile = cfg.traceFile;
    }
    if (cfg.recordStats && !cfg.outputDirectory.empty()) {
        // Freshen the process self-observation gauges so the sealed
        // dump agrees with what a final /metrics scrape would have
        // shown.
        stats::updateProcessGauges();
        writeFile(cfg.outputDirectory + "/stats.txt",
                  stats::StatsRegistry::instance().textDump());
        writeFile(cfg.outputDirectory + "/metrics.json",
                  stats::StatsRegistry::instance().jsonDump());
        debug("stats recorded in ", cfg.outputDirectory,
              "/stats.txt and metrics.json");
    }
    if (telemetry) {
        // After recorder->finish() and the stats dump: the last scrape
        // a client can make agrees with the sealed artifacts.
        telemetry->service().noteRunCompleted();
        result.listenAddress = telemetry->address();
        telemetry->stop();
    }
    if (cfg.recordStats)
        stats::setEnabled(stats_were_enabled);
    if (prov) {
        // Seal last: every other artifact is final, so the manifest's
        // checksums describe exactly what a verifier will find.
        provenance::SealInfo info;
        info.configText = cfg.rawText;
        info.configBaseDir = cfg.configBaseDir;
        info.measurementClass = cfg.measurementClass;
        info.fitnessClass = cfg.fitnessClass;
        info.ga = cfg.ga;
        info.steadyStateOverride = cfg.steadyStateOverride;
        info.waveformTopK = cfg.waveformTopK;
        info.recordStats = cfg.recordStats;
        info.recordAnalytics = cfg.recordAnalytics;
        info.recordCoverage = cfg.recordCoverage;
        info.recordAttribution = cfg.recordAttribution;
        info.generationsCompleted =
            static_cast<int>(result.history.size());
        info.evaluations = result.evaluations;
        info.bestFitness = result.best.fitness;
        info.bestId = result.best.id;
        result.manifestFile = prov->seal(
            info, writer ? writer->artifactKinds()
                         : std::map<std::string, std::string>{});
    }
    return result;
}

} // namespace config
} // namespace gest
