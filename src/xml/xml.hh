/**
 * @file
 * A minimal XML parser.
 *
 * GeST's inputs are XML configuration files (the main configuration plus
 * per-measurement configurations). No external XML library is available in
 * this environment, so the framework carries a small, strict parser that
 * supports exactly what those files need: elements, attributes, nested
 * children, text content, comments, processing instructions, CDATA and the
 * five predefined entities. Errors carry line/column positions and are
 * reported through fatal() (they are user-input errors).
 */

#ifndef GEST_XML_XML_HH
#define GEST_XML_XML_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace gest {
namespace xml {

/** One attribute on an element, in document order. */
struct Attribute
{
    std::string name;
    std::string value;
};

/**
 * An element node. Text content is accumulated (concatenated, trimmed)
 * into @ref text; child elements are stored in document order.
 */
class Element
{
  public:
    /** Tag name. */
    const std::string& name() const { return _name; }

    /** Concatenated, trimmed text content of this element. */
    const std::string& text() const { return _text; }

    /** Attributes in document order. */
    const std::vector<Attribute>& attributes() const { return _attrs; }

    /** Child elements in document order. */
    const std::vector<std::unique_ptr<Element>>& children() const
    {
        return _children;
    }

    /** @return true if the attribute is present. */
    bool hasAttr(std::string_view attr_name) const;

    /** Attribute value; fatal() if absent. */
    const std::string& attr(std::string_view attr_name) const;

    /** Attribute value or @p fallback if absent. */
    std::string attrOr(std::string_view attr_name,
                       std::string_view fallback) const;

    /** First child element with the given tag, or nullptr. */
    const Element* child(std::string_view tag) const;

    /** All child elements with the given tag, in document order. */
    std::vector<const Element*> childrenNamed(std::string_view tag) const;

    /** First child with the given tag; fatal() if absent. */
    const Element& requiredChild(std::string_view tag) const;

    /** 1-based source line of the opening tag (for error messages). */
    int line() const { return _line; }

    /** Serialize this element (and subtree) back to XML text. */
    std::string toString(int indent = 0) const;

    // The parser is the only writer.
    friend class Parser;

  private:
    std::string _name;
    std::string _text;
    std::vector<Attribute> _attrs;
    std::vector<std::unique_ptr<Element>> _children;
    int _line = 0;
};

/** A parsed document owning its root element. */
class Document
{
  public:
    /** The document's root element. */
    const Element& root() const { return *_root; }

    friend class Parser;

  private:
    std::unique_ptr<Element> _root;
};

/** Parse XML text; fatal() with a line/column message on malformed input. */
Document parse(std::string_view input, std::string_view source_name = "");

/** Parse the file at @p path. */
Document parseFile(const std::string& path);

/** Escape the five predefined entities in @p s. */
std::string escape(std::string_view s);

} // namespace xml
} // namespace gest

#endif // GEST_XML_XML_HH
