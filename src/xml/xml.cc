#include "xml/xml.hh"

#include <cctype>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace xml {

namespace {

bool
isNameStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
}

bool
isNameChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
}

} // namespace

/**
 * Recursive-descent XML parser over a string_view. Tracks line/column for
 * error messages. All errors go through fail() -> fatal() because malformed
 * configuration files are user errors, not framework bugs.
 */
class Parser
{
  public:
    Parser(std::string_view input, std::string_view source)
        : _input(input), _source(source)
    {}

    Document
    parseDocument()
    {
        skipProlog();
        Document doc;
        doc._root = parseElement();
        skipMisc();
        if (!atEnd())
            fail("trailing content after the root element");
        return doc;
    }

  private:
    std::string_view _input;
    std::string _source;
    std::size_t _pos = 0;
    int _line = 1;
    int _col = 1;

    bool atEnd() const { return _pos >= _input.size(); }

    char peek() const { return atEnd() ? '\0' : _input[_pos]; }

    char
    peekAt(std::size_t offset) const
    {
        return _pos + offset < _input.size() ? _input[_pos + offset] : '\0';
    }

    char
    advance()
    {
        const char c = _input[_pos++];
        if (c == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        return c;
    }

    [[noreturn]] void
    fail(const std::string& msg) const
    {
        std::string where = _source.empty() ? "<xml>" : _source;
        fatal("XML error in ", where, " at line ", _line, ", column ",
              _col, ": ", msg);
    }

    void
    skipWhitespace()
    {
        while (!atEnd() &&
               std::isspace(static_cast<unsigned char>(peek())))
            advance();
    }

    bool
    lookingAt(std::string_view s) const
    {
        return _input.substr(_pos, s.size()) == s;
    }

    void
    expect(std::string_view s)
    {
        if (!lookingAt(s))
            fail("expected '" + std::string(s) + "'");
        for (std::size_t i = 0; i < s.size(); ++i)
            advance();
    }

    void
    skipComment()
    {
        expect("<!--");
        while (!atEnd() && !lookingAt("-->"))
            advance();
        if (atEnd())
            fail("unterminated comment");
        expect("-->");
    }

    void
    skipProcessingInstruction()
    {
        expect("<?");
        while (!atEnd() && !lookingAt("?>"))
            advance();
        if (atEnd())
            fail("unterminated processing instruction");
        expect("?>");
    }

    /** Skip whitespace, comments and <?...?> before/after the root. */
    void
    skipMisc()
    {
        for (;;) {
            skipWhitespace();
            if (lookingAt("<!--"))
                skipComment();
            else if (lookingAt("<?"))
                skipProcessingInstruction();
            else
                return;
        }
    }

    void
    skipProlog()
    {
        skipMisc();
        if (lookingAt("<!DOCTYPE")) {
            while (!atEnd() && peek() != '>')
                advance();
            if (atEnd())
                fail("unterminated DOCTYPE");
            advance();
            skipMisc();
        }
    }

    std::string
    parseName()
    {
        if (atEnd() || !isNameStart(peek()))
            fail("expected a name");
        std::string name;
        name.push_back(advance());
        while (!atEnd() && isNameChar(peek()))
            name.push_back(advance());
        return name;
    }

    std::string
    parseEntity()
    {
        expect("&");
        std::string entity;
        while (!atEnd() && peek() != ';' && entity.size() < 8)
            entity.push_back(advance());
        if (peek() != ';')
            fail("unterminated entity reference");
        advance();
        if (entity == "lt")
            return "<";
        if (entity == "gt")
            return ">";
        if (entity == "amp")
            return "&";
        if (entity == "quot")
            return "\"";
        if (entity == "apos")
            return "'";
        if (!entity.empty() && entity[0] == '#') {
            const bool hex = entity.size() > 1 && entity[1] == 'x';
            const long code = std::strtol(
                entity.c_str() + (hex ? 2 : 1), nullptr, hex ? 16 : 10);
            if (code <= 0 || code > 0x7f)
                fail("unsupported character reference &" + entity + ";");
            return std::string(1, static_cast<char>(code));
        }
        fail("unknown entity &" + entity + ";");
    }

    std::string
    parseAttrValue()
    {
        if (peek() != '"' && peek() != '\'')
            fail("expected a quoted attribute value");
        const char quote = advance();
        std::string value;
        while (!atEnd() && peek() != quote) {
            if (peek() == '&')
                value += parseEntity();
            else
                value.push_back(advance());
        }
        if (atEnd())
            fail("unterminated attribute value");
        advance();
        return value;
    }

    std::unique_ptr<Element>
    parseElement()
    {
        expect("<");
        auto elem = std::make_unique<Element>();
        elem->_line = _line;
        elem->_name = parseName();

        // Attributes.
        for (;;) {
            skipWhitespace();
            if (atEnd())
                fail("unterminated start tag <" + elem->_name);
            if (peek() == '>' || lookingAt("/>"))
                break;
            Attribute attr;
            attr.name = parseName();
            skipWhitespace();
            expect("=");
            skipWhitespace();
            attr.value = parseAttrValue();
            for (const Attribute& existing : elem->_attrs) {
                if (existing.name == attr.name)
                    fail("duplicate attribute '" + attr.name + "' on <" +
                         elem->_name + ">");
            }
            elem->_attrs.push_back(std::move(attr));
        }

        if (lookingAt("/>")) {
            expect("/>");
            return elem;
        }
        expect(">");

        // Content: text, children, comments, CDATA.
        std::string text;
        for (;;) {
            if (atEnd())
                fail("unterminated element <" + elem->_name + ">");
            if (lookingAt("</")) {
                expect("</");
                const std::string close = parseName();
                if (close != elem->_name)
                    fail("mismatched closing tag </" + close +
                         "> for <" + elem->_name + ">");
                skipWhitespace();
                expect(">");
                break;
            }
            if (lookingAt("<!--")) {
                skipComment();
            } else if (lookingAt("<![CDATA[")) {
                expect("<![CDATA[");
                while (!atEnd() && !lookingAt("]]>"))
                    text.push_back(advance());
                if (atEnd())
                    fail("unterminated CDATA section");
                expect("]]>");
            } else if (lookingAt("<?")) {
                skipProcessingInstruction();
            } else if (peek() == '<') {
                elem->_children.push_back(parseElement());
            } else if (peek() == '&') {
                text += parseEntity();
            } else {
                text.push_back(advance());
            }
        }
        elem->_text = trim(text);
        return elem;
    }
};

bool
Element::hasAttr(std::string_view attr_name) const
{
    for (const Attribute& a : _attrs) {
        if (a.name == attr_name)
            return true;
    }
    return false;
}

const std::string&
Element::attr(std::string_view attr_name) const
{
    for (const Attribute& a : _attrs) {
        if (a.name == attr_name)
            return a.value;
    }
    fatal("element <", _name, "> (line ", _line,
          ") is missing required attribute '", std::string(attr_name), "'");
}

std::string
Element::attrOr(std::string_view attr_name, std::string_view fallback) const
{
    for (const Attribute& a : _attrs) {
        if (a.name == attr_name)
            return a.value;
    }
    return std::string(fallback);
}

const Element*
Element::child(std::string_view tag) const
{
    for (const auto& c : _children) {
        if (c->name() == tag)
            return c.get();
    }
    return nullptr;
}

std::vector<const Element*>
Element::childrenNamed(std::string_view tag) const
{
    std::vector<const Element*> out;
    for (const auto& c : _children) {
        if (c->name() == tag)
            out.push_back(c.get());
    }
    return out;
}

const Element&
Element::requiredChild(std::string_view tag) const
{
    const Element* c = child(tag);
    if (!c)
        fatal("element <", _name, "> (line ", _line,
              ") is missing required child <", std::string(tag), ">");
    return *c;
}

std::string
Element::toString(int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    std::string out = pad + "<" + _name;
    for (const Attribute& a : _attrs)
        out += " " + a.name + "=\"" + escape(a.value) + "\"";
    if (_children.empty() && _text.empty())
        return out + "/>\n";
    out += ">";
    if (!_text.empty())
        out += escape(_text);
    if (!_children.empty()) {
        out += "\n";
        for (const auto& c : _children)
            out += c->toString(indent + 1);
        out += pad;
    }
    return out + "</" + _name + ">\n";
}

Document
parse(std::string_view input, std::string_view source_name)
{
    Parser parser(input, source_name);
    return parser.parseDocument();
}

Document
parseFile(const std::string& path)
{
    return parse(readFile(path), path);
}

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&apos;"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

} // namespace xml
} // namespace gest
