#include "native/native_measurement.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace native {

NativePerfMeasurement::NativePerfMeasurement(
    const isa::InstructionLibrary& lib)
    : _lib(lib), _runner(std::make_unique<NativeRunner>())
{}

void
NativePerfMeasurement::init(const xml::Element* config)
{
    if (!config)
        return;
    if (config->hasAttr("iterations")) {
        const std::int64_t iterations =
            parseInt(config->attr("iterations"), "iterations");
        if (iterations < 1)
            fatal("iterations must be positive, got ", iterations);
        _options.iterations = static_cast<std::uint64_t>(iterations);
    }
}

measure::MeasurementResult
NativePerfMeasurement::measure(
    const std::vector<isa::InstructionInstance>& code)
{
    const std::string program = emitX86Program(_lib, code, _options);
    const RunOutcome outcome = _runner->assembleAndRun(program);
    if (outcome.exitStatus != 0)
        fatal("generated individual exited with status ",
              outcome.exitStatus);

    const double ipc = outcome.ipc().value_or(0.0);
    const double ips =
        outcome.instructions && outcome.wallSeconds > 0.0
            ? *outcome.instructions / outcome.wallSeconds
            : 0.0;
    const double watts =
        outcome.packageJoules && outcome.wallSeconds > 0.0
            ? *outcome.packageJoules / outcome.wallSeconds
            : 0.0;
    return {{ipc, ips, watts}};
}

std::vector<std::string>
NativePerfMeasurement::valueNames() const
{
    return {"ipc", "instructions_per_second", "package_watts"};
}

std::unique_ptr<measure::Measurement>
NativePerfMeasurement::clone() const
{
    auto copy = std::make_unique<NativePerfMeasurement>(_lib);
    copy->_options = _options;
    return copy;
}

bool
NativePerfMeasurement::available()
{
    return NativeRunner::toolchainAvailable() &&
           NativeRunner::perfAvailable();
}

void
registerNativeMeasurements()
{
    measure::MeasurementRegistry& registry =
        measure::MeasurementRegistry::instance();
    if (registry.contains("NativePerfMeasurement"))
        return;
    registry.registerFactory(
        "NativePerfMeasurement",
        [](const isa::InstructionLibrary& lib) {
            return std::make_unique<NativePerfMeasurement>(lib);
        });
}

} // namespace native
} // namespace gest
