#include "native/asm_emit.hh"

#include <cstdio>

namespace gest {
namespace native {

namespace {

std::string
hex64(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace

std::string
emitX86Program(const isa::InstructionLibrary& lib,
               const std::vector<isa::InstructionInstance>& code,
               const EmitOptions& options)
{
    std::string out;
    out += ".intel_syntax noprefix\n";
    out += ".text\n";
    out += ".globl _start\n";
    out += "_start:\n";

    // Checkerboard initialization of the integer pools.
    for (const char* reg :
         {"rax", "rcx", "rdx", "rbx", "rsi", "rdi", "r9", "r11"}) {
        out += "    mov ";
        out += reg;
        out += ", ";
        out += hex64(options.pattern);
        out += "\n";
    }
    // Vector pool: broadcast the pattern through rax.
    for (int v = 0; v < 8; ++v) {
        out += "    movq xmm" + std::to_string(v) + ", rax\n";
        out += "    movddup xmm" + std::to_string(v) + ", xmm" +
               std::to_string(v) + "\n";
    }
    out += "    lea r10, [rip + gest_buffer]\n";
    out += "    mov r12, " + std::to_string(options.iterations) + "\n";
    out += "gest_loop:\n";
    for (const isa::InstructionInstance& inst : code)
        out += "    " + lib.render(inst) + "\n";
    out += "    dec r12\n";
    out += "    jnz gest_loop\n";
    // exit(0) without libc.
    out += "    mov eax, 60\n";
    out += "    xor edi, edi\n";
    out += "    syscall\n";
    out += ".bss\n";
    out += ".align 64\n";
    out += "gest_buffer:\n";
    out += "    .zero " + std::to_string(options.bufferBytes) + "\n";
    return out;
}

std::string
emitA64Program(const isa::InstructionLibrary& lib,
               const std::vector<isa::InstructionInstance>& code,
               const EmitOptions& options)
{
    std::string out;
    out += ".text\n";
    out += ".globl _start\n";
    out += "_start:\n";

    // Checkerboard initialization: integer compute pool, load-result
    // pool and the SIMD registers.
    out += "    ldr x0, =" + hex64(options.pattern) + "\n";
    for (int reg = 2; reg <= 9; ++reg)
        out += "    mov x" + std::to_string(reg) + ", x0\n";
    for (int v = 0; v < 8; ++v)
        out += "    dup v" + std::to_string(v) + ".2d, x0\n";
    out += "    adrp x10, gest_buffer\n";
    out += "    add x10, x10, :lo12:gest_buffer\n";
    out += "    ldr x1, =" + std::to_string(options.iterations) + "\n";
    out += "gest_loop:\n";
    for (const isa::InstructionInstance& inst : code)
        out += "    " + lib.render(inst) + "\n";
    out += "    subs x1, x1, #1\n";
    out += "    b.ne gest_loop\n";
    // exit(0) via svc.
    out += "    mov x8, #93\n";
    out += "    mov x0, #0\n";
    out += "    svc #0\n";
    out += ".bss\n";
    out += ".align 6\n";
    out += "gest_buffer:\n";
    out += "    .zero " + std::to_string(options.bufferBytes) + "\n";
    return out;
}

} // namespace native
} // namespace gest
