/**
 * @file
 * Assemble-and-execute driver for generated programs.
 *
 * The Python tool ships each individual's source to the target, compiles
 * it there and runs the binary (§III.C). On a local x86-64 host this
 * driver does the same with the system toolchain. All availability is
 * probed at runtime so sandboxed environments degrade gracefully.
 */

#ifndef GEST_NATIVE_RUNNER_HH
#define GEST_NATIVE_RUNNER_HH

#include <optional>
#include <string>
#include <sys/types.h>

namespace gest {
namespace native {

/** Result of executing a generated binary. */
struct RunOutcome
{
    int exitStatus = -1;
    double wallSeconds = 0.0;

    /** Hardware counters, when perf was available. */
    std::optional<double> instructions;
    std::optional<double> cycles;

    /** Package energy in joules, when RAPL was readable. */
    std::optional<double> packageJoules;

    /** instructions / cycles when both counters are present. */
    std::optional<double> ipc() const;
};

/**
 * Compiles and runs generated assembly in a scratch directory.
 */
class NativeRunner
{
  public:
    /** @param keep_files keep scratch artifacts (debugging). */
    explicit NativeRunner(bool keep_files = false);
    ~NativeRunner();

    NativeRunner(const NativeRunner&) = delete;
    NativeRunner& operator=(const NativeRunner&) = delete;

    /** @return true if a host assembler/linker (cc) is usable. */
    static bool toolchainAvailable();

    /** @return true if perf_event_open() works for this process. */
    static bool perfAvailable();

    /** @return true if a RAPL energy counter is readable. */
    static bool raplAvailable();

    /**
     * Assemble @p asm_text (GNU as), link without libc, execute, and
     * sample perf counters / RAPL around the execution when available.
     * fatal() when the toolchain is missing or assembly fails — a
     * failing individual is a configuration error in this framework's
     * bundled libraries (the original tool treats compile failures the
     * same way).
     */
    RunOutcome assembleAndRun(const std::string& asm_text);

    /** The scratch directory in use. */
    const std::string& scratchDir() const { return _dir; }

  private:
    std::string _dir;
    bool _keep;
    int _counter = 0;
};

} // namespace native
} // namespace gest

#endif // GEST_NATIVE_RUNNER_HH
