/**
 * @file
 * Measurement that runs individuals on the host CPU.
 *
 * This is the closest analog of the original tool's operation: the
 * individual is printed into a source template, assembled with the
 * system toolchain, executed, and scored from hardware counters (IPC)
 * and — when the host exposes RAPL — package power. Requires an x86-64
 * host with perf_event access; availability is probed so callers can
 * fall back to the simulated platforms.
 */

#ifndef GEST_NATIVE_NATIVE_MEASUREMENT_HH
#define GEST_NATIVE_NATIVE_MEASUREMENT_HH

#include <memory>

#include "measure/measurement.hh"
#include "native/asm_emit.hh"
#include "native/runner.hh"

namespace gest {
namespace native {

/**
 * IPC (and package power, when readable) of an individual executed on
 * the host. Value order: [ipc, instructions_per_second, package_watts]
 * — package_watts is 0 when RAPL is unavailable.
 */
class NativePerfMeasurement : public measure::Measurement
{
  public:
    explicit NativePerfMeasurement(const isa::InstructionLibrary& lib);

    /** XML attributes: `iterations`. */
    void init(const xml::Element* config) override;

    measure::MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) override;

    std::vector<std::string> valueNames() const override;

    std::string name() const override
    {
        return "NativePerfMeasurement";
    }

    /**
     * Clone for a parallel-evaluation worker: same emit options, a
     * fresh NativeRunner (own scratch directory and perf sessions).
     * Note that concurrent native runs contend for the host's cores,
     * so IPC readings are only meaningful with threads=1.
     */
    std::unique_ptr<measure::Measurement> clone() const override;

    /** @return true when this host can run native measurements. */
    static bool available();

  private:
    const isa::InstructionLibrary& _lib;
    EmitOptions _options;
    std::unique_ptr<NativeRunner> _runner;
};

/** Register the native measurement (idempotent). */
void registerNativeMeasurements();

} // namespace native
} // namespace gest

#endif // GEST_NATIVE_NATIVE_MEASUREMENT_HH
