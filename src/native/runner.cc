#include "native/runner.hh"

#include <chrono>
#include <cstdlib>
#include <sys/wait.h>
#include <unistd.h>

#include "native/perf_events.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"

namespace gest {
namespace native {

std::optional<double>
RunOutcome::ipc() const
{
    if (instructions && cycles && *cycles > 0.0)
        return *instructions / *cycles;
    return std::nullopt;
}

NativeRunner::NativeRunner(bool keep_files)
    : _dir(makeTempDir("gest-native")), _keep(keep_files)
{}

NativeRunner::~NativeRunner()
{
    if (!_keep)
        removeAll(_dir);
}

bool
NativeRunner::toolchainAvailable()
{
    return std::system("cc --version > /dev/null 2>&1") == 0;
}

bool
NativeRunner::perfAvailable()
{
    return PerfCounters::available();
}

bool
NativeRunner::raplAvailable()
{
    return RaplReader::available();
}

RunOutcome
NativeRunner::assembleAndRun(const std::string& asm_text)
{
    const std::string tag = std::to_string(_counter++);
    const std::string src = _dir + "/individual_" + tag + ".s";
    const std::string bin = _dir + "/individual_" + tag;
    writeFile(src, asm_text);

    const std::string compile = "cc -nostdlib -static -o '" + bin +
                                "' '" + src + "' 2> '" + _dir +
                                "/compile_" + tag + ".log'";
    if (std::system(compile.c_str()) != 0)
        fatal("failed to assemble generated individual (see ", _dir,
              "/compile_", tag, ".log)");

    RaplReader rapl;
    const bool have_rapl = rapl.open();
    const std::optional<double> energy_before =
        have_rapl ? rapl.energyJoules() : std::nullopt;

    // Gate the child on a pipe so counters attach before it executes.
    int gate[2];
    if (pipe(gate) != 0)
        fatal("pipe() failed");

    const auto start = std::chrono::steady_clock::now();
    const pid_t child = fork();
    if (child < 0)
        fatal("fork() failed");
    if (child == 0) {
        close(gate[1]);
        // Blocks until the parent closes its end (EOF) once counters
        // are armed.
        char token = 0;
        (void)!read(gate[0], &token, 1);
        close(gate[0]);
        execl(bin.c_str(), bin.c_str(), static_cast<char*>(nullptr));
        _exit(127);
    }
    close(gate[0]);

    PerfCounters counters;
    const bool have_perf = counters.attach(child);
    close(gate[1]);

    int status = 0;
    waitpid(child, &status, 0);
    const auto stop = std::chrono::steady_clock::now();

    RunOutcome outcome;
    outcome.exitStatus =
        WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    outcome.wallSeconds =
        std::chrono::duration<double>(stop - start).count();

    if (have_perf) {
        double instructions = 0.0;
        double cycles = 0.0;
        if (counters.read(instructions, cycles)) {
            outcome.instructions = instructions;
            outcome.cycles = cycles;
        }
    }
    if (have_rapl && energy_before.has_value()) {
        const double before = energy_before.value_or(0.0);
        const std::optional<double> energy_after = rapl.energyJoules();
        if (energy_after.has_value() && *energy_after >= before)
            outcome.packageJoules = *energy_after - before;
    }
    return outcome;
}

} // namespace native
} // namespace gest
