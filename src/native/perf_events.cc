#include "native/perf_events.hh"

#include <cstring>
#include <fcntl.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "util/fileutil.hh"
#include "util/strutil.hh"

namespace gest {
namespace native {

namespace {

int
perfEventOpen(std::uint32_t type, std::uint64_t config, pid_t pid)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 0;
    attr.inherit = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, pid, -1, -1, 0));
}

} // namespace

PerfCounters::~PerfCounters()
{
    close();
}

bool
PerfCounters::attach(pid_t pid)
{
    _fdCycles = perfEventOpen(PERF_TYPE_HARDWARE,
                              PERF_COUNT_HW_CPU_CYCLES, pid);
    if (_fdCycles < 0)
        return false;
    _fdInstructions = perfEventOpen(PERF_TYPE_HARDWARE,
                                    PERF_COUNT_HW_INSTRUCTIONS, pid);
    if (_fdInstructions < 0) {
        close();
        return false;
    }
    return true;
}

bool
PerfCounters::read(double& instructions, double& cycles)
{
    if (_fdCycles < 0 || _fdInstructions < 0)
        return false;
    std::uint64_t value = 0;
    if (::read(_fdCycles, &value, sizeof(value)) != sizeof(value))
        return false;
    cycles = static_cast<double>(value);
    if (::read(_fdInstructions, &value, sizeof(value)) != sizeof(value))
        return false;
    instructions = static_cast<double>(value);
    return true;
}

void
PerfCounters::close()
{
    if (_fdCycles >= 0)
        ::close(_fdCycles);
    if (_fdInstructions >= 0)
        ::close(_fdInstructions);
    _fdCycles = -1;
    _fdInstructions = -1;
}

bool
PerfCounters::available()
{
    PerfCounters probe;
    const bool ok = probe.attach(0); // self
    probe.close();
    return ok;
}

bool
RaplReader::open()
{
    for (const char* candidate :
         {"/sys/class/powercap/intel-rapl:0/energy_uj",
          "/sys/class/powercap/intel-rapl/intel-rapl:0/energy_uj"}) {
        std::string contents;
        if (tryReadFile(candidate, contents)) {
            _path = candidate;
            return true;
        }
    }
    return false;
}

std::optional<double>
RaplReader::energyJoules() const
{
    if (_path.empty())
        return std::nullopt;
    std::string contents;
    if (!tryReadFile(_path, contents))
        return std::nullopt;
    const std::string t = trim(contents);
    if (t.empty())
        return std::nullopt;
    char* end = nullptr;
    const double uj = std::strtod(t.c_str(), &end);
    if (end == t.c_str())
        return std::nullopt;
    return uj * 1e-6;
}

bool
RaplReader::available()
{
    RaplReader probe;
    return probe.open();
}

} // namespace native
} // namespace gest
