/**
 * @file
 * Thin wrappers over perf_event_open(2) and the RAPL powercap sysfs.
 *
 * These are the real-hardware measurement instruments of this
 * reproduction: the analog of the paper's Linux `perf` IPC reads and of
 * a power meter. Both probe availability at runtime (containers often
 * restrict perf_event_paranoid and powercap visibility).
 */

#ifndef GEST_NATIVE_PERF_EVENTS_HH
#define GEST_NATIVE_PERF_EVENTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <sys/types.h>

namespace gest {
namespace native {

/**
 * A cycles+instructions counter group attached to one process.
 */
class PerfCounters
{
  public:
    PerfCounters() = default;
    ~PerfCounters();

    PerfCounters(const PerfCounters&) = delete;
    PerfCounters& operator=(const PerfCounters&) = delete;

    /**
     * Attach to @p pid (all CPUs). @return false when the kernel refuses
     * (permissions, missing PMU).
     */
    bool attach(pid_t pid);

    /** Read both counters; valid after the target ran. */
    bool read(double& instructions, double& cycles);

    /** Close file descriptors. */
    void close();

    /** Quick self-test: can this process open counters at all? */
    static bool available();

  private:
    int _fdCycles = -1;
    int _fdInstructions = -1;
};

/**
 * Reader for /sys/class/powercap/intel-rapl:0/energy_uj.
 */
class RaplReader
{
  public:
    /** Locate a readable package-energy file; @return success. */
    bool open();

    /** Current cumulative energy in joules. */
    std::optional<double> energyJoules() const;

    /** @return true if a readable RAPL node exists on this host. */
    static bool available();

  private:
    std::string _path;
};

} // namespace native
} // namespace gest

#endif // GEST_NATIVE_PERF_EVENTS_HH
