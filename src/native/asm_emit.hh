/**
 * @file
 * Native assembly emission.
 *
 * Turns an individual into a complete, self-contained assembly program:
 * the equivalent of printing the individual into the paper's template
 * source file and compiling it on the target. The built-in templates
 * initialize every pool register with a checkerboard pattern (§III.B.2),
 * point the base register at a cache-resident buffer, and run the loop
 * body for a fixed iteration count with no libc dependency (the x86-64
 * program exits through the exit syscall), so startup cost is
 * negligible for counter measurements.
 */

#ifndef GEST_NATIVE_ASM_EMIT_HH
#define GEST_NATIVE_ASM_EMIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/library.hh"

namespace gest {
namespace native {

/** Emission parameters. */
struct EmitOptions
{
    /** Loop iterations the program executes. */
    std::uint64_t iterations = 2'000'000;

    /** Register/buffer initialization pattern. */
    std::uint64_t pattern = 0xaaaaaaaaaaaaaaaaULL;

    /** Data buffer size in bytes. */
    std::uint32_t bufferBytes = 4096;
};

/**
 * Emit a complete x86-64 GNU-as program (Intel syntax, no libc) running
 * the loop body. Integer pool registers rax/rcx/rdx/rbx/rsi/rdi and
 * r9/r11 are initialized with the checkerboard pattern, r10 points at
 * the buffer and r12 is the loop counter.
 */
std::string emitX86Program(const isa::InstructionLibrary& lib,
                           const std::vector<isa::InstructionInstance>&
                               code,
                           const EmitOptions& options = {});

/**
 * Emit a complete AArch64 GNU-as program for the ARM library (for
 * cross-compilation or on-target builds, as the original tool does over
 * ssh).
 */
std::string emitA64Program(const isa::InstructionLibrary& lib,
                           const std::vector<isa::InstructionInstance>&
                               code,
                           const EmitOptions& options = {});

} // namespace native
} // namespace gest

#endif // GEST_NATIVE_ASM_EMIT_HH
