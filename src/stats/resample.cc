#include "stats/resample.hh"

#include <cmath>

#include "util/random.hh"

namespace gest {
namespace stats {

double
mean(const std::vector<double>& samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    return sum / static_cast<double>(samples.size());
}

double
permutationPValue(const std::vector<double>& a,
                  const std::vector<double>& b, int resamples,
                  std::uint64_t seed)
{
    if (a.empty() || b.empty() || resamples <= 0)
        return 1.0;
    const double observed = std::fabs(mean(a) - mean(b));

    std::vector<double> pooled;
    pooled.reserve(a.size() + b.size());
    pooled.insert(pooled.end(), a.begin(), a.end());
    pooled.insert(pooled.end(), b.begin(), b.end());

    Rng rng(seed);
    const std::size_t n_a = a.size();
    int at_least = 0;
    for (int r = 0; r < resamples; ++r) {
        // Fisher-Yates over the pool relabels the samples; the first
        // n_a entries play group A.
        for (std::size_t i = pooled.size() - 1; i > 0; --i) {
            const std::size_t j = rng.pickIndex(i + 1);
            std::swap(pooled[i], pooled[j]);
        }
        double sum_a = 0.0;
        for (std::size_t i = 0; i < n_a; ++i)
            sum_a += pooled[i];
        double sum_b = 0.0;
        for (std::size_t i = n_a; i < pooled.size(); ++i)
            sum_b += pooled[i];
        const double diff = std::fabs(
            sum_a / static_cast<double>(n_a) -
            sum_b / static_cast<double>(pooled.size() - n_a));
        if (diff >= observed - 1e-300)
            ++at_least;
    }
    return static_cast<double>(at_least + 1) /
           static_cast<double>(resamples + 1);
}

} // namespace stats
} // namespace gest
