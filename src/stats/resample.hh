/**
 * @file
 * Resampling-based significance tests for cross-run performance
 * comparison (`gest compare`).
 *
 * Timing samples from two runs of the same search are small (one per
 * generation), skewed and of unknown distribution, so the classical
 * t-test assumptions do not hold; a permutation test makes no
 * distributional assumption and is exact up to Monte-Carlo error. The
 * resampling RNG is seeded deterministically so a comparison's p-values
 * are reproducible.
 */

#ifndef GEST_STATS_RESAMPLE_HH
#define GEST_STATS_RESAMPLE_HH

#include <cstdint>
#include <vector>

namespace gest {
namespace stats {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double>& samples);

/**
 * Two-sided permutation test for a difference in means between @p a
 * and @p b: the labels of the pooled samples are shuffled @p resamples
 * times and the p-value is the fraction of shuffles whose absolute
 * mean difference reaches the observed one (with the +1 smoothing
 * that keeps the estimate conservative and never exactly 0).
 *
 * @return the p-value in (0, 1]; 1.0 when either sample is empty or
 * both are constant and equal.
 */
double permutationPValue(const std::vector<double>& a,
                         const std::vector<double>& b,
                         int resamples = 1000,
                         std::uint64_t seed = 0x9e3779b9ULL);

} // namespace stats
} // namespace gest

#endif // GEST_STATS_RESAMPLE_HH
