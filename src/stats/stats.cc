#include "stats/stats.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <sstream>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "util/strutil.hh"

namespace gest {
namespace stats {

namespace detail {
std::atomic<bool> enabledFlag{false};
} // namespace detail

void
setEnabled(bool on)
{
    detail::enabledFlag.store(on, std::memory_order_relaxed);
}

double
nowUs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
        .count();
}

void
updateProcessGauges()
{
    // Resolved once; the registry guarantees stable references.
    static Gauge& uptime = StatsRegistry::instance().gauge(
        "process.uptime_seconds", "seconds since process start");
    static Gauge& rss = StatsRegistry::instance().gauge(
        "process.rss_bytes", "resident set size in bytes");
    uptime.set(nowUs() / 1e6);

    std::uint64_t rss_bytes = 0;
#if defined(__linux__)
    if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
        unsigned long long total_pages = 0, resident_pages = 0;
        if (std::fscanf(statm, "%llu %llu", &total_pages,
                        &resident_pages) == 2)
            rss_bytes = resident_pages *
                        static_cast<std::uint64_t>(
                            sysconf(_SC_PAGESIZE));
        std::fclose(statm);
    }
#endif
    rss.set(static_cast<double>(rss_bytes));
}

namespace {

/** Relaxed CAS update keeping the extremum of @p current and @p v. */
template <typename Cmp>
void
updateExtremum(std::atomic<double>& current, double v, Cmp better)
{
    double seen = current.load(std::memory_order_relaxed);
    while (better(v, seen) &&
           !current.compare_exchange_weak(seen, v,
                                          std::memory_order_relaxed)) {
        // seen reloaded by compare_exchange_weak.
    }
}

std::string
formatValue(double v)
{
    // Integral values print without a decimal tail so stats.txt stays
    // scannable; everything else keeps six significant digits.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, std::size_t buckets)
    : _name(std::move(name)), _desc(std::move(desc)), _lo(lo), _hi(hi),
      _width((hi - lo) / static_cast<double>(buckets == 0 ? 1 : buckets)),
      _buckets(buckets == 0 ? 1 : buckets)
{
    // Infinity sentinels make the extremum CAS loops initialization
    // free; minSeen()/maxSeen() report 0 while the count is 0.
    _min.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    _max.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

void
Histogram::sample(double v)
{
    if (!enabled())
        return;
    if (v < _lo) {
        _underflow.fetch_add(1, std::memory_order_relaxed);
    } else if (v >= _hi) {
        _overflow.fetch_add(1, std::memory_order_relaxed);
    } else {
        const auto index = static_cast<std::size_t>((v - _lo) / _width);
        _buckets[std::min(index, _buckets.size() - 1)].fetch_add(
            1, std::memory_order_relaxed);
    }
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(v, std::memory_order_relaxed);
    updateExtremum(_min, v, std::less<double>());
    updateExtremum(_max, v, std::greater<double>());
}

double
Histogram::mean() const
{
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
Histogram::minSeen() const
{
    return count() == 0 ? 0.0 : _min.load(std::memory_order_relaxed);
}

double
Histogram::maxSeen() const
{
    return count() == 0 ? 0.0 : _max.load(std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const double rank = q * static_cast<double>(n);
    double cumulative =
        static_cast<double>(_underflow.load(std::memory_order_relaxed));
    double result;
    if (rank <= cumulative) {
        // The requested mass sits below the tracked range.
        result = minSeen();
    } else {
        result = maxSeen();  // falls through when mass is in overflow
        for (std::size_t i = 0; i < _buckets.size(); ++i) {
            const double in_bucket = static_cast<double>(
                _buckets[i].load(std::memory_order_relaxed));
            if (in_bucket > 0.0 && rank <= cumulative + in_bucket) {
                result = bucketLo(i) +
                         _width * (rank - cumulative) / in_bucket;
                break;
            }
            cumulative += in_bucket;
        }
    }
    // Concurrent sampling can leave count/buckets momentarily out of
    // step; the observed extremes are always a sane envelope.
    return std::min(std::max(result, minSeen()), maxSeen());
}

void
Histogram::reset()
{
    for (std::atomic<std::uint64_t>& bucket : _buckets)
        bucket.store(0, std::memory_order_relaxed);
    _underflow.store(0, std::memory_order_relaxed);
    _overflow.store(0, std::memory_order_relaxed);
    _count.store(0, std::memory_order_relaxed);
    _sum.store(0.0, std::memory_order_relaxed);
    _min.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    _max.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

StatsRegistry&
StatsRegistry::instance()
{
    static StatsRegistry registry;
    return registry;
}

Counter&
StatsRegistry::counter(const std::string& name, const std::string& desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (const std::unique_ptr<Counter>& c : _counters) {
        if (c->name() == name)
            return *c;
    }
    _counters.emplace_back(new Counter(name, desc));
    return *_counters.back();
}

Gauge&
StatsRegistry::gauge(const std::string& name, const std::string& desc)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (const std::unique_ptr<Gauge>& g : _gauges) {
        if (g->name() == name)
            return *g;
    }
    _gauges.emplace_back(new Gauge(name, desc));
    return *_gauges.back();
}

Histogram&
StatsRegistry::histogram(const std::string& name, const std::string& desc,
                         double lo, double hi, std::size_t buckets)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (const std::unique_ptr<Histogram>& h : _histograms) {
        if (h->name() == name)
            return *h;
    }
    _histograms.emplace_back(new Histogram(name, desc, lo, hi, buckets));
    return *_histograms.back();
}

void
StatsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (const std::unique_ptr<Counter>& c : _counters)
        c->reset();
    for (const std::unique_ptr<Gauge>& g : _gauges)
        g->reset();
    for (const std::unique_ptr<Histogram>& h : _histograms)
        h->reset();
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::string> out;
    out.reserve(_counters.size() + _gauges.size() + _histograms.size());
    for (const std::unique_ptr<Counter>& c : _counters)
        out.push_back(c->name());
    for (const std::unique_ptr<Gauge>& g : _gauges)
        out.push_back(g->name());
    for (const std::unique_ptr<Histogram>& h : _histograms)
        out.push_back(h->name());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<const Counter*>
StatsRegistry::counterList() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<const Counter*> out;
    out.reserve(_counters.size());
    for (const std::unique_ptr<Counter>& c : _counters)
        out.push_back(c.get());
    return out;
}

std::vector<const Gauge*>
StatsRegistry::gaugeList() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<const Gauge*> out;
    out.reserve(_gauges.size());
    for (const std::unique_ptr<Gauge>& g : _gauges)
        out.push_back(g.get());
    return out;
}

std::vector<const Histogram*>
StatsRegistry::histogramList() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<const Histogram*> out;
    out.reserve(_histograms.size());
    for (const std::unique_ptr<Histogram>& h : _histograms)
        out.push_back(h.get());
    return out;
}

std::string
StatsRegistry::textDump() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::ostringstream os;
    os << "---------- gest stats ----------\n";
    auto line = [&](const std::string& name, const std::string& value,
                    const std::string& desc) {
        char buf[256];
        std::snprintf(buf, sizeof(buf), "%-42s %16s", name.c_str(),
                      value.c_str());
        os << buf;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };
    for (const std::unique_ptr<Counter>& c : _counters)
        line(c->name(), std::to_string(c->value()), c->desc());
    for (const std::unique_ptr<Gauge>& g : _gauges)
        line(g->name(), formatValue(g->value()), g->desc());
    for (const std::unique_ptr<Histogram>& h : _histograms) {
        line(h->name() + "::count", std::to_string(h->count()),
             h->desc());
        line(h->name() + "::mean", formatValue(h->mean()), "");
        line(h->name() + "::min", formatValue(h->minSeen()), "");
        line(h->name() + "::max", formatValue(h->maxSeen()), "");
        line(h->name() + "::p50", formatValue(h->quantile(0.50)), "");
        line(h->name() + "::p95", formatValue(h->quantile(0.95)), "");
        line(h->name() + "::p99", formatValue(h->quantile(0.99)), "");
        line(h->name() + "::sum", formatValue(h->sum()), "");
    }
    os << "---------- end stats ----------\n";
    return os.str();
}

std::string
StatsRegistry::jsonDump() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::ostringstream os;
    os << "{\n  \"version\": 1,\n  \"counters\": {";
    bool first = true;
    for (const std::unique_ptr<Counter>& c : _counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(c->name())
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
    first = true;
    for (const std::unique_ptr<Gauge>& g : _gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(g->name())
           << "\": " << formatValue(g->value());
        first = false;
    }
    os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
    first = true;
    for (const std::unique_ptr<Histogram>& h : _histograms) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(h->name())
           << "\": {\"count\": " << h->count()
           << ", \"sum\": " << formatValue(h->sum())
           << ", \"mean\": " << formatValue(h->mean())
           << ", \"min\": " << formatValue(h->minSeen())
           << ", \"max\": " << formatValue(h->maxSeen())
           << ", \"p50\": " << formatValue(h->quantile(0.50))
           << ", \"p95\": " << formatValue(h->quantile(0.95))
           << ", \"p99\": " << formatValue(h->quantile(0.99))
           << ", \"lo\": " << formatValue(h->lo())
           << ", \"hi\": " << formatValue(h->hi())
           << ", \"underflow\": " << h->underflow()
           << ", \"overflow\": " << h->overflow() << ", \"buckets\": [";
        for (std::size_t i = 0; i < h->numBuckets(); ++i)
            os << (i == 0 ? "" : ", ") << h->bucketCount(i);
        os << "]}";
        first = false;
    }
    os << (first ? "}" : "\n  }") << "\n}\n";
    return os.str();
}

} // namespace stats
} // namespace gest
