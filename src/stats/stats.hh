/**
 * @file
 * Run-wide statistics in the gem5 idiom: a process-wide registry of
 * named counters, gauges and fixed-bucket histograms, plus a scoped
 * timer that feeds histograms.
 *
 * Design constraints, in order:
 *
 *  1. **Zero cost when disabled.** Everything funnels through one
 *     relaxed atomic `enabled` flag; a disabled counter bump is a load
 *     and a predicted branch, and ScopedTimer never reads the clock.
 *     The engine's hot paths stay benchmark-neutral with stats off.
 *  2. **Lock-free when enabled.** Counters and histogram buckets are
 *     relaxed atomics, so evaluation workers record samples
 *     concurrently without serializing on a mutex (the registry mutex
 *     guards only name lookup, which callers do once and cache).
 *  3. **Stable references.** counter()/gauge()/histogram() return
 *     references that live as long as the process, so hot paths hold
 *     the pointer instead of re-hashing the name.
 *
 * End-of-run, the registry renders itself as a human-readable
 * `stats.txt` (textDump) and a machine-readable `metrics.json`
 * (jsonDump); `gest report` and tools consume the latter.
 */

#ifndef GEST_STATS_STATS_HH
#define GEST_STATS_STATS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gest {
namespace stats {

namespace detail {
/** The one global switch; read inline on every hot-path bump. */
extern std::atomic<bool> enabledFlag;
} // namespace detail

/** Globally enable or disable all recording (default: disabled). */
void setEnabled(bool on);

/** @return whether stats recording is currently on. */
inline bool
enabled()
{
    return detail::enabledFlag.load(std::memory_order_relaxed);
}

/** Monotonic microseconds since an arbitrary process-wide epoch. */
double nowUs();

/**
 * Refresh the process self-observation gauges:
 * `process.uptime_seconds` (time since the stats clock's epoch, i.e.
 * effectively process start) and `process.rss_bytes` (resident set
 * size from /proc/self/statm; 0 where that file does not exist).
 * Called at scrape time by the /metrics endpoint and before the
 * end-of-run stats dump — the values are sampled, not maintained, so
 * nothing ticks on the hot path.
 */
void updateProcessGauges();

/** A monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p n when stats are enabled. */
    void
    inc(std::uint64_t n = 1)
    {
        if (enabled())
            _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    const std::string& name() const { return _name; }
    const std::string& desc() const { return _desc; }

  private:
    friend class StatsRegistry;
    Counter(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    void reset() { _value.store(0, std::memory_order_relaxed); }

    std::string _name;
    std::string _desc;
    std::atomic<std::uint64_t> _value{0};
};

/** A point-in-time value (last write wins). */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (enabled())
            _value.store(v, std::memory_order_relaxed);
    }

    void
    add(double v)
    {
        if (enabled())
            _value.fetch_add(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    const std::string& name() const { return _name; }
    const std::string& desc() const { return _desc; }

  private:
    friend class StatsRegistry;
    Gauge(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    void reset() { _value.store(0.0, std::memory_order_relaxed); }

    std::string _name;
    std::string _desc;
    std::atomic<double> _value{0.0};
};

/**
 * A fixed-bucket linear histogram over [lo, hi) with underflow and
 * overflow buckets, tracking count, sum, min and max. All updates are
 * relaxed atomics; sample() is safe from any thread.
 */
class Histogram
{
  public:
    /** Record @p v when stats are enabled. */
    void sample(double v);

    std::uint64_t
    count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    double sum() const { return _sum.load(std::memory_order_relaxed); }

    /** Arithmetic mean of the samples, 0 when empty. */
    double mean() const;

    /** Smallest sample seen; 0 when empty. */
    double minSeen() const;

    /** Largest sample seen; 0 when empty. */
    double maxSeen() const;

    /**
     * Quantile @p q in [0, 1] estimated from the bucket counts by
     * linear interpolation within the covering bucket, clamped to the
     * observed [minSeen, maxSeen] range (mass in the underflow or
     * overflow bucket resolves to those extremes); 0 when empty. This
     * is the one implementation behind the `::p50/::p95/::p99` lines
     * in stats.txt, the `p50/p95/p99` keys in metrics.json and the
     * quantile series of the /metrics Prometheus endpoint.
     */
    double quantile(double q) const;

    double lo() const { return _lo; }
    double hi() const { return _hi; }

    /** Number of regular buckets (underflow/overflow not included). */
    std::size_t numBuckets() const { return _buckets.size(); }

    /** Count in regular bucket @p i. */
    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return _buckets[i].load(std::memory_order_relaxed);
    }

    /** Inclusive lower edge of bucket @p i. */
    double bucketLo(std::size_t i) const { return _lo + _width * i; }

    std::uint64_t
    underflow() const
    {
        return _underflow.load(std::memory_order_relaxed);
    }

    std::uint64_t
    overflow() const
    {
        return _overflow.load(std::memory_order_relaxed);
    }

    const std::string& name() const { return _name; }
    const std::string& desc() const { return _desc; }

  private:
    friend class StatsRegistry;
    Histogram(std::string name, std::string desc, double lo, double hi,
              std::size_t buckets);
    void reset();

    std::string _name;
    std::string _desc;
    double _lo;
    double _hi;
    double _width;
    std::vector<std::atomic<std::uint64_t>> _buckets;
    std::atomic<std::uint64_t> _underflow{0};
    std::atomic<std::uint64_t> _overflow{0};
    std::atomic<std::uint64_t> _count{0};
    std::atomic<double> _sum{0.0};
    std::atomic<double> _min{0.0};
    std::atomic<double> _max{0.0};
};

/**
 * The process-wide registry. Lookup by name creates on first use and
 * returns the same object thereafter; objects are never destroyed, so
 * references stay valid for the process lifetime.
 */
class StatsRegistry
{
  public:
    static StatsRegistry& instance();

    /** Find or create a counter. The description of the creator wins. */
    Counter& counter(const std::string& name,
                     const std::string& desc = "");

    /** Find or create a gauge. */
    Gauge& gauge(const std::string& name, const std::string& desc = "");

    /**
     * Find or create a histogram; the bucket layout of the first
     * creation wins (a later caller with different bounds gets the
     * existing histogram).
     */
    Histogram& histogram(const std::string& name,
                         const std::string& desc, double lo, double hi,
                         std::size_t buckets);

    /** Zero every value; names and layouts survive. */
    void resetValues();

    /** Human-readable dump (the `stats.txt` artifact). */
    std::string textDump() const;

    /** Machine-readable dump (the `metrics.json` artifact). */
    std::string jsonDump() const;

    /** Sorted names of all registered stats (tests, report). */
    std::vector<std::string> names() const;

    /**
     * Pointers to every registered stat of one kind, in registration
     * order. The objects live for the process, so the pointers never
     * dangle; values read off them are as fresh as their relaxed
     * atomics. Used by renderers that need typed access (the /metrics
     * Prometheus endpoint).
     */
    std::vector<const Counter*> counterList() const;
    std::vector<const Gauge*> gaugeList() const;
    std::vector<const Histogram*> histogramList() const;

  private:
    StatsRegistry() = default;

    mutable std::mutex _mutex;
    std::vector<std::unique_ptr<Counter>> _counters;
    std::vector<std::unique_ptr<Gauge>> _gauges;
    std::vector<std::unique_ptr<Histogram>> _histograms;
};

/**
 * Times a scope and feeds the elapsed microseconds into a histogram on
 * destruction. Does not read the clock when stats are disabled (or
 * when constructed with a null histogram).
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram* hist) : _hist(hist)
    {
        if (_hist && enabled()) {
            _running = true;
            _start = nowUs();
        }
    }

    ~ScopedTimer() { stop(); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    /**
     * Record now instead of at scope exit; @return the elapsed
     * microseconds (0 if the timer never started).
     */
    double
    stop()
    {
        if (!_running)
            return 0.0;
        _running = false;
        const double elapsed = nowUs() - _start;
        _hist->sample(elapsed);
        return elapsed;
    }

  private:
    Histogram* _hist;
    double _start = 0.0;
    bool _running = false;
};

} // namespace stats
} // namespace gest

#endif // GEST_STATS_STATS_HH
