/**
 * @file
 * The experiment registry: the first subsystem that reads *across*
 * runs. A workspace is any directory whose subdirectories are run
 * directories; the registry scans it, indexes every run — sealed runs
 * via their manifest.json, unsealed (in-flight or provenance-off) runs
 * via history.csv/status.json, unreadable ones as "corrupt" — and
 * writes a `# gest-registry v1` CSV plus a JSON twin into the
 * workspace, keyed by config hash, seed, git sha and final fitness.
 *
 * On top of the index sits cross-run regression screening
 * (`gest runs --baseline <run>`): every cohort member sharing the
 * baseline's config hash is compared with stats::permutationPValue —
 * the per-generation best-fitness trajectories gate the *regression*
 * flag (deterministic: two same-seed runs are identical and never
 * flag), while throughput drift is reported separately as
 * informational, the same result-vs-performance split `gest compare`
 * uses. See docs/fleet.md.
 */

#ifndef GEST_REGISTRY_REGISTRY_HH
#define GEST_REGISTRY_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gest {
namespace registry {

/** Registry schema version written by this build. */
constexpr int registryVersion = 1;

/** One indexed run directory. */
struct RunEntry
{
    std::string name;  ///< directory name inside the workspace
    std::string path;  ///< workspace-joined path

    /**
     * How the run was indexed: "sealed" (manifest.json), "unsealed"
     * (history.csv/status.json fallback) or "corrupt" (a manifest
     * exists but cannot be read; see note).
     */
    std::string status;

    /** "running", "completed" or "unknown" (no status.json). */
    std::string state = "unknown";

    std::string configHash;  ///< canonical config hash; "" unknown
    bool hasSeed = false;
    std::uint64_t seed = 0;
    std::string gitSha;
    std::string measurementClass;
    std::string fitnessClass;
    std::string created;  ///< manifest seal time; "" when unsealed

    int generations = 0;  ///< budget; 0 unknown
    int generationsCompleted = 0;
    std::uint64_t evaluations = 0;
    double bestFitness = 0.0;
    std::uint64_t bestId = 0;

    std::uint64_t alerts = 0;  ///< data rows in alerts.csv
    std::string listen;  ///< live telemetry endpoint, from status.json
    std::string note;    ///< diagnostics (comma-free); e.g. why corrupt
};

/**
 * Scan @p workspace for run directories (any subdirectory holding a
 * manifest.json, history.csv, status.json or run_configuration.xml)
 * and index each. Subdirectories that are not runs are skipped;
 * nothing fatal()s on a sick run — it is indexed as "corrupt" with the
 * reason in note. fatal() only when @p workspace itself is not a
 * directory.
 */
std::vector<RunEntry> scanWorkspace(const std::string& workspace);

/** Render the `# gest-registry v1` CSV index. */
std::string formatRegistryCsv(const std::vector<RunEntry>& entries);

/** Render the JSON twin of the index. */
std::string formatRegistryJson(const std::string& workspace,
                               const std::vector<RunEntry>& entries);

/**
 * Write registry.csv and registry.json into @p workspace (atomically:
 * a concurrent reader sees the previous index or this one).
 * @return the CSV path.
 */
std::string writeRegistry(const std::string& workspace,
                          const std::vector<RunEntry>& entries);

/**
 * The CSV cell value of @p entry's column @p key (e.g. "config_hash",
 * "seed", "state"); "" for an unknown key.
 */
std::string entryField(const RunEntry& entry, const std::string& key);

/**
 * `--filter key=value`: true when the entry's column equals @p value
 * or starts with it (so hash prefixes work like git's).
 */
bool matchesFilter(const RunEntry& entry, const std::string& key,
                   const std::string& value);

/** One cohort member screened against the baseline run. */
struct BaselineComparison
{
    std::string baseline;   ///< baseline run name
    std::string candidate;  ///< cohort run name
    bool sameSeed = false;

    double baselineBest = 0.0;
    double candidateBest = 0.0;

    /**
     * Permutation p-value over the per-generation best-fitness
     * trajectories, and the relative mean delta. The regression flag
     * is p < 0.05: deterministic (the test is seeded), and two
     * same-seed runs have identical trajectories, hence p = 1.
     */
    double fitnessP = 1.0;
    double fitnessRelDelta = 0.0;
    bool fitnessRegression = false;

    /**
     * Throughput drift (per-generation measured evals/sec): flagged
     * when p < 0.05 AND the relative delta exceeds 10%, but — like
     * `gest compare`'s performance section — reported separately and
     * never part of the regression verdict, because wall-clock noise
     * is not a result change.
     */
    double baselineEvalsPerSec = 0.0;
    double candidateEvalsPerSec = 0.0;
    double throughputP = 1.0;
    double throughputRelDelta = 0.0;
    bool throughputDrift = false;

    std::string error;  ///< non-empty: this member could not be read
};

/**
 * Screen every indexed run sharing @p baseline_name's config hash
 * against it. fatal() when the baseline is not in @p entries or has no
 * readable history.
 */
std::vector<BaselineComparison>
screenBaseline(const std::string& workspace,
               const std::string& baseline_name,
               const std::vector<RunEntry>& entries);

/** Render the human-readable `gest runs` table. */
std::string formatRunsTable(const std::vector<RunEntry>& entries);

/** Render the human-readable screening section. */
std::string
formatBaselineTable(const std::vector<BaselineComparison>& rows);

/** JSON rows of the screening (an array). */
std::string
formatBaselineJson(const std::vector<BaselineComparison>& rows);

} // namespace registry
} // namespace gest

#endif // GEST_REGISTRY_REGISTRY_HH
