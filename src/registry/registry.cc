#include "registry/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/health.hh"
#include "output/report.hh"
#include "provenance/manifest.hh"
#include "stats/resample.hh"
#include "util/fileutil.hh"
#include "util/jsonlite.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace registry {

namespace {

const char* const registryColumns =
    "run,status,state,config_hash,seed,git_sha,measurement,fitness,"
    "created,generations,generations_completed,evaluations,"
    "best_fitness,best_id,alerts,listen,note";

/** CSV cells must stay one-field: commas and newlines become ';'. */
std::string
csvSanitize(const std::string& s)
{
    std::string out = s;
    for (char& c : out) {
        if (c == ',' || c == '\n' || c == '\r')
            c = ';';
    }
    return out;
}

std::string
fitnessString(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Fill @p entry from the run's status.json, when present/parseable. */
void
applyStatusJson(const std::string& run_dir, RunEntry& entry)
{
    std::string text;
    if (!tryReadFile(run_dir + "/status.json", text))
        return;
    json::Value status;
    if (!json::parse(text, status, nullptr))
        return;
    const std::string state = status.stringOr("state", "");
    if (!state.empty())
        entry.state = state;
    entry.listen = status.stringOr("listen", "");
    if (entry.generations == 0)
        entry.generations = static_cast<int>(
            status.numberOr("total_generations", 0.0));
    const std::string sha = status.stringOr("git_sha", "");
    if (entry.gitSha.empty() && !sha.empty())
        entry.gitSha = sha;
}

/** Count alerts.csv data rows; tolerate absent/malformed ledgers. */
void
applyAlerts(const std::string& run_dir, RunEntry& entry)
{
    try {
        std::vector<analysis::Alert> alerts;
        if (analysis::loadAlerts(run_dir, alerts))
            entry.alerts = alerts.size();
    } catch (const FatalError&) {
        // A malformed alerts ledger does not invalidate the run index.
    }
}

/** Index one run directory; never fatal()s. */
RunEntry
indexRun(const std::string& workspace, const std::string& name)
{
    RunEntry entry;
    entry.name = name;
    entry.path = workspace + "/" + name;

    if (fileExists(entry.path + "/manifest.json")) {
        provenance::Manifest manifest;
        std::string error;
        if (!provenance::loadManifest(entry.path, manifest, &error)) {
            entry.status = "corrupt";
            entry.note = csvSanitize(error);
            applyStatusJson(entry.path, entry);
            applyAlerts(entry.path, entry);
            return entry;
        }
        entry.status = "sealed";
        entry.state = "completed";
        entry.configHash = manifest.configHash;
        entry.hasSeed = manifest.hasSeed;
        entry.seed = manifest.seed;
        entry.gitSha = manifest.gitSha;
        entry.measurementClass = manifest.measurementClass;
        entry.fitnessClass = manifest.fitnessClass;
        entry.created = manifest.created;
        entry.generations = manifest.generations;
        entry.generationsCompleted = manifest.generationsCompleted;
        entry.evaluations = manifest.evaluations;
        entry.bestFitness = manifest.bestFitness;
        entry.bestId = manifest.bestId;
        applyStatusJson(entry.path, entry);
        applyAlerts(entry.path, entry);
        return entry;
    }

    // Unsealed: an in-flight run, or one recorded with provenance off.
    // history.csv carries the trajectory; status.json the live state;
    // the recorded configuration yields the cohort key.
    entry.status = "unsealed";
    try {
        const output::RunReport report = output::analyzeRun(entry.path);
        entry.generationsCompleted = static_cast<int>(report.rows.size());
        entry.evaluations = report.totalMeasured;
        entry.bestFitness = report.bestFitness;
    } catch (const FatalError& err) {
        entry.note = csvSanitize(err.what());
    }
    std::string config_text;
    if (tryReadFile(entry.path + "/run_configuration.xml",
                    config_text)) {
        try {
            entry.configHash =
                provenance::canonicalConfigHash(config_text);
        } catch (const FatalError&) {
            // Malformed recorded config: leave the cohort key empty.
        }
    }
    applyStatusJson(entry.path, entry);
    applyAlerts(entry.path, entry);
    return entry;
}

/** Per-generation samples a screening needs from one run. */
struct RunSamples
{
    std::vector<double> best;   ///< best_fitness per generation
    std::vector<double> rates;  ///< evals/sec per timed generation
    double evalsPerSec = 0.0;
    std::string error;  ///< non-empty: the run could not be read
};

RunSamples
collectSamples(const std::string& run_dir)
{
    RunSamples out;
    try {
        const output::RunReport report = output::analyzeRun(run_dir);
        for (const output::HistoryRow& row : report.rows) {
            out.best.push_back(row.bestFitness);
            if (row.evaluationMs > 0.0 && row.cacheMisses > 0)
                out.rates.push_back(
                    static_cast<double>(row.cacheMisses) /
                    (row.evaluationMs / 1e3));
        }
        out.evalsPerSec = report.evaluationsPerSecond();
    } catch (const FatalError& err) {
        out.error = err.what();
    }
    return out;
}

double
meanOf(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

double
relDelta(double baseline, double candidate)
{
    const double denom = std::max(std::fabs(baseline), 1e-12);
    return (candidate - baseline) / denom;
}

} // namespace

std::vector<RunEntry>
scanWorkspace(const std::string& workspace)
{
    if (!dirExists(workspace))
        fatal("workspace '", workspace, "' is not a directory");
    std::vector<RunEntry> entries;
    for (const std::string& name : listDirs(workspace)) {
        const std::string dir = workspace + "/" + name;
        const bool looks_like_run =
            fileExists(dir + "/manifest.json") ||
            fileExists(dir + "/history.csv") ||
            fileExists(dir + "/status.json") ||
            fileExists(dir + "/run_configuration.xml");
        if (!looks_like_run)
            continue;
        entries.push_back(indexRun(workspace, name));
    }
    return entries;
}

std::string
formatRegistryCsv(const std::vector<RunEntry>& entries)
{
    std::string out = "# gest-registry v" +
                      std::to_string(registryVersion) + "\n";
    out += registryColumns;
    out += "\n";
    for (const RunEntry& e : entries) {
        out += csvSanitize(e.name) + "," + e.status + "," + e.state +
               "," + e.configHash + ",";
        out += e.hasSeed ? std::to_string(e.seed) : "";
        out += "," + csvSanitize(e.gitSha) + "," +
               csvSanitize(e.measurementClass) + "," +
               csvSanitize(e.fitnessClass) + "," +
               csvSanitize(e.created) + ",";
        out += std::to_string(e.generations) + "," +
               std::to_string(e.generationsCompleted) + "," +
               std::to_string(e.evaluations) + "," +
               fitnessString(e.bestFitness) + "," +
               std::to_string(e.bestId) + "," +
               std::to_string(e.alerts) + "," + csvSanitize(e.listen) +
               "," + csvSanitize(e.note) + "\n";
    }
    return out;
}

std::string
formatRegistryJson(const std::string& workspace,
                   const std::vector<RunEntry>& entries)
{
    std::string out = "{\n  \"gest_registry_version\": " +
                      std::to_string(registryVersion) + ",\n";
    out += "  \"workspace\": \"" + jsonEscape(workspace) + "\",\n";
    out += "  \"runs\": [";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const RunEntry& e = entries[i];
        out += i == 0 ? "\n    {" : ",\n    {";
        out += "\n      \"run\": \"" + jsonEscape(e.name) + "\",";
        out += "\n      \"status\": \"" + e.status + "\",";
        out += "\n      \"state\": \"" + e.state + "\",";
        out += "\n      \"config_hash\": \"" + e.configHash + "\",";
        // Seed as a JSON string, the manifest's convention (a uint64
        // does not fit a double losslessly); null when unknown.
        out += "\n      \"seed\": ";
        out += e.hasSeed ? "\"" + std::to_string(e.seed) + "\"" : "null";
        out += ",";
        out += "\n      \"git_sha\": \"" + jsonEscape(e.gitSha) + "\",";
        out += "\n      \"measurement_class\": \"" +
               jsonEscape(e.measurementClass) + "\",";
        out += "\n      \"fitness_class\": \"" +
               jsonEscape(e.fitnessClass) + "\",";
        out += "\n      \"created\": \"" + jsonEscape(e.created) + "\",";
        out += "\n      \"generations\": " +
               std::to_string(e.generations) + ",";
        out += "\n      \"generations_completed\": " +
               std::to_string(e.generationsCompleted) + ",";
        out += "\n      \"evaluations\": " +
               std::to_string(e.evaluations) + ",";
        out += "\n      \"best_fitness\": " +
               fitnessString(e.bestFitness) + ",";
        out += "\n      \"best_id\": " + std::to_string(e.bestId) + ",";
        out += "\n      \"alerts\": " + std::to_string(e.alerts) + ",";
        out += "\n      \"listen\": \"" + jsonEscape(e.listen) + "\",";
        out += "\n      \"note\": \"" + jsonEscape(e.note) + "\"";
        out += "\n    }";
    }
    out += entries.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

std::string
writeRegistry(const std::string& workspace,
              const std::vector<RunEntry>& entries)
{
    const std::string csv_path = workspace + "/registry.csv";
    writeFileAtomic(csv_path, formatRegistryCsv(entries));
    writeFileAtomic(workspace + "/registry.json",
                    formatRegistryJson(workspace, entries));
    return csv_path;
}

std::string
entryField(const RunEntry& e, const std::string& key)
{
    if (key == "run")
        return e.name;
    if (key == "status")
        return e.status;
    if (key == "state")
        return e.state;
    if (key == "config_hash")
        return e.configHash;
    if (key == "seed")
        return e.hasSeed ? std::to_string(e.seed) : "";
    if (key == "git_sha")
        return e.gitSha;
    if (key == "measurement")
        return e.measurementClass;
    if (key == "fitness")
        return e.fitnessClass;
    if (key == "created")
        return e.created;
    if (key == "generations")
        return std::to_string(e.generations);
    if (key == "generations_completed")
        return std::to_string(e.generationsCompleted);
    if (key == "evaluations")
        return std::to_string(e.evaluations);
    if (key == "best_fitness")
        return fitnessString(e.bestFitness);
    if (key == "best_id")
        return std::to_string(e.bestId);
    if (key == "alerts")
        return std::to_string(e.alerts);
    if (key == "listen")
        return e.listen;
    if (key == "note")
        return e.note;
    return "";
}

bool
matchesFilter(const RunEntry& entry, const std::string& key,
              const std::string& value)
{
    const std::string cell = entryField(entry, key);
    return cell == value || startsWith(cell, value);
}

std::vector<BaselineComparison>
screenBaseline(const std::string& workspace,
               const std::string& baseline_name,
               const std::vector<RunEntry>& entries)
{
    // Accept the run's name or its path (trailing slashes stripped).
    std::string wanted = baseline_name;
    while (!wanted.empty() && wanted.back() == '/')
        wanted.pop_back();
    const std::size_t slash = wanted.find_last_of('/');
    if (slash != std::string::npos)
        wanted = wanted.substr(slash + 1);

    const RunEntry* baseline = nullptr;
    for (const RunEntry& e : entries) {
        if (e.name == wanted) {
            baseline = &e;
            break;
        }
    }
    if (baseline == nullptr)
        fatal("baseline run '", baseline_name, "' is not indexed in ",
              workspace, " (run `gest runs ", workspace,
              "` to see the index)");
    if (baseline->configHash.empty())
        fatal("baseline run '", baseline->name,
              "' has no config hash to build a cohort from");

    const RunSamples base = collectSamples(baseline->path);
    if (!base.error.empty())
        fatal("baseline run '", baseline->name, "': ", base.error);

    std::vector<BaselineComparison> out;
    for (const RunEntry& e : entries) {
        if (e.name == baseline->name || e.status == "corrupt" ||
            e.configHash != baseline->configHash)
            continue;
        BaselineComparison cmp;
        cmp.baseline = baseline->name;
        cmp.candidate = e.name;
        cmp.sameSeed =
            baseline->hasSeed && e.hasSeed && baseline->seed == e.seed;
        cmp.baselineBest = baseline->bestFitness;
        cmp.candidateBest = e.bestFitness;

        const RunSamples cand = collectSamples(e.path);
        if (!cand.error.empty()) {
            cmp.error = cand.error;
            out.push_back(std::move(cmp));
            continue;
        }
        cmp.fitnessP = stats::permutationPValue(base.best, cand.best);
        cmp.fitnessRelDelta =
            relDelta(meanOf(base.best), meanOf(cand.best));
        cmp.fitnessRegression = cmp.fitnessP < 0.05;

        cmp.baselineEvalsPerSec = base.evalsPerSec;
        cmp.candidateEvalsPerSec = cand.evalsPerSec;
        cmp.throughputP =
            stats::permutationPValue(base.rates, cand.rates);
        cmp.throughputRelDelta =
            relDelta(meanOf(base.rates), meanOf(cand.rates));
        cmp.throughputDrift =
            cmp.throughputP < 0.05 &&
            std::fabs(cmp.throughputRelDelta) > 0.10;
        out.push_back(std::move(cmp));
    }
    return out;
}

std::string
formatRunsTable(const std::vector<RunEntry>& entries)
{
    char line[512];
    std::string out;
    std::snprintf(line, sizeof(line),
                  "%-24s %-8s %-10s %9s %12s %-12s %-12s %6s\n", "run",
                  "status", "state", "gens", "best", "config",
                  "git sha", "alerts");
    out += line;
    std::uint64_t alerts = 0;
    int running = 0;
    for (const RunEntry& e : entries) {
        const std::string gens =
            std::to_string(e.generationsCompleted) + "/" +
            (e.generations > 0 ? std::to_string(e.generations) : "?");
        std::snprintf(line, sizeof(line),
                      "%-24s %-8s %-10s %9s %12.6f %-12s %-12s %6llu\n",
                      e.name.c_str(), e.status.c_str(),
                      e.state.c_str(), gens.c_str(), e.bestFitness,
                      e.configHash.substr(0, 12).c_str(),
                      e.gitSha.substr(0, 12).c_str(),
                      static_cast<unsigned long long>(e.alerts));
        out += line;
        if (!e.note.empty())
            out += "    note: " + e.note + "\n";
        alerts += e.alerts;
        if (e.state == "running")
            ++running;
    }
    std::snprintf(line, sizeof(line),
                  "%zu run(s) indexed, %d running, %llu alert(s)\n",
                  entries.size(), running,
                  static_cast<unsigned long long>(alerts));
    out += line;
    return out;
}

std::string
formatBaselineTable(const std::vector<BaselineComparison>& rows)
{
    std::string out;
    if (rows.empty())
        return "cohort: no other runs share the baseline's config "
               "hash\n";
    char line[512];
    out += "cohort screening (baseline " + rows.front().baseline +
           "):\n";
    for (const BaselineComparison& cmp : rows) {
        if (!cmp.error.empty()) {
            out += "  " + cmp.candidate + ": unreadable (" + cmp.error +
                   ")\n";
            continue;
        }
        std::snprintf(
            line, sizeof(line),
            "  %-24s %s  fitness p=%.4f delta %+.2f%%  "
            "throughput p=%.4f delta %+.1f%%%s%s\n",
            cmp.candidate.c_str(),
            cmp.fitnessRegression ? "REGRESSION" : "ok        ",
            cmp.fitnessP, 100.0 * cmp.fitnessRelDelta, cmp.throughputP,
            100.0 * cmp.throughputRelDelta,
            cmp.throughputDrift ? "  (throughput drift)" : "",
            cmp.sameSeed ? "  [same seed]" : "");
        out += line;
    }
    return out;
}

std::string
formatBaselineJson(const std::vector<BaselineComparison>& rows)
{
    std::string out = "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const BaselineComparison& cmp = rows[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "\n  {\"baseline\": \"%s\", \"candidate\": \"%s\", "
            "\"same_seed\": %s, \"fitness_p\": %.6f, "
            "\"fitness_rel_delta\": %.9g, \"fitness_regression\": %s, "
            "\"throughput_p\": %.6f, \"throughput_rel_delta\": %.9g, "
            "\"throughput_drift\": %s, \"error\": \"%s\"}",
            jsonEscape(cmp.baseline).c_str(),
            jsonEscape(cmp.candidate).c_str(),
            cmp.sameSeed ? "true" : "false", cmp.fitnessP,
            cmp.fitnessRelDelta, cmp.fitnessRegression ? "true" : "false",
            cmp.throughputP, cmp.throughputRelDelta,
            cmp.throughputDrift ? "true" : "false",
            jsonEscape(cmp.error).c_str());
        out += buf;
        if (i + 1 < rows.size())
            out += ",";
    }
    out += rows.empty() ? "]\n" : "\n]\n";
    return out;
}

} // namespace registry
} // namespace gest
