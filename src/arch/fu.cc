#include "arch/fu.hh"

namespace gest {
namespace arch {

const char*
toString(FuType fu)
{
    switch (fu) {
      case FuType::IntAlu: return "IntAlu";
      case FuType::IntMul: return "IntMul";
      case FuType::IntDiv: return "IntDiv";
      case FuType::FpSimd: return "FpSimd";
      case FuType::Lsu: return "Lsu";
      case FuType::Branch: return "Branch";
    }
    return "?";
}

} // namespace arch
} // namespace gest
