/**
 * @file
 * Decoded micro-operations.
 *
 * The simulator does not interpret format strings; instruction instances
 * are decoded once per evaluation into a flat MicroOp form: semantic
 * opcode, register sources/destinations in a unified register space
 * (integer 0-31, vector 32-63) and an immediate.
 */

#ifndef GEST_ARCH_MICROOP_HH
#define GEST_ARCH_MICROOP_HH

#include <cstdint>
#include <vector>

#include "isa/instr_class.hh"
#include "isa/library.hh"

namespace gest {
namespace arch {

/** Unified register-space size: 32 integer + 32 vector registers. */
constexpr int numUnifiedRegs = 64;

/** Map a parsed register onto the unified register space. */
inline int
unifiedReg(const isa::RegRef& reg)
{
    return reg.cls == isa::RegClass::Int ? reg.index : 32 + reg.index;
}

/** @return true for unified indices naming vector registers. */
inline bool
isVecReg(int unified)
{
    return unified >= 32;
}

/** One decoded operation, ready for timing and functional execution. */
struct MicroOp
{
    isa::Opcode op = isa::Opcode::Nop;
    isa::InstrClass cls = isa::InstrClass::Nop;

    std::int8_t src[4] = {-1, -1, -1, -1};
    std::int8_t dst[2] = {-1, -1};
    std::int8_t numSrc = 0;
    std::int8_t numDst = 0;

    std::int64_t imm = 0;
    bool hasImm = false;

    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;

    /** Memory access width in bytes (loads/stores only). */
    std::int8_t accessBytes = 8;
};

/**
 * Decode one instruction instance against its library.
 *
 * fatal() when a register operand's name cannot be parsed — a simulated
 * target cannot execute registers it does not know.
 */
MicroOp decode(const isa::InstructionLibrary& lib,
               const isa::InstructionInstance& inst);

/** Decode a whole loop body. */
std::vector<MicroOp> decodeBody(const isa::InstructionLibrary& lib,
                                const std::vector<isa::InstructionInstance>&
                                    body);

/** decodeBody() into caller-owned storage (cleared, capacity kept). */
void decodeBodyInto(const isa::InstructionLibrary& lib,
                    const std::vector<isa::InstructionInstance>& body,
                    std::vector<MicroOp>& out);

} // namespace arch
} // namespace gest

#endif // GEST_ARCH_MICROOP_HH
