/**
 * @file
 * Per-cycle activity records produced by the simulator.
 *
 * The power model consumes this trace; the PDN model consumes the current
 * trace the power model derives from it. Keeping the record compact
 * matters: a GA run evaluates thousands of individuals, each over
 * thousands of cycles.
 */

#ifndef GEST_ARCH_TRACE_HH
#define GEST_ARCH_TRACE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/instr_class.hh"
#include "util/tiling.hh"

namespace gest {
namespace arch {

/**
 * Per-cycle trace rows stored per run are capped at this many cycles;
 * beyond it the simulator keeps counting into the aggregate counters
 * but stops recording rows. Tiled-trace consumers clip the virtual
 * trace to the same bound so the fast path sees exactly what a full
 * simulation would have stored.
 */
constexpr std::size_t maxTraceCycles = 1u << 20;

/** Activity observed in a single cycle. */
struct CycleStats
{
    /** Micro-ops issued this cycle, by instruction class. */
    std::array<std::uint8_t, isa::numInstrClasses> issued{};

    /** Result-bit toggles (Hamming distance) of all ops issued. */
    std::uint32_t toggleBits = 0;

    /** Scheduler-window occupancy at the start of the cycle. */
    std::uint8_t windowOccupancy = 0;

    /** Instructions fetched/decoded this cycle. */
    std::uint8_t fetched = 0;

    /** L1 data-cache misses initiated this cycle. */
    std::uint8_t cacheMisses = 0;

    /** L2 misses (DRAM accesses) initiated this cycle. */
    std::uint8_t l2Misses = 0;

    /** 1 if a branch mispredict was charged this cycle. */
    std::uint8_t mispredicts = 0;

    /** Total micro-ops issued this cycle. */
    int
    totalIssued() const
    {
        int total = 0;
        for (std::uint8_t count : issued)
            total += count;
        return total;
    }
};

/** Result of simulating a loop body for some number of iterations. */
struct SimResult
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t iterations = 0;

    /** Committed-instruction IPC over the measured (post-warmup) region. */
    double ipc = 0.0;

    /**
     * Per-cycle activity, warmup excluded. When the steady-state fast
     * path found a period, this stores only the layout described by
     * `tiling` ([prefix | period | tail]); `cycles` and the aggregate
     * counters always describe the full virtual run.
     */
    std::vector<CycleStats> trace;

    /** Mapping from `trace` rows onto the virtual per-cycle trace. */
    util::TraceTiling tiling;

    /**
     * Measured cycles actually stepped by the simulator. Equal to
     * `cycles` when no period was found; much smaller on a steady hit.
     */
    std::uint64_t simulatedCycles = 0;

    /** True when the steady-state detector cut the run short. */
    bool steadyHit() const { return simulatedCycles < cycles; }

    /** Issue counts per class over the measured region. */
    std::array<std::uint64_t, isa::numInstrClasses> classCounts{};

    std::uint64_t cacheAccesses = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t mispredicts = 0;

    /** Sum of toggle bits over the measured region. */
    std::uint64_t totalToggleBits = 0;

    /** Average scheduler occupancy per cycle. */
    double avgWindowOccupancy = 0.0;

    /** L1 hit rate over the measured region. */
    double
    l1HitRate() const
    {
        if (cacheAccesses == 0)
            return 1.0;
        return 1.0 - static_cast<double>(cacheMisses) /
                         static_cast<double>(cacheAccesses);
    }

    /** L2 hit rate over the measured region (1.0 with no L2 traffic). */
    double
    l2HitRate() const
    {
        if (l2Accesses == 0)
            return 1.0;
        return 1.0 - static_cast<double>(l2Misses) /
                         static_cast<double>(l2Accesses);
    }

    /** DRAM accesses (L2 misses) per thousand instructions. */
    double
    dramPerKiloInstr() const
    {
        if (instructions == 0)
            return 0.0;
        return 1000.0 * static_cast<double>(l2Misses) /
               static_cast<double>(instructions);
    }
};

} // namespace arch
} // namespace gest

#endif // GEST_ARCH_TRACE_HH
