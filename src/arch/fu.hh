/**
 * @file
 * Functional-unit types of the timing model.
 */

#ifndef GEST_ARCH_FU_HH
#define GEST_ARCH_FU_HH

namespace gest {
namespace arch {

/** Execution-resource classes instructions compete for. */
enum class FuType
{
    IntAlu,  ///< simple integer ALU
    IntMul,  ///< integer multiplier (pipelined)
    IntDiv,  ///< integer divider (unpipelined)
    FpSimd,  ///< FP/SIMD pipe
    Lsu,     ///< load/store unit
    Branch,  ///< branch unit
};

/** Number of FuType values. */
constexpr int numFuTypes = 6;

/** @return a short display name for a functional unit type. */
const char* toString(FuType fu);

} // namespace arch
} // namespace gest

#endif // GEST_ARCH_FU_HH
