#include "arch/cache.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace gest {
namespace arch {

namespace {

int
log2i(int value)
{
    int bits = 0;
    while ((1 << bits) < value)
        ++bits;
    return bits;
}

} // namespace

Cache::Cache(const CacheConfig& cfg) : _cfg(cfg)
{
    if ((cfg.sets & (cfg.sets - 1)) != 0)
        fatal("cache sets must be a power of two, got ", cfg.sets);
    if ((cfg.lineBytes & (cfg.lineBytes - 1)) != 0)
        fatal("cache line size must be a power of two, got ",
              cfg.lineBytes);
    if (cfg.ways > 64)
        fatal("cache associativity above 64 is not supported, got ",
              cfg.ways);
    _lines.resize(static_cast<std::size_t>(cfg.sets) * cfg.ways);
    _offsetBits = log2i(cfg.lineBytes);
    _indexMask = cfg.sets - 1;
}

bool
Cache::access(std::uint64_t address)
{
    ++_accesses;
    ++_useCounter;

    const std::uint64_t line_addr = address >> _offsetBits;
    const int set = static_cast<int>(line_addr) & _indexMask;
    const std::uint64_t tag = line_addr >> log2i(_cfg.sets);

    Line* base = &_lines[static_cast<std::size_t>(set) * _cfg.ways];
    Line* victim = base;
    for (int way = 0; way < _cfg.ways; ++way) {
        Line& line = base[way];
        if (line.valid && line.tag == tag) {
            line.lastUse = _useCounter;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++_misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = _useCounter;
    return false;
}

bool
Cache::probe(std::uint64_t address) const
{
    const std::uint64_t line_addr = address >> _offsetBits;
    const int set = static_cast<int>(line_addr) & _indexMask;
    const std::uint64_t tag = line_addr >> log2i(_cfg.sets);
    const Line* base = &_lines[static_cast<std::size_t>(set) * _cfg.ways];
    for (int way = 0; way < _cfg.ways; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line& line : _lines)
        line.valid = false;
}

void
Cache::reset()
{
    for (Line& line : _lines)
        line = Line{};
    _accesses = 0;
    _misses = 0;
    _useCounter = 0;
}

void
Cache::appendCanonicalState(std::vector<std::uint64_t>& out) const
{
    // Valid lines always carry distinct lastUse values (every access
    // stamps exactly one line with a fresh clock tick), so sorting by
    // lastUse gives a unique recency order per set.
    std::array<const Line*, 64> order;
    for (int set = 0; set < _cfg.sets; ++set) {
        const Line* base =
            &_lines[static_cast<std::size_t>(set) * _cfg.ways];
        int valid = 0;
        for (int way = 0; way < _cfg.ways; ++way) {
            if (base[way].valid)
                order[static_cast<std::size_t>(valid++)] = &base[way];
        }
        std::sort(order.begin(), order.begin() + valid,
                  [](const Line* a, const Line* b) {
                      return a->lastUse < b->lastUse;
                  });
        out.push_back(static_cast<std::uint64_t>(_cfg.ways - valid));
        for (int i = 0; i < valid; ++i)
            out.push_back(order[static_cast<std::size_t>(i)]->tag);
    }
}

double
Cache::hitRate() const
{
    if (_accesses == 0)
        return 1.0;
    return 1.0 - static_cast<double>(_misses) /
                     static_cast<double>(_accesses);
}

} // namespace arch
} // namespace gest
