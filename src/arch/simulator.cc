#include "arch/simulator.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "signal/signal_probe.hh"
#include "util/logging.hh"

namespace gest {
namespace arch {

using isa::InstrClass;
using isa::Opcode;

namespace {

/** The implicit loop-closing backward branch the template provides. */
MicroOp
loopBranchOp()
{
    MicroOp mo;
    mo.op = Opcode::BranchCond;
    mo.cls = InstrClass::Branch;
    mo.isBranch = true;
    return mo;
}

/** Hamming distance between old and new values. */
inline std::uint32_t
toggles(std::uint64_t before, std::uint64_t after)
{
    return static_cast<std::uint32_t>(std::popcount(before ^ after));
}

/** Finalizing 64-bit mixer (splitmix64). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Contribution of one aligned 8-byte memory word to the incremental
 * memory digest. The digest is the sum of these over all words, so a
 * store updates it in O(1): add the new word's term, subtract the old
 * one's. All storeWord offsets are 8-byte aligned (accessBytes is
 * always 8 or 16), so the windows are disjoint and the sum is a pure
 * function of the memory contents.
 */
inline std::uint64_t
memCell(std::uint64_t offset, std::uint64_t value, std::uint64_t salt)
{
    return mix64(mix64(offset ^ salt) ^ value);
}

/** Cache geometry equality, for scratch reuse across evaluations. */
bool
sameGeometry(const CacheConfig& a, const CacheConfig& b)
{
    return a.sets == b.sets && a.ways == b.ways &&
           a.lineBytes == b.lineBytes && a.hitLatency == b.hitLatency &&
           a.missLatency == b.missLatency;
}

/** Exact per-period counter deltas between two matched boundaries. */
struct PeriodDeltas
{
    std::uint64_t issued = 0;
    std::uint64_t windowOcc = 0;
    std::uint64_t toggles = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t cacheAccesses = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::array<std::uint64_t, isa::numInstrClasses> classCounts{};
};

} // namespace

/**
 * All mutable execution state for one run. The heavy storage (memory
 * image, caches, scheduler window, detector records) lives in the
 * caller's SimScratch so repeated runs are allocation-free; RunState
 * itself only holds the register files and bookkeeping.
 */
class RunState
{
  public:
    RunState(const CpuConfig& cfg, const InitState& init,
             SimScratch& scratch, bool track_mem_digest)
        : _cfg(cfg), _init(init), _scratch(scratch),
          _trackMemDigest(track_mem_digest)
    {
        scratch.memory.assign(init.bufferBytes, init.memPattern);
        if (!scratch.l1 || !sameGeometry(scratch.l1->config(), cfg.l1d))
            scratch.l1.emplace(cfg.l1d);
        else
            scratch.l1->reset();
        _cache = &*scratch.l1;
        if (cfg.hasL2) {
            if (!scratch.l2 ||
                !sameGeometry(scratch.l2->config(), cfg.l2))
                scratch.l2.emplace(cfg.l2);
            else
                scratch.l2->reset();
            _l2 = &*scratch.l2;
            scratch.mshrFreeAt.assign(
                static_cast<std::size_t>(std::max(1, cfg.mshrs)), 0);
        } else {
            _l2 = nullptr;
            scratch.mshrFreeAt.clear();
        }
        for (std::uint64_t& v : _intRegs)
            v = init.intPattern;
        for (auto& lanes : _vecRegs)
            lanes = {init.vecPattern, init.vecPattern};
        // The base register holds a virtual buffer address. Any aligned
        // value works; what matters is that address arithmetic lands in
        // the modelled buffer.
        _intRegs[init.baseRegister] = bufferBase;
        for (std::uint64_t& ready : _regReadyAt)
            ready = 0;
        for (int fu = 0; fu < numFuTypes; ++fu)
            scratch.fuFreeAt[static_cast<std::size_t>(fu)].assign(
                std::max(0, cfg.fuCount[static_cast<std::size_t>(fu)]),
                0);
    }

    void
    run(const std::vector<MicroOp>& body, std::uint64_t iterations,
        std::uint64_t warmup_iterations, const RunOptions& options,
        SimResult& result)
    {
        if (body.empty())
            fatal("cannot simulate an empty loop body");
        if (warmup_iterations >= iterations)
            warmup_iterations = iterations > 1 ? iterations - 1 : 0;

        const MicroOp loop_branch = loopBranchOp();
        const std::size_t ops_per_iter = body.size() + 1;
        std::uint64_t total_ops = ops_per_iter * iterations;
        const std::uint64_t warmup_ops = ops_per_iter * warmup_iterations;

        // Reset the result but keep the trace's capacity (scratch use).
        {
            std::vector<CycleStats> trace = std::move(result.trace);
            trace.clear();
            result = SimResult{};
            result.trace = std::move(trace);
        }
        result.iterations = iterations;
        const std::uint64_t reserve_rows =
            options.traceReserveCycles > 0
                ? std::min<std::uint64_t>(options.traceReserveCycles,
                                          maxTraceCycles)
                : 4096;
        result.trace.reserve(static_cast<std::size_t>(reserve_rows));

        std::uint64_t fetch_seq = 0;
        std::uint64_t issued_total = 0;
        std::uint64_t cycle = 0;
        std::uint64_t fetch_resume_at = 0;
        std::uint64_t measure_start_cycle = 0;
        std::uint64_t window_occ_sum = 0;
        std::uint64_t measured_issued = 0;
        bool measuring = warmup_ops == 0;
        int cond_branch_count = 0;

        std::vector<WindowSlot>& window = _scratch.window;
        window.clear();
        window.reserve(static_cast<std::size_t>(_cfg.windowSize));

        // Steady-state periodicity detection: sample the canonical
        // architectural state once per loop iteration; a recurrence
        // means the rest of the run is an exact repetition.
        bool sampling = options.steadyState &&
                        iterations > warmup_iterations + 1;
        std::uint64_t last_sampled_iter = 0;
        // Samples carry only a 16-byte trigger digest, so the pool
        // can afford to cover long warm-ups and periods.
        static constexpr std::size_t maxSamples = 512;
        _scratch.samples.clear();

        std::uint64_t tile_extra = 0;
        std::uint64_t tile_dc = 0;
        PeriodDeltas deltas;

        // Forward-progress bound: DRAM-bound loops with a single MSHR
        // can legitimately take ~missLatency cycles per memory op.
        const std::uint64_t cycle_limit = total_ops * 1024 + 8192;

        while (issued_total < total_ops) {
            if (cycle > cycle_limit)
                panic("simulator made no forward progress (cpu '",
                      _cfg.name, "')");

            // Measurement starts at the first cycle boundary after all
            // warmup iterations have issued.
            if (!measuring && issued_total >= warmup_ops) {
                measuring = true;
                measure_start_cycle = cycle;
            }

            if (sampling && measuring) {
                const std::uint64_t iter = fetch_seq / ops_per_iter;
                if (iter > last_sampled_iter) {
                    last_sampled_iter = iter;
                    const SimScratch::Boundary* match = recordBoundary(
                        body, loop_branch, window, cycle, fetch_seq,
                        fetch_resume_at, cond_branch_count,
                        measured_issued, window_occ_sum, result, iter,
                        maxSamples);
                    if (match) {
                        const SimScratch::Boundary& b1 = *match;
                        const std::uint64_t dc = cycle - b1.cycle;
                        const std::uint64_t df = fetch_seq - b1.fetchSeq;
                        const std::uint64_t p2 =
                            cycle - measure_start_cycle;
                        const std::uint64_t n_extra =
                            df > 0 ? (total_ops - fetch_seq) / df : 0;
                        if (n_extra >= 1 && dc > 0 &&
                            result.trace.size() == p2) {
                            tile_extra = n_extra;
                            tile_dc = dc;
                            deltas.issued =
                                measured_issued - b1.measuredIssued;
                            deltas.windowOcc =
                                window_occ_sum - b1.windowOccSum;
                            deltas.toggles =
                                result.totalToggleBits - b1.toggleBits;
                            deltas.mispredicts =
                                result.mispredicts - b1.mispredicts;
                            deltas.cacheAccesses =
                                _cache->accesses() - b1.cacheAccesses;
                            deltas.cacheMisses =
                                _cache->misses() - b1.cacheMisses;
                            deltas.l2Accesses =
                                (_l2 ? _l2->accesses() : 0) -
                                b1.l2Accesses;
                            deltas.l2Misses =
                                (_l2 ? _l2->misses() : 0) - b1.l2Misses;
                            for (int cls = 0;
                                 cls < isa::numInstrClasses; ++cls) {
                                const auto i =
                                    static_cast<std::size_t>(cls);
                                deltas.classCounts[i] =
                                    result.classCounts[i] -
                                    b1.classCounts[i];
                            }
                            result.tiling.prefix =
                                b1.cycle - measure_start_cycle;
                            result.tiling.period = dc;
                            result.tiling.repeats = n_extra + 1;
                            // Drop the tiled-out iterations; the loop
                            // continues from the recurring state and
                            // re-simulates the final partial period
                            // plus the window drain, which the exact
                            // recurrence makes identical to the tail
                            // of the full run.
                            total_ops -= n_extra * df;
                            // The horizon can land exactly on this
                            // boundary with the window already drained;
                            // the full run's loop exits before stepping
                            // that cycle, so exit before recording it.
                            if (issued_total >= total_ops)
                                break;
                        }
                        sampling = false;
                        _trackMemDigest = false;
                    }
                    if (_samplingExhausted) {
                        sampling = false;
                        _trackMemDigest = false;
                    }
                }
            }

            CycleStats stats;
            stats.windowOccupancy =
                static_cast<std::uint8_t>(std::min<std::size_t>(
                    window.size(), 255));
            if (measuring)
                window_occ_sum += window.size();

            // ---- Fetch ----
            if (cycle >= fetch_resume_at) {
                int fetched = 0;
                while (fetched < _cfg.fetchWidth &&
                       window.size() <
                           static_cast<std::size_t>(_cfg.windowSize) &&
                       fetch_seq < total_ops) {
                    const std::size_t pos = fetch_seq % ops_per_iter;
                    const MicroOp* mo =
                        pos < body.size() ? &body[pos] : &loop_branch;
                    const bool is_loop_branch = pos == body.size();
                    // Functional execution happens here, in program
                    // order, so register values, memory contents and
                    // therefore addresses are sequentially consistent
                    // regardless of the out-of-order issue schedule.
                    window.push_back(executeAtFetch(*mo));
                    ++fetch_seq;
                    ++fetched;
                    if (mo->isBranch) {
                        // Taken branches redirect fetch. The loop branch
                        // and unconditional forward branches are
                        // predicted; conditional branches may
                        // deterministically mispredict.
                        std::uint64_t bubble =
                            static_cast<std::uint64_t>(
                                _cfg.takenBranchBubble);
                        if (!is_loop_branch &&
                            mo->op == Opcode::BranchCond &&
                            _cfg.mispredictEveryN > 0) {
                            if (++cond_branch_count >=
                                _cfg.mispredictEveryN) {
                                cond_branch_count = 0;
                                bubble = static_cast<std::uint64_t>(
                                    _cfg.mispredictPenalty);
                                ++stats.mispredicts;
                            }
                        }
                        // bubble == 0 models branch folding: the BTAC
                        // redirects fetch within the same cycle and the
                        // fetch group continues (Cortex-A7 style).
                        if (bubble > 0) {
                            fetch_resume_at = cycle + 1 + bubble;
                            break;
                        }
                    }
                }
                stats.fetched = static_cast<std::uint8_t>(fetched);
            }

            // ---- Issue ----
            int issued_this_cycle = 0;
            std::size_t kept = 0;
            bool stop_scan = false;
            for (std::size_t i = 0; i < window.size(); ++i) {
                const WindowSlot& slot = window[i];
                bool issued = false;
                if (!stop_scan &&
                    issued_this_cycle < _cfg.issueWidth) {
                    issued = tryIssue(slot, cycle, stats);
                    if (issued) {
                        ++issued_this_cycle;
                        ++issued_total;
                    } else if (!_cfg.outOfOrder) {
                        stop_scan = true;
                    }
                } else if (!_cfg.outOfOrder) {
                    stop_scan = true;
                }
                if (!issued)
                    window[kept++] = window[i];
            }
            window.resize(kept);

            // ---- Record ----
            if (measuring) {
                if (result.trace.size() < maxTraceCycles)
                    result.trace.push_back(stats);
                for (int cls = 0; cls < isa::numInstrClasses; ++cls)
                    result.classCounts[static_cast<std::size_t>(cls)] +=
                        stats.issued[static_cast<std::size_t>(cls)];
                result.totalToggleBits += stats.toggleBits;
                result.mispredicts += stats.mispredicts;
                measured_issued +=
                    static_cast<std::uint64_t>(stats.totalIssued());
            }

            ++cycle;
        }

        const std::uint64_t simulated_cycles =
            cycle - measure_start_cycle;
        result.simulatedCycles =
            simulated_cycles > 0 ? simulated_cycles : 1;

        std::uint64_t virtual_cycles = simulated_cycles;
        if (tile_extra > 0) {
            // Tile the counters out to the full horizon — exact
            // integer extrapolation: every skipped period contributes
            // precisely the matched boundaries' delta.
            virtual_cycles += tile_extra * tile_dc;
            measured_issued += tile_extra * deltas.issued;
            window_occ_sum += tile_extra * deltas.windowOcc;
            result.totalToggleBits += tile_extra * deltas.toggles;
            result.mispredicts += tile_extra * deltas.mispredicts;
            for (int cls = 0; cls < isa::numInstrClasses; ++cls)
                result.classCounts[static_cast<std::size_t>(cls)] +=
                    tile_extra *
                    deltas.classCounts[static_cast<std::size_t>(cls)];
            result.tiling.tail =
                result.trace.size() -
                (result.tiling.prefix + result.tiling.period);
        } else {
            result.tiling = util::TraceTiling::untiled(
                result.trace.size());
        }

        result.cycles = virtual_cycles > 0 ? virtual_cycles : 1;
        // Exactly what the measured cycles issued: trace, class counts
        // and instruction count always agree.
        result.instructions = measured_issued;
        result.ipc = static_cast<double>(result.instructions) /
                     static_cast<double>(result.cycles);
        // Cache counters cover the whole run including warmup, like a
        // real hardware event counter read around the binary execution.
        result.cacheAccesses =
            _cache->accesses() + tile_extra * deltas.cacheAccesses;
        result.cacheMisses =
            _cache->misses() + tile_extra * deltas.cacheMisses;
        result.l2Accesses = (_l2 ? _l2->accesses() : 0) +
                            tile_extra * deltas.l2Accesses;
        result.l2Misses =
            (_l2 ? _l2->misses() : 0) + tile_extra * deltas.l2Misses;
        result.avgWindowOccupancy =
            static_cast<double>(window_occ_sum) /
            static_cast<double>(result.cycles);
    }

  private:
    static constexpr std::uint64_t bufferBase = 0x10000;

    const CpuConfig& _cfg;
    const InitState& _init;
    SimScratch& _scratch;
    Cache* _cache = nullptr;
    Cache* _l2 = nullptr;
    bool _trackMemDigest;
    std::uint64_t _memDigestLo = 0;
    std::uint64_t _memDigestHi = 0;

    // Armed-anchor state of the steady detector's stage-2 verifier.
    bool _anchorArmed = false;
    std::uint64_t _anchorIter = 0;
    std::uint64_t _anchorDeadlineIter = 0;
    SimScratch::Boundary _anchor;
    std::uint32_t _anchorFails = 0;
    std::uint64_t _anchorSkip = 0;
    /**
     * Per-run budget of full cache-state serializations. Capturing
     * the caches is the expensive part of the detector (every set
     * reduced to recency order); a clean detection needs exactly two
     * captures (arm + verify), so a small budget caps the cost on
     * hostile bodies whose cheap state keeps recurring while their
     * caches never settle, or whose anchors keep expiring.
     */
    std::uint32_t _cacheCaptureBudget = 10;
    bool _samplingExhausted = false;

    std::array<std::uint64_t, 32> _intRegs{};
    std::array<std::array<std::uint64_t, 2>, 32> _vecRegs{};
    std::array<std::uint64_t, numUnifiedRegs> _regReadyAt{};

    /**
     * Serialize the complete canonical architectural state: register
     * files, timestamps relative to the current cycle (only the
     * differences drive future behavior), the scheduler window with
     * payloads, the branch phase, the two-lane incremental memory
     * digest maintained in storeWord(), and the cache state reduced
     * to per-set recency order. Two boundaries with equal
     * serializations behave identically forever after.
     */
    void
    appendExactState(const std::vector<MicroOp>& body,
                     const MicroOp& loop_branch,
                     const std::vector<WindowSlot>& window,
                     std::uint64_t cycle, std::uint64_t fetch_seq,
                     std::uint64_t fetch_resume_at,
                     int cond_branch_count,
                     std::vector<std::uint64_t>& out) const
    {
        auto rel = [cycle](std::uint64_t at) {
            return at > cycle ? at - cycle : 0;
        };
        out.push_back(fetch_seq % (body.size() + 1));
        out.push_back(rel(fetch_resume_at));
        out.push_back(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(cond_branch_count)));
        for (std::uint64_t v : _intRegs)
            out.push_back(v);
        for (const auto& lanes : _vecRegs) {
            out.push_back(lanes[0]);
            out.push_back(lanes[1]);
        }
        for (std::uint64_t at : _regReadyAt)
            out.push_back(rel(at));
        for (const auto& units : _scratch.fuFreeAt)
            for (std::uint64_t at : units)
                out.push_back(rel(at));
        for (std::uint64_t at : _scratch.mshrFreeAt)
            out.push_back(rel(at));
        out.push_back(window.size());
        for (const WindowSlot& slot : window) {
            out.push_back(slot.mo == &loop_branch
                              ? body.size()
                              : static_cast<std::uint64_t>(
                                    slot.mo - body.data()));
            out.push_back(slot.address);
            out.push_back(slot.toggles);
        }
        out.push_back(_memDigestLo);
        out.push_back(_memDigestHi);
        _cache->appendCanonicalState(out);
        if (_l2)
            _l2->appendCanonicalState(out);
    }

    /**
     * Sample one loop-iteration boundary for the steady-state
     * detector.
     *
     * Stage 1 folds the cheap state — register files, relative
     * timestamps, the scheduler window, the branch phase and the
     * memory digest — into a rolling trigger digest. Nothing is
     * stored or compared word-for-word per boundary; the digest only
     * decides when the expensive exact comparison is worth
     * attempting, so aperiodic bodies (the common case for evolved
     * individuals) pay a few hundred arithmetic ops per iteration
     * and nothing else.
     *
     * Stage 2 runs only when a digest repeats. The first repetition
     * arms an anchor: the full exact state (appendExactState,
     * including the cache canonical state) is captured at that
     * boundary together with a snapshot of the run counters. When
     * the same digest comes around again the candidate's exact state
     * is captured and compared against the anchor's; equality proves
     * the whole architectural state recurred over [anchor, here],
     * and the anchor's counter snapshots give the exact per-period
     * deltas. A failed comparison (digest collision, or caches still
     * settling under a long-period strided walk) re-arms the anchor
     * at the candidate with exponential backoff; a per-run capture
     * budget bounds the total cost, and an anchor that never fires
     * expires after twice its arming gap so sampling can continue.
     *
     * @return the anchored boundary proven architecturally equal to
     *         the current one, or nullptr.
     */
    const SimScratch::Boundary*
    recordBoundary(const std::vector<MicroOp>& body,
                   const MicroOp& loop_branch,
                   const std::vector<WindowSlot>& window,
                   std::uint64_t cycle, std::uint64_t fetch_seq,
                   std::uint64_t fetch_resume_at, int cond_branch_count,
                   std::uint64_t measured_issued,
                   std::uint64_t window_occ_sum, const SimResult& result,
                   std::uint64_t iter, std::size_t max_samples)
    {
        auto rel = [cycle](std::uint64_t at) {
            return at > cycle ? at - cycle : 0;
        };
        // Four independent fold lanes keep the digest loop
        // throughput-bound instead of serialized on multiply
        // latency; the lanes are only combined at the end.
        std::uint64_t lane0 = 0x6a09e667f3bcc909ULL;
        std::uint64_t lane1 = 0xbb67ae8584caa73bULL;
        std::uint64_t lane2 = 0x3c6ef372fe94f82bULL;
        std::uint64_t lane3 = 0xa54ff53a5f1d36f1ULL;
        unsigned nfold = 0;
        auto fold = [&](std::uint64_t w) {
            switch (nfold++ & 3u) {
            case 0:
                lane0 = (lane0 ^ w) * 0x9ddfea08eb382d69ULL;
                break;
            case 1:
                lane1 = (lane1 ^ w) * 0xff51afd7ed558ccdULL;
                break;
            case 2:
                lane2 = (lane2 ^ w) * 0xc4ceb9fe1a85ec53ULL;
                break;
            default:
                lane3 = (lane3 ^ w) * 0x2545f4914f6cdd1dULL;
                break;
            }
        };
        fold(fetch_seq % (body.size() + 1));
        fold(rel(fetch_resume_at));
        fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(cond_branch_count)));
        for (std::uint64_t v : _intRegs)
            fold(v);
        for (const auto& lanes : _vecRegs)
            fold(lanes[0] + 0x9e3779b97f4a7c15ULL * lanes[1]);
        for (std::uint64_t at : _regReadyAt)
            fold(rel(at));
        for (const auto& units : _scratch.fuFreeAt)
            for (std::uint64_t at : units)
                fold(rel(at));
        for (std::uint64_t at : _scratch.mshrFreeAt)
            fold(rel(at));
        fold(window.size());
        for (const WindowSlot& slot : window)
            fold((slot.mo == &loop_branch
                      ? body.size()
                      : static_cast<std::uint64_t>(slot.mo -
                                                   body.data())) +
                 0x9e3779b97f4a7c15ULL * slot.address +
                 0xc2b2ae3d27d4eb4fULL * slot.toggles);
        fold(_memDigestLo);
        fold(_memDigestHi);
        const std::uint64_t digest =
            mix64(mix64(lane0 ^ lane1) ^ mix64(lane2 ^ lane3));

        auto snapshot = [&](SimScratch::Boundary& rec) {
            rec.cycle = cycle;
            rec.fetchSeq = fetch_seq;
            rec.digest = digest;
            rec.measuredIssued = measured_issued;
            rec.windowOccSum = window_occ_sum;
            rec.toggleBits = result.totalToggleBits;
            rec.mispredicts = result.mispredicts;
            rec.cacheAccesses = _cache->accesses();
            rec.cacheMisses = _cache->misses();
            rec.l2Accesses = _l2 ? _l2->accesses() : 0;
            rec.l2Misses = _l2 ? _l2->misses() : 0;
            rec.classCounts = result.classCounts;
        };

        if (_anchorArmed && iter > _anchorDeadlineIter)
            _anchorArmed = false;

        if (_anchorArmed && digest == _anchor.digest) {
            if (_anchorSkip > 0) {
                // Backing off after failed verifications; let this
                // recurrence pass without serializing anything.
                --_anchorSkip;
                return nullptr;
            }
            if (_cacheCaptureBudget == 0) {
                _anchorArmed = false;
                _samplingExhausted = true;
                return nullptr;
            }
            --_cacheCaptureBudget;
            // Stage 2: the trigger digest recurred at the anchor's
            // period; exact-state equality proves an architectural
            // recurrence over [anchor, here].
            std::vector<std::uint64_t>& cand = _scratch.stateTmp;
            cand.clear();
            appendExactState(body, loop_branch, window, cycle,
                             fetch_seq, fetch_resume_at,
                             cond_branch_count, cand);
            if (cand == _scratch.anchorState)
                return &_anchor;
            // Digest collision, or caches still settling under a
            // walk that can take the whole run to come back around:
            // re-anchor here and skip a doubling number of
            // recurrences before verifying again; the capture budget
            // bounds the total cost.
            ++_anchorFails;
            const std::uint64_t gap = iter - _anchorIter;
            snapshot(_anchor);
            _anchorIter = iter;
            _anchorSkip = (std::uint64_t{1} << _anchorFails) - 1;
            _anchorDeadlineIter =
                iter + 2 * gap * (_anchorSkip + 1) + 8;
            _scratch.anchorState.swap(cand);
            return nullptr;
        }

        for (const SimScratch::Sample& s : _scratch.samples) {
            if (s.digest != digest)
                continue;
            if (_anchorArmed) // busy verifying another candidate
                return nullptr;
            if (_cacheCaptureBudget == 0) {
                _samplingExhausted = true;
                return nullptr;
            }
            --_cacheCaptureBudget;
            // First digest repetition: arm the anchor by capturing
            // the exact state at this boundary.
            snapshot(_anchor);
            _anchorIter = iter;
            _anchorFails = 0;
            _anchorSkip = 0;
            _anchorDeadlineIter = iter + 2 * (iter - s.iter) + 8;
            _anchorArmed = true;
            _scratch.anchorState.clear();
            appendExactState(body, loop_branch, window, cycle,
                             fetch_seq, fetch_resume_at,
                             cond_branch_count,
                             _scratch.anchorState);
            return nullptr;
        }

        if (_scratch.samples.size() < max_samples) {
            _scratch.samples.push_back({digest, iter});
        } else if (!_anchorArmed) {
            // With the sample pool full and no anchor in flight, a
            // new period can no longer be discovered.
            _samplingExhausted = true;
        }
        return nullptr;
    }


    std::uint64_t
    readLane(int unified, int lane) const
    {
        if (isVecReg(unified))
            return _vecRegs[static_cast<std::size_t>(unified - 32)]
                           [static_cast<std::size_t>(lane)];
        return _intRegs[static_cast<std::size_t>(unified)];
    }

    std::uint32_t
    writeLane(int unified, int lane, std::uint64_t value)
    {
        std::uint64_t* slot;
        if (isVecReg(unified))
            slot = &_vecRegs[static_cast<std::size_t>(unified - 32)]
                            [static_cast<std::size_t>(lane)];
        else
            slot = &_intRegs[static_cast<std::size_t>(unified)];
        const std::uint32_t flips = toggles(*slot, value);
        *slot = value;
        return flips;
    }

    /** Map a virtual address into the modelled buffer. */
    std::size_t
    bufferOffset(std::uint64_t address, int bytes) const
    {
        std::uint64_t off =
            (address - bufferBase) % _scratch.memory.size();
        off &= ~static_cast<std::uint64_t>(bytes - 1);
        if (off + static_cast<std::uint64_t>(bytes) >
            _scratch.memory.size())
            off = 0;
        return static_cast<std::size_t>(off);
    }

    std::uint64_t
    loadWord(std::size_t offset) const
    {
        std::uint64_t v;
        std::memcpy(&v, &_scratch.memory[offset], sizeof(v));
        return v;
    }

    std::uint32_t
    storeWord(std::size_t offset, std::uint64_t value)
    {
        const std::uint64_t before = loadWord(offset);
        const std::uint32_t flips = toggles(before, value);
        std::memcpy(&_scratch.memory[offset], &value, sizeof(value));
        if (_trackMemDigest && before != value) {
            const std::uint64_t o =
                static_cast<std::uint64_t>(offset);
            _memDigestLo += memCell(o, value, 0x243f6a8885a308d3ULL) -
                            memCell(o, before, 0x243f6a8885a308d3ULL);
            _memDigestHi += memCell(o, value, 0x13198a2e03707344ULL) -
                            memCell(o, before, 0x13198a2e03707344ULL);
        }
        return flips;
    }

    /**
     * Execute one micro-op architecturally at fetch time (program
     * order): update registers/memory, compute its access address and
     * datapath toggles. Timing is not affected here.
     */
    WindowSlot
    executeAtFetch(const MicroOp& mo)
    {
        WindowSlot slot{&mo, 0, 0};
        if (mo.isLoad || mo.isStore) {
            const int base = mo.src[mo.numSrc - 1];
            slot.address =
                readLane(base, 0) + static_cast<std::uint64_t>(mo.imm);
            const std::size_t offset =
                bufferOffset(slot.address, mo.accessBytes);
            if (mo.isLoad) {
                for (int d = 0; d < mo.numDst; ++d) {
                    const std::size_t word_off =
                        offset + static_cast<std::size_t>(d) * 8;
                    if (isVecReg(mo.dst[d]) && mo.accessBytes == 16) {
                        slot.toggles += writeLane(mo.dst[d], 0,
                                                  loadWord(offset));
                        slot.toggles += writeLane(mo.dst[d], 1,
                                                  loadWord(offset + 8));
                    } else {
                        slot.toggles +=
                            writeLane(mo.dst[d], 0,
                                      loadWord(word_off %
                                               _scratch.memory.size()));
                    }
                }
            } else {
                // Stores: data sources precede the base register.
                for (int s = 0; s < mo.numSrc - 1; ++s) {
                    const int data = mo.src[s];
                    if (isVecReg(data) && mo.accessBytes == 16) {
                        slot.toggles +=
                            storeWord(offset, readLane(data, 0));
                        slot.toggles +=
                            storeWord(offset + 8, readLane(data, 1));
                    } else {
                        const std::size_t word_off =
                            (offset + static_cast<std::size_t>(s) * 8) %
                            (_scratch.memory.size() - 8);
                        slot.toggles +=
                            storeWord(word_off, readLane(data, 0));
                    }
                }
            }
        } else {
            slot.toggles = execute(mo);
        }
        return slot;
    }

    /**
     * Try to issue one fetched micro-op at @p cycle; on success charge
     * its FU, the cache hierarchy and the register readiness.
     */
    bool
    tryIssue(const WindowSlot& slot, std::uint64_t cycle,
             CycleStats& stats)
    {
        const MicroOp& mo = *slot.mo;

        // Source readiness.
        for (int i = 0; i < mo.numSrc; ++i) {
            if (_regReadyAt[static_cast<std::size_t>(mo.src[i])] > cycle)
                return false;
        }

        // Functional unit availability.
        const OpTiming& timing = _cfg.opTiming(mo.op);
        auto& units =
            _scratch.fuFreeAt[static_cast<std::size_t>(timing.fu)];
        std::uint64_t* unit = nullptr;
        for (std::uint64_t& free_at : units) {
            if (free_at <= cycle) {
                unit = &free_at;
                break;
            }
        }
        if (!unit)
            return false;

        int latency = timing.latency;

        // Memory access: consult the cache hierarchy with the address
        // computed in program order at fetch.
        if (mo.isLoad || mo.isStore) {
            const std::uint64_t address = slot.address;

            // A request that will go to DRAM needs a free MSHR; without
            // one the op cannot issue this cycle (bounded memory-level
            // parallelism).
            std::uint64_t* mshr = nullptr;
            if (_l2 && !_cache->probe(address) && !_l2->probe(address)) {
                for (std::uint64_t& free_at : _scratch.mshrFreeAt) {
                    if (free_at <= cycle) {
                        mshr = &free_at;
                        break;
                    }
                }
                if (!mshr)
                    return false;
            }

            const bool hit = _cache->access(address);
            if (!hit) {
                ++stats.cacheMisses;
                if (_l2) {
                    const bool l2_hit = _l2->access(address);
                    if (!l2_hit) {
                        ++stats.l2Misses;
                        if (mshr)
                            *mshr = cycle + static_cast<std::uint64_t>(
                                                _cfg.l2.missLatency);
                    }
                    latency = l2_hit ? _cfg.l2.hitLatency
                                     : _cfg.l2.missLatency;
                } else {
                    latency = _cfg.l1d.missLatency;
                }
            } else if (mo.isLoad) {
                latency = _cfg.l1d.hitLatency;
            }
        }

        // Charge the functional unit for its issue interval. Memory ops
        // that miss keep the LSU busy only for the issue slot; the line
        // fill proceeds in the background (non-blocking cache).
        *unit = cycle + static_cast<std::uint64_t>(timing.busyCycles);

        // Destination readiness.
        for (int d = 0; d < mo.numDst; ++d)
            _regReadyAt[static_cast<std::size_t>(mo.dst[d])] =
                cycle + static_cast<std::uint64_t>(latency);

        ++stats.issued[static_cast<std::size_t>(mo.cls)];
        stats.toggleBits += slot.toggles;
        return true;
    }

    /** Execute a non-memory micro-op; @return result-bit toggles. */
    std::uint32_t
    execute(const MicroOp& mo)
    {
        if (mo.numDst == 0)
            return mo.op == Opcode::Cmp ? 4 : 0;

        const int dst = mo.dst[0];
        const int lanes = isVecReg(dst) ? 2 : 1;

        auto src_or_imm = [&](int index, int lane) -> std::uint64_t {
            if (index < mo.numSrc)
                return readLane(mo.src[index], lane);
            return static_cast<std::uint64_t>(mo.imm);
        };

        std::uint32_t flips = 0;
        for (int lane = 0; lane < lanes; ++lane) {
            const std::uint64_t a = src_or_imm(0, lane);
            const std::uint64_t b = src_or_imm(1, lane);
            const std::uint64_t c = src_or_imm(2, lane);
            std::uint64_t value = 0;
            switch (mo.op) {
              case Opcode::Add: value = a + b; break;
              case Opcode::AddWrap:
                // Pointer advance bounded to the data buffer (the real
                // template masks the pointer the same way).
                value = bufferBase +
                        ((a + b - bufferBase) &
                         (static_cast<std::uint64_t>(
                              _scratch.memory.size()) -
                          1));
                break;
              case Opcode::Sub: value = a - b; break;
              case Opcode::And: value = a & b; break;
              case Opcode::Orr: value = a | b; break;
              case Opcode::Eor: value = a ^ b; break;
              case Opcode::Lsl:
                value = a << (mo.hasImm ? (mo.imm & 63) : (b & 63));
                break;
              case Opcode::Lsr:
                value = a >> (mo.hasImm ? (mo.imm & 63) : (b & 63));
                break;
              case Opcode::Mov:
                value = mo.numSrc > 0 ? a
                                      : static_cast<std::uint64_t>(mo.imm);
                break;
              case Opcode::Mul: value = a * b; break;
              case Opcode::MAdd: value = a * b + c; break;
              case Opcode::SMull:
                value = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(
                        static_cast<std::int32_t>(a)) *
                    static_cast<std::int64_t>(
                        static_cast<std::int32_t>(b)));
                break;
              case Opcode::UDiv: value = b ? a / b : 0; break;
              // FP executed with integer-proxy semantics: the goal is a
              // realistic amount of datapath bit switching, not numerics.
              case Opcode::FAdd:
              case Opcode::VAdd: value = a + b; break;
              case Opcode::FMul:
              case Opcode::VMul: value = a * b; break;
              case Opcode::FDiv: value = b ? a / (b | 1) : 0; break;
              case Opcode::FMAdd:
              case Opcode::VFma: value = a * b + c; break;
              case Opcode::FSqrt: value = a >> 32; break;
              case Opcode::VAnd: value = a & b; break;
              default:
                return 0;
            }
            flips += writeLane(dst, lane, value);
        }
        return flips;
    }
};

LoopSimulator::LoopSimulator(const CpuConfig& cfg, const InitState& init)
    : _cfg(cfg), _init(init)
{
    _cfg.validate();
    if (init.bufferBytes < 512 ||
        (init.bufferBytes & (init.bufferBytes - 1)) != 0)
        fatal("buffer size must be a power of two >= 512, got ",
              init.bufferBytes);
    if (init.baseRegister < 0 || init.baseRegister >= 32)
        fatal("base register index out of range: ", init.baseRegister);
}

SimResult
LoopSimulator::run(const std::vector<MicroOp>& body,
                   std::uint64_t iterations,
                   std::uint64_t warmup_iterations)
{
    SimScratch scratch;
    SimResult result;
    RunOptions options;
    options.steadyState = false;
    RunState state(_cfg, _init, scratch, false);
    state.run(body, iterations, warmup_iterations, options, result);
    return result;
}

SimResult
LoopSimulator::runForCycles(const std::vector<MicroOp>& body,
                            std::uint64_t min_cycles,
                            std::uint64_t max_instructions)
{
    SimScratch scratch;
    SimResult result;
    RunOptions options;
    options.steadyState = false;
    runForCyclesInto(body, min_cycles, max_instructions, options,
                     scratch, result);
    return result;
}

void
LoopSimulator::runForCyclesInto(const std::vector<MicroOp>& body,
                                std::uint64_t min_cycles,
                                std::uint64_t max_instructions,
                                const RunOptions& options,
                                SimScratch& scratch, SimResult& out)
{
    if (body.empty())
        fatal("cannot simulate an empty loop body");

    const std::uint64_t warmup = 2;
    const std::uint64_t probe_iters = warmup + 8;
    {
        RunOptions probe_options;
        probe_options.steadyState = false;
        RunState state(_cfg, _init, scratch, false);
        state.run(body, probe_iters, warmup, probe_options, out);
    }

    const double cycles_per_iter =
        static_cast<double>(out.cycles) /
        static_cast<double>(probe_iters - warmup);
    std::uint64_t need = warmup + 1 +
        static_cast<std::uint64_t>(
            static_cast<double>(min_cycles) / cycles_per_iter);

    const std::uint64_t iter_cap =
        std::max<std::uint64_t>(warmup + 1,
                                max_instructions / (body.size() + 1));
    need = std::min(need, iter_cap);

    RunOptions main_options = options;
    if (main_options.traceReserveCycles == 0) {
        // Reserve the actual cycle horizon (plus one iteration of
        // slack for the measurement-boundary overshoot) so long
        // fallback runs never reallocate mid-trace.
        main_options.traceReserveCycles =
            min_cycles + static_cast<std::uint64_t>(cycles_per_iter) +
            64;
    }
    RunState state(_cfg, _init, scratch, main_options.steadyState);
    state.run(body, need, warmup, main_options, out);
}

void
materializeTrace(SimResult& sim)
{
    if (!sim.tiling.tiled())
        return;
    const std::uint64_t n =
        sim.tiling.clippedVirtualCycles(maxTraceCycles);
    std::vector<CycleStats> full;
    full.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t v = 0; v < n; ++v)
        full.push_back(sim.trace[static_cast<std::size_t>(
            sim.tiling.storedIndex(v))]);
    sim.trace = std::move(full);
    sim.tiling = util::TraceTiling::untiled(sim.trace.size());
}

void
captureActivitySignals(const SimResult& sim, double freq_ghz,
                       signal::SignalProbe& probe)
{
    if (freq_ghz <= 0.0)
        fatal("captureActivitySignals needs a positive core frequency");
    const double clock_hz = freq_ghz * 1e9;
    const std::uint32_t interval = probe.config().ipcIntervalCycles;

    std::vector<double> interval_ipc;
    interval_ipc.reserve(sim.trace.size() / interval + 1);
    std::uint64_t fetched = 0;
    std::uint32_t in_interval = 0;
    for (std::size_t cycle = 0; cycle < sim.trace.size(); ++cycle) {
        const CycleStats& cs = sim.trace[cycle];
        fetched += cs.fetched;
        if (++in_interval == interval) {
            interval_ipc.push_back(static_cast<double>(fetched) /
                                   interval);
            fetched = 0;
            in_interval = 0;
        }
        const double time_s = static_cast<double>(cycle) / clock_hz;
        if (cs.cacheMisses > 0)
            probe.mark("l1_miss", cycle, time_s);
        if (cs.l2Misses > 0)
            probe.mark("l2_miss", cycle, time_s);
        if (cs.mispredicts > 0)
            probe.mark("mispredict", cycle, time_s);
    }
    // A trailing partial interval is still a valid average.
    if (in_interval > 0)
        interval_ipc.push_back(static_cast<double>(fetched) /
                               in_interval);
    if (!interval_ipc.empty())
        probe.recordWaveform("interval_ipc", "instr/cycle",
                             clock_hz / interval, interval_ipc);
}

} // namespace arch
} // namespace gest
