#include "arch/simulator.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <optional>

#include "signal/signal_probe.hh"
#include "util/logging.hh"

namespace gest {
namespace arch {

using isa::InstrClass;
using isa::Opcode;

namespace {

/** The implicit loop-closing backward branch the template provides. */
MicroOp
loopBranchOp()
{
    MicroOp mo;
    mo.op = Opcode::BranchCond;
    mo.cls = InstrClass::Branch;
    mo.isBranch = true;
    return mo;
}

/** Hamming distance between old and new values. */
inline std::uint32_t
toggles(std::uint64_t before, std::uint64_t after)
{
    return static_cast<std::uint32_t>(std::popcount(before ^ after));
}

} // namespace

/**
 * All mutable execution state for one run. Kept separate from the
 * LoopSimulator so run() is reentrant and const-correct.
 */
class RunState
{
  public:
    RunState(const CpuConfig& cfg, const InitState& init)
        : _cfg(cfg), _init(init), _cache(cfg.l1d),
          _memory(init.bufferBytes, init.memPattern)
    {
        if (cfg.hasL2) {
            _l2.emplace(cfg.l2);
            _mshrFreeAt.assign(
                static_cast<std::size_t>(std::max(1, cfg.mshrs)), 0);
        }
        for (std::uint64_t& v : _intRegs)
            v = init.intPattern;
        for (auto& lanes : _vecRegs)
            lanes = {init.vecPattern, init.vecPattern};
        // The base register holds a virtual buffer address. Any aligned
        // value works; what matters is that address arithmetic lands in
        // the modelled buffer.
        _intRegs[init.baseRegister] = bufferBase;
        for (std::uint64_t& ready : _regReadyAt)
            ready = 0;
        for (int fu = 0; fu < numFuTypes; ++fu)
            _fuFreeAt[fu].assign(
                std::max(0, cfg.fuCount[static_cast<std::size_t>(fu)]), 0);
    }

    SimResult
    run(const std::vector<MicroOp>& body, std::uint64_t iterations,
        std::uint64_t warmup_iterations)
    {
        if (body.empty())
            fatal("cannot simulate an empty loop body");
        if (warmup_iterations >= iterations)
            warmup_iterations = iterations > 1 ? iterations - 1 : 0;

        const MicroOp loop_branch = loopBranchOp();
        const std::size_t ops_per_iter = body.size() + 1;
        const std::uint64_t total_ops = ops_per_iter * iterations;
        const std::uint64_t warmup_ops = ops_per_iter * warmup_iterations;

        SimResult result;
        result.iterations = iterations;
        result.trace.reserve(4096);

        std::uint64_t fetch_seq = 0;
        std::uint64_t issued_total = 0;
        std::uint64_t cycle = 0;
        std::uint64_t fetch_resume_at = 0;
        std::uint64_t measure_start_cycle = 0;
        std::uint64_t window_occ_sum = 0;
        std::uint64_t measured_issued = 0;
        bool measuring = warmup_ops == 0;
        int cond_branch_count = 0;

        std::vector<Slot> window;
        window.reserve(static_cast<std::size_t>(_cfg.windowSize));

        // Forward-progress bound: DRAM-bound loops with a single MSHR
        // can legitimately take ~missLatency cycles per memory op.
        const std::uint64_t cycle_limit = total_ops * 1024 + 8192;

        while (issued_total < total_ops) {
            if (cycle > cycle_limit)
                panic("simulator made no forward progress (cpu '",
                      _cfg.name, "')");

            // Measurement starts at the first cycle boundary after all
            // warmup iterations have issued.
            if (!measuring && issued_total >= warmup_ops) {
                measuring = true;
                measure_start_cycle = cycle;
            }

            CycleStats stats;
            stats.windowOccupancy =
                static_cast<std::uint8_t>(std::min<std::size_t>(
                    window.size(), 255));
            if (measuring)
                window_occ_sum += window.size();

            // ---- Fetch ----
            if (cycle >= fetch_resume_at) {
                int fetched = 0;
                while (fetched < _cfg.fetchWidth &&
                       window.size() <
                           static_cast<std::size_t>(_cfg.windowSize) &&
                       fetch_seq < total_ops) {
                    const std::size_t pos = fetch_seq % ops_per_iter;
                    const MicroOp* mo =
                        pos < body.size() ? &body[pos] : &loop_branch;
                    const bool is_loop_branch = pos == body.size();
                    // Functional execution happens here, in program
                    // order, so register values, memory contents and
                    // therefore addresses are sequentially consistent
                    // regardless of the out-of-order issue schedule.
                    window.push_back(executeAtFetch(*mo));
                    ++fetch_seq;
                    ++fetched;
                    if (mo->isBranch) {
                        // Taken branches redirect fetch. The loop branch
                        // and unconditional forward branches are
                        // predicted; conditional branches may
                        // deterministically mispredict.
                        std::uint64_t bubble =
                            static_cast<std::uint64_t>(
                                _cfg.takenBranchBubble);
                        if (!is_loop_branch &&
                            mo->op == Opcode::BranchCond &&
                            _cfg.mispredictEveryN > 0) {
                            if (++cond_branch_count >=
                                _cfg.mispredictEveryN) {
                                cond_branch_count = 0;
                                bubble = static_cast<std::uint64_t>(
                                    _cfg.mispredictPenalty);
                                ++stats.mispredicts;
                            }
                        }
                        // bubble == 0 models branch folding: the BTAC
                        // redirects fetch within the same cycle and the
                        // fetch group continues (Cortex-A7 style).
                        if (bubble > 0) {
                            fetch_resume_at = cycle + 1 + bubble;
                            break;
                        }
                    }
                }
                stats.fetched = static_cast<std::uint8_t>(fetched);
            }

            // ---- Issue ----
            int issued_this_cycle = 0;
            std::size_t kept = 0;
            bool stop_scan = false;
            for (std::size_t i = 0; i < window.size(); ++i) {
                const Slot& slot = window[i];
                bool issued = false;
                if (!stop_scan &&
                    issued_this_cycle < _cfg.issueWidth) {
                    issued = tryIssue(slot, cycle, stats);
                    if (issued) {
                        ++issued_this_cycle;
                        ++issued_total;
                    } else if (!_cfg.outOfOrder) {
                        stop_scan = true;
                    }
                } else if (!_cfg.outOfOrder) {
                    stop_scan = true;
                }
                if (!issued)
                    window[kept++] = window[i];
            }
            window.resize(kept);

            // ---- Record ----
            if (measuring) {
                if (result.trace.size() < maxTraceCycles)
                    result.trace.push_back(stats);
                for (int cls = 0; cls < isa::numInstrClasses; ++cls)
                    result.classCounts[static_cast<std::size_t>(cls)] +=
                        stats.issued[static_cast<std::size_t>(cls)];
                result.totalToggleBits += stats.toggleBits;
                result.mispredicts += stats.mispredicts;
                measured_issued +=
                    static_cast<std::uint64_t>(stats.totalIssued());
            }

            ++cycle;
        }

        const std::uint64_t measured_cycles =
            cycle - measure_start_cycle;
        result.cycles = measured_cycles > 0 ? measured_cycles : 1;
        // Exactly what the measured cycles issued: trace, class counts
        // and instruction count always agree.
        result.instructions = measured_issued;
        result.ipc = static_cast<double>(result.instructions) /
                     static_cast<double>(result.cycles);
        // Cache counters cover the whole run including warmup, like a
        // real hardware event counter read around the binary execution.
        result.cacheAccesses = _cache.accesses();
        result.cacheMisses = _cache.misses();
        result.l2Accesses = _l2 ? _l2->accesses() : 0;
        result.l2Misses = _l2 ? _l2->misses() : 0;
        result.avgWindowOccupancy =
            static_cast<double>(window_occ_sum) /
            static_cast<double>(result.cycles);
        return result;
    }

  private:
    static constexpr std::uint64_t bufferBase = 0x10000;
    static constexpr std::size_t maxTraceCycles = 1u << 20;

    const CpuConfig& _cfg;
    const InitState& _init;
    Cache _cache;
    std::optional<Cache> _l2;
    std::vector<std::uint64_t> _mshrFreeAt;
    std::vector<std::uint8_t> _memory;

    std::array<std::uint64_t, 32> _intRegs{};
    std::array<std::array<std::uint64_t, 2>, 32> _vecRegs{};
    std::array<std::uint64_t, numUnifiedRegs> _regReadyAt{};
    std::array<std::vector<std::uint64_t>, numFuTypes> _fuFreeAt;

    std::uint64_t
    readLane(int unified, int lane) const
    {
        if (isVecReg(unified))
            return _vecRegs[static_cast<std::size_t>(unified - 32)]
                           [static_cast<std::size_t>(lane)];
        return _intRegs[static_cast<std::size_t>(unified)];
    }

    std::uint32_t
    writeLane(int unified, int lane, std::uint64_t value)
    {
        std::uint64_t* slot;
        if (isVecReg(unified))
            slot = &_vecRegs[static_cast<std::size_t>(unified - 32)]
                            [static_cast<std::size_t>(lane)];
        else
            slot = &_intRegs[static_cast<std::size_t>(unified)];
        const std::uint32_t flips = toggles(*slot, value);
        *slot = value;
        return flips;
    }

    /** Map a virtual address into the modelled buffer. */
    std::size_t
    bufferOffset(std::uint64_t address, int bytes) const
    {
        std::uint64_t off = (address - bufferBase) % _memory.size();
        off &= ~static_cast<std::uint64_t>(bytes - 1);
        if (off + static_cast<std::uint64_t>(bytes) > _memory.size())
            off = 0;
        return static_cast<std::size_t>(off);
    }

    std::uint64_t
    loadWord(std::size_t offset) const
    {
        std::uint64_t v;
        std::memcpy(&v, &_memory[offset], sizeof(v));
        return v;
    }

    std::uint32_t
    storeWord(std::size_t offset, std::uint64_t value)
    {
        const std::uint32_t flips = toggles(loadWord(offset), value);
        std::memcpy(&_memory[offset], &value, sizeof(value));
        return flips;
    }

    /** One window entry: a fetched micro-op with its architectural
     *  effects (address, datapath toggles) precomputed in program
     *  order. */
    struct Slot
    {
        const MicroOp* mo;
        std::uint64_t address;
        std::uint32_t toggles;
    };

    /**
     * Execute one micro-op architecturally at fetch time (program
     * order): update registers/memory, compute its access address and
     * datapath toggles. Timing is not affected here.
     */
    Slot
    executeAtFetch(const MicroOp& mo)
    {
        Slot slot{&mo, 0, 0};
        if (mo.isLoad || mo.isStore) {
            const int base = mo.src[mo.numSrc - 1];
            slot.address =
                readLane(base, 0) + static_cast<std::uint64_t>(mo.imm);
            const std::size_t offset =
                bufferOffset(slot.address, mo.accessBytes);
            if (mo.isLoad) {
                for (int d = 0; d < mo.numDst; ++d) {
                    const std::size_t word_off =
                        offset + static_cast<std::size_t>(d) * 8;
                    if (isVecReg(mo.dst[d]) && mo.accessBytes == 16) {
                        slot.toggles += writeLane(mo.dst[d], 0,
                                                  loadWord(offset));
                        slot.toggles += writeLane(mo.dst[d], 1,
                                                  loadWord(offset + 8));
                    } else {
                        slot.toggles +=
                            writeLane(mo.dst[d], 0,
                                      loadWord(word_off %
                                               _memory.size()));
                    }
                }
            } else {
                // Stores: data sources precede the base register.
                for (int s = 0; s < mo.numSrc - 1; ++s) {
                    const int data = mo.src[s];
                    if (isVecReg(data) && mo.accessBytes == 16) {
                        slot.toggles +=
                            storeWord(offset, readLane(data, 0));
                        slot.toggles +=
                            storeWord(offset + 8, readLane(data, 1));
                    } else {
                        const std::size_t word_off =
                            (offset + static_cast<std::size_t>(s) * 8) %
                            (_memory.size() - 8);
                        slot.toggles +=
                            storeWord(word_off, readLane(data, 0));
                    }
                }
            }
        } else {
            slot.toggles = execute(mo);
        }
        return slot;
    }

    /**
     * Try to issue one fetched micro-op at @p cycle; on success charge
     * its FU, the cache hierarchy and the register readiness.
     */
    bool
    tryIssue(const Slot& slot, std::uint64_t cycle, CycleStats& stats)
    {
        const MicroOp& mo = *slot.mo;

        // Source readiness.
        for (int i = 0; i < mo.numSrc; ++i) {
            if (_regReadyAt[static_cast<std::size_t>(mo.src[i])] > cycle)
                return false;
        }

        // Functional unit availability.
        const OpTiming& timing = _cfg.opTiming(mo.op);
        auto& units = _fuFreeAt[static_cast<std::size_t>(timing.fu)];
        std::uint64_t* unit = nullptr;
        for (std::uint64_t& free_at : units) {
            if (free_at <= cycle) {
                unit = &free_at;
                break;
            }
        }
        if (!unit)
            return false;

        int latency = timing.latency;

        // Memory access: consult the cache hierarchy with the address
        // computed in program order at fetch.
        if (mo.isLoad || mo.isStore) {
            const std::uint64_t address = slot.address;

            // A request that will go to DRAM needs a free MSHR; without
            // one the op cannot issue this cycle (bounded memory-level
            // parallelism).
            std::uint64_t* mshr = nullptr;
            if (_l2 && !_cache.probe(address) && !_l2->probe(address)) {
                for (std::uint64_t& free_at : _mshrFreeAt) {
                    if (free_at <= cycle) {
                        mshr = &free_at;
                        break;
                    }
                }
                if (!mshr)
                    return false;
            }

            const bool hit = _cache.access(address);
            if (!hit) {
                ++stats.cacheMisses;
                if (_l2) {
                    const bool l2_hit = _l2->access(address);
                    if (!l2_hit) {
                        ++stats.l2Misses;
                        if (mshr)
                            *mshr = cycle + static_cast<std::uint64_t>(
                                                _cfg.l2.missLatency);
                    }
                    latency = l2_hit ? _cfg.l2.hitLatency
                                     : _cfg.l2.missLatency;
                } else {
                    latency = _cfg.l1d.missLatency;
                }
            } else if (mo.isLoad) {
                latency = _cfg.l1d.hitLatency;
            }
        }

        // Charge the functional unit for its issue interval. Memory ops
        // that miss keep the LSU busy only for the issue slot; the line
        // fill proceeds in the background (non-blocking cache).
        *unit = cycle + static_cast<std::uint64_t>(timing.busyCycles);

        // Destination readiness.
        for (int d = 0; d < mo.numDst; ++d)
            _regReadyAt[static_cast<std::size_t>(mo.dst[d])] =
                cycle + static_cast<std::uint64_t>(latency);

        ++stats.issued[static_cast<std::size_t>(mo.cls)];
        stats.toggleBits += slot.toggles;
        return true;
    }

    /** Execute a non-memory micro-op; @return result-bit toggles. */
    std::uint32_t
    execute(const MicroOp& mo)
    {
        if (mo.numDst == 0)
            return mo.op == Opcode::Cmp ? 4 : 0;

        const int dst = mo.dst[0];
        const int lanes = isVecReg(dst) ? 2 : 1;

        auto src_or_imm = [&](int index, int lane) -> std::uint64_t {
            if (index < mo.numSrc)
                return readLane(mo.src[index], lane);
            return static_cast<std::uint64_t>(mo.imm);
        };

        std::uint32_t flips = 0;
        for (int lane = 0; lane < lanes; ++lane) {
            const std::uint64_t a = src_or_imm(0, lane);
            const std::uint64_t b = src_or_imm(1, lane);
            const std::uint64_t c = src_or_imm(2, lane);
            std::uint64_t value = 0;
            switch (mo.op) {
              case Opcode::Add: value = a + b; break;
              case Opcode::AddWrap:
                // Pointer advance bounded to the data buffer (the real
                // template masks the pointer the same way).
                value = bufferBase +
                        ((a + b - bufferBase) &
                         (static_cast<std::uint64_t>(_memory.size()) -
                          1));
                break;
              case Opcode::Sub: value = a - b; break;
              case Opcode::And: value = a & b; break;
              case Opcode::Orr: value = a | b; break;
              case Opcode::Eor: value = a ^ b; break;
              case Opcode::Lsl:
                value = a << (mo.hasImm ? (mo.imm & 63) : (b & 63));
                break;
              case Opcode::Lsr:
                value = a >> (mo.hasImm ? (mo.imm & 63) : (b & 63));
                break;
              case Opcode::Mov:
                value = mo.numSrc > 0 ? a
                                      : static_cast<std::uint64_t>(mo.imm);
                break;
              case Opcode::Mul: value = a * b; break;
              case Opcode::MAdd: value = a * b + c; break;
              case Opcode::SMull:
                value = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(
                        static_cast<std::int32_t>(a)) *
                    static_cast<std::int64_t>(
                        static_cast<std::int32_t>(b)));
                break;
              case Opcode::UDiv: value = b ? a / b : 0; break;
              // FP executed with integer-proxy semantics: the goal is a
              // realistic amount of datapath bit switching, not numerics.
              case Opcode::FAdd:
              case Opcode::VAdd: value = a + b; break;
              case Opcode::FMul:
              case Opcode::VMul: value = a * b; break;
              case Opcode::FDiv: value = b ? a / (b | 1) : 0; break;
              case Opcode::FMAdd:
              case Opcode::VFma: value = a * b + c; break;
              case Opcode::FSqrt: value = a >> 32; break;
              case Opcode::VAnd: value = a & b; break;
              default:
                return 0;
            }
            flips += writeLane(dst, lane, value);
        }
        return flips;
    }
};

LoopSimulator::LoopSimulator(const CpuConfig& cfg, const InitState& init)
    : _cfg(cfg), _init(init)
{
    _cfg.validate();
    if (init.bufferBytes < 512 ||
        (init.bufferBytes & (init.bufferBytes - 1)) != 0)
        fatal("buffer size must be a power of two >= 512, got ",
              init.bufferBytes);
    if (init.baseRegister < 0 || init.baseRegister >= 32)
        fatal("base register index out of range: ", init.baseRegister);
}

SimResult
LoopSimulator::run(const std::vector<MicroOp>& body,
                   std::uint64_t iterations,
                   std::uint64_t warmup_iterations)
{
    RunState state(_cfg, _init);
    return state.run(body, iterations, warmup_iterations);
}

SimResult
LoopSimulator::runForCycles(const std::vector<MicroOp>& body,
                            std::uint64_t min_cycles,
                            std::uint64_t max_instructions)
{
    if (body.empty())
        fatal("cannot simulate an empty loop body");

    const std::uint64_t warmup = 2;
    const std::uint64_t probe_iters = warmup + 8;
    const SimResult probe = run(body, probe_iters, warmup);

    const double cycles_per_iter =
        static_cast<double>(probe.cycles) /
        static_cast<double>(probe_iters - warmup);
    std::uint64_t need = warmup + 1 +
        static_cast<std::uint64_t>(
            static_cast<double>(min_cycles) / cycles_per_iter);

    const std::uint64_t iter_cap =
        std::max<std::uint64_t>(warmup + 1,
                                max_instructions / (body.size() + 1));
    need = std::min(need, iter_cap);
    return run(body, need, warmup);
}

void
captureActivitySignals(const SimResult& sim, double freq_ghz,
                       signal::SignalProbe& probe)
{
    if (freq_ghz <= 0.0)
        fatal("captureActivitySignals needs a positive core frequency");
    const double clock_hz = freq_ghz * 1e9;
    const std::uint32_t interval = probe.config().ipcIntervalCycles;

    std::vector<double> interval_ipc;
    interval_ipc.reserve(sim.trace.size() / interval + 1);
    std::uint64_t fetched = 0;
    std::uint32_t in_interval = 0;
    for (std::size_t cycle = 0; cycle < sim.trace.size(); ++cycle) {
        const CycleStats& cs = sim.trace[cycle];
        fetched += cs.fetched;
        if (++in_interval == interval) {
            interval_ipc.push_back(static_cast<double>(fetched) /
                                   interval);
            fetched = 0;
            in_interval = 0;
        }
        const double time_s = static_cast<double>(cycle) / clock_hz;
        if (cs.cacheMisses > 0)
            probe.mark("l1_miss", cycle, time_s);
        if (cs.l2Misses > 0)
            probe.mark("l2_miss", cycle, time_s);
        if (cs.mispredicts > 0)
            probe.mark("mispredict", cycle, time_s);
    }
    // A trailing partial interval is still a valid average.
    if (in_interval > 0)
        interval_ipc.push_back(static_cast<double>(fetched) /
                               in_interval);
    if (!interval_ipc.empty())
        probe.recordWaveform("interval_ipc", "instr/cycle",
                             clock_hz / interval, interval_ipc);
}

} // namespace arch
} // namespace gest
