/**
 * @file
 * The loop simulator: a generic superscalar timing model with functional
 * execution for switching-activity estimation.
 *
 * This is the substitute for the paper's real silicon. One model covers
 * both in-order (Cortex-A7) and out-of-order (Cortex-A15, X-Gene2,
 * Athlon II) cores through the CpuConfig parameters:
 *
 *  - Fetch: up to fetchWidth micro-ops per cycle enter a scheduler window,
 *    stalling on taken-branch redirects.
 *  - Issue: up to issueWidth ready micro-ops per cycle, oldest first. An
 *    in-order core stops scanning at the first stalled micro-op; an
 *    out-of-order core skips it.
 *  - Functional units: pipelined units accept one op per cycle per unit;
 *    unpipelined units (dividers) stay busy for the full latency.
 *  - Memory: addresses are computed from register values; an L1 cache
 *    model decides hit/miss latency.
 *  - Functional execution: register and memory values are computed so the
 *    power model can see data-dependent bit switching (the reason the
 *    paper initializes registers with checkerboard patterns).
 *
 * Functional execution happens in program order at fetch time, so
 * register values, memory contents and access addresses are always
 * sequentially consistent regardless of the issue schedule; timing
 * happens at issue.
 *
 * Known simplifications (documented in docs/models.md):
 * conditional-branch mispredictions are charged as fetch-stall penalties
 * without squashing, there is no store-to-load forwarding latency model
 * or prefetcher, and FP values are executed with integer-proxy semantics
 * (sufficient for toggle estimation, not for numerics).
 */

#ifndef GEST_ARCH_SIMULATOR_HH
#define GEST_ARCH_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "arch/cache.hh"
#include "arch/cpu_config.hh"
#include "arch/microop.hh"
#include "arch/trace.hh"

namespace gest {

namespace signal {
class SignalProbe;
} // namespace signal

namespace arch {

/** Initial state of the architectural registers and memory. */
struct InitState
{
    /** Value loaded into every integer compute register. */
    std::uint64_t intPattern = 0xaaaaaaaaaaaaaaaaULL;

    /** Value loaded into every vector register lane. */
    std::uint64_t vecPattern = 0xaaaaaaaaaaaaaaaaULL;

    /** Byte pattern the data buffer is filled with. */
    std::uint8_t memPattern = 0x5a;

    /** Size of the data buffer the base register points into. */
    std::uint32_t bufferBytes = 4096;

    /** Integer register holding the buffer base address. */
    int baseRegister = 10;
};

/**
 * Simulates a loop body on one core configuration.
 */
class LoopSimulator
{
  public:
    LoopSimulator(const CpuConfig& cfg, const InitState& init);

    /**
     * Simulate @p body executed for @p iterations iterations (plus the
     * loop-closing backward branch each iteration, which the template
     * provides on real hardware).
     *
     * @param body decoded loop body; must not be empty
     * @param iterations loop iterations to run
     * @param warmup_iterations iterations excluded from the trace/stats
     */
    SimResult run(const std::vector<MicroOp>& body,
                  std::uint64_t iterations,
                  std::uint64_t warmup_iterations = 2);

    /**
     * Simulate enough iterations that the measured region covers at least
     * @p min_cycles cycles (bounded by @p max_instructions).
     */
    SimResult runForCycles(const std::vector<MicroOp>& body,
                           std::uint64_t min_cycles,
                           std::uint64_t max_instructions = 2'000'000);

    /** The configuration in use. */
    const CpuConfig& config() const { return _cfg; }

  private:
    CpuConfig _cfg;
    InitState _init;
};

/**
 * Record the timing-simulator signals of a finished run into @p probe:
 * the `interval_ipc` waveform (instructions fetched per cycle,
 * averaged over probe.config().ipcIntervalCycles-cycle intervals —
 * what `perf stat -I` shows on real hardware) and one event mark per
 * cycle with L1-miss, L2-miss or mispredict activity, on the core
 * clock time base at @p freq_ghz.
 */
void captureActivitySignals(const SimResult& sim, double freq_ghz,
                            signal::SignalProbe& probe);

} // namespace arch
} // namespace gest

#endif // GEST_ARCH_SIMULATOR_HH
