/**
 * @file
 * The loop simulator: a generic superscalar timing model with functional
 * execution for switching-activity estimation.
 *
 * This is the substitute for the paper's real silicon. One model covers
 * both in-order (Cortex-A7) and out-of-order (Cortex-A15, X-Gene2,
 * Athlon II) cores through the CpuConfig parameters:
 *
 *  - Fetch: up to fetchWidth micro-ops per cycle enter a scheduler window,
 *    stalling on taken-branch redirects.
 *  - Issue: up to issueWidth ready micro-ops per cycle, oldest first. An
 *    in-order core stops scanning at the first stalled micro-op; an
 *    out-of-order core skips it.
 *  - Functional units: pipelined units accept one op per cycle per unit;
 *    unpipelined units (dividers) stay busy for the full latency.
 *  - Memory: addresses are computed from register values; an L1 cache
 *    model decides hit/miss latency.
 *  - Functional execution: register and memory values are computed so the
 *    power model can see data-dependent bit switching (the reason the
 *    paper initializes registers with checkerboard patterns).
 *
 * Functional execution happens in program order at fetch time, so
 * register values, memory contents and access addresses are always
 * sequentially consistent regardless of the issue schedule; timing
 * happens at issue.
 *
 * Known simplifications (documented in docs/models.md):
 * conditional-branch mispredictions are charged as fetch-stall penalties
 * without squashing, there is no store-to-load forwarding latency model
 * or prefetcher, and FP values are executed with integer-proxy semantics
 * (sufficient for toggle estimation, not for numerics).
 */

#ifndef GEST_ARCH_SIMULATOR_HH
#define GEST_ARCH_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "arch/cache.hh"
#include "arch/cpu_config.hh"
#include "arch/fu.hh"
#include "arch/microop.hh"
#include "arch/trace.hh"

namespace gest {

namespace signal {
class SignalProbe;
} // namespace signal

namespace arch {

/** Initial state of the architectural registers and memory. */
struct InitState
{
    /** Value loaded into every integer compute register. */
    std::uint64_t intPattern = 0xaaaaaaaaaaaaaaaaULL;

    /** Value loaded into every vector register lane. */
    std::uint64_t vecPattern = 0xaaaaaaaaaaaaaaaaULL;

    /** Byte pattern the data buffer is filled with. */
    std::uint8_t memPattern = 0x5a;

    /** Size of the data buffer the base register points into. */
    std::uint32_t bufferBytes = 4096;

    /** Integer register holding the buffer base address. */
    int baseRegister = 10;
};

/**
 * One scheduler-window entry: a fetched micro-op with its architectural
 * effects (address, datapath toggles) precomputed in program order.
 */
struct WindowSlot
{
    const MicroOp* mo;
    std::uint64_t address;
    std::uint32_t toggles;
};

/** Per-run options for the simulator. */
struct RunOptions
{
    /**
     * Try to detect exact recurrence of the architectural state at
     * loop-iteration boundaries; on a hit, stop simulating and
     * extrapolate the remaining cycles by integer tiling. The results
     * are bit-identical to the full simulation (the extrapolation is
     * exact, not approximate).
     */
    bool steadyState = true;

    /**
     * Trace rows to reserve up front (0 = a small default). Callers
     * that know the cycle horizon pass it here to avoid reallocation
     * churn on long runs.
     */
    std::uint64_t traceReserveCycles = 0;
};

/**
 * Reusable storage for one simulation worker. Holding one SimScratch
 * per evaluation thread makes the GA hot loop allocation-free after
 * warm-up: memory image, cache models, scheduler window and the
 * steady-state detector's boundary records all keep their capacity
 * across runs. Contents are unspecified between runs.
 */
struct SimScratch
{
    std::vector<std::uint8_t> memory;
    std::optional<Cache> l1;
    std::optional<Cache> l2;
    std::vector<std::uint64_t> mshrFreeAt;
    std::array<std::vector<std::uint64_t>, numFuTypes> fuFreeAt;
    std::vector<WindowSlot> window;

    /**
     * One sampled loop-iteration boundary of the steady detector:
     * just the stage-1 trigger digest and the iteration index.
     */
    struct Sample
    {
        std::uint64_t digest = 0;
        std::uint64_t iter = 0;
    };
    std::vector<Sample> samples;

    /**
     * Counter snapshot at the detector's armed anchor boundary, for
     * exact per-period delta extraction once the recurrence is
     * verified.
     */
    struct Boundary
    {
        std::uint64_t cycle = 0;
        std::uint64_t fetchSeq = 0;
        std::uint64_t digest = 0;
        std::uint64_t measuredIssued = 0;
        std::uint64_t windowOccSum = 0;
        std::uint64_t toggleBits = 0;
        std::uint64_t mispredicts = 0;
        std::uint64_t cacheAccesses = 0;
        std::uint64_t cacheMisses = 0;
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Misses = 0;
        std::array<std::uint64_t, isa::numInstrClasses> classCounts{};
    };

    /**
     * Exact canonical state (registers, relative timestamps,
     * scheduler window, memory digest, cache recency orders)
     * captured when the detector arms an anchor, plus the scratch
     * buffer the candidate's state is serialized into at
     * verification time. Serializing this is the expensive part of
     * the detector, so it happens only at those budgeted events,
     * never per boundary.
     */
    std::vector<std::uint64_t> anchorState;
    std::vector<std::uint64_t> stateTmp;
};

/**
 * Simulates a loop body on one core configuration.
 */
class LoopSimulator
{
  public:
    LoopSimulator(const CpuConfig& cfg, const InitState& init);

    /**
     * Simulate @p body executed for @p iterations iterations (plus the
     * loop-closing backward branch each iteration, which the template
     * provides on real hardware). Always a full simulation: the trace
     * stores every measured cycle.
     *
     * @param body decoded loop body; must not be empty
     * @param iterations loop iterations to run
     * @param warmup_iterations iterations excluded from the trace/stats
     */
    SimResult run(const std::vector<MicroOp>& body,
                  std::uint64_t iterations,
                  std::uint64_t warmup_iterations = 2);

    /**
     * Simulate enough iterations that the measured region covers at least
     * @p min_cycles cycles (bounded by @p max_instructions). Always a
     * full simulation; the steady-state fast path is reached through
     * runForCyclesInto().
     */
    SimResult runForCycles(const std::vector<MicroOp>& body,
                           std::uint64_t min_cycles,
                           std::uint64_t max_instructions = 2'000'000);

    /**
     * runForCycles() into caller-owned storage: @p out is reset but
     * keeps its trace capacity, and all working state lives in
     * @p scratch, so repeated evaluations allocate nothing after
     * warm-up. With options.steadyState the periodic-recurrence
     * detector may cut the run short and tile the counters to the
     * full horizon; the result is bit-identical to the full run
     * except that out.trace then stores only the tiled layout
     * described by out.tiling.
     */
    void runForCyclesInto(const std::vector<MicroOp>& body,
                          std::uint64_t min_cycles,
                          std::uint64_t max_instructions,
                          const RunOptions& options, SimScratch& scratch,
                          SimResult& out);

    /** The configuration in use. */
    const CpuConfig& config() const { return _cfg; }

  private:
    CpuConfig _cfg;
    InitState _init;
};

/**
 * Expand a tiled trace in place to the full virtual per-cycle trace
 * (clipped at maxTraceCycles, exactly like a full simulation would
 * have stored it). No-op on untiled results. Used before attaching a
 * SignalProbe so capture sees the same rows as a full simulation.
 */
void materializeTrace(SimResult& sim);

/**
 * Record the timing-simulator signals of a finished run into @p probe:
 * the `interval_ipc` waveform (instructions fetched per cycle,
 * averaged over probe.config().ipcIntervalCycles-cycle intervals —
 * what `perf stat -I` shows on real hardware) and one event mark per
 * cycle with L1-miss, L2-miss or mispredict activity, on the core
 * clock time base at @p freq_ghz.
 */
void captureActivitySignals(const SimResult& sim, double freq_ghz,
                            signal::SignalProbe& probe);

} // namespace arch
} // namespace gest

#endif // GEST_ARCH_SIMULATOR_HH
