/**
 * @file
 * A small set-associative L1 data cache with LRU replacement.
 *
 * The generated viruses are expected to be L1-resident (the paper observes
 * "extremely high L1 hit rates" for power viruses), but the cache is
 * modelled fully so stride-heavy operand definitions can be used to build
 * cache-miss stressors (the LLC/DRAM extension §VII sketches).
 */

#ifndef GEST_ARCH_CACHE_HH
#define GEST_ARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "arch/cpu_config.hh"

namespace gest {
namespace arch {

/** Set-associative data cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig& cfg);

    /**
     * Access the line containing @p address.
     * @return true on hit; on miss the line is filled.
     */
    bool access(std::uint64_t address);

    /**
     * Check whether @p address would hit, without touching cache state
     * or counters (used for MSHR admission before committing an
     * access).
     */
    bool probe(std::uint64_t address) const;

    /** Reset to the all-invalid state. */
    void flush();

    /**
     * Return to the exact as-constructed state: all lines invalid,
     * counters and the internal LRU clock zeroed. Lets a scratch arena
     * reuse one Cache across evaluations with behavior identical to a
     * freshly constructed instance.
     */
    void reset();

    /**
     * Append a canonical description of the replacement-relevant state
     * to @p out: per set, the number of invalid ways followed by the
     * valid tags in least-recently-used-first order. Two caches with
     * equal canonical state behave identically on every future access
     * sequence (which way holds which tag and the absolute LRU clock
     * values do not matter, only the per-set recency ordering).
     */
    void appendCanonicalState(std::vector<std::uint64_t>& out) const;

    /** Accesses observed so far. */
    std::uint64_t accesses() const { return _accesses; }

    /** Misses observed so far. */
    std::uint64_t misses() const { return _misses; }

    /** Hit ratio over all accesses (1.0 when no accesses yet). */
    double hitRate() const;

    /** Geometry this cache was built with. */
    const CacheConfig& config() const { return _cfg; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig _cfg;
    std::vector<Line> _lines;      ///< sets * ways, row-major by set
    std::uint64_t _accesses = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _useCounter = 0;
    int _offsetBits = 0;
    int _indexMask = 0;
};

} // namespace arch
} // namespace gest

#endif // GEST_ARCH_CACHE_HH
