#include "arch/cpu_config.hh"

#include "util/logging.hh"

namespace gest {
namespace arch {

using isa::Opcode;

void
CpuConfig::applyDefaultTimings(int alu_lat, int mul_lat, int div_lat,
                               int fp_lat, int fma_lat, int fdiv_lat)
{
    // Short integer.
    for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Orr,
                      Opcode::Eor, Opcode::Lsl, Opcode::Lsr, Opcode::Mov,
                      Opcode::Cmp, Opcode::AddWrap})
        setTiming(op, FuType::IntAlu, alu_lat);

    // Long integer.
    setTiming(Opcode::Mul, FuType::IntMul, mul_lat);
    setTiming(Opcode::MAdd, FuType::IntMul, mul_lat + 1);
    setTiming(Opcode::SMull, FuType::IntMul, mul_lat);
    setTiming(Opcode::UDiv, FuType::IntDiv, div_lat, false);

    // FP / SIMD.
    setTiming(Opcode::FAdd, FuType::FpSimd, fp_lat);
    setTiming(Opcode::FMul, FuType::FpSimd, fp_lat);
    setTiming(Opcode::FDiv, FuType::FpSimd, fdiv_lat, false);
    setTiming(Opcode::FMAdd, FuType::FpSimd, fma_lat);
    setTiming(Opcode::FSqrt, FuType::FpSimd, fdiv_lat, false);
    setTiming(Opcode::VAdd, FuType::FpSimd, fp_lat);
    setTiming(Opcode::VMul, FuType::FpSimd, fp_lat);
    setTiming(Opcode::VFma, FuType::FpSimd, fma_lat);
    setTiming(Opcode::VAnd, FuType::FpSimd, 1);

    // Memory (latency overridden by cache hit/miss; this is the base).
    setTiming(Opcode::Load, FuType::Lsu, l1d.hitLatency);
    setTiming(Opcode::LoadPair, FuType::Lsu, l1d.hitLatency);
    setTiming(Opcode::Store, FuType::Lsu, 1);
    setTiming(Opcode::StorePair, FuType::Lsu, 1);

    // Control.
    setTiming(Opcode::Branch, FuType::Branch, 1);
    setTiming(Opcode::BranchCond, FuType::Branch, 1);
    setTiming(Opcode::Nop, FuType::IntAlu, 1);
}

void
CpuConfig::validate() const
{
    if (fetchWidth < 1 || issueWidth < 1 || windowSize < 1)
        fatal("cpu '", name, "': widths and window must be positive");
    if (freqGHz <= 0.0)
        fatal("cpu '", name, "': frequency must be positive");
    if (l1d.sets < 1 || l1d.ways < 1 || l1d.lineBytes < 8)
        fatal("cpu '", name, "': malformed L1 geometry");
    bool any_fu = false;
    for (int count : fuCount)
        any_fu = any_fu || count > 0;
    if (!any_fu)
        fatal("cpu '", name, "': no functional units");
}

namespace {

int&
fu(CpuConfig& cfg, FuType type)
{
    return cfg.fuCount[static_cast<std::size_t>(type)];
}

} // namespace

CpuConfig
cortexA15Config()
{
    CpuConfig cfg;
    cfg.name = "cortex-a15";
    cfg.outOfOrder = true;
    cfg.fetchWidth = 3;
    cfg.issueWidth = 4;
    cfg.windowSize = 40;
    fu(cfg, FuType::IntAlu) = 2;
    fu(cfg, FuType::IntMul) = 1;
    fu(cfg, FuType::IntDiv) = 1;
    fu(cfg, FuType::FpSimd) = 2;
    fu(cfg, FuType::Lsu) = 1;
    fu(cfg, FuType::Branch) = 1;
    cfg.l1d = {.sets = 128, .ways = 2, .lineBytes = 64, .hitLatency = 4,
               .missLatency = 40};
    cfg.freqGHz = 1.2;
    cfg.takenBranchBubble = 1;
    cfg.mispredictPenalty = 15;
    cfg.applyDefaultTimings(1, 4, 14, 4, 8, 18);
    return cfg;
}

CpuConfig
cortexA7Config()
{
    CpuConfig cfg;
    cfg.name = "cortex-a7";
    cfg.outOfOrder = false;
    cfg.fetchWidth = 2;
    cfg.issueWidth = 2;
    cfg.windowSize = 2;
    fu(cfg, FuType::IntAlu) = 2;
    fu(cfg, FuType::IntMul) = 1;
    fu(cfg, FuType::IntDiv) = 1;
    fu(cfg, FuType::FpSimd) = 1;
    fu(cfg, FuType::Lsu) = 1;
    fu(cfg, FuType::Branch) = 1;
    cfg.l1d = {.sets = 128, .ways = 4, .lineBytes = 64, .hitLatency = 3,
               .missLatency = 50};
    cfg.freqGHz = 1.0;
    // The A7's branch predictor resolves taken branches in fetch; a
    // predicted-taken branch costs no bubble, which is what makes
    // branch-rich loops viable on the little core.
    cfg.takenBranchBubble = 0;
    cfg.mispredictPenalty = 8;
    cfg.applyDefaultTimings(1, 3, 10, 4, 8, 16);
    // The A7 NEON datapath is 64-bit and the VFP-lite pipe is not fully
    // pipelined: 128-bit vector ops and scalar FP ops occupy the single
    // FP unit for multiple cycles.
    cfg.setTiming(Opcode::VAdd, FuType::FpSimd, 4, 2);
    cfg.setTiming(Opcode::VMul, FuType::FpSimd, 4, 2);
    cfg.setTiming(Opcode::VFma, FuType::FpSimd, 8, 4);
    cfg.setTiming(Opcode::VAnd, FuType::FpSimd, 2, 2);
    cfg.setTiming(Opcode::FAdd, FuType::FpSimd, 4, 2);
    cfg.setTiming(Opcode::FMul, FuType::FpSimd, 4, 2);
    cfg.setTiming(Opcode::FMAdd, FuType::FpSimd, 8, 4);
    return cfg;
}

CpuConfig
xgene2Config()
{
    CpuConfig cfg;
    cfg.name = "xgene2";
    cfg.outOfOrder = true;
    cfg.fetchWidth = 4;
    cfg.issueWidth = 4;
    cfg.windowSize = 64;
    fu(cfg, FuType::IntAlu) = 2;
    fu(cfg, FuType::IntMul) = 1;
    fu(cfg, FuType::IntDiv) = 1;
    fu(cfg, FuType::FpSimd) = 2;
    fu(cfg, FuType::Lsu) = 2;
    fu(cfg, FuType::Branch) = 1;
    cfg.l1d = {.sets = 64, .ways = 8, .lineBytes = 64, .hitLatency = 4,
               .missLatency = 80};
    // 256 KiB unified L2 backing the 32 KiB L1.
    cfg.l2 = {.sets = 512, .ways = 8, .lineBytes = 64, .hitLatency = 18,
              .missLatency = 130};
    cfg.hasL2 = true;
    cfg.freqGHz = 2.4;
    cfg.takenBranchBubble = 1;
    cfg.mispredictPenalty = 14;
    cfg.applyDefaultTimings(1, 4, 16, 5, 9, 22);
    return cfg;
}

CpuConfig
athlonX4Config()
{
    CpuConfig cfg;
    cfg.name = "athlon-x4-645";
    cfg.outOfOrder = true;
    cfg.fetchWidth = 3;
    cfg.issueWidth = 3;
    cfg.windowSize = 72;
    fu(cfg, FuType::IntAlu) = 3;
    fu(cfg, FuType::IntMul) = 1;
    fu(cfg, FuType::IntDiv) = 1;
    fu(cfg, FuType::FpSimd) = 2;
    fu(cfg, FuType::Lsu) = 2;
    fu(cfg, FuType::Branch) = 1;
    cfg.l1d = {.sets = 512, .ways = 2, .lineBytes = 64, .hitLatency = 3,
               .missLatency = 45};
    cfg.freqGHz = 3.1;
    cfg.takenBranchBubble = 1;
    cfg.mispredictPenalty = 12;
    cfg.applyDefaultTimings(1, 3, 20, 4, 8, 20);
    return cfg;
}

} // namespace arch
} // namespace gest
