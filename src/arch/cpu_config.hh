/**
 * @file
 * Static description of a simulated CPU core.
 *
 * The four evaluation machines of the paper (Cortex-A15, Cortex-A7,
 * X-Gene2, AMD Athlon II) are modelled as parameter sets over one generic
 * superscalar timing model: in-order or out-of-order issue, a scheduler
 * window, per-type functional-unit counts, per-opcode latencies, a small
 * L1 data cache and branch-redirect penalties.
 */

#ifndef GEST_ARCH_CPU_CONFIG_HH
#define GEST_ARCH_CPU_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>

#include "arch/fu.hh"
#include "isa/instr_class.hh"

namespace gest {
namespace arch {

/** Execution timing of one opcode. */
struct OpTiming
{
    FuType fu = FuType::IntAlu;
    int latency = 1;     ///< result latency in cycles
    int busyCycles = 1;  ///< cycles the FU is occupied (issue interval)
};

/** L1 data-cache geometry. */
struct CacheConfig
{
    int sets = 64;
    int ways = 4;
    int lineBytes = 64;
    int hitLatency = 3;
    int missLatency = 60;
};

/**
 * Full static configuration of one simulated core.
 */
struct CpuConfig
{
    std::string name;

    bool outOfOrder = true;
    int fetchWidth = 3;       ///< micro-ops entering the window per cycle
    int issueWidth = 3;       ///< max micro-ops issued per cycle
    int windowSize = 40;      ///< scheduler window (in-order cores: small)

    /** Units available per FuType. */
    std::array<int, numFuTypes> fuCount{};

    /** Per-opcode execution timing, indexed by isa::Opcode. */
    std::array<OpTiming, 64> timing{};

    CacheConfig l1d;

    /**
     * Optional unified L2. When present, an L1 miss that hits in L2
     * costs l2.hitLatency and an L2 miss costs l2.missLatency (DRAM);
     * l1d.missLatency is ignored. This enables the paper's §VII
     * extension: stressing the LLC/DRAM by optimizing for cache misses.
     */
    CacheConfig l2;
    bool hasL2 = false;

    /**
     * Miss-status holding registers: the maximum number of outstanding
     * DRAM (L2-miss) requests. Bounds memory-level parallelism and
     * therefore DRAM bandwidth, which keeps cache-miss viruses
     * physical.
     */
    int mshrs = 8;

    double freqGHz = 1.0;

    /** Fetch-bubble cycles after a correctly predicted taken branch. */
    int takenBranchBubble = 0;

    /** Full misprediction penalty in cycles. */
    int mispredictPenalty = 12;

    /**
     * Deterministic misprediction model: every Nth conditional branch
     * mispredicts (0 = never). Loop-closing branches are captured by a
     * loop predictor and never mispredict until exit.
     */
    int mispredictEveryN = 0;

    /** Look up the timing of an opcode. */
    const OpTiming& opTiming(isa::Opcode op) const
    {
        return timing[static_cast<std::size_t>(op)];
    }

    /** Set the timing of an opcode (busy_cycles = 0: busy for latency). */
    void
    setTiming(isa::Opcode op, FuType fu, int latency, int busy_cycles = 1)
    {
        timing[static_cast<std::size_t>(op)] =
            {fu, latency, busy_cycles > 0 ? busy_cycles : latency};
    }

    /** Fill the timing table from a small set of per-group latencies. */
    void applyDefaultTimings(int alu_lat, int mul_lat, int div_lat,
                             int fp_lat, int fma_lat, int fdiv_lat);

    /** Sanity-check the configuration; fatal() on nonsense. */
    void validate() const;
};

/** Cortex-A15-like: 3-wide out-of-order with two FP/SIMD pipes. */
CpuConfig cortexA15Config();

/** Cortex-A7-like: 2-wide in-order with a single 64-bit NEON pipe. */
CpuConfig cortexA7Config();

/** X-Gene2-like: 4-wide out-of-order server core. */
CpuConfig xgene2Config();

/** AMD Athlon II-like: 3-wide out-of-order desktop core at 3.1 GHz. */
CpuConfig athlonX4Config();

} // namespace arch
} // namespace gest

#endif // GEST_ARCH_CPU_CONFIG_HH
