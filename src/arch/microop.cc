#include "arch/microop.hh"

#include "util/logging.hh"

namespace gest {
namespace arch {

using isa::InstrClass;
using isa::Opcode;

MicroOp
decode(const isa::InstructionLibrary& lib,
       const isa::InstructionInstance& inst)
{
    const isa::InstructionDef& def = lib.instruction(inst.defIndex);

    MicroOp mo;
    mo.op = def.opcode;
    mo.cls = def.cls;
    mo.isLoad = isa::isLoad(def.opcode);
    mo.isStore = isa::isStore(def.opcode);
    mo.isBranch = isa::isBranch(def.opcode);

    // Collect register slots (in slot order) and the first immediate.
    std::vector<int> regs;
    std::vector<bool> reg_is_vec;
    for (std::size_t slot = 0; slot < def.operandIndex.size(); ++slot) {
        const isa::OperandDef& op = lib.operand(def.operandIndex[slot]);
        if (op.kind() == isa::OperandKind::Immediate) {
            mo.imm = op.immediateValue(inst.operandChoice[slot]);
            mo.hasImm = true;
            continue;
        }
        isa::RegRef ref;
        if (!op.parsedRegister(inst.operandChoice[slot], ref))
            fatal("cannot simulate instruction '", def.name,
                  "': register name '",
                  op.registerName(inst.operandChoice[slot]),
                  "' is not recognized");
        regs.push_back(unifiedReg(ref));
        reg_is_vec.push_back(ref.cls == isa::RegClass::Vec);
    }

    auto add_src = [&mo](int reg) {
        if (mo.numSrc >= 4)
            panic("micro-op with more than 4 sources");
        mo.src[mo.numSrc++] = static_cast<std::int8_t>(reg);
    };
    auto add_dst = [&mo](int reg) {
        if (mo.numDst >= 2)
            panic("micro-op with more than 2 destinations");
        mo.dst[mo.numDst++] = static_cast<std::int8_t>(reg);
    };

    if (mo.isBranch || def.opcode == Opcode::Nop) {
        // No register operands.
    } else if (mo.isStore) {
        // All registers but the last are data sources; the last is the
        // base address register (ARM "STR data, [base]" and the x86
        // library place the base last among register slots).
        if (regs.empty())
            fatal("store instruction '", def.name,
                  "' needs at least a base register");
        for (std::size_t i = 0; i + 1 < regs.size(); ++i)
            add_src(regs[i]);
        add_src(regs.back());
        if (regs.size() >= 2)
            mo.accessBytes =
                static_cast<std::int8_t>(reg_is_vec[0] ? 16 : 8);
    } else if (mo.isLoad) {
        // All registers but the last are destinations; the last is the
        // base address register.
        if (regs.empty())
            fatal("load instruction '", def.name,
                  "' needs at least a base register");
        for (std::size_t i = 0; i + 1 < regs.size(); ++i)
            add_dst(regs[i]);
        add_src(regs.back());
        if (regs.size() >= 2)
            mo.accessBytes =
                static_cast<std::int8_t>(reg_is_vec[0] ? 16 : 8);
        if (def.opcode == Opcode::LoadPair)
            mo.accessBytes = 16;
    } else if (def.opcode == Opcode::Cmp) {
        for (int reg : regs)
            add_src(reg);
    } else if (def.opcode == Opcode::Mov) {
        if (!regs.empty())
            add_dst(regs[0]);
        for (std::size_t i = 1; i < regs.size(); ++i)
            add_src(regs[i]);
    } else {
        // Arithmetic. First register is the destination; the rest are
        // sources. Two-register forms are destructive (x86 style), and
        // fused multiply-accumulate reads its destination.
        if (regs.empty())
            fatal("arithmetic instruction '", def.name,
                  "' has no register operands");
        add_dst(regs[0]);
        for (std::size_t i = 1; i < regs.size(); ++i)
            add_src(regs[i]);
        // Two-register forms are destructive (x86 style), fused
        // multiply-accumulate reads its destination, and one-register
        // forms with an immediate are read-modify-write pointer
        // advances ("ADD op1, op1, #op2").
        const bool destructive =
            regs.size() == 2 || regs.size() == 1 ||
            def.opcode == Opcode::VFma || def.opcode == Opcode::FMAdd;
        if (destructive)
            add_src(regs[0]);
    }

    return mo;
}

std::vector<MicroOp>
decodeBody(const isa::InstructionLibrary& lib,
           const std::vector<isa::InstructionInstance>& body)
{
    std::vector<MicroOp> out;
    decodeBodyInto(lib, body, out);
    return out;
}

void
decodeBodyInto(const isa::InstructionLibrary& lib,
               const std::vector<isa::InstructionInstance>& body,
               std::vector<MicroOp>& out)
{
    out.clear();
    out.reserve(body.size());
    for (const isa::InstructionInstance& inst : body)
        out.push_back(decode(lib, inst));
}

} // namespace arch
} // namespace gest
