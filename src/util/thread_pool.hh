/**
 * @file
 * A small fixed-size thread pool for data-parallel loops.
 *
 * Population evaluation is embarrassingly parallel — every individual is
 * measured independently and results are written back by index — so the
 * pool deliberately has no work stealing, no futures and no task queue:
 * one blocking parallelFor() at a time hands out loop indices through an
 * atomic counter. Workers are started once and reused across calls, so
 * per-generation dispatch costs two condition-variable round trips, not
 * N thread spawns.
 */

#ifndef GEST_UTIL_THREAD_POOL_HH
#define GEST_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gest {
namespace util {

/**
 * Fixed worker count, one parallelFor() in flight at a time. Not
 * reentrant: calling parallelFor() from inside a task deadlocks.
 */
class ThreadPool
{
  public:
    /**
     * A loop body: receives the item index and the id of the worker
     * executing it (in [0, workers())), so callers can hand each worker
     * its own private state (e.g. a Measurement clone).
     */
    using Task = std::function<void(std::size_t index, int worker)>;

    /** Start @p workers threads; fatal() when workers < 1. */
    explicit ThreadPool(int workers);

    /** Joins all workers; any in-flight parallelFor must have returned. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    int workers() const { return static_cast<int>(_threads.size()); }

    /**
     * Run task(i, worker) for every i in [0, count) across the workers
     * and block until all indices completed. The first exception thrown
     * by a task is rethrown here after the loop drains; remaining
     * indices still run (measurements have no ordering side effects).
     */
    void parallelFor(std::size_t count, const Task& task);

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static int hardwareThreads();

    /**
     * The id of the pool worker executing the calling thread, or -1 on
     * any thread that is not a pool worker (e.g. the coordinator). Ids
     * are dense in [0, workers()) and stable for the lifetime of the
     * pool: a worker thread keeps its id across parallelFor() calls.
     * Observability code uses them as trace thread ids.
     */
    static int currentWorkerId();

    /** Display name for a worker id: "worker-<id>", "coordinator" for -1. */
    static std::string workerName(int id);

  private:
    void workerLoop(int id);

    std::vector<std::thread> _threads;

    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _done;
    const Task* _task = nullptr;
    std::size_t _count = 0;
    std::atomic<std::size_t> _next{0};
    std::size_t _active = 0;
    std::uint64_t _jobId = 0;
    std::exception_ptr _error;
    bool _stop = false;
};

} // namespace util
} // namespace gest

#endif // GEST_UTIL_THREAD_POOL_HH
