/**
 * @file
 * Deterministic pseudo-random number generation for the GA engine.
 *
 * All stochastic framework behaviour flows through a single Rng instance so
 * a run is exactly reproducible from its seed. The generator is
 * xoshiro256** seeded through SplitMix64, which is fast, high quality and
 * has a trivially serializable state.
 */

#ifndef GEST_UTIL_RANDOM_HH
#define GEST_UTIL_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace gest {

/**
 * xoshiro256** generator with convenience draws used by the GA operators.
 */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Draw the next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /** Uniformly pick an element of a non-empty vector. */
    template <typename T>
    const T&
    pick(const std::vector<T>& v)
    {
        if (v.empty())
            panic("Rng::pick on empty vector");
        return v[nextBelow(v.size())];
    }

    /** Uniformly pick an index of a non-empty container. */
    std::size_t
    pickIndex(std::size_t size)
    {
        if (size == 0)
            panic("Rng::pickIndex with size 0");
        return static_cast<std::size_t>(nextBelow(size));
    }

    /** Fork a child generator with an independent stream. */
    Rng split();

    /** @return the internal 256-bit state (for checkpointing). */
    std::array<std::uint64_t, 4> state() const { return _state; }

    /** Restore a previously captured state. */
    void setState(const std::array<std::uint64_t, 4>& s) { _state = s; }

  private:
    std::array<std::uint64_t, 4> _state;
};

} // namespace gest

#endif // GEST_UTIL_RANDOM_HH
