/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal framework bug; never the user's fault. Aborts.
 * fatal()  — the user supplied a bad configuration or environment and the
 *            run cannot continue. Exits with status 1 (throws
 *            FatalError first so library embedders and tests can catch it).
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#ifndef GEST_UTIL_LOGGING_HH
#define GEST_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace gest {

/**
 * Exception carrying a fatal, user-caused error. Thrown by fatal() so the
 * condition is testable and embedders can recover; the CLI entry points
 * catch it, print the message and exit(1).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(const Args&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

} // namespace detail

/** Abort with a message: an internal invariant was violated. */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    detail::panicImpl("", 0, detail::concat(args...));
}

/** Terminate the run: the user's configuration or environment is broken. */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    detail::fatalImpl(detail::concat(args...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(const Args&... args)
{
    detail::warnImpl(detail::concat(args...));
}

/** Print an informational message to stdout. */
template <typename... Args>
void
inform(const Args&... args)
{
    detail::informImpl(detail::concat(args...));
}

/** Globally silence inform() output (benchmarks, tests). */
void setQuiet(bool quiet);

/** @return whether inform() output is currently suppressed. */
bool quiet();

} // namespace gest

#endif // GEST_UTIL_LOGGING_HH
