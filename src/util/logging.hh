/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal framework bug; never the user's fault. Aborts.
 * fatal()  — the user supplied a bad configuration or environment and the
 *            run cannot continue. Exits with status 1 (throws
 *            FatalError first so library embedders and tests can catch it).
 * warn()   — something works but not as well as it should.
 * inform() — plain status output; suppressed at LogLevel::Quiet.
 * debug()  — chatty diagnostics; printed only at LogLevel::Debug.
 *
 * The verbosity is a process-wide LogLevel, settable programmatically
 * (setLogLevel), from the CLI (--quiet / --verbose) or from the
 * GEST_LOG environment variable (configureLoggingFromEnv). Optionally
 * every line carries a monotonic timestamp (setLogTimestamps).
 */

#ifndef GEST_UTIL_LOGGING_HH
#define GEST_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace gest {

/**
 * Exception carrying a fatal, user-caused error. Thrown by fatal() so the
 * condition is testable and embedders can recover; the CLI entry points
 * catch it, print the message and exit(1).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/**
 * Process-wide verbosity. Each level includes everything above it:
 * Quiet shows only warnings and errors, Normal adds inform(), Debug
 * adds debug().
 */
enum class LogLevel
{
    Quiet,
    Normal,
    Debug,
};

/** Set the process-wide verbosity. */
void setLogLevel(LogLevel level);

/** The current verbosity. */
LogLevel logLevel();

namespace detail {

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(const Args&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);
void debugImpl(const std::string& msg);

} // namespace detail

/** Abort with a message: an internal invariant was violated. */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    detail::panicImpl("", 0, detail::concat(args...));
}

/** Terminate the run: the user's configuration or environment is broken. */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    detail::fatalImpl(detail::concat(args...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(const Args&... args)
{
    detail::warnImpl(detail::concat(args...));
}

/** Print an informational message to stdout (LogLevel::Normal+). */
template <typename... Args>
void
inform(const Args&... args)
{
    detail::informImpl(detail::concat(args...));
}

/** Print a diagnostic message to stdout (LogLevel::Debug only). */
template <typename... Args>
void
debug(const Args&... args)
{
    if (logLevel() == LogLevel::Debug)
        detail::debugImpl(detail::concat(args...));
}

/** Prefix every log line with seconds since process start. */
void setLogTimestamps(bool on);

/** @return whether log timestamps are enabled. */
bool logTimestamps();

/**
 * Apply the GEST_LOG environment variable, a comma-separated list of
 * `quiet` | `normal` | `verbose` | `debug` (the last two are synonyms)
 * and `timestamps` (or `ts`). Unknown words warn and are ignored; a
 * missing or empty variable changes nothing. @return true if GEST_LOG
 * was set.
 */
bool configureLoggingFromEnv();

/** Globally silence inform() output: setLogLevel(Quiet/Normal). */
void setQuiet(bool quiet);

/** @return whether inform() output is currently suppressed. */
bool quiet();

} // namespace gest

#endif // GEST_UTIL_LOGGING_HH
