/**
 * @file
 * Filesystem helpers used by the output layer and the native runner.
 */

#ifndef GEST_UTIL_FILEUTIL_HH
#define GEST_UTIL_FILEUTIL_HH

#include <string>
#include <vector>

namespace gest {

/** Read an entire file into a string; fatal() if unreadable. */
std::string readFile(const std::string& path);

/** @return true if the file exists and could be read into @p out. */
bool tryReadFile(const std::string& path, std::string& out);

/** Write @p contents to @p path, creating parent directories. */
void writeFile(const std::string& path, const std::string& contents);

/**
 * Atomically replace @p path with @p contents: write to a sibling
 * temporary file, then rename() over the target, so a concurrent
 * reader sees either the old file or the new one, never a torn write.
 * Used for the run's status.json heartbeat.
 */
void writeFileAtomic(const std::string& path,
                     const std::string& contents);

/** Create a directory (and parents); fatal() on failure. */
void ensureDir(const std::string& path);

/** @return true if @p path names an existing regular file. */
bool fileExists(const std::string& path);

/** @return true if @p path names an existing directory. */
bool dirExists(const std::string& path);

/** List regular-file names (not paths) inside a directory, sorted. */
std::vector<std::string> listFiles(const std::string& dir);

/** List subdirectory names (not paths) inside a directory, sorted. */
std::vector<std::string> listDirs(const std::string& dir);

/** Remove a file or directory tree; no error if absent. */
void removeAll(const std::string& path);

/** Create a unique scratch directory under the system temp dir. */
std::string makeTempDir(const std::string& prefix);

} // namespace gest

#endif // GEST_UTIL_FILEUTIL_HH
