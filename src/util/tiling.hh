/**
 * @file
 * Periodic-trace layout descriptor for the steady-state fast path.
 *
 * When the loop simulator detects exact recurrence of its architectural
 * state, it stops simulating and stores only one occurrence of the
 * periodic slice. The stored per-cycle trace is then laid out as
 *
 *     [ prefix | period | tail ]
 *
 * and stands for the virtual trace
 *
 *     [ prefix | period x repeats | tail ]
 *
 * Downstream kernels (power, PDN, probe materialization) walk the
 * virtual trace through storedIndex() without ever expanding it.
 */

#ifndef GEST_UTIL_TILING_HH
#define GEST_UTIL_TILING_HH

#include <algorithm>
#include <cstdint>

namespace gest {
namespace util {

/**
 * Describes how a stored per-cycle trace maps onto the virtual
 * (fully expanded) trace. The default state describes an untiled
 * trace of zero cycles; untiled traces of length n use
 * {prefix = n, period = 0, repeats = 0, tail = 0}.
 */
struct TraceTiling
{
    /** Stored cycles before the periodic slice (warm-up). */
    std::uint64_t prefix = 0;

    /** Length of the periodic slice in cycles (0 = untiled). */
    std::uint64_t period = 0;

    /**
     * How many times the period occurs in the virtual trace, the
     * stored occurrence included. Tiled traces have repeats >= 2.
     */
    std::uint64_t repeats = 0;

    /** Stored cycles after the periodic slice (loop drain). */
    std::uint64_t tail = 0;

    /** True when the trace stands for more cycles than it stores. */
    bool tiled() const { return period > 0 && repeats > 1; }

    /** Cycles physically stored. */
    std::uint64_t
    storedCycles() const
    {
        return prefix + period + tail;
    }

    /** Cycles the stored trace stands for. */
    std::uint64_t
    virtualCycles() const
    {
        return prefix + period * repeats + tail;
    }

    /** Virtual cycles beyond the stored ones. */
    std::uint64_t
    tiledCycles() const
    {
        return virtualCycles() - storedCycles();
    }

    /** Virtual cycle count a capacity-capped consumer would see. */
    std::uint64_t
    clippedVirtualCycles(std::uint64_t cap) const
    {
        return std::min(virtualCycles(), cap);
    }

    /** Map a virtual cycle index onto its stored row. */
    std::uint64_t
    storedIndex(std::uint64_t virtual_cycle) const
    {
        if (virtual_cycle < prefix || period == 0)
            return virtual_cycle;
        const std::uint64_t rel = virtual_cycle - prefix;
        if (rel < period * repeats)
            return prefix + rel % period;
        return prefix + period + (rel - period * repeats);
    }

    /** Descriptor for an untiled trace of @p cycles stored cycles. */
    static TraceTiling
    untiled(std::uint64_t cycles)
    {
        TraceTiling t;
        t.prefix = cycles;
        return t;
    }
};

} // namespace util
} // namespace gest

#endif // GEST_UTIL_TILING_HH
