/**
 * @file
 * SHA-256 (FIPS 180-4) for artifact checksums and run digests.
 *
 * The provenance layer needs a collision-resistant hash to seal run
 * artifacts and per-generation population digests into manifest.json
 * and digests.csv; no crypto library is available in this environment,
 * so the framework carries the standard single-block-at-a-time
 * implementation. Performance is irrelevant here — the largest inputs
 * are population checkpoints of a few hundred kilobytes, hashed once
 * per generation.
 */

#ifndef GEST_UTIL_SHA256_HH
#define GEST_UTIL_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gest {

/** Incremental SHA-256; use sha256Hex() for one-shot hashing. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes at @p data. */
    void update(const void* data, std::size_t len);

    /** Absorb a string. */
    void update(std::string_view s) { update(s.data(), s.size()); }

    /** Finalize and return the 32-byte digest; the object is spent. */
    std::array<std::uint8_t, 32> finish();

    /** Finalize and return the digest as 64 lowercase hex digits. */
    std::string finishHex();

  private:
    void processBlock(const std::uint8_t* block);

    std::array<std::uint32_t, 8> _state;
    std::array<std::uint8_t, 64> _buffer;
    std::size_t _buffered = 0;
    std::uint64_t _totalBytes = 0;
};

/** One-shot SHA-256 of @p s as 64 lowercase hex digits. */
std::string sha256Hex(std::string_view s);

/**
 * SHA-256 of the file at @p path as 64 lowercase hex digits.
 * @return false when the file cannot be read (out untouched).
 */
bool sha256File(const std::string& path, std::string& out);

} // namespace gest

#endif // GEST_UTIL_SHA256_HH
