/**
 * @file
 * A minimal JSON reader for the framework's own machine-readable
 * artifacts (status.json, metrics.json, the telemetry endpoints).
 *
 * The framework *writes* JSON in several places but until the live
 * telemetry plane never had to read it back; `gest top` does (it polls
 * /status and /history over HTTP), and tests use it to validate every
 * JSON artifact structurally instead of with string searches. This is
 * a full RFC 8259 reader for the subset the framework emits: objects,
 * arrays, strings with the common escapes, numbers, booleans, null.
 * It is not a streaming parser and keeps the whole tree in memory —
 * our payloads are kilobytes.
 */

#ifndef GEST_UTIL_JSONLITE_HH
#define GEST_UTIL_JSONLITE_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gest {
namespace json {

/** One parsed JSON value; a tagged tree. */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;

    /** Object members in file order (duplicate keys kept as written). */
    std::vector<std::pair<std::string, Value>> members;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    /** Member @p key of an object, or nullptr. */
    const Value* find(const std::string& key) const;

    /** Number at @p key, or @p fallback when absent or not a number. */
    double numberOr(const std::string& key, double fallback) const;

    /** String at @p key, or @p fallback when absent or not a string. */
    std::string stringOr(const std::string& key,
                         const std::string& fallback) const;
};

/**
 * Parse @p text into @p out. @return true on success; on failure
 * @p error (when non-null) receives a one-line message with the byte
 * offset of the problem.
 */
bool parse(std::string_view text, Value& out, std::string* error);

} // namespace json
} // namespace gest

#endif // GEST_UTIL_JSONLITE_HH
