#include "util/fileutil.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "util/logging.hh"

namespace fs = std::filesystem;

namespace gest {

std::string
readFile(const std::string& path)
{
    std::string out;
    if (!tryReadFile(path, out))
        fatal("cannot read file '", path, "'");
    return out;
}

bool
tryReadFile(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

void
writeFile(const std::string& path, const std::string& contents)
{
    const fs::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        fs::create_directories(p.parent_path(), ec);
    }
    std::ofstream outStream(path, std::ios::binary | std::ios::trunc);
    if (!outStream)
        fatal("cannot open '", path, "' for writing");
    outStream << contents;
    if (!outStream)
        fatal("short write to '", path, "'");
}

void
writeFileAtomic(const std::string& path, const std::string& contents)
{
    const std::string tmp = path + ".tmp";
    writeFile(tmp, contents);
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        fatal("cannot replace '", path, "': ", ec.message());
}

void
ensureDir(const std::string& path)
{
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec && !fs::is_directory(path))
        fatal("cannot create directory '", path, "': ", ec.message());
}

bool
fileExists(const std::string& path)
{
    std::error_code ec;
    return fs::is_regular_file(path, ec);
}

bool
dirExists(const std::string& path)
{
    std::error_code ec;
    return fs::is_directory(path, ec);
}

std::vector<std::string>
listFiles(const std::string& dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file())
            out.push_back(entry.path().filename().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
listDirs(const std::string& dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_directory())
            out.push_back(entry.path().filename().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
removeAll(const std::string& path)
{
    std::error_code ec;
    fs::remove_all(path, ec);
}

std::string
makeTempDir(const std::string& prefix)
{
    std::random_device rd;
    for (int attempt = 0; attempt < 64; ++attempt) {
        std::ostringstream name;
        name << prefix << "-" << std::hex << rd() << rd();
        const fs::path candidate = fs::temp_directory_path() / name.str();
        std::error_code ec;
        if (fs::create_directories(candidate, ec))
            return candidate.string();
    }
    fatal("cannot create a scratch directory under ",
          fs::temp_directory_path().string());
}

} // namespace gest
