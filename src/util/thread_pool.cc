#include "util/thread_pool.hh"

#include "util/logging.hh"

namespace gest {
namespace util {

ThreadPool::ThreadPool(int workers)
{
    if (workers < 1)
        fatal("thread pool needs at least one worker, got ", workers);
    _threads.reserve(static_cast<std::size_t>(workers));
    for (int id = 0; id < workers; ++id)
        _threads.emplace_back([this, id] { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread& thread : _threads)
        thread.join();
}

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

namespace {
thread_local int currentWorker = -1;
} // namespace

int
ThreadPool::currentWorkerId()
{
    return currentWorker;
}

std::string
ThreadPool::workerName(int id)
{
    return id < 0 ? "coordinator" : "worker-" + std::to_string(id);
}

void
ThreadPool::workerLoop(int id)
{
    currentWorker = id;
    std::uint64_t seen = 0;
    for (;;) {
        const Task* task = nullptr;
        std::size_t count = 0;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock,
                       [&] { return _stop || _jobId != seen; });
            if (_stop)
                return;
            seen = _jobId;
            task = _task;
            count = _count;
        }

        for (;;) {
            const std::size_t index =
                _next.fetch_add(1, std::memory_order_relaxed);
            if (index >= count)
                break;
            try {
                (*task)(index, id);
            } catch (...) {
                std::lock_guard<std::mutex> lock(_mutex);
                if (!_error)
                    _error = std::current_exception();
            }
        }

        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (--_active == 0)
                _done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count, const Task& task)
{
    if (count == 0)
        return;

    std::unique_lock<std::mutex> lock(_mutex);
    _task = &task;
    _count = count;
    _next.store(0, std::memory_order_relaxed);
    _error = nullptr;
    _active = _threads.size();
    ++_jobId;
    _wake.notify_all();
    _done.wait(lock, [&] { return _active == 0; });
    _task = nullptr;

    if (_error) {
        std::exception_ptr error = _error;
        _error = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

} // namespace util
} // namespace gest
