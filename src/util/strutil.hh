/**
 * @file
 * Small string helpers shared across the framework.
 */

#ifndef GEST_UTIL_STRUTIL_HH
#define GEST_UTIL_STRUTIL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gest {

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Join the elements of @p parts with @p sep between them. */
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/** @return true if @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** @return true if @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Replace every occurrence of @p from in @p s by @p to. */
std::string replaceAll(std::string s, std::string_view from,
                       std::string_view to);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/**
 * Parse a signed integer (decimal, or hex with a 0x prefix).
 * Calls fatal() with @p what in the message on malformed input.
 */
std::int64_t parseInt(std::string_view s, std::string_view what);

/**
 * Parse an unsigned 64-bit integer (decimal, or hex with a 0x
 * prefix). The full uint64 range is accepted — parseInt() would
 * saturate above INT64_MAX — which matters for RNG seeds round-tripped
 * through manifest.json. fatal() with @p what on malformed input.
 */
std::uint64_t parseUint64(std::string_view s, std::string_view what);

/** Parse a double; fatal() with @p what on malformed input. */
double parseDouble(std::string_view s, std::string_view what);

/** Parse "true"/"false"/"1"/"0" case-insensitively. */
bool parseBool(std::string_view s, std::string_view what);

/** Render a double with fixed precision (for file names and tables). */
std::string formatFixed(double v, int precision);

/**
 * Escape @p s for inclusion inside a JSON string literal: quotes and
 * backslashes are backslash-escaped, control characters become \uXXXX
 * (with the \n \t \r \f \b shorthands), and non-ASCII bytes pass
 * through untouched (JSON is UTF-8). Used by the Chrome-trace and
 * metrics.json writers.
 */
std::string jsonEscape(std::string_view s);

} // namespace gest

#endif // GEST_UTIL_STRUTIL_HH
