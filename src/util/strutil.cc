#include "util/strutil.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace gest {

std::string
trim(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string
join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
replaceAll(std::string s, std::string_view from, std::string_view to)
{
    if (from.empty())
        return s;
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::int64_t
parseInt(std::string_view s, std::string_view what)
{
    const std::string t = trim(s);
    if (t.empty())
        fatal("expected an integer for ", what, ", got an empty string");
    char* end = nullptr;
    const std::int64_t v = std::strtoll(t.c_str(), &end, 0);
    if (end == t.c_str() || *end != '\0')
        fatal("malformed integer '", t, "' for ", what);
    return v;
}

std::uint64_t
parseUint64(std::string_view s, std::string_view what)
{
    const std::string t = trim(s);
    if (t.empty())
        fatal("expected an integer for ", what, ", got an empty string");
    if (t[0] == '-')
        fatal("expected a non-negative integer for ", what, ", got '", t,
              "'");
    char* end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(t.c_str(), &end, 0);
    if (end == t.c_str() || *end != '\0' || errno == ERANGE)
        fatal("malformed integer '", t, "' for ", what);
    return v;
}

double
parseDouble(std::string_view s, std::string_view what)
{
    const std::string t = trim(s);
    if (t.empty())
        fatal("expected a number for ", what, ", got an empty string");
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0')
        fatal("malformed number '", t, "' for ", what);
    return v;
}

bool
parseBool(std::string_view s, std::string_view what)
{
    const std::string t = toLower(trim(s));
    if (t == "true" || t == "1" || t == "yes")
        return true;
    if (t == "false" || t == "0" || t == "no")
        return false;
    fatal("malformed boolean '", std::string(s), "' for ", what);
}

std::string
formatFixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\f': out += "\\f"; break;
          case '\b': out += "\\b"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace gest
