#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace gest {

namespace {
bool quietFlag = false;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail {

void
panicImpl(const char* file, int line, const std::string& msg)
{
    if (file && file[0] != '\0')
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    else
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string& msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (!quietFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace gest
