#include "util/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/strutil.hh"

namespace gest {

namespace {

// Relaxed atomics so worker threads may log while the coordinator
// flips verbosity (CLI flag parsing happens before threads start, but
// the sanitized builds should not have to trust that).
std::atomic<LogLevel> levelFlag{LogLevel::Normal};
std::atomic<bool> timestampFlag{false};

double
secondsSinceStart()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration<double>(Clock::now() - start).count();
}

void
emit(std::FILE* stream, const char* tag, const std::string& msg)
{
    if (timestampFlag.load(std::memory_order_relaxed))
        std::fprintf(stream, "[%10.3f] %s: %s\n", secondsSinceStart(),
                     tag, msg.c_str());
    else
        std::fprintf(stream, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelFlag.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelFlag.load(std::memory_order_relaxed);
}

void
setLogTimestamps(bool on)
{
    timestampFlag.store(on, std::memory_order_relaxed);
}

bool
logTimestamps()
{
    return timestampFlag.load(std::memory_order_relaxed);
}

bool
configureLoggingFromEnv()
{
    const char* env = std::getenv("GEST_LOG");
    if (!env || env[0] == '\0')
        return false;
    for (const std::string& word : split(env, ',')) {
        const std::string w = toLower(trim(word));
        if (w.empty())
            continue;
        if (w == "quiet")
            setLogLevel(LogLevel::Quiet);
        else if (w == "normal")
            setLogLevel(LogLevel::Normal);
        else if (w == "verbose" || w == "debug")
            setLogLevel(LogLevel::Debug);
        else if (w == "timestamps" || w == "ts")
            setLogTimestamps(true);
        else
            warn("GEST_LOG: ignoring unknown word '", w,
                 "' (expected quiet|normal|verbose|debug|timestamps)");
    }
    return true;
}

void
setQuiet(bool q)
{
    // Compatibility shim for pre-LogLevel callers (benchmarks, tests):
    // only moves between Quiet and Normal, never touches Debug.
    if (q)
        setLogLevel(LogLevel::Quiet);
    else if (logLevel() == LogLevel::Quiet)
        setLogLevel(LogLevel::Normal);
}

bool
quiet()
{
    return logLevel() == LogLevel::Quiet;
}

namespace detail {

void
panicImpl(const char* file, int line, const std::string& msg)
{
    if (file && file[0] != '\0')
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    else
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatalImpl(const std::string& msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string& msg)
{
    emit(stderr, "warn", msg);
}

void
informImpl(const std::string& msg)
{
    if (logLevel() != LogLevel::Quiet)
        emit(stdout, "info", msg);
}

void
debugImpl(const std::string& msg)
{
    emit(stdout, "debug", msg);
}

} // namespace detail
} // namespace gest
