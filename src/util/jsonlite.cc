#include "util/jsonlite.hh"

#include <cctype>
#include <cstdlib>

namespace gest {
namespace json {

namespace {

/** Recursive-descent reader over a string_view with one-slot errors. */
class Reader
{
  public:
    Reader(std::string_view text, std::string* error)
        : _text(text), _error(error)
    {}

    bool
    run(Value& out)
    {
        skipSpace();
        if (!value(out, 0))
            return false;
        skipSpace();
        if (_pos != _text.size())
            return fail("trailing characters after the JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string& what)
    {
        if (_error && _error->empty())
            *_error = what + " at byte " + std::to_string(_pos);
        return false;
    }

    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    literal(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return false;
        _pos += word.size();
        return true;
    }

    bool
    value(Value& out, int depth)
    {
        if (depth > 64)
            return fail("nesting deeper than 64 levels");
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        switch (_text[_pos]) {
          case '{': return object(out, depth);
          case '[': return array(out, depth);
          case '"':
            out.type = Value::Type::String;
            return string(out.str);
          case 't':
            out.type = Value::Type::Bool;
            out.boolean = true;
            return literal("true") || fail("bad literal");
          case 'f':
            out.type = Value::Type::Bool;
            out.boolean = false;
            return literal("false") || fail("bad literal");
          case 'n':
            out.type = Value::Type::Null;
            return literal("null") || fail("bad literal");
          default:
            return number(out);
        }
    }

    bool
    number(Value& out)
    {
        const char* begin = _text.data() + _pos;
        char* end = nullptr;
        out.number = std::strtod(begin, &end);
        if (end == begin)
            return fail("expected a JSON value");
        const char first = *begin;
        if (first != '-' && (first < '0' || first > '9'))
            return fail("expected a JSON value");
        out.type = Value::Type::Number;
        _pos += static_cast<std::size_t>(end - begin);
        return true;
    }

    bool
    string(std::string& out)
    {
        ++_pos;  // opening quote
        out.clear();
        while (_pos < _text.size()) {
            const char c = _text[_pos];
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c != '\\') {
                out += c;
                ++_pos;
                continue;
            }
            if (_pos + 1 >= _text.size())
                return fail("unterminated escape");
            const char esc = _text[_pos + 1];
            _pos += 2;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                  if (_pos + 4 > _text.size())
                      return fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = _text[_pos + static_cast<
                          std::size_t>(i)];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return fail("bad \\u escape digit");
                  }
                  _pos += 4;
                  // UTF-8 encode the code point; the framework only
                  // emits \u for control characters, but be correct
                  // for the whole BMP (surrogate pairs unsupported).
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xC0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (code >> 12));
                      out += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    array(Value& out, int depth)
    {
        ++_pos;  // '['
        out.type = Value::Type::Array;
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            Value element;
            skipSpace();
            if (!value(element, depth + 1))
                return false;
            out.array.push_back(std::move(element));
            skipSpace();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    object(Value& out, int depth)
    {
        ++_pos;  // '{'
        out.type = Value::Type::Object;
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipSpace();
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected a quoted object key");
            std::string key;
            if (!string(key))
                return false;
            skipSpace();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':' after object key");
            ++_pos;
            skipSpace();
            Value member;
            if (!value(member, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(member));
            skipSpace();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    std::string_view _text;
    std::string* _error;
    std::size_t _pos = 0;
};

} // namespace

const Value*
Value::find(const std::string& key) const
{
    for (const auto& [name, member] : members) {
        if (name == key)
            return &member;
    }
    return nullptr;
}

double
Value::numberOr(const std::string& key, double fallback) const
{
    const Value* member = find(key);
    return member && member->isNumber() ? member->number : fallback;
}

std::string
Value::stringOr(const std::string& key,
                const std::string& fallback) const
{
    const Value* member = find(key);
    return member && member->isString() ? member->str : fallback;
}

bool
parse(std::string_view text, Value& out, std::string* error)
{
    if (error)
        error->clear();
    out = Value{};
    Reader reader(text, error);
    return reader.run(out);
}

} // namespace json
} // namespace gest
