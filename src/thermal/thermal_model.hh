/**
 * @file
 * Lumped RC thermal network.
 *
 * Substitute for the X-Gene2 i2c temperature sensor (§IV): a thermal
 * ladder die → heat spreader → heatsink → ambient. The GA's temperature
 * fitness reads the die node. Both a steady-state solve (what a sensor
 * reports after a few seconds of sustained execution) and an explicit
 * transient integrator are provided, plus the leakage-temperature
 * fixed-point solve (hotter silicon leaks more, which burns more power,
 * which heats the silicon).
 */

#ifndef GEST_THERMAL_THERMAL_MODEL_HH
#define GEST_THERMAL_THERMAL_MODEL_HH

#include <string>
#include <vector>

#include "power/energy_model.hh"

namespace gest {

namespace signal {
class SignalProbe;
} // namespace signal

namespace thermal {

/**
 * Ladder parameters. Node 0 is the die; conductance[i] couples node i to
 * node i+1, and the last conductance couples the last node to ambient.
 */
struct ThermalConfig
{
    std::string name;

    /** Heat capacity per node (J/K). */
    std::vector<double> capacitance{20.0, 150.0, 600.0};

    /** Thermal conductances along the ladder, ending at ambient (W/K). */
    std::vector<double> conductance{2.0, 1.2, 0.8};

    /** Ambient temperature (degrees C). */
    double ambientC = 25.0;

    /** Total die-to-ambient resistance (K/W). */
    double totalResistance() const;
};

/** RC ladder with steady-state and transient solutions. */
class ThermalModel
{
  public:
    explicit ThermalModel(ThermalConfig cfg);

    /** Die temperature once @p watts of die power reaches equilibrium. */
    double steadyStateDieTemp(double watts) const;

    /** Equilibrium temperature of every node for @p watts die power. */
    std::vector<double> steadyStateTemps(double watts) const;

    /**
     * Solve die temperature including leakage feedback: total power is
     * @p dynamic_watts plus em.leakageWatts(T_die, vdd), and T_die is
     * the equilibrium for that total. Returns the fixed point.
     */
    double solveWithLeakage(double dynamic_watts,
                            const power::EnergyModel& em,
                            double vdd,
                            double* total_watts_out = nullptr) const;

    /** Advance the transient state by @p seconds under @p watts. */
    void step(double watts, double seconds);

    /**
     * Advance the transient by @p seconds under @p watts in @p samples
     * equal steps, recording the die temperature after each as the
     * `die_temp_c` waveform (plus the starting temperature as sample
     * 0) when @p probe is non-null. This is the simulated counterpart
     * of polling the i2c sensor during a heat-up measurement (§V).
     * @return the die temperatures recorded (samples + 1 values).
     */
    std::vector<double> captureTransient(double watts, double seconds,
                                         int samples,
                                         signal::SignalProbe* probe);

    /** Reset transient state to ambient everywhere. */
    void reset();

    /** Current transient die temperature. */
    double dieTemp() const { return _temps.front(); }

    /** Current transient node temperatures. */
    const std::vector<double>& temps() const { return _temps; }

    /** The configuration in use. */
    const ThermalConfig& config() const { return _cfg; }

  private:
    ThermalConfig _cfg;
    std::vector<double> _temps;

    /** step() ping-pong buffer, kept across calls (zero-alloc path). */
    std::vector<double> _stepScratch;
};

/** Thermal ladder for the X-Gene2-like 8-core package. */
ThermalConfig xgene2Thermal();

/** Thermal ladder for the Versatile Express test chip (A15/A7). */
ThermalConfig versatileExpressThermal();

/** Thermal ladder for the Athlon II desktop package with cooler. */
ThermalConfig athlonX4Thermal();

} // namespace thermal
} // namespace gest

#endif // GEST_THERMAL_THERMAL_MODEL_HH
