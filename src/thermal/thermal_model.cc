#include "thermal/thermal_model.hh"

#include <cmath>

#include "signal/signal_probe.hh"
#include "util/logging.hh"

namespace gest {
namespace thermal {

double
ThermalConfig::totalResistance() const
{
    double r = 0.0;
    for (double g : conductance)
        r += 1.0 / g;
    return r;
}

ThermalModel::ThermalModel(ThermalConfig cfg) : _cfg(std::move(cfg))
{
    if (_cfg.capacitance.size() != _cfg.conductance.size())
        fatal("thermal ladder '", _cfg.name, "': ",
              _cfg.capacitance.size(), " capacitances but ",
              _cfg.conductance.size(), " conductances");
    if (_cfg.capacitance.empty())
        fatal("thermal ladder '", _cfg.name, "' has no nodes");
    for (std::size_t i = 0; i < _cfg.capacitance.size(); ++i) {
        if (_cfg.capacitance[i] <= 0.0 || _cfg.conductance[i] <= 0.0)
            fatal("thermal ladder '", _cfg.name,
                  "': non-positive RC element at node ", i);
    }
    reset();
}

double
ThermalModel::steadyStateDieTemp(double watts) const
{
    return _cfg.ambientC + watts * _cfg.totalResistance();
}

std::vector<double>
ThermalModel::steadyStateTemps(double watts) const
{
    // In equilibrium all die power flows through every ladder stage:
    // T_i = T_{i+1} + P / G_i, with T_N = ambient.
    const std::size_t n = _cfg.conductance.size();
    std::vector<double> temps(n);
    double t = _cfg.ambientC;
    for (std::size_t i = n; i-- > 0;) {
        t += watts / _cfg.conductance[i];
        temps[i] = t;
    }
    return temps;
}

double
ThermalModel::solveWithLeakage(double dynamic_watts,
                               const power::EnergyModel& em, double vdd,
                               double* total_watts_out) const
{
    // Fixed-point iteration; the map T -> steady(P_dyn + leak(T)) is a
    // contraction for any physically sensible temperature coefficient.
    double temp = steadyStateDieTemp(dynamic_watts);
    double total = dynamic_watts;
    for (int iter = 0; iter < 64; ++iter) {
        total = dynamic_watts + em.leakageWatts(temp, vdd);
        const double next = steadyStateDieTemp(total);
        if (std::fabs(next - temp) < 1e-9) {
            temp = next;
            break;
        }
        temp = next;
    }
    if (total_watts_out)
        *total_watts_out = total;
    return temp;
}

void
ThermalModel::step(double watts, double seconds)
{
    if (seconds <= 0.0)
        return;
    // Explicit Euler with internal sub-stepping bounded by the fastest
    // node time constant for stability.
    double min_tau = 1e30;
    for (std::size_t i = 0; i < _cfg.capacitance.size(); ++i) {
        const double g_total =
            _cfg.conductance[i] + (i > 0 ? _cfg.conductance[i - 1] : 0.0);
        min_tau = std::min(min_tau, _cfg.capacitance[i] / g_total);
    }
    const double max_dt = min_tau / 4.0;
    int steps = static_cast<int>(std::ceil(seconds / max_dt));
    if (steps < 1)
        steps = 1;
    const double dt = seconds / steps;

    const std::size_t n = _temps.size();
    _stepScratch.resize(n);
    std::vector<double>& next = _stepScratch;
    for (int s = 0; s < steps; ++s) {
        for (std::size_t i = 0; i < n; ++i) {
            double flow = i == 0 ? watts : 0.0;
            if (i > 0)
                flow += _cfg.conductance[i - 1] *
                        (_temps[i - 1] - _temps[i]);
            const double downstream =
                i + 1 < n ? _temps[i + 1] : _cfg.ambientC;
            flow -= _cfg.conductance[i] * (_temps[i] - downstream);
            next[i] = _temps[i] + dt * flow / _cfg.capacitance[i];
        }
        std::swap(_temps, next);
    }
}

std::vector<double>
ThermalModel::captureTransient(double watts, double seconds,
                               int samples, signal::SignalProbe* probe)
{
    if (samples < 1)
        fatal("thermal transient capture needs at least one sample");
    if (seconds <= 0.0)
        fatal("thermal transient capture needs a positive window");
    std::vector<double> temps;
    temps.reserve(static_cast<std::size_t>(samples) + 1);
    temps.push_back(dieTemp());
    const double dt = seconds / samples;
    for (int s = 0; s < samples; ++s) {
        step(watts, dt);
        temps.push_back(dieTemp());
    }
    if (probe) {
        probe->recordWaveform("die_temp_c", "C",
                              static_cast<double>(samples) / seconds,
                              temps);
    }
    return temps;
}

void
ThermalModel::reset()
{
    _temps.assign(_cfg.capacitance.size(), _cfg.ambientC);
}

ThermalConfig
xgene2Thermal()
{
    ThermalConfig cfg;
    cfg.name = "xgene2-package";
    // Server package with a passive sink in a ducted chassis. The total
    // resistance puts an idle chip around 42 C and a stressed chip in
    // the 70-85 C band, mirroring the relative temperatures of Figure 7.
    cfg.capacitance = {25.0, 200.0, 900.0};
    cfg.conductance = {12.0, 8.0, 5.0};
    cfg.ambientC = 28.0;
    return cfg;
}

ThermalConfig
versatileExpressThermal()
{
    ThermalConfig cfg;
    cfg.name = "versatile-express";
    // Bare test chip without a heatsink: high resistance, low mass.
    cfg.capacitance = {4.0, 40.0};
    cfg.conductance = {1.2, 0.35};
    cfg.ambientC = 25.0;
    return cfg;
}

ThermalConfig
athlonX4Thermal()
{
    ThermalConfig cfg;
    cfg.name = "athlon-x4";
    // Desktop package with a tower cooler.
    cfg.capacitance = {30.0, 350.0, 1500.0};
    cfg.conductance = {18.0, 9.0, 6.0};
    cfg.ambientC = 26.0;
    return cfg;
}

} // namespace thermal
} // namespace gest
