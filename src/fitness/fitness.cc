#include "fitness/fitness.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace fitness {

void
Fitness::init(const xml::Element* config)
{
    (void)config;
}

double
DefaultFitness::getFitness(const core::Individual& ind,
                           const isa::InstructionLibrary& lib) const
{
    (void)lib;
    if (ind.measurements.empty())
        fatal("DefaultFitness needs at least one measurement value");
    return ind.measurements.front();
}

void
WeightedSumFitness::init(const xml::Element* config)
{
    if (!config)
        return;
    if (config->hasAttr("weights")) {
        std::vector<double> weights;
        for (const std::string& w :
             splitWhitespace(config->attr("weights")))
            weights.push_back(parseDouble(w, "fitness weight"));
        setWeights(std::move(weights));
    }
}

double
WeightedSumFitness::getFitness(const core::Individual& ind,
                               const isa::InstructionLibrary& lib) const
{
    (void)lib;
    if (ind.measurements.size() < _weights.size())
        fatal("WeightedSumFitness has ", _weights.size(),
              " weights but the measurement produced only ",
              ind.measurements.size(), " values");
    double sum = 0.0;
    for (std::size_t i = 0; i < _weights.size(); ++i)
        sum += _weights[i] * ind.measurements[i];
    return sum;
}

void
WeightedSumFitness::setWeights(std::vector<double> weights)
{
    if (weights.empty())
        fatal("WeightedSumFitness needs at least one weight");
    _weights = std::move(weights);
}

TemperatureSimplicityFitness::TemperatureSimplicityFitness(double idle_temp,
                                                           double max_temp)
    : _idleTemp(idle_temp), _maxTemp(max_temp)
{
    if (max_temp <= idle_temp)
        fatal("TemperatureSimplicityFitness: max temperature ", max_temp,
              " must exceed idle temperature ", idle_temp);
}

void
TemperatureSimplicityFitness::init(const xml::Element* config)
{
    if (!config)
        return;
    if (config->hasAttr("idle_temperature"))
        _idleTemp = parseDouble(config->attr("idle_temperature"),
                                "idle_temperature");
    if (config->hasAttr("max_temperature"))
        _maxTemp = parseDouble(config->attr("max_temperature"),
                               "max_temperature");
    if (_maxTemp <= _idleTemp)
        fatal("TemperatureSimplicityFitness: max temperature ", _maxTemp,
              " must exceed idle temperature ", _idleTemp);
}

double
TemperatureSimplicityFitness::getFitness(
    const core::Individual& ind, const isa::InstructionLibrary& lib) const
{
    (void)lib;
    if (ind.measurements.empty())
        fatal("TemperatureSimplicityFitness needs a temperature "
              "measurement");
    const double measured = ind.measurements.front();
    double temp_score = (measured - _idleTemp) / (_maxTemp - _idleTemp);
    temp_score = std::clamp(temp_score, 0.0, 1.0);

    const double total = static_cast<double>(ind.code.size());
    if (total <= 0.0)
        fatal("TemperatureSimplicityFitness on an empty individual");
    const double unique =
        static_cast<double>(core::uniqueInstructionCount(ind));
    const double simplicity_score = (total - unique) / total;

    return temp_score * 0.5 + simplicity_score * 0.5;
}

FitnessRegistry&
FitnessRegistry::instance()
{
    static FitnessRegistry registry;
    return registry;
}

void
FitnessRegistry::registerFactory(const std::string& name, Factory factory)
{
    if (contains(name))
        fatal("fitness '", name, "' registered twice");
    _factories.emplace_back(name, std::move(factory));
}

std::unique_ptr<Fitness>
FitnessRegistry::create(const std::string& name) const
{
    for (const auto& [registered, factory] : _factories) {
        if (registered == name)
            return factory();
    }
    std::string all;
    for (const std::string& n : names())
        all += (all.empty() ? "" : ", ") + n;
    fatal("unknown fitness class '", name, "'; available: ",
          all.empty() ? "<none>" : all);
}

bool
FitnessRegistry::contains(const std::string& name) const
{
    for (const auto& [registered, factory] : _factories) {
        if (registered == name)
            return true;
    }
    return false;
}

std::vector<std::string>
FitnessRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(_factories.size());
    for (const auto& [name, factory] : _factories)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

void
registerBuiltinFitness()
{
    FitnessRegistry& registry = FitnessRegistry::instance();
    if (registry.contains("DefaultFitness"))
        return;
    registry.registerFactory("DefaultFitness", [] {
        return std::make_unique<DefaultFitness>();
    });
    registry.registerFactory("WeightedSumFitness", [] {
        return std::make_unique<WeightedSumFitness>();
    });
    registry.registerFactory("TemperatureSimplicityFitness", [] {
        return std::make_unique<TemperatureSimplicityFitness>();
    });
}

} // namespace fitness
} // namespace gest
