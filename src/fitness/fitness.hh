/**
 * @file
 * The fitness abstraction (§III.C).
 *
 * A fitness function maps an individual's measurement vector (plus,
 * optionally, properties of its code) to a single score the GA ranks by.
 * The bundled implementations mirror the paper: DefaultFitness takes the
 * first measurement, and TemperatureSimplicityFitness implements
 * Equation 1 — half temperature score, half instruction-stream
 * simplicity. Implementations are selected by name through the
 * FitnessRegistry, like measurements.
 */

#ifndef GEST_FITNESS_FITNESS_HH
#define GEST_FITNESS_FITNESS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/individual.hh"
#include "xml/xml.hh"

namespace gest {
namespace fitness {

/**
 * Fitness-function interface. Implementations must be pure functions of
 * the individual (same input, same score) so GA runs are reproducible.
 */
class Fitness
{
  public:
    virtual ~Fitness() = default;

    /** Consume implementation-specific parameters from XML (optional). */
    virtual void init(const xml::Element* config);

    /**
     * Score an evaluated individual. Called only after the measurement
     * filled individual.measurements.
     */
    virtual double getFitness(const core::Individual& ind,
                              const isa::InstructionLibrary& lib) const
        = 0;

    /** Short identifier used in logs and configs. */
    virtual std::string name() const = 0;
};

/** "The first measurement is the fitness value" (§III.C). */
class DefaultFitness : public Fitness
{
  public:
    double getFitness(const core::Individual& ind,
                      const isa::InstructionLibrary& lib) const override;
    std::string name() const override { return "DefaultFitness"; }
};

/**
 * Weighted sum over the measurement vector; weights come from the XML
 * configuration (attribute `weights`, space-separated).
 */
class WeightedSumFitness : public Fitness
{
  public:
    void init(const xml::Element* config) override;
    double getFitness(const core::Individual& ind,
                      const isa::InstructionLibrary& lib) const override;
    std::string name() const override { return "WeightedSumFitness"; }

    /** Set weights programmatically. */
    void setWeights(std::vector<double> weights);

  private:
    std::vector<double> _weights{1.0};
};

/**
 * Equation 1 of the paper:
 *
 *   F = (M_T - I_T) / (MAX_T - I_T) * 0.5 + (T_I - U_I) / T_I * 0.5
 *
 * where M_T is the measured temperature (the individual's first
 * measurement), I_T the idle temperature, MAX_T the maximum attainable
 * temperature, T_I the total instruction count and U_I the number of
 * unique instructions.
 */
class TemperatureSimplicityFitness : public Fitness
{
  public:
    TemperatureSimplicityFitness() = default;

    /** Programmatic setup. */
    TemperatureSimplicityFitness(double idle_temp, double max_temp);

    /** XML setup: attributes `idle_temperature`, `max_temperature`. */
    void init(const xml::Element* config) override;

    double getFitness(const core::Individual& ind,
                      const isa::InstructionLibrary& lib) const override;
    std::string
    name() const override
    {
        return "TemperatureSimplicityFitness";
    }

  private:
    double _idleTemp = 40.0;
    double _maxTemp = 100.0;
};

/** Name-to-factory registry for fitness functions. */
class FitnessRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Fitness>()>;

    /** The process-wide registry instance. */
    static FitnessRegistry& instance();

    /** Register a factory; fatal() on duplicates. */
    void registerFactory(const std::string& name, Factory factory);

    /** Instantiate by name; fatal() if unknown. */
    std::unique_ptr<Fitness> create(const std::string& name) const;

    /** @return true if @p name is registered. */
    bool contains(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    std::vector<std::pair<std::string, Factory>> _factories;
};

/** Register the bundled fitness functions (idempotent). */
void registerBuiltinFitness();

} // namespace fitness
} // namespace gest

#endif // GEST_FITNESS_FITNESS_HH
