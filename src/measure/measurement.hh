/**
 * @file
 * The measurement abstraction (§III.C).
 *
 * In the Python original, an experimenter scripts a measurement procedure
 * by subclassing Measurement.py (compile the individual, ship it to the
 * target, run it, sample an instrument, return numbers). Here the same
 * role is played by implementations of this interface: simulated targets
 * (power / temperature / IPC / voltage-noise on the bundled platform
 * models) and a native runner that assembles and executes generated code
 * on the host under perf counters. Implementations are registered by name
 * in the MeasurementRegistry, the C++ analog of Python's dynamic class
 * loading: configurations select a measurement by string.
 */

#ifndef GEST_MEASURE_MEASUREMENT_HH
#define GEST_MEASURE_MEASUREMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "xml/xml.hh"

namespace gest {

namespace isa {
class InstructionLibrary;
} // namespace isa

namespace signal {
class SignalProbe;
} // namespace signal

namespace measure {

/**
 * A named vector of numbers produced by measuring one individual. The
 * first value is, by convention, what DefaultFitness optimizes (§III.D:
 * "By default, the first measurement is the fitness value").
 */
struct MeasurementResult
{
    std::vector<double> values;
};

/**
 * Measurement procedure interface.
 */
class Measurement
{
  public:
    virtual ~Measurement() = default;

    /**
     * Consume implementation-specific parameters from the measurement's
     * own XML configuration element (§III.C: measurement parameters live
     * in a separate configuration file). The default accepts none.
     */
    virtual void init(const xml::Element* config);

    /**
     * Measure one individual: run @p code on the target and return the
     * metric vector.
     */
    virtual MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) = 0;

    /**
     * Measure one individual while recording the signals behind the
     * scalar metrics into @p probe — the instrumented re-run a flight
     * recorder or `gest probe` performs. Must return exactly what
     * measure() returns for the same code (capture only observes).
     * The default ignores the probe and calls measure(): measurements
     * without an underlying waveform (e.g. native perf runs) still
     * satisfy the contract, just with an empty capture.
     */
    virtual MeasurementResult measureWithProbe(
        const std::vector<isa::InstructionInstance>& code,
        signal::SignalProbe* probe);

    /**
     * Enable or disable the steady-state evaluation fast path, where
     * the measurement has one (simulated targets). Results must be
     * identical either way; the knob exists for verification and as an
     * escape hatch. The default is a no-op for measurements without a
     * simulator underneath.
     */
    virtual void setSteadyState(bool enabled);

    /** Names of the values measure() returns, in order. */
    virtual std::vector<std::string> valueNames() const = 0;

    /** Short identifier used in logs. */
    virtual std::string name() const = 0;

    /**
     * Duplicate this measurement, configuration included, so each
     * evaluation worker owns a private instance and no mutable state
     * (RNG streams, simulators, scratch buffers) is shared across
     * threads. The default returns nullptr, meaning "not cloneable":
     * such a measurement can only run with threads=1.
     */
    virtual std::unique_ptr<Measurement> clone() const;
};

/**
 * Name-to-factory registry: the C++ analog of the Python framework's
 * dynamic class loading. A factory receives the instruction library the
 * GA searches over (targets need it to decode individuals).
 */
class MeasurementRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Measurement>(
        const isa::InstructionLibrary& lib)>;

    /** The process-wide registry instance. */
    static MeasurementRegistry& instance();

    /** Register a factory; fatal() on duplicate names. */
    void registerFactory(const std::string& name, Factory factory);

    /** Instantiate by name; fatal() if unknown. */
    std::unique_ptr<Measurement> create(
        const std::string& name, const isa::InstructionLibrary& lib) const;

    /** @return true if @p name is registered. */
    bool contains(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    std::vector<std::pair<std::string, Factory>> _factories;
};

} // namespace measure
} // namespace gest

#endif // GEST_MEASURE_MEASUREMENT_HH
