#include "measure/noisy_measurement.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace measure {

NoisyMeasurement::NoisyMeasurement(std::unique_ptr<Measurement> inner,
                                   double relative_sigma,
                                   std::uint64_t seed)
    : _inner(std::move(inner)), _sigma(relative_sigma), _rng(seed)
{
    if (!_inner)
        fatal("NoisyMeasurement needs an inner measurement");
    if (relative_sigma < 0.0)
        fatal("noise sigma must be non-negative, got ", relative_sigma);
}

void
NoisyMeasurement::init(const xml::Element* config)
{
    if (!config)
        return;
    if (config->hasAttr("relative_sigma")) {
        _sigma = parseDouble(config->attr("relative_sigma"),
                             "relative_sigma");
        if (_sigma < 0.0)
            fatal("noise sigma must be non-negative, got ", _sigma);
    }
    if (config->hasAttr("seed"))
        _rng = Rng(static_cast<std::uint64_t>(
            parseInt(config->attr("seed"), "noise seed")));
    _inner->init(config);
}

double
NoisyMeasurement::normalDraw()
{
    // Irwin-Hall: the sum of 12 uniforms has variance 1 around mean 6.
    double sum = 0.0;
    for (int i = 0; i < 12; ++i)
        sum += _rng.nextDouble();
    return sum - 6.0;
}

MeasurementResult
NoisyMeasurement::measure(
    const std::vector<isa::InstructionInstance>& code)
{
    MeasurementResult result = _inner->measure(code);
    for (double& value : result.values)
        value *= 1.0 + _sigma * normalDraw();
    return result;
}

std::vector<std::string>
NoisyMeasurement::valueNames() const
{
    return _inner->valueNames();
}

std::string
NoisyMeasurement::name() const
{
    return "Noisy(" + _inner->name() + ")";
}

std::unique_ptr<Measurement>
NoisyMeasurement::clone() const
{
    std::unique_ptr<Measurement> inner = _inner->clone();
    if (!inner)
        return nullptr;
    // Derive a per-clone seed from the parent's noise state so equal
    // parents produce equal clone families, yet each clone draws its
    // own stream.
    const std::uint64_t seed =
        _rng.state()[0] ^ (++_clones * 0x9e3779b97f4a7c15ULL);
    return std::make_unique<NoisyMeasurement>(std::move(inner), _sigma,
                                              seed);
}

} // namespace measure
} // namespace gest
