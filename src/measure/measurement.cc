#include "measure/measurement.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gest {
namespace measure {

void
Measurement::init(const xml::Element* config)
{
    (void)config;
}

MeasurementResult
Measurement::measureWithProbe(
    const std::vector<isa::InstructionInstance>& code,
    signal::SignalProbe* probe)
{
    (void)probe;
    return measure(code);
}

void
Measurement::setSteadyState(bool enabled)
{
    (void)enabled;
}

std::unique_ptr<Measurement>
Measurement::clone() const
{
    return nullptr;
}

MeasurementRegistry&
MeasurementRegistry::instance()
{
    static MeasurementRegistry registry;
    return registry;
}

void
MeasurementRegistry::registerFactory(const std::string& name,
                                     Factory factory)
{
    if (contains(name))
        fatal("measurement '", name, "' registered twice");
    _factories.emplace_back(name, std::move(factory));
}

std::unique_ptr<Measurement>
MeasurementRegistry::create(const std::string& name,
                            const isa::InstructionLibrary& lib) const
{
    for (const auto& [registered, factory] : _factories) {
        if (registered == name) {
            debug("instantiating measurement '", name, "'");
            return factory(lib);
        }
    }
    fatal("unknown measurement class '", name, "'; available: ",
          [this] {
              std::string all;
              for (const std::string& n : names())
                  all += (all.empty() ? "" : ", ") + n;
              return all.empty() ? std::string("<none>") : all;
          }());
}

bool
MeasurementRegistry::contains(const std::string& name) const
{
    for (const auto& [registered, factory] : _factories) {
        if (registered == name)
            return true;
    }
    return false;
}

std::vector<std::string>
MeasurementRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(_factories.size());
    for (const auto& [name, factory] : _factories)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace measure
} // namespace gest
