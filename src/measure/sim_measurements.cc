#include "measure/sim_measurements.hh"

#include "stats/stats.hh"
#include "thermal/thermal_model.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace measure {

SimMeasurementBase::SimMeasurementBase(
    const isa::InstructionLibrary& lib,
    std::shared_ptr<const platform::Platform> plat)
    : _lib(lib), _platform(std::move(plat))
{}

void
SimMeasurementBase::init(const xml::Element* config)
{
    if (!config)
        return;
    if (config->hasAttr("platform"))
        _platform = platform::Platform::byName(config->attr("platform"));
    if (config->hasAttr("min_cycles")) {
        const std::int64_t cycles =
            parseInt(config->attr("min_cycles"), "min_cycles");
        if (cycles < 256)
            fatal("min_cycles must be at least 256, got ", cycles);
        _minCycles = static_cast<std::uint64_t>(cycles);
    }
    if (config->hasAttr("steady_state")) {
        const std::string& mode = config->attr("steady_state");
        if (mode == "on")
            setSteadyState(true);
        else if (mode == "off")
            setSteadyState(false);
        else
            fatal("steady_state must be 'on' or 'off', got '", mode,
                  "'");
    }
}

const platform::Platform&
SimMeasurementBase::platform() const
{
    if (!_platform)
        fatal("measurement '", name(),
              "' has no platform: pass one programmatically or set the "
              "platform attribute in its configuration");
    return *_platform;
}

MeasurementResult
SimMeasurementBase::measureWithProbe(
    const std::vector<isa::InstructionInstance>& code,
    signal::SignalProbe* probe)
{
    _probe = probe;
    MeasurementResult result;
    try {
        result = measure(code);
    } catch (...) {
        _probe = nullptr;
        throw;
    }
    _probe = nullptr;
    return result;
}

const platform::Evaluation&
SimMeasurementBase::evaluate(
    const std::vector<isa::InstructionInstance>& code,
    bool want_voltage) const
{
    platform::Evaluation& eval = _eval;
    platform().evaluateInto(code, _lib, want_voltage, _minCycles,
                            _probe, _scratch, eval);
    if (stats::enabled()) {
        // Every Sim* measurement funnels through here, so these cover
        // the whole simulated-target family: how much micro-architec-
        // tural work each 5-second "hardware measurement" stands for.
        static stats::Counter& evaluations =
            stats::StatsRegistry::instance().counter(
                "measure.sim.evaluations",
                "simulated-platform measurements");
        static stats::Counter& cycles =
            stats::StatsRegistry::instance().counter(
                "measure.sim.cycles", "simulated cycles");
        static stats::Histogram& ipc =
            stats::StatsRegistry::instance().histogram(
                "measure.sim.ipc", "IPC of measured individuals", 0.0,
                8.0, 32);
        static stats::Counter& steady_hits =
            stats::StatsRegistry::instance().counter(
                "eval.steady_hits",
                "evaluations cut short by the steady-state detector");
        static stats::Counter& cycles_simulated =
            stats::StatsRegistry::instance().counter(
                "eval.cycles_simulated",
                "measured cycles actually stepped");
        static stats::Counter& cycles_tiled =
            stats::StatsRegistry::instance().counter(
                "eval.cycles_tiled",
                "measured cycles covered by exact tiling");
        evaluations.inc();
        cycles.inc(eval.sim.cycles);
        ipc.sample(eval.sim.ipc);
        if (eval.sim.steadyHit())
            steady_hits.inc();
        cycles_simulated.inc(eval.sim.simulatedCycles);
        cycles_tiled.inc(eval.sim.cycles - eval.sim.simulatedCycles);
    }
    return eval;
}

MeasurementResult
SimPowerMeasurement::measure(
    const std::vector<isa::InstructionInstance>& code)
{
    const platform::Evaluation& eval = evaluate(code, false);
    return {{eval.chipPowerWatts, eval.corePowerWatts, eval.ipc}};
}

std::vector<std::string>
SimPowerMeasurement::valueNames() const
{
    return {"avg_chip_power_w", "core_power_w", "ipc"};
}

void
SimTemperatureMeasurement::init(const xml::Element* config)
{
    SimMeasurementBase::init(config);
    if (config && config->hasAttr("transient_seconds"))
        setTransientSeconds(parseDouble(
            config->attr("transient_seconds"), "transient_seconds"));
}

void
SimTemperatureMeasurement::setTransientSeconds(double seconds)
{
    if (seconds < 0.0)
        fatal("transient_seconds must be non-negative, got ", seconds);
    _transientSeconds = seconds;
}

MeasurementResult
SimTemperatureMeasurement::measure(
    const std::vector<isa::InstructionInstance>& code)
{
    const platform::Evaluation& eval = evaluate(code, false);
    double temp = eval.dieTempC;
    if (_transientSeconds > 0.0) {
        // A short sensor poll: heat the ladder from idle for the
        // configured window under the workload's chip power. Leakage
        // is held at its equilibrium value (small second-order error).
        thermal::ThermalModel transient(
            platform().thermalModel().config());
        transient.step(platform().chip().idleWatts, 3600.0); // settle
        transient.step(eval.chipPowerWatts, _transientSeconds);
        temp = transient.dieTemp();
    }
    return {{temp, eval.chipPowerWatts, eval.ipc}};
}

std::vector<std::string>
SimTemperatureMeasurement::valueNames() const
{
    return {"die_temp_c", "avg_chip_power_w", "ipc"};
}

MeasurementResult
SimIpcMeasurement::measure(
    const std::vector<isa::InstructionInstance>& code)
{
    const platform::Evaluation& eval = evaluate(code, false);
    return {{eval.ipc, eval.chipPowerWatts}};
}

std::vector<std::string>
SimIpcMeasurement::valueNames() const
{
    return {"ipc", "avg_chip_power_w"};
}

SimVoltageNoiseMeasurement::SimVoltageNoiseMeasurement(
    const isa::InstructionLibrary& lib,
    std::shared_ptr<const platform::Platform> plat)
    : SimMeasurementBase(lib, std::move(plat))
{
    // Voltage noise needs several resonance periods of settled trace.
    _minCycles = 8192;
}

MeasurementResult
SimVoltageNoiseMeasurement::measure(
    const std::vector<isa::InstructionInstance>& code)
{
    if (!platform().pdnModel())
        fatal("SimVoltageNoiseMeasurement needs a platform with a PDN "
              "model, but '", platform().name(),
              "' has none (use 'athlon-x4', or pick a power/"
              "temperature/IPC measurement for this platform)");
    const platform::Evaluation& eval = evaluate(code, true);
    return {{eval.peakToPeakV, eval.vMin, eval.chipPowerWatts}};
}

std::vector<std::string>
SimVoltageNoiseMeasurement::valueNames() const
{
    return {"peak_to_peak_v", "v_min", "avg_chip_power_w"};
}

SimCacheMissMeasurement::SimCacheMissMeasurement(
    const isa::InstructionLibrary& lib,
    std::shared_ptr<const platform::Platform> plat)
    : SimMeasurementBase(lib, std::move(plat))
{
    // Long-latency misses stretch execution; simulate a longer window
    // so steady-state miss behaviour dominates the cold misses.
    _minCycles = 16384;
}

MeasurementResult
SimCacheMissMeasurement::measure(
    const std::vector<isa::InstructionInstance>& code)
{
    if (!platform().cpu().hasL2)
        fatal("SimCacheMissMeasurement needs a platform with an L2 "
              "model (use 'xgene2-llc')");
    const platform::Evaluation& eval = evaluate(code, false);
    return {{eval.sim.dramPerKiloInstr(), 1.0 - eval.sim.l1HitRate(),
             1.0 - eval.sim.l2HitRate(), eval.ipc,
             eval.chipPowerWatts}};
}

std::vector<std::string>
SimCacheMissMeasurement::valueNames() const
{
    return {"dram_per_kinstr", "l1_miss_rate", "l2_miss_rate", "ipc",
            "avg_chip_power_w"};
}

void
registerSimMeasurements()
{
    MeasurementRegistry& registry = MeasurementRegistry::instance();
    if (registry.contains("SimPowerMeasurement"))
        return;
    registry.registerFactory(
        "SimPowerMeasurement", [](const isa::InstructionLibrary& lib) {
            return std::make_unique<SimPowerMeasurement>(lib);
        });
    registry.registerFactory(
        "SimTemperatureMeasurement",
        [](const isa::InstructionLibrary& lib) {
            return std::make_unique<SimTemperatureMeasurement>(lib);
        });
    registry.registerFactory(
        "SimIpcMeasurement", [](const isa::InstructionLibrary& lib) {
            return std::make_unique<SimIpcMeasurement>(lib);
        });
    registry.registerFactory(
        "SimVoltageNoiseMeasurement",
        [](const isa::InstructionLibrary& lib) {
            return std::make_unique<SimVoltageNoiseMeasurement>(lib);
        });
    registry.registerFactory(
        "SimCacheMissMeasurement",
        [](const isa::InstructionLibrary& lib) {
            return std::make_unique<SimCacheMissMeasurement>(lib);
        });
}

} // namespace measure
} // namespace gest
