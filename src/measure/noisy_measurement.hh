/**
 * @file
 * Measurement-noise decorator.
 *
 * §IV of the paper: "optimizing on single core has the advantage of
 * less measurement variability which helps the GA optimization to
 * converge faster. This is especially true when runs are conducted
 * within an OS environment." This decorator wraps any measurement and
 * adds multiplicative Gaussian noise, so that claim can be studied
 * quantitatively (see bench_ablation_noise): the same search converges
 * slower and to worse results as variability grows.
 */

#ifndef GEST_MEASURE_NOISY_MEASUREMENT_HH
#define GEST_MEASURE_NOISY_MEASUREMENT_HH

#include <memory>

#include "measure/measurement.hh"
#include "util/random.hh"

namespace gest {
namespace measure {

/**
 * Wraps a measurement, scaling every returned value by a factor of
 * (1 + e) with e drawn from an approximately normal distribution of the
 * configured relative standard deviation. Deterministic for a given
 * seed, so noisy experiments remain reproducible.
 */
class NoisyMeasurement : public Measurement
{
  public:
    /**
     * @param inner measurement to decorate (owned)
     * @param relative_sigma relative standard deviation, e.g. 0.05
     * @param seed noise stream seed
     */
    NoisyMeasurement(std::unique_ptr<Measurement> inner,
                     double relative_sigma, std::uint64_t seed = 12345);

    /** XML attributes: `relative_sigma`, `seed`. */
    void init(const xml::Element* config) override;

    MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) override;

    std::vector<std::string> valueNames() const override;

    std::string name() const override;

    /** Forward the steady-state knob to the wrapped measurement. */
    void
    setSteadyState(bool enabled) override
    {
        _inner->setSteadyState(enabled);
    }

    /**
     * Clone for a parallel-evaluation worker: same sigma, a clone of
     * the inner measurement, and an independent deterministic noise
     * stream (successive clones of one parent draw distinct streams).
     * Noisy runs therefore stay reproducible for a fixed thread count
     * but, unlike pure measurements, sample different noise when the
     * thread count changes. nullptr if the inner measurement is not
     * cloneable.
     */
    std::unique_ptr<Measurement> clone() const override;

    /** The wrapped measurement. */
    const Measurement& inner() const { return *_inner; }

    /** Configured relative standard deviation. */
    double relativeSigma() const { return _sigma; }

  private:
    /** Approximately standard-normal draw (Irwin-Hall, 12 uniforms). */
    double normalDraw();

    std::unique_ptr<Measurement> _inner;
    double _sigma;
    Rng _rng;

    /** Clones handed out so far; keys each clone's derived seed. */
    mutable std::uint64_t _clones = 0;
};

} // namespace measure
} // namespace gest

#endif // GEST_MEASURE_NOISY_MEASUREMENT_HH
