/**
 * @file
 * Measurements against the simulated platforms.
 *
 * These are the counterparts of the paper's measurement scripts: the ARM
 * energy probe (power), the i2c temperature sensor, the perf IPC reader
 * and the oscilloscope peak-to-peak voltage capture. Each either receives
 * its platform programmatically or resolves it from its XML configuration
 * (`platform="cortex-a15"`), mirroring how the Python framework keeps
 * measurement parameters in a separate configuration file.
 */

#ifndef GEST_MEASURE_SIM_MEASUREMENTS_HH
#define GEST_MEASURE_SIM_MEASUREMENTS_HH

#include <memory>

#include "measure/measurement.hh"
#include "platform/platform.hh"

namespace gest {
namespace measure {

/** Common plumbing: platform resolution and simulation length. */
class SimMeasurementBase : public Measurement
{
  public:
    SimMeasurementBase(
        const isa::InstructionLibrary& lib,
        std::shared_ptr<const platform::Platform> plat = nullptr);

    /**
     * XML attributes: `platform` (preset name, required unless the
     * platform was passed programmatically), `min_cycles` and
     * `steady_state` ("on"/"off", default on: the bit-identical
     * periodic-trace fast path).
     */
    void init(const xml::Element* config) override;

    /** Toggle the steady-state fast path (results are identical). */
    void
    setSteadyState(bool enabled) override
    {
        _scratch.steadyState = enabled;
    }

    /** Whether the steady-state fast path is enabled. */
    bool steadyState() const { return _scratch.steadyState; }

    /** The platform measured against; fatal() if none configured. */
    const platform::Platform& platform() const;

    /**
     * All Sim* measurements funnel through one platform evaluation,
     * so full capture is implemented once: the probe is handed to
     * Platform::evaluate for the duration of the subclass's measure().
     */
    MeasurementResult measureWithProbe(
        const std::vector<isa::InstructionInstance>& code,
        signal::SignalProbe* probe) override;

  protected:
    /**
     * Run the full platform evaluation for a loop body. The returned
     * reference points into this measurement's scratch arena and stays
     * valid until the next evaluate() call — long enough for every
     * measure() to pull its scalars out. Reusing the arena keeps the
     * GA hot loop allocation-free after warm-up.
     */
    const platform::Evaluation& evaluate(
        const std::vector<isa::InstructionInstance>& code,
        bool want_voltage) const;

    const isa::InstructionLibrary& _lib;
    std::shared_ptr<const platform::Platform> _platform;
    std::uint64_t _minCycles = 4096;

  private:
    /** Active capture sink during measureWithProbe(); else null. */
    signal::SignalProbe* _probe = nullptr;

    /** Per-instance buffers; clones get their own copies. */
    mutable platform::EvalScratch _scratch;
    mutable platform::Evaluation _eval;
};

/** Average power, the ARM-energy-probe analog (Figures 5 and 6). */
class SimPowerMeasurement : public SimMeasurementBase
{
  public:
    using SimMeasurementBase::SimMeasurementBase;
    MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) override;
    std::vector<std::string> valueNames() const override;
    std::string name() const override { return "SimPowerMeasurement"; }

    std::unique_ptr<Measurement>
    clone() const override
    {
        return std::make_unique<SimPowerMeasurement>(*this);
    }
};

/** Die temperature, the i2c-sensor analog (Figure 7). */
class SimTemperatureMeasurement : public SimMeasurementBase
{
  public:
    using SimMeasurementBase::SimMeasurementBase;

    /**
     * Extra XML attribute `transient_seconds`: when positive, report
     * the die temperature after running the workload for that many
     * seconds from the idle state (what an i2c sensor poll sees during
     * a short measurement window) instead of the settled equilibrium.
     */
    void init(const xml::Element* config) override;

    MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) override;
    std::vector<std::string> valueNames() const override;
    std::string
    name() const override
    {
        return "SimTemperatureMeasurement";
    }

    std::unique_ptr<Measurement>
    clone() const override
    {
        return std::make_unique<SimTemperatureMeasurement>(*this);
    }

    /** Set the transient window programmatically (0 = steady state). */
    void setTransientSeconds(double seconds);

  private:
    double _transientSeconds = 0.0;
};

/** IPC, the Linux-perf analog (the X-Gene2 IPC virus). */
class SimIpcMeasurement : public SimMeasurementBase
{
  public:
    using SimMeasurementBase::SimMeasurementBase;
    MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) override;
    std::vector<std::string> valueNames() const override;
    std::string name() const override { return "SimIpcMeasurement"; }

    std::unique_ptr<Measurement>
    clone() const override
    {
        return std::make_unique<SimIpcMeasurement>(*this);
    }
};

/** Peak-to-peak voltage noise, the oscilloscope analog (§VI). */
class SimVoltageNoiseMeasurement : public SimMeasurementBase
{
  public:
    SimVoltageNoiseMeasurement(
        const isa::InstructionLibrary& lib,
        std::shared_ptr<const platform::Platform> plat = nullptr);
    MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) override;
    std::vector<std::string> valueNames() const override;
    std::string
    name() const override
    {
        return "SimVoltageNoiseMeasurement";
    }

    std::unique_ptr<Measurement>
    clone() const override
    {
        return std::make_unique<SimVoltageNoiseMeasurement>(*this);
    }
};

/**
 * Cache-miss / DRAM-traffic measurement for the LLC stress extension
 * (§VII): the fitness-driving first value is DRAM accesses (L2 misses)
 * per thousand instructions. Requires a platform with an L2 model.
 */
class SimCacheMissMeasurement : public SimMeasurementBase
{
  public:
    SimCacheMissMeasurement(
        const isa::InstructionLibrary& lib,
        std::shared_ptr<const platform::Platform> plat = nullptr);
    MeasurementResult measure(
        const std::vector<isa::InstructionInstance>& code) override;
    std::vector<std::string> valueNames() const override;
    std::string
    name() const override
    {
        return "SimCacheMissMeasurement";
    }

    std::unique_ptr<Measurement>
    clone() const override
    {
        return std::make_unique<SimCacheMissMeasurement>(*this);
    }
};

/** Register the five simulated measurements (idempotent). */
void registerSimMeasurements();

} // namespace measure
} // namespace gest

#endif // GEST_MEASURE_SIM_MEASUREMENTS_HH
