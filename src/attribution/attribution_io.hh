/**
 * @file
 * Attribution artifact I/O: the `# gest-attribution v1` CSV and its
 * JSON twin (docs/attribution.md, "Artifact format").
 *
 * The CSV leads with `# annotation <key> <value>` comment lines
 * (individual id, baseline fitness, the delta sums, evaluation count)
 * and a `# filler` line naming the substitute instruction, then one
 * row per gene. The JSON twin additionally carries the per-class and
 * per-operand-bin aggregates and the top-K index list. Both render
 * doubles at %.17g so a reader can round-trip them exactly;
 * tools/check_attribution.py validates the schema end to end.
 */

#ifndef GEST_ATTRIBUTION_ATTRIBUTION_IO_HH
#define GEST_ATTRIBUTION_ATTRIBUTION_IO_HH

#include <string>

#include "attribution/attribution.hh"

namespace gest {
namespace attribution {

/** Attribution CSV format version written by this build. */
constexpr int attributionCsvVersion = 1;

/** Paths written by writeAttributionArtifacts(). */
struct AttributionArtifacts
{
    std::string csvPath;
    std::string jsonPath;
};

/** Render @p result as the `# gest-attribution v1` CSV. */
std::string formatAttributionCsv(const AttributionResult& result);

/** Render @p result as the JSON twin. */
std::string formatAttributionJson(const AttributionResult& result);

/**
 * Write `<dir>/<basename>.csv` and `<dir>/<basename>.json` (the
 * directory is created if absent) and return both paths.
 */
AttributionArtifacts writeAttributionArtifacts(
    const std::string& dir, const std::string& basename,
    const AttributionResult& result);

} // namespace attribution
} // namespace gest

#endif // GEST_ATTRIBUTION_ATTRIBUTION_IO_HH
