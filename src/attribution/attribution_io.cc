#include "attribution/attribution_io.hh"

#include <cstdio>

#include "util/fileutil.hh"

namespace gest {
namespace attribution {

namespace {

std::string
g17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
formatAttributionCsv(const AttributionResult& result)
{
    std::string out;
    out += "# gest-attribution v" +
           std::to_string(attributionCsvVersion) + "\n";
    out += "# annotation individual_id " +
           std::to_string(result.individualId) + "\n";
    if (result.generation >= 0)
        out += "# annotation generation " +
               std::to_string(result.generation) + "\n";
    out += "# annotation baseline_fitness " +
           g17(result.baselineFitness) + "\n";
    out += "# annotation sum_delta " + g17(result.sumDelta) + "\n";
    out += "# annotation whole_ablation_delta " +
           g17(result.wholeAblationDelta) + "\n";
    out += "# annotation evaluations " +
           std::to_string(result.evaluationsUsed) + "\n";
    out += "# annotation genes " + std::to_string(result.genes.size()) +
           "\n";
    out += "# filler " + result.fillerInstruction + " strategy " +
           (result.fillerIsNop ? "nop" : "same-class") + "\n";
    out += "gene,instruction,class,operands,delta_fitness,"
           "fitness_without\n";
    for (const GeneAttribution& g : result.genes) {
        out += std::to_string(g.index) + "," + g.instruction + "," +
               classToken(g.cls) + "," + g.operands + "," +
               g17(g.deltaFitness) + "," + g17(g.fitnessWithout) + "\n";
    }
    return out;
}

std::string
formatAttributionJson(const AttributionResult& result)
{
    std::string out = "{\n";
    out += "  \"version\": " + std::to_string(attributionCsvVersion) +
           ",\n";
    out += "  \"individual_id\": " +
           std::to_string(result.individualId) + ",\n";
    out += "  \"generation\": " + std::to_string(result.generation) +
           ",\n";
    out += "  \"baseline_fitness\": " + g17(result.baselineFitness) +
           ",\n";
    out += "  \"filler\": {\"instruction\": \"" +
           result.fillerInstruction + "\", \"strategy\": \"" +
           (result.fillerIsNop ? "nop" : "same-class") + "\"},\n";
    out += "  \"sum_delta\": " + g17(result.sumDelta) + ",\n";
    out += "  \"whole_ablation_delta\": " +
           g17(result.wholeAblationDelta) + ",\n";
    out += "  \"evaluations\": " +
           std::to_string(result.evaluationsUsed) + ",\n";

    out += "  \"genes\": [";
    for (std::size_t i = 0; i < result.genes.size(); ++i) {
        const GeneAttribution& g = result.genes[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"gene\": " + std::to_string(g.index) +
               ", \"instruction\": \"" + g.instruction +
               "\", \"class\": \"" + classToken(g.cls) +
               "\", \"operands\": \"" + g.operands +
               "\", \"delta_fitness\": " + g17(g.deltaFitness) +
               ", \"fitness_without\": " + g17(g.fitnessWithout) + "}";
    }
    out += result.genes.empty() ? "],\n" : "\n  ],\n";

    out += "  \"classes\": [";
    for (std::size_t i = 0; i < result.classes.size(); ++i) {
        const ClassAttribution& c = result.classes[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"class\": \"" + std::string(classToken(c.cls)) +
               "\", \"genes\": " + std::to_string(c.genes) +
               ", \"delta_sum\": " + g17(c.deltaSum) + "}";
    }
    out += result.classes.empty() ? "],\n" : "\n  ],\n";

    out += "  \"operand_bins\": [";
    for (std::size_t i = 0; i < result.operandBins.size(); ++i) {
        const OperandBinAttribution& b = result.operandBins[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"bin\": \"" + b.key +
               "\", \"genes\": " + std::to_string(b.genes) +
               ", \"delta_sum\": " + g17(b.deltaSum) + "}";
    }
    out += result.operandBins.empty() ? "],\n" : "\n  ],\n";

    out += "  \"top_genes\": [";
    for (std::size_t i = 0; i < result.topGenes.size(); ++i) {
        out += i == 0 ? "" : ", ";
        out += std::to_string(result.topGenes[i]);
    }
    out += "]\n}\n";
    return out;
}

AttributionArtifacts
writeAttributionArtifacts(const std::string& dir,
                          const std::string& basename,
                          const AttributionResult& result)
{
    ensureDir(dir);
    AttributionArtifacts artifacts;
    artifacts.csvPath = dir + "/" + basename + ".csv";
    artifacts.jsonPath = dir + "/" + basename + ".json";
    writeFile(artifacts.csvPath, formatAttributionCsv(result));
    writeFile(artifacts.jsonPath, formatAttributionJson(result));
    return artifacts;
}

} // namespace attribution
} // namespace gest
