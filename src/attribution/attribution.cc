#include "attribution/attribution.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "stats/stats.hh"
#include "util/logging.hh"

namespace gest {
namespace attribution {

namespace {

struct AttributionStats
{
    stats::Counter& runs;
    stats::Counter& evaluations;
};

AttributionStats&
attributionStats()
{
    static AttributionStats s{
        stats::StatsRegistry::instance().counter(
            "attribution.runs", "individuals attributed by ablation"),
        stats::StatsRegistry::instance().counter(
            "attribution.evaluations",
            "re-measurements spent on ablation attribution"),
    };
    return s;
}

} // namespace

const char*
classToken(isa::InstrClass cls)
{
    switch (cls) {
      case isa::InstrClass::ShortInt:
        return "short_int";
      case isa::InstrClass::LongInt:
        return "long_int";
      case isa::InstrClass::FloatSimd:
        return "float_simd";
      case isa::InstrClass::Mem:
        return "mem";
      case isa::InstrClass::Branch:
        return "branch";
      case isa::InstrClass::Nop:
        return "nop";
    }
    return "unknown";
}

int
fillerDefIndex(const isa::InstructionLibrary& lib, isa::InstrClass cls)
{
    int same_class = -1;
    std::size_t same_class_slots = 0;
    for (std::size_t i = 0; i < lib.numInstructions(); ++i) {
        const isa::InstructionDef& def = lib.instruction(i);
        if (def.cls == isa::InstrClass::Nop)
            return static_cast<int>(i);
        if (def.cls != cls)
            continue;
        if (same_class < 0 ||
            def.operandIndex.size() < same_class_slots) {
            same_class = static_cast<int>(i);
            same_class_slots = def.operandIndex.size();
        }
    }
    return same_class;
}

isa::InstructionInstance
fillerFor(const isa::InstructionLibrary& lib,
          const isa::InstructionInstance& inst)
{
    const isa::InstructionDef& def = lib.instruction(inst.defIndex);
    const int filler = fillerDefIndex(lib, def.cls);
    if (filler < 0)
        panic("fillerFor on an empty instruction library");
    isa::InstructionInstance out;
    out.defIndex = static_cast<std::uint32_t>(filler);
    // Lowest value per slot: a fixed choice keeps ablation
    // deterministic and the decoded stream of the other genes
    // untouched (decode is per-instruction, the body length is
    // unchanged).
    out.operandChoice.assign(
        lib.instruction(out.defIndex).operandIndex.size(), 0);
    return out;
}

AttributionResult
computeAttribution(const isa::InstructionLibrary& lib,
                   measure::Measurement& measurement,
                   fitness::Fitness& fitness,
                   const core::Individual& ind,
                   const AttributionOptions& options)
{
    AttributionResult result;
    result.individualId = ind.id;
    if (ind.code.empty())
        return result;

    const int filler_def =
        fillerDefIndex(lib, lib.instruction(ind.code[0].defIndex).cls);
    if (filler_def >= 0) {
        result.fillerInstruction =
            lib.instruction(static_cast<std::size_t>(filler_def)).name;
        result.fillerIsNop =
            lib.instruction(static_cast<std::size_t>(filler_def)).cls ==
            isa::InstrClass::Nop;
    }

    core::Individual probe;
    probe.id = ind.id;
    auto eval = [&](const std::vector<isa::InstructionInstance>& code) {
        probe.code = code;
        probe.measurements = measurement.measure(code).values;
        probe.evaluated = true;
        ++result.evaluationsUsed;
        return fitness.getFitness(probe, lib);
    };

    result.baselineFitness = eval(ind.code);

    std::array<ClassAttribution, isa::numInstrClasses> by_class{};
    std::map<std::string, OperandBinAttribution> by_bin;
    std::vector<isa::InstructionInstance> body = ind.code;
    for (std::size_t i = 0; i < ind.code.size(); ++i) {
        const isa::InstructionInstance& gene = ind.code[i];
        const isa::InstructionDef& def = lib.instruction(gene.defIndex);

        GeneAttribution g;
        g.index = i;
        g.instruction = def.name;
        g.cls = def.cls;
        for (std::size_t s = 0; s < gene.operandChoice.size(); ++s) {
            if (s > 0)
                g.operands += ' ';
            g.operands += lib.operand(def.operandIndex[s])
                              .renderValue(gene.operandChoice[s]);
        }

        const isa::InstructionInstance filler = fillerFor(lib, gene);
        if (filler == gene) {
            // The gene already is the filler: ablating it is a no-op,
            // so the re-measurement is free.
            g.fitnessWithout = result.baselineFitness;
        } else {
            body[i] = filler;
            g.fitnessWithout = eval(body);
            body[i] = gene;
        }
        g.deltaFitness = result.baselineFitness - g.fitnessWithout;
        result.sumDelta += g.deltaFitness;

        ClassAttribution& cagg = by_class[static_cast<int>(def.cls)];
        cagg.cls = def.cls;
        ++cagg.genes;
        cagg.deltaSum += g.deltaFitness;
        for (std::size_t s = 0; s < gene.operandChoice.size(); ++s) {
            const isa::OperandDef& op = lib.operand(def.operandIndex[s]);
            const std::string key =
                def.name + "/op" + std::to_string(s + 1) + "=" +
                isa::operandBinLabel(
                    op, isa::operandBin(op, gene.operandChoice[s]));
            OperandBinAttribution& bagg = by_bin[key];
            bagg.key = key;
            ++bagg.genes;
            bagg.deltaSum += g.deltaFitness;
        }

        result.genes.push_back(std::move(g));
    }

    // Whole-champion ablation: how far the additive per-gene story can
    // be trusted (interaction effects show up as the difference).
    std::vector<isa::InstructionInstance> ablated = ind.code;
    bool any_replaced = false;
    for (isa::InstructionInstance& gene : ablated) {
        const isa::InstructionInstance filler = fillerFor(lib, gene);
        if (!(filler == gene)) {
            gene = filler;
            any_replaced = true;
        }
    }
    result.wholeAblationDelta =
        any_replaced ? result.baselineFitness - eval(ablated) : 0.0;

    for (const ClassAttribution& cagg : by_class) {
        if (cagg.genes > 0)
            result.classes.push_back(cagg);
    }
    for (const auto& [key, bagg] : by_bin)
        result.operandBins.push_back(bagg);

    std::vector<std::size_t> order(result.genes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const double da =
                      std::fabs(result.genes[a].deltaFitness);
                  const double db =
                      std::fabs(result.genes[b].deltaFitness);
                  if (da != db)
                      return da > db;
                  return a < b;
              });
    const std::size_t top_k =
        options.topK < 0 ? 0
                         : std::min<std::size_t>(
                               static_cast<std::size_t>(options.topK),
                               order.size());
    result.topGenes.assign(order.begin(), order.begin() + top_k);

    attributionStats().runs.inc();
    attributionStats().evaluations.inc(result.evaluationsUsed);
    return result;
}

} // namespace attribution
} // namespace gest
