/**
 * @file
 * The search-space coverage ledger (docs/attribution.md, "Coverage").
 *
 * The GA's search space is the set of (instruction definition ×
 * operand value-bin) cells — one cell per register choice, one per
 * immediate bin (isa::operandBin), one for an operand-less definition.
 * The ledger is an atomic bitmap over that universe: every gene of
 * every evaluated generation touches its cells (one relaxed fetch_or
 * per new cell, a plain load otherwise), so by the end of a run it
 * answers "what did the GA never try?" exactly.
 *
 * Wiring follows the other observers: Engine::addGenerationObserver
 * drives onGenerationEvaluated on the coordinator thread — const views
 * only, never the RNG, so run artifacts are bit-identical with the
 * ledger on or off. Atomics exist for the telemetry server's HTTP
 * workers, which may render coverageJson() concurrently. Each observed
 * generation appends a row to the `# gest-coverage v1` CSV (when a
 * path is set), refreshes the coverage.* gauges and notifies the
 * generation listener (the run driver forwards it to the telemetry
 * service).
 */

#ifndef GEST_ATTRIBUTION_COVERAGE_HH
#define GEST_ATTRIBUTION_COVERAGE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "isa/library.hh"

namespace gest {
namespace attribution {

/** Coverage CSV format version written by this build. */
constexpr int coverageCsvVersion = 1;

class CoverageLedger
{
  public:
    /** Per-class slice of the universe. */
    struct ClassCoverage
    {
        std::uint64_t seen = 0;
        std::uint64_t total = 0;
    };

    /** Cumulative state after one observed generation. */
    struct Snapshot
    {
        int generation = -1;
        std::uint64_t cellsSeen = 0;
        std::uint64_t cellsTotal = 0;
        std::uint64_t newCells = 0;  ///< first touched this generation
        std::uint64_t touches = 0;   ///< cell touches this generation
        double saturationPct = 0.0;  ///< 100 * seen / total
        double noveltyRate = 0.0;    ///< newCells / touches
        std::array<ClassCoverage, isa::numInstrClasses> classes{};
    };

    /** @param lib must outlive the ledger. */
    explicit CoverageLedger(const isa::InstructionLibrary& lib);

    std::uint64_t cellsTotal() const { return _cellsTotal; }

    std::uint64_t
    cellsSeen() const
    {
        return _cellsSeen.load(std::memory_order_relaxed);
    }

    /**
     * Touch every cell @p code references. @return cells first seen by
     * this call; @p touches (optional) accumulates the touch count.
     */
    std::uint64_t observe(
        const std::vector<isa::InstructionInstance>& code,
        std::uint64_t* touches = nullptr);

    /**
     * Ingest one evaluated generation: observe every individual,
     * update the coverage.* stats, append the CSV row and notify the
     * listener. Coordinator thread only.
     */
    void onGenerationEvaluated(const core::Population& pop,
                               const core::GenerationRecord& record);

    /** The observer for Engine::addGenerationObserver. */
    core::Engine::GenerationCallback observer();

    /** Append per-generation rows to @p path (empty: no CSV). */
    void setCsvPath(std::string path) { _csvPath = std::move(path); }

    const std::string& csvPath() const { return _csvPath; }

    /** Called after each observed generation (coordinator thread). */
    void setGenerationListener(std::function<void(const Snapshot&)> fn)
    {
        _listener = std::move(fn);
    }

    /**
     * Current cumulative state; safe from any thread (per-generation
     * fields describe the last generation sealed by the coordinator).
     */
    Snapshot snapshot() const;

    /** snapshot() rendered as the /coverage JSON payload. */
    std::string coverageJson() const;

  private:
    /** One operand slot's cell range. */
    struct SlotCells
    {
        std::uint32_t cellBase = 0;
        std::uint32_t operandIndex = 0;
    };

    /** One instruction definition's cell range. */
    struct DefCells
    {
        std::uint32_t base = 0;      ///< first cell
        std::uint32_t count = 0;     ///< cells owned by this def
        std::uint32_t firstSlot = 0; ///< index into _slots
        std::uint32_t numSlots = 0;
        isa::InstrClass cls = isa::InstrClass::Nop;
    };

    bool touch(std::uint64_t cell, isa::InstrClass cls);

    const isa::InstructionLibrary& _lib;
    std::vector<DefCells> _defs;
    std::vector<SlotCells> _slots;
    std::uint64_t _cellsTotal = 0;
    std::array<std::uint64_t, isa::numInstrClasses> _classTotal{};

    std::vector<std::atomic<std::uint64_t>> _bits;
    std::atomic<std::uint64_t> _cellsSeen{0};
    std::array<std::atomic<std::uint64_t>, isa::numInstrClasses>
        _classSeen{};

    // Last sealed generation (coordinator-written, reader-raced only
    // through snapshot()'s atomics-free copies — benign staleness).
    std::atomic<int> _lastGeneration{-1};
    std::atomic<std::uint64_t> _lastNewCells{0};
    std::atomic<std::uint64_t> _lastTouches{0};

    std::string _csvPath;
    bool _csvStarted = false;
    std::function<void(const Snapshot&)> _listener;
};

/** Render @p snapshot as the /coverage JSON payload. */
std::string formatCoverageJson(const CoverageLedger::Snapshot& snapshot);

} // namespace attribution
} // namespace gest

#endif // GEST_ATTRIBUTION_COVERAGE_HH
