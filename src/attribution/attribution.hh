/**
 * @file
 * Fitness attribution by gene ablation (docs/attribution.md).
 *
 * The paper explains its evolved viruses by dissecting their
 * instruction composition (the Table III/IV class breakdowns); this
 * module makes that dissection quantitative. A champion's fitness is
 * attributed to its genes by re-measuring the individual with each
 * gene, in turn, replaced by a class-neutral filler and recording the
 * fitness drop: Δfitness(i) = fitness(champion) - fitness(champion
 * with gene i ablated). Per-gene deltas aggregate into per-InstrClass
 * and per-operand-bin sums, and a whole-champion ablation (every gene
 * replaced at once) bounds how much of the fitness the additive
 * per-gene story can explain.
 *
 * The filler is the library's NOP where one exists (all bundled
 * libraries register one); a NOP-less user library falls back to the
 * gene's own class with the fewest operand slots. Either way the
 * substitution is 1-for-1 — the body length, and therefore loop
 * tiling, alignment and the surrounding genes' decoded stream, is
 * unperturbed (a property test pins this down).
 *
 * Everything here is read-only with respect to the GA: attribution
 * runs on a caller-supplied (ideally private-clone) measurement after
 * the search, costs genes+2 evaluations at most — NOP genes ablate to
 * themselves and are free — and is deterministic for simulated
 * measurements.
 */

#ifndef GEST_ATTRIBUTION_ATTRIBUTION_HH
#define GEST_ATTRIBUTION_ATTRIBUTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/individual.hh"
#include "fitness/fitness.hh"
#include "isa/library.hh"
#include "measure/measurement.hh"

namespace gest {
namespace attribution {

/** Knobs for computeAttribution(). */
struct AttributionOptions
{
    /** Entries kept in AttributionResult::topGenes. */
    int topK = 5;
};

/** One gene's share of the champion's fitness. */
struct GeneAttribution
{
    std::size_t index = 0;        ///< position in the loop body
    std::string instruction;      ///< definition name
    std::string operands;         ///< rendered values, space-separated
    isa::InstrClass cls = isa::InstrClass::Nop;
    double fitnessWithout = 0.0;  ///< fitness with this gene ablated
    double deltaFitness = 0.0;    ///< baseline - fitnessWithout
};

/** Summed deltas of all genes of one instruction class. */
struct ClassAttribution
{
    isa::InstrClass cls = isa::InstrClass::Nop;
    int genes = 0;
    double deltaSum = 0.0;
};

/** Summed deltas of all genes sharing one (slot, value-bin) cell. */
struct OperandBinAttribution
{
    std::string key;  ///< "<instruction>/op<slot>=<bin label>"
    int genes = 0;
    double deltaSum = 0.0;
};

/** Everything one attribution pass produces. */
struct AttributionResult
{
    std::uint64_t individualId = 0;
    int generation = -1;  ///< -1 when the source carries none
    double baselineFitness = 0.0;

    std::string fillerInstruction;  ///< filler definition name
    bool fillerIsNop = true;        ///< false: same-class fallback

    double sumDelta = 0.0;           ///< Σ per-gene Δfitness
    double wholeAblationDelta = 0.0; ///< baseline - all-genes-ablated
    std::uint64_t evaluationsUsed = 0;

    std::vector<GeneAttribution> genes;
    std::vector<ClassAttribution> classes;  ///< classes present only
    std::vector<OperandBinAttribution> operandBins;

    /** Gene indices by |Δfitness| descending, at most options.topK. */
    std::vector<std::size_t> topGenes;
};

/** InstrClass → artifact-safe token ("short_int", "float_simd", ...). */
const char* classToken(isa::InstrClass cls);

/**
 * Index of the class-neutral filler definition for a gene of class
 * @p cls: the library's first Nop-class definition, else the
 * fewest-operand definition of @p cls itself. @return -1 only for an
 * empty library.
 */
int fillerDefIndex(const isa::InstructionLibrary& lib,
                   isa::InstrClass cls);

/** The concrete filler instance substituted for @p inst. */
isa::InstructionInstance fillerFor(const isa::InstructionLibrary& lib,
                                   const isa::InstructionInstance& inst);

/**
 * Ablate @p ind gene by gene on @p measurement and attribute its
 * fitness. The measurement should be private to the caller (a
 * Measurement::clone of the run's instrument): attribution re-measures
 * through the normal measure() path, so the steady-state fast path and
 * its zero-alloc scratch are reused, but any internal measurement
 * state is the caller's to isolate.
 */
AttributionResult computeAttribution(const isa::InstructionLibrary& lib,
                                     measure::Measurement& measurement,
                                     fitness::Fitness& fitness,
                                     const core::Individual& ind,
                                     const AttributionOptions& options =
                                         AttributionOptions());

} // namespace attribution
} // namespace gest

#endif // GEST_ATTRIBUTION_ATTRIBUTION_HH
