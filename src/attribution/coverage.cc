#include "attribution/coverage.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "attribution/attribution.hh"
#include "core/population.hh"
#include "stats/stats.hh"
#include "util/logging.hh"

namespace gest {
namespace attribution {

namespace {

struct CoverageStats
{
    stats::Gauge& cellsSeen;
    stats::Gauge& cellsTotal;
    stats::Gauge& saturationPct;
    stats::Counter& novelCells;
    stats::Counter& touches;
};

CoverageStats&
coverageStats()
{
    static CoverageStats s{
        stats::StatsRegistry::instance().gauge(
            "coverage.cells_seen",
            "search-space cells evaluated so far"),
        stats::StatsRegistry::instance().gauge(
            "coverage.cells_total",
            "size of the instruction x operand-bin universe"),
        stats::StatsRegistry::instance().gauge(
            "coverage.saturation_pct",
            "percentage of the search space evaluated"),
        stats::StatsRegistry::instance().counter(
            "coverage.novel_cells",
            "cells seen for the first time"),
        stats::StatsRegistry::instance().counter(
            "coverage.touches", "cell touches observed"),
    };
    return s;
}

} // namespace

CoverageLedger::CoverageLedger(const isa::InstructionLibrary& lib)
    : _lib(lib)
{
    // Lay the universe out def by def, slot by slot: an operand-less
    // definition owns a single cell, an operand slot owns one cell per
    // value bin.
    for (std::size_t d = 0; d < lib.numInstructions(); ++d) {
        const isa::InstructionDef& def = lib.instruction(d);
        DefCells dc;
        dc.base = static_cast<std::uint32_t>(_cellsTotal);
        dc.firstSlot = static_cast<std::uint32_t>(_slots.size());
        dc.numSlots =
            static_cast<std::uint32_t>(def.operandIndex.size());
        dc.cls = def.cls;
        if (def.operandIndex.empty()) {
            dc.count = 1;
        } else {
            for (std::uint32_t op_index : def.operandIndex) {
                SlotCells slot;
                slot.cellBase =
                    static_cast<std::uint32_t>(_cellsTotal) + dc.count;
                slot.operandIndex = op_index;
                _slots.push_back(slot);
                dc.count += static_cast<std::uint32_t>(
                    isa::operandBinCount(lib.operand(op_index)));
            }
        }
        _classTotal[static_cast<int>(def.cls)] += dc.count;
        _cellsTotal += dc.count;
        _defs.push_back(dc);
    }
    _bits = std::vector<std::atomic<std::uint64_t>>(
        (_cellsTotal + 63) / 64);
    for (std::atomic<std::uint64_t>& word : _bits)
        word.store(0, std::memory_order_relaxed);
}

bool
CoverageLedger::touch(std::uint64_t cell, isa::InstrClass cls)
{
    const std::uint64_t mask = std::uint64_t(1) << (cell & 63);
    std::atomic<std::uint64_t>& word = _bits[cell >> 6];
    // Fast path: a plain load avoids contending the cache line once
    // the cell is known (the common case after the first generations).
    if (word.load(std::memory_order_relaxed) & mask)
        return false;
    const std::uint64_t prior =
        word.fetch_or(mask, std::memory_order_relaxed);
    if (prior & mask)
        return false;
    _cellsSeen.fetch_add(1, std::memory_order_relaxed);
    _classSeen[static_cast<int>(cls)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
CoverageLedger::observe(
    const std::vector<isa::InstructionInstance>& code,
    std::uint64_t* touches)
{
    std::uint64_t fresh = 0;
    std::uint64_t touched = 0;
    for (const isa::InstructionInstance& gene : code) {
        if (gene.defIndex >= _defs.size())
            continue;
        const DefCells& dc = _defs[gene.defIndex];
        if (dc.numSlots == 0) {
            ++touched;
            fresh += touch(dc.base, dc.cls) ? 1 : 0;
            continue;
        }
        const std::uint32_t slots =
            std::min<std::uint32_t>(dc.numSlots,
                                    static_cast<std::uint32_t>(
                                        gene.operandChoice.size()));
        for (std::uint32_t s = 0; s < slots; ++s) {
            const SlotCells& slot = _slots[dc.firstSlot + s];
            const std::size_t bin = isa::operandBin(
                _lib.operand(slot.operandIndex), gene.operandChoice[s]);
            ++touched;
            fresh += touch(slot.cellBase + bin, dc.cls) ? 1 : 0;
        }
    }
    if (touches)
        *touches += touched;
    return fresh;
}

void
CoverageLedger::onGenerationEvaluated(const core::Population& pop,
                                      const core::GenerationRecord& rec)
{
    std::uint64_t fresh = 0;
    std::uint64_t touched = 0;
    for (const core::Individual& ind : pop.individuals)
        fresh += observe(ind.code, &touched);

    _lastGeneration.store(rec.generation, std::memory_order_relaxed);
    _lastNewCells.store(fresh, std::memory_order_relaxed);
    _lastTouches.store(touched, std::memory_order_relaxed);

    const Snapshot snap = snapshot();
    coverageStats().cellsSeen.set(
        static_cast<double>(snap.cellsSeen));
    coverageStats().cellsTotal.set(
        static_cast<double>(snap.cellsTotal));
    coverageStats().saturationPct.set(snap.saturationPct);
    coverageStats().novelCells.inc(fresh);
    coverageStats().touches.inc(touched);

    if (!_csvPath.empty()) {
        std::ofstream out(_csvPath, _csvStarted
                                        ? std::ios::app
                                        : std::ios::trunc);
        if (!out)
            fatal("cannot write coverage CSV ", _csvPath);
        if (!_csvStarted) {
            out << "# gest-coverage v" << coverageCsvVersion << "\n";
            out << "# cells_total " << _cellsTotal << "\n";
            for (int c = 0; c < isa::numInstrClasses; ++c)
                out << "# class "
                    << classToken(static_cast<isa::InstrClass>(c))
                    << " cells " << _classTotal[c] << "\n";
            out << "generation,cells_new,cells_seen,cells_total,"
                   "saturation_pct,novelty_rate";
            for (int c = 0; c < isa::numInstrClasses; ++c)
                out << ",seen_"
                    << classToken(static_cast<isa::InstrClass>(c));
            out << "\n";
            _csvStarted = true;
        }
        char row[256];
        std::snprintf(row, sizeof(row),
                      "%d,%llu,%llu,%llu,%.6f,%.6f",
                      snap.generation,
                      static_cast<unsigned long long>(snap.newCells),
                      static_cast<unsigned long long>(snap.cellsSeen),
                      static_cast<unsigned long long>(snap.cellsTotal),
                      snap.saturationPct, snap.noveltyRate);
        out << row;
        for (int c = 0; c < isa::numInstrClasses; ++c)
            out << "," << snap.classes[c].seen;
        out << "\n";
    }

    if (_listener)
        _listener(snap);
}

core::Engine::GenerationCallback
CoverageLedger::observer()
{
    return [this](const core::Population& pop,
                  const core::GenerationRecord& record) {
        onGenerationEvaluated(pop, record);
    };
}

CoverageLedger::Snapshot
CoverageLedger::snapshot() const
{
    Snapshot snap;
    snap.generation = _lastGeneration.load(std::memory_order_relaxed);
    snap.cellsSeen = _cellsSeen.load(std::memory_order_relaxed);
    snap.cellsTotal = _cellsTotal;
    snap.newCells = _lastNewCells.load(std::memory_order_relaxed);
    snap.touches = _lastTouches.load(std::memory_order_relaxed);
    snap.saturationPct =
        _cellsTotal > 0 ? 100.0 * static_cast<double>(snap.cellsSeen) /
                              static_cast<double>(_cellsTotal)
                        : 0.0;
    snap.noveltyRate =
        snap.touches > 0 ? static_cast<double>(snap.newCells) /
                               static_cast<double>(snap.touches)
                         : 0.0;
    for (int c = 0; c < isa::numInstrClasses; ++c) {
        snap.classes[c].seen =
            _classSeen[c].load(std::memory_order_relaxed);
        snap.classes[c].total = _classTotal[c];
    }
    return snap;
}

std::string
CoverageLedger::coverageJson() const
{
    return formatCoverageJson(snapshot());
}

std::string
formatCoverageJson(const CoverageLedger::Snapshot& snap)
{
    char head[320];
    std::snprintf(
        head, sizeof(head),
        "{\n  \"generation\": %d,\n  \"cells_seen\": %llu,\n"
        "  \"cells_total\": %llu,\n  \"cells_new\": %llu,\n"
        "  \"saturation_pct\": %.6f,\n  \"novelty_rate\": %.6f,\n"
        "  \"classes\": [",
        snap.generation,
        static_cast<unsigned long long>(snap.cellsSeen),
        static_cast<unsigned long long>(snap.cellsTotal),
        static_cast<unsigned long long>(snap.newCells),
        snap.saturationPct, snap.noveltyRate);
    std::string out = head;
    for (int c = 0; c < isa::numInstrClasses; ++c) {
        char row[128];
        std::snprintf(
            row, sizeof(row),
            "%s\n    {\"class\": \"%s\", \"seen\": %llu, "
            "\"total\": %llu}",
            c == 0 ? "" : ",",
            classToken(static_cast<isa::InstrClass>(c)),
            static_cast<unsigned long long>(snap.classes[c].seen),
            static_cast<unsigned long long>(snap.classes[c].total));
        out += row;
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace attribution
} // namespace gest
