/**
 * @file
 * Deriving the paper's headline signal metrics from a capture.
 *
 * These are the numbers an experimenter reads off the instruments: the
 * droop depth and resonance frequency off the oscilloscope trace (§VI),
 * the heat-up time constant off the temperature log (§V) and the power
 * duty cycle off the power rail. `gest probe` prints them as its
 * terminal summary; tests use them to assert the physics of captured
 * waveforms.
 */

#ifndef GEST_SIGNAL_ANALYSIS_HH
#define GEST_SIGNAL_ANALYSIS_HH

#include <string>

#include "signal/signal_probe.hh"

namespace gest {
namespace signal {

/** Headline metrics derived from one capture. */
struct ProbeSummary
{
    /** Scalars copied from the evaluation annotations. */
    double ipc = 0.0;
    double corePowerWatts = 0.0;
    double chipPowerWatts = 0.0;
    double dieTempC = 0.0;

    /** Voltage metrics; valid only when hasVoltage. */
    bool hasVoltage = false;
    double vMin = 0.0;
    double vMax = 0.0;
    double peakToPeakV = 0.0;

    /** Worst droop below the nominal supply (V, positive). */
    double droopDepthV = 0.0;

    /** PDN first-order resonance from the model's configuration (Hz). */
    double pdnResonanceHz = 0.0;

    /**
     * Frequency of the strongest chip-current tone in the band around
     * the PDN resonance (Hz); 0 when no current waveform or PDN. A
     * dI/dt virus shows this within a few percent of pdnResonanceHz.
     */
    double dominantToneHz = 0.0;

    /**
     * Heat-up time constant (s): time for the captured thermal
     * transient to cover 63.2% of its total rise; 0 without a thermal
     * waveform.
     */
    double thermalTauSeconds = 0.0;

    /**
     * Fraction of core-power samples above the midpoint between the
     * trace's min and max. ~1 for a sustained power virus, ~0.5 for a
     * square-wave dI/dt pattern, 0 without a power waveform.
     */
    double powerDutyCycle = 0.0;
};

/** Derive the summary metrics from a capture. */
ProbeSummary summarizeProbe(const SignalProbe& probe);

/** Render the summary as aligned terminal text. */
std::string formatProbeSummary(const ProbeSummary& summary,
                               const SignalProbe& probe);

} // namespace signal
} // namespace gest

#endif // GEST_SIGNAL_ANALYSIS_HH
