/**
 * @file
 * Signal-level capture: waveforms, event marks and scalar annotations.
 *
 * The paper's evaluation is built on signals, not scalars: oscilloscope
 * voltage waveforms on the AMD sense pads (§VI), thermal heat-up
 * transients on the X-Gene2 (§V) and per-interval power on the Cortex
 * boards. A SignalProbe is the simulated counterpart of clipping those
 * instruments onto the machine: pass one to Platform::evaluate (or any
 * of the substrates beneath it) and it records the per-cycle and
 * per-interval waveforms the models already compute internally — core
 * power and current, PDN die voltage, the thermal transient, interval
 * IPC — plus cache/branch event marks and the scalar summary of the
 * evaluation.
 *
 * Design constraints, mirroring the stats registry:
 *
 *  1. **Zero cost when absent.** Every capture site takes a
 *     `SignalProbe*` defaulting to nullptr and is guarded by a single
 *     predicted branch; a fixed-seed run is bit-identical with capture
 *     on or off because the probe only observes.
 *  2. **Bounded.** A probe stores at most `maxSamplesPerSignal` samples
 *     per waveform and `maxMarks` marks; overflow is counted, never
 *     reallocated past the bound, so a flight recorder can keep several
 *     probes in memory for the length of a run.
 *  3. **Self-describing.** Each waveform carries its unit, sample rate
 *     and warmup-sample count, so the sealed artifact can be validated
 *     against the scalar Evaluation without re-running the simulator
 *     (tools/check_waveforms.py).
 */

#ifndef GEST_SIGNAL_SIGNAL_PROBE_HH
#define GEST_SIGNAL_SIGNAL_PROBE_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gest {
namespace signal {

/** One captured time series. */
struct Waveform
{
    /** Signal identifier ("pdn_voltage_v", "core_power_w", ...). */
    std::string name;

    /** Physical unit of the samples ("V", "W", "A", "C", ...). */
    std::string unit;

    /** Samples per second of simulated time. */
    double sampleRateHz = 0.0;

    /**
     * Leading samples excluded from the summary statistics while the
     * producing model settles (the PDN transient's warmup window).
     */
    std::size_t warmupSamples = 0;

    std::vector<double> samples;

    /** Samples the capture bound forced the probe to drop. */
    std::size_t dropped = 0;

    /** Minimum over the post-warmup samples (0 when empty). */
    double minValue() const;

    /** Maximum over the post-warmup samples (0 when empty). */
    double maxValue() const;

    /** Mean over the post-warmup samples (0 when empty). */
    double meanValue() const;

    /** Simulated time of sample @p index (s). */
    double timeAt(std::size_t index) const;
};

/** A point event on a waveform's time base (a cache miss, ...). */
struct EventMark
{
    /** Event kind ("l1_miss", "l2_miss", "mispredict"). */
    std::string kind;

    /** Cycle index on the core clock time base. */
    std::size_t index = 0;

    /** Simulated time of the event (s). */
    double timeS = 0.0;
};

/**
 * Collects waveforms, marks and annotations for one evaluation.
 */
class SignalProbe
{
  public:
    /** Capture bounds and windows. */
    struct Config
    {
        /** Hard cap on stored samples per waveform. */
        std::size_t maxSamplesPerSignal = 1u << 16;

        /** Hard cap on stored event marks. */
        std::size_t maxMarks = 4096;

        /** Cycles per interval of the interval-IPC waveform. */
        std::size_t ipcIntervalCycles = 64;

        /** Length of the captured thermal heat-up transient (s). */
        double thermalWindowSeconds = 120.0;

        /** Samples across the thermal window. */
        int thermalIntervals = 240;
    };

    SignalProbe();
    explicit SignalProbe(Config cfg);

    /** The capture configuration. */
    const Config& config() const { return _cfg; }

    /**
     * Record a complete waveform. Samples beyond maxSamplesPerSignal
     * are dropped (counted in Waveform::dropped). Re-recording an
     * existing name replaces the prior capture.
     */
    Waveform& recordWaveform(const std::string& name,
                             const std::string& unit,
                             double sample_rate_hz,
                             const std::vector<double>& samples,
                             std::size_t warmup_samples = 0);

    /** Record one event mark; dropped silently past maxMarks. */
    void mark(const std::string& kind, std::size_t index, double time_s);

    /**
     * Record a scalar annotation (the Evaluation summary the sealed
     * artifact is validated against). Last write wins per key.
     */
    void annotate(const std::string& key, double value);

    /** All captured waveforms, in capture order. */
    const std::vector<Waveform>& waveforms() const { return _waveforms; }

    /** The waveform named @p name, or nullptr. */
    const Waveform* find(const std::string& name) const;

    /** All event marks, in capture order. */
    const std::vector<EventMark>& marks() const { return _marks; }

    /** Marks silently dropped past the bound. */
    std::size_t droppedMarks() const { return _droppedMarks; }

    /** All annotations, in first-write order. */
    const std::vector<std::pair<std::string, double>>&
    annotations() const
    {
        return _annotations;
    }

    /** The annotation @p key, or @p fallback when absent. */
    double annotationOr(const std::string& key, double fallback) const;

    /** @return true if @p key was annotated. */
    bool hasAnnotation(const std::string& key) const;

    /** Discard everything captured so far; the config is kept. */
    void clear();

  private:
    Config _cfg;
    std::vector<Waveform> _waveforms;
    std::vector<EventMark> _marks;
    std::size_t _droppedMarks = 0;
    std::vector<std::pair<std::string, double>> _annotations;
};

} // namespace signal
} // namespace gest

#endif // GEST_SIGNAL_SIGNAL_PROBE_HH
