#include "signal/analysis.hh"

#include <cmath>

#include "pdn/spectrum.hh"
#include "util/strutil.hh"

namespace gest {
namespace signal {

namespace {

/**
 * Time for @p w to cover 63.2% of its start-to-end excursion, with
 * linear interpolation between the crossing samples. 0 for traces
 * shorter than two samples or with no net excursion.
 */
double
riseTimeConstant(const Waveform& w)
{
    if (w.samples.size() < 2 || w.sampleRateHz <= 0.0)
        return 0.0;
    const double start = w.samples.front();
    const double end = w.samples.back();
    const double target = start + (end - start) * 0.632;
    if (std::fabs(end - start) < 1e-12)
        return 0.0;
    const bool rising = end > start;
    for (std::size_t i = 1; i < w.samples.size(); ++i) {
        const bool crossed = rising ? w.samples[i] >= target
                                    : w.samples[i] <= target;
        if (!crossed)
            continue;
        const double prev = w.samples[i - 1];
        const double span = w.samples[i] - prev;
        const double frac =
            std::fabs(span) < 1e-30 ? 0.0 : (target - prev) / span;
        return (static_cast<double>(i - 1) + frac) / w.sampleRateHz;
    }
    return w.timeAt(w.samples.size() - 1);
}

double
dutyCycle(const Waveform& w)
{
    if (w.samples.empty())
        return 0.0;
    const double lo = w.minValue();
    const double hi = w.maxValue();
    if (hi - lo < 1e-12)
        return 1.0; // flat trace: always "on"
    const double mid = (lo + hi) / 2.0;
    std::size_t above = 0;
    std::size_t counted = 0;
    for (std::size_t i = w.warmupSamples; i < w.samples.size(); ++i) {
        ++counted;
        if (w.samples[i] > mid)
            ++above;
    }
    if (counted == 0)
        return 0.0;
    return static_cast<double>(above) / static_cast<double>(counted);
}

} // namespace

ProbeSummary
summarizeProbe(const SignalProbe& probe)
{
    ProbeSummary s;
    s.ipc = probe.annotationOr("ipc", 0.0);
    s.corePowerWatts = probe.annotationOr("core_power_w", 0.0);
    s.chipPowerWatts = probe.annotationOr("chip_power_w", 0.0);
    s.dieTempC = probe.annotationOr("die_temp_c", 0.0);
    s.pdnResonanceHz = probe.annotationOr("pdn_resonance_hz", 0.0);

    if (probe.hasAnnotation("v_min")) {
        s.hasVoltage = true;
        s.vMin = probe.annotationOr("v_min", 0.0);
        s.vMax = probe.annotationOr("v_max", 0.0);
        s.peakToPeakV = probe.annotationOr("peak_to_peak_v", 0.0);
        s.droopDepthV = probe.annotationOr("vdd", s.vMax) - s.vMin;
    }

    const Waveform* current = probe.find("chip_current_a");
    if (current && current->samples.size() >= 2 &&
        s.pdnResonanceHz > 0.0) {
        const double rate = current->sampleRateHz;
        const double lo = s.pdnResonanceHz * 0.1;
        double hi = s.pdnResonanceHz * 4.0;
        if (hi > rate / 2.0)
            hi = rate / 2.0;
        if (lo < hi)
            s.dominantToneHz =
                pdn::dominantTone(current->samples, rate, lo, hi, 96);
    }

    if (const Waveform* thermal = probe.find("die_temp_c"))
        s.thermalTauSeconds = riseTimeConstant(*thermal);
    if (const Waveform* power = probe.find("core_power_w"))
        s.powerDutyCycle = dutyCycle(*power);
    return s;
}

std::string
formatProbeSummary(const ProbeSummary& s, const SignalProbe& probe)
{
    std::string out;
    std::size_t samples = 0;
    for (const Waveform& w : probe.waveforms())
        samples += w.samples.size();
    out += "signals: " + std::to_string(probe.waveforms().size()) +
           " waveforms, " + std::to_string(samples) + " samples, " +
           std::to_string(probe.marks().size()) + " event marks\n";
    out += "  ipc              " + formatFixed(s.ipc, 3) + "\n";
    out += "  core power       " + formatFixed(s.corePowerWatts, 3) +
           " W (duty cycle " + formatFixed(s.powerDutyCycle, 2) + ")\n";
    out += "  chip power       " + formatFixed(s.chipPowerWatts, 3) +
           " W\n";
    out += "  die temperature  " + formatFixed(s.dieTempC, 2) + " C";
    if (s.thermalTauSeconds > 0.0)
        out += " (heat-up tau " + formatFixed(s.thermalTauSeconds, 1) +
               " s)";
    out += "\n";
    if (s.hasVoltage) {
        out += "  die voltage      min " + formatFixed(s.vMin, 4) +
               " V, max " + formatFixed(s.vMax, 4) +
               " V, peak-to-peak " +
               formatFixed(s.peakToPeakV * 1e3, 1) + " mV\n";
        out += "  droop depth      " +
               formatFixed(s.droopDepthV * 1e3, 1) +
               " mV below nominal\n";
    }
    if (s.pdnResonanceHz > 0.0) {
        out += "  resonance        PDN " +
               formatFixed(s.pdnResonanceHz / 1e6, 1) + " MHz";
        if (s.dominantToneHz > 0.0)
            out += ", dominant current tone " +
                   formatFixed(s.dominantToneHz / 1e6, 1) + " MHz";
        out += "\n";
    }
    return out;
}

} // namespace signal
} // namespace gest
