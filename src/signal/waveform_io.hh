/**
 * @file
 * Sealing captured signals as versioned run artifacts.
 *
 * A probe's capture is written in two forms, both validated by
 * tools/check_waveforms.py:
 *
 *  - `<basename>.csv` — long-format CSV, one row per sample or mark,
 *    headed by `# gest-waveforms v1` plus one `# signal ...` comment
 *    per waveform (unit, sample rate, warmup, drop count) and one
 *    `# annotation ...` comment per scalar. Values are printed with 17
 *    significant digits so the scalar Evaluation can be re-derived
 *    from the samples to 1e-9.
 *  - `<basename>.json` — the same content as one machine-readable
 *    object (`gest probe --json` consumers, notebooks).
 *
 * When the capture includes a chip-current waveform and PDN
 * annotations, a `<basename>_spectrum.csv` companion is written: the
 * current's amplitude spectrum across a band around the PDN resonance
 * (pdn/spectrum's Goertzel scan), the direct evidence that a dI/dt
 * virus concentrates energy at f_res.
 */

#ifndef GEST_SIGNAL_WAVEFORM_IO_HH
#define GEST_SIGNAL_WAVEFORM_IO_HH

#include <string>
#include <vector>

#include "signal/signal_probe.hh"

namespace gest {
namespace signal {

/** waveform CSV format version written by this build. */
constexpr int waveformCsvVersion = 1;

/** Render a capture as the long-format CSV artifact. */
std::string formatWaveformsCsv(const SignalProbe& probe);

/** Render a capture as a JSON object. */
std::string formatWaveformsJson(const SignalProbe& probe);

/**
 * Amplitude spectrum of the probe's chip-current waveform as
 * `frequency_hz,amplitude_a` CSV rows. The scanned band is centred on
 * the `pdn_resonance_hz` annotation (0.1x to 4x resonance, bounded by
 * Nyquist). Empty string when the capture has no chip current, no PDN
 * annotation, or fewer than two samples.
 */
std::string formatSpectrumCsv(const SignalProbe& probe, int tones = 96);

/** Paths written by writeWaveformArtifacts. */
struct WaveformArtifacts
{
    std::string csvPath;
    std::string jsonPath;
    std::string spectrumPath; ///< empty when no spectrum applies
};

/**
 * Write `<dir>/<basename>.csv`, `.json` and (when applicable)
 * `_spectrum.csv`; @p dir is created if absent.
 */
WaveformArtifacts writeWaveformArtifacts(const std::string& dir,
                                         const std::string& basename,
                                         const SignalProbe& probe);

} // namespace signal
} // namespace gest

#endif // GEST_SIGNAL_WAVEFORM_IO_HH
