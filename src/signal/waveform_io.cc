#include "signal/waveform_io.hh"

#include <cstdio>

#include "pdn/spectrum.hh"
#include "util/fileutil.hh"
#include "util/strutil.hh"

namespace gest {
namespace signal {

namespace {

/**
 * Full-precision decimal rendering: 17 significant digits round-trip
 * an IEEE double, so the validator can hold the artifact to the 1e-9
 * agreement contract against the scalar Evaluation.
 */
std::string
formatExact(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
formatWaveformsCsv(const SignalProbe& probe)
{
    std::string out;
    out += "# gest-waveforms v" + std::to_string(waveformCsvVersion) +
           "\n";
    for (const auto& [key, value] : probe.annotations())
        out += "# annotation " + key + " " + formatExact(value) + "\n";
    for (const Waveform& w : probe.waveforms()) {
        out += "# signal " + w.name + " unit=" + w.unit +
               " rate_hz=" + formatExact(w.sampleRateHz) +
               " warmup=" + std::to_string(w.warmupSamples) +
               " samples=" + std::to_string(w.samples.size()) +
               " dropped=" + std::to_string(w.dropped) + "\n";
    }
    out += "signal,kind,index,time_s,value\n";
    for (const Waveform& w : probe.waveforms()) {
        for (std::size_t i = 0; i < w.samples.size(); ++i) {
            out += w.name;
            out += ",sample,";
            out += std::to_string(i);
            out += ',';
            out += formatExact(w.timeAt(i));
            out += ',';
            out += formatExact(w.samples[i]);
            out += '\n';
        }
    }
    for (const EventMark& m : probe.marks()) {
        out += m.kind;
        out += ",mark,";
        out += std::to_string(m.index);
        out += ',';
        out += formatExact(m.timeS);
        out += ",1\n";
    }
    return out;
}

std::string
formatWaveformsJson(const SignalProbe& probe)
{
    std::string out = "{\n  \"version\": " +
                      std::to_string(waveformCsvVersion) + ",\n";
    out += "  \"annotations\": {";
    bool first = true;
    for (const auto& [key, value] : probe.annotations()) {
        out += first ? "\n" : ",\n";
        out += "    \"" + jsonEscape(key) + "\": " + formatExact(value);
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"signals\": [";
    first = true;
    for (const Waveform& w : probe.waveforms()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": \"" + jsonEscape(w.name) +
               "\", \"unit\": \"" + jsonEscape(w.unit) +
               "\", \"rate_hz\": " + formatExact(w.sampleRateHz) +
               ", \"warmup\": " + std::to_string(w.warmupSamples) +
               ", \"dropped\": " + std::to_string(w.dropped) +
               ", \"samples\": [";
        for (std::size_t i = 0; i < w.samples.size(); ++i) {
            if (i)
                out += ", ";
            out += formatExact(w.samples[i]);
        }
        out += "]}";
    }
    out += first ? "],\n" : "\n  ],\n";
    out += "  \"marks\": [";
    first = true;
    for (const EventMark& m : probe.marks()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"kind\": \"" + jsonEscape(m.kind) +
               "\", \"index\": " + std::to_string(m.index) +
               ", \"time_s\": " + formatExact(m.timeS) + "}";
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
formatSpectrumCsv(const SignalProbe& probe, int tones)
{
    const Waveform* current = probe.find("chip_current_a");
    if (!current || current->samples.size() < 2 || tones < 2)
        return "";
    if (!probe.hasAnnotation("pdn_resonance_hz"))
        return "";
    const double resonance =
        probe.annotationOr("pdn_resonance_hz", 0.0);
    const double rate = current->sampleRateHz;
    if (resonance <= 0.0 || rate <= 0.0)
        return "";

    // 0.1x to 4x resonance covers the fundamental plus the first
    // harmonics a loop-shaped current train produces; clamp under
    // Nyquist so the Goertzel scan stays valid.
    const double lo = resonance * 0.1;
    double hi = resonance * 4.0;
    if (hi > rate / 2.0)
        hi = rate / 2.0;
    if (lo >= hi)
        return "";

    std::string out = "# gest-spectrum v1\n";
    out += "# resonance_hz " + formatExact(resonance) + "\n";
    out += "frequency_hz,amplitude_a\n";
    for (int i = 0; i < tones; ++i) {
        const double tone =
            lo + (hi - lo) * static_cast<double>(i) /
                     static_cast<double>(tones - 1);
        out += formatExact(tone) + "," +
               formatExact(pdn::toneAmplitude(current->samples, rate,
                                              tone)) +
               "\n";
    }
    return out;
}

WaveformArtifacts
writeWaveformArtifacts(const std::string& dir,
                       const std::string& basename,
                       const SignalProbe& probe)
{
    ensureDir(dir);
    WaveformArtifacts paths;
    paths.csvPath = dir + "/" + basename + ".csv";
    writeFile(paths.csvPath, formatWaveformsCsv(probe));
    paths.jsonPath = dir + "/" + basename + ".json";
    writeFile(paths.jsonPath, formatWaveformsJson(probe));
    const std::string spectrum = formatSpectrumCsv(probe);
    if (!spectrum.empty()) {
        paths.spectrumPath = dir + "/" + basename + "_spectrum.csv";
        writeFile(paths.spectrumPath, spectrum);
    }
    return paths;
}

} // namespace signal
} // namespace gest
