#include "signal/signal_probe.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gest {
namespace signal {

namespace {

/** First sample index the summary statistics cover. */
std::size_t
summaryStart(const Waveform& w)
{
    // A warmup window that swallows the whole capture degrades to
    // "summarize the second half", matching PdnModel's clamp.
    if (w.warmupSamples >= w.samples.size())
        return w.samples.size() / 2;
    return w.warmupSamples;
}

} // namespace

double
Waveform::minValue() const
{
    if (samples.empty())
        return 0.0;
    return *std::min_element(samples.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     summaryStart(*this)),
                             samples.end());
}

double
Waveform::maxValue() const
{
    if (samples.empty())
        return 0.0;
    return *std::max_element(samples.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     summaryStart(*this)),
                             samples.end());
}

double
Waveform::meanValue() const
{
    if (samples.empty())
        return 0.0;
    const std::size_t start = summaryStart(*this);
    double sum = 0.0;
    for (std::size_t i = start; i < samples.size(); ++i)
        sum += samples[i];
    return sum / static_cast<double>(samples.size() - start);
}

double
Waveform::timeAt(std::size_t index) const
{
    if (sampleRateHz <= 0.0)
        return 0.0;
    return static_cast<double>(index) / sampleRateHz;
}

SignalProbe::SignalProbe() : SignalProbe(Config{}) {}

SignalProbe::SignalProbe(Config cfg) : _cfg(cfg)
{
    if (_cfg.maxSamplesPerSignal == 0)
        fatal("signal probe: maxSamplesPerSignal must be positive");
    if (_cfg.ipcIntervalCycles == 0)
        fatal("signal probe: ipcIntervalCycles must be positive");
    if (_cfg.thermalIntervals < 1)
        fatal("signal probe: thermalIntervals must be positive");
    if (_cfg.thermalWindowSeconds <= 0.0)
        fatal("signal probe: thermalWindowSeconds must be positive");
}

Waveform&
SignalProbe::recordWaveform(const std::string& name,
                            const std::string& unit,
                            double sample_rate_hz,
                            const std::vector<double>& samples,
                            std::size_t warmup_samples)
{
    if (sample_rate_hz <= 0.0)
        fatal("signal probe: waveform '", name,
              "' needs a positive sample rate");
    Waveform* slot = nullptr;
    for (Waveform& w : _waveforms) {
        if (w.name == name) {
            slot = &w;
            break;
        }
    }
    if (!slot) {
        _waveforms.emplace_back();
        slot = &_waveforms.back();
        slot->name = name;
    }
    slot->unit = unit;
    slot->sampleRateHz = sample_rate_hz;
    const std::size_t kept =
        std::min(samples.size(), _cfg.maxSamplesPerSignal);
    slot->samples.assign(samples.begin(),
                         samples.begin() +
                             static_cast<std::ptrdiff_t>(kept));
    slot->dropped = samples.size() - kept;
    slot->warmupSamples = std::min(warmup_samples, kept);
    return *slot;
}

void
SignalProbe::mark(const std::string& kind, std::size_t index,
                  double time_s)
{
    if (_marks.size() >= _cfg.maxMarks) {
        ++_droppedMarks;
        return;
    }
    _marks.push_back({kind, index, time_s});
}

void
SignalProbe::annotate(const std::string& key, double value)
{
    for (auto& [k, v] : _annotations) {
        if (k == key) {
            v = value;
            return;
        }
    }
    _annotations.emplace_back(key, value);
}

const Waveform*
SignalProbe::find(const std::string& name) const
{
    for (const Waveform& w : _waveforms) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

double
SignalProbe::annotationOr(const std::string& key, double fallback) const
{
    for (const auto& [k, v] : _annotations) {
        if (k == key)
            return v;
    }
    return fallback;
}

bool
SignalProbe::hasAnnotation(const std::string& key) const
{
    for (const auto& [k, v] : _annotations) {
        if (k == key)
            return true;
    }
    return false;
}

void
SignalProbe::clear()
{
    _waveforms.clear();
    _marks.clear();
    _droppedMarks = 0;
    _annotations.clear();
}

} // namespace signal
} // namespace gest
