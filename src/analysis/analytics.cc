#include "analysis/analytics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_map>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace analysis {

namespace {

/** Column headers for the class-mix counts, in isa::InstrClass order. */
const char* const kMixColumns[isa::numInstrClasses] = {
    "mix_short_int", "mix_long_int", "mix_float_simd",
    "mix_mem",       "mix_branch",   "mix_nop",
};

/** Linear-interpolated quantile of a sorted sample. */
double
quantile(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double position =
        p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(position);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = position - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** Column index by header name, or -1 when absent. */
int
columnIndex(const std::vector<std::string>& header,
            const std::string& name)
{
    const auto it = std::find(header.begin(), header.end(), name);
    return it == header.end()
               ? -1
               : static_cast<int>(it - header.begin());
}

} // namespace

std::array<std::uint64_t, isa::numInstrClasses>
populationClassMix(const isa::InstructionLibrary& lib,
                   const core::Population& pop)
{
    std::array<std::uint64_t, isa::numInstrClasses> mix{};
    for (const core::Individual& ind : pop.individuals) {
        const std::array<int, isa::numInstrClasses> breakdown =
            core::classBreakdown(lib, ind);
        for (int c = 0; c < isa::numInstrClasses; ++c)
            mix[static_cast<std::size_t>(c)] +=
                static_cast<std::uint64_t>(
                    breakdown[static_cast<std::size_t>(c)]);
    }
    return mix;
}

double
geneEntropyBits(const core::Population& pop)
{
    if (pop.individuals.empty())
        return 0.0;
    std::size_t max_len = 0;
    for (const core::Individual& ind : pop.individuals)
        max_len = std::max(max_len, ind.code.size());
    if (max_len == 0)
        return 0.0;

    double total = 0.0;
    std::unordered_map<std::uint32_t, std::size_t> counts;
    for (std::size_t pos = 0; pos < max_len; ++pos) {
        counts.clear();
        std::size_t present = 0;
        for (const core::Individual& ind : pop.individuals) {
            if (pos < ind.code.size()) {
                ++counts[ind.code[pos].defIndex];
                ++present;
            }
        }
        if (present == 0)
            continue;
        double entropy = 0.0;
        for (const auto& [def, count] : counts) {
            const double f = static_cast<double>(count) /
                             static_cast<double>(present);
            entropy -= f * std::log2(f);
        }
        total += entropy;
    }
    return total / static_cast<double>(max_len);
}

double
pairwiseDiversity(const core::Population& pop)
{
    const std::size_t n = pop.individuals.size();
    if (n < 2)
        return 0.0;

    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const auto& a = pop.individuals[i].code;
            const auto& b = pop.individuals[j].code;
            const std::size_t len = std::max(a.size(), b.size());
            if (len == 0)
                continue;
            std::size_t differing = 0;
            for (std::size_t pos = 0; pos < len; ++pos) {
                if (pos >= a.size() || pos >= b.size() ||
                    !(a[pos] == b[pos]))
                    ++differing;
            }
            total += static_cast<double>(differing) /
                     static_cast<double>(len);
            ++pairs;
        }
    }
    return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

AnalyticsRow
computeAnalytics(const isa::InstructionLibrary& lib,
                 const core::Population& pop)
{
    AnalyticsRow row;
    row.generation = pop.generation;
    row.classMix = populationClassMix(lib, pop);
    row.geneEntropyBits = geneEntropyBits(pop);
    row.pairwiseDiversity = pairwiseDiversity(pop);

    std::vector<double> fitness;
    fitness.reserve(pop.individuals.size());
    for (const core::Individual& ind : pop.individuals) {
        if (ind.evaluated)
            fitness.push_back(ind.fitness);
    }
    std::sort(fitness.begin(), fitness.end());
    if (!fitness.empty()) {
        row.fitnessMin = fitness.front();
        row.fitnessQ1 = quantile(fitness, 0.25);
        row.fitnessMedian = quantile(fitness, 0.5);
        row.fitnessQ3 = quantile(fitness, 0.75);
        row.fitnessMax = fitness.back();
    }
    return row;
}

AnalyticsWriter::AnalyticsWriter(std::string path)
    : _path(std::move(path))
{}

void
AnalyticsWriter::append(const AnalyticsRow& row)
{
    std::ofstream out(_path, _started ? std::ios::app : std::ios::trunc);
    if (!out)
        fatal("cannot write ", _path);
    if (!_started) {
        out << "# gest-analytics v" << analyticsCsvVersion << "\n";
        out << "generation";
        for (const char* column : kMixColumns)
            out << ',' << column;
        out << ",gene_entropy_bits,pairwise_diversity,fitness_min,"
               "fitness_q1,fitness_median,fitness_q3,fitness_max,"
               "crossover_children,crossover_improved,mutation_children,"
               "mutation_improved,elite_copies\n";
        _started = true;
    }
    out.precision(17);
    out << row.generation;
    for (const std::uint64_t count : row.classMix)
        out << ',' << count;
    out << ',' << row.geneEntropyBits << ',' << row.pairwiseDiversity
        << ',' << row.fitnessMin << ',' << row.fitnessQ1 << ','
        << row.fitnessMedian << ',' << row.fitnessQ3 << ','
        << row.fitnessMax << ',' << row.crossoverChildren << ','
        << row.crossoverImproved << ',' << row.mutationChildren << ','
        << row.mutationImproved << ',' << row.eliteCopies << '\n';
}

std::vector<AnalyticsRow>
parseAnalytics(const std::string& text)
{
    std::vector<AnalyticsRow> rows;
    std::vector<std::string> header;
    int generation = -1, entropy = -1, diversity = -1;
    std::array<int, isa::numInstrClasses> mix;
    mix.fill(-1);
    int fmin = -1, fq1 = -1, fmed = -1, fq3 = -1, fmax = -1;
    int xchildren = -1, ximproved = -1, mchildren = -1, mimproved = -1,
        elites = -1;

    int line_number = 0;
    for (const std::string& raw : split(text, '\n')) {
        ++line_number;
        const std::string line = trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        if (header.empty()) {
            header = split(line, ',');
            if (columnIndex(header, "generation") != 0)
                fatal("analytics.csv does not look like a gest "
                      "analytics file: expected a header starting with "
                      "'generation', got '", line, "'");
            generation = columnIndex(header, "generation");
            for (int c = 0; c < isa::numInstrClasses; ++c)
                mix[static_cast<std::size_t>(c)] =
                    columnIndex(header, kMixColumns[c]);
            entropy = columnIndex(header, "gene_entropy_bits");
            diversity = columnIndex(header, "pairwise_diversity");
            fmin = columnIndex(header, "fitness_min");
            fq1 = columnIndex(header, "fitness_q1");
            fmed = columnIndex(header, "fitness_median");
            fq3 = columnIndex(header, "fitness_q3");
            fmax = columnIndex(header, "fitness_max");
            xchildren = columnIndex(header, "crossover_children");
            ximproved = columnIndex(header, "crossover_improved");
            mchildren = columnIndex(header, "mutation_children");
            mimproved = columnIndex(header, "mutation_improved");
            elites = columnIndex(header, "elite_copies");
            continue;
        }
        const std::vector<std::string> fields = split(line, ',');
        if (fields.size() < header.size())
            fatal("analytics.csv is truncated at line ", line_number,
                  " (", fields.size(), " of ", header.size(),
                  " columns): delete that line to analyze the complete "
                  "generations");
        auto num = [&](int index, const char* what) -> double {
            if (index < 0)
                return 0.0;
            return parseDouble(fields[static_cast<std::size_t>(index)],
                               detail::concat(what, " (analytics.csv "
                                              "line ", line_number, ")"));
        };
        AnalyticsRow row;
        row.generation =
            static_cast<int>(num(generation, "generation"));
        for (int c = 0; c < isa::numInstrClasses; ++c)
            row.classMix[static_cast<std::size_t>(c)] =
                static_cast<std::uint64_t>(
                    num(mix[static_cast<std::size_t>(c)],
                        kMixColumns[c]));
        row.geneEntropyBits = num(entropy, "gene_entropy_bits");
        row.pairwiseDiversity = num(diversity, "pairwise_diversity");
        row.fitnessMin = num(fmin, "fitness_min");
        row.fitnessQ1 = num(fq1, "fitness_q1");
        row.fitnessMedian = num(fmed, "fitness_median");
        row.fitnessQ3 = num(fq3, "fitness_q3");
        row.fitnessMax = num(fmax, "fitness_max");
        row.crossoverChildren = static_cast<std::uint64_t>(
            num(xchildren, "crossover_children"));
        row.crossoverImproved = static_cast<std::uint64_t>(
            num(ximproved, "crossover_improved"));
        row.mutationChildren = static_cast<std::uint64_t>(
            num(mchildren, "mutation_children"));
        row.mutationImproved = static_cast<std::uint64_t>(
            num(mimproved, "mutation_improved"));
        row.eliteCopies =
            static_cast<std::uint64_t>(num(elites, "elite_copies"));
        rows.push_back(row);
    }
    if (header.empty())
        fatal("analytics.csv is empty — the run has not sealed its "
              "first generation yet");
    return rows;
}

bool
tryLoadAnalytics(const std::string& run_dir,
                 std::vector<AnalyticsRow>& out)
{
    std::string text;
    if (!tryReadFile(run_dir + "/analytics.csv", text))
        return false;
    out = parseAnalytics(text);
    return true;
}

} // namespace analysis
} // namespace gest
