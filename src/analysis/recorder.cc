#include "analysis/recorder.hh"

#include <cstdio>
#include <sstream>

#include "provenance/manifest.hh"
#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace analysis {

namespace {

/**
 * Recorder-wide stat handles, resolved once (the engineStats()
 * pattern): the headline analytics mirrored into stats.txt and
 * metrics.json, subject to the global stats::enabled() flag.
 */
struct AnalysisStats
{
    stats::Counter& births;
    stats::Counter& crossoverBirths;
    stats::Counter& mutationBirths;
    stats::Counter& eliteCopies;
    stats::Counter& crossoverImproved;
    stats::Counter& mutationImproved;
    stats::Gauge& geneEntropy;
    stats::Gauge& pairwiseDiversity;
    stats::Gauge& fitnessMedian;
};

AnalysisStats&
analysisStats()
{
    static AnalysisStats s{
        stats::StatsRegistry::instance().counter(
            "analysis.births", "individuals recorded by the ledger"),
        stats::StatsRegistry::instance().counter(
            "analysis.births.crossover",
            "children born by crossover alone"),
        stats::StatsRegistry::instance().counter(
            "analysis.births.mutation",
            "children mutated after crossover"),
        stats::StatsRegistry::instance().counter(
            "analysis.births.elite_copy",
            "elite individuals carried unchanged"),
        stats::StatsRegistry::instance().counter(
            "analysis.improved.crossover",
            "crossover children that beat both parents"),
        stats::StatsRegistry::instance().counter(
            "analysis.improved.mutation",
            "mutated children that beat both parents"),
        stats::StatsRegistry::instance().gauge(
            "analysis.gene_entropy_bits",
            "mean per-gene entropy of the last generation (bits)"),
        stats::StatsRegistry::instance().gauge(
            "analysis.pairwise_diversity",
            "mean pairwise genome distance of the last generation"),
        stats::StatsRegistry::instance().gauge(
            "analysis.fitness_median",
            "median fitness of the last generation"),
    };
    return s;
}

} // namespace

std::string
formatStatusJson(const StatusSnapshot& snapshot)
{
    char buf[1536];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"state\": \"%s\",\n"
        "  \"generation\": %d,\n"
        "  \"total_generations\": %d,\n"
        "  \"best_fitness\": %.17g,\n"
        "  \"average_fitness\": %.17g,\n"
        "  \"diversity\": %.6f,\n"
        "  \"gene_entropy_bits\": %.6f,\n"
        "  \"pairwise_diversity\": %.6f,\n"
        "  \"evaluations\": %llu,\n"
        "  \"cache_hit_rate\": %.6f,\n"
        "  \"evals_per_sec\": %.3f,\n"
        "  \"elapsed_seconds\": %.3f,\n"
        "  \"eta_seconds\": %.3f,\n"
        "  \"steady_hits\": %llu,\n"
        "  \"cycles_simulated\": %llu,\n"
        "  \"cycles_tiled\": %llu,\n",
        snapshot.running ? "running" : "completed", snapshot.generation,
        snapshot.totalGenerations, snapshot.bestFitness,
        snapshot.averageFitness, snapshot.diversity,
        snapshot.geneEntropyBits, snapshot.pairwiseDiversity,
        static_cast<unsigned long long>(snapshot.evaluations),
        snapshot.cacheHitRate, snapshot.evalsPerSec,
        snapshot.elapsedSeconds, snapshot.etaSeconds,
        static_cast<unsigned long long>(snapshot.steadyHits),
        static_cast<unsigned long long>(snapshot.cyclesSimulated),
        static_cast<unsigned long long>(snapshot.cyclesTiled));
    std::string payload = buf;
    // Optional key: runs without provenance keep the pre-digest schema
    // byte-for-byte, so existing pollers see nothing new.
    if (snapshot.digestsSealed >= 0) {
        std::snprintf(buf, sizeof(buf),
                      "  \"digests_sealed\": %lld,\n",
                      static_cast<long long>(snapshot.digestsSealed));
        payload += buf;
    }
    // Optional block, same convention: only watched runs say anything
    // about alerts, and a watched clean run says `"raised": 0` — "no
    // alerts", not "not watched".
    if (snapshot.alertsRaised >= 0) {
        payload += "  \"alerts\": {\n    \"raised\": " +
                   std::to_string(snapshot.alertsRaised) + ",\n";
        payload += "    \"last_generation\": " +
                   std::to_string(snapshot.lastAlertGeneration) + ",\n";
        payload += "    \"last_rule\": \"" +
                   jsonEscape(snapshot.lastAlertRule) + "\"\n  },\n";
    }
    payload += "  \"git_sha\": \"" + jsonEscape(snapshot.gitSha) +
               "\",\n";
    payload += "  \"build\": \"" + jsonEscape(snapshot.build) + "\",\n";
    payload += "  \"listen\": \"" + jsonEscape(snapshot.listen) +
               "\"\n}\n";
    return payload;
}

void
fillSteadyCounters(StatusSnapshot& snapshot)
{
    // Look up without find-or-create: a run that never touches the
    // simulated fast path (native measurements, stats off) must not
    // grow eval.* entries in its stats.txt just by heartbeating.
    for (const stats::Counter* counter :
         stats::StatsRegistry::instance().counterList()) {
        if (counter->name() == "eval.steady_hits")
            snapshot.steadyHits = counter->value();
        else if (counter->name() == "eval.cycles_simulated")
            snapshot.cyclesSimulated = counter->value();
        else if (counter->name() == "eval.cycles_tiled")
            snapshot.cyclesTiled = counter->value();
    }
}

Recorder::Recorder(std::string run_dir,
                   const isa::InstructionLibrary& lib,
                   int total_generations)
    : _runDir(std::move(run_dir)), _lib(lib),
      _totalGenerations(total_generations),
      _ledger(_runDir + "/lineage.csv"),
      _analytics(_runDir + "/analytics.csv"),
      _startUs(stats::nowUs())
{
    ensureDir(_runDir);
}

void
Recorder::recordSeed(int generation, const core::Individual& ind,
                     bool resumed)
{
    LineageEvent event;
    event.generation = generation;
    event.id = ind.id;
    event.op = resumed ? BirthOp::Resumed : BirthOp::Seed;
    event.parent1 = ind.parent1;
    event.parent2 = ind.parent2;
    _ledger.recordBirth(std::move(event));
}

void
Recorder::recordChild(int generation, const core::Individual& ind,
                      const std::vector<std::uint32_t>& mutated_genes)
{
    LineageEvent event;
    event.generation = generation;
    event.id = ind.id;
    event.op = mutated_genes.empty() ? BirthOp::Crossover
                                     : BirthOp::Mutation;
    event.parent1 = ind.parent1;
    event.parent2 = ind.parent2;
    event.mutatedGenes = mutated_genes;
    _ledger.recordBirth(std::move(event));
}

void
Recorder::recordEliteCopy(int generation, const core::Individual& ind)
{
    LineageEvent event;
    event.generation = generation;
    event.id = ind.id;
    event.op = BirthOp::EliteCopy;
    // An elite copy is the same individual again, not a child; its
    // true parents are on its birth row, so the copy row points at
    // itself.
    event.parent1 = ind.id;
    event.parent2 = ind.id;
    _ledger.recordBirth(std::move(event));
}

void
Recorder::onGenerationEvaluated(const core::Population& pop,
                                const core::GenerationRecord& record)
{
    const std::vector<LineageEvent> sealed = _ledger.sealGeneration(pop);

    AnalyticsRow row = computeAnalytics(_lib, pop);
    row.generation = record.generation;
    for (const LineageEvent& event : sealed) {
        switch (event.op) {
          case BirthOp::Crossover:
          case BirthOp::Mutation: {
            const bool crossed = event.op == BirthOp::Crossover;
            double p1 = 0.0, p2 = 0.0;
            // Parents are in an earlier sealed generation; efficacy is
            // only chartable when both fitnesses are on record (a
            // resumed run's pre-ledger ancestors are not).
            if (!_ledger.fitnessOf(event.parent1, p1) ||
                !_ledger.fitnessOf(event.parent2, p2))
                break;
            (crossed ? row.crossoverChildren : row.mutationChildren)++;
            if (event.fitness > p1 && event.fitness > p2)
                (crossed ? row.crossoverImproved
                         : row.mutationImproved)++;
            break;
          }
          case BirthOp::EliteCopy:
            ++row.eliteCopies;
            break;
          case BirthOp::Seed:
          case BirthOp::Resumed:
            break;
        }
    }
    _analytics.append(row);
    _rows.push_back(row);

    AnalysisStats& s = analysisStats();
    s.births.inc(sealed.size());
    s.crossoverBirths.inc(row.crossoverChildren);
    s.mutationBirths.inc(row.mutationChildren);
    s.eliteCopies.inc(row.eliteCopies);
    s.crossoverImproved.inc(row.crossoverImproved);
    s.mutationImproved.inc(row.mutationImproved);
    s.geneEntropy.set(row.geneEntropyBits);
    s.pairwiseDiversity.set(row.pairwiseDiversity);
    s.fitnessMedian.set(row.fitnessMedian);

    _totalMeasured += record.cacheMisses;
    _totalCacheHits += record.cacheHits;
    _sawGeneration = true;
    _lastGeneration = record.generation;
    _lastBest = record.bestFitness;
    _lastAverage = record.averageFitness;
    _lastDiversity = record.diversity;
    writeStatus(pop, record, /*running=*/true);
}

void
Recorder::writeStatus(const core::Population& pop,
                      const core::GenerationRecord& record, bool running)
{
    (void)pop;
    const double elapsed_s = (stats::nowUs() - _startUs) / 1e6;
    const int done = record.generation + 1;
    const double per_generation_s =
        done > 0 ? elapsed_s / static_cast<double>(done) : 0.0;
    const std::uint64_t resolved = _totalMeasured + _totalCacheHits;

    StatusSnapshot snapshot;
    snapshot.running = running;
    snapshot.generation = record.generation;
    snapshot.totalGenerations = _totalGenerations;
    snapshot.bestFitness = record.bestFitness;
    snapshot.averageFitness = record.averageFitness;
    snapshot.diversity = record.diversity;
    snapshot.geneEntropyBits =
        _rows.empty() ? 0.0 : _rows.back().geneEntropyBits;
    snapshot.pairwiseDiversity =
        _rows.empty() ? 0.0 : _rows.back().pairwiseDiversity;
    snapshot.evaluations = _totalMeasured;
    snapshot.cacheHitRate =
        resolved > 0 ? static_cast<double>(_totalCacheHits) /
                           static_cast<double>(resolved)
                     : 0.0;
    snapshot.evalsPerSec =
        elapsed_s > 0.0 ? static_cast<double>(_totalMeasured) / elapsed_s
                        : 0.0;
    snapshot.elapsedSeconds = elapsed_s;
    snapshot.etaSeconds =
        running && _totalGenerations > done
            ? per_generation_s *
                  static_cast<double>(_totalGenerations - done)
            : 0.0;
    fillSteadyCounters(snapshot);
    if (_digestProvider)
        snapshot.digestsSealed =
            static_cast<std::int64_t>(_digestProvider());
    if (_healthProvider) {
        const HealthSummary health = _healthProvider();
        snapshot.alertsRaised =
            static_cast<std::int64_t>(health.alerts);
        snapshot.lastAlertGeneration = health.lastGeneration;
        snapshot.lastAlertRule = health.lastRule;
    }
    snapshot.gitSha = provenance::currentGitSha();
    snapshot.build = provenance::currentBuildFingerprint();
    snapshot.listen = _listenAddress;

    const std::string payload = formatStatusJson(snapshot);
    // Atomic replace: a poller either sees the previous heartbeat or
    // this one, never a torn file.
    writeFileAtomic(statusPath(), payload);
    if (_statusListener)
        _statusListener(payload);
}

void
Recorder::finish()
{
    if (!_sawGeneration)
        return;
    core::GenerationRecord last;
    last.generation = _lastGeneration;
    last.bestFitness = _lastBest;
    last.averageFitness = _lastAverage;
    last.diversity = _lastDiversity;
    core::Population empty;
    writeStatus(empty, last, /*running=*/false);
    debug("analytics recorded in ", _runDir,
          "/lineage.csv, analytics.csv and status.json");
}

} // namespace analysis
} // namespace gest
