#include "analysis/lineage.hh"

#include <algorithm>
#include <fstream>
#include <unordered_set>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace analysis {

const char*
toString(BirthOp op)
{
    switch (op) {
      case BirthOp::Seed:      return "seed";
      case BirthOp::Resumed:   return "resumed";
      case BirthOp::Crossover: return "crossover";
      case BirthOp::Mutation:  return "mutation";
      case BirthOp::EliteCopy: return "elite_copy";
    }
    panic("unhandled BirthOp");
}

bool
birthOpFromString(std::string_view s, BirthOp& out)
{
    if (s == "seed")       { out = BirthOp::Seed;      return true; }
    if (s == "resumed")    { out = BirthOp::Resumed;   return true; }
    if (s == "crossover")  { out = BirthOp::Crossover; return true; }
    if (s == "mutation")   { out = BirthOp::Mutation;  return true; }
    if (s == "elite_copy") { out = BirthOp::EliteCopy; return true; }
    return false;
}

LineageLedger::LineageLedger(std::string path) : _path(std::move(path)) {}

void
LineageLedger::recordBirth(LineageEvent event)
{
    _pending.push_back(std::move(event));
}

std::vector<LineageEvent>
LineageLedger::sealGeneration(const core::Population& pop)
{
    std::unordered_map<std::uint64_t, double> generation_fitness;
    generation_fitness.reserve(pop.individuals.size());
    for (const core::Individual& ind : pop.individuals) {
        if (ind.evaluated)
            generation_fitness.emplace(ind.id, ind.fitness);
    }

    std::ofstream out(_path, _started ? std::ios::app : std::ios::trunc);
    if (!out)
        fatal("cannot write ", _path);
    if (!_started) {
        out << "# gest-lineage v" << lineageCsvVersion << "\n";
        out << "generation,id,op,parent1,parent2,mutated_genes,"
               "mutated_indices,fitness\n";
        _started = true;
    }
    out.precision(17);

    std::vector<LineageEvent> sealed;
    sealed.reserve(_pending.size());
    for (LineageEvent& event : _pending) {
        const auto it = generation_fitness.find(event.id);
        if (it != generation_fitness.end())
            event.fitness = it->second;
        _fitnessById[event.id] = event.fitness;

        out << event.generation << ',' << event.id << ','
            << toString(event.op) << ',' << event.parent1 << ','
            << event.parent2 << ',' << event.mutatedGenes.size() << ',';
        for (std::size_t i = 0; i < event.mutatedGenes.size(); ++i) {
            if (i > 0)
                out << ';';
            out << event.mutatedGenes[i];
        }
        out << ',' << event.fitness << '\n';
        sealed.push_back(std::move(event));
    }
    _pending.clear();
    _sealed += sealed.size();
    return sealed;
}

bool
LineageLedger::fitnessOf(std::uint64_t id, double& out) const
{
    const auto it = _fitnessById.find(id);
    if (it == _fitnessById.end())
        return false;
    out = it->second;
    return true;
}

namespace {

/** Column index by header name, or -1 when this file predates it. */
int
columnIndex(const std::vector<std::string>& header,
            const std::string& name)
{
    const auto it = std::find(header.begin(), header.end(), name);
    return it == header.end()
               ? -1
               : static_cast<int>(it - header.begin());
}

} // namespace

std::vector<LineageEvent>
parseLineage(const std::string& text)
{
    std::vector<LineageEvent> events;
    std::vector<std::string> header;
    int generation = -1, id = -1, op = -1, parent1 = -1, parent2 = -1,
        indices = -1, fitness = -1;

    int line_number = 0;
    for (const std::string& raw : split(text, '\n')) {
        ++line_number;
        const std::string line = trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        if (header.empty()) {
            header = split(line, ',');
            if (columnIndex(header, "generation") != 0)
                fatal("lineage.csv does not look like a gest lineage "
                      "file: expected a header starting with "
                      "'generation', got '", line, "'");
            generation = columnIndex(header, "generation");
            id = columnIndex(header, "id");
            op = columnIndex(header, "op");
            parent1 = columnIndex(header, "parent1");
            parent2 = columnIndex(header, "parent2");
            indices = columnIndex(header, "mutated_indices");
            fitness = columnIndex(header, "fitness");
            if (id < 0 || op < 0 || parent1 < 0 || parent2 < 0 ||
                fitness < 0)
                fatal("lineage.csv header lacks required columns "
                      "(id/op/parent1/parent2/fitness): '", line, "'");
            continue;
        }
        const std::vector<std::string> fields = split(line, ',');
        if (fields.size() < header.size())
            fatal("lineage.csv is truncated at line ", line_number, " (",
                  fields.size(), " of ", header.size(), " columns): the "
                  "run may have been interrupted mid-write; delete that "
                  "line to analyze the sealed generations");
        auto cell = [&](int index) -> const std::string& {
            return fields[static_cast<std::size_t>(index)];
        };
        LineageEvent event;
        event.generation = static_cast<int>(
            parseInt(cell(generation), "lineage generation"));
        event.id = static_cast<std::uint64_t>(
            parseInt(cell(id), "lineage id"));
        if (!birthOpFromString(cell(op), event.op))
            fatal("lineage.csv line ", line_number,
                  " has unknown op '", cell(op),
                  "' — was the file written by a newer gest?");
        event.parent1 = static_cast<std::uint64_t>(
            parseInt(cell(parent1), "lineage parent1"));
        event.parent2 = static_cast<std::uint64_t>(
            parseInt(cell(parent2), "lineage parent2"));
        if (indices >= 0 && !cell(indices).empty()) {
            for (const std::string& g : split(cell(indices), ';'))
                event.mutatedGenes.push_back(static_cast<std::uint32_t>(
                    parseInt(g, "lineage mutated gene index")));
        }
        event.fitness = parseDouble(cell(fitness), "lineage fitness");
        events.push_back(std::move(event));
    }
    if (header.empty())
        fatal("lineage.csv is empty — the run has not sealed its first "
              "generation yet (or analytics were disabled with "
              "<output analytics=\"false\"/>)");
    return events;
}

std::vector<LineageEvent>
loadLineage(const std::string& run_dir)
{
    if (!dirExists(run_dir))
        fatal("run directory '", run_dir, "' does not exist");
    const std::string path = run_dir + "/lineage.csv";
    std::string text;
    if (!tryReadFile(path, text))
        fatal("no lineage.csv in '", run_dir, "' — the run predates the "
              "analytics subsystem or was run with <output "
              "analytics=\"false\"/>; rerun with analytics enabled to "
              "record lineage");
    return parseLineage(text);
}

Ancestry
championAncestry(const std::vector<LineageEvent>& events)
{
    if (events.empty())
        fatal("cannot reconstruct ancestry from an empty lineage");

    // Birth lookup: first record per id. Elite-copy rows re-record an
    // id in later generations; the first row is the true birth.
    std::unordered_map<std::uint64_t, std::size_t> birth;
    birth.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i)
        birth.emplace(events[i].id, i);

    // Champion: highest fitness, earliest generation then lowest id on
    // ties, over true birth rows only.
    std::size_t champion = events.size();
    for (const auto& [event_id, index] : birth) {
        if (champion == events.size()) {
            champion = index;
            continue;
        }
        const LineageEvent& a = events[index];
        const LineageEvent& b = events[champion];
        if (a.fitness > b.fitness ||
            (a.fitness == b.fitness &&
             (a.generation < b.generation ||
              (a.generation == b.generation && a.id < b.id))))
            champion = index;
    }

    Ancestry out;
    out.reachesGeneration0 = true;

    // Full ancestor set, breadth-first over both parents.
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::size_t> frontier{champion};
    seen.insert(events[champion].id);
    while (!frontier.empty()) {
        const std::size_t index = frontier.back();
        frontier.pop_back();
        const LineageEvent& event = events[birth.at(events[index].id)];
        ++out.ancestorCount;
        ++out.opCounts[static_cast<std::size_t>(event.op)];
        if (event.op == BirthOp::Seed || event.op == BirthOp::Resumed) {
            if (event.generation != 0)
                out.reachesGeneration0 = false;
            // A resumed individual's checkpoint parents predate this
            // ledger; surface them instead of chasing them.
            if (event.op == BirthOp::Resumed) {
                for (const std::uint64_t parent :
                     {event.parent1, event.parent2}) {
                    if (parent != 0)
                        out.unknownParents.push_back(parent);
                }
            }
            continue;
        }
        for (const std::uint64_t parent : {event.parent1, event.parent2}) {
            if (parent == 0 || !seen.insert(parent).second)
                continue;
            const auto it = birth.find(parent);
            if (it == birth.end()) {
                // Ancestor predates the ledger (resumed run).
                out.unknownParents.push_back(parent);
                out.reachesGeneration0 = false;
                continue;
            }
            frontier.push_back(it->second);
        }
    }
    std::sort(out.unknownParents.begin(), out.unknownParents.end());
    out.unknownParents.erase(std::unique(out.unknownParents.begin(),
                                         out.unknownParents.end()),
                             out.unknownParents.end());

    // Primary descent line: follow the fitter known parent.
    std::size_t index = champion;
    for (;;) {
        out.chain.push_back(index);
        const LineageEvent& event = events[index];
        if (event.op == BirthOp::Seed || event.op == BirthOp::Resumed)
            break;
        const auto p1 = birth.find(event.parent1);
        const auto p2 = birth.find(event.parent2);
        if (p1 == birth.end() && p2 == birth.end())
            break; // both parents predate the ledger
        if (p1 == birth.end()) {
            index = p2->second;
        } else if (p2 == birth.end()) {
            index = p1->second;
        } else {
            index = events[p2->second].fitness > events[p1->second].fitness
                        ? p2->second
                        : p1->second;
        }
    }
    return out;
}

} // namespace analysis
} // namespace gest
