/**
 * @file
 * Per-generation population analytics.
 *
 * The paper's evaluation (§V-§VI) reasons about *which instruction
 * mixes* the GA converges to, not only what fitness it reaches. These
 * helpers compute, for one evaluated population: the population-wide
 * instruction-class mix histogram (Table III/IV, but across the whole
 * generation instead of the single champion), the mean per-gene
 * Shannon entropy, the mean pairwise genome distance, and fitness
 * quartiles. The recorder appends one `analytics.csv` row per
 * generation from them; `gest explain` reads the trajectory back.
 */

#ifndef GEST_ANALYSIS_ANALYTICS_HH
#define GEST_ANALYSIS_ANALYTICS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/population.hh"
#include "isa/library.hh"

namespace gest {
namespace analysis {

/** analytics.csv format version (`# gest-analytics v<N>` comment). */
constexpr int analyticsCsvVersion = 1;

/** One analytics.csv row. */
struct AnalyticsRow
{
    int generation = 0;

    /**
     * Instruction occurrences per class summed over every individual
     * in the generation, indexed by isa::InstrClass. Counts, not
     * shares, so a hand computation on a tiny population can check
     * them exactly.
     */
    std::array<std::uint64_t, isa::numInstrClasses> classMix{};

    /**
     * Mean Shannon entropy (bits) of the instruction-definition
     * distribution per gene position. 0 for a population of clones;
     * log2(populationSize) when every individual differs everywhere.
     */
    double geneEntropyBits = 0.0;

    /**
     * Mean normalized Hamming distance over all individual pairs,
     * comparing whole instruction instances (definition + operands).
     * In [0, 1]; finer-grained than Population::genotypeDiversity,
     * which only counts distinct definitions per position.
     */
    double pairwiseDiversity = 0.0;

    // Fitness five-number summary over evaluated individuals.
    double fitnessMin = 0.0;
    double fitnessQ1 = 0.0;
    double fitnessMedian = 0.0;
    double fitnessQ3 = 0.0;
    double fitnessMax = 0.0;

    // Operator efficacy, filled by the recorder from the lineage
    // ledger: offspring per operator, and how many beat both parents.
    std::uint64_t crossoverChildren = 0;
    std::uint64_t crossoverImproved = 0;
    std::uint64_t mutationChildren = 0;
    std::uint64_t mutationImproved = 0;
    std::uint64_t eliteCopies = 0;
};

/** Population-wide instruction-class occurrence counts. */
std::array<std::uint64_t, isa::numInstrClasses>
populationClassMix(const isa::InstructionLibrary& lib,
                   const core::Population& pop);

/** Mean per-gene-position Shannon entropy (bits) of defIndex. */
double geneEntropyBits(const core::Population& pop);

/** Mean normalized pairwise Hamming distance (whole instances). */
double pairwiseDiversity(const core::Population& pop);

/**
 * Compute the population-derived fields of an AnalyticsRow (operator
 * efficacy stays zero; the recorder fills it from the ledger).
 */
AnalyticsRow computeAnalytics(const isa::InstructionLibrary& lib,
                              const core::Population& pop);

/** Appends analytics.csv rows (version comment + header on first). */
class AnalyticsWriter
{
  public:
    explicit AnalyticsWriter(std::string path);

    void append(const AnalyticsRow& row);

    const std::string& path() const { return _path; }

  private:
    std::string _path;
    bool _started = false;
};

/** Parse analytics.csv text; fatal() on malformed rows. */
std::vector<AnalyticsRow> parseAnalytics(const std::string& text);

/**
 * Read and parse @p run_dir/analytics.csv. @return false (leaving
 * @p out untouched) when the file does not exist — callers treat the
 * trajectory as optional; fatal() only on malformed content.
 */
bool tryLoadAnalytics(const std::string& run_dir,
                      std::vector<AnalyticsRow>& out);

} // namespace analysis
} // namespace gest

#endif // GEST_ANALYSIS_ANALYTICS_HH
