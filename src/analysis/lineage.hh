/**
 * @file
 * The lineage ledger: an append-only record of every individual's
 * birth across a GA run.
 *
 * The engine's `Individual` carries `parent1`/`parent2`, but until this
 * subsystem nothing ever read them; the search was a black box once the
 * run ended. The ledger writes one row per birth event into
 * `lineage.csv` — generation, id, creating operator (seed, resumed
 * seed, crossover, mutation, elite copy), parent ids, mutated gene
 * indices and the fitness the individual eventually scored — so
 * `gest explain` and `tools/lineage_to_dot.py` can reconstruct the
 * champion's full ancestry back to generation 0 after the fact.
 *
 * Resumed runs: a population loaded from a checkpoint references
 * parent ids that predate this ledger. Those individuals are recorded
 * with op `resumed`, and ancestry reconstruction stops at them
 * gracefully instead of failing.
 */

#ifndef GEST_ANALYSIS_LINEAGE_HH
#define GEST_ANALYSIS_LINEAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/population.hh"

namespace gest {
namespace analysis {

/** How an individual came to exist. */
enum class BirthOp
{
    Seed,      ///< random generation-0 individual
    Resumed,   ///< loaded from a seed population / checkpoint
    Crossover, ///< bred and left unmutated
    Mutation,  ///< bred and mutated (parents are the crossover pair)
    EliteCopy, ///< the elite carried unchanged into the next generation
};

/** Number of BirthOp values (for per-operator count arrays). */
constexpr int numBirthOps = 5;

/** @return the csv spelling, e.g. "elite_copy". */
const char* toString(BirthOp op);

/** Parse a csv spelling. @return true on success. */
bool birthOpFromString(std::string_view s, BirthOp& out);

/** One birth event — one lineage.csv row. */
struct LineageEvent
{
    int generation = 0;
    std::uint64_t id = 0;
    BirthOp op = BirthOp::Seed;
    std::uint64_t parent1 = 0; ///< 0 = none
    std::uint64_t parent2 = 0; ///< 0 = none

    /** Gene indices rewritten by mutation (empty for other ops). */
    std::vector<std::uint32_t> mutatedGenes;

    /** Fitness scored when the birth generation was evaluated. */
    double fitness = 0.0;
};

/**
 * lineage.csv format version written by this build. Like history.csv,
 * the first line is `# gest-lineage v<N>` and columns are append-only
 * across versions.
 */
constexpr int lineageCsvVersion = 1;

/**
 * Records birth events and appends them to `lineage.csv` once their
 * generation is evaluated (fitness is only known then). Also keeps an
 * id -> fitness map so operator efficacy (children beating both
 * parents) can be computed without re-reading the file.
 */
class LineageLedger
{
  public:
    /** @param path the lineage.csv file to create and append to. */
    explicit LineageLedger(std::string path);

    /**
     * Record a birth. Fitness may be unset; sealGeneration() fills it
     * in from the evaluated population and flushes the row.
     */
    void recordBirth(LineageEvent event);

    /**
     * Fill in fitness for this generation's pending births from the
     * evaluated population, append their rows to the file, and return
     * the sealed events (recorder uses them for operator efficacy).
     */
    std::vector<LineageEvent> sealGeneration(const core::Population& pop);

    /** Fitness of a recorded individual. @return true when known. */
    bool fitnessOf(std::uint64_t id, double& out) const;

    /** Birth events recorded and sealed so far. */
    std::uint64_t sealedEvents() const { return _sealed; }

    const std::string& path() const { return _path; }

  private:
    std::string _path;
    bool _started = false;
    std::vector<LineageEvent> _pending;
    std::unordered_map<std::uint64_t, double> _fitnessById;
    std::uint64_t _sealed = 0;
};

/**
 * Parse lineage.csv text. Header-driven like the history parser;
 * fatal() with an actionable message on malformed rows.
 */
std::vector<LineageEvent> parseLineage(const std::string& text);

/** Read and parse @p run_dir/lineage.csv; fatal() when absent. */
std::vector<LineageEvent> loadLineage(const std::string& run_dir);

/**
 * The champion's ancestry, reconstructed from a ledger. The champion
 * is the highest-fitness birth event (earliest generation, then lowest
 * id on ties, so reconstruction is deterministic).
 */
struct Ancestry
{
    /**
     * The primary descent line, champion first: from each individual,
     * the fitter parent is followed until a seed/resumed record (or an
     * ancestor the ledger does not know). Indices into the event list
     * handed to championAncestry().
     */
    std::vector<std::size_t> chain;

    /** Distinct ancestors of the champion (champion included). */
    std::size_t ancestorCount = 0;

    /** Ancestors per creating operator, indexed by BirthOp. */
    std::array<std::size_t, numBirthOps> opCounts{};

    /** True when every ancestry path terminates in a generation-0 row. */
    bool reachesGeneration0 = false;

    /**
     * Parent ids referenced by ancestors but absent from the ledger
     * (non-empty only for resumed runs whose ancestors predate it).
     */
    std::vector<std::uint64_t> unknownParents;
};

/**
 * Reconstruct the champion's ancestry from parsed lineage events.
 * Elite-copy rows re-record an existing id; the first record of each
 * id (its true birth) is used. fatal() when @p events is empty.
 */
Ancestry championAncestry(const std::vector<LineageEvent>& events);

} // namespace analysis
} // namespace gest

#endif // GEST_ANALYSIS_LINEAGE_HH
