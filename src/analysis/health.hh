/**
 * @file
 * The GA health watchdog: a generation observer that evaluates a small
 * set of declarative rules against the run as it unfolds and raises
 * alerts when the search looks sick — the campaign-level counterpart
 * of `gest explain`'s post-mortem pathology detection.
 *
 * The watchdog is strictly observational: it reads the per-generation
 * record (plus the coverage ledger's tick and the stats registry's
 * worker counters), never touches the GA RNG or the population, and
 * runs on the coordinator thread after the generation is sealed, so
 * every other artifact is byte-identical with the watchdog on or off.
 *
 * Each rule *latches*: it raises at most one alert per run, when its
 * condition first holds, so a stuck run produces one actionable line
 * per failure mode instead of one per generation. Alerts land in three
 * places: an append-only `# gest-alerts v1` alerts.csv in the run
 * directory, an `alerts` block in the status.json heartbeat, and — when
 * the run listens — the /alerts endpoint plus `alert` SSE events (see
 * docs/fleet.md, "Alert rules").
 */

#ifndef GEST_ANALYSIS_HEALTH_HH
#define GEST_ANALYSIS_HEALTH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hh"

namespace gest {
namespace analysis {

/** Alerts-ledger schema version written by this build. */
constexpr int alertsVersion = 1;

/**
 * Thresholds for the declarative rules. A zero/negative threshold
 * disables its rule; the defaults arm everything except the cache
 * floor (no universally sane floor exists — a cold library legitimately
 * runs at 0%).
 */
struct HealthRules
{
    /**
     * "fitness_plateau": best fitness has not improved for this many
     * consecutive generations.
     */
    int plateauGenerations = 20;

    /**
     * "throughput_collapse": this generation's measured evals/sec fell
     * below the run's median by more than this factor (after
     * throughputMinGenerations of warmup). Requires timing columns,
     * i.e. stats recording on.
     */
    double throughputCollapseFactor = 4.0;
    int throughputMinGenerations = 8;

    /**
     * "cache_hit_floor": the cumulative fitness-cache hit rate sits
     * below this floor after cacheWarmupGenerations. Disabled by
     * default (0.0: no rate is below the floor).
     */
    double cacheHitRateFloor = 0.0;
    int cacheWarmupGenerations = 5;

    /**
     * "coverage_stall": the coverage ledger reported zero new cells
     * for this many consecutive generations. Only armed when the run
     * records coverage (noteCoverage is fed).
     */
    int coverageStallGenerations = 25;

    /**
     * "worker_starvation": the least-busy evaluation worker did under
     * this share of the busiest worker's per-generation busy time for
     * workerStarvationGenerations in a row. Only armed with >= 2
     * workers reporting (threads > 1 and stats on).
     */
    double workerStarvationShare = 0.10;
    int workerStarvationGenerations = 5;

    // "non_finite_fitness" (best or average fitness is NaN/Inf) has no
    // threshold: it is always armed and always critical.
};

/** One raised alert. The message never contains commas or newlines. */
struct Alert
{
    int generation = 0;
    std::string rule;      ///< e.g. "fitness_plateau"
    std::string severity;  ///< "warning" or "critical"
    double value = 0.0;      ///< observed value the rule tripped on
    double threshold = 0.0;  ///< the configured threshold
    std::string message;
};

/** The heartbeat's `alerts` block, in composable form. */
struct HealthSummary
{
    std::uint64_t alerts = 0;
    int lastGeneration = -1;
    std::string lastRule;
};

class HealthWatchdog
{
  public:
    explicit HealthWatchdog(HealthRules rules = HealthRules());

    /**
     * Write alerts to @p path as `# gest-alerts v1` CSV. The header is
     * written immediately, so a clean run with the watchdog on leaves
     * a schema-valid, zero-row ledger that proves "no alerts" rather
     * than "not watched".
     */
    void setCsvPath(std::string path);

    const std::string& csvPath() const { return _csvPath; }

    /**
     * Observe every raised alert (the run driver forwards them to the
     * telemetry service). Called on the coordinator thread, before the
     * same generation's telemetry observer runs.
     */
    void setAlertListener(std::function<void(const Alert&)> fn)
    {
        _listener = std::move(fn);
    }

    /**
     * Feed one coverage-ledger tick (the coverage observer runs before
     * this watchdog's, so the tick for generation N is already in when
     * onGenerationEvaluated(N) fires). Never calling this leaves the
     * coverage_stall rule disarmed.
     */
    void noteCoverage(int generation, std::uint64_t new_cells);

    /** Evaluate every rule against the sealed generation. */
    void onGenerationEvaluated(const core::Population& pop,
                               const core::GenerationRecord& record);

    /** An engine generation observer bound to this watchdog. */
    core::Engine::GenerationCallback observer();

    const std::vector<Alert>& alerts() const { return _alerts; }

    HealthSummary summary() const;

    const HealthRules& rules() const { return _rules; }

  private:
    void raise(int generation, const char* rule, const char* severity,
               double value, double threshold, std::string message);

    HealthRules _rules;
    std::string _csvPath;
    std::function<void(const Alert&)> _listener;
    std::vector<Alert> _alerts;

    // Per-rule latches: one alert per run per failure mode.
    bool _plateauFired = false;
    bool _throughputFired = false;
    bool _cacheFired = false;
    bool _coverageFired = false;
    bool _starvationFired = false;
    bool _nonFiniteFired = false;

    // fitness_plateau state.
    bool _haveBest = false;
    double _bestSeen = 0.0;
    int _generationsSinceImprovement = 0;

    // throughput_collapse state.
    std::vector<double> _evalRates;  ///< evals/sec per timed generation

    // cache_hit_floor state.
    std::uint64_t _totalHits = 0;
    std::uint64_t _totalMisses = 0;
    int _generationsSeen = 0;

    // coverage_stall state.
    int _coverageTickGeneration = -1;
    std::uint64_t _coverageNewCells = 0;
    int _coverageStallStreak = 0;

    // worker_starvation state.
    std::vector<std::uint64_t> _workerBusyTotals;
    int _starvationStreak = 0;
};

/**
 * Parse @p run_dir/alerts.csv. @return false when the file is absent;
 * fatal() when it exists but is malformed or a later schema version.
 */
bool loadAlerts(const std::string& run_dir, std::vector<Alert>& out);

/** One alert as a JSON object (the /alerts rows and SSE payloads). */
std::string formatAlertJson(const Alert& alert);

} // namespace analysis
} // namespace gest

#endif // GEST_ANALYSIS_HEALTH_HH
