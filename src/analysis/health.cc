#include "analysis/health.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace analysis {

namespace {

const char* const alertsHeader =
    "generation,rule,severity,value,threshold,message\n";

/** Median of @p values (copied; the caller keeps insertion order). */
double
medianOf(const std::vector<double>& values)
{
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

/** %.6g without trailing noise, comma-free for CSV messages. */
std::string
compactDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

HealthWatchdog::HealthWatchdog(HealthRules rules) : _rules(rules) {}

void
HealthWatchdog::setCsvPath(std::string path)
{
    _csvPath = std::move(path);
    writeFile(_csvPath,
              std::string("# gest-alerts v") +
                  std::to_string(alertsVersion) + "\n" + alertsHeader);
}

void
HealthWatchdog::noteCoverage(int generation, std::uint64_t new_cells)
{
    _coverageTickGeneration = generation;
    _coverageNewCells = new_cells;
}

void
HealthWatchdog::raise(int generation, const char* rule,
                      const char* severity, double value,
                      double threshold, std::string message)
{
    Alert alert;
    alert.generation = generation;
    alert.rule = rule;
    alert.severity = severity;
    alert.value = value;
    alert.threshold = threshold;
    alert.message = std::move(message);

    warn("health: ", alert.rule, " at generation ", generation, ": ",
         alert.message);
    stats::StatsRegistry::instance()
        .counter("health.alerts", "alerts raised by the GA watchdog")
        .inc();

    if (!_csvPath.empty()) {
        std::ofstream out(_csvPath, std::ios::app);
        if (out) {
            char prefix[128];
            std::snprintf(prefix, sizeof(prefix), "%d,%s,%s,%.9g,%.9g,",
                          generation, rule, severity, value, threshold);
            out << prefix << alert.message << "\n";
        }
    }
    _alerts.push_back(alert);
    if (_listener)
        _listener(_alerts.back());
}

void
HealthWatchdog::onGenerationEvaluated(const core::Population& pop,
                                      const core::GenerationRecord& rec)
{
    (void)pop;
    ++_generationsSeen;
    _totalHits += rec.cacheHits;
    _totalMisses += rec.cacheMisses;

    // non_finite_fitness — always armed, always critical: a NaN best
    // poisons selection silently, so it outranks every other rule.
    if (!_nonFiniteFired && (!std::isfinite(rec.bestFitness) ||
                             !std::isfinite(rec.averageFitness))) {
        _nonFiniteFired = true;
        raise(rec.generation, "non_finite_fitness", "critical",
              rec.bestFitness, 0.0,
              std::isfinite(rec.bestFitness)
                  ? "average fitness is not finite"
                  : "best fitness is not finite");
    }

    // fitness_plateau: count consecutive generations without a strict
    // best-fitness improvement.
    if (!_haveBest || rec.bestFitness > _bestSeen) {
        _haveBest = true;
        _bestSeen = rec.bestFitness;
        _generationsSinceImprovement = 0;
    } else {
        ++_generationsSinceImprovement;
    }
    if (!_plateauFired && _rules.plateauGenerations > 0 &&
        _generationsSinceImprovement >= _rules.plateauGenerations) {
        _plateauFired = true;
        raise(rec.generation, "fitness_plateau", "warning",
              _generationsSinceImprovement, _rules.plateauGenerations,
              "no best-fitness improvement for " +
                  std::to_string(_generationsSinceImprovement) +
                  " generations (best " + compactDouble(_bestSeen) +
                  ")");
    }

    // throughput_collapse: this generation's measured evals/sec vs the
    // run median so far. Only timed generations with real measurements
    // contribute (cache-only generations would read as zero work, not
    // slow work).
    if (_rules.throughputCollapseFactor > 0.0 &&
        rec.evaluationMs > 0.0 && rec.cacheMisses > 0) {
        const double rate = static_cast<double>(rec.cacheMisses) /
                            (rec.evaluationMs / 1e3);
        if (!_throughputFired &&
            static_cast<int>(_evalRates.size()) >=
                _rules.throughputMinGenerations) {
            const double median = medianOf(_evalRates);
            if (median > 0.0 &&
                rate < median / _rules.throughputCollapseFactor) {
                _throughputFired = true;
                raise(rec.generation, "throughput_collapse", "warning",
                      rate, median / _rules.throughputCollapseFactor,
                      "evals/sec " + compactDouble(rate) +
                          " collapsed below run median " +
                          compactDouble(median) + " / " +
                          compactDouble(_rules.throughputCollapseFactor));
            }
        }
        _evalRates.push_back(rate);
    }

    // cache_hit_floor: cumulative hit rate after warmup.
    if (!_cacheFired && _rules.cacheHitRateFloor > 0.0 &&
        _generationsSeen > _rules.cacheWarmupGenerations &&
        _totalHits + _totalMisses > 0) {
        const double rate =
            static_cast<double>(_totalHits) /
            static_cast<double>(_totalHits + _totalMisses);
        if (rate < _rules.cacheHitRateFloor) {
            _cacheFired = true;
            raise(rec.generation, "cache_hit_floor", "warning", rate,
                  _rules.cacheHitRateFloor,
                  "cumulative cache hit rate " + compactDouble(rate) +
                      " below floor " +
                      compactDouble(_rules.cacheHitRateFloor));
        }
    }

    // coverage_stall: consecutive generations whose coverage tick
    // reported zero new cells. Generations without a tick (ledger off)
    // never arm the rule.
    if (_rules.coverageStallGenerations > 0 &&
        _coverageTickGeneration == rec.generation) {
        _coverageStallStreak =
            _coverageNewCells == 0 ? _coverageStallStreak + 1 : 0;
        if (!_coverageFired &&
            _coverageStallStreak >= _rules.coverageStallGenerations) {
            _coverageFired = true;
            raise(rec.generation, "coverage_stall", "warning",
                  _coverageStallStreak, _rules.coverageStallGenerations,
                  "no new coverage cells for " +
                      std::to_string(_coverageStallStreak) +
                      " generations");
        }
    }

    // worker_starvation: per-generation busy-time deltas of the
    // engine.worker.N.busy_us counters. Reading the counter list here
    // is once per generation on the coordinator thread — never the
    // evaluation hot path — and uses lookup only, so watching a run
    // cannot grow its stats.
    if (_rules.workerStarvationShare > 0.0) {
        std::vector<std::uint64_t> totals;
        for (const stats::Counter* counter :
             stats::StatsRegistry::instance().counterList()) {
            const std::string& name = counter->name();
            if (!startsWith(name, "engine.worker.") ||
                !endsWith(name, ".busy_us"))
                continue;
            const std::size_t index = static_cast<std::size_t>(
                std::strtoul(name.c_str() + 14, nullptr, 10));
            if (totals.size() <= index)
                totals.resize(index + 1, 0);
            totals[index] = counter->value();
        }
        if (totals.size() >= 2 &&
            _workerBusyTotals.size() == totals.size()) {
            std::uint64_t min_delta = UINT64_MAX, max_delta = 0;
            std::size_t min_worker = 0;
            for (std::size_t w = 0; w < totals.size(); ++w) {
                const std::uint64_t delta =
                    totals[w] - _workerBusyTotals[w];
                if (delta < min_delta) {
                    min_delta = delta;
                    min_worker = w;
                }
                max_delta = std::max(max_delta, delta);
            }
            const bool starved =
                max_delta > 0 &&
                static_cast<double>(min_delta) <
                    _rules.workerStarvationShare *
                        static_cast<double>(max_delta);
            _starvationStreak = starved ? _starvationStreak + 1 : 0;
            if (!_starvationFired &&
                _starvationStreak >= _rules.workerStarvationGenerations) {
                _starvationFired = true;
                const double share =
                    static_cast<double>(min_delta) /
                    static_cast<double>(max_delta);
                raise(rec.generation, "worker_starvation", "warning",
                      share, _rules.workerStarvationShare,
                      "worker " + std::to_string(min_worker) +
                          " did " + compactDouble(100.0 * share) +
                          "% of the busiest worker's work for " +
                          std::to_string(_starvationStreak) +
                          " generations");
            }
        }
        _workerBusyTotals = std::move(totals);
    }
}

core::Engine::GenerationCallback
HealthWatchdog::observer()
{
    return [this](const core::Population& pop,
                  const core::GenerationRecord& record) {
        onGenerationEvaluated(pop, record);
    };
}

HealthSummary
HealthWatchdog::summary() const
{
    HealthSummary out;
    out.alerts = _alerts.size();
    if (!_alerts.empty()) {
        out.lastGeneration = _alerts.back().generation;
        out.lastRule = _alerts.back().rule;
    }
    return out;
}

bool
loadAlerts(const std::string& run_dir, std::vector<Alert>& out)
{
    out.clear();
    std::string text;
    const std::string path = run_dir + "/alerts.csv";
    if (!tryReadFile(path, text))
        return false;

    bool saw_header = false;
    for (const std::string& line : split(text, '\n')) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            if (startsWith(line, "# gest-alerts v") &&
                line != "# gest-alerts v1")
                fatal(path, " is schema '", line,
                      "'; this build reads v1");
            continue;
        }
        if (!saw_header) {
            saw_header = true;
            continue;
        }
        // message is the 6th field and may contain no commas by
        // construction, so a plain split is exact.
        const std::vector<std::string> cells = split(line, ',');
        if (cells.size() < 6)
            fatal(path, ": truncated alert row '", line, "'");
        Alert alert;
        alert.generation =
            static_cast<int>(parseInt(cells[0], "alert generation"));
        alert.rule = cells[1];
        alert.severity = cells[2];
        alert.value = parseDouble(cells[3], "alert value");
        alert.threshold = parseDouble(cells[4], "alert threshold");
        alert.message = cells[5];
        out.push_back(std::move(alert));
    }
    return true;
}

std::string
formatAlertJson(const Alert& alert)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"generation\": %d, \"rule\": \"%s\", "
                  "\"severity\": \"%s\", \"value\": %.9g, "
                  "\"threshold\": %.9g, \"message\": ",
                  alert.generation, alert.rule.c_str(),
                  alert.severity.c_str(), alert.value, alert.threshold);
    return std::string(buf) + "\"" + jsonEscape(alert.message) + "\"}";
}

} // namespace analysis
} // namespace gest
