/**
 * @file
 * The run-wide evolution-analytics recorder the engine reports to.
 *
 * One Recorder per GA run, attached with Engine::setAnalytics(). The
 * engine calls the record*() hooks as individuals come into existence
 * (they never touch the GA RNG, so results are bit-identical with the
 * recorder attached or not) and onGenerationEvaluated() once per
 * evaluated generation, which:
 *
 *  - seals the generation's births into `lineage.csv` (LineageLedger);
 *  - computes and appends one `analytics.csv` row (instruction-class
 *    mix, gene entropy, pairwise diversity, fitness quartiles,
 *    operator efficacy);
 *  - mirrors the headline values into the stats registry
 *    (`analysis.*` gauges/counters, subject to stats::enabled());
 *  - atomically replaces `status.json`, a heartbeat external monitors
 *    can poll without parsing logs (see docs/analytics.md).
 */

#ifndef GEST_ANALYSIS_RECORDER_HH
#define GEST_ANALYSIS_RECORDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/analytics.hh"
#include "analysis/health.hh"
#include "analysis/lineage.hh"
#include "core/engine.hh"

namespace gest {
namespace analysis {

/**
 * Everything one status.json heartbeat says, in composable form. The
 * Recorder fills one per sealed generation; the telemetry service
 * builds its own when a run listens without analytics. Keeping the
 * fields and the renderer (formatStatusJson) in one place guarantees
 * the /status endpoint and the status.json file speak one schema.
 */
struct StatusSnapshot
{
    bool running = true;
    int generation = 0;
    int totalGenerations = 0;
    double bestFitness = 0.0;
    double averageFitness = 0.0;
    double diversity = 0.0;
    double geneEntropyBits = 0.0;
    double pairwiseDiversity = 0.0;
    std::uint64_t evaluations = 0;
    double cacheHitRate = 0.0;
    double evalsPerSec = 0.0;
    double elapsedSeconds = 0.0;
    double etaSeconds = 0.0;

    /** Steady-state fast-path counters (eval.*; 0 with stats off). */
    std::uint64_t steadyHits = 0;
    std::uint64_t cyclesSimulated = 0;
    std::uint64_t cyclesTiled = 0;

    /**
     * Population digests sealed by the provenance ledger so far; -1
     * (key omitted) when the run records no provenance. Because the
     * provenance observer runs after the recorder each generation,
     * mid-run heartbeats lag one generation; finish() reports the
     * exact final count.
     */
    std::int64_t digestsSealed = -1;

    /**
     * GA health-watchdog summary; alertsRaised = -1 (block omitted)
     * when the run is not watched, so unwatched runs keep the previous
     * schema byte-for-byte.
     */
    std::int64_t alertsRaised = -1;
    int lastAlertGeneration = -1;
    std::string lastAlertRule;

    /** Build identity of the serving binary (always present). */
    std::string gitSha;
    std::string build;

    /** host:port of the live telemetry server; empty when serverless. */
    std::string listen;
};

/** Render a snapshot as the status.json / GET /status payload. */
std::string formatStatusJson(const StatusSnapshot& snapshot);

/**
 * Copy the PR 5 steady-state fast-path counters (eval.steady_hits,
 * eval.cycles_simulated, eval.cycles_tiled) out of the stats registry
 * into @p snapshot, so external monitors see fast-path behavior from
 * the heartbeat alone. Zeros when stats recording is off.
 */
void fillSteadyCounters(StatusSnapshot& snapshot);

class Recorder
{
  public:
    /**
     * @param run_dir directory the artifacts are written into
     *        (created if absent)
     * @param lib the library individuals reference (must outlive the
     *        recorder)
     * @param total_generations the run's generation budget (ETA)
     */
    Recorder(std::string run_dir, const isa::InstructionLibrary& lib,
             int total_generations);

    /**
     * Record a generation-0 individual. @p resumed marks individuals
     * loaded from a seed population/checkpoint, whose parents may
     * predate this ledger.
     */
    void recordSeed(int generation, const core::Individual& ind,
                    bool resumed);

    /**
     * Record a bred child. @p mutated_genes holds the gene indices
     * mutation rewrote; empty means the child is a pure crossover.
     */
    void recordChild(int generation, const core::Individual& ind,
                     const std::vector<std::uint32_t>& mutated_genes);

    /** Record the elite being carried unchanged into @p generation. */
    void recordEliteCopy(int generation, const core::Individual& ind);

    /**
     * Seal the generation: flush lineage rows, append the analytics
     * row, update stats gauges and replace status.json.
     */
    void onGenerationEvaluated(const core::Population& pop,
                               const core::GenerationRecord& record);

    /** Write the final status.json with state "completed". */
    void finish();

    const std::string& runDir() const { return _runDir; }
    std::string statusPath() const { return _runDir + "/status.json"; }

    /**
     * Record the live telemetry server's bound address; subsequent
     * heartbeats carry it as "listen" so monitors (and the check_*
     * validators) can discover the scrape endpoint from the file.
     */
    void setListenAddress(std::string address)
    {
        _listenAddress = std::move(address);
    }

    /**
     * Observe every status.json payload as it is written (the
     * telemetry service mirrors it as GET /status without touching
     * disk). Called on the engine's coordinator thread.
     */
    void setStatusListener(std::function<void(const std::string&)> fn)
    {
        _statusListener = std::move(fn);
    }

    /**
     * Let heartbeats report how many population digests the provenance
     * ledger has sealed (the "digests_sealed" status.json key). The
     * provider is polled on the coordinator thread at status-write
     * time; unset means the key is omitted.
     */
    void setDigestProvider(std::function<std::uint64_t()> fn)
    {
        _digestProvider = std::move(fn);
    }

    /**
     * Let heartbeats carry the health watchdog's summary (the "alerts"
     * status.json block). Same polling contract as the digest provider;
     * unset means the block is omitted.
     */
    void setHealthProvider(std::function<HealthSummary()> fn)
    {
        _healthProvider = std::move(fn);
    }

    /** Analytics rows sealed so far (tests). */
    const std::vector<AnalyticsRow>& rows() const { return _rows; }

  private:
    void writeStatus(const core::Population& pop,
                     const core::GenerationRecord& record, bool running);

    std::string _runDir;
    const isa::InstructionLibrary& _lib;
    int _totalGenerations;

    LineageLedger _ledger;
    AnalyticsWriter _analytics;
    std::vector<AnalyticsRow> _rows;

    double _startUs;
    std::uint64_t _totalMeasured = 0;
    std::uint64_t _totalCacheHits = 0;
    std::string _listenAddress;
    std::function<void(const std::string&)> _statusListener;
    std::function<std::uint64_t()> _digestProvider;
    std::function<HealthSummary()> _healthProvider;

    // Last-generation summary repeated in the final status.json.
    bool _sawGeneration = false;
    double _lastBest = 0.0;
    double _lastAverage = 0.0;
    double _lastDiversity = 0.0;
    int _lastGeneration = 0;
};

} // namespace analysis
} // namespace gest

#endif // GEST_ANALYSIS_RECORDER_HH
