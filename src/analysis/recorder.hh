/**
 * @file
 * The run-wide evolution-analytics recorder the engine reports to.
 *
 * One Recorder per GA run, attached with Engine::setAnalytics(). The
 * engine calls the record*() hooks as individuals come into existence
 * (they never touch the GA RNG, so results are bit-identical with the
 * recorder attached or not) and onGenerationEvaluated() once per
 * evaluated generation, which:
 *
 *  - seals the generation's births into `lineage.csv` (LineageLedger);
 *  - computes and appends one `analytics.csv` row (instruction-class
 *    mix, gene entropy, pairwise diversity, fitness quartiles,
 *    operator efficacy);
 *  - mirrors the headline values into the stats registry
 *    (`analysis.*` gauges/counters, subject to stats::enabled());
 *  - atomically replaces `status.json`, a heartbeat external monitors
 *    can poll without parsing logs (see docs/analytics.md).
 */

#ifndef GEST_ANALYSIS_RECORDER_HH
#define GEST_ANALYSIS_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analytics.hh"
#include "analysis/lineage.hh"
#include "core/engine.hh"

namespace gest {
namespace analysis {

class Recorder
{
  public:
    /**
     * @param run_dir directory the artifacts are written into
     *        (created if absent)
     * @param lib the library individuals reference (must outlive the
     *        recorder)
     * @param total_generations the run's generation budget (ETA)
     */
    Recorder(std::string run_dir, const isa::InstructionLibrary& lib,
             int total_generations);

    /**
     * Record a generation-0 individual. @p resumed marks individuals
     * loaded from a seed population/checkpoint, whose parents may
     * predate this ledger.
     */
    void recordSeed(int generation, const core::Individual& ind,
                    bool resumed);

    /**
     * Record a bred child. @p mutated_genes holds the gene indices
     * mutation rewrote; empty means the child is a pure crossover.
     */
    void recordChild(int generation, const core::Individual& ind,
                     const std::vector<std::uint32_t>& mutated_genes);

    /** Record the elite being carried unchanged into @p generation. */
    void recordEliteCopy(int generation, const core::Individual& ind);

    /**
     * Seal the generation: flush lineage rows, append the analytics
     * row, update stats gauges and replace status.json.
     */
    void onGenerationEvaluated(const core::Population& pop,
                               const core::GenerationRecord& record);

    /** Write the final status.json with state "completed". */
    void finish();

    const std::string& runDir() const { return _runDir; }
    std::string statusPath() const { return _runDir + "/status.json"; }

    /** Analytics rows sealed so far (tests). */
    const std::vector<AnalyticsRow>& rows() const { return _rows; }

  private:
    void writeStatus(const core::Population& pop,
                     const core::GenerationRecord& record, bool running);

    std::string _runDir;
    const isa::InstructionLibrary& _lib;
    int _totalGenerations;

    LineageLedger _ledger;
    AnalyticsWriter _analytics;
    std::vector<AnalyticsRow> _rows;

    double _startUs;
    std::uint64_t _totalMeasured = 0;
    std::uint64_t _totalCacheHits = 0;

    // Last-generation summary repeated in the final status.json.
    bool _sawGeneration = false;
    double _lastBest = 0.0;
    double _lastAverage = 0.0;
    double _lastDiversity = 0.0;
    int _lastGeneration = 0;
};

} // namespace analysis
} // namespace gest

#endif // GEST_ANALYSIS_RECORDER_HH
