#include "output/top.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/health.hh"
#include "net/http_client.hh"
#include "output/report.hh"
#include "util/fileutil.hh"
#include "util/jsonlite.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace output {

namespace {

/** Fill the /status-shaped fields of @p out from parsed JSON. */
void
applyStatus(const json::Value& status, TopSnapshot& out)
{
    out.gitSha = status.stringOr("git_sha", "");
    out.build = status.stringOr("build", "");
    if (const json::Value* alerts = status.find("alerts")) {
        out.alertsRaised = static_cast<std::int64_t>(
            alerts->numberOr("raised", 0.0));
        out.lastAlertGeneration = static_cast<int>(
            alerts->numberOr("last_generation", -1.0));
        out.lastAlertRule = alerts->stringOr("last_rule", "");
    }
    out.state = status.stringOr("state", "unknown");
    out.generation =
        static_cast<int>(status.numberOr("generation", -1));
    out.totalGenerations =
        static_cast<int>(status.numberOr("total_generations", 0));
    out.bestFitness = status.numberOr("best_fitness", 0.0);
    out.averageFitness = status.numberOr("average_fitness", 0.0);
    out.diversity = status.numberOr("diversity", 0.0);
    out.evaluations = static_cast<std::uint64_t>(
        status.numberOr("evaluations", 0.0));
    out.cacheHitRate = status.numberOr("cache_hit_rate", 0.0);
    out.evalsPerSec = status.numberOr("evals_per_sec", 0.0);
    out.elapsedSeconds = status.numberOr("elapsed_seconds", 0.0);
    out.etaSeconds = status.numberOr("eta_seconds", 0.0);
    out.steadyHits = static_cast<std::uint64_t>(
        status.numberOr("steady_hits", 0.0));
    out.cyclesSimulated = static_cast<std::uint64_t>(
        status.numberOr("cycles_simulated", 0.0));
    out.cyclesTiled = static_cast<std::uint64_t>(
        status.numberOr("cycles_tiled", 0.0));
    // Negative sentinels survive analytics-off status.json (the
    // telemetry fallback composer writes -1) and missing keys alike.
    out.geneEntropyBits = status.numberOr("gene_entropy_bits", -1.0);
    out.pairwiseDiversity =
        status.numberOr("pairwise_diversity", -1.0);
}

/** Fill the coverage fields of @p out from parsed /coverage JSON. */
void
applyCoverage(const json::Value& coverage, TopSnapshot& out)
{
    const std::uint64_t total = static_cast<std::uint64_t>(
        coverage.numberOr("cells_total", 0.0));
    if (total == 0)
        return;  // "coverage not recorded" placeholder
    out.hasCoverage = true;
    out.coverageCellsTotal = total;
    out.coverageCellsSeen = static_cast<std::uint64_t>(
        coverage.numberOr("cells_seen", 0.0));
    out.coverageNewCells = static_cast<std::uint64_t>(
        coverage.numberOr("cells_new", 0.0));
    out.coverageSaturationPct =
        coverage.numberOr("saturation_pct", 0.0);
    out.coverageNoveltyRate = coverage.numberOr("novelty_rate", 0.0);
}

/**
 * Fill the coverage fields of @p out from @p run_dir's coverage.csv
 * (last data row), when the run recorded one.
 */
void
loadCoverageCsv(const std::string& run_dir, TopSnapshot& out)
{
    std::string text;
    if (!tryReadFile(run_dir + "/coverage.csv", text))
        return;

    // Map the header row's columns, then keep the last data row.
    std::vector<std::string> header;
    std::vector<std::string> last;
    for (const std::string& line : split(text, '\n')) {
        if (line.empty() || line[0] == '#')
            continue;
        if (header.empty())
            header = split(line, ',');
        else
            last = split(line, ',');
    }
    if (header.empty() || last.size() != header.size())
        return;
    auto field = [&](const char* name) -> std::string {
        for (std::size_t i = 0; i < header.size(); ++i) {
            if (header[i] == name)
                return last[i];
        }
        return "";
    };
    const std::string total = field("cells_total");
    if (total.empty())
        return;
    out.hasCoverage = true;
    out.coverageCellsTotal = std::strtoull(total.c_str(), nullptr, 10);
    out.coverageCellsSeen =
        std::strtoull(field("cells_seen").c_str(), nullptr, 10);
    out.coverageNewCells =
        std::strtoull(field("cells_new").c_str(), nullptr, 10);
    out.coverageSaturationPct =
        std::strtod(field("saturation_pct").c_str(), nullptr);
    out.coverageNoveltyRate =
        std::strtod(field("novelty_rate").c_str(), nullptr);
}

/** An alert as one dashboard pane line. */
std::string
formatAlertLine(int generation, const std::string& rule,
                const std::string& severity, const std::string& message)
{
    return "gen " + std::to_string(generation) + " " + rule + " (" +
           severity + "): " + message;
}

/** Fill the alerts pane of @p out from @p run_dir's alerts.csv. */
void
loadAlertsCsv(const std::string& run_dir, TopSnapshot& out)
{
    std::vector<analysis::Alert> alerts;
    try {
        if (!analysis::loadAlerts(run_dir, alerts))
            return;
    } catch (const FatalError&) {
        return;  // a sick ledger must not take the dashboard down
    }
    out.alertsRaised = static_cast<std::int64_t>(alerts.size());
    if (!alerts.empty()) {
        out.lastAlertGeneration = alerts.back().generation;
        out.lastAlertRule = alerts.back().rule;
    }
    const std::size_t first = alerts.size() > 3 ? alerts.size() - 3 : 0;
    for (std::size_t i = first; i < alerts.size(); ++i)
        out.alertLines.push_back(
            formatAlertLine(alerts[i].generation, alerts[i].rule,
                            alerts[i].severity, alerts[i].message));
}

/** Value of the first "<metric> <number>" line, or @p fallback. */
double
metricValue(const std::string& metrics, const std::string& metric,
            double fallback)
{
    std::size_t pos = 0;
    while (pos < metrics.size()) {
        std::size_t eol = metrics.find('\n', pos);
        if (eol == std::string::npos)
            eol = metrics.size();
        if (metrics.compare(pos, metric.size(), metric) == 0 &&
            pos + metric.size() < eol &&
            metrics[pos + metric.size()] == ' ') {
            return std::strtod(metrics.c_str() + pos + metric.size() + 1,
                               nullptr);
        }
        pos = eol + 1;
    }
    return fallback;
}

/** Per-worker busy fractions from engine.worker.N.busy_us counters. */
std::vector<double>
workerBusyFromMetrics(const std::string& metrics, double elapsed_s)
{
    std::vector<double> out;
    if (elapsed_s <= 0.0)
        return out;
    for (int w = 0;; ++w) {
        const double busy_us = metricValue(
            metrics,
            "gest_engine_worker_" + std::to_string(w) + "_busy_us_total",
            -1.0);
        if (busy_us < 0.0)
            break;
        out.push_back(
            std::min(1.0, busy_us / 1e6 / elapsed_s));
    }
    return out;
}

} // namespace

bool
fetchTopSnapshot(const std::string& url, TopSnapshot& out)
{
    out = TopSnapshot();
    out.live = true;
    std::string base = url;
    while (!base.empty() && base.back() == '/')
        base.pop_back();
    out.source = base;

    const net::HttpResult status_res = net::httpGet(base + "/status");
    if (!status_res.ok || status_res.status != 200) {
        out.error = status_res.ok
                        ? "/status returned HTTP " +
                              std::to_string(status_res.status)
                        : status_res.error;
        return false;
    }
    json::Value status;
    std::string parse_error;
    if (!json::parse(status_res.body, status, &parse_error)) {
        out.error = "/status is not valid JSON: " + parse_error;
        return false;
    }
    applyStatus(status, out);

    const net::HttpResult history_res = net::httpGet(base + "/history");
    if (history_res.ok && history_res.status == 200) {
        json::Value history;
        if (json::parse(history_res.body, history, nullptr) &&
            history.isArray()) {
            for (const json::Value& row : history.array) {
                out.bestTrajectory.push_back(
                    row.numberOr("best_fitness", 0.0));
                out.evaluationMs += row.numberOr("evaluation_ms", 0.0);
            }
        }
    }

    const net::HttpResult metrics_res = net::httpGet(base + "/metrics");
    if (metrics_res.ok && metrics_res.status == 200) {
        const std::string& m = metrics_res.body;
        out.selectionMs =
            metricValue(m, "gest_engine_selection_us_sum", 0.0) / 1e3;
        out.crossoverMs =
            metricValue(m, "gest_engine_crossover_us_sum", 0.0) / 1e3;
        out.mutationMs =
            metricValue(m, "gest_engine_mutation_us_sum", 0.0) / 1e3;
        out.simEvaluations = static_cast<std::uint64_t>(metricValue(
            m, "gest_measure_sim_evaluations_total", 0.0));
        out.workerBusyFrac =
            workerBusyFromMetrics(m, out.elapsedSeconds);
    }

    const net::HttpResult coverage_res =
        net::httpGet(base + "/coverage");
    if (coverage_res.ok && coverage_res.status == 200) {
        json::Value coverage;
        if (json::parse(coverage_res.body, coverage, nullptr))
            applyCoverage(coverage, out);
    }

    const net::HttpResult alerts_res = net::httpGet(base + "/alerts");
    if (alerts_res.ok && alerts_res.status == 200) {
        json::Value alerts;
        if (json::parse(alerts_res.body, alerts, nullptr) &&
            alerts.isArray()) {
            // /alerts exists on every serving build, but only watched
            // runs publish into it; status.json's alerts block is the
            // authority on watched-vs-not, so an empty array does not
            // flip the -1 sentinel on its own.
            if (!alerts.array.empty())
                out.alertsRaised =
                    static_cast<std::int64_t>(alerts.array.size());
            const std::size_t first =
                alerts.array.size() > 3 ? alerts.array.size() - 3 : 0;
            for (std::size_t i = first; i < alerts.array.size(); ++i) {
                const json::Value& a = alerts.array[i];
                out.alertLines.push_back(formatAlertLine(
                    static_cast<int>(a.numberOr("generation", 0.0)),
                    a.stringOr("rule", "?"),
                    a.stringOr("severity", "?"),
                    a.stringOr("message", "")));
            }
        }
    }
    return true;
}

bool
loadTopSnapshot(const std::string& run_dir, TopSnapshot& out)
{
    out = TopSnapshot();
    out.live = false;
    out.source = run_dir;

    // history.csv is the ground truth a run always writes; status.json
    // (analytics on) refines it with rates and the live state.
    try {
        const RunReport report = analyzeRun(run_dir);
        for (const HistoryRow& row : report.rows)
            out.bestTrajectory.push_back(row.bestFitness);
        if (!report.rows.empty()) {
            const HistoryRow& last = report.rows.back();
            out.generation = last.generation;
            out.bestFitness = report.bestFitness;
            out.averageFitness = last.averageFitness;
            out.diversity = last.diversity;
        }
        out.evaluations = report.totalMeasured;
        out.cacheHitRate = report.cacheHitRate();
        out.evalsPerSec = report.evaluationsPerSecond();
        out.selectionMs = report.selectionMs;
        out.crossoverMs = report.crossoverMs;
        out.mutationMs = report.mutationMs;
        out.evaluationMs = report.evaluationMs;
        out.steadyHits = report.steadyHits;
        out.cyclesSimulated = report.cyclesSimulated;
        out.cyclesTiled = report.cyclesTiled;
        out.simEvaluations = report.simEvaluations;
    } catch (const FatalError& err) {
        // A run directory that exists but holds no history.csv yet is
        // a run still evaluating its first generation, not an error:
        // `gest top` may be pointed at the directory before (or right
        // after) the run starts, so render a waiting frame and let the
        // next refresh fill in.
        if (dirExists(run_dir) &&
            !fileExists(run_dir + "/history.csv")) {
            out.state = "waiting for first generation";
            return true;
        }
        out.error = err.what();
        return false;
    }

    std::string status_text;
    if (tryReadFile(run_dir + "/status.json", status_text)) {
        json::Value status;
        if (json::parse(status_text, status, nullptr))
            applyStatus(status, out);
    } else {
        out.state = "unknown (no status.json; analytics off?)";
    }
    loadCoverageCsv(run_dir, out);
    loadAlertsCsv(run_dir, out);
    return true;
}

TopFilePoller::TopFilePoller(std::string run_dir)
    : _runDir(std::move(run_dir))
{}

void
TopFilePoller::reset()
{
    _offset = 0;
    _carry.clear();
    _columns.clear();
    _sawRow = false;
    _lastGeneration = -1;
    _lastAverage = 0.0;
    _lastDiversity = 0.0;
    _best = 0.0;
    _trajectory.clear();
    _hits = 0;
    _misses = 0;
    _selectionMs = 0.0;
    _crossoverMs = 0.0;
    _mutationMs = 0.0;
    _evaluationMs = 0.0;
}

void
TopFilePoller::ingestLine(const std::string& line)
{
    if (line.empty() || line[0] == '#')
        return;
    if (_columns.empty()) {
        _columns = split(line, ',');
        return;
    }
    const std::vector<std::string> cells = split(line, ',');
    // Skip malformed rows instead of failing: the poller can race the
    // run's writer, and the next refresh sees the repaired tail.
    if (cells.size() < _columns.size())
        return;
    auto cell = [&](const char* name) -> const char* {
        for (std::size_t i = 0; i < _columns.size(); ++i) {
            if (_columns[i] == name)
                return cells[i].c_str();
        }
        return nullptr;
    };
    const char* generation = cell("generation");
    const char* best = cell("best_fitness");
    if (generation == nullptr || best == nullptr)
        return;

    const double best_fitness = std::strtod(best, nullptr);
    _lastGeneration =
        static_cast<int>(std::strtol(generation, nullptr, 10));
    _trajectory.push_back(best_fitness);
    _best = _sawRow ? std::max(_best, best_fitness) : best_fitness;
    _sawRow = true;
    if (const char* v = cell("average_fitness"))
        _lastAverage = std::strtod(v, nullptr);
    if (const char* v = cell("diversity"))
        _lastDiversity = std::strtod(v, nullptr);
    if (const char* v = cell("cache_hits"))
        _hits += std::strtoull(v, nullptr, 10);
    if (const char* v = cell("cache_misses"))
        _misses += std::strtoull(v, nullptr, 10);
    if (const char* v = cell("selection_ms"))
        _selectionMs += std::strtod(v, nullptr);
    if (const char* v = cell("crossover_ms"))
        _crossoverMs += std::strtod(v, nullptr);
    if (const char* v = cell("mutation_ms"))
        _mutationMs += std::strtod(v, nullptr);
    if (const char* v = cell("evaluation_ms"))
        _evaluationMs += std::strtod(v, nullptr);
}

bool
TopFilePoller::poll(TopSnapshot& out)
{
    out = TopSnapshot();
    out.live = false;
    out.source = _runDir;

    std::ifstream in(_runDir + "/history.csv",
                     std::ios::binary | std::ios::ate);
    if (!in) {
        if (!dirExists(_runDir)) {
            out.error =
                "run directory '" + _runDir + "' does not exist";
            return false;
        }
        reset();
        out.state = "waiting for first generation";
        return true;
    }
    const std::uint64_t size =
        static_cast<std::uint64_t>(in.tellg());
    if (size < _offset)
        reset();  // truncated or replaced: re-parse from the top
    if (size > _offset) {
        in.seekg(static_cast<std::streamoff>(_offset));
        std::string chunk(static_cast<std::size_t>(size - _offset),
                          '\0');
        in.read(&chunk[0],
                static_cast<std::streamsize>(chunk.size()));
        chunk.resize(static_cast<std::size_t>(in.gcount()));
        _offset += chunk.size();
        _carry += chunk;
        std::size_t start = 0;
        for (std::size_t nl = _carry.find('\n');
             nl != std::string::npos; nl = _carry.find('\n', start)) {
            ingestLine(_carry.substr(start, nl - start));
            start = nl + 1;
        }
        _carry.erase(0, start);
    }
    if (!_sawRow) {
        out.state = "waiting for first generation";
        return true;
    }

    out.generation = _lastGeneration;
    out.bestFitness = _best;
    out.averageFitness = _lastAverage;
    out.diversity = _lastDiversity;
    out.bestTrajectory = _trajectory;
    out.evaluations = _misses;
    const std::uint64_t resolved = _hits + _misses;
    out.cacheHitRate =
        resolved > 0 ? static_cast<double>(_hits) /
                           static_cast<double>(resolved)
                     : 0.0;
    out.evalsPerSec = _evaluationMs > 0.0
                          ? static_cast<double>(_misses) /
                                (_evaluationMs / 1e3)
                          : 0.0;
    out.selectionMs = _selectionMs;
    out.crossoverMs = _crossoverMs;
    out.mutationMs = _mutationMs;
    out.evaluationMs = _evaluationMs;

    std::string status_text;
    if (tryReadFile(_runDir + "/status.json", status_text)) {
        json::Value status;
        if (json::parse(status_text, status, nullptr))
            applyStatus(status, out);
    } else {
        out.state = "unknown (no status.json; analytics off?)";
    }
    loadCoverageCsv(_runDir, out);
    loadAlertsCsv(_runDir, out);
    return true;
}

std::string
sparkline(const std::vector<double>& values, std::size_t width)
{
    static const char* glyphs[] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
    if (values.empty() || width == 0)
        return "";

    // Bucket down to `width` cells, keeping each bucket's last value
    // (the trajectory is monotone enough that last ≈ max and the right
    // edge always shows the current value).
    std::vector<double> cells;
    const std::size_t n = values.size();
    if (n <= width) {
        cells = values;
    } else {
        for (std::size_t c = 0; c < width; ++c) {
            const std::size_t end = (c + 1) * n / width;
            cells.push_back(values[end == 0 ? 0 : end - 1]);
        }
    }
    const auto [lo_it, hi_it] =
        std::minmax_element(cells.begin(), cells.end());
    const double lo = *lo_it, hi = *hi_it;
    std::string out;
    for (double v : cells) {
        int level = 3;  // flat line renders mid-height
        if (hi > lo) {
            level = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
            level = std::min(7, std::max(0, level));
        }
        out += glyphs[level];
    }
    return out;
}

std::string
renderTop(const TopSnapshot& snapshot)
{
    char line[256];
    std::string out;
    out += "gest top — " + snapshot.source +
           (snapshot.live ? " (live)" : " (files)");
    if (!snapshot.gitSha.empty() && snapshot.gitSha != "unknown")
        out += "   git " + snapshot.gitSha.substr(0, 12);
    out += "\n";
    if (!snapshot.build.empty())
        out += "build " + snapshot.build + "\n";
    if (!snapshot.error.empty()) {
        out += "error: " + snapshot.error + "\n";
        return out;
    }
    if (startsWith(snapshot.state, "waiting")) {
        out += "state " + snapshot.state +
               " — no history.csv yet; the dashboard fills in once "
               "the first generation is evaluated\n";
        return out;
    }

    std::snprintf(line, sizeof(line),
                  "state %-10s gen %d/%d   elapsed %.1fs   eta %.1fs\n",
                  snapshot.state.c_str(), snapshot.generation,
                  snapshot.totalGenerations, snapshot.elapsedSeconds,
                  snapshot.etaSeconds);
    out += line;
    std::snprintf(line, sizeof(line),
                  "best %.6f   avg %.6f   diversity %.3f\n",
                  snapshot.bestFitness, snapshot.averageFitness,
                  snapshot.diversity);
    out += line;
    // Analytics-derived measures: "n/a" — not a fake 0 — when the run
    // records no analytics (negative sentinel).
    if (snapshot.geneEntropyBits >= 0.0)
        std::snprintf(line, sizeof(line), "entropy %.2f bits   ",
                      snapshot.geneEntropyBits);
    else
        std::snprintf(line, sizeof(line), "entropy n/a   ");
    out += line;
    if (snapshot.pairwiseDiversity >= 0.0)
        std::snprintf(line, sizeof(line), "pairwise diversity %.3f\n",
                      snapshot.pairwiseDiversity);
    else
        std::snprintf(line, sizeof(line), "pairwise diversity n/a\n");
    out += line;
    if (!snapshot.bestTrajectory.empty()) {
        out += "fitness " + sparkline(snapshot.bestTrajectory, 60) +
               "\n";
    }
    std::snprintf(line, sizeof(line),
                  "evals %llu (%.1f/s)   cache hits %.1f%%",
                  static_cast<unsigned long long>(snapshot.evaluations),
                  snapshot.evalsPerSec, 100.0 * snapshot.cacheHitRate);
    out += line;
    if (snapshot.simEvaluations > 0) {
        std::snprintf(
            line, sizeof(line), "   steady hits %.1f%%",
            100.0 * static_cast<double>(snapshot.steadyHits) /
                static_cast<double>(snapshot.simEvaluations));
        out += line;
    }
    const std::uint64_t cycles =
        snapshot.cyclesSimulated + snapshot.cyclesTiled;
    if (cycles > 0) {
        std::snprintf(line, sizeof(line), "   tiled cycles %.1f%%",
                      100.0 * static_cast<double>(snapshot.cyclesTiled) /
                          static_cast<double>(cycles));
        out += line;
    }
    out += "\n";

    if (snapshot.hasCoverage) {
        std::snprintf(
            line, sizeof(line),
            "coverage %llu/%llu cells (%.1f%%)   new this gen %llu   "
            "novelty %.2f\n",
            static_cast<unsigned long long>(snapshot.coverageCellsSeen),
            static_cast<unsigned long long>(
                snapshot.coverageCellsTotal),
            snapshot.coverageSaturationPct,
            static_cast<unsigned long long>(snapshot.coverageNewCells),
            snapshot.coverageNoveltyRate);
        out += line;
    }

    const double phase_total = snapshot.selectionMs +
                               snapshot.crossoverMs +
                               snapshot.mutationMs +
                               snapshot.evaluationMs;
    if (phase_total > 0.0) {
        std::snprintf(line, sizeof(line),
                      "phases selection %.1f ms | crossover %.1f ms | "
                      "mutation %.1f ms | evaluation %.1f ms\n",
                      snapshot.selectionMs, snapshot.crossoverMs,
                      snapshot.mutationMs, snapshot.evaluationMs);
        out += line;
    }
    if (!snapshot.workerBusyFrac.empty()) {
        out += "workers";
        for (std::size_t w = 0; w < snapshot.workerBusyFrac.size();
             ++w) {
            std::snprintf(line, sizeof(line), " #%zu %.0f%%", w,
                          100.0 * snapshot.workerBusyFrac[w]);
            out += line;
        }
        out += "\n";
    }

    // Alerts pane: hidden for unwatched runs; a watched clean run says
    // so explicitly ("none" is information, absence is not).
    if (snapshot.alertsRaised == 0) {
        out += "alerts none\n";
    } else if (snapshot.alertsRaised > 0) {
        std::snprintf(
            line, sizeof(line), "alerts %lld (last: %s @ gen %d)\n",
            static_cast<long long>(snapshot.alertsRaised),
            snapshot.lastAlertRule.empty()
                ? "?"
                : snapshot.lastAlertRule.c_str(),
            snapshot.lastAlertGeneration);
        out += line;
        for (const std::string& alert : snapshot.alertLines)
            out += "  " + alert + "\n";
    }
    return out;
}

} // namespace output
} // namespace gest
