/**
 * @file
 * Run-directory output (§III.D).
 *
 * For every GA run the framework records, like the original tool:
 *  - one source file per individual, named
 *    `<population>_<id>_<m1>_<m2>....txt` so the fittest individual can
 *    be retrieved with basic UNIX commands (the first measurement is the
 *    fitness by default);
 *  - one reloadable population file per generation (seed populations);
 *  - the configuration and template used, for record keeping.
 */

#ifndef GEST_OUTPUT_RUN_WRITER_HH
#define GEST_OUTPUT_RUN_WRITER_HH

#include <map>
#include <string>

#include "core/engine.hh"
#include "core/population.hh"
#include "isa/asm_template.hh"
#include "isa/library.hh"

namespace gest {
namespace output {

class TraceWriter;

/**
 * history.csv format version written by this build. The first line of
 * the file is `# gest-history v<N>`; columns are strictly append-only
 * across versions so both old files and old readers keep working:
 *
 *  v1 (implicit, no version comment): generation..cache_misses
 *  v2: + selection_ms, crossover_ms, mutation_ms, evaluation_ms, io_ms
 */
constexpr int historyCsvVersion = 2;

/** Options controlling what a RunWriter records. */
struct RunWriterOptions
{
    /** Write per-individual source files. */
    bool writeIndividuals = true;

    /** Write per-generation population files. */
    bool writePopulations = true;

    /** Append one history.csv row per generation record. */
    bool writeHistoryCsv = true;

    /** Decimal places used for measurements embedded in file names. */
    int measurementPrecision = 2;
};

/**
 * Writes one GA run's artifacts under a root directory.
 */
class RunWriter
{
  public:
    /**
     * @param root output directory (created if absent)
     * @param lib the library individuals reference
     * @param tmpl template the individuals are printed into; when
     *        nullptr, bare loop bodies are written
     */
    RunWriter(std::string root, const isa::InstructionLibrary& lib,
              const isa::AsmTemplate* tmpl = nullptr,
              RunWriterOptions options = {});

    /** Record one evaluated individual of a given population. */
    void writeIndividual(int population, const core::Individual& ind);

    /** Record a whole evaluated population (individuals + checkpoint). */
    void writePopulation(const core::Population& pop);

    /**
     * Append one generation record to `history.csv` (version comment
     * and header written on the first call): fitness, diversity, the
     * fitness-cache hit/miss counters and the per-phase milliseconds
     * of that generation. @p io_ms is the time this writer spent
     * recording the generation's artifacts (callback() fills it in;
     * direct callers may pass 0).
     */
    void appendHistory(const core::GenerationRecord& record,
                       double io_ms = 0.0);

    /**
     * Attach a Chrome-trace writer (may be null): callback() then
     * emits one "write run dir" span per generation on tid 0. The
     * writer must outlive this RunWriter.
     */
    void setTraceWriter(TraceWriter* trace) { _trace = trace; }

    /** Copy configuration/template text into the run directory. */
    void writeRunMetadata(const std::string& config_text,
                          const std::string& template_text);

    /**
     * Convenience: an Engine generation callback that records every
     * generation through this writer.
     */
    core::Engine::GenerationCallback callback();

    /** The run directory. */
    const std::string& root() const { return _root; }

    /**
     * Every artifact this writer emitted, relative path → kind
     * ("individual", "population", "history", "config", "template").
     * The provenance manifest records these kinds; artifacts written
     * by other subsystems get their kind inferred from the file name.
     */
    const std::map<std::string, std::string>& artifactKinds() const
    {
        return _artifactKinds;
    }

    /**
     * Register an artifact another subsystem wrote under the run
     * directory (run-relative @p rel_path) with an explicit @p kind,
     * so the provenance manifest labels it without relying on
     * file-name inference (e.g. "coverage.csv" → "coverage",
     * "attribution/..." → "attribution").
     */
    void noteArtifact(const std::string& rel_path,
                      const std::string& kind)
    {
        _artifactKinds[rel_path] = kind;
    }

    /** File name an individual is stored under (naming convention). */
    std::string individualFileName(int population,
                                   const core::Individual& ind) const;

  private:
    std::string _root;
    const isa::InstructionLibrary& _lib;
    const isa::AsmTemplate* _template;
    RunWriterOptions _options;
    bool _historyStarted = false;
    TraceWriter* _trace = nullptr;
    std::map<std::string, std::string> _artifactKinds;
};

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_RUN_WRITER_HH
