/**
 * @file
 * Post-processing of saved GA runs (§III.D).
 *
 * The original release ships a Python script that reads the binary
 * population files and extracts per-generation statistics — the fitness
 * of the fittest individual and its instruction-mix breakdown. This is
 * that tool as a library.
 */

#ifndef GEST_OUTPUT_STATS_HH
#define GEST_OUTPUT_STATS_HH

#include <array>
#include <string>
#include <vector>

#include "core/population.hh"

namespace gest {
namespace output {

/** One generation's extracted statistics. */
struct GenerationSummary
{
    int generation = 0;
    double bestFitness = 0.0;
    double averageFitness = 0.0;
    std::uint64_t bestId = 0;
    std::size_t bestUniqueInstructions = 0;
    std::array<int, isa::numInstrClasses> bestBreakdown{};
    double diversity = 0.0;
};

/**
 * Load every `population_<n>.pop` file in @p run_dir and summarize it,
 * ordered by generation. fatal() if the directory holds none.
 */
std::vector<GenerationSummary> summarizeRun(
    const isa::InstructionLibrary& lib, const std::string& run_dir);

/** Summarize populations already in memory. */
std::vector<GenerationSummary> summarizePopulations(
    const isa::InstructionLibrary& lib,
    const std::vector<core::Population>& pops);

/**
 * The fittest individual across all generations of a saved run.
 * @param generation_out when non-null, receives its generation.
 */
core::Individual fittestInRun(const isa::InstructionLibrary& lib,
                              const std::string& run_dir,
                              int* generation_out = nullptr);

/** Render summaries as an aligned text table. */
std::string formatSummaryTable(
    const std::vector<GenerationSummary>& summaries);

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_STATS_HH
