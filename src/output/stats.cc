#include "output/stats.hh"

#include <algorithm>
#include <sstream>

#include "core/individual.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace output {

namespace {

GenerationSummary
summarizeOne(const isa::InstructionLibrary& lib,
             const core::Population& pop)
{
    GenerationSummary summary;
    summary.generation = pop.generation;
    summary.averageFitness = pop.averageFitness();
    summary.diversity = pop.genotypeDiversity();
    const int best = pop.bestIndex();
    if (best >= 0) {
        const core::Individual& ind =
            pop.individuals[static_cast<std::size_t>(best)];
        summary.bestFitness = ind.fitness;
        summary.bestId = ind.id;
        summary.bestUniqueInstructions =
            core::uniqueInstructionCount(ind);
        summary.bestBreakdown = core::classBreakdown(lib, ind);
    }
    return summary;
}

std::vector<core::Population>
loadRun(const isa::InstructionLibrary& lib, const std::string& run_dir)
{
    std::vector<core::Population> pops;
    for (const std::string& file : listFiles(run_dir)) {
        if (startsWith(file, "population_") && endsWith(file, ".pop"))
            pops.push_back(
                core::loadPopulation(lib, run_dir + "/" + file));
    }
    if (pops.empty())
        fatal("no population files found in '", run_dir, "'");
    std::sort(pops.begin(), pops.end(),
              [](const core::Population& a, const core::Population& b) {
                  return a.generation < b.generation;
              });
    return pops;
}

} // namespace

std::vector<GenerationSummary>
summarizeRun(const isa::InstructionLibrary& lib, const std::string& run_dir)
{
    return summarizePopulations(lib, loadRun(lib, run_dir));
}

std::vector<GenerationSummary>
summarizePopulations(const isa::InstructionLibrary& lib,
                     const std::vector<core::Population>& pops)
{
    std::vector<GenerationSummary> out;
    out.reserve(pops.size());
    for (const core::Population& pop : pops)
        out.push_back(summarizeOne(lib, pop));
    return out;
}

core::Individual
fittestInRun(const isa::InstructionLibrary& lib, const std::string& run_dir,
             int* generation_out)
{
    const std::vector<core::Population> pops = loadRun(lib, run_dir);
    const core::Individual* best = nullptr;
    int best_gen = 0;
    for (const core::Population& pop : pops) {
        const int index = pop.bestIndex();
        if (index < 0)
            continue;
        const core::Individual& ind =
            pop.individuals[static_cast<std::size_t>(index)];
        if (!best || ind.fitness > best->fitness) {
            best = &ind;
            best_gen = pop.generation;
        }
    }
    if (!best)
        fatal("run '", run_dir, "' has no evaluated individuals");
    if (generation_out)
        *generation_out = best_gen;
    return *best;
}

std::string
formatSummaryTable(const std::vector<GenerationSummary>& summaries)
{
    std::ostringstream os;
    os << "gen    best_fitness    avg_fitness  diversity  uniq  "
          "ShortInt LongInt Float/SIMD Mem Branch Nop\n";
    for (const GenerationSummary& s : summaries) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%3d  %14.4f %14.4f  %9.3f  %4zu  %8d %7d %10d "
                      "%3d %6d %3d",
                      s.generation, s.bestFitness, s.averageFitness,
                      s.diversity, s.bestUniqueInstructions,
                      s.bestBreakdown[0], s.bestBreakdown[1],
                      s.bestBreakdown[2], s.bestBreakdown[3],
                      s.bestBreakdown[4], s.bestBreakdown[5]);
        os << line << "\n";
    }
    return os.str();
}

} // namespace output
} // namespace gest
