/**
 * @file
 * The live terminal dashboard behind `gest top <url|run_dir>`: one
 * snapshot of an in-flight (or finished) run, collected either by
 * scraping the embedded telemetry server (/status, /history, /metrics)
 * or by polling the run directory's files when no server is listening.
 * Collection and rendering are split so tests can render canned
 * snapshots without a server or a terminal.
 */

#ifndef GEST_OUTPUT_TOP_HH
#define GEST_OUTPUT_TOP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gest {
namespace output {

/** Everything one `gest top` refresh displays. */
struct TopSnapshot
{
    /** true: scraped over HTTP; false: read from run-dir files. */
    bool live = false;

    /** The URL or run directory the snapshot came from. */
    std::string source;

    std::string state = "unknown";  ///< "running" or "completed"
    int generation = -1;
    int totalGenerations = 0;

    double bestFitness = 0.0;
    double averageFitness = 0.0;
    double diversity = 0.0;

    // Population analytics (negative: analytics off → rendered "n/a",
    // never a misleading 0).
    double geneEntropyBits = -1.0;
    double pairwiseDiversity = -1.0;

    // Search-space coverage (valid only when hasCoverage; filled from
    // /coverage live or coverage.csv's last row from files).
    bool hasCoverage = false;
    std::uint64_t coverageCellsSeen = 0;
    std::uint64_t coverageCellsTotal = 0;
    std::uint64_t coverageNewCells = 0;
    double coverageSaturationPct = 0.0;
    double coverageNoveltyRate = 0.0;

    std::uint64_t evaluations = 0;
    double cacheHitRate = 0.0;  ///< [0, 1]
    double evalsPerSec = 0.0;
    double elapsedSeconds = 0.0;
    double etaSeconds = 0.0;

    // Steady-state fast path (zero when stats were off).
    std::uint64_t steadyHits = 0;
    std::uint64_t cyclesSimulated = 0;
    std::uint64_t cyclesTiled = 0;
    std::uint64_t simEvaluations = 0;

    /** best_fitness per generation, for the sparkline. */
    std::vector<double> bestTrajectory;

    // Phase totals, milliseconds (zero when timing was off).
    double selectionMs = 0.0;
    double crossoverMs = 0.0;
    double mutationMs = 0.0;
    double evaluationMs = 0.0;

    /** Busy fraction per evaluation worker, [0, 1]; may be empty. */
    std::vector<double> workerBusyFrac;

    /** Non-empty when collection failed; other fields are unusable. */
    std::string error;
};

/**
 * Scrape @p url (a telemetry server root, e.g. "127.0.0.1:8080" or
 * "http://127.0.0.1:8080"). @return false — with snapshot.error set —
 * when the server is unreachable or responds malformed.
 */
bool fetchTopSnapshot(const std::string& url, TopSnapshot& out);

/**
 * Build the same snapshot from @p run_dir's files (status.json +
 * history.csv), for runs without --listen. @return false with
 * snapshot.error set when the directory holds no readable run.
 */
bool loadTopSnapshot(const std::string& run_dir, TopSnapshot& out);

/**
 * Map @p values onto a @p width-glyph Unicode sparkline (block
 * elements U+2581..U+2588); values are bucketed when there are more
 * than @p width of them. Empty input renders as an empty string.
 */
std::string sparkline(const std::vector<double>& values,
                      std::size_t width);

/** Render one dashboard frame (multi-line, trailing newline). */
std::string renderTop(const TopSnapshot& snapshot);

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_TOP_HH
