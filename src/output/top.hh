/**
 * @file
 * The live terminal dashboard behind `gest top <url|run_dir>`: one
 * snapshot of an in-flight (or finished) run, collected either by
 * scraping the embedded telemetry server (/status, /history, /metrics)
 * or by polling the run directory's files when no server is listening.
 * Collection and rendering are split so tests can render canned
 * snapshots without a server or a terminal.
 */

#ifndef GEST_OUTPUT_TOP_HH
#define GEST_OUTPUT_TOP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gest {
namespace output {

/** Everything one `gest top` refresh displays. */
struct TopSnapshot
{
    /** true: scraped over HTTP; false: read from run-dir files. */
    bool live = false;

    /** The URL or run directory the snapshot came from. */
    std::string source;

    std::string state = "unknown";  ///< "running" or "completed"
    int generation = -1;
    int totalGenerations = 0;

    double bestFitness = 0.0;
    double averageFitness = 0.0;
    double diversity = 0.0;

    // Population analytics (negative: analytics off → rendered "n/a",
    // never a misleading 0).
    double geneEntropyBits = -1.0;
    double pairwiseDiversity = -1.0;

    // Search-space coverage (valid only when hasCoverage; filled from
    // /coverage live or coverage.csv's last row from files).
    bool hasCoverage = false;
    std::uint64_t coverageCellsSeen = 0;
    std::uint64_t coverageCellsTotal = 0;
    std::uint64_t coverageNewCells = 0;
    double coverageSaturationPct = 0.0;
    double coverageNoveltyRate = 0.0;

    std::uint64_t evaluations = 0;
    double cacheHitRate = 0.0;  ///< [0, 1]
    double evalsPerSec = 0.0;
    double elapsedSeconds = 0.0;
    double etaSeconds = 0.0;

    // Steady-state fast path (zero when stats were off).
    std::uint64_t steadyHits = 0;
    std::uint64_t cyclesSimulated = 0;
    std::uint64_t cyclesTiled = 0;
    std::uint64_t simEvaluations = 0;

    /** best_fitness per generation, for the sparkline. */
    std::vector<double> bestTrajectory;

    // Phase totals, milliseconds (zero when timing was off).
    double selectionMs = 0.0;
    double crossoverMs = 0.0;
    double mutationMs = 0.0;
    double evaluationMs = 0.0;

    /** Busy fraction per evaluation worker, [0, 1]; may be empty. */
    std::vector<double> workerBusyFrac;

    /**
     * Health-watchdog alerts: -1 when the run is unwatched (pane
     * hidden), 0 for a watched clean run ("alerts none"). alertLines
     * holds the most recent alerts, already human-formatted.
     */
    std::int64_t alertsRaised = -1;
    int lastAlertGeneration = -1;
    std::string lastAlertRule;
    std::vector<std::string> alertLines;

    /** Build identity of the serving binary (from /status; may be ""). */
    std::string gitSha;
    std::string build;

    /** Non-empty when collection failed; other fields are unusable. */
    std::string error;
};

/**
 * Scrape @p url (a telemetry server root, e.g. "127.0.0.1:8080" or
 * "http://127.0.0.1:8080"). @return false — with snapshot.error set —
 * when the server is unreachable or responds malformed.
 */
bool fetchTopSnapshot(const std::string& url, TopSnapshot& out);

/**
 * Build the same snapshot from @p run_dir's files (status.json +
 * history.csv), for runs without --listen. @return false with
 * snapshot.error set when the directory holds no readable run.
 */
bool loadTopSnapshot(const std::string& run_dir, TopSnapshot& out);

/**
 * The incremental file poller behind `gest top <run_dir>`'s refresh
 * loop. loadTopSnapshot() re-reads and re-parses the whole history.csv
 * every call — O(run length) per refresh, quadratic over a run's
 * lifetime. The poller remembers its byte offset into history.csv and
 * parses only the bytes appended since the last poll (a partial
 * trailing line is carried until its newline arrives; a file that
 * shrank — truncated or replaced — resets the parse from offset 0), so
 * each refresh costs O(new generations). status.json, coverage.csv and
 * alerts.csv stay whole-file reads: they are bounded-size snapshots,
 * not append-only logs.
 */
class TopFilePoller
{
  public:
    explicit TopFilePoller(std::string run_dir);

    /**
     * Refresh @p out from the run directory. Same contract as
     * loadTopSnapshot, except malformed history rows are skipped
     * instead of failing the snapshot (the poller may observe a live
     * file mid-write).
     */
    bool poll(TopSnapshot& out);

  private:
    void reset();
    void ingestLine(const std::string& line);

    std::string _runDir;
    std::uint64_t _offset = 0;  ///< history.csv bytes consumed
    std::string _carry;         ///< partial line awaiting its newline
    std::vector<std::string> _columns;  ///< header → cell mapping

    // Aggregates over every ingested row.
    bool _sawRow = false;
    int _lastGeneration = -1;
    double _lastAverage = 0.0;
    double _lastDiversity = 0.0;
    double _best = 0.0;
    std::vector<double> _trajectory;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    double _selectionMs = 0.0;
    double _crossoverMs = 0.0;
    double _mutationMs = 0.0;
    double _evaluationMs = 0.0;
};

/**
 * Map @p values onto a @p width-glyph Unicode sparkline (block
 * elements U+2581..U+2588); values are bucketed when there are more
 * than @p width of them. Empty input renders as an empty string.
 */
std::string sparkline(const std::vector<double>& values,
                      std::size_t width);

/** Render one dashboard frame (multi-line, trailing newline). */
std::string renderTop(const TopSnapshot& snapshot);

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_TOP_HH
