#include "output/trace_writer.hh"

#include <cmath>
#include <cstdio>

#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace output {

namespace {

std::string
formatUs(double v)
{
    // Three decimals = nanosecond resolution, plenty for span display.
    // Timestamps are clamped non-negative: Chrome rejects negative ts.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v < 0.0 ? 0.0 : v);
    return buf;
}

std::string
formatArg(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan literals.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

TraceWriter::TraceWriter(std::string path)
    : _path(std::move(path)), _epochUs(stats::nowUs())
{
    // The Perfetto UI groups everything under pid 1 / the tids the
    // instrumentation sites pick; name the process up front.
    Event meta;
    meta.phase = 'M';
    meta.name = "process_name";
    meta.cat = "__metadata";
    meta.tid = 0;
    meta.ts = 0.0;
    meta.dur = 0.0;
    meta.args.emplace_back("__process_name", 0.0);
    _events.push_back(std::move(meta));
}

TraceWriter::~TraceWriter()
{
    try {
        finish();
    } catch (const FatalError& err) {
        // Destructors must not throw; the explicit finish() callers get
        // the fatal() path, a best-effort flush just reports.
        warn("trace not written: ", err.what());
    }
}

double
TraceWriter::nowUs() const
{
    return stats::nowUs() - _epochUs;
}

void
TraceWriter::completeEvent(const std::string& name, const std::string& cat,
                           int tid, double ts_us, double dur_us, Args args)
{
    Event event;
    event.phase = 'X';
    event.name = name;
    event.cat = cat;
    event.tid = tid;
    event.ts = ts_us - _epochUs;
    event.dur = dur_us;
    event.args = std::move(args);
    std::lock_guard<std::mutex> lock(_mutex);
    _events.push_back(std::move(event));
}

void
TraceWriter::instantEvent(const std::string& name, const std::string& cat,
                          int tid, Args args)
{
    Event event;
    event.phase = 'i';
    event.name = name;
    event.cat = cat;
    event.tid = tid;
    event.ts = nowUs();
    event.dur = 0.0;
    event.args = std::move(args);
    std::lock_guard<std::mutex> lock(_mutex);
    _events.push_back(std::move(event));
}

void
TraceWriter::setThreadName(int tid, const std::string& name)
{
    Event meta;
    meta.phase = 'M';
    meta.name = "thread_name";
    meta.cat = "__metadata";
    meta.tid = tid;
    meta.ts = 0.0;
    meta.dur = 0.0;
    // The thread name rides in the name-encoded args slot; see
    // appendEvent() for how metadata args are rendered.
    meta.args.emplace_back("__thread_name:" + name, 0.0);
    std::lock_guard<std::mutex> lock(_mutex);
    _events.push_back(std::move(meta));
}

std::size_t
TraceWriter::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _events.size();
}

void
TraceWriter::appendEvent(std::string& out, const Event& event) const
{
    out += "{\"name\":\"";
    out += jsonEscape(event.name);
    out += "\",\"cat\":\"";
    out += jsonEscape(event.cat);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    out += formatUs(event.ts);
    if (event.phase == 'X') {
        out += ",\"dur\":";
        out += formatUs(event.dur);
    }
    if (event.phase == 'i')
        out += ",\"s\":\"t\"";
    if (event.phase == 'M') {
        // Metadata events carry a string argument named "name".
        std::string value = "gest";
        for (const auto& [key, unused] : event.args) {
            if (startsWith(key, "__thread_name:"))
                value = key.substr(std::string("__thread_name:").size());
        }
        out += ",\"args\":{\"name\":\"" + jsonEscape(value) + "\"}";
    } else if (!event.args.empty()) {
        out += ",\"args\":{";
        bool first = true;
        for (const auto& [key, value] : event.args) {
            if (!first)
                out += ',';
            out += '"';
            out += jsonEscape(key);
            out += "\":";
            out += formatArg(value);
            first = false;
        }
        out += '}';
    }
    out += '}';
}

std::string
TraceWriter::toJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::string out = "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < _events.size(); ++i) {
        if (i != 0)
            out += ",\n";
        appendEvent(out, _events[i]);
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

void
TraceWriter::finish()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_finished)
            return;
        _finished = true;
    }
    writeFile(_path, toJson());
    debug("trace written to ", _path, " (", eventCount(), " events)");
}

} // namespace output
} // namespace gest
