/**
 * @file
 * The champion flight recorder: waveform capture for a run's best
 * individuals.
 *
 * The paper's artifacts of record are signal plots of the winning
 * viruses — the oscilloscope shot of the dI/dt virus (§VI), the
 * heat-up curve of the thermal virus (§V). The flight recorder
 * produces the simulated equivalent without instrumenting the GA hot
 * path: it watches each evaluated generation, and whenever an
 * individual enters the current top-K by fitness it re-measures that
 * individual once on a private measurement clone with a SignalProbe
 * attached. The GA's own measurements, RNG stream and artifacts are
 * untouched — fixed-seed runs are bit-identical with the recorder on
 * or off.
 *
 * At the end of the run, seal() writes one waveform artifact set per
 * surviving champion into `<run_dir>/waveforms/` (CSV + JSON + the
 * PDN current spectrum where applicable, see signal/waveform_io.hh)
 * plus an `index.csv` mapping ids to fitness and files.
 */

#ifndef GEST_OUTPUT_FLIGHT_RECORDER_HH
#define GEST_OUTPUT_FLIGHT_RECORDER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "measure/measurement.hh"
#include "signal/signal_probe.hh"

namespace gest {
namespace output {

/** Ring of the top-K individuals' signal captures for one run. */
class FlightRecorder
{
  public:
    /** One retained champion. */
    struct Entry
    {
        std::uint64_t id = 0;
        int generation = 0; ///< generation the capture was taken in
        double fitness = 0.0;
        std::vector<isa::InstructionInstance> code;
        std::vector<double> measurements;
        signal::SignalProbe probe;
    };

    /**
     * @param run_dir run directory seal() writes `waveforms/` into
     * @param top_k champions to retain (> 0)
     * @param measurement private clone used for instrumented re-runs
     */
    FlightRecorder(std::string run_dir, int top_k,
                   std::unique_ptr<measure::Measurement> measurement);

    /**
     * Inspect an evaluated generation; capture any individual that
     * enters the current top-K (each id at most once) and evict the
     * weakest entry past the bound.
     */
    void onGenerationEvaluated(const core::Population& pop,
                               const core::GenerationRecord& record);

    /** Entries currently retained, strongest first. */
    const std::vector<Entry>& entries() const { return _entries; }

    /** Instrumented re-measurements performed so far. */
    std::uint64_t captures() const { return _captures; }

    /**
     * Write the retained captures under `<run_dir>/waveforms/` and
     * return the paths written (index.csv first).
     */
    std::vector<std::string> seal();

  private:
    bool qualifies(double fitness) const;
    bool contains(std::uint64_t id) const;

    std::string _runDir;
    std::size_t _topK;
    std::unique_ptr<measure::Measurement> _measurement;
    std::vector<Entry> _entries; ///< sorted by fitness, strongest first
    std::uint64_t _captures = 0;
};

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_FLIGHT_RECORDER_HH
