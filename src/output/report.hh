/**
 * @file
 * Run-summary analysis behind `gest report <run_dir>` and the
 * search-dynamics analysis behind `gest explain <run_dir>`.
 *
 * `report` works from `history.csv` alone, so it summarizes both
 * finished and in-flight runs (the RunWriter appends one complete row
 * per generation); when the run also recorded `analytics.csv` the
 * summary gains an evolution-analytics section. The parser is
 * header-driven and tolerant of version drift: v1 files (pre-timing
 * columns) report everything except the phase breakdown, and columns
 * appended by future versions are ignored. Malformed or truncated
 * files fatal() with an actionable message instead of crashing or
 * mis-summarizing. `--json` renders the same summary machine-readable.
 *
 * `explain` reads `lineage.csv` + `analytics.csv` and answers *why*
 * the GA got where it did: the champion's ancestry chain back to
 * generation 0, which crossovers/mutations contributed its genes, the
 * instruction-mix trajectory across generations, and convergence
 * pathologies (diversity collapse, operator starvation, elite
 * stagnation) with actionable messages.
 */

#ifndef GEST_OUTPUT_REPORT_HH
#define GEST_OUTPUT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analytics.hh"
#include "analysis/lineage.hh"

namespace gest {
namespace output {

/** One parsed history.csv row (absent columns stay 0). */
struct HistoryRow
{
    int generation = 0;
    double bestFitness = 0.0;
    double averageFitness = 0.0;
    double diversity = 0.0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    double selectionMs = 0.0;
    double crossoverMs = 0.0;
    double mutationMs = 0.0;
    double evaluationMs = 0.0;
    double ioMs = 0.0;
};

/** Everything `gest report` prints, in analyzable form. */
struct RunReport
{
    std::string runDir;

    /** Version from the `# gest-history v<N>` comment (1 if absent). */
    int historyVersion = 1;

    /** True when the file carries the v2 per-phase timing columns. */
    bool hasTimings = false;

    std::vector<HistoryRow> rows;

    // Fitness trajectory.
    double firstBest = 0.0;
    double bestFitness = 0.0;
    int bestGeneration = 0;
    double finalAverage = 0.0;
    double finalDiversity = 0.0;

    // Work accounting.
    std::uint64_t totalMeasured = 0;   ///< sum of cache_misses
    std::uint64_t totalCacheHits = 0;  ///< sum of cache_hits

    // Phase totals in milliseconds (zero without timing columns).
    double selectionMs = 0.0;
    double crossoverMs = 0.0;
    double mutationMs = 0.0;
    double evaluationMs = 0.0;
    double ioMs = 0.0;

    /**
     * Evolution analytics, present when the run recorded
     * analytics.csv (runs predating the analytics subsystem, or with
     * <output analytics="false"/>, summarize without it).
     */
    bool hasAnalytics = false;
    double finalGeneEntropyBits = 0.0;
    double finalPairwiseDiversity = 0.0;
    std::uint64_t crossoverChildren = 0;  ///< run totals
    std::uint64_t crossoverImproved = 0;
    std::uint64_t mutationChildren = 0;
    std::uint64_t mutationImproved = 0;
    std::uint64_t eliteCopies = 0;

    /**
     * Steady-state fast-path counters, present when the run wrote
     * metrics.json with the eval.* counters (runs predating the fast
     * path, or with stats off, summarize without them). Cycle totals
     * span every simulated-platform measurement of the run.
     */
    bool hasSteadyStats = false;
    std::uint64_t simEvaluations = 0;   ///< measure.sim.evaluations
    std::uint64_t steadyHits = 0;       ///< eval.steady_hits
    std::uint64_t cyclesSimulated = 0;  ///< eval.cycles_simulated
    std::uint64_t cyclesTiled = 0;      ///< eval.cycles_tiled

    /** Cache hit rate in [0, 1]. */
    double cacheHitRate() const;

    /** Fraction of measurements cut short by the detector, [0, 1]. */
    double steadyHitRate() const;

    /** Fraction of measured cycles covered by tiling, [0, 1]. */
    double tiledCycleFraction() const;

    /** Measurements per second of evaluation time; 0 if unknown. */
    double evaluationsPerSecond() const;
};

/**
 * Parse @p run_dir/history.csv into a report. fatal() when the
 * directory or file is missing, holds no generation rows, or a row is
 * truncated/malformed.
 */
RunReport analyzeRun(const std::string& run_dir);

/** Render the report as the text `gest report` prints. */
std::string formatReport(const RunReport& report);

/**
 * Render the report as one JSON object (`gest report --json`): the
 * same fields machine-readable, with an "analytics" sub-object when
 * the run recorded analytics.csv (null otherwise).
 */
std::string formatReportJson(const RunReport& report);

/** Everything `gest explain` prints, in analyzable form. */
struct ExplainReport
{
    std::string runDir;

    /** Parsed lineage.csv, in file order. */
    std::vector<analysis::LineageEvent> events;

    /** Champion ancestry reconstructed from the ledger. */
    analysis::Ancestry ancestry;

    /** Parsed analytics.csv; empty when the file is absent. */
    std::vector<analysis::AnalyticsRow> analytics;

    /**
     * Detected convergence pathologies, one actionable message each;
     * empty when the search looks healthy.
     */
    std::vector<std::string> pathologies;
};

/**
 * Analyze @p run_dir/lineage.csv (+ analytics.csv when present) for
 * `gest explain`. fatal() when the directory or ledger is missing.
 */
ExplainReport analyzeExplain(const std::string& run_dir);

/** Render the report as the text `gest explain` prints. */
std::string formatExplain(const ExplainReport& report);

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_REPORT_HH
