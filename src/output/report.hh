/**
 * @file
 * Run-summary analysis behind `gest report <run_dir>`.
 *
 * Works from `history.csv` alone, so it summarizes both finished and
 * in-flight runs (the RunWriter appends one complete row per
 * generation). The parser is header-driven and tolerant of version
 * drift: v1 files (pre-timing columns) report everything except the
 * phase breakdown, and columns appended by future versions are
 * ignored. Malformed or truncated files fatal() with an actionable
 * message instead of crashing or mis-summarizing.
 */

#ifndef GEST_OUTPUT_REPORT_HH
#define GEST_OUTPUT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gest {
namespace output {

/** One parsed history.csv row (absent columns stay 0). */
struct HistoryRow
{
    int generation = 0;
    double bestFitness = 0.0;
    double averageFitness = 0.0;
    double diversity = 0.0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    double selectionMs = 0.0;
    double crossoverMs = 0.0;
    double mutationMs = 0.0;
    double evaluationMs = 0.0;
    double ioMs = 0.0;
};

/** Everything `gest report` prints, in analyzable form. */
struct RunReport
{
    std::string runDir;

    /** Version from the `# gest-history v<N>` comment (1 if absent). */
    int historyVersion = 1;

    /** True when the file carries the v2 per-phase timing columns. */
    bool hasTimings = false;

    std::vector<HistoryRow> rows;

    // Fitness trajectory.
    double firstBest = 0.0;
    double bestFitness = 0.0;
    int bestGeneration = 0;
    double finalAverage = 0.0;
    double finalDiversity = 0.0;

    // Work accounting.
    std::uint64_t totalMeasured = 0;   ///< sum of cache_misses
    std::uint64_t totalCacheHits = 0;  ///< sum of cache_hits

    // Phase totals in milliseconds (zero without timing columns).
    double selectionMs = 0.0;
    double crossoverMs = 0.0;
    double mutationMs = 0.0;
    double evaluationMs = 0.0;
    double ioMs = 0.0;

    /** Cache hit rate in [0, 1]. */
    double cacheHitRate() const;

    /** Measurements per second of evaluation time; 0 if unknown. */
    double evaluationsPerSecond() const;
};

/**
 * Parse @p run_dir/history.csv into a report. fatal() when the
 * directory or file is missing, holds no generation rows, or a row is
 * truncated/malformed.
 */
RunReport analyzeRun(const std::string& run_dir);

/** Render the report as the text `gest report` prints. */
std::string formatReport(const RunReport& report);

} // namespace output
} // namespace gest

#endif // GEST_OUTPUT_REPORT_HH
