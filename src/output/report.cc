#include "output/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "isa/instr_class.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace output {

namespace {

/** Column index by header name, or -1 when this file predates it. */
int
columnIndex(const std::vector<std::string>& header,
            const std::string& name)
{
    const auto it = std::find(header.begin(), header.end(), name);
    return it == header.end()
               ? -1
               : static_cast<int>(it - header.begin());
}

double
field(const std::vector<std::string>& fields, int index,
      const std::string& what, int line)
{
    if (index < 0)
        return 0.0;
    return parseDouble(fields[static_cast<std::size_t>(index)],
                       detail::concat(what, " (history.csv line ", line,
                                      ")"));
}

/**
 * Pull one counter value out of a metrics.json dump. The file is our
 * own StatsRegistry output (`"name": <integer>` pairs), so a targeted
 * string search is enough — no JSON parser needed or shipped.
 */
bool
tryMetricsCounter(const std::string& metrics, const std::string& name,
                  std::uint64_t& out)
{
    const std::string key = detail::concat("\"", name, "\":");
    const std::size_t at = metrics.find(key);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + key.size();
    while (i < metrics.size() && metrics[i] == ' ')
        ++i;
    std::uint64_t value = 0;
    bool any = false;
    while (i < metrics.size() && metrics[i] >= '0' &&
           metrics[i] <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(metrics[i] - '0');
        any = true;
        ++i;
    }
    if (!any)
        return false;
    out = value;
    return true;
}

} // namespace

double
RunReport::cacheHitRate() const
{
    const double total =
        static_cast<double>(totalMeasured + totalCacheHits);
    return total == 0.0 ? 0.0
                        : static_cast<double>(totalCacheHits) / total;
}

double
RunReport::evaluationsPerSecond() const
{
    if (!hasTimings || evaluationMs <= 0.0)
        return 0.0;
    return static_cast<double>(totalMeasured) / (evaluationMs / 1000.0);
}

double
RunReport::steadyHitRate() const
{
    return simEvaluations == 0
               ? 0.0
               : static_cast<double>(steadyHits) /
                     static_cast<double>(simEvaluations);
}

double
RunReport::tiledCycleFraction() const
{
    const double total =
        static_cast<double>(cyclesSimulated + cyclesTiled);
    return total == 0.0 ? 0.0
                        : static_cast<double>(cyclesTiled) / total;
}

RunReport
analyzeRun(const std::string& run_dir)
{
    if (!dirExists(run_dir))
        fatal("run directory '", run_dir, "' does not exist");
    const std::string path = run_dir + "/history.csv";
    std::string text;
    if (!tryReadFile(path, text))
        fatal("no history.csv in '", run_dir,
              "' — is this a gest run directory? Pass the directory "
              "named by <output directory=\"...\"> (runs without an "
              "<output> element record no history)");

    RunReport report;
    report.runDir = run_dir;

    std::vector<std::string> header;
    int selection = -1, crossoverCol = -1, mutationCol = -1;
    int evaluation = -1, io = -1;
    int generation = -1, bestF = -1, avgF = -1, div = -1, hits = -1,
        misses = -1;

    int line_number = 0;
    for (const std::string& raw : split(text, '\n')) {
        ++line_number;
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        if (line.front() == '#') {
            // `# gest-history v<N>` — anything else is a plain comment.
            const std::vector<std::string> words = splitWhitespace(line);
            if (words.size() >= 2 && words[1] == "gest-history" &&
                words.size() >= 3 && words[2].size() > 1 &&
                words[2].front() == 'v') {
                report.historyVersion = static_cast<int>(
                    parseInt(words[2].substr(1), "history version"));
            }
            continue;
        }
        if (header.empty()) {
            header = split(line, ',');
            if (columnIndex(header, "generation") != 0)
                fatal("'", path, "' does not look like a gest history "
                      "file: expected a header starting with "
                      "'generation', got '", line, "'");
            generation = columnIndex(header, "generation");
            bestF = columnIndex(header, "best_fitness");
            avgF = columnIndex(header, "average_fitness");
            div = columnIndex(header, "diversity");
            hits = columnIndex(header, "cache_hits");
            misses = columnIndex(header, "cache_misses");
            selection = columnIndex(header, "selection_ms");
            crossoverCol = columnIndex(header, "crossover_ms");
            mutationCol = columnIndex(header, "mutation_ms");
            evaluation = columnIndex(header, "evaluation_ms");
            io = columnIndex(header, "io_ms");
            report.hasTimings = evaluation >= 0;
            continue;
        }
        const std::vector<std::string> fields = split(line, ',');
        if (fields.size() < header.size())
            fatal("'", path, "' is truncated at line ", line_number,
                  " (", fields.size(), " of ", header.size(),
                  " columns): the run may have been interrupted "
                  "mid-write; delete that line to summarize the "
                  "completed generations");
        HistoryRow row;
        row.generation = static_cast<int>(
            field(fields, generation, "generation", line_number));
        row.bestFitness =
            field(fields, bestF, "best_fitness", line_number);
        row.averageFitness =
            field(fields, avgF, "average_fitness", line_number);
        row.diversity = field(fields, div, "diversity", line_number);
        row.cacheHits = static_cast<std::uint64_t>(
            field(fields, hits, "cache_hits", line_number));
        row.cacheMisses = static_cast<std::uint64_t>(
            field(fields, misses, "cache_misses", line_number));
        row.selectionMs =
            field(fields, selection, "selection_ms", line_number);
        row.crossoverMs =
            field(fields, crossoverCol, "crossover_ms", line_number);
        row.mutationMs =
            field(fields, mutationCol, "mutation_ms", line_number);
        row.evaluationMs =
            field(fields, evaluation, "evaluation_ms", line_number);
        row.ioMs = field(fields, io, "io_ms", line_number);
        report.rows.push_back(row);
    }

    if (header.empty())
        fatal("'", path, "' is empty — the run has not written its "
              "header yet (or the file was clobbered); rerun or wait "
              "for the first generation to complete");
    if (report.rows.empty())
        fatal("'", path, "' contains no generation rows yet — the run "
              "has not completed generation 0; retry once it has");

    report.firstBest = report.rows.front().bestFitness;
    report.finalAverage = report.rows.back().averageFitness;
    report.finalDiversity = report.rows.back().diversity;
    for (const HistoryRow& row : report.rows) {
        if (row.bestFitness > report.bestFitness ||
            &row == &report.rows.front()) {
            report.bestFitness = row.bestFitness;
            report.bestGeneration = row.generation;
        }
        report.totalMeasured += row.cacheMisses;
        report.totalCacheHits += row.cacheHits;
        report.selectionMs += row.selectionMs;
        report.crossoverMs += row.crossoverMs;
        report.mutationMs += row.mutationMs;
        report.evaluationMs += row.evaluationMs;
        report.ioMs += row.ioMs;
    }

    std::vector<analysis::AnalyticsRow> analytics;
    if (analysis::tryLoadAnalytics(run_dir, analytics) &&
        !analytics.empty()) {
        report.hasAnalytics = true;
        report.finalGeneEntropyBits = analytics.back().geneEntropyBits;
        report.finalPairwiseDiversity =
            analytics.back().pairwiseDiversity;
        for (const analysis::AnalyticsRow& row : analytics) {
            report.crossoverChildren += row.crossoverChildren;
            report.crossoverImproved += row.crossoverImproved;
            report.mutationChildren += row.mutationChildren;
            report.mutationImproved += row.mutationImproved;
            report.eliteCopies += row.eliteCopies;
        }
    }

    std::string metrics;
    if (tryReadFile(run_dir + "/metrics.json", metrics)) {
        // All three eval.* counters are registered together, so any
        // one present means the run used a fast-path-aware build.
        const bool have =
            tryMetricsCounter(metrics, "eval.steady_hits",
                              report.steadyHits) &&
            tryMetricsCounter(metrics, "eval.cycles_simulated",
                              report.cyclesSimulated) &&
            tryMetricsCounter(metrics, "eval.cycles_tiled",
                              report.cyclesTiled);
        if (have) {
            report.hasSteadyStats = true;
            tryMetricsCounter(metrics, "measure.sim.evaluations",
                              report.simEvaluations);
        }
    }
    return report;
}

std::string
formatReport(const RunReport& report)
{
    std::ostringstream os;
    char buf[256];

    os << "run: " << report.runDir << " (history v"
       << report.historyVersion << ", " << report.rows.size()
       << " generations)\n";

    std::snprintf(buf, sizeof(buf),
                  "fitness: first-gen best %.6f -> best %.6f at "
                  "generation %d",
                  report.firstBest, report.bestFitness,
                  report.bestGeneration);
    os << buf;
    if (report.firstBest > 0.0) {
        std::snprintf(buf, sizeof(buf), " (%+.1f%%)",
                      100.0 * (report.bestFitness - report.firstBest) /
                          report.firstBest);
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n         final average %.6f, final diversity %.3f\n",
                  report.finalAverage, report.finalDiversity);
    os << buf;

    std::snprintf(buf, sizeof(buf),
                  "evaluations: %llu measured, %llu cache hits "
                  "(%.1f%% hit rate)\n",
                  static_cast<unsigned long long>(report.totalMeasured),
                  static_cast<unsigned long long>(report.totalCacheHits),
                  100.0 * report.cacheHitRate());
    os << buf;

    if (report.hasSteadyStats) {
        std::snprintf(
            buf, sizeof(buf),
            "steady state: %llu of %llu simulated measurements hit "
            "(%.1f%%)\n",
            static_cast<unsigned long long>(report.steadyHits),
            static_cast<unsigned long long>(report.simEvaluations),
            100.0 * report.steadyHitRate());
        os << buf;
        std::snprintf(
            buf, sizeof(buf),
            "              %llu cycles stepped, %llu tiled "
            "(%.1f%% of measured cycles skipped)\n",
            static_cast<unsigned long long>(report.cyclesSimulated),
            static_cast<unsigned long long>(report.cyclesTiled),
            100.0 * report.tiledCycleFraction());
        os << buf;
    }

    if (report.hasAnalytics) {
        std::snprintf(buf, sizeof(buf),
                      "evolution analytics: final gene entropy %.3f "
                      "bits, pairwise diversity %.3f\n",
                      report.finalGeneEntropyBits,
                      report.finalPairwiseDiversity);
        os << buf;
        auto efficacy = [&](const char* name, std::uint64_t children,
                            std::uint64_t improved) {
            std::snprintf(
                buf, sizeof(buf),
                "  %-10s %6llu children, %6llu improved on both "
                "parents (%5.1f%%)\n",
                name, static_cast<unsigned long long>(children),
                static_cast<unsigned long long>(improved),
                children == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(improved) /
                          static_cast<double>(children));
            os << buf;
        };
        efficacy("crossover", report.crossoverChildren,
                 report.crossoverImproved);
        efficacy("mutation", report.mutationChildren,
                 report.mutationImproved);
        std::snprintf(buf, sizeof(buf), "  %-10s %6llu carried\n",
                      "elite",
                      static_cast<unsigned long long>(
                          report.eliteCopies));
        os << buf;
    }

    if (!report.hasTimings) {
        os << "phase breakdown: n/a — this history.csv predates the "
              "timing columns (v2); rerun with a current build to "
              "record them\n";
        return os.str();
    }

    const double eps = report.evaluationsPerSecond();
    if (eps > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "throughput: %.0f evaluations/sec (over %.2f s "
                      "of evaluation time)\n",
                      eps, report.evaluationMs / 1000.0);
        os << buf;
    } else {
        os << "throughput: n/a — no timed evaluation recorded (run "
              "with stats enabled)\n";
    }

    const double total = report.selectionMs + report.crossoverMs +
                         report.mutationMs + report.evaluationMs +
                         report.ioMs;
    os << "phase breakdown (totals across the run):\n";
    auto phase = [&](const char* name, double ms) {
        std::snprintf(buf, sizeof(buf), "  %-12s %10.1f ms  (%5.1f%%)\n",
                      name, ms, total > 0.0 ? 100.0 * ms / total : 0.0);
        os << buf;
    };
    phase("selection", report.selectionMs);
    phase("crossover", report.crossoverMs);
    phase("mutation", report.mutationMs);
    phase("evaluation", report.evaluationMs);
    phase("output I/O", report.ioMs);
    return os.str();
}

namespace {

/** A double as a JSON number (always finite here). */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonNumber(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
formatReportJson(const RunReport& report)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"run_dir\": \"" << jsonEscape(report.runDir) << "\",\n"
       << "  \"history_version\": " << report.historyVersion << ",\n"
       << "  \"generations\": " << report.rows.size() << ",\n"
       << "  \"first_best\": " << jsonNumber(report.firstBest) << ",\n"
       << "  \"best_fitness\": " << jsonNumber(report.bestFitness)
       << ",\n"
       << "  \"best_generation\": " << report.bestGeneration << ",\n"
       << "  \"final_average\": " << jsonNumber(report.finalAverage)
       << ",\n"
       << "  \"final_diversity\": " << jsonNumber(report.finalDiversity)
       << ",\n"
       << "  \"total_measured\": " << jsonNumber(report.totalMeasured)
       << ",\n"
       << "  \"total_cache_hits\": "
       << jsonNumber(report.totalCacheHits) << ",\n"
       << "  \"cache_hit_rate\": " << jsonNumber(report.cacheHitRate())
       << ",\n"
       << "  \"has_timings\": "
       << (report.hasTimings ? "true" : "false") << ",\n"
       << "  \"evaluations_per_second\": "
       << jsonNumber(report.evaluationsPerSecond()) << ",\n";
    os << "  \"phase_ms\": {"
       << "\"selection\": " << jsonNumber(report.selectionMs) << ", "
       << "\"crossover\": " << jsonNumber(report.crossoverMs) << ", "
       << "\"mutation\": " << jsonNumber(report.mutationMs) << ", "
       << "\"evaluation\": " << jsonNumber(report.evaluationMs) << ", "
       << "\"io\": " << jsonNumber(report.ioMs) << "},\n";
    if (report.hasSteadyStats) {
        os << "  \"steady_state\": {"
           << "\"hits\": " << jsonNumber(report.steadyHits) << ", "
           << "\"evaluations\": " << jsonNumber(report.simEvaluations)
           << ", "
           << "\"hit_rate\": " << jsonNumber(report.steadyHitRate())
           << ", "
           << "\"cycles_simulated\": "
           << jsonNumber(report.cyclesSimulated) << ", "
           << "\"cycles_tiled\": " << jsonNumber(report.cyclesTiled)
           << ", "
           << "\"tiled_cycle_fraction\": "
           << jsonNumber(report.tiledCycleFraction()) << "},\n";
    } else {
        os << "  \"steady_state\": null,\n";
    }
    if (report.hasAnalytics) {
        os << "  \"analytics\": {\n"
           << "    \"final_gene_entropy_bits\": "
           << jsonNumber(report.finalGeneEntropyBits) << ",\n"
           << "    \"final_pairwise_diversity\": "
           << jsonNumber(report.finalPairwiseDiversity) << ",\n"
           << "    \"crossover_children\": "
           << jsonNumber(report.crossoverChildren) << ",\n"
           << "    \"crossover_improved\": "
           << jsonNumber(report.crossoverImproved) << ",\n"
           << "    \"mutation_children\": "
           << jsonNumber(report.mutationChildren) << ",\n"
           << "    \"mutation_improved\": "
           << jsonNumber(report.mutationImproved) << ",\n"
           << "    \"elite_copies\": " << jsonNumber(report.eliteCopies)
           << "\n  }\n";
    } else {
        os << "  \"analytics\": null\n";
    }
    os << "}\n";
    return os.str();
}

namespace {

/**
 * Convergence-pathology screening over the analytics trajectory. Each
 * detector appends one actionable message; the window sizes are modest
 * so short runs are judged on what they have.
 */
void
detectPathologies(const std::vector<analysis::AnalyticsRow>& rows,
                  std::vector<std::string>& out)
{
    if (rows.empty())
        return;
    char buf[512];

    // Diversity collapse: the population has become (nearly) clones,
    // so crossover can no longer recombine anything new.
    const double finalDiversity = rows.back().pairwiseDiversity;
    if (rows.size() >= 2 && finalDiversity < 0.05) {
        std::snprintf(
            buf, sizeof(buf),
            "diversity collapse: final pairwise diversity %.3f "
            "(below 0.05) — the population is near-clonal and "
            "crossover is recombining copies; raise mutation_rate "
            "or population_size, or lower tournament_size to ease "
            "selection pressure",
            finalDiversity);
        out.push_back(buf);
    }

    // Operator starvation: an operator keeps producing children but
    // none has beaten its parents for a meaningful stretch.
    const std::size_t window = std::min<std::size_t>(10, rows.size());
    std::uint64_t xChildren = 0, xImproved = 0;
    std::uint64_t mChildren = 0, mImproved = 0;
    for (std::size_t i = rows.size() - window; i < rows.size(); ++i) {
        xChildren += rows[i].crossoverChildren;
        xImproved += rows[i].crossoverImproved;
        mChildren += rows[i].mutationChildren;
        mImproved += rows[i].mutationImproved;
    }
    if (xChildren > 0 && xImproved == 0) {
        std::snprintf(
            buf, sizeof(buf),
            "crossover starvation: %llu crossover children over the "
            "last %zu generations and none improved on both parents; "
            "the building blocks may be exhausted — consider the "
            "uniform crossover_operator or a larger population_size",
            static_cast<unsigned long long>(xChildren), window);
        out.push_back(buf);
    }
    if (mChildren > 0 && mImproved == 0) {
        std::snprintf(
            buf, sizeof(buf),
            "mutation starvation: %llu mutated children over the last "
            "%zu generations and none improved on both parents; the "
            "search may have peaked — consider lowering mutation_rate "
            "for finer steps or stopping via stagnation_limit",
            static_cast<unsigned long long>(mChildren), window);
        out.push_back(buf);
    }

    // Elite stagnation: the best fitness has been flat for the whole
    // recent window (only meaningful when the run is longer than it).
    if (rows.size() > window) {
        const double last = rows.back().fitnessMax;
        bool flat = true;
        for (std::size_t i = rows.size() - window; i < rows.size(); ++i)
            if (rows[i].fitnessMax < last)
                flat = false;
        if (flat && window >= 2) {
            std::snprintf(
                buf, sizeof(buf),
                "elite stagnation: best fitness %.6f has not improved "
                "over the last %zu generations; set stagnation_limit "
                "to stop such runs early, or restart with a different "
                "seed",
                last, window);
            out.push_back(buf);
        }
    }
}

} // namespace

ExplainReport
analyzeExplain(const std::string& run_dir)
{
    if (!dirExists(run_dir))
        fatal("run directory '", run_dir, "' does not exist");

    ExplainReport report;
    report.runDir = run_dir;
    report.events = analysis::loadLineage(run_dir);
    report.ancestry = analysis::championAncestry(report.events);
    analysis::tryLoadAnalytics(run_dir, report.analytics);
    detectPathologies(report.analytics, report.pathologies);
    return report;
}

std::string
formatExplain(const ExplainReport& report)
{
    std::ostringstream os;
    char buf[256];

    int maxGeneration = 0;
    for (const analysis::LineageEvent& e : report.events)
        maxGeneration = std::max(maxGeneration, e.generation);
    os << "run: " << report.runDir << " (lineage v"
       << analysis::lineageCsvVersion << ", " << report.events.size()
       << " birth events, " << maxGeneration + 1 << " generations)\n";

    const analysis::Ancestry& anc = report.ancestry;
    const analysis::LineageEvent& champion =
        report.events[anc.chain.front()];
    std::snprintf(buf, sizeof(buf),
                  "champion: id %llu, fitness %.6f, born generation "
                  "%d by %s",
                  static_cast<unsigned long long>(champion.id),
                  champion.fitness, champion.generation,
                  analysis::toString(champion.op));
    os << buf;
    if (!champion.mutatedGenes.empty()) {
        os << " (mutated genes";
        for (std::uint32_t g : champion.mutatedGenes)
            os << ' ' << g;
        os << ')';
    }
    os << '\n';

    os << "ancestry: " << anc.ancestorCount << " distinct ancestors";
    if (anc.reachesGeneration0) {
        os << ", every line reaches generation 0\n";
    } else if (!anc.unknownParents.empty()) {
        os << "; " << anc.unknownParents.size()
           << " parent id(s) predate this ledger (resumed run) — "
              "ancestry stops at the checkpoint\n";
    } else {
        os << "; some lines stop at resumed individuals born after "
              "generation 0 (resumed run)\n";
    }
    os << "  by operator:";
    static const char* opNames[analysis::numBirthOps] = {
        "seed", "resumed", "crossover", "mutation", "elite copy"};
    for (int i = 0; i < analysis::numBirthOps; ++i)
        os << ' ' << anc.opCounts[static_cast<std::size_t>(i)] << ' '
           << opNames[i] << (i + 1 < analysis::numBirthOps ? "," : "");
    os << '\n';

    os << "primary descent line (champion first, following the fitter "
          "parent):\n";
    for (std::size_t idx : anc.chain) {
        const analysis::LineageEvent& e = report.events[idx];
        std::snprintf(buf, sizeof(buf),
                      "  gen %4d  id %6llu  %-10s fitness %.6f",
                      e.generation,
                      static_cast<unsigned long long>(e.id),
                      analysis::toString(e.op), e.fitness);
        os << buf;
        if (e.parent1 != 0 || e.parent2 != 0) {
            os << "  parents "
               << static_cast<unsigned long long>(e.parent1) << ","
               << static_cast<unsigned long long>(e.parent2);
        }
        if (!e.mutatedGenes.empty()) {
            os << "  mutated";
            for (std::uint32_t g : e.mutatedGenes)
                os << ' ' << g;
        }
        os << '\n';
    }

    if (!report.analytics.empty()) {
        os << "instruction-mix trajectory (population share):\n";
        os << "  gen ";
        for (int c = 0; c < isa::numInstrClasses; ++c) {
            std::snprintf(buf, sizeof(buf), " %10s",
                          isa::toString(static_cast<isa::InstrClass>(c)));
            os << buf;
        }
        os << '\n';
        // Sample ~10 evenly spaced generations, always including the
        // first and the last.
        const std::size_t n = report.analytics.size();
        const std::size_t stride = std::max<std::size_t>(1, n / 10);
        for (std::size_t i = 0; i < n;
             i = (i + stride < n || i == n - 1) ? i + stride : n - 1) {
            const analysis::AnalyticsRow& row = report.analytics[i];
            std::uint64_t total = 0;
            for (std::uint64_t c : row.classMix)
                total += c;
            std::snprintf(buf, sizeof(buf), "  %4d ", row.generation);
            os << buf;
            for (std::uint64_t c : row.classMix) {
                std::snprintf(buf, sizeof(buf), " %9.1f%%",
                              total == 0
                                  ? 0.0
                                  : 100.0 * static_cast<double>(c) /
                                        static_cast<double>(total));
                os << buf;
            }
            os << '\n';
        }
    } else {
        os << "instruction-mix trajectory: n/a — no analytics.csv in "
              "this run directory (recorded by default; was the run "
              "configured with <output analytics=\"false\"/>?)\n";
    }

    if (report.pathologies.empty()) {
        os << "convergence pathologies: none detected\n";
    } else {
        os << "convergence pathologies:\n";
        for (const std::string& p : report.pathologies)
            os << "  - " << p << '\n';
    }
    return os.str();
}

} // namespace output
} // namespace gest
