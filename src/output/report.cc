#include "output/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace output {

namespace {

/** Column index by header name, or -1 when this file predates it. */
int
columnIndex(const std::vector<std::string>& header,
            const std::string& name)
{
    const auto it = std::find(header.begin(), header.end(), name);
    return it == header.end()
               ? -1
               : static_cast<int>(it - header.begin());
}

double
field(const std::vector<std::string>& fields, int index,
      const std::string& what, int line)
{
    if (index < 0)
        return 0.0;
    return parseDouble(fields[static_cast<std::size_t>(index)],
                       detail::concat(what, " (history.csv line ", line,
                                      ")"));
}

} // namespace

double
RunReport::cacheHitRate() const
{
    const double total =
        static_cast<double>(totalMeasured + totalCacheHits);
    return total == 0.0 ? 0.0
                        : static_cast<double>(totalCacheHits) / total;
}

double
RunReport::evaluationsPerSecond() const
{
    if (!hasTimings || evaluationMs <= 0.0)
        return 0.0;
    return static_cast<double>(totalMeasured) / (evaluationMs / 1000.0);
}

RunReport
analyzeRun(const std::string& run_dir)
{
    if (!dirExists(run_dir))
        fatal("run directory '", run_dir, "' does not exist");
    const std::string path = run_dir + "/history.csv";
    std::string text;
    if (!tryReadFile(path, text))
        fatal("no history.csv in '", run_dir,
              "' — is this a gest run directory? Pass the directory "
              "named by <output directory=\"...\"> (runs without an "
              "<output> element record no history)");

    RunReport report;
    report.runDir = run_dir;

    std::vector<std::string> header;
    int selection = -1, crossoverCol = -1, mutationCol = -1;
    int evaluation = -1, io = -1;
    int generation = -1, bestF = -1, avgF = -1, div = -1, hits = -1,
        misses = -1;

    int line_number = 0;
    for (const std::string& raw : split(text, '\n')) {
        ++line_number;
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        if (line.front() == '#') {
            // `# gest-history v<N>` — anything else is a plain comment.
            const std::vector<std::string> words = splitWhitespace(line);
            if (words.size() >= 2 && words[1] == "gest-history" &&
                words.size() >= 3 && words[2].size() > 1 &&
                words[2].front() == 'v') {
                report.historyVersion = static_cast<int>(
                    parseInt(words[2].substr(1), "history version"));
            }
            continue;
        }
        if (header.empty()) {
            header = split(line, ',');
            if (columnIndex(header, "generation") != 0)
                fatal("'", path, "' does not look like a gest history "
                      "file: expected a header starting with "
                      "'generation', got '", line, "'");
            generation = columnIndex(header, "generation");
            bestF = columnIndex(header, "best_fitness");
            avgF = columnIndex(header, "average_fitness");
            div = columnIndex(header, "diversity");
            hits = columnIndex(header, "cache_hits");
            misses = columnIndex(header, "cache_misses");
            selection = columnIndex(header, "selection_ms");
            crossoverCol = columnIndex(header, "crossover_ms");
            mutationCol = columnIndex(header, "mutation_ms");
            evaluation = columnIndex(header, "evaluation_ms");
            io = columnIndex(header, "io_ms");
            report.hasTimings = evaluation >= 0;
            continue;
        }
        const std::vector<std::string> fields = split(line, ',');
        if (fields.size() < header.size())
            fatal("'", path, "' is truncated at line ", line_number,
                  " (", fields.size(), " of ", header.size(),
                  " columns): the run may have been interrupted "
                  "mid-write; delete that line to summarize the "
                  "completed generations");
        HistoryRow row;
        row.generation = static_cast<int>(
            field(fields, generation, "generation", line_number));
        row.bestFitness =
            field(fields, bestF, "best_fitness", line_number);
        row.averageFitness =
            field(fields, avgF, "average_fitness", line_number);
        row.diversity = field(fields, div, "diversity", line_number);
        row.cacheHits = static_cast<std::uint64_t>(
            field(fields, hits, "cache_hits", line_number));
        row.cacheMisses = static_cast<std::uint64_t>(
            field(fields, misses, "cache_misses", line_number));
        row.selectionMs =
            field(fields, selection, "selection_ms", line_number);
        row.crossoverMs =
            field(fields, crossoverCol, "crossover_ms", line_number);
        row.mutationMs =
            field(fields, mutationCol, "mutation_ms", line_number);
        row.evaluationMs =
            field(fields, evaluation, "evaluation_ms", line_number);
        row.ioMs = field(fields, io, "io_ms", line_number);
        report.rows.push_back(row);
    }

    if (header.empty())
        fatal("'", path, "' is empty — the run has not written its "
              "header yet (or the file was clobbered); rerun or wait "
              "for the first generation to complete");
    if (report.rows.empty())
        fatal("'", path, "' contains no generation rows yet — the run "
              "has not completed generation 0; retry once it has");

    report.firstBest = report.rows.front().bestFitness;
    report.finalAverage = report.rows.back().averageFitness;
    report.finalDiversity = report.rows.back().diversity;
    for (const HistoryRow& row : report.rows) {
        if (row.bestFitness > report.bestFitness ||
            &row == &report.rows.front()) {
            report.bestFitness = row.bestFitness;
            report.bestGeneration = row.generation;
        }
        report.totalMeasured += row.cacheMisses;
        report.totalCacheHits += row.cacheHits;
        report.selectionMs += row.selectionMs;
        report.crossoverMs += row.crossoverMs;
        report.mutationMs += row.mutationMs;
        report.evaluationMs += row.evaluationMs;
        report.ioMs += row.ioMs;
    }
    return report;
}

std::string
formatReport(const RunReport& report)
{
    std::ostringstream os;
    char buf[256];

    os << "run: " << report.runDir << " (history v"
       << report.historyVersion << ", " << report.rows.size()
       << " generations)\n";

    std::snprintf(buf, sizeof(buf),
                  "fitness: first-gen best %.6f -> best %.6f at "
                  "generation %d",
                  report.firstBest, report.bestFitness,
                  report.bestGeneration);
    os << buf;
    if (report.firstBest > 0.0) {
        std::snprintf(buf, sizeof(buf), " (%+.1f%%)",
                      100.0 * (report.bestFitness - report.firstBest) /
                          report.firstBest);
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "\n         final average %.6f, final diversity %.3f\n",
                  report.finalAverage, report.finalDiversity);
    os << buf;

    std::snprintf(buf, sizeof(buf),
                  "evaluations: %llu measured, %llu cache hits "
                  "(%.1f%% hit rate)\n",
                  static_cast<unsigned long long>(report.totalMeasured),
                  static_cast<unsigned long long>(report.totalCacheHits),
                  100.0 * report.cacheHitRate());
    os << buf;

    if (!report.hasTimings) {
        os << "phase breakdown: n/a — this history.csv predates the "
              "timing columns (v2); rerun with a current build to "
              "record them\n";
        return os.str();
    }

    const double eps = report.evaluationsPerSecond();
    if (eps > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "throughput: %.0f evaluations/sec (over %.2f s "
                      "of evaluation time)\n",
                      eps, report.evaluationMs / 1000.0);
        os << buf;
    } else {
        os << "throughput: n/a — no timed evaluation recorded (run "
              "with stats enabled)\n";
    }

    const double total = report.selectionMs + report.crossoverMs +
                         report.mutationMs + report.evaluationMs +
                         report.ioMs;
    os << "phase breakdown (totals across the run):\n";
    auto phase = [&](const char* name, double ms) {
        std::snprintf(buf, sizeof(buf), "  %-12s %10.1f ms  (%5.1f%%)\n",
                      name, ms, total > 0.0 ? 100.0 * ms / total : 0.0);
        os << buf;
    };
    phase("selection", report.selectionMs);
    phase("crossover", report.crossoverMs);
    phase("mutation", report.mutationMs);
    phase("evaluation", report.evaluationMs);
    phase("output I/O", report.ioMs);
    return os.str();
}

} // namespace output
} // namespace gest
