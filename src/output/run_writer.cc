#include "output/run_writer.hh"

#include <fstream>

#include "core/individual.hh"
#include "output/trace_writer.hh"
#include "stats/stats.hh"
#include "util/fileutil.hh"
#include "util/logging.hh"
#include "util/strutil.hh"

namespace gest {
namespace output {

RunWriter::RunWriter(std::string root, const isa::InstructionLibrary& lib,
                     const isa::AsmTemplate* tmpl, RunWriterOptions options)
    : _root(std::move(root)), _lib(lib), _template(tmpl),
      _options(options)
{
    ensureDir(_root);
}

std::string
RunWriter::individualFileName(int population,
                              const core::Individual& ind) const
{
    // 1_10_1.30_1.33.txt for individual 10 of population 1 with
    // measurements [1.30, 1.33] (§III.D).
    std::string name =
        std::to_string(population) + "_" + std::to_string(ind.id);
    for (double v : ind.measurements)
        name += "_" + formatFixed(v, _options.measurementPrecision);
    return name + ".txt";
}

void
RunWriter::writeIndividual(int population, const core::Individual& ind)
{
    const std::vector<std::string> lines = core::renderLines(_lib, ind);
    std::string body;
    if (_template) {
        body = _template->render(lines);
    } else {
        for (const std::string& line : lines) {
            body += line;
            body += '\n';
        }
    }
    const std::string name = individualFileName(population, ind);
    writeFile(_root + "/" + name, body);
    _artifactKinds[name] = "individual";
}

void
RunWriter::writePopulation(const core::Population& pop)
{
    if (_options.writeIndividuals) {
        for (const core::Individual& ind : pop.individuals)
            writeIndividual(pop.generation, ind);
    }
    if (_options.writePopulations) {
        const std::string name =
            "population_" + std::to_string(pop.generation) + ".pop";
        core::savePopulation(_lib, pop, _root + "/" + name);
        _artifactKinds[name] = "population";
    }
}

void
RunWriter::appendHistory(const core::GenerationRecord& record,
                         double io_ms)
{
    const std::string path = _root + "/history.csv";
    std::ofstream out(path, _historyStarted ? std::ios::app
                                            : std::ios::trunc);
    if (!out)
        fatal("cannot write ", path);
    if (!_historyStarted) {
        // Forward compatibility contract: the version comment is for
        // humans and tools; parsers must key on the header row, whose
        // column order is append-only across versions (gest report
        // reads v1 files with no timing columns just as well).
        out << "# gest-history v" << historyCsvVersion << "\n";
        out << "generation,best_fitness,average_fitness,best_id,"
               "unique_instructions,diversity,cache_hits,cache_misses,"
               "selection_ms,crossover_ms,mutation_ms,evaluation_ms,"
               "io_ms\n";
        _historyStarted = true;
        _artifactKinds["history.csv"] = "history";
    }
    out << record.generation << ',' << record.bestFitness << ','
        << record.averageFitness << ',' << record.bestId << ','
        << record.bestUniqueInstructions << ',' << record.diversity
        << ',' << record.cacheHits << ',' << record.cacheMisses << ','
        << record.selectionMs << ',' << record.crossoverMs << ','
        << record.mutationMs << ',' << record.evaluationMs << ','
        << io_ms << '\n';
}

void
RunWriter::writeRunMetadata(const std::string& config_text,
                            const std::string& template_text)
{
    if (!config_text.empty()) {
        writeFile(_root + "/run_configuration.xml", config_text);
        _artifactKinds["run_configuration.xml"] = "config";
    }
    if (!template_text.empty()) {
        writeFile(_root + "/run_template.txt", template_text);
        _artifactKinds["run_template.txt"] = "template";
    }
}

core::Engine::GenerationCallback
RunWriter::callback()
{
    static stats::Histogram& ioUs =
        stats::StatsRegistry::instance().histogram(
            "output.io_us", "run-directory writes per generation (us)",
            0.0, 100000.0, 40);
    return [this](const core::Population& pop,
                  const core::GenerationRecord& record) {
        const bool record_io = stats::enabled() || _trace;
        const double start = record_io ? stats::nowUs() : 0.0;
        writePopulation(pop);
        double io_ms = 0.0;
        if (record_io) {
            const double elapsed = stats::nowUs() - start;
            ioUs.sample(elapsed);
            io_ms = elapsed / 1000.0;
            if (_trace) {
                _trace->completeEvent(
                    "write run dir", "io", 0, start, elapsed,
                    {{"generation",
                      static_cast<double>(pop.generation)}});
            }
        }
        if (_options.writeHistoryCsv)
            appendHistory(record, io_ms);
    };
}

} // namespace output
} // namespace gest
